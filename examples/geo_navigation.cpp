// Reproduces the paper's running example end to end: the Fig. 1/Fig. 4
// geographic database, the Fig. 2 molecule types with their shared
// subobjects, and the two Ch. 4 MQL statements with their algebra
// translations.
//
// Run: ./build/examples/example_geo_navigation

#include <cstdlib>
#include <iostream>

#include "er/er_model.h"
#include "expr/expr.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "mql/session.h"
#include "text/printer.h"
#include "workload/geo.h"

namespace {

void Check(const mad::Status& status) {
  if (status.ok()) return;
  std::cerr << "error: " << status << "\n";
  std::exit(1);
}

template <typename T>
T Check(mad::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace mad;  // NOLINT: example brevity

  // ---- Figure 1: the schema, first as an ER diagram, then as the MAD
  // diagram it maps onto one-to-one. ------------------------------------
  er::ErSchema er_schema = er::Figure1ErSchema();
  std::cout << text::FormatErDiagram(er_schema) << "\n";

  Database db("GEO_DB");
  workload::GeoIds ids = Check(workload::BuildFigure4GeoDatabase(db));
  std::cout << text::FormatMadDiagram(db) << "\n";

  // ---- Figure 4: the formal specification of GEO_DB. -------------------
  std::cout << text::FormatDatabaseSpec(db) << "\n";

  // ---- Figure 2, lower: molecule type mt_state via the algebra. --------
  MoleculeDescription mt_state_md = Check(MoleculeDescription::CreateFromTypes(
      db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}}));
  MoleculeType mt_state = Check(DefineMoleculeType(db, "mt_state", mt_state_md));
  std::cout << text::FormatMoleculeType(db, mt_state, 2) << "\n";

  // Shared subobjects: SP's and MG's molecules meet in point 'pn'.
  const Molecule* sp = nullptr;
  const Molecule* mg = nullptr;
  for (const Molecule& m : mt_state.molecules()) {
    if (m.root() == ids.states["SP"]) sp = &m;
    if (m.root() == ids.states["MG"]) mg = &m;
  }
  size_t point_idx = Check(mt_state.description().NodeIndex("point"));
  std::cout << "SP and MG molecules share point 'pn': "
            << (sp->ContainsAtom(point_idx, ids.points["pn"]) &&
                        mg->ContainsAtom(point_idx, ids.points["pn"])
                    ? "yes"
                    : "no")
            << "\n\n";

  // ---- Chapter 4, example 1: MQL vs algebra. ----------------------------
  mql::Session session(&db);
  std::cout << "MQL> SELECT ALL FROM mt_state(state-area-edge-point);\n";
  auto result1 =
      Check(session.Execute("SELECT ALL FROM mt_state(state-area-edge-point);"));
  std::cout << "  -> " << result1.molecules->size()
            << " molecules (algebra: a[mt_state, G](C))\n\n";

  // ---- Chapter 4, example 2: the point neighborhood of 'pn'. -----------
  std::cout << "MQL> SELECT ALL FROM point-edge-(area-state,net-river)\n"
               "     WHERE point.name = 'pn';\n";
  auto result2 = Check(session.Execute(
      "SELECT ALL FROM point-edge-(area-state,net-river) "
      "WHERE point.name = 'pn';"));
  std::cout << "  -> algebra: Sigma[restr(point.name='pn')]"
               "(a[point-neighborhood, G'](C'))\n";
  for (const Molecule& m : result2.molecules->molecules()) {
    std::cout << text::FormatMolecule(db, result2.molecules->description(), m);
  }
  std::cout << "\n";

  // ---- Molecule algebra on top: which big states touch point 'pn'? -----
  auto touching = Check(RestrictMolecules(
      db, mt_state, expr::Eq(expr::Attr("point", "name"), expr::Lit("pn")),
      "touching_pn"));
  auto big = Check(RestrictMolecules(
      db, mt_state,
      expr::Ge(expr::Attr("state", "hectare"), expr::Lit(int64_t{1000})),
      "big"));
  auto both = Check(IntersectMolecules(big, touching, "big_touching"));
  std::cout << "Psi(big, touching_pn) = " << both.size()
            << " molecules (SP, MS)\n";
  return 0;
}
