// Office application (one of the paper's motivating non-standard domains):
// folders, documents, annotations and authors form a network in which
// documents are shared between folders and annotations reference both a
// document and its author. Everything runs through MQL — DDL, DML, dynamic
// molecule definition, UPDATE, and EXPLAIN.
//
// Run: ./build/examples/example_office

#include <cstdlib>
#include <iostream>

#include "mql/session.h"
#include "relational/nf2.h"
#include "text/printer.h"

namespace {

void Check(const mad::Status& status) {
  if (status.ok()) return;
  std::cerr << "error: " << status << "\n";
  std::exit(1);
}

template <typename T>
T Check(mad::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace mad;  // NOLINT: example brevity

  Database db("office");
  mql::Session session(&db);

  // ---- Schema and data, all in MQL. --------------------------------------
  Check(session
            .ExecuteScript(
                "CREATE ATOM TYPE folder (label STRING);"
                "CREATE ATOM TYPE document (title STRING, pages INT64, "
                "final BOOL);"
                "CREATE ATOM TYPE annotation (text STRING);"
                "CREATE ATOM TYPE person (name STRING);"
                "CREATE LINK TYPE filed_in (folder, document);"
                "CREATE LINK TYPE annotated_by (document, annotation);"
                "CREATE LINK TYPE written_by (annotation, person);"

                "INSERT INTO folder VALUES ('Contracts'), ('Archive');"
                "INSERT INTO document VALUES"
                "  ('Lease agreement', 12, FALSE),"
                "  ('Supplier contract', 7, TRUE),"
                "  ('Meeting minutes', 2, TRUE);"
                "INSERT INTO annotation VALUES"
                "  ('needs legal review'), ('signed copy attached');"
                "INSERT INTO person VALUES ('Meyer'), ('Littler');"

                // The supplier contract is filed in BOTH folders: a shared
                // subobject at the occurrence level.
                "INSERT LINK filed_in FROM (label = 'Contracts')"
                "  TO (pages >= 7);"
                "INSERT LINK filed_in FROM (label = 'Archive')"
                "  TO (title = 'Supplier contract');"
                "INSERT LINK filed_in FROM (label = 'Archive')"
                "  TO (title = 'Meeting minutes');"
                "INSERT LINK annotated_by FROM (title = 'Lease agreement')"
                "  TO (text = 'needs legal review');"
                "INSERT LINK annotated_by FROM (title = 'Supplier contract')"
                "  TO (text = 'signed copy attached');"
                "INSERT LINK written_by FROM (text = 'needs legal review')"
                "  TO (name = 'Meyer');"
                "INSERT LINK written_by FROM (text = 'signed copy attached')"
                "  TO (name = 'Littler');")
            .status());

  std::cout << text::FormatMadDiagram(db) << "\n";

  // ---- A dynamically defined complex object: the folder dossier. --------
  const char* dossier_query =
      "SELECT ALL FROM dossier(folder-document-annotation-person);";
  std::cout << "MQL> " << dossier_query << "\n";
  auto dossiers = Check(session.Execute(dossier_query));
  std::cout << text::FormatMoleculeType(db, *dossiers.molecules, 4) << "\n";

  // EXPLAIN shows the algebra the statement translates to.
  auto good_plan = Check(session.Execute(
      "EXPLAIN SELECT document.title FROM "
      "dossier2(folder-document-annotation-person) "
      "WHERE person.name = 'Meyer' AND folder.label = 'Contracts';"));
  std::cout << good_plan.message << "\n";

  // ---- Sharing, navigated from the other end. ----------------------------
  auto shared = Check(session.Execute(
      "SELECT ALL FROM document-folder "
      "WHERE document.title = 'Supplier contract';"));
  size_t folder_idx =
      Check(shared.molecules->description().NodeIndex("folder"));
  std::cout << "'Supplier contract' is filed in "
            << shared.molecules->molecules()[0].AtomsOf(folder_idx).size()
            << " folders (shared subobject)\n\n";

  // ---- Workflow update: finalise the lease after review. -----------------
  Check(session
            .Execute("UPDATE document SET final = TRUE "
                     "WHERE title = 'Lease agreement';")
            .status());
  auto finals = Check(
      session.Execute("SELECT ALL FROM document WHERE final = TRUE;"));
  std::cout << "final documents: " << finals.molecules->size() << "\n\n";

  // ---- Hierarchical view for an NF²-era consumer. -------------------------
  auto archive = Check(session.Execute(
      "SELECT ALL FROM nested(folder-document) "
      "WHERE folder.label = 'Archive';"));
  nf2::Nf2ConversionStats stats;
  auto nested = Check(
      nf2::MoleculeTypeToNf2(db, *archive.molecules, {}, &stats));
  std::cout << "NF2 view of the Archive dossier " << nested.schema().ToString()
            << ":\n"
            << nested.ToString(1);
  std::cout << "(duplicated atoms in NF2: " << stats.duplicated_atoms()
            << ")\n";
  return 0;
}
