// Quickstart: define a MAD schema in MQL, load atoms and links, and ask for
// dynamically defined complex objects (molecules).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <cstdlib>
#include <iostream>

#include "mql/session.h"
#include "storage/database.h"
#include "text/printer.h"

namespace {

// Halts with a message on any failed status (examples prefer brevity over
// recovery; library code returns Status/Result instead).
void Check(const mad::Status& status) {
  if (status.ok()) return;
  std::cerr << "error: " << status << "\n";
  std::exit(1);
}

template <typename T>
T Check(mad::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  mad::Database db("library");
  mad::mql::Session session(&db);

  // 1. Schema: authors, books, and a symmetric link between them. One link
  //    type captures the n:m relationship directly — no junction table.
  Check(session
            .ExecuteScript(
                "CREATE ATOM TYPE author (name STRING, born INT64);"
                "CREATE ATOM TYPE book (title STRING, year INT64);"
                "CREATE LINK TYPE wrote (author, book);")
            .status());

  // 2. Data. Co-authored books simply get two links: molecules may share
  //    subobjects.
  Check(session
            .ExecuteScript(
                "INSERT INTO author VALUES ('Codd', 1923), ('Date', 1941);"
                "INSERT INTO book VALUES"
                "  ('A Relational Model of Data', 1970),"
                "  ('The Relational Model for Database Management', 1990),"
                "  ('Foundation for Object/Relational Databases', 1998);"
                "INSERT LINK wrote FROM (name = 'Codd')"
                "  TO (year <= 1990);"
                "INSERT LINK wrote FROM (name = 'Date')"
                "  TO (title = 'Foundation for Object/Relational Databases');"
                "INSERT LINK wrote FROM (name = 'Date')"
                "  TO (year = 1990);")
            .status());

  std::cout << mad::text::FormatMadDiagram(db) << "\n";

  // 3. A molecule query: one complex object per author, holding the
  //    author's books. The object shape lives in the query, not the schema.
  auto result = Check(session.Execute(
      "SELECT ALL FROM oeuvre(author-book) WHERE book.year >= 1970;"));
  std::cout << mad::text::FormatMoleculeType(db, *result.molecules, 10) << "\n";

  // 4. The symmetric direction needs no schema change: books with their
  //    authors. The 1990 book is a shared subobject of both author
  //    molecules above — and here it simply becomes a root.
  auto by_book = Check(session.Execute(
      "SELECT ALL FROM book-author WHERE author.name = 'Date';"));
  std::cout << "books involving Date: " << by_book.molecules->size() << "\n";
  std::cout << mad::text::FormatMoleculeType(db, *by_book.molecules, 10);
  return 0;
}
