// An interactive MQL shell over one MAD database. Statements end with ';'
// and may span lines; meta-commands start with '\':
//
//   \schema          print the MAD diagram
//   \spec            print the formal database specification (Fig. 4 style)
//   \save <file>     serialize the database
//   \load <file>     replace the database from a file
//   \q               quit
//
// Usage:  ./build/examples/example_mql_shell            (interactive)
//         ./build/examples/example_mql_shell < script   (batch)

#include <unistd.h>

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "mql/session.h"
#include "storage/serializer.h"
#include "text/printer.h"
#include "util/string_util.h"

namespace {

void PrintResult(const mad::Database& db, const mad::mql::QueryResult& result,
                 const std::string& source) {
  using Kind = mad::mql::QueryResult::Kind;
  // Analyzer warnings (and, for CHECK, the full report) come first, with
  // carets over the statement text.
  if (!result.diagnostics.empty()) {
    std::cout << mad::mql::RenderDiagnostics(result.diagnostics, source);
  }
  switch (result.kind) {
    case Kind::kMolecules:
      std::cout << mad::text::FormatMoleculeType(db, *result.molecules, 8);
      break;
    case Kind::kRecursive: {
      std::cout << result.recursive.size() << " recursive molecule(s)\n";
      size_t shown = 0;
      for (const mad::RecursiveMolecule& m : result.recursive) {
        if (++shown > 8) {
          std::cout << "...\n";
          break;
        }
        std::cout << mad::text::FormatRecursiveMolecule(
            db, result.recursive_description, m);
      }
      break;
    }
    case Kind::kCommand:
      std::cout << result.message << "\n";
      break;
  }
  if (result.derivation.has_value()) {
    std::cout << mad::text::FormatDerivationStats(*result.derivation) << "\n";
  }
  if (result.durability.has_value()) {
    std::cout << mad::text::FormatDurabilityStats(*result.durability) << "\n";
  }
  // EXPLAIN ANALYZE embeds the profile in its message; only SET TRACE ON
  // results carry a trace that still needs printing here.
  if (result.trace != nullptr && result.kind != Kind::kCommand) {
    std::cout << mad::text::FormatQueryTrace(*result.trace);
  }
}

bool HandleMetaCommand(const std::string& line,
                       std::unique_ptr<mad::Database>& db,
                       std::unique_ptr<mad::mql::Session>& session,
                       bool* quit) {
  if (line.empty() || line[0] != '\\') return false;
  std::vector<std::string> words;
  for (const std::string& w : mad::Split(line, ' ')) {
    if (!w.empty()) words.push_back(w);
  }
  // After OPEN the session runs against its durable database, not the
  // in-memory one the shell started with.
  mad::Database& current = session->database();
  const std::string& cmd = words[0];
  if (cmd == "\\q" || cmd == "\\quit") {
    *quit = true;
  } else if (cmd == "\\schema") {
    std::cout << mad::text::FormatMadDiagram(current);
  } else if (cmd == "\\spec") {
    std::cout << mad::text::FormatDatabaseSpec(current);
  } else if (cmd == "\\save" && words.size() == 2) {
    std::ofstream out(words[1]);
    mad::Status s = out ? mad::WriteDatabase(current, out)
                        : mad::Status::InvalidArgument("cannot open file");
    std::cout << (s.ok() ? "saved " + words[1] : s.ToString()) << "\n";
  } else if (cmd == "\\load" && words.size() == 2) {
    std::ifstream in(words[1]);
    if (!in) {
      std::cout << "cannot open " << words[1] << "\n";
    } else {
      auto loaded = mad::ReadDatabase(in);
      if (loaded.ok()) {
        db = std::move(loaded).value();
        session = std::make_unique<mad::mql::Session>(db.get());
        std::cout << "loaded " << words[1] << " (" << db->total_atom_count()
                  << " atoms, " << db->total_link_count() << " links)\n";
      } else {
        std::cout << loaded.status() << "\n";
      }
    }
  } else {
    std::cout << "unknown meta command: " << line << "\n";
  }
  return true;
}

}  // namespace

int main() {
  auto db = std::make_unique<mad::Database>("shell");
  auto session = std::make_unique<mad::mql::Session>(db.get());
  bool interactive = static_cast<bool>(isatty(0));

  if (interactive) {
    std::cout << "madlib MQL shell — statements end with ';', \\q quits\n";
  }

  std::string buffer;
  std::string line;
  bool quit = false;
  while (!quit) {
    if (interactive) std::cout << (buffer.empty() ? "mql> " : "...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;

    std::string_view stripped = mad::StripWhitespace(line);
    if (buffer.empty() && !stripped.empty() && stripped[0] == '\\') {
      if (HandleMetaCommand(std::string(stripped), db, session, &quit)) {
        continue;
      }
    }
    buffer += line;
    buffer += '\n';
    // Execute once the buffer holds a ';' terminator.
    if (stripped.empty() || stripped.back() != ';') continue;

    std::string script = std::move(buffer);
    buffer.clear();
    auto results = session->ExecuteScript(script);
    if (!results.ok()) {
      std::cout << results.status() << "\n";
      continue;
    }
    for (const mad::mql::QueryResult& result : *results) {
      PrintResult(session->database(), result, script);
    }
  }
  return 0;
}
