// The MAD model as an executable "ER algebra" (Ch. 2 and Ch. 5): maps the
// Fig. 1 ER schema one-to-one onto MAD, maps it classically onto the
// relational model, and contrasts how the two sides answer the same n:m
// traversal.
//
// Run: ./build/examples/example_er_bridge

#include <cstdlib>
#include <iostream>

#include "er/er_model.h"
#include "molecule/derivation.h"
#include "relational/bridge.h"
#include "relational/rel_algebra.h"
#include "text/printer.h"
#include "workload/geo.h"

namespace {

void Check(const mad::Status& status) {
  if (status.ok()) return;
  std::cerr << "error: " << status << "\n";
  std::exit(1);
}

template <typename T>
T Check(mad::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace mad;  // NOLINT: example brevity

  er::ErSchema er_schema = er::Figure1ErSchema();
  std::cout << text::FormatErDiagram(er_schema) << "\n";

  // ---- Schema-mapping comparison. ----------------------------------------
  er::MappingReport report = Check(er::CompareMappings(er_schema));
  std::cout << "ER -> MAD:        " << report.mad_atom_types
            << " atom types, " << report.mad_link_types
            << " link types (one-to-one, no auxiliary structures)\n";
  std::cout << "ER -> relational: " << report.rel_relations << " relations ("
            << report.rel_auxiliary_relations
            << " auxiliary), plus " << report.rel_foreign_key_columns
            << " foreign-key columns\n\n";

  // ---- The same n:m traversal on both sides. -----------------------------
  Database db("GEO_DB");
  Check(workload::BuildFigure4GeoDatabase(db).status());

  // MAD: one molecule structure, links traversed directly.
  MoleculeDescription md = Check(MoleculeDescription::CreateFromTypes(
      db, {"area", "edge"}, {{"area-edge", "area", "edge", false}}));
  MoleculeType areas = Check(DefineMoleculeType(db, "area_borders", md));
  size_t mad_pairs = 0;
  for (const Molecule& m : areas.molecules()) mad_pairs += m.links().size();
  std::cout << "MAD: area-edge molecules = " << areas.size()
            << ", border links touched = " << mad_pairs << "\n";

  // Relational: transform, then join through the auxiliary relation.
  rel::TransformStats stats;
  rel::RelationalDatabase rdb = Check(rel::TransformToRelational(db, &stats));
  const rel::Relation* area = Check(rdb.Get("area"));
  const rel::Relation* aux = Check(rdb.Get("area-edge"));
  rel::Relation edge = Check(rel::Rename(
      *Check(rdb.Get("edge")), {{"_id", "_eid"}, {"name", "ename"}}));

  rel::Relation j1 = Check(rel::EquiJoin(*area, "_id", *aux, "_from"));
  rel::Relation j2 = Check(rel::EquiJoin(j1, "_to", edge, "_eid"));
  std::cout << "relational: area |x| area-edge |x| edge = " << j2.size()
            << " rows through " << stats.auxiliary_relations
            << " auxiliary relations\n";

  std::cout << "\n" << text::FormatConceptComparison();
  return 0;
}
