// The bill-of-material application of Ch. 3.1 and Ch. 5: one reflexive
// link type 'composition' on atom type 'part' supports both the
// super-component and the sub-component view; the recursive molecule
// extension answers parts explosion and where-used queries.
//
// Run: ./build/examples/example_bill_of_materials

#include <cstdlib>
#include <iostream>
#include <map>

#include "molecule/recursive.h"
#include "mql/session.h"
#include "text/printer.h"
#include "workload/bom.h"

namespace {

void Check(const mad::Status& status) {
  if (status.ok()) return;
  std::cerr << "error: " << status << "\n";
  std::exit(1);
}

template <typename T>
T Check(mad::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace mad;  // NOLINT: example brevity

  Database db("BOM");
  std::map<std::string, AtomId> ids = Check(workload::BuildCarBom(db));
  std::cout << text::FormatMadDiagram(db) << "\n";

  // ---- Parts explosion (sub-component view). ----------------------------
  RecursiveDescription explosion{"part", "composition",
                                 LinkDirection::kForward, -1};
  RecursiveMolecule car =
      Check(DeriveRecursiveMoleculeFor(db, explosion, ids["car"]));
  std::cout << text::FormatRecursiveMolecule(db, explosion, car) << "\n";

  // Cost rollup over the explosion: every composition link contributes its
  // sub-part's cost once per usage (the bolt is used twice).
  const AtomType* part = Check(db.GetAtomType("part"));
  size_t cost_idx = Check(part->description().IndexOf("cost"));
  int64_t rollup = 0;
  for (const Link& link : car.links()) {
    rollup += part->occurrence().Find(link.second)->values[cost_idx].AsInt64();
  }
  std::cout << "summed component costs of car (per usage): " << rollup << "\n\n";

  // ---- Where-used (super-component view), through the same links. -------
  RecursiveDescription implosion{"part", "composition",
                                 LinkDirection::kBackward, -1};
  RecursiveMolecule bolt =
      Check(DeriveRecursiveMoleculeFor(db, implosion, ids["bolt"]));
  std::cout << text::FormatRecursiveMolecule(db, implosion, bolt) << "\n";

  // ---- The same queries in MQL. ------------------------------------------
  mql::Session session(&db);
  std::cout << "MQL> SELECT ALL FROM part-[composition*] "
               "WHERE root.name = 'car';\n";
  auto q1 = Check(session.Execute(
      "SELECT ALL FROM part-[composition*] WHERE root.name = 'car';"));
  std::cout << "  -> explosion reaches " << q1.recursive[0].atom_count()
            << " parts, depth " << q1.recursive[0].depth() << "\n";

  std::cout << "MQL> SELECT ALL FROM part-[composition~*] "
               "WHERE root.name = 'bolt';\n";
  auto q2 = Check(session.Execute(
      "SELECT ALL FROM part-[composition~*] WHERE root.name = 'bolt';"));
  std::cout << "  -> bolt is used (transitively) in "
            << q2.recursive[0].atom_count() - 1 << " parts\n";

  std::cout << "MQL> SELECT ALL FROM part-[composition*1] "
               "WHERE root.name = 'car';\n";
  auto q3 = Check(session.Execute(
      "SELECT ALL FROM part-[composition*1] WHERE root.name = 'car';"));
  std::cout << "  -> direct components only: "
            << q3.recursive[0].atom_count() - 1 << "\n\n";

  // ---- Recursive molecules as schema objects ([Schö89]). -----------------
  size_t closure = Check(PropagateClosureLinks(db, explosion, "contains_all"));
  std::cout << "propagated transitive-containment link type 'contains_all' "
            << "with " << closure << " links\n";
  // It is an ordinary (reflexive) link type now: a depth-1 step over it
  // answers the full explosion without re-running the fixpoint.
  auto q4 = Check(session.Execute(
      "SELECT ALL FROM part-[contains_all*1] WHERE root.name = 'car';"));
  std::cout << "  via 'contains_all' in one step: "
            << q4.recursive[0].atom_count() - 1 << " parts\n";
  return 0;
}
