#!/usr/bin/env python3
"""Compare benchmark --json results against a checked-in baseline.

The bench_* binaries emit, via their --json flag, one file each of the form

    {"benchmark": "bench_perf_clone", "results": [
      {"op": "BM_CloneDatabase/100", "ns_per_op": 123.4,
       "iterations": 1000, "parallelism": 1}, ...]}

This tool has two subcommands:

  merge <out.json> <in.json...>
      Combine per-binary result files into one baseline file (the shape is a
      JSON array of the per-binary objects). Used to refresh
      BENCH_baseline.json.

  compare --baseline <baseline.json> [--threshold 0.25] <current.json...>
      Diff each (benchmark, op) pair's ns_per_op against the baseline and
      exit 1 when any op regressed by more than the threshold (default 25%).
      Ops only present on one side are reported but never fail the run, so
      adding or retiring a benchmark doesn't require a lockstep baseline
      update.

CI runs `compare`; a >threshold regression fails the job unless the PR
carries the `perf-regression-ok` label (the workflow checks the label, not
this script — the numbers are always printed either way).
"""

import argparse
import json
import sys


def load_results(path):
    """Returns {(benchmark, op): ns_per_op} from a per-binary result file or
    a merged baseline (array of per-binary objects)."""
    with open(path) as f:
        data = json.load(f)
    groups = data if isinstance(data, list) else [data]
    out = {}
    for group in groups:
        bench = group["benchmark"]
        for row in group["results"]:
            out[(bench, row["op"])] = float(row["ns_per_op"])
    return out


def merge(out_path, in_paths):
    groups = []
    for path in in_paths:
        with open(path) as f:
            data = json.load(f)
        groups.extend(data if isinstance(data, list) else [data])
    groups.sort(key=lambda g: g["benchmark"])
    with open(out_path, "w") as f:
        json.dump(groups, f, indent=2, sort_keys=True)
        f.write("\n")
    ops = sum(len(g["results"]) for g in groups)
    print(f"wrote {len(groups)} benchmark(s), {ops} op(s) to {out_path}")
    return 0


def compare(baseline_path, current_paths, threshold):
    baseline = load_results(baseline_path)
    current = {}
    for path in current_paths:
        current.update(load_results(path))

    regressions = []
    rows = []
    for key in sorted(set(baseline) | set(current)):
        bench, op = key
        base = baseline.get(key)
        cur = current.get(key)
        if base is None:
            rows.append((bench, op, base, cur, "new (not in baseline)"))
            continue
        if cur is None:
            rows.append((bench, op, base, cur, "missing from current run"))
            continue
        ratio = cur / base if base > 0 else float("inf")
        delta = f"{(ratio - 1) * 100:+.1f}%"
        if ratio > 1 + threshold:
            regressions.append(key)
            rows.append((bench, op, base, cur, f"{delta}  REGRESSION"))
        else:
            rows.append((bench, op, base, cur, delta))

    name_w = max(len(f"{b}/{o}") for b, o, *_ in rows) if rows else 0
    for bench, op, base, cur, verdict in rows:
        name = f"{bench}/{op}"
        base_s = f"{base:12.1f}" if base is not None else " " * 12
        cur_s = f"{cur:12.1f}" if cur is not None else " " * 12
        print(f"{name:<{name_w}}  {base_s}  {cur_s}  {verdict}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} op(s) regressed more than "
            f"{threshold * 100:.0f}% vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no op regressed more than {threshold * 100:.0f}%")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge", help="combine result files into a baseline")
    p_merge.add_argument("out")
    p_merge.add_argument("inputs", nargs="+")

    p_cmp = sub.add_parser("compare", help="diff current results vs baseline")
    p_cmp.add_argument("--baseline", required=True)
    p_cmp.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per op (default 0.25 = +25%%)",
    )
    p_cmp.add_argument("current", nargs="+")

    args = parser.parse_args(argv)
    if args.command == "merge":
        return merge(args.out, args.inputs)
    return compare(args.baseline, args.current, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
