#!/usr/bin/env python3
"""Unit tests for bench_compare.py, including the acceptance check that a
synthetic 2x-slower result set fails the comparison."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(payload, f)
    return path


def result_file(benchmark, ops):
    return {
        "benchmark": benchmark,
        "results": [
            {"op": op, "ns_per_op": ns, "iterations": 100, "parallelism": 1}
            for op, ns in ops.items()
        ],
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name
        self.baseline = write_json(
            self.dir,
            "baseline.json",
            [
                result_file("bench_perf_clone", {"BM_Clone/100": 1000.0}),
                result_file(
                    "bench_perf_molecule_ops",
                    {"BM_Derive/100/1": 2000.0, "BM_Derive/400/1": 9000.0},
                ),
            ],
        )

    def tearDown(self):
        self.tmp.cleanup()

    def test_identical_results_pass(self):
        current = write_json(
            self.dir,
            "current.json",
            result_file(
                "bench_perf_molecule_ops",
                {"BM_Derive/100/1": 2000.0, "BM_Derive/400/1": 9000.0},
            ),
        )
        clone = write_json(
            self.dir,
            "clone.json",
            result_file("bench_perf_clone", {"BM_Clone/100": 1000.0}),
        )
        self.assertEqual(
            bench_compare.compare(self.baseline, [current, clone], 0.25), 0
        )

    def test_small_slowdown_within_threshold_passes(self):
        current = write_json(
            self.dir,
            "current.json",
            result_file("bench_perf_molecule_ops", {"BM_Derive/100/1": 2400.0}),
        )
        self.assertEqual(bench_compare.compare(self.baseline, [current], 0.25), 0)

    def test_two_x_slower_fails(self):
        # The acceptance check: a synthetic 2x-slower run must fail.
        current = write_json(
            self.dir,
            "slow.json",
            result_file(
                "bench_perf_molecule_ops",
                {"BM_Derive/100/1": 4000.0, "BM_Derive/400/1": 18000.0},
            ),
        )
        self.assertEqual(bench_compare.compare(self.baseline, [current], 0.25), 1)

    def test_threshold_override_tolerates_two_x(self):
        current = write_json(
            self.dir,
            "slow.json",
            result_file("bench_perf_molecule_ops", {"BM_Derive/100/1": 4000.0}),
        )
        self.assertEqual(bench_compare.compare(self.baseline, [current], 1.5), 0)

    def test_new_and_missing_ops_do_not_fail(self):
        current = write_json(
            self.dir,
            "current.json",
            result_file("bench_perf_new", {"BM_Fresh/1": 50.0}),
        )
        self.assertEqual(bench_compare.compare(self.baseline, [current], 0.25), 0)

    def test_merge_roundtrips_through_compare(self):
        a = write_json(
            self.dir, "a.json", result_file("bench_perf_clone", {"BM_Clone/100": 1000.0})
        )
        b = write_json(
            self.dir,
            "b.json",
            result_file("bench_perf_molecule_ops", {"BM_Derive/100/1": 2000.0}),
        )
        merged = os.path.join(self.dir, "merged.json")
        self.assertEqual(bench_compare.merge(merged, [a, b]), 0)
        loaded = bench_compare.load_results(merged)
        self.assertEqual(
            loaded,
            {
                ("bench_perf_clone", "BM_Clone/100"): 1000.0,
                ("bench_perf_molecule_ops", "BM_Derive/100/1"): 2000.0,
            },
        )
        self.assertEqual(bench_compare.compare(merged, [a, b], 0.25), 0)

    def test_cli_exit_codes(self):
        slow = write_json(
            self.dir,
            "slow.json",
            result_file("bench_perf_clone", {"BM_Clone/100": 2000.0}),
        )
        self.assertEqual(
            bench_compare.main(
                ["compare", "--baseline", self.baseline, slow]
            ),
            1,
        )
        self.assertEqual(
            bench_compare.main(
                ["compare", "--baseline", self.baseline, "--threshold", "1.5", slow]
            ),
            0,
        )


if __name__ == "__main__":
    unittest.main()
