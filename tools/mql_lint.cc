// mql_lint: batch static checker for MQL scripts.
//
// Usage:  mql_lint [--json] file.mql [file2.mql ...]
//
// Parses each script and runs the semantic analyzer over every statement
// in order, applying only catalog effects (CREATE ATOM/LINK TYPE,
// molecule-type registration) to a scratch in-memory database so later
// statements resolve the names earlier ones define. Nothing is executed:
// no atoms are inserted, no files are written. CHECK statements lint their
// inner statement.
//
// Output: rustc-style caret diagnostics (default) or a stable JSON array
// (--json). Exit status: 0 = clean (warnings allowed), 1 = at least one
// error-severity diagnostic (parse errors included), 2 = usage/IO failure.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "core/schema.h"
#include "molecule/description.h"
#include "mql/ast.h"
#include "mql/diag.h"
#include "mql/parser.h"
#include "mql/sema.h"
#include "mql/translator.h"
#include "storage/database.h"

namespace {

using mad::Database;
using mad::MoleculeDescription;
using mad::mql::Diagnostic;

using Registry = std::map<std::string, MoleculeDescription>;

/// Applies the catalog effects of one statement to the scratch database so
/// the rest of the script resolves against them. Failures are dropped on
/// the floor: the analyzer has already reported anything wrong.
void ApplyCatalogEffects(const mad::mql::Statement& statement, Database* db,
                         Registry* registry) {
  std::visit(
      [&](const auto& stmt) {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, mad::mql::CreateAtomTypeStatement>) {
          mad::Schema schema;
          for (const auto& [name, type] : stmt.attributes) {
            if (!schema.AddAttribute(name, type).ok()) return;
          }
          (void)db->DefineAtomType(stmt.name, std::move(schema));
        } else if constexpr (std::is_same_v<T,
                                            mad::mql::CreateLinkTypeStatement>) {
          (void)db->DefineLinkType(stmt.name, stmt.first, stmt.second,
                                   stmt.cardinality);
        } else if constexpr (std::is_same_v<T, mad::mql::SelectStatement>) {
          if (stmt.from.molecule_name.empty()) return;
          auto translated =
              mad::mql::TranslateStructure(*db, *stmt.from.structure);
          if (translated.ok() && translated->description.has_value()) {
            registry->insert_or_assign(stmt.from.molecule_name,
                                       std::move(*translated->description));
          }
        }
      },
      statement);
}

struct FileReport {
  std::string path;
  std::string source;
  std::vector<Diagnostic> diags;
};

/// Lints one file into `report`. Returns false only on an IO failure.
bool LintFile(const std::string& path, FileReport* report) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  report->path = path;
  report->source = buffer.str();

  auto parsed = mad::mql::ParseScript(report->source);
  if (!parsed.ok()) {
    Diagnostic d;
    d.id = mad::mql::DiagId::kParseError;
    d.message = parsed.status().message();
    report->diags.push_back(std::move(d));
    return true;
  }

  Database db("lint");
  Registry registry;
  for (const mad::mql::Statement& statement : *parsed) {
    const mad::mql::Statement* target = &statement;
    if (const auto* check = std::get_if<mad::mql::CheckStatement>(&statement);
        check != nullptr && check->inner != nullptr) {
      target = &check->inner->value;
    }
    std::vector<Diagnostic> diags =
        mad::mql::AnalyzeStatement(db, registry, *target);
    for (Diagnostic& d : diags) report->diags.push_back(std::move(d));
    ApplyCatalogEffects(*target, &db, &registry);
  }
  return true;
}

void PrintUsage(std::ostream& out) {
  out << "usage: mql_lint [--json] file.mql [file2.mql ...]\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mql_lint: unknown option " << arg << "\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  bool io_failure = false;
  size_t errors = 0;
  size_t warnings = 0;
  std::string json_items;
  for (const std::string& path : paths) {
    FileReport report;
    if (!LintFile(path, &report)) {
      std::cerr << "mql_lint: cannot read " << path << "\n";
      io_failure = true;
      continue;
    }
    for (const Diagnostic& d : report.diags) {
      (d.severity() == mad::mql::Severity::kError ? errors : warnings) += 1;
    }
    if (json) {
      // Splice this file's array items into the combined array.
      std::string array =
          mad::mql::DiagnosticsToJson(report.diags, report.path);
      std::string inner = array.substr(1, array.size() - 2);
      while (!inner.empty() && (inner.back() == '\n' || inner.back() == ' ')) {
        inner.pop_back();
      }
      if (!inner.empty()) {
        if (!json_items.empty()) json_items += ",";
        json_items += inner;
      }
    } else if (!report.diags.empty()) {
      std::cout << mad::mql::RenderDiagnostics(report.diags, report.source,
                                               report.path);
    }
  }

  if (json) {
    std::cout << "[" << json_items << (json_items.empty() ? "]" : "\n]")
              << "\n";
  } else {
    std::cout << paths.size() << " file(s): " << errors << " error(s), "
              << warnings << " warning(s)\n";
  }
  if (io_failure) return 2;
  return errors > 0 ? 1 : 0;
}
