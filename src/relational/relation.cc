#include "relational/relation.h"

namespace mad {
namespace rel {

std::string Relation::Fingerprint(const std::vector<Value>& tuple) {
  std::string key;
  for (const Value& v : tuple) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

Result<bool> Relation::Insert(std::vector<Value> tuple) {
  MAD_RETURN_IF_ERROR(schema_.ValidateRow(tuple));
  if (!present_.insert(Fingerprint(tuple)).second) return false;
  tuples_.push_back(std::move(tuple));
  return true;
}

bool Relation::Contains(const std::vector<Value>& tuple) const {
  return present_.count(Fingerprint(tuple)) > 0;
}

bool Relation::operator==(const Relation& other) const {
  if (schema_ != other.schema_ || tuples_.size() != other.tuples_.size()) {
    return false;
  }
  for (const auto& tuple : tuples_) {
    if (!other.Contains(tuple)) return false;
  }
  return true;
}

Status RelationalDatabase::Define(const std::string& rname, Schema schema) {
  if (rname.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (index_.count(rname) > 0) {
    return Status::AlreadyExists("relation '" + rname + "' already defined");
  }
  index_.emplace(rname, Relation(std::move(schema)));
  order_.push_back(rname);
  return Status::OK();
}

Status RelationalDatabase::Insert(const std::string& rname,
                                  std::vector<Value> tuple) {
  MAD_ASSIGN_OR_RETURN(Relation * r, GetMutable(rname));
  return r->Insert(std::move(tuple)).status();
}

Result<const Relation*> RelationalDatabase::Get(const std::string& rname) const {
  auto it = index_.find(rname);
  if (it == index_.end()) {
    return Status::NotFound("relation '" + rname + "' not defined");
  }
  return &it->second;
}

Result<Relation*> RelationalDatabase::GetMutable(const std::string& rname) {
  auto it = index_.find(rname);
  if (it == index_.end()) {
    return Status::NotFound("relation '" + rname + "' not defined");
  }
  return &it->second;
}

size_t RelationalDatabase::total_tuple_count() const {
  size_t n = 0;
  for (const auto& [name, relation] : index_) n += relation.size();
  return n;
}

}  // namespace rel
}  // namespace mad
