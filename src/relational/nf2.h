#ifndef MAD_RELATIONAL_NF2_H_
#define MAD_RELATIONAL_NF2_H_

#include <memory>
#include <string>
#include <vector>

#include "molecule/molecule_type.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {
namespace nf2 {

class NestedRelation;

/// One attribute of an NF² schema: atomic (type != kNull) or
/// relation-valued (nested != nullptr) — the [SS86] model the paper
/// positions as a special case of molecules.
struct Nf2Attribute {
  std::string name;
  DataType type = DataType::kNull;
  std::shared_ptr<const class Nf2Schema> nested;

  bool atomic() const { return nested == nullptr; }
};

/// An NF² schema: an ordered list of atomic and relation-valued attributes.
class Nf2Schema {
 public:
  void AddAtomic(std::string name, DataType type) {
    attributes_.push_back(Nf2Attribute{std::move(name), type, nullptr});
  }
  void AddNested(std::string name, std::shared_ptr<const Nf2Schema> nested) {
    attributes_.push_back(
        Nf2Attribute{std::move(name), DataType::kNull, std::move(nested)});
  }
  const std::vector<Nf2Attribute>& attributes() const { return attributes_; }
  std::string ToString() const;

 private:
  std::vector<Nf2Attribute> attributes_;
};

/// One NF² field: an atomic value or a nested relation instance.
struct Nf2Value {
  Value atomic;
  std::shared_ptr<NestedRelation> nested;
};

/// A nested relation: NF² schema plus tuples whose fields follow it.
class NestedRelation {
 public:
  explicit NestedRelation(std::shared_ptr<const Nf2Schema> schema)
      : schema_(std::move(schema)) {}

  const Nf2Schema& schema() const { return *schema_; }
  std::shared_ptr<const Nf2Schema> schema_ptr() const { return schema_; }
  const std::vector<std::vector<Nf2Value>>& tuples() const { return tuples_; }
  void AddTuple(std::vector<Nf2Value> tuple) {
    tuples_.push_back(std::move(tuple));
  }
  size_t size() const { return tuples_.size(); }

  /// Total number of atomic fields, nested levels included.
  size_t TotalAtomicFields() const;

  /// Indented display form.
  std::string ToString(int indent = 0) const;

 private:
  std::shared_ptr<const Nf2Schema> schema_;
  std::vector<std::vector<Nf2Value>> tuples_;
};

/// Conversion report: `duplicated_atoms` counts the extra copies NF²'s
/// strict hierarchy forces when the molecule set shares subobjects — the
/// quantified form of the paper's Ch. 5 comparison ("[NF²] supports only
/// hierarchical complex objects without shared subobjects").
struct Nf2ConversionStats {
  size_t distinct_atoms = 0;
  size_t materialized_atoms = 0;
  size_t duplicated_atoms() const {
    return materialized_atoms - distinct_atoms;
  }
};

struct Nf2ConversionOptions {
  /// When false, conversion fails as soon as a shared subobject would have
  /// to be duplicated.
  bool allow_duplication = true;
};

/// Converts a molecule type into a nested relation. The description must be
/// a *tree* (every non-root node has exactly one incoming directed link) —
/// NF² cannot express the diamond shapes md_graph allows. Shared atoms are
/// duplicated per parent (or rejected, per options); attribute narrowing is
/// honoured.
Result<NestedRelation> MoleculeTypeToNf2(const Database& db,
                                         const MoleculeType& mt,
                                         const Nf2ConversionOptions& options = {},
                                         Nf2ConversionStats* stats = nullptr);

}  // namespace nf2
}  // namespace mad

#endif  // MAD_RELATIONAL_NF2_H_
