#include "relational/rel_algebra.h"

#include <unordered_map>

#include "expr/eval.h"

namespace mad {
namespace rel {

namespace {

/// Wraps a tuple as a transient Atom so the shared expression evaluator
/// applies; the id is a dummy.
Result<bool> TupleMatches(const expr::Expr& predicate, const Schema& schema,
                          const std::vector<Value>& tuple) {
  Atom atom{AtomId{1}, tuple};
  return expr::EvalOnAtom(predicate, "", schema, atom);
}

std::string HashKey(const Value& v) { return v.ToString(); }

}  // namespace

Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attributes) {
  MAD_ASSIGN_OR_RETURN(Schema projected, r.schema().Project(attributes));
  std::vector<size_t> indexes;
  for (const std::string& name : attributes) {
    MAD_ASSIGN_OR_RETURN(size_t idx, r.schema().IndexOf(name));
    indexes.push_back(idx);
  }
  Relation out(std::move(projected));
  for (const auto& tuple : r.tuples()) {
    std::vector<Value> values;
    values.reserve(indexes.size());
    for (size_t idx : indexes) values.push_back(tuple[idx]);
    MAD_RETURN_IF_ERROR(out.Insert(std::move(values)).status());
  }
  return out;
}

Result<Relation> Restrict(const Relation& r, const expr::ExprPtr& predicate) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("restriction predicate must be non-null");
  }
  MAD_RETURN_IF_ERROR(expr::ValidateAgainstSchema(*predicate, "", r.schema()));
  Relation out(r.schema());
  for (const auto& tuple : r.tuples()) {
    MAD_ASSIGN_OR_RETURN(bool keep, TupleMatches(*predicate, r.schema(), tuple));
    if (keep) MAD_RETURN_IF_ERROR(out.Insert(tuple).status());
  }
  return out;
}

Result<Relation> CartesianProduct(const Relation& left, const Relation& right) {
  MAD_ASSIGN_OR_RETURN(Schema combined,
                       left.schema().ConcatDisjoint(right.schema()));
  Relation out(std::move(combined));
  for (const auto& l : left.tuples()) {
    for (const auto& r : right.tuples()) {
      std::vector<Value> values = l;
      values.insert(values.end(), r.begin(), r.end());
      MAD_RETURN_IF_ERROR(out.Insert(std::move(values)).status());
    }
  }
  return out;
}

namespace {
Status CheckSameSchema(const Relation& left, const Relation& right) {
  if (left.schema() != right.schema()) {
    return Status::InvalidArgument(
        "set operation requires identical schemas: " +
        left.schema().ToString() + " vs " + right.schema().ToString());
  }
  return Status::OK();
}
}  // namespace

Result<Relation> Union(const Relation& left, const Relation& right) {
  MAD_RETURN_IF_ERROR(CheckSameSchema(left, right));
  Relation out(left.schema());
  for (const auto& t : left.tuples()) MAD_RETURN_IF_ERROR(out.Insert(t).status());
  for (const auto& t : right.tuples()) MAD_RETURN_IF_ERROR(out.Insert(t).status());
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  MAD_RETURN_IF_ERROR(CheckSameSchema(left, right));
  Relation out(left.schema());
  for (const auto& t : left.tuples()) {
    if (!right.Contains(t)) MAD_RETURN_IF_ERROR(out.Insert(t).status());
  }
  return out;
}

Result<Relation> Intersection(const Relation& left, const Relation& right) {
  MAD_RETURN_IF_ERROR(CheckSameSchema(left, right));
  Relation out(left.schema());
  for (const auto& t : left.tuples()) {
    if (right.Contains(t)) MAD_RETURN_IF_ERROR(out.Insert(t).status());
  }
  return out;
}

Result<Relation> Rename(
    const Relation& r,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  Schema renamed = r.schema();
  for (const auto& [from, to] : renames) {
    MAD_RETURN_IF_ERROR(renamed.RenameAttribute(from, to));
  }
  Relation out(std::move(renamed));
  for (const auto& t : r.tuples()) MAD_RETURN_IF_ERROR(out.Insert(t).status());
  return out;
}

Result<Relation> EquiJoin(const Relation& left, const std::string& left_attr,
                          const Relation& right,
                          const std::string& right_attr) {
  MAD_ASSIGN_OR_RETURN(size_t li, left.schema().IndexOf(left_attr));
  MAD_ASSIGN_OR_RETURN(size_t ri, right.schema().IndexOf(right_attr));
  MAD_ASSIGN_OR_RETURN(Schema combined,
                       left.schema().ConcatDisjoint(right.schema()));

  // Hash build on the smaller side for a fair relational baseline.
  bool build_right = right.size() <= left.size();
  const Relation& build = build_right ? right : left;
  size_t build_idx = build_right ? ri : li;
  const Relation& probe = build_right ? left : right;
  size_t probe_idx = build_right ? li : ri;

  std::unordered_map<std::string, std::vector<const std::vector<Value>*>> table;
  table.reserve(build.size());
  for (const auto& t : build.tuples()) {
    table[HashKey(t[build_idx])].push_back(&t);
  }

  Relation out(std::move(combined));
  for (const auto& p : probe.tuples()) {
    auto it = table.find(HashKey(p[probe_idx]));
    if (it == table.end()) continue;
    for (const std::vector<Value>* b : it->second) {
      const std::vector<Value>& l = build_right ? p : *b;
      const std::vector<Value>& r = build_right ? *b : p;
      std::vector<Value> values = l;
      values.insert(values.end(), r.begin(), r.end());
      MAD_RETURN_IF_ERROR(out.Insert(std::move(values)).status());
    }
  }
  return out;
}

Result<Relation> NaturalJoin(const Relation& left, const Relation& right) {
  // Attributes shared by name (and type).
  std::vector<std::pair<size_t, size_t>> common;
  for (size_t i = 0; i < left.schema().attribute_count(); ++i) {
    const AttributeDescription& attr = left.schema().attribute(i);
    if (!right.schema().HasAttribute(attr.name)) continue;
    MAD_ASSIGN_OR_RETURN(size_t j, right.schema().IndexOf(attr.name));
    if (right.schema().attribute(j).type != attr.type) {
      return Status::InvalidArgument("natural join attribute '" + attr.name +
                                     "' has mismatched types");
    }
    common.emplace_back(i, j);
  }
  if (common.empty()) return CartesianProduct(left, right);

  // Result schema: left attributes + right attributes not in common.
  Schema combined = left.schema();
  std::vector<size_t> right_keep;
  for (size_t j = 0; j < right.schema().attribute_count(); ++j) {
    const AttributeDescription& attr = right.schema().attribute(j);
    if (left.schema().HasAttribute(attr.name)) continue;
    MAD_RETURN_IF_ERROR(combined.AddAttribute(attr.name, attr.type));
    right_keep.push_back(j);
  }

  auto join_key = [&](const std::vector<Value>& tuple, bool is_left) {
    std::string key;
    for (const auto& [i, j] : common) {
      key += HashKey(tuple[is_left ? i : j]);
      key += '\x1f';
    }
    return key;
  };

  std::unordered_map<std::string, std::vector<const std::vector<Value>*>> table;
  for (const auto& t : right.tuples()) table[join_key(t, false)].push_back(&t);

  Relation out(std::move(combined));
  for (const auto& l : left.tuples()) {
    auto it = table.find(join_key(l, true));
    if (it == table.end()) continue;
    for (const std::vector<Value>* r : it->second) {
      std::vector<Value> values = l;
      for (size_t j : right_keep) values.push_back((*r)[j]);
      MAD_RETURN_IF_ERROR(out.Insert(std::move(values)).status());
    }
  }
  return out;
}

}  // namespace rel
}  // namespace mad
