#include "relational/bridge.h"

namespace mad {
namespace rel {

Result<Relation> AtomTypeToRelation(const Database& db,
                                    const std::string& aname,
                                    bool include_id) {
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(aname));
  Schema schema;
  if (include_id) {
    MAD_RETURN_IF_ERROR(schema.AddAttribute("_id", DataType::kInt64));
  }
  for (const AttributeDescription& attr : at->description().attributes()) {
    MAD_RETURN_IF_ERROR(schema.AddAttribute(attr.name, attr.type));
  }
  Relation out(std::move(schema));
  for (const Atom& atom : at->occurrence().atoms()) {
    std::vector<Value> tuple;
    tuple.reserve(atom.values.size() + 1);
    if (include_id) {
      tuple.push_back(Value(static_cast<int64_t>(atom.id.value)));
    }
    tuple.insert(tuple.end(), atom.values.begin(), atom.values.end());
    MAD_RETURN_IF_ERROR(out.Insert(std::move(tuple)).status());
  }
  return out;
}

Result<RelationalDatabase> TransformToRelational(const Database& db,
                                                 TransformStats* stats) {
  RelationalDatabase out(db.name() + "_rel");
  TransformStats local;

  for (const AtomType* at : db.atom_types()) {
    MAD_ASSIGN_OR_RETURN(Relation r, AtomTypeToRelation(db, at->name(), true));
    MAD_RETURN_IF_ERROR(out.Define(at->name(), r.schema()));
    Relation* dest = *out.GetMutable(at->name());
    for (const auto& tuple : r.tuples()) {
      MAD_RETURN_IF_ERROR(dest->Insert(tuple).status());
      ++local.tuples;
    }
    ++local.entity_relations;
  }

  for (const LinkType* lt : db.link_types()) {
    Schema schema;
    MAD_RETURN_IF_ERROR(schema.AddAttribute("_from", DataType::kInt64));
    MAD_RETURN_IF_ERROR(schema.AddAttribute("_to", DataType::kInt64));
    MAD_RETURN_IF_ERROR(out.Define(lt->name(), std::move(schema)));
    Relation* dest = *out.GetMutable(lt->name());
    for (const Link& link : lt->occurrence().links()) {
      MAD_RETURN_IF_ERROR(
          dest->Insert({Value(static_cast<int64_t>(link.first.value)),
                        Value(static_cast<int64_t>(link.second.value))})
              .status());
      ++local.tuples;
    }
    ++local.auxiliary_relations;
  }

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace rel
}  // namespace mad
