#ifndef MAD_RELATIONAL_RELATION_H_
#define MAD_RELATIONAL_RELATION_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/schema.h"
#include "core/value.h"
#include "util/result.h"

namespace mad {
namespace rel {

/// A classical relation: a schema plus a *set* of tuples (duplicates are
/// eliminated on insert, unlike MAD atom types whose atoms carry identity).
/// This is the baseline model of Fig. 3's left-hand column.
class Relation {
 public:
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<std::vector<Value>>& tuples() const { return tuples_; }

  /// Inserts a tuple; returns false (without error) if an equal tuple is
  /// already present — relational set semantics.
  Result<bool> Insert(std::vector<Value> tuple);

  bool Contains(const std::vector<Value>& tuple) const;

  /// Order-insensitive equality of schema and tuple sets.
  bool operator==(const Relation& other) const;

 private:
  static std::string Fingerprint(const std::vector<Value>& tuple);

  Schema schema_;
  std::vector<std::vector<Value>> tuples_;
  std::unordered_set<std::string> present_;
};

/// A named collection of relations — the relational database the MAD model
/// degenerates to when no link types are defined.
class RelationalDatabase {
 public:
  explicit RelationalDatabase(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Status Define(const std::string& rname, Schema schema);
  Status Insert(const std::string& rname, std::vector<Value> tuple);
  Result<const Relation*> Get(const std::string& rname) const;
  Result<Relation*> GetMutable(const std::string& rname);
  bool Has(const std::string& rname) const { return index_.count(rname) > 0; }
  std::vector<std::string> relation_names() const { return order_; }
  size_t relation_count() const { return order_.size(); }
  size_t total_tuple_count() const;

 private:
  std::string name_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, Relation> index_;
};

}  // namespace rel
}  // namespace mad

#endif  // MAD_RELATIONAL_RELATION_H_
