#ifndef MAD_RELATIONAL_REL_ALGEBRA_H_
#define MAD_RELATIONAL_REL_ALGEBRA_H_

#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "relational/relation.h"

namespace mad {
namespace rel {

/// The classical relational algebra [Ul80] over set-semantics relations —
/// the baseline the molecule algebra extends (Fig. 3) and the comparator
/// for the Ch. 2 n:m traversal benchmark.

/// π: projection with duplicate elimination.
Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attributes);

/// σ: restriction by a predicate over the relation's attributes.
Result<Relation> Restrict(const Relation& r, const expr::ExprPtr& predicate);

/// ×: cartesian product; attribute names must be disjoint.
Result<Relation> CartesianProduct(const Relation& left, const Relation& right);

/// ∪, −, ∩ with identical-schema preconditions.
Result<Relation> Union(const Relation& left, const Relation& right);
Result<Relation> Difference(const Relation& left, const Relation& right);
Result<Relation> Intersection(const Relation& left, const Relation& right);

/// Attribute renaming ρ.
Result<Relation> Rename(
    const Relation& r,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// Hash-based equi-join on left.left_attr = right.right_attr. The result
/// schema is the concatenation (names must be disjoint after the join
/// columns are considered; rename first on collision). This is the derived
/// operator that makes the auxiliary-relation traversal of Ch. 2
/// expressible at its best (a fair baseline for the benchmark).
Result<Relation> EquiJoin(const Relation& left, const std::string& left_attr,
                          const Relation& right, const std::string& right_attr);

/// Natural join over the attributes common to both schemas.
Result<Relation> NaturalJoin(const Relation& left, const Relation& right);

}  // namespace rel
}  // namespace mad

#endif  // MAD_RELATIONAL_REL_ALGEBRA_H_
