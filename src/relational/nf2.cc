#include "relational/nf2.h"

#include <map>
#include <set>
#include <unordered_set>

namespace mad {
namespace nf2 {

std::string Nf2Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    const Nf2Attribute& attr = attributes_[i];
    if (attr.atomic()) {
      out += attr.name + ": " + DataTypeName(attr.type);
    } else {
      out += attr.name + ": " + attr.nested->ToString();
    }
  }
  out += ")";
  return out;
}

size_t NestedRelation::TotalAtomicFields() const {
  size_t total = 0;
  for (const auto& tuple : tuples_) {
    for (const Nf2Value& field : tuple) {
      if (field.nested == nullptr) {
        ++total;
      } else {
        total += field.nested->TotalAtomicFields();
      }
    }
  }
  return total;
}

std::string NestedRelation::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out;
  for (const auto& tuple : tuples_) {
    out += pad + "(";
    bool first = true;
    std::string nested_blocks;
    for (size_t i = 0; i < tuple.size(); ++i) {
      const Nf2Attribute& attr = schema_->attributes()[i];
      if (attr.atomic()) {
        if (!first) out += ", ";
        out += tuple[i].atomic.ToString();
        first = false;
      } else {
        nested_blocks += pad + "  " + attr.name + ":\n" +
                         tuple[i].nested->ToString(indent + 2);
      }
    }
    out += ")\n";
    out += nested_blocks;
  }
  return out;
}

namespace {

struct TreePlan {
  // Per node index: schema, out edges (edge index, child node index).
  std::vector<std::shared_ptr<const Nf2Schema>> schemas;
  std::vector<std::vector<std::pair<size_t, size_t>>> children;
  std::vector<const AtomType*> atom_types;
  std::vector<std::vector<size_t>> value_indexes;  // narrowing projection
};

Result<TreePlan> PlanTree(const Database& db, const MoleculeDescription& md) {
  // NF² needs a strict hierarchy: exactly one incoming edge per non-root
  // node.
  for (const MoleculeNode& node : md.nodes()) {
    size_t in_degree = md.InLinksOf(node.label).size();
    bool is_root = node.label == md.root_label();
    if ((is_root && in_degree != 0) || (!is_root && in_degree != 1)) {
      return Status::InvalidArgument(
          "molecule description is not a tree: node '" + node.label +
          "' has " + std::to_string(in_degree) +
          " incoming links; NF² supports only hierarchical structures");
    }
  }

  TreePlan plan;
  size_t n = md.nodes().size();
  plan.children.resize(n);
  plan.atom_types.resize(n);
  plan.value_indexes.resize(n);
  plan.schemas.resize(n);

  for (size_t j = 0; j < md.links().size(); ++j) {
    const DirectedLink& dl = md.links()[j];
    MAD_ASSIGN_OR_RETURN(size_t from, md.NodeIndex(dl.from));
    MAD_ASSIGN_OR_RETURN(size_t to, md.NodeIndex(dl.to));
    plan.children[from].emplace_back(j, to);
  }

  // Build schemas bottom-up (reverse topological order).
  std::map<std::string, size_t> order_of;
  for (size_t i = 0; i < md.topo_order().size(); ++i) {
    order_of[md.topo_order()[i]] = i;
  }
  for (size_t oi = md.topo_order().size(); oi-- > 0;) {
    MAD_ASSIGN_OR_RETURN(size_t node_idx, md.NodeIndex(md.topo_order()[oi]));
    const MoleculeNode& node = md.nodes()[node_idx];
    MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(node.type_name));
    plan.atom_types[node_idx] = at;

    auto schema = std::make_shared<Nf2Schema>();
    if (node.attributes.has_value()) {
      for (const std::string& attr : *node.attributes) {
        MAD_ASSIGN_OR_RETURN(size_t idx, at->description().IndexOf(attr));
        plan.value_indexes[node_idx].push_back(idx);
        schema->AddAtomic(attr, at->description().attribute(idx).type);
      }
    } else {
      for (size_t i = 0; i < at->description().attribute_count(); ++i) {
        plan.value_indexes[node_idx].push_back(i);
        schema->AddAtomic(at->description().attribute(i).name,
                          at->description().attribute(i).type);
      }
    }
    for (const auto& [edge_idx, child_idx] : plan.children[node_idx]) {
      schema->AddNested(md.nodes()[child_idx].label,
                        plan.schemas[child_idx]);
    }
    plan.schemas[node_idx] = std::move(schema);
  }
  return plan;
}

/// Builds the nested tuple for `atom` at `node_idx` of one molecule,
/// duplicating shared children per parent (NF² has no sharing).
Result<std::vector<Nf2Value>> BuildTuple(
    const TreePlan& plan, const MoleculeDescription& md, const Molecule& m,
    size_t node_idx, AtomId atom_id, const Nf2ConversionOptions& options,
    Nf2ConversionStats* stats,
    std::map<std::pair<size_t, uint64_t>, int>* materialization_count) {
  const AtomType* at = plan.atom_types[node_idx];
  const Atom* atom = at->occurrence().Find(atom_id);
  if (atom == nullptr) {
    return Status::Internal("molecule atom missing from store");
  }
  auto key = std::make_pair(node_idx, atom_id.value);
  int& count = (*materialization_count)[key];
  ++count;
  ++stats->materialized_atoms;
  if (count == 1) ++stats->distinct_atoms;
  if (count > 1 && !options.allow_duplication) {
    return Status::ConstraintViolation(
        "shared subobject cannot be represented in NF² without duplication");
  }

  std::vector<Nf2Value> tuple;
  for (size_t idx : plan.value_indexes[node_idx]) {
    tuple.push_back(Nf2Value{atom->values[idx], nullptr});
  }
  for (const auto& [edge_idx, child_idx] : plan.children[node_idx]) {
    auto nested =
        std::make_shared<NestedRelation>(plan.schemas[child_idx]);
    for (const MoleculeLink& link : m.links()) {
      if (link.edge_index != edge_idx || link.parent != atom_id) continue;
      MAD_ASSIGN_OR_RETURN(
          std::vector<Nf2Value> child_tuple,
          BuildTuple(plan, md, m, child_idx, link.child, options, stats,
                     materialization_count));
      nested->AddTuple(std::move(child_tuple));
    }
    tuple.push_back(Nf2Value{Value(), std::move(nested)});
  }
  return tuple;
}

}  // namespace

Result<NestedRelation> MoleculeTypeToNf2(const Database& db,
                                         const MoleculeType& mt,
                                         const Nf2ConversionOptions& options,
                                         Nf2ConversionStats* stats) {
  const MoleculeDescription& md = mt.description();
  MAD_ASSIGN_OR_RETURN(TreePlan plan, PlanTree(db, md));
  MAD_ASSIGN_OR_RETURN(size_t root_idx, md.NodeIndex(md.root_label()));

  Nf2ConversionStats local;
  std::map<std::pair<size_t, uint64_t>, int> materialization_count;

  NestedRelation out(plan.schemas[root_idx]);
  for (const Molecule& m : mt.molecules()) {
    MAD_ASSIGN_OR_RETURN(
        std::vector<Nf2Value> tuple,
        BuildTuple(plan, md, m, root_idx, m.root(), options, &local,
                   &materialization_count));
    out.AddTuple(std::move(tuple));
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace nf2
}  // namespace mad
