#include "relational/nf2_algebra.h"

#include <algorithm>
#include <map>
#include <set>

namespace mad {
namespace nf2 {

namespace {

/// Order-insensitive fingerprint of a field / tuple / relation, used for
/// grouping and set comparison.
std::string Fingerprint(const Nf2Value& value);

std::string Fingerprint(const NestedRelation& r) {
  std::vector<std::string> rows;
  rows.reserve(r.tuples().size());
  for (const auto& tuple : r.tuples()) {
    std::string row = "(";
    for (const Nf2Value& field : tuple) {
      row += Fingerprint(field);
      row += '\x1f';
    }
    row += ")";
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out = "{";
  for (const std::string& row : rows) out += row;
  out += "}";
  return out;
}

std::string Fingerprint(const Nf2Value& value) {
  if (value.nested == nullptr) return value.atomic.ToString();
  return Fingerprint(*value.nested);
}

Result<size_t> AttributeIndexOf(const Nf2Schema& schema,
                                const std::string& name) {
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    if (schema.attributes()[i].name == name) return i;
  }
  return Status::NotFound("no attribute '" + name + "' in NF2 schema " +
                          schema.ToString());
}

}  // namespace

Result<NestedRelation> Nest(const NestedRelation& r,
                            const std::vector<std::string>& nest_attrs,
                            const std::string& as) {
  if (nest_attrs.empty()) {
    return Status::InvalidArgument("nest needs at least one attribute");
  }
  std::set<size_t> nested_idx;
  for (const std::string& name : nest_attrs) {
    MAD_ASSIGN_OR_RETURN(size_t idx, AttributeIndexOf(r.schema(), name));
    if (!nested_idx.insert(idx).second) {
      return Status::InvalidArgument("nest repeats attribute '" + name + "'");
    }
  }
  if (nested_idx.size() == r.schema().attributes().size()) {
    return Status::InvalidArgument("nest must leave grouping attributes");
  }
  for (const Nf2Attribute& attr : r.schema().attributes()) {
    if (attr.name == as) {
      return Status::AlreadyExists("attribute '" + as + "' already exists");
    }
  }

  // Result schema: kept attributes in order, then the new nested one.
  auto inner_schema = std::make_shared<Nf2Schema>();
  auto outer_schema = std::make_shared<Nf2Schema>();
  std::vector<size_t> kept;
  for (size_t i = 0; i < r.schema().attributes().size(); ++i) {
    const Nf2Attribute& attr = r.schema().attributes()[i];
    auto* target = nested_idx.count(i) > 0 ? inner_schema.get()
                                           : outer_schema.get();
    if (attr.atomic()) {
      target->AddAtomic(attr.name, attr.type);
    } else {
      target->AddNested(attr.name, attr.nested);
    }
    if (nested_idx.count(i) == 0) kept.push_back(i);
  }
  outer_schema->AddNested(as, inner_schema);

  // Group by the kept attributes.
  NestedRelation out(outer_schema);
  std::map<std::string, size_t> group_of;  // key -> tuple index in out
  std::vector<std::shared_ptr<NestedRelation>> groups;
  std::vector<std::vector<Nf2Value>> result_tuples;
  for (const auto& tuple : r.tuples()) {
    std::string key;
    for (size_t i : kept) {
      key += Fingerprint(tuple[i]);
      key += '\x1f';
    }
    auto it = group_of.find(key);
    size_t group_idx;
    if (it == group_of.end()) {
      group_idx = result_tuples.size();
      group_of[key] = group_idx;
      std::vector<Nf2Value> outer;
      for (size_t i : kept) outer.push_back(tuple[i]);
      groups.push_back(std::make_shared<NestedRelation>(inner_schema));
      outer.push_back(Nf2Value{Value(), groups.back()});
      result_tuples.push_back(std::move(outer));
    } else {
      group_idx = it->second;
    }
    std::vector<Nf2Value> inner;
    for (size_t i : nested_idx) inner.push_back(tuple[i]);
    groups[group_idx]->AddTuple(std::move(inner));
  }
  for (auto& tuple : result_tuples) out.AddTuple(std::move(tuple));
  return out;
}

Result<NestedRelation> Unnest(const NestedRelation& r,
                              const std::string& attr) {
  MAD_ASSIGN_OR_RETURN(size_t idx, AttributeIndexOf(r.schema(), attr));
  const Nf2Attribute& target = r.schema().attributes()[idx];
  if (target.atomic()) {
    return Status::InvalidArgument("attribute '" + attr +
                                   "' is not relation-valued");
  }

  auto out_schema = std::make_shared<Nf2Schema>();
  for (size_t i = 0; i < r.schema().attributes().size(); ++i) {
    if (i == idx) continue;
    const Nf2Attribute& a = r.schema().attributes()[i];
    if (a.atomic()) {
      out_schema->AddAtomic(a.name, a.type);
    } else {
      out_schema->AddNested(a.name, a.nested);
    }
  }
  for (const Nf2Attribute& a : target.nested->attributes()) {
    if (a.atomic()) {
      out_schema->AddAtomic(a.name, a.type);
    } else {
      out_schema->AddNested(a.name, a.nested);
    }
  }

  NestedRelation out(out_schema);
  for (const auto& tuple : r.tuples()) {
    const NestedRelation& inner = *tuple[idx].nested;
    for (const auto& inner_tuple : inner.tuples()) {
      std::vector<Nf2Value> flat;
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i != idx) flat.push_back(tuple[i]);
      }
      flat.insert(flat.end(), inner_tuple.begin(), inner_tuple.end());
      out.AddTuple(std::move(flat));
    }
  }
  return out;
}

namespace {

Status FlattenSchema(const Nf2Schema& schema, const std::string& prefix,
                     Schema* out) {
  for (const Nf2Attribute& attr : schema.attributes()) {
    std::string name = prefix.empty() ? attr.name : prefix + "." + attr.name;
    if (attr.atomic()) {
      MAD_RETURN_IF_ERROR(out->AddAttribute(name, attr.type));
    } else {
      MAD_RETURN_IF_ERROR(FlattenSchema(*attr.nested, name, out));
    }
  }
  return Status::OK();
}

Status FlattenTuple(const Nf2Schema& schema,
                    const std::vector<Nf2Value>& tuple,
                    std::vector<Value> prefix_values, rel::Relation* out) {
  // Depth-first expansion: find the first nested attribute; atomic fields
  // before it are appended, then every inner tuple recurses.
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Nf2Attribute& attr = schema.attributes()[i];
    if (attr.atomic()) {
      prefix_values.push_back(tuple[i].atomic);
      continue;
    }
    // Cross-product with the remaining fields handled by recursion: build
    // the tail tuple view (remaining fields after this one).
    for (const auto& inner_tuple : tuple[i].nested->tuples()) {
      // Merge inner tuple then the remaining outer fields into a synthetic
      // continuation.
      std::vector<Nf2Value> continuation = inner_tuple;
      continuation.insert(continuation.end(), tuple.begin() + i + 1,
                          tuple.end());
      // Matching synthetic schema: inner attributes then remaining outer.
      Nf2Schema synthetic;
      for (const Nf2Attribute& a : attr.nested->attributes()) {
        if (a.atomic()) {
          synthetic.AddAtomic(a.name, a.type);
        } else {
          synthetic.AddNested(a.name, a.nested);
        }
      }
      for (size_t j = i + 1; j < schema.attributes().size(); ++j) {
        const Nf2Attribute& a = schema.attributes()[j];
        if (a.atomic()) {
          synthetic.AddAtomic(a.name, a.type);
        } else {
          synthetic.AddNested(a.name, a.nested);
        }
      }
      MAD_RETURN_IF_ERROR(
          FlattenTuple(synthetic, continuation, prefix_values, out));
    }
    return Status::OK();  // recursion handled the tail
  }
  return out->Insert(std::move(prefix_values)).status();
}

}  // namespace

Result<rel::Relation> Flatten(const NestedRelation& r) {
  Schema flat_schema;
  MAD_RETURN_IF_ERROR(FlattenSchema(r.schema(), "", &flat_schema));
  rel::Relation out(std::move(flat_schema));
  for (const auto& tuple : r.tuples()) {
    MAD_RETURN_IF_ERROR(FlattenTuple(r.schema(), tuple, {}, &out));
  }
  return out;
}

Result<NestedRelation> FromRelation(const rel::Relation& r) {
  auto schema = std::make_shared<Nf2Schema>();
  for (const AttributeDescription& attr : r.schema().attributes()) {
    schema->AddAtomic(attr.name, attr.type);
  }
  NestedRelation out(schema);
  for (const auto& tuple : r.tuples()) {
    std::vector<Nf2Value> fields;
    fields.reserve(tuple.size());
    for (const Value& v : tuple) fields.push_back(Nf2Value{v, nullptr});
    out.AddTuple(std::move(fields));
  }
  return out;
}

bool Nf2Equal(const NestedRelation& a, const NestedRelation& b) {
  return Fingerprint(a) == Fingerprint(b);
}

}  // namespace nf2
}  // namespace mad
