#ifndef MAD_RELATIONAL_NF2_ALGEBRA_H_
#define MAD_RELATIONAL_NF2_ALGEBRA_H_

#include <string>
#include <vector>

#include "relational/nf2.h"
#include "relational/relation.h"

namespace mad {
namespace nf2 {

/// The characteristic NF² operations of [SS86] — the algebra the molecule
/// algebra extends (Ch. 5): nest folds a group of attributes into a
/// relation-valued attribute, unnest unfolds one level, flatten unfolds all
/// levels back into a 1NF relation.

/// ν: groups tuples by the attributes *not* in `nest_attrs`; each group's
/// `nest_attrs` projections become one nested relation stored under `as`.
Result<NestedRelation> Nest(const NestedRelation& r,
                            const std::vector<std::string>& nest_attrs,
                            const std::string& as);

/// μ: unfolds the relation-valued attribute `attr` one level; tuples whose
/// nested relation is empty disappear (classical unnest semantics).
Result<NestedRelation> Unnest(const NestedRelation& r, const std::string& attr);

/// Full flattening into a first-normal-form relation. Nested attribute
/// names are prefixed with their path ("area.edge.name"); tuples vanish
/// wherever any nesting level is empty.
Result<rel::Relation> Flatten(const NestedRelation& r);

/// Lifts a flat relation into a (trivially flat) nested relation so nest
/// can be applied to classical relations.
Result<NestedRelation> FromRelation(const rel::Relation& r);

/// Set equality of nested relations (order-insensitive at every level).
bool Nf2Equal(const NestedRelation& a, const NestedRelation& b);

}  // namespace nf2
}  // namespace mad

#endif  // MAD_RELATIONAL_NF2_ALGEBRA_H_
