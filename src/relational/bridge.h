#ifndef MAD_RELATIONAL_BRIDGE_H_
#define MAD_RELATIONAL_BRIDGE_H_

#include <string>

#include "relational/relation.h"
#include "storage/database.h"

namespace mad {
namespace rel {

/// Statistics of a MAD → relational transformation; the auxiliary-relation
/// count quantifies the Ch. 2 observation that "all n:m relationship types
/// have to be modeled by some auxiliary relations".
struct TransformStats {
  size_t entity_relations = 0;
  size_t auxiliary_relations = 0;
  size_t tuples = 0;
};

/// Transforms a MAD database into the equivalent relational database:
///
///   * every atom type becomes a relation `{_id: INT64} ∪ attributes`
///     (the surrogate key stands in for atom identity);
///   * every link type becomes an auxiliary relation
///     `{_from: INT64, _to: INT64}` under the link type's name (links are
///     treated uniformly as n:m — the general case).
///
/// The reverse direction of Fig. 3's concept table.
Result<RelationalDatabase> TransformToRelational(const Database& db,
                                                 TransformStats* stats = nullptr);

/// Converts one atom type to a relation. With `include_id` the surrogate
/// `_id` column is kept; without it, the conversion is the pure Fig. 3
/// degeneration (atoms project onto value tuples, duplicates collapse).
Result<Relation> AtomTypeToRelation(const Database& db,
                                    const std::string& aname, bool include_id);

}  // namespace rel
}  // namespace mad

#endif  // MAD_RELATIONAL_BRIDGE_H_
