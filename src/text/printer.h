#ifndef MAD_TEXT_PRINTER_H_
#define MAD_TEXT_PRINTER_H_

#include <string>

#include "er/er_model.h"
#include "molecule/molecule_type.h"
#include "molecule/recursive.h"
#include "molecule/statistics.h"
#include "storage/database.h"
#include "storage/durable_database.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace mad {
namespace text {

/// Fig. 4 style: the formal specification of a database — every atom type
/// as <name, description, occurrence> and every link type as
/// <name, {types}, {links}>. At most `max_items` occurrence elements are
/// printed per type ("..." marks truncation).
std::string FormatDatabaseSpec(const Database& db, size_t max_items = 4);

/// Fig. 1 (lower part) style: the MAD diagram — atom types as boxes-by-name
/// and link types as edges.
std::string FormatMadDiagram(const Database& db);

/// Fig. 1 (upper part) style: the ER diagram with cardinalities.
std::string FormatErDiagram(const er::ErSchema& er);

/// One atom as "<SP, 1000>".
std::string FormatAtom(const Database& db, const std::string& type_name,
                       AtomId id);

/// Fig. 2 style: one molecule — per description node the atoms, then the
/// component links.
std::string FormatMolecule(const Database& db, const MoleculeDescription& md,
                           const Molecule& molecule);

/// Fig. 2 style: a molecule type — structure line plus up to
/// `max_molecules` molecules of the set.
std::string FormatMoleculeType(const Database& db, const MoleculeType& mt,
                               size_t max_molecules = 4);

/// A recursive molecule as an indented component tree (levels).
std::string FormatRecursiveMolecule(const Database& db,
                                    const RecursiveDescription& rd,
                                    const RecursiveMolecule& molecule);

/// Fig. 3: the relational-vs-MAD concept correspondence table.
std::string FormatConceptComparison();

/// One line of derivation-run counters, e.g.
/// "derived 5 molecules: 23 atoms visited, 41 links scanned, 4 threads, 0.18 ms".
std::string FormatDerivationStats(const DerivationStats& stats);

/// One line of durability counters, e.g.
/// "durable at gen 2 (sync off): 17 records logged (482 bytes), 3 syncs,
/// 1 checkpoint".
std::string FormatDurabilityStats(const DurabilityStats& stats);

/// The operator span tree of one traced statement, indented by nesting:
///
///   select  0.81 ms  [t0]  rows out 5
///     derive (1 thread)  0.52 ms  [t0]  10 -> 5
///     sigma [point.name = 'pn']  0.11 ms  [t0]  5 -> 1
///
/// Long runs of same-named siblings (e.g. thousands of wal.append spans)
/// are collapsed into the first occurrence plus an aggregate line.
std::string FormatQueryTrace(const QueryTrace& trace);

/// Stable machine-readable form:
/// {"total_ns": N, "spans": [{"id", "parent", "name", "note", "start_ns",
/// "duration_ns", "rows_in", "rows_out", "thread"}, ...]} — spans in start
/// order, parent always before child.
std::string QueryTraceToJson(const QueryTrace& trace);

/// Human-readable metrics table: one line per instrument, sorted by name.
std::string FormatMetricsSnapshot(const MetricsSnapshot& snapshot);

/// Stable machine-readable form:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"count",
/// "sum_us", "max_us", "p50_us", "p99_us"}, ...}} — keys sorted by name.
std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

}  // namespace text
}  // namespace mad

#endif  // MAD_TEXT_PRINTER_H_
