#include "text/printer.h"

#include <cstdio>

namespace mad {
namespace text {

namespace {

std::string AtomBody(const Atom& atom) {
  std::string out = "<";
  for (size_t i = 0; i < atom.values.size(); ++i) {
    if (i > 0) out += ", ";
    out += atom.values[i].ToString();
  }
  out += ">";
  return out;
}

}  // namespace

std::string FormatAtom(const Database& db, const std::string& type_name,
                       AtomId id) {
  auto at = db.GetAtomType(type_name);
  if (!at.ok()) return "<?>";
  const Atom* atom = (*at)->occurrence().Find(id);
  if (atom == nullptr) return "<#" + std::to_string(id.value) + "?>";
  return AtomBody(*atom);
}

std::string FormatDatabaseSpec(const Database& db, size_t max_items) {
  std::string out;
  out += "-- formal specification of database " + db.name() + " --\n";
  for (const AtomType* at : db.atom_types()) {
    out += at->name() + " = <" + at->name() + ", " +
           at->description().ToString() + ", {";
    const auto& atoms = at->occurrence().atoms();
    for (size_t i = 0; i < atoms.size() && i < max_items; ++i) {
      if (i > 0) out += ", ";
      out += AtomBody(atoms[i]);
    }
    if (atoms.size() > max_items) out += ", ...";
    out += "}> in AT*\n";
  }
  for (const LinkType* lt : db.link_types()) {
    out += lt->name() + " = <" + lt->name() + ", {" + lt->first_atom_type() +
           ", " + lt->second_atom_type() + "}, {";
    const auto& links = lt->occurrence().links();
    for (size_t i = 0; i < links.size() && i < max_items; ++i) {
      if (i > 0) out += ", ";
      out += "<#" + std::to_string(links[i].first.value) + ", #" +
             std::to_string(links[i].second.value) + ">";
    }
    if (links.size() > max_items) out += ", ...";
    out += "}> in LT*\n";
  }
  out += db.name() + " = <{";
  bool first = true;
  for (const AtomType* at : db.atom_types()) {
    if (!first) out += ", ";
    out += at->name();
    first = false;
  }
  out += "}, {";
  first = true;
  for (const LinkType* lt : db.link_types()) {
    if (!first) out += ", ";
    out += lt->name();
    first = false;
  }
  out += "}> in DB*\n";
  return out;
}

std::string FormatMadDiagram(const Database& db) {
  std::string out = "-- MAD diagram (database schema) of " + db.name() + " --\n";
  out += "atom types:\n";
  for (const AtomType* at : db.atom_types()) {
    out += "  [" + at->name() + "] " + at->description().ToString() + "\n";
  }
  out += "link types (nondirectional):\n";
  for (const LinkType* lt : db.link_types()) {
    out += "  " + lt->first_atom_type() + " ---" + lt->name() + "--- " +
           lt->second_atom_type();
    if (lt->reflexive()) out += "  (reflexive)";
    if (lt->cardinality() != LinkCardinality::kManyToMany) {
      out += std::string("  [") + LinkCardinalityName(lt->cardinality()) + "]";
    }
    out += "\n";
  }
  return out;
}

std::string FormatErDiagram(const er::ErSchema& er) {
  std::string out = "-- ER diagram --\n";
  out += "entity types:\n";
  for (const er::EntityType& entity : er.entity_types()) {
    out += "  [" + entity.name + "] " + entity.attributes.ToString() + "\n";
  }
  out += "relationship types:\n";
  for (const er::RelationshipType& rel : er.relationship_types()) {
    out += "  " + rel.left + " <" + rel.name + " " +
           er::CardinalityName(rel.cardinality) + "> " + rel.right + "\n";
  }
  return out;
}

std::string FormatMolecule(const Database& db, const MoleculeDescription& md,
                           const Molecule& molecule) {
  std::string out = "molecule(root=" + FormatAtom(
      db, md.root_node().type_name, molecule.root()) + ")\n";
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    const MoleculeNode& node = md.nodes()[i];
    out += "  " + node.label + ": {";
    const auto& atoms = molecule.AtomsOf(i);
    for (size_t j = 0; j < atoms.size(); ++j) {
      if (j > 0) out += ", ";
      out += FormatAtom(db, node.type_name, atoms[j]);
    }
    out += "}\n";
  }
  out += "  links: {";
  for (size_t j = 0; j < molecule.links().size(); ++j) {
    if (j > 0) out += ", ";
    const MoleculeLink& link = molecule.links()[j];
    out += "<#" + std::to_string(link.parent.value) + ", #" +
           std::to_string(link.child.value) + ">";
  }
  out += "}\n";
  return out;
}

std::string FormatMoleculeType(const Database& db, const MoleculeType& mt,
                               size_t max_molecules) {
  std::string out = "molecule type '" + mt.name() + "'\n";
  out += "  structure: " + mt.description().ToString() + "\n";
  out += "  molecule set (" + std::to_string(mt.size()) + " molecules):\n";
  for (size_t i = 0; i < mt.molecules().size() && i < max_molecules; ++i) {
    std::string body = FormatMolecule(db, mt.description(), mt.molecules()[i]);
    // Indent the molecule block.
    out += "    ";
    for (char c : body) {
      out += c;
      if (c == '\n') out += "    ";
    }
    // Trim the dangling indent after the final newline.
    while (!out.empty() && out.back() == ' ') out.pop_back();
  }
  if (mt.size() > max_molecules) out += "    ...\n";
  return out;
}

std::string FormatRecursiveMolecule(const Database& db,
                                    const RecursiveDescription& rd,
                                    const RecursiveMolecule& molecule) {
  std::string out = "recursive molecule over " + rd.atom_type + "-[" +
                    rd.link_type +
                    (rd.direction == LinkDirection::kBackward ? "~" : "") +
                    "*]\n";
  for (size_t level = 0; level < molecule.levels().size(); ++level) {
    out += "  level " + std::to_string(level) + ": {";
    const auto& atoms = molecule.levels()[level];
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatAtom(db, rd.atom_type, atoms[i]);
    }
    out += "}\n";
  }
  return out;
}

std::string FormatConceptComparison() {
  // Fig. 3 verbatim.
  return
      "relational concepts      | MAD concepts\n"
      "-------------------------+-------------------------\n"
      "attribute                | attribute\n"
      "attribute domain         | attribute domain\n"
      "relation schema          | atom-type description\n"
      "tuple set                | atom-type occurrence\n"
      "tuple                    | atom\n"
      "relation                 | atom type\n"
      "database                 | database\n"
      "-                        | link\n"
      "-                        | link-type description\n"
      "-                        | link-type occurrence\n"
      "-                        | link type\n"
      "referential integrity(?) | referential integrity(!)\n"
      "'relation domain'        | database domain\n";
}

std::string FormatDerivationStats(const DerivationStats& stats) {
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.2f", stats.wall_ms);
  return "derived " + std::to_string(stats.roots) + " molecule" +
         (stats.roots == 1 ? "" : "s") + ": " +
         std::to_string(stats.atoms_visited) + " atoms visited, " +
         std::to_string(stats.links_scanned) + " links scanned, " +
         std::to_string(stats.threads_used) +
         (stats.threads_used == 1 ? " thread, " : " threads, ") + wall +
         " ms";
}

std::string FormatDurabilityStats(const DurabilityStats& stats) {
  std::string out = "durable at gen " + std::to_string(stats.generation) +
                    " (sync " + (stats.sync ? "on" : "off") + "): " +
                    std::to_string(stats.records_appended) + " record" +
                    (stats.records_appended == 1 ? "" : "s") + " logged (" +
                    std::to_string(stats.bytes_appended) + " bytes), " +
                    std::to_string(stats.sync_count) + " sync" +
                    (stats.sync_count == 1 ? "" : "s") + ", " +
                    std::to_string(stats.checkpoint_count) + " checkpoint" +
                    (stats.checkpoint_count == 1 ? "" : "s");
  if (stats.replayed_records > 0 || stats.wal_torn_tail) {
    out += "; recovered " + std::to_string(stats.replayed_records) +
           " record" + (stats.replayed_records == 1 ? "" : "s");
    if (stats.wal_torn_tail) {
      out += ", torn tail of " + std::to_string(stats.wal_discarded_bytes) +
             " byte" + (stats.wal_discarded_bytes == 1 ? "" : "s") +
             " discarded";
    }
  }
  return out;
}

}  // namespace text
}  // namespace mad
