#include "text/printer.h"

#include <algorithm>
#include <cstdio>

namespace mad {
namespace text {

namespace {

std::string AtomBody(const Atom& atom) {
  std::string out = "<";
  for (size_t i = 0; i < atom.values.size(); ++i) {
    if (i > 0) out += ", ";
    out += atom.values[i].ToString();
  }
  out += ">";
  return out;
}

}  // namespace

std::string FormatAtom(const Database& db, const std::string& type_name,
                       AtomId id) {
  auto at = db.GetAtomType(type_name);
  if (!at.ok()) return "<?>";
  const Atom* atom = (*at)->occurrence().Find(id);
  if (atom == nullptr) return "<#" + std::to_string(id.value) + "?>";
  return AtomBody(*atom);
}

std::string FormatDatabaseSpec(const Database& db, size_t max_items) {
  std::string out;
  out += "-- formal specification of database " + db.name() + " --\n";
  for (const AtomType* at : db.atom_types()) {
    out += at->name() + " = <" + at->name() + ", " +
           at->description().ToString() + ", {";
    const auto& atoms = at->occurrence().atoms();
    for (size_t i = 0; i < atoms.size() && i < max_items; ++i) {
      if (i > 0) out += ", ";
      out += AtomBody(atoms[i]);
    }
    if (atoms.size() > max_items) out += ", ...";
    out += "}> in AT*\n";
  }
  for (const LinkType* lt : db.link_types()) {
    out += lt->name() + " = <" + lt->name() + ", {" + lt->first_atom_type() +
           ", " + lt->second_atom_type() + "}, {";
    const auto& links = lt->occurrence().links();
    for (size_t i = 0; i < links.size() && i < max_items; ++i) {
      if (i > 0) out += ", ";
      out += "<#" + std::to_string(links[i].first.value) + ", #" +
             std::to_string(links[i].second.value) + ">";
    }
    if (links.size() > max_items) out += ", ...";
    out += "}> in LT*\n";
  }
  out += db.name() + " = <{";
  bool first = true;
  for (const AtomType* at : db.atom_types()) {
    if (!first) out += ", ";
    out += at->name();
    first = false;
  }
  out += "}, {";
  first = true;
  for (const LinkType* lt : db.link_types()) {
    if (!first) out += ", ";
    out += lt->name();
    first = false;
  }
  out += "}> in DB*\n";
  return out;
}

std::string FormatMadDiagram(const Database& db) {
  std::string out = "-- MAD diagram (database schema) of " + db.name() + " --\n";
  out += "atom types:\n";
  for (const AtomType* at : db.atom_types()) {
    out += "  [" + at->name() + "] " + at->description().ToString() + "\n";
  }
  out += "link types (nondirectional):\n";
  for (const LinkType* lt : db.link_types()) {
    out += "  " + lt->first_atom_type() + " ---" + lt->name() + "--- " +
           lt->second_atom_type();
    if (lt->reflexive()) out += "  (reflexive)";
    if (lt->cardinality() != LinkCardinality::kManyToMany) {
      out += std::string("  [") + LinkCardinalityName(lt->cardinality()) + "]";
    }
    out += "\n";
  }
  return out;
}

std::string FormatErDiagram(const er::ErSchema& er) {
  std::string out = "-- ER diagram --\n";
  out += "entity types:\n";
  for (const er::EntityType& entity : er.entity_types()) {
    out += "  [" + entity.name + "] " + entity.attributes.ToString() + "\n";
  }
  out += "relationship types:\n";
  for (const er::RelationshipType& rel : er.relationship_types()) {
    out += "  " + rel.left + " <" + rel.name + " " +
           er::CardinalityName(rel.cardinality) + "> " + rel.right + "\n";
  }
  return out;
}

std::string FormatMolecule(const Database& db, const MoleculeDescription& md,
                           const Molecule& molecule) {
  std::string out = "molecule(root=" + FormatAtom(
      db, md.root_node().type_name, molecule.root()) + ")\n";
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    const MoleculeNode& node = md.nodes()[i];
    out += "  " + node.label + ": {";
    const auto& atoms = molecule.AtomsOf(i);
    for (size_t j = 0; j < atoms.size(); ++j) {
      if (j > 0) out += ", ";
      out += FormatAtom(db, node.type_name, atoms[j]);
    }
    out += "}\n";
  }
  out += "  links: {";
  for (size_t j = 0; j < molecule.links().size(); ++j) {
    if (j > 0) out += ", ";
    const MoleculeLink& link = molecule.links()[j];
    out += "<#" + std::to_string(link.parent.value) + ", #" +
           std::to_string(link.child.value) + ">";
  }
  out += "}\n";
  return out;
}

std::string FormatMoleculeType(const Database& db, const MoleculeType& mt,
                               size_t max_molecules) {
  std::string out = "molecule type '" + mt.name() + "'\n";
  out += "  structure: " + mt.description().ToString() + "\n";
  out += "  molecule set (" + std::to_string(mt.size()) + " molecules):\n";
  for (size_t i = 0; i < mt.molecules().size() && i < max_molecules; ++i) {
    std::string body = FormatMolecule(db, mt.description(), mt.molecules()[i]);
    // Indent the molecule block.
    out += "    ";
    for (char c : body) {
      out += c;
      if (c == '\n') out += "    ";
    }
    // Trim the dangling indent after the final newline.
    while (!out.empty() && out.back() == ' ') out.pop_back();
  }
  if (mt.size() > max_molecules) out += "    ...\n";
  return out;
}

std::string FormatRecursiveMolecule(const Database& db,
                                    const RecursiveDescription& rd,
                                    const RecursiveMolecule& molecule) {
  std::string out = "recursive molecule over " + rd.atom_type + "-[" +
                    rd.link_type +
                    (rd.direction == LinkDirection::kBackward ? "~" : "") +
                    "*]\n";
  for (size_t level = 0; level < molecule.levels().size(); ++level) {
    out += "  level " + std::to_string(level) + ": {";
    const auto& atoms = molecule.levels()[level];
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatAtom(db, rd.atom_type, atoms[i]);
    }
    out += "}\n";
  }
  return out;
}

std::string FormatConceptComparison() {
  // Fig. 3 verbatim.
  return
      "relational concepts      | MAD concepts\n"
      "-------------------------+-------------------------\n"
      "attribute                | attribute\n"
      "attribute domain         | attribute domain\n"
      "relation schema          | atom-type description\n"
      "tuple set                | atom-type occurrence\n"
      "tuple                    | atom\n"
      "relation                 | atom type\n"
      "database                 | database\n"
      "-                        | link\n"
      "-                        | link-type description\n"
      "-                        | link-type occurrence\n"
      "-                        | link type\n"
      "referential integrity(?) | referential integrity(!)\n"
      "'relation domain'        | database domain\n";
}

std::string FormatDerivationStats(const DerivationStats& stats) {
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.2f", stats.wall_ms);
  const size_t derived = stats.roots - stats.molecules_rejected;
  std::string out =
      "derived " + std::to_string(derived) + " molecule" +
      (derived == 1 ? "" : "s") + ": " +
      std::to_string(stats.atoms_visited) + " atoms visited, " +
      std::to_string(stats.links_scanned) + " links scanned, " +
      std::to_string(stats.threads_used) +
      (stats.threads_used == 1 ? " thread, " : " threads, ") + wall + " ms";
  if (stats.molecules_rejected > 0) {
    out += ", " + std::to_string(stats.molecules_rejected) +
           " rejected by pushed filters";
  }
  return out;
}

std::string FormatDurabilityStats(const DurabilityStats& stats) {
  std::string out = "durable at gen " + std::to_string(stats.generation) +
                    " (sync " + (stats.sync ? "on" : "off") + "): " +
                    std::to_string(stats.records_appended) + " record" +
                    (stats.records_appended == 1 ? "" : "s") + " logged (" +
                    std::to_string(stats.bytes_appended) + " bytes), " +
                    std::to_string(stats.sync_count) + " sync" +
                    (stats.sync_count == 1 ? "" : "s") + ", " +
                    std::to_string(stats.checkpoint_count) + " checkpoint" +
                    (stats.checkpoint_count == 1 ? "" : "s");
  if (stats.replayed_records > 0 || stats.wal_torn_tail) {
    out += "; recovered " + std::to_string(stats.replayed_records) +
           " record" + (stats.replayed_records == 1 ? "" : "s");
    if (stats.wal_torn_tail) {
      out += ", torn tail of " + std::to_string(stats.wal_discarded_bytes) +
             " byte" + (stats.wal_discarded_bytes == 1 ? "" : "s") +
             " discarded";
    }
  }
  return out;
}

namespace {

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms",
                  static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f us",
                  static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

std::string SpanRows(const TraceSpan& span) {
  if (span.rows_in < 0 && span.rows_out < 0) return "";
  if (span.rows_in < 0) return "  rows out " + std::to_string(span.rows_out);
  if (span.rows_out < 0) return "  rows in " + std::to_string(span.rows_in);
  return "  " + std::to_string(span.rows_in) + " -> " +
         std::to_string(span.rows_out);
}

/// Consecutive same-named siblings beyond this many collapse into one
/// aggregate line, keeping traces with thousands of WAL appends readable.
constexpr size_t kMaxSiblingRun = 3;

void AppendSpanLine(const TraceSpan& span, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  *out += span.name;
  if (!span.note.empty()) *out += " [" + span.note + "]";
  *out += "  " + FormatNs(span.duration_ns) + "  [t" +
          std::to_string(span.thread) + "]" + SpanRows(span) + "\n";
}

void AppendSpanTree(const std::vector<TraceSpan>& spans,
                    const std::vector<std::vector<size_t>>& children,
                    size_t index, size_t depth, std::string* out) {
  AppendSpanLine(spans[index], depth, out);
  const std::vector<size_t>& kids = children[index];
  for (size_t i = 0; i < kids.size();) {
    // Measure the run of same-named siblings starting at i.
    size_t j = i;
    while (j < kids.size() &&
           spans[kids[j]].name == spans[kids[i]].name) {
      ++j;
    }
    size_t run = j - i;
    if (run <= kMaxSiblingRun) {
      for (size_t k = i; k < j; ++k) {
        AppendSpanTree(spans, children, kids[k], depth + 1, out);
      }
    } else {
      AppendSpanTree(spans, children, kids[i], depth + 1, out);
      uint64_t total_ns = 0;
      for (size_t k = i + 1; k < j; ++k) {
        total_ns += spans[kids[k]].duration_ns;
      }
      out->append(2 * (depth + 1), ' ');
      *out += "... " + std::to_string(run - 1) + " more " +
              spans[kids[i]].name + " span" + (run - 1 == 1 ? "" : "s") +
              ", total " + FormatNs(total_ns) + "\n";
    }
    i = j;
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatQueryTrace(const QueryTrace& trace) {
  const std::vector<TraceSpan>& spans = trace.spans();
  std::string out =
      "trace: " + std::to_string(spans.size()) + " span" +
      (spans.size() == 1 ? "" : "s") + ", total " +
      FormatNs(trace.total_duration_ns()) + "\n";
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == TraceSpan::kNoParent) {
      roots.push_back(i);
    } else {
      children[static_cast<size_t>(spans[i].parent)].push_back(i);
    }
  }
  for (size_t root : roots) {
    AppendSpanTree(spans, children, root, 1, &out);
  }
  return out;
}

std::string QueryTraceToJson(const QueryTrace& trace) {
  std::string out = "{\"total_ns\": " +
                    std::to_string(trace.total_duration_ns()) +
                    ", \"spans\": [";
  bool first = true;
  for (const TraceSpan& span : trace.spans()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": " + std::to_string(span.id) +
           ", \"parent\": " + std::to_string(span.parent) + ", \"name\": \"" +
           JsonEscape(span.name) + "\", \"note\": \"" + JsonEscape(span.note) +
           "\", \"start_ns\": " + std::to_string(span.start_ns) +
           ", \"duration_ns\": " + std::to_string(span.duration_ns) +
           ", \"rows_in\": " + std::to_string(span.rows_in) +
           ", \"rows_out\": " + std::to_string(span.rows_out) +
           ", \"thread\": " + std::to_string(span.thread) + "}";
  }
  out += "]}";
  return out;
}

std::string FormatMetricsSnapshot(const MetricsSnapshot& snapshot) {
  if (snapshot.samples.empty()) return "no metrics recorded\n";
  size_t width = 0;
  for (const MetricSample& s : snapshot.samples) {
    width = std::max(width, s.name.size());
  }
  std::string out;
  for (const MetricSample& s : snapshot.samples) {
    out += s.name;
    out.append(width - s.name.size() + 2, ' ');
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        out += std::to_string(s.value);
        break;
      case MetricSample::Kind::kHistogram:
        out += "count " + std::to_string(s.count) + ", mean " +
               FormatNs(s.count == 0 ? 0 : (s.sum_us / s.count) * 1000) +
               ", p50 <= " + FormatNs(s.p50_us * 1000) + ", p99 <= " +
               FormatNs(s.p99_us * 1000) + ", max " +
               FormatNs(s.max_us * 1000);
        break;
    }
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string counters, gauges, histograms;
  for (const MetricSample& s : snapshot.samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += "\"" + JsonEscape(s.name) +
                    "\": " + std::to_string(s.value);
        break;
      case MetricSample::Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + JsonEscape(s.name) + "\": " + std::to_string(s.value);
        break;
      case MetricSample::Kind::kHistogram:
        if (!histograms.empty()) histograms += ", ";
        histograms += "\"" + JsonEscape(s.name) + "\": {\"count\": " +
                      std::to_string(s.count) + ", \"sum_us\": " +
                      std::to_string(s.sum_us) + ", \"max_us\": " +
                      std::to_string(s.max_us) + ", \"p50_us\": " +
                      std::to_string(s.p50_us) + ", \"p99_us\": " +
                      std::to_string(s.p99_us) + "}";
        break;
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

}  // namespace text
}  // namespace mad
