#include "algebra/atom_algebra.h"

#include <unordered_map>
#include <unordered_set>

#include "expr/eval.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace mad {
namespace algebra {

namespace {

/// Inherits every link type touching `source` onto the identity-preserving
/// result type `result` (used by π, σ, ω, δ): the inherited occurrence is
/// the subset of links whose `source`-side atom survived into the result.
/// A reflexive link type is inherited as a reflexive link type on the
/// result (both ends filtered to survivors).
Result<std::vector<std::string>> InheritLinksIdentity(
    Database& db, const std::vector<std::string>& sources,
    const std::string& result) {
  std::vector<std::string> inherited;
  const AtomType* result_type = *db.GetAtomType(result);

  // Snapshot the link-type list first: we add link types while iterating.
  struct Item {
    std::string lname;
    std::string first;
    std::string second;
  };
  std::vector<Item> todo;
  std::unordered_set<std::string> source_set(sources.begin(), sources.end());
  for (const std::string& source : sources) {
    for (const LinkType* lt : db.LinkTypesTouching(source)) {
      todo.push_back(Item{lt->name(), lt->first_atom_type(),
                          lt->second_atom_type()});
    }
  }
  // A link type touching two distinct sources is collected twice; dedupe.
  std::unordered_set<std::string> seen;

  for (const Item& item : todo) {
    if (!seen.insert(item.lname).second) continue;
    const LinkType* lt = *db.GetLinkType(item.lname);

    bool first_is_source = source_set.count(item.first) > 0;
    bool second_is_source = source_set.count(item.second) > 0;
    std::string new_first = first_is_source ? result : item.first;
    std::string new_second = second_is_source ? result : item.second;

    std::string new_name = db.UniqueLinkTypeName(item.lname + "@" + result);
    MAD_RETURN_IF_ERROR(db.DefineLinkType(new_name, new_first, new_second));
    for (const Link& link : lt->occurrence().links()) {
      if (first_is_source && !result_type->occurrence().Contains(link.first)) {
        continue;
      }
      if (second_is_source &&
          !result_type->occurrence().Contains(link.second)) {
        continue;
      }
      MAD_RETURN_IF_ERROR(db.InsertLink(new_name, link.first, link.second));
    }
    inherited.push_back(new_name);
  }
  return inherited;
}

/// Product-style inheritance shared by × and the derived theta-join: each
/// role of each operand link type is inherited separately; a result atom
/// a1&a2 takes over the links of both components. `provenance` holds
/// (result id, left component, right component) per result atom.
Result<std::vector<std::string>> InheritLinksProduct(
    Database& db, const std::string& name, const std::string& left,
    const std::string& right,
    const std::vector<std::tuple<AtomId, AtomId, AtomId>>& provenance) {
  struct Item {
    std::string lname;
    bool component_is_first;  // operand atom plays the link's first role
    bool left_component;      // inherit through the left or right component
  };
  std::vector<Item> todo;
  for (const LinkType* l : db.LinkTypesTouching(left)) {
    if (l->first_atom_type() == left) todo.push_back({l->name(), true, true});
    if (l->second_atom_type() == left) todo.push_back({l->name(), false, true});
  }
  for (const LinkType* l : db.LinkTypesTouching(right)) {
    if (l->first_atom_type() == right) todo.push_back({l->name(), true, false});
    if (l->second_atom_type() == right) {
      todo.push_back({l->name(), false, false});
    }
  }

  std::vector<std::string> inherited;
  for (const Item& item : todo) {
    const LinkType* l = *db.GetLinkType(item.lname);
    std::string other = item.component_is_first ? l->second_atom_type()
                                                : l->first_atom_type();
    std::string new_name = db.UniqueLinkTypeName(item.lname + "@" + name);
    if (item.component_is_first) {
      MAD_RETURN_IF_ERROR(db.DefineLinkType(new_name, name, other));
    } else {
      MAD_RETURN_IF_ERROR(db.DefineLinkType(new_name, other, name));
    }
    for (const auto& [id, l_src, r_src] : provenance) {
      AtomId component = item.left_component ? l_src : r_src;
      LinkDirection dir = item.component_is_first ? LinkDirection::kForward
                                                  : LinkDirection::kBackward;
      for (AtomId partner : l->occurrence().Partners(component, dir)) {
        Status s = item.component_is_first
                       ? db.InsertLink(new_name, id, partner)
                       : db.InsertLink(new_name, partner, id);
        // Distinct source links may map onto the same inherited pair.
        if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
      }
    }
    inherited.push_back(new_name);
  }
  return inherited;
}

std::string PickAtomTypeName(Database& db, const std::string& requested,
                             const std::string& fallback_prefix) {
  if (!requested.empty()) return requested;
  return db.UniqueAtomTypeName(fallback_prefix);
}

/// Detects the indexable pattern `attr = literal` (either operand order,
/// qualifier absent or equal to `source`). Returns true and fills the
/// outputs on a match.
bool MatchEqualityPattern(const expr::Expr& predicate,
                          const std::string& source, std::string* attribute,
                          Value* literal) {
  if (predicate.kind() != expr::Expr::Kind::kCompare ||
      predicate.compare_op() != expr::CompareOp::kEq) {
    return false;
  }
  const expr::Expr* lhs = predicate.left().get();
  const expr::Expr* rhs = predicate.right().get();
  if (lhs->kind() == expr::Expr::Kind::kLiteral &&
      rhs->kind() == expr::Expr::Kind::kAttrRef) {
    std::swap(lhs, rhs);
  }
  if (lhs->kind() != expr::Expr::Kind::kAttrRef ||
      rhs->kind() != expr::Expr::Kind::kLiteral) {
    return false;
  }
  if (!lhs->qualifier().empty() && lhs->qualifier() != source) return false;
  *attribute = lhs->attribute();
  *literal = rhs->literal();
  return true;
}

/// Occurrence size of `aname` for span cardinalities; -1 if unknown.
int64_t OccurrenceSize(const Database& db, const std::string& aname) {
  auto at = db.GetAtomType(aname);
  return at.ok() ? static_cast<int64_t>((*at)->occurrence().size()) : -1;
}

}  // namespace

Result<OpResult> Project(Database& db, const std::string& source,
                         const std::vector<std::string>& attributes,
                         const std::string& result_name,
                         const AlgebraOptions& options) {
  static Counter& ops = Registry::Global().GetCounter("atom_ops.pi");
  ops.Increment();
  ScopedSpan span("atom.pi", source);
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(source));
  span.set_rows_in(static_cast<int64_t>(at->occurrence().size()));
  span.set_rows_out(static_cast<int64_t>(at->occurrence().size()));
  MAD_ASSIGN_OR_RETURN(Schema projected, at->description().Project(attributes));

  std::vector<size_t> indexes;
  indexes.reserve(attributes.size());
  for (const std::string& name : attributes) {
    MAD_ASSIGN_OR_RETURN(size_t idx, at->description().IndexOf(name));
    indexes.push_back(idx);
  }

  std::string name = PickAtomTypeName(db, result_name, "project(" + source + ")");
  MAD_RETURN_IF_ERROR(db.DefineAtomType(name, std::move(projected)));
  for (const Atom& atom : at->occurrence().atoms()) {
    std::vector<Value> values;
    values.reserve(indexes.size());
    for (size_t idx : indexes) values.push_back(atom.values[idx]);
    MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, atom.id, std::move(values)));
  }

  OpResult result{name, {}};
  if (options.inherit_links) {
    MAD_ASSIGN_OR_RETURN(result.inherited_link_types,
                         InheritLinksIdentity(db, {source}, name));
  }
  return result;
}

Result<OpResult> Restrict(Database& db, const std::string& source,
                          const expr::ExprPtr& predicate,
                          const std::string& result_name,
                          const AlgebraOptions& options) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("restriction predicate must be non-null");
  }
  static Counter& ops = Registry::Global().GetCounter("atom_ops.sigma");
  ops.Increment();
  ScopedSpan span("atom.sigma", predicate->ToString());
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(source));
  span.set_rows_in(static_cast<int64_t>(at->occurrence().size()));
  MAD_RETURN_IF_ERROR(
      expr::ValidateAgainstSchema(*predicate, source, at->description()));

  std::string name =
      PickAtomTypeName(db, result_name, "restrict(" + source + ")");
  MAD_RETURN_IF_ERROR(db.DefineAtomType(name, at->description()));

  // Equality fast path: a point predicate over an indexed attribute avoids
  // the scan entirely.
  std::string eq_attribute;
  Value eq_literal;
  if (MatchEqualityPattern(*predicate, source, &eq_attribute, &eq_literal) &&
      db.FindIndex(source, eq_attribute) != nullptr) {
    MAD_ASSIGN_OR_RETURN(std::vector<AtomId> matches,
                         db.LookupByAttribute(source, eq_attribute, eq_literal));
    for (AtomId id : matches) {
      const Atom* atom = at->occurrence().Find(id);
      if (atom == nullptr) continue;
      MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, id, atom->values));
    }
  } else {
    for (const Atom& atom : at->occurrence().atoms()) {
      MAD_ASSIGN_OR_RETURN(
          bool keep,
          expr::EvalOnAtom(*predicate, source, at->description(), atom));
      if (!keep) continue;
      MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, atom.id, atom.values));
    }
  }

  span.set_rows_out(OccurrenceSize(db, name));
  OpResult result{name, {}};
  if (options.inherit_links) {
    MAD_ASSIGN_OR_RETURN(result.inherited_link_types,
                         InheritLinksIdentity(db, {source}, name));
  }
  return result;
}

Result<OpResult> Rename(Database& db, const std::string& source,
                        const std::vector<std::pair<std::string, std::string>>&
                            renames,
                        const std::string& result_name,
                        const AlgebraOptions& options) {
  static Counter& ops = Registry::Global().GetCounter("atom_ops.rho");
  ops.Increment();
  ScopedSpan span("atom.rho", source);
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(source));
  span.set_rows_in(static_cast<int64_t>(at->occurrence().size()));
  span.set_rows_out(static_cast<int64_t>(at->occurrence().size()));
  Schema renamed = at->description();
  for (const auto& [from, to] : renames) {
    MAD_RETURN_IF_ERROR(renamed.RenameAttribute(from, to));
  }

  std::string name =
      PickAtomTypeName(db, result_name, "rename(" + source + ")");
  MAD_RETURN_IF_ERROR(db.DefineAtomType(name, std::move(renamed)));
  for (const Atom& atom : at->occurrence().atoms()) {
    MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, atom.id, atom.values));
  }

  OpResult result{name, {}};
  if (options.inherit_links) {
    MAD_ASSIGN_OR_RETURN(result.inherited_link_types,
                         InheritLinksIdentity(db, {source}, name));
  }
  return result;
}

Result<OpResult> CartesianProduct(Database& db, const std::string& left,
                                  const std::string& right,
                                  const std::string& result_name,
                                  const AlgebraOptions& options) {
  static Counter& ops = Registry::Global().GetCounter("atom_ops.x");
  ops.Increment();
  ScopedSpan span("atom.x", left + " x " + right);
  MAD_ASSIGN_OR_RETURN(const AtomType* lt, db.GetAtomType(left));
  MAD_ASSIGN_OR_RETURN(const AtomType* rt, db.GetAtomType(right));
  span.set_rows_in(
      static_cast<int64_t>(lt->occurrence().size() + rt->occurrence().size()));
  if (left == right) {
    return Status::InvalidArgument(
        "cartesian product operands must be distinct atom types (project or "
        "rename first)");
  }
  MAD_ASSIGN_OR_RETURN(Schema combined,
                       lt->description().ConcatDisjoint(rt->description()));

  std::string name =
      PickAtomTypeName(db, result_name, "x(" + left + "," + right + ")");
  MAD_RETURN_IF_ERROR(db.DefineAtomType(name, std::move(combined)));

  // new result atom id -> (left component, right component)
  std::vector<std::tuple<AtomId, AtomId, AtomId>> provenance;
  provenance.reserve(lt->occurrence().size() * rt->occurrence().size());
  for (const Atom& a1 : lt->occurrence().atoms()) {
    for (const Atom& a2 : rt->occurrence().atoms()) {
      std::vector<Value> values = a1.values;
      values.insert(values.end(), a2.values.begin(), a2.values.end());
      AtomId id = db.NewAtomId();
      MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, id, std::move(values)));
      provenance.emplace_back(id, a1.id, a2.id);
    }
  }

  span.set_rows_out(static_cast<int64_t>(provenance.size()));
  OpResult result{name, {}};
  if (!options.inherit_links) return result;
  MAD_ASSIGN_OR_RETURN(result.inherited_link_types,
                       InheritLinksProduct(db, name, left, right, provenance));
  return result;
}

Result<OpResult> Join(Database& db, const std::string& left,
                      const std::string& right,
                      const expr::ExprPtr& predicate,
                      const std::string& result_name,
                      const AlgebraOptions& options) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("join predicate must be non-null");
  }
  static Counter& ops = Registry::Global().GetCounter("atom_ops.join");
  ops.Increment();
  ScopedSpan span("atom.join", predicate->ToString());
  MAD_ASSIGN_OR_RETURN(const AtomType* lt, db.GetAtomType(left));
  MAD_ASSIGN_OR_RETURN(const AtomType* rt, db.GetAtomType(right));
  span.set_rows_in(
      static_cast<int64_t>(lt->occurrence().size() + rt->occurrence().size()));
  if (left == right) {
    return Status::InvalidArgument(
        "join operands must be distinct atom types (rename first)");
  }
  MAD_ASSIGN_OR_RETURN(Schema combined,
                       lt->description().ConcatDisjoint(rt->description()));

  // Validate the predicate's references against the two operands up front.
  std::vector<const expr::Expr*> refs;
  predicate->CollectAttrRefs(&refs);
  for (const expr::Expr* ref : refs) {
    if (!ref->qualifier().empty() && ref->qualifier() != left &&
        ref->qualifier() != right) {
      return Status::InvalidArgument("qualifier '" + ref->qualifier() +
                                     "' names neither join operand");
    }
    if (!combined.HasAttribute(ref->attribute())) {
      return Status::NotFound("unknown attribute '" + ref->attribute() +
                              "' in join operands");
    }
  }
  if (!predicate->IsPredicate()) {
    return Status::InvalidArgument("join condition is not a predicate");
  }

  std::string name =
      PickAtomTypeName(db, result_name, "join(" + left + "," + right + ")");
  MAD_RETURN_IF_ERROR(db.DefineAtomType(name, std::move(combined)));

  std::vector<std::tuple<AtomId, AtomId, AtomId>> provenance;
  for (const Atom& a1 : lt->occurrence().atoms()) {
    for (const Atom& a2 : rt->occurrence().atoms()) {
      expr::BindingSet bindings;
      bindings.Bind(left, &lt->description(), &a1);
      bindings.Bind(right, &rt->description(), &a2);
      MAD_ASSIGN_OR_RETURN(bool keep, expr::EvalPredicate(*predicate, bindings));
      if (!keep) continue;
      std::vector<Value> values = a1.values;
      values.insert(values.end(), a2.values.begin(), a2.values.end());
      AtomId id = db.NewAtomId();
      MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, id, std::move(values)));
      provenance.emplace_back(id, a1.id, a2.id);
    }
  }

  span.set_rows_out(static_cast<int64_t>(provenance.size()));
  OpResult result{name, {}};
  if (options.inherit_links) {
    MAD_ASSIGN_OR_RETURN(
        result.inherited_link_types,
        InheritLinksProduct(db, name, left, right, provenance));
  }
  return result;
}

namespace {

Status CheckUnionCompatible(const AtomType& left, const AtomType& right) {
  if (left.description() != right.description()) {
    return Status::InvalidArgument(
        "operands must have identical descriptions: " +
        left.description().ToString() + " vs " +
        right.description().ToString());
  }
  return Status::OK();
}

}  // namespace

Result<OpResult> Union(Database& db, const std::string& left,
                       const std::string& right,
                       const std::string& result_name,
                       const AlgebraOptions& options) {
  static Counter& ops = Registry::Global().GetCounter("atom_ops.omega");
  ops.Increment();
  ScopedSpan span("atom.omega", left + " + " + right);
  MAD_ASSIGN_OR_RETURN(const AtomType* lt, db.GetAtomType(left));
  MAD_ASSIGN_OR_RETURN(const AtomType* rt, db.GetAtomType(right));
  MAD_RETURN_IF_ERROR(CheckUnionCompatible(*lt, *rt));
  span.set_rows_in(
      static_cast<int64_t>(lt->occurrence().size() + rt->occurrence().size()));

  std::string name =
      PickAtomTypeName(db, result_name, "union(" + left + "," + right + ")");
  MAD_RETURN_IF_ERROR(db.DefineAtomType(name, lt->description()));
  for (const Atom& atom : lt->occurrence().atoms()) {
    MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, atom.id, atom.values));
  }
  for (const Atom& atom : rt->occurrence().atoms()) {
    if (lt->occurrence().Contains(atom.id)) continue;  // left wins
    MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, atom.id, atom.values));
  }

  span.set_rows_out(OccurrenceSize(db, name));
  OpResult result{name, {}};
  if (options.inherit_links) {
    std::vector<std::string> sources = {left};
    if (right != left) sources.push_back(right);
    MAD_ASSIGN_OR_RETURN(result.inherited_link_types,
                         InheritLinksIdentity(db, sources, name));
  }
  return result;
}

Result<OpResult> Difference(Database& db, const std::string& left,
                            const std::string& right,
                            const std::string& result_name,
                            const AlgebraOptions& options) {
  static Counter& ops = Registry::Global().GetCounter("atom_ops.delta");
  ops.Increment();
  ScopedSpan span("atom.delta", left + " - " + right);
  MAD_ASSIGN_OR_RETURN(const AtomType* lt, db.GetAtomType(left));
  MAD_ASSIGN_OR_RETURN(const AtomType* rt, db.GetAtomType(right));
  MAD_RETURN_IF_ERROR(CheckUnionCompatible(*lt, *rt));
  span.set_rows_in(static_cast<int64_t>(lt->occurrence().size()));

  std::string name =
      PickAtomTypeName(db, result_name, "diff(" + left + "," + right + ")");
  MAD_RETURN_IF_ERROR(db.DefineAtomType(name, lt->description()));
  for (const Atom& atom : lt->occurrence().atoms()) {
    if (rt->occurrence().Contains(atom.id)) continue;
    MAD_RETURN_IF_ERROR(db.InsertAtomWithId(name, atom.id, atom.values));
  }

  span.set_rows_out(OccurrenceSize(db, name));
  OpResult result{name, {}};
  if (options.inherit_links) {
    // All result atoms stem from the left operand; only its links apply.
    MAD_ASSIGN_OR_RETURN(result.inherited_link_types,
                         InheritLinksIdentity(db, {left}, name));
  }
  return result;
}

Result<OpResult> Intersection(Database& db, const std::string& left,
                              const std::string& right,
                              const std::string& result_name,
                              const AlgebraOptions& options) {
  static Counter& ops = Registry::Global().GetCounter("atom_ops.psi");
  ops.Increment();
  ScopedSpan span("atom.psi", left + " & " + right);
  // Ψ(at1, at2) = δ(at1, δ(at1, at2)) — the paper's derived-operator recipe
  // applied at the atom-type level. The intermediate result is dropped.
  AlgebraOptions quiet = options;
  quiet.inherit_links = false;
  MAD_ASSIGN_OR_RETURN(OpResult inner,
                       Difference(db, left, right, "", quiet));
  auto outer = Difference(db, left, inner.atom_type, result_name, options);
  MAD_RETURN_IF_ERROR(db.DropAtomType(inner.atom_type));
  return outer;
}

}  // namespace algebra
}  // namespace mad
