#ifndef MAD_ALGEBRA_ATOM_ALGEBRA_H_
#define MAD_ALGEBRA_ATOM_ALGEBRA_H_

#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {
namespace algebra {

/// Result handle of an atom-type operation: the freshly created atom type
/// plus the link types inherited onto it (Def. 4 commentary: "the link types
/// of the operand atom types are 'inherited' to the resulting atom type",
/// which is what keeps results usable for molecule derivation).
struct OpResult {
  std::string atom_type;
  std::vector<std::string> inherited_link_types;
};

/// Tuning knobs shared by all atom-type operations.
struct AlgebraOptions {
  /// Inherit operand link types onto the result (on by default, as in the
  /// paper). Switching this off makes results plain relations — the
  /// relational degeneration of Fig. 3.
  bool inherit_links = true;
};

/// Atom-type projection π[proj(ad)](at).
///
/// Result atoms keep the identity of their source atom (the MAD model's
/// atoms are identity-bearing, so projection does not collapse duplicates;
/// the relational module provides the duplicate-eliminating variant).
/// If `result_name` is empty a unique name "project(<source>)" is chosen.
Result<OpResult> Project(Database& db, const std::string& source,
                         const std::vector<std::string>& attributes,
                         const std::string& result_name = "",
                         const AlgebraOptions& options = {});

/// Atom-type restriction σ[restr(ad)](at). The predicate references the
/// operand's attributes (optionally qualified with the operand name).
/// Result atoms keep their identity; the result occurrence is a subset.
Result<OpResult> Restrict(Database& db, const std::string& source,
                          const expr::ExprPtr& predicate,
                          const std::string& result_name = "",
                          const AlgebraOptions& options = {});

/// Attribute renaming (a standard relational-algebra extension, provided so
/// the disjointness precondition of × can always be established). Result
/// atoms keep their identity; `renames` maps old to new attribute names.
Result<OpResult> Rename(Database& db, const std::string& source,
                        const std::vector<std::pair<std::string, std::string>>&
                            renames,
                        const std::string& result_name = "",
                        const AlgebraOptions& options = {});

/// Cartesian product ×(at1, at2). Requires disjoint attribute names
/// (Def. 4). Result atoms are fresh (a1 & a2 concatenations) and inherit
/// the links of *both* components.
Result<OpResult> CartesianProduct(Database& db, const std::string& left,
                                  const std::string& right,
                                  const std::string& result_name = "",
                                  const AlgebraOptions& options = {});

/// Derived theta-join: σ[pred](×(at1, at2)) evaluated pairwise without
/// materializing the full product. The predicate references attributes of
/// either operand (qualify with the operand's type name on ambiguity);
/// link inheritance matches ×, restricted to the surviving pairs.
Result<OpResult> Join(Database& db, const std::string& left,
                      const std::string& right,
                      const expr::ExprPtr& predicate,
                      const std::string& result_name = "",
                      const AlgebraOptions& options = {});

/// Atom-type union ω(at1, at2). Requires identical descriptions; the result
/// occurrence is the id-based set union (on an id collision the left
/// operand's values win — the ids denote the same entity).
Result<OpResult> Union(Database& db, const std::string& left,
                       const std::string& right,
                       const std::string& result_name = "",
                       const AlgebraOptions& options = {});

/// Atom-type difference δ(at1, at2): atoms of `left` whose id does not
/// occur in `right`. Requires identical descriptions.
Result<OpResult> Difference(Database& db, const std::string& left,
                            const std::string& right,
                            const std::string& result_name = "",
                            const AlgebraOptions& options = {});

/// Derived intersection: δ(at1, δ(at1, at2)). Provided for convenience and
/// exercised by the closure tests; the intermediate difference is dropped
/// from the database afterwards.
Result<OpResult> Intersection(Database& db, const std::string& left,
                              const std::string& right,
                              const std::string& result_name = "",
                              const AlgebraOptions& options = {});

}  // namespace algebra
}  // namespace mad

#endif  // MAD_ALGEBRA_ATOM_ALGEBRA_H_
