#include "molecule/propagation.h"

#include <unordered_set>

namespace mad {

Result<MoleculeType> PropagateMoleculeType(Database& db,
                                           const MoleculeType& mt,
                                           std::string result_name) {
  if (result_name.empty()) result_name = mt.name();
  const MoleculeDescription& md = mt.description();

  // 1. Renamed atom types, one per node, restricted to the atoms that
  //    actually occur in the molecule set (Def. 9: "the corresponding atoms
  //    are selected only from the elements within rsv").
  std::vector<std::string> new_type_names;
  new_type_names.reserve(md.nodes().size());
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    const MoleculeNode& node = md.nodes()[i];
    MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(node.type_name));

    Schema schema = at->description();
    std::vector<size_t> value_indexes;
    if (node.attributes.has_value()) {
      MAD_ASSIGN_OR_RETURN(schema, at->description().Project(*node.attributes));
      for (const std::string& attr : *node.attributes) {
        MAD_ASSIGN_OR_RETURN(size_t idx, at->description().IndexOf(attr));
        value_indexes.push_back(idx);
      }
    }

    std::string new_name =
        db.UniqueAtomTypeName(node.label + "@" + result_name);
    MAD_RETURN_IF_ERROR(db.DefineAtomType(new_name, std::move(schema)));
    new_type_names.push_back(new_name);

    std::unordered_set<AtomId> inserted;
    for (const Molecule& m : mt.molecules()) {
      for (AtomId id : m.AtomsOf(i)) {
        if (!inserted.insert(id).second) continue;  // shared subobject
        const Atom* atom = at->occurrence().Find(id);
        if (atom == nullptr) {
          return Status::Internal("molecule atom missing from store");
        }
        std::vector<Value> values;
        if (node.attributes.has_value()) {
          values.reserve(value_indexes.size());
          for (size_t idx : value_indexes) values.push_back(atom->values[idx]);
        } else {
          values = atom->values;
        }
        MAD_RETURN_IF_ERROR(db.InsertAtomWithId(new_name, id, std::move(values)));
      }
    }
  }

  // 2. Inherited link types, one per directed description link, restricted
  //    to the links appearing in the molecule set and stored parent→child.
  std::vector<std::string> new_link_names;
  new_link_names.reserve(md.links().size());
  for (size_t j = 0; j < md.links().size(); ++j) {
    const DirectedLink& dl = md.links()[j];
    MAD_ASSIGN_OR_RETURN(size_t from_idx, md.NodeIndex(dl.from));
    MAD_ASSIGN_OR_RETURN(size_t to_idx, md.NodeIndex(dl.to));
    std::string new_name =
        db.UniqueLinkTypeName(dl.link_type + "@" + result_name);
    MAD_RETURN_IF_ERROR(db.DefineLinkType(new_name, new_type_names[from_idx],
                                          new_type_names[to_idx]));
    new_link_names.push_back(new_name);

    for (const Molecule& m : mt.molecules()) {
      for (const MoleculeLink& link : m.links()) {
        if (link.edge_index != j) continue;
        Status s = db.InsertLink(new_name, link.parent, link.child);
        // The same link may occur in several molecules (shared subobjects).
        if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
      }
    }
  }

  // 3. The equivalent description over the propagated types: original
  //    labels, forward orientation, narrowing already materialised.
  std::vector<MoleculeNode> nodes;
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    nodes.push_back(
        MoleculeNode{new_type_names[i], md.nodes()[i].label, std::nullopt});
  }
  std::vector<DirectedLink> links;
  for (size_t j = 0; j < md.links().size(); ++j) {
    links.push_back(DirectedLink{new_link_names[j], md.links()[j].from,
                                 md.links()[j].to, false});
  }
  MAD_ASSIGN_OR_RETURN(
      MoleculeDescription new_md,
      MoleculeDescription::Create(db, std::move(nodes), std::move(links)));

  // Molecules carry node/edge indexes only, and both lists kept their
  // order, so the occurrence transfers verbatim.
  return MoleculeType(std::move(result_name), std::move(new_md),
                      mt.molecules());
}

}  // namespace mad
