#ifndef MAD_MOLECULE_STATISTICS_H_
#define MAD_MOLECULE_STATISTICS_H_

#include <string>
#include <vector>

#include "molecule/molecule_type.h"
#include "util/result.h"

namespace mad {

/// Size statistics of one description node across a molecule set.
struct NodeStats {
  std::string label;
  size_t min_atoms = 0;
  size_t max_atoms = 0;
  double avg_atoms = 0.0;
  /// Distinct atoms across the whole set vs occupied slots: slots exceed
  /// distinct atoms exactly when molecules share subobjects.
  size_t distinct_atoms = 0;
  size_t total_slots = 0;
};

/// Aggregate statistics of a molecule-type occurrence, including the
/// sharing factor (total atom slots / distinct atoms) that quantifies the
/// shared-subobject structure the MAD model exists to support.
struct MoleculeTypeStats {
  size_t molecule_count = 0;
  size_t min_atoms = 0;
  size_t max_atoms = 0;
  double avg_atoms = 0.0;
  size_t min_links = 0;
  size_t max_links = 0;
  double avg_links = 0.0;
  size_t distinct_atoms = 0;
  size_t total_atom_slots = 0;
  std::vector<NodeStats> nodes;

  /// 1.0 means fully disjoint molecules; larger values measure sharing.
  double sharing_factor() const {
    return distinct_atoms == 0
               ? 1.0
               : static_cast<double>(total_atom_slots) /
                     static_cast<double>(distinct_atoms);
  }
};

/// Computes occurrence statistics for a molecule type.
MoleculeTypeStats ComputeMoleculeTypeStats(const MoleculeType& mt);

/// Multi-line human-readable rendering.
std::string FormatMoleculeTypeStats(const MoleculeTypeStats& stats);

}  // namespace mad

#endif  // MAD_MOLECULE_STATISTICS_H_
