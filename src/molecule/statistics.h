#ifndef MAD_MOLECULE_STATISTICS_H_
#define MAD_MOLECULE_STATISTICS_H_

#include <string>
#include <vector>

#include "molecule/molecule_type.h"
#include "util/result.h"

namespace mad {

/// Size statistics of one description node across a molecule set.
struct NodeStats {
  std::string label;
  size_t min_atoms = 0;
  size_t max_atoms = 0;
  double avg_atoms = 0.0;
  /// Distinct atoms across the whole set vs occupied slots: slots exceed
  /// distinct atoms exactly when molecules share subobjects.
  size_t distinct_atoms = 0;
  size_t total_slots = 0;
};

/// Aggregate statistics of a molecule-type occurrence, including the
/// sharing factor (total atom slots / distinct atoms) that quantifies the
/// shared-subobject structure the MAD model exists to support.
struct MoleculeTypeStats {
  size_t molecule_count = 0;
  size_t min_atoms = 0;
  size_t max_atoms = 0;
  double avg_atoms = 0.0;
  size_t min_links = 0;
  size_t max_links = 0;
  double avg_links = 0.0;
  size_t distinct_atoms = 0;
  size_t total_atom_slots = 0;
  std::vector<NodeStats> nodes;

  /// 1.0 means fully disjoint molecules; larger values measure sharing.
  double sharing_factor() const {
    return distinct_atoms == 0
               ? 1.0
               : static_cast<double>(total_atom_slots) /
                     static_cast<double>(distinct_atoms);
  }
};

/// Computes occurrence statistics for a molecule type.
MoleculeTypeStats ComputeMoleculeTypeStats(const MoleculeType& mt);

/// Multi-line human-readable rendering.
std::string FormatMoleculeTypeStats(const MoleculeTypeStats& stats);

/// Counters recorded by one molecule-derivation run (DeriveMolecules /
/// DeriveMoleculesForRoots / DefineMoleculeType). Every field except
/// `wall_ms` is deterministic — independent of thread count and chunking —
/// because the per-root work is identical and the per-worker counters are
/// summed after the join.
struct DerivationStats {
  /// Root atoms fanned out over (== molecules derived plus molecules
  /// rejected by pushed-down qualification).
  size_t roots = 0;
  /// Candidate atoms examined across all molecules (first discoveries per
  /// node, root slots included).
  size_t atoms_visited = 0;
  /// Adjacency entries scanned in the frozen CSR snapshot, over both the
  /// candidate-collection and the link-recording passes.
  size_t links_scanned = 0;
  /// Molecules discarded inside the fan-out by pushed-down qualification
  /// (per-node filters or the residual program) before materialization.
  /// Always 0 when no filters were pushed.
  size_t molecules_rejected = 0;
  /// Worker threads the fan-out was allowed to use (caller included).
  unsigned threads_used = 1;
  /// End-to-end wall time of the derivation fan-out, snapshot build
  /// excluded. The only nondeterministic field.
  double wall_ms = 0.0;
};

}  // namespace mad

#endif  // MAD_MOLECULE_STATISTICS_H_
