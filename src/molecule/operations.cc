#include "molecule/operations.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "expr/compile.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mad {

namespace {

Status CheckName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("molecule type name must be non-empty");
  }
  return Status::OK();
}

Status CheckCompatible(const MoleculeType& left, const MoleculeType& right) {
  if (left.description() != right.description()) {
    return Status::InvalidArgument(
        "molecule-type operands must have identical descriptions: '" +
        left.description().ToString() + "' vs '" +
        right.description().ToString() + "'");
  }
  return Status::OK();
}

}  // namespace

Result<MoleculeType> RestrictMolecules(const Database& db,
                                       const MoleculeType& mt,
                                       const expr::ExprPtr& predicate,
                                       std::string result_name,
                                       unsigned parallelism) {
  MAD_RETURN_IF_ERROR(CheckName(result_name));
  static Counter& ops = Registry::Global().GetCounter("molecule_ops.sigma");
  ops.Increment();
  ScopedSpan span("sigma",
                  predicate == nullptr ? "<null>" : predicate->ToString());
  span.set_rows_in(static_cast<int64_t>(mt.size()));
  MAD_ASSIGN_OR_RETURN(
      expr::CompiledPredicate program,
      expr::CompiledPredicate::Compile(db, mt.description(), predicate));

  const std::vector<Molecule>& molecules = mt.molecules();
  const size_t n = molecules.size();
  std::vector<char> verdicts(n, 0);
  if (parallelism == 0) parallelism = ThreadPool::DefaultParallelism();

  if (parallelism > 1 && n > 1) {
    // The serial loop stops at the first failing molecule; the parallel one
    // must report that same molecule's error regardless of scheduling. The
    // chunk cursor is monotone, so each worker sees ascending indexes: its
    // first error is its smallest, and the global minimum over workers is
    // the serial answer.
    struct WorkerError {
      size_t index;
      Status status;
    };
    std::vector<std::optional<WorkerError>> errors(parallelism);
    std::vector<expr::CompiledPredicate::Scratch> scratch(parallelism);
    const size_t chunk =
        std::max<size_t>(1, n / (static_cast<size_t>(parallelism) * 8));
    ThreadPool::Shared().ParallelFor(
        n, chunk, parallelism,
        [&](unsigned worker, size_t begin, size_t end) {
          if (errors[worker].has_value()) return;
          for (size_t i = begin; i < end; ++i) {
            Result<bool> hit =
                program.EvalMolecule(molecules[i], scratch[worker]);
            if (!hit.ok()) {
              errors[worker] = WorkerError{i, hit.status()};
              return;
            }
            verdicts[i] = *hit ? 1 : 0;
          }
        });
    std::optional<WorkerError> first;
    for (std::optional<WorkerError>& err : errors) {
      if (err.has_value() && (!first.has_value() || err->index < first->index)) {
        first = std::move(err);
      }
    }
    if (first.has_value()) return first->status;
  } else {
    expr::CompiledPredicate::Scratch scratch;
    for (size_t i = 0; i < n; ++i) {
      MAD_ASSIGN_OR_RETURN(bool hit,
                           program.EvalMolecule(molecules[i], scratch));
      verdicts[i] = hit ? 1 : 0;
    }
  }

  // Copy survivors once, into exactly-sized storage: no reallocation moves,
  // no speculative copies of rejected molecules.
  const size_t kept_count = static_cast<size_t>(
      std::count(verdicts.begin(), verdicts.end(), char{1}));
  std::vector<Molecule> kept;
  kept.reserve(kept_count);
  for (size_t i = 0; i < n; ++i) {
    if (verdicts[i]) kept.push_back(molecules[i]);
  }
  span.set_rows_out(static_cast<int64_t>(kept.size()));
  return MoleculeType(std::move(result_name), mt.description(),
                      std::move(kept));
}

Result<MoleculeType> ProjectMolecules(const Database& db,
                                      const MoleculeType& mt,
                                      const MoleculeProjectionSpec& spec,
                                      std::string result_name) {
  MAD_RETURN_IF_ERROR(CheckName(result_name));
  static Counter& ops = Registry::Global().GetCounter("molecule_ops.pi");
  ops.Increment();
  ScopedSpan span("pi");
  span.set_rows_in(static_cast<int64_t>(mt.size()));
  span.set_rows_out(static_cast<int64_t>(mt.size()));
  const MoleculeDescription& md = mt.description();

  std::unordered_set<std::string> keep(spec.keep_labels.begin(),
                                       spec.keep_labels.end());
  if (keep.size() != spec.keep_labels.size()) {
    return Status::InvalidArgument("projection repeats a node label");
  }
  for (const std::string& label : spec.keep_labels) {
    if (!md.HasLabel(label)) {
      return Status::NotFound("projection keeps unknown node label '" + label +
                              "'");
    }
  }
  for (const auto& [label, attrs] : spec.attributes) {
    if (keep.count(label) == 0) {
      return Status::InvalidArgument(
          "attribute narrowing given for dropped node '" + label + "'");
    }
    (void)attrs;
  }

  // Rebuild the description: kept nodes (original order) with merged
  // narrowing, and the links between kept nodes.
  std::vector<MoleculeNode> nodes;
  std::vector<size_t> old_node_index;  // result node -> original node index
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    const MoleculeNode& node = md.nodes()[i];
    if (keep.count(node.label) == 0) continue;
    MoleculeNode out = node;
    auto it = spec.attributes.find(node.label);
    if (it != spec.attributes.end()) {
      // Narrow further: requested attributes must already be visible.
      if (node.attributes.has_value()) {
        for (const std::string& attr : it->second) {
          if (std::find(node.attributes->begin(), node.attributes->end(),
                        attr) == node.attributes->end()) {
            return Status::NotFound("attribute '" + attr +
                                    "' already projected away from node '" +
                                    node.label + "'");
          }
        }
      }
      out.attributes = it->second;
    }
    nodes.push_back(std::move(out));
    old_node_index.push_back(i);
  }

  std::vector<DirectedLink> links;
  std::vector<size_t> old_edge_index;  // result edge -> original edge index
  for (size_t j = 0; j < md.links().size(); ++j) {
    const DirectedLink& dl = md.links()[j];
    if (keep.count(dl.from) == 0 || keep.count(dl.to) == 0) continue;
    links.push_back(dl);
    old_edge_index.push_back(j);
  }

  auto new_md = MoleculeDescription::Create(db, std::move(nodes),
                                            std::move(links));
  if (!new_md.ok()) {
    return Status::InvalidArgument(
        "projection does not yield a valid molecule structure: " +
        new_md.status().message());
  }
  if (new_md->root_label() != md.root_label()) {
    return Status::InvalidArgument(
        "projection must preserve the root node '" + md.root_label() + "'");
  }

  // Remap edge indexes (result edge k corresponds to original
  // old_edge_index[k]) for the molecule rewrite below.
  std::map<size_t, size_t> edge_remap;
  for (size_t k = 0; k < old_edge_index.size(); ++k) {
    edge_remap[old_edge_index[k]] = k;
  }

  std::vector<Molecule> projected;
  projected.reserve(mt.molecules().size());
  for (const Molecule& m : mt.molecules()) {
    Molecule out(m.root(), new_md->nodes().size());
    for (size_t k = 0; k < old_node_index.size(); ++k) {
      out.MutableAtomsOf(k) = m.AtomsOf(old_node_index[k]);
    }
    for (const MoleculeLink& link : m.links()) {
      auto it = edge_remap.find(link.edge_index);
      if (it == edge_remap.end()) continue;
      out.AddLink(MoleculeLink{it->second, link.parent, link.child});
    }
    projected.push_back(std::move(out));
  }
  return MoleculeType(std::move(result_name), *std::move(new_md),
                      std::move(projected));
}

Result<MoleculeType> UnionMolecules(const MoleculeType& left,
                                    const MoleculeType& right,
                                    std::string result_name) {
  MAD_RETURN_IF_ERROR(CheckName(result_name));
  MAD_RETURN_IF_ERROR(CheckCompatible(left, right));
  static Counter& ops = Registry::Global().GetCounter("molecule_ops.omega");
  ops.Increment();
  ScopedSpan span("omega");
  span.set_rows_in(static_cast<int64_t>(left.size() + right.size()));

  // Decide the right-side survivors first, then copy everything exactly
  // once into exactly-sized storage.
  std::unordered_set<std::string> seen;
  seen.reserve(left.size() + right.size());
  for (const Molecule& m : left.molecules()) seen.insert(m.CanonicalKey());
  std::vector<const Molecule*> fresh;
  fresh.reserve(right.size());
  for (const Molecule& m : right.molecules()) {
    if (seen.insert(m.CanonicalKey()).second) fresh.push_back(&m);
  }
  std::vector<Molecule> merged;
  merged.reserve(left.size() + fresh.size());
  merged.insert(merged.end(), left.molecules().begin(),
                left.molecules().end());
  for (const Molecule* m : fresh) merged.push_back(*m);
  span.set_rows_out(static_cast<int64_t>(merged.size()));
  return MoleculeType(std::move(result_name), left.description(),
                      std::move(merged));
}

Result<MoleculeType> DifferenceMolecules(const MoleculeType& left,
                                         const MoleculeType& right,
                                         std::string result_name) {
  MAD_RETURN_IF_ERROR(CheckName(result_name));
  MAD_RETURN_IF_ERROR(CheckCompatible(left, right));
  static Counter& ops = Registry::Global().GetCounter("molecule_ops.delta");
  ops.Increment();
  ScopedSpan span("delta");
  span.set_rows_in(static_cast<int64_t>(left.size()));

  std::unordered_set<std::string> drop;
  drop.reserve(right.molecules().size());
  for (const Molecule& m : right.molecules()) drop.insert(m.CanonicalKey());

  // Keep by index, then copy survivors once into exactly-sized storage.
  std::vector<const Molecule*> survivors;
  survivors.reserve(left.size());
  for (const Molecule& m : left.molecules()) {
    if (drop.count(m.CanonicalKey()) == 0) survivors.push_back(&m);
  }
  std::vector<Molecule> kept;
  kept.reserve(survivors.size());
  for (const Molecule* m : survivors) kept.push_back(*m);
  span.set_rows_out(static_cast<int64_t>(kept.size()));
  return MoleculeType(std::move(result_name), left.description(),
                      std::move(kept));
}

Result<MoleculeType> IntersectMolecules(const MoleculeType& left,
                                        const MoleculeType& right,
                                        std::string result_name) {
  static Counter& ops = Registry::Global().GetCounter("molecule_ops.psi");
  ops.Increment();
  ScopedSpan span("psi");
  span.set_rows_in(static_cast<int64_t>(left.size()));
  // Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)) — the paper's derived operator.
  MAD_ASSIGN_OR_RETURN(
      MoleculeType inner,
      DifferenceMolecules(left, right, result_name + "$inner"));
  return DifferenceMolecules(left, inner, std::move(result_name));
}

Result<MoleculeType> CartesianProductMolecules(Database& db,
                                               const MoleculeType& left,
                                               const MoleculeType& right,
                                               std::string result_name) {
  MAD_RETURN_IF_ERROR(CheckName(result_name));
  static Counter& ops = Registry::Global().GetCounter("molecule_ops.product");
  ops.Increment();
  ScopedSpan span("x");
  span.set_rows_in(static_cast<int64_t>(left.size() + right.size()));
  span.set_rows_out(static_cast<int64_t>(left.size() * right.size()));

  // Synthetic pair root: md_graph demands exactly one root (Def. 5), so the
  // product introduces a fresh atom type whose atoms couple operand roots.
  std::string pair_type = db.UniqueAtomTypeName(result_name);
  MAD_RETURN_IF_ERROR(db.DefineAtomType(pair_type, Schema()));
  const std::string& left_root_type = left.description().root_node().type_name;
  const std::string& right_root_type =
      right.description().root_node().type_name;
  std::string left_link = db.UniqueLinkTypeName(result_name + "-left");
  std::string right_link = db.UniqueLinkTypeName(result_name + "-right");
  MAD_RETURN_IF_ERROR(db.DefineLinkType(left_link, pair_type, left_root_type));
  MAD_RETURN_IF_ERROR(
      db.DefineLinkType(right_link, pair_type, right_root_type));

  // Node list: pair root + left nodes + right nodes (labels de-collided).
  std::unordered_set<std::string> labels;
  std::string pair_label = result_name;
  while (left.description().HasLabel(pair_label) ||
         right.description().HasLabel(pair_label)) {
    pair_label += "#";
  }
  labels.insert(pair_label);

  std::vector<MoleculeNode> nodes;
  nodes.push_back(MoleculeNode{pair_type, pair_label, std::nullopt});
  for (const MoleculeNode& node : left.description().nodes()) {
    nodes.push_back(node);
    labels.insert(node.label);
  }
  std::map<std::string, std::string> right_label_map;
  for (const MoleculeNode& node : right.description().nodes()) {
    MoleculeNode out = node;
    int suffix = 2;
    while (labels.count(out.label) > 0) {
      out.label = node.label + "#" + std::to_string(suffix++);
    }
    labels.insert(out.label);
    right_label_map[node.label] = out.label;
    nodes.push_back(std::move(out));
  }

  // Edge list: the two pair links, then left edges, then right edges.
  std::vector<DirectedLink> links;
  links.push_back(DirectedLink{
      left_link, pair_label, left.description().root_label(), false});
  links.push_back(
      DirectedLink{right_link, pair_label,
                   right_label_map.at(right.description().root_label()),
                   false});
  for (const DirectedLink& dl : left.description().links()) {
    links.push_back(dl);
  }
  for (const DirectedLink& dl : right.description().links()) {
    DirectedLink out = dl;
    out.from = right_label_map.at(dl.from);
    out.to = right_label_map.at(dl.to);
    links.push_back(out);
  }

  size_t left_nodes = left.description().nodes().size();
  size_t left_edges = left.description().links().size();

  // Couple every pair of operand molecules under a fresh pair atom.
  std::vector<Molecule> molecules;
  molecules.reserve(left.size() * right.size());
  for (const Molecule& m1 : left.molecules()) {
    for (const Molecule& m2 : right.molecules()) {
      MAD_ASSIGN_OR_RETURN(AtomId pair_atom, db.InsertAtom(pair_type, {}));
      MAD_RETURN_IF_ERROR(db.InsertLink(left_link, pair_atom, m1.root()));
      MAD_RETURN_IF_ERROR(db.InsertLink(right_link, pair_atom, m2.root()));

      Molecule out(pair_atom, nodes.size());
      out.MutableAtomsOf(0).push_back(pair_atom);
      for (size_t i = 0; i < left_nodes; ++i) {
        out.MutableAtomsOf(1 + i) = m1.AtomsOf(i);
      }
      for (size_t i = 0; i < m2.node_count(); ++i) {
        out.MutableAtomsOf(1 + left_nodes + i) = m2.AtomsOf(i);
      }
      out.AddLink(MoleculeLink{0, pair_atom, m1.root()});
      out.AddLink(MoleculeLink{1, pair_atom, m2.root()});
      for (const MoleculeLink& link : m1.links()) {
        out.AddLink(MoleculeLink{2 + link.edge_index, link.parent, link.child});
      }
      for (const MoleculeLink& link : m2.links()) {
        out.AddLink(MoleculeLink{2 + left_edges + link.edge_index, link.parent,
                                 link.child});
      }
      molecules.push_back(std::move(out));
    }
  }

  MAD_ASSIGN_OR_RETURN(
      MoleculeDescription md,
      MoleculeDescription::Create(db, std::move(nodes), std::move(links)));
  return MoleculeType(std::move(result_name), std::move(md),
                      std::move(molecules));
}

}  // namespace mad
