#ifndef MAD_MOLECULE_DERIVATION_H_
#define MAD_MOLECULE_DERIVATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "molecule/molecule_type.h"
#include "molecule/statistics.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

namespace expr {
class CompiledPredicate;
}  // namespace expr

/// Tuning knobs of the derivation engine.
struct DerivationOptions {
  DerivationOptions() = default;
  explicit DerivationOptions(unsigned p) : parallelism(p) {}

  /// Worker threads for the per-root fan-out (the calling thread counts as
  /// one). 0 means hardware_concurrency. Output is bit-for-bit identical at
  /// every setting: molecules land in pre-sized root-order slots, and the
  /// per-root derivation itself is single-threaded.
  unsigned parallelism = 0;
  /// Pushed-down qualification: (node index, compiled program) pairs, at
  /// most one per node. Each program must reference only its own node
  /// (attributes or COUNT of that node — the optimizer's single-node
  /// conjuncts); it is evaluated the moment the node's group completes
  /// during derivation, and a false verdict (or error) rejects the whole
  /// molecule before downstream nodes expand. Because a group depends only
  /// on its ancestors (Def. 6 grows top-down), the verdict is identical to
  /// evaluating the conjunct on the fully derived molecule — pushdown
  /// changes *when* molecules are discarded, never *which*.
  std::vector<std::pair<size_t, const expr::CompiledPredicate*>> node_filters;
  /// Molecule-level residue of the WHERE clause (multi-node conjuncts,
  /// disjunctions, FORALL across nodes): evaluated over the completed
  /// groups inside the fan-out, before materialization.
  const expr::CompiledPredicate* residual = nullptr;
  // The compiled programs are borrowed and must outlive every derive call.
};

/// The derivation engine behind m_dom (Def. 6): a molecule description
/// resolved against one database into a *frozen snapshot* — per description
/// edge a CSR-style adjacency array (offsets + dense target indexes built
/// once from the LinkStore), per node a dense-index <-> AtomId mapping.
/// The *structural* derivation loop never reads the database after
/// Create(): it does zero hashing and zero name lookups, answering from the
/// snapshot even if the database mutates. Pushed-down predicate programs
/// are the one exception — their dense `const Atom*` rows point into the
/// atom stores, so filtered derivation additionally requires that the
/// database is not mutated between Create() and the derive call (the same
/// contract CompiledPredicate itself carries; build a new engine after
/// mutations, which σ and the MQL session do anyway).
///
/// Derivation fans out over root atoms on a shared worker pool; each worker
/// owns an epoch-stamped scratch workspace so no per-root allocation or
/// clearing is needed, and results are written into per-root slots so the
/// output order never depends on thread scheduling.
class DerivationEngine {
 public:
  /// Resolves `md` against `db` and freezes the adjacency snapshot.
  static Result<DerivationEngine> Create(const Database& db,
                                         const MoleculeDescription& md,
                                         DerivationOptions options = {});

  /// One molecule per root-atom-type atom, in occurrence order. Molecules
  /// rejected by pushed filters are omitted (the survivors keep occurrence
  /// order and are bit-identical to derive-then-restrict).
  Result<std::vector<Molecule>> DeriveAll(DerivationStats* stats = nullptr) const;

  /// Molecules for exactly `roots`, in the given order (filter rejections
  /// omitted). Every root is validated against the snapshot up front;
  /// invalid ids are reported together in one NotFound status.
  Result<std::vector<Molecule>> DeriveForRoots(
      const std::vector<AtomId>& roots, DerivationStats* stats = nullptr) const;

  /// The single molecule rooted at `root`.
  Result<Molecule> DeriveFor(AtomId root, DerivationStats* stats = nullptr) const;

  /// Number of atoms of the root atom type in the snapshot.
  size_t root_count() const { return nodes_[root_node_].ids.size(); }

 private:
  struct NodeSnapshot {
    /// Dense index -> atom id, in atom-type occurrence order.
    std::vector<AtomId> ids;
    /// Dense index -> atom row in the store (same order as `ids`): pushed
    /// predicate programs read attribute values by index with no per-atom
    /// hashing. Borrowed from the store — see the mutation contract above.
    std::vector<const Atom*> rows;
  };
  /// One directed description edge as a CSR adjacency over dense indexes:
  /// row r (an atom of `from_node`, occurrence order) spans
  /// targets[offsets[r] .. offsets[r+1]), each entry the dense index of a
  /// partner atom of `to_node`. Row order preserves LinkStore::Partners
  /// order, which keeps the engine's output identical to the historical
  /// per-hop-lookup engine.
  struct EdgeSnapshot {
    size_t from_node = 0;
    size_t to_node = 0;
    std::vector<size_t> offsets;
    std::vector<uint32_t> targets;
  };
  struct Workspace;

  DerivationEngine() = default;

  /// Derives the molecule for one root; nullopt when a pushed filter or the
  /// residual program rejected it, an error status when a program failed to
  /// evaluate.
  Result<std::optional<Molecule>> DeriveOne(uint32_t root_dense,
                                            Workspace& ws) const;
  Result<bool> CompleteNode(size_t node_idx, Workspace& ws) const;
  Workspace MakeWorkspace() const;
  Result<std::vector<Molecule>> FanOut(const std::vector<uint32_t>& roots,
                                       DerivationStats* stats) const;

  DerivationOptions options_;
  /// Per description node: options_.node_filters rearranged to node order
  /// (nullptr = unfiltered), plus which nodes need dense rows published for
  /// the binding loops of any program.
  std::vector<const expr::CompiledPredicate*> filters_by_node_;
  std::vector<bool> needs_rows_;
  bool filtering_ = false;
  std::vector<NodeSnapshot> nodes_;
  std::vector<EdgeSnapshot> edges_;
  std::vector<size_t> node_order_;  // node indexes in topo order, root first
  size_t root_node_ = 0;
  std::vector<std::vector<uint32_t>> in_edges_;  // per node: edge indexes
  std::unordered_map<AtomId, uint32_t> root_index_;  // root id -> dense index
  std::string root_type_name_;  // for error messages
};

/// The function m_dom (Def. 6): derives every molecule matching `md` from
/// the database's atom networks — one molecule per atom of the root atom
/// type, grown by hierarchical join along the directed link types until the
/// leaves are reached, maximal per the `contained`/`total` predicates.
///
/// Multiple incoming description edges are *conjunctive* (the paper's
/// ∀-quantifier in `contained`): an atom of a node with k incoming directed
/// link types belongs to the molecule only if it is linked to contained
/// parent atoms through every one of the k edges.
Result<std::vector<Molecule>> DeriveMolecules(const Database& db,
                                              const MoleculeDescription& md,
                                              const DerivationOptions& options = {},
                                              DerivationStats* stats = nullptr);

/// Derives the single molecule rooted at `root` (which must be an atom of
/// the root atom type).
Result<Molecule> DeriveMoleculeFor(const Database& db,
                                   const MoleculeDescription& md, AtomId root);

/// Derives only the molecules rooted at `roots` (each must be an atom of
/// the root atom type) — the target of restriction pushdown: when a WHERE
/// conjunct is decidable on root attributes alone, the engine derives just
/// the qualifying roots instead of the whole occurrence. All roots are
/// validated before any derivation starts; a NotFound status names every
/// invalid id at once.
Result<std::vector<Molecule>> DeriveMoleculesForRoots(
    const Database& db, const MoleculeDescription& md,
    const std::vector<AtomId>& roots, const DerivationOptions& options = {},
    DerivationStats* stats = nullptr);

/// The operator molecule-type-definition a[mname, G](C) (Def. 8): pairs a
/// validated description with its derived occurrence.
Result<MoleculeType> DefineMoleculeType(const Database& db, std::string name,
                                        MoleculeDescription md,
                                        const DerivationOptions& options = {},
                                        DerivationStats* stats = nullptr);

/// Checks the mv_graph predicate (Def. 6) on an already-built molecule:
/// the instance graph must be directed, acyclic, coherent, rooted at the
/// molecule's root atom, and each atom/link must exist in the database
/// under the description's types. Used by tests and by Theorem-2 checks.
Status ValidateMolecule(const Database& db, const MoleculeDescription& md,
                        const Molecule& molecule);

}  // namespace mad

#endif  // MAD_MOLECULE_DERIVATION_H_
