#ifndef MAD_MOLECULE_DERIVATION_H_
#define MAD_MOLECULE_DERIVATION_H_

#include <string>
#include <vector>

#include "molecule/molecule_type.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// The function m_dom (Def. 6): derives every molecule matching `md` from
/// the database's atom networks — one molecule per atom of the root atom
/// type, grown by hierarchical join along the directed link types until the
/// leaves are reached, maximal per the `contained`/`total` predicates.
///
/// Multiple incoming description edges are *conjunctive* (the paper's
/// ∀-quantifier in `contained`): an atom of a node with k incoming directed
/// link types belongs to the molecule only if it is linked to contained
/// parent atoms through every one of the k edges.
Result<std::vector<Molecule>> DeriveMolecules(const Database& db,
                                              const MoleculeDescription& md);

/// Derives the single molecule rooted at `root` (which must be an atom of
/// the root atom type).
Result<Molecule> DeriveMoleculeFor(const Database& db,
                                   const MoleculeDescription& md, AtomId root);

/// Derives only the molecules rooted at `roots` (each must be an atom of
/// the root atom type) — the target of restriction pushdown: when a WHERE
/// conjunct is decidable on root attributes alone, the engine derives just
/// the qualifying roots instead of the whole occurrence.
Result<std::vector<Molecule>> DeriveMoleculesForRoots(
    const Database& db, const MoleculeDescription& md,
    const std::vector<AtomId>& roots);

/// The operator molecule-type-definition a[mname, G](C) (Def. 8): pairs a
/// validated description with its derived occurrence.
Result<MoleculeType> DefineMoleculeType(const Database& db, std::string name,
                                        MoleculeDescription md);

/// Checks the mv_graph predicate (Def. 6) on an already-built molecule:
/// the instance graph must be directed, acyclic, coherent, rooted at the
/// molecule's root atom, and each atom/link must exist in the database
/// under the description's types. Used by tests and by Theorem-2 checks.
Status ValidateMolecule(const Database& db, const MoleculeDescription& md,
                        const Molecule& molecule);

}  // namespace mad

#endif  // MAD_MOLECULE_DERIVATION_H_
