#ifndef MAD_MOLECULE_DERIVATION_H_
#define MAD_MOLECULE_DERIVATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "molecule/molecule_type.h"
#include "molecule/statistics.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// Tuning knobs of the derivation engine.
struct DerivationOptions {
  /// Worker threads for the per-root fan-out (the calling thread counts as
  /// one). 0 means hardware_concurrency. Output is bit-for-bit identical at
  /// every setting: molecules land in pre-sized root-order slots, and the
  /// per-root derivation itself is single-threaded.
  unsigned parallelism = 0;
};

/// The derivation engine behind m_dom (Def. 6): a molecule description
/// resolved against one database into a *frozen snapshot* — per description
/// edge a CSR-style adjacency array (offsets + dense target indexes built
/// once from the LinkStore), per node a dense-index <-> AtomId mapping.
/// After Create() the engine no longer reads the database: the inner
/// derivation loop does zero hashing and zero name lookups, and the engine
/// keeps answering from the snapshot even if the database mutates (derive
/// against the state observed at Create time; build a new engine to see
/// newer state).
///
/// Derivation fans out over root atoms on a shared worker pool; each worker
/// owns an epoch-stamped scratch workspace so no per-root allocation or
/// clearing is needed, and results are written into per-root slots so the
/// output order never depends on thread scheduling.
class DerivationEngine {
 public:
  /// Resolves `md` against `db` and freezes the adjacency snapshot.
  static Result<DerivationEngine> Create(const Database& db,
                                         const MoleculeDescription& md,
                                         DerivationOptions options = {});

  /// One molecule per root-atom-type atom, in occurrence order.
  Result<std::vector<Molecule>> DeriveAll(DerivationStats* stats = nullptr) const;

  /// Molecules for exactly `roots`, in the given order. Every root is
  /// validated against the snapshot up front; invalid ids are reported
  /// together in one NotFound status.
  Result<std::vector<Molecule>> DeriveForRoots(
      const std::vector<AtomId>& roots, DerivationStats* stats = nullptr) const;

  /// The single molecule rooted at `root`.
  Result<Molecule> DeriveFor(AtomId root, DerivationStats* stats = nullptr) const;

  /// Number of atoms of the root atom type in the snapshot.
  size_t root_count() const { return nodes_[root_node_].ids.size(); }

 private:
  struct NodeSnapshot {
    /// Dense index -> atom id, in atom-type occurrence order.
    std::vector<AtomId> ids;
  };
  /// One directed description edge as a CSR adjacency over dense indexes:
  /// row r (an atom of `from_node`, occurrence order) spans
  /// targets[offsets[r] .. offsets[r+1]), each entry the dense index of a
  /// partner atom of `to_node`. Row order preserves LinkStore::Partners
  /// order, which keeps the engine's output identical to the historical
  /// per-hop-lookup engine.
  struct EdgeSnapshot {
    size_t from_node = 0;
    size_t to_node = 0;
    std::vector<size_t> offsets;
    std::vector<uint32_t> targets;
  };
  struct Workspace;

  DerivationEngine() = default;

  Molecule DeriveOne(uint32_t root_dense, Workspace& ws) const;
  Workspace MakeWorkspace() const;
  Result<std::vector<Molecule>> FanOut(const std::vector<uint32_t>& roots,
                                       DerivationStats* stats) const;

  DerivationOptions options_;
  std::vector<NodeSnapshot> nodes_;
  std::vector<EdgeSnapshot> edges_;
  std::vector<size_t> node_order_;  // node indexes in topo order, root first
  size_t root_node_ = 0;
  std::vector<std::vector<uint32_t>> in_edges_;  // per node: edge indexes
  std::unordered_map<AtomId, uint32_t> root_index_;  // root id -> dense index
  std::string root_type_name_;  // for error messages
};

/// The function m_dom (Def. 6): derives every molecule matching `md` from
/// the database's atom networks — one molecule per atom of the root atom
/// type, grown by hierarchical join along the directed link types until the
/// leaves are reached, maximal per the `contained`/`total` predicates.
///
/// Multiple incoming description edges are *conjunctive* (the paper's
/// ∀-quantifier in `contained`): an atom of a node with k incoming directed
/// link types belongs to the molecule only if it is linked to contained
/// parent atoms through every one of the k edges.
Result<std::vector<Molecule>> DeriveMolecules(const Database& db,
                                              const MoleculeDescription& md,
                                              const DerivationOptions& options = {},
                                              DerivationStats* stats = nullptr);

/// Derives the single molecule rooted at `root` (which must be an atom of
/// the root atom type).
Result<Molecule> DeriveMoleculeFor(const Database& db,
                                   const MoleculeDescription& md, AtomId root);

/// Derives only the molecules rooted at `roots` (each must be an atom of
/// the root atom type) — the target of restriction pushdown: when a WHERE
/// conjunct is decidable on root attributes alone, the engine derives just
/// the qualifying roots instead of the whole occurrence. All roots are
/// validated before any derivation starts; a NotFound status names every
/// invalid id at once.
Result<std::vector<Molecule>> DeriveMoleculesForRoots(
    const Database& db, const MoleculeDescription& md,
    const std::vector<AtomId>& roots, const DerivationOptions& options = {},
    DerivationStats* stats = nullptr);

/// The operator molecule-type-definition a[mname, G](C) (Def. 8): pairs a
/// validated description with its derived occurrence.
Result<MoleculeType> DefineMoleculeType(const Database& db, std::string name,
                                        MoleculeDescription md,
                                        const DerivationOptions& options = {},
                                        DerivationStats* stats = nullptr);

/// Checks the mv_graph predicate (Def. 6) on an already-built molecule:
/// the instance graph must be directed, acyclic, coherent, rooted at the
/// molecule's root atom, and each atom/link must exist in the database
/// under the description's types. Used by tests and by Theorem-2 checks.
Status ValidateMolecule(const Database& db, const MoleculeDescription& md,
                        const Molecule& molecule);

}  // namespace mad

#endif  // MAD_MOLECULE_DERIVATION_H_
