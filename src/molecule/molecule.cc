#include "molecule/molecule.h"

#include <algorithm>

namespace mad {

bool Molecule::ContainsAtom(size_t node_index, AtomId id) const {
  const std::vector<AtomId>& atoms = atoms_per_node_[node_index];
  return std::find(atoms.begin(), atoms.end(), id) != atoms.end();
}

size_t Molecule::atom_count() const {
  size_t n = 0;
  for (const auto& group : atoms_per_node_) n += group.size();
  return n;
}

std::string Molecule::CanonicalKey() const {
  std::string key = "r" + std::to_string(root_.value);
  for (size_t i = 0; i < atoms_per_node_.size(); ++i) {
    std::vector<AtomId> sorted = atoms_per_node_[i];
    std::sort(sorted.begin(), sorted.end());
    key += "|n" + std::to_string(i) + ":";
    for (AtomId id : sorted) {
      key += std::to_string(id.value);
      key += ",";
    }
  }
  std::vector<MoleculeLink> sorted_links = links_;
  std::sort(sorted_links.begin(), sorted_links.end());
  key += "|g:";
  for (const MoleculeLink& link : sorted_links) {
    key += std::to_string(link.edge_index) + "." +
           std::to_string(link.parent.value) + "." +
           std::to_string(link.child.value) + ",";
  }
  return key;
}

}  // namespace mad
