#ifndef MAD_MOLECULE_MOLECULE_TYPE_H_
#define MAD_MOLECULE_MOLECULE_TYPE_H_

#include <string>
#include <utility>
#include <vector>

#include "molecule/description.h"
#include "molecule/molecule.h"

namespace mad {

/// A molecule type (Def. 7): mt = <mname, md, mv> — name, description, and
/// molecule-type occurrence. Molecule types are values produced by the
/// molecule algebra; the occurrence is held explicitly (the propagation
/// function materialises it back into a Database when first-class atom
/// types are wanted, Def. 9).
class MoleculeType {
 public:
  MoleculeType(std::string name, MoleculeDescription description,
               std::vector<Molecule> molecules)
      : name_(std::move(name)),
        description_(std::move(description)),
        molecules_(std::move(molecules)) {}

  /// mname
  const std::string& name() const { return name_; }
  /// md
  const MoleculeDescription& description() const { return description_; }
  /// mv
  const std::vector<Molecule>& molecules() const { return molecules_; }

  size_t size() const { return molecules_.size(); }
  bool empty() const { return molecules_.empty(); }

 private:
  std::string name_;
  MoleculeDescription description_;
  std::vector<Molecule> molecules_;
};

}  // namespace mad

#endif  // MAD_MOLECULE_MOLECULE_TYPE_H_
