#ifndef MAD_MOLECULE_QUALIFICATION_H_
#define MAD_MOLECULE_QUALIFICATION_H_

#include <map>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "molecule/description.h"
#include "molecule/molecule.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// Evaluates qualification formulas over molecules — the predicate
/// qual(m, restr(md)) of the molecule-type restriction Σ (Def. 10).
///
/// Semantics: boolean connectives combine recursively; each *comparison* is
/// satisfied iff there exist atoms in the molecule — one per atom-type node
/// the comparison references — making it true (the Ch. 4 example
/// `point.name = 'pn'` holds iff some point atom of the molecule is named
/// 'pn'). Attribute references resolve against the description: an explicit
/// qualifier matches a node label (or, uniquely, an atom-type name); an
/// unqualified attribute must occur in exactly one node's visible schema.
class MoleculeQualifier {
 public:
  /// Resolves and validates `predicate` against `md`. The database and the
  /// description must outlive the qualifier.
  static Result<MoleculeQualifier> Create(const Database& db,
                                          const MoleculeDescription& md,
                                          expr::ExprPtr predicate);

  /// True iff the molecule satisfies the predicate.
  Result<bool> Matches(const Molecule& molecule) const;

  /// The predicate with every attribute reference rewritten to
  /// label-qualified form.
  const expr::ExprPtr& resolved_predicate() const { return resolved_; }

 private:
  MoleculeQualifier() = default;

  Result<bool> EvalBoolean(const expr::Expr& expr,
                           const Molecule& molecule) const;
  Result<bool> EvalExistential(const expr::Expr& expr,
                               const Molecule& molecule) const;
  Result<bool> EvalForAll(const expr::Expr& expr,
                          const Molecule& molecule) const;
  /// Copies `expr` with every COUNT(label) replaced by its value in
  /// `molecule`.
  Result<expr::ExprPtr> SubstituteCounts(const expr::Expr& expr,
                                         const Molecule& molecule) const;

  const Database* db_ = nullptr;
  const MoleculeDescription* md_ = nullptr;
  expr::ExprPtr resolved_;
  /// label -> (node index, schema of the node's atom type).
  std::map<std::string, std::pair<size_t, const Schema*>> label_info_;
};

}  // namespace mad

#endif  // MAD_MOLECULE_QUALIFICATION_H_
