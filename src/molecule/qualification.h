#ifndef MAD_MOLECULE_QUALIFICATION_H_
#define MAD_MOLECULE_QUALIFICATION_H_

#include <map>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "molecule/description.h"
#include "molecule/molecule.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// Evaluates qualification formulas over molecules — the predicate
/// qual(m, restr(md)) of the molecule-type restriction Σ (Def. 10).
///
/// Semantics: boolean connectives combine recursively; each *comparison* is
/// satisfied iff there exist atoms in the molecule — one per atom-type node
/// the comparison references — making it true (the Ch. 4 example
/// `point.name = 'pn'` holds iff some point atom of the molecule is named
/// 'pn'). Attribute references resolve against the description: an explicit
/// qualifier matches a node label (or, uniquely, an atom-type name); an
/// unqualified attribute must occur in exactly one node's visible schema.
class MoleculeQualifier {
 public:
  /// Resolves and validates `predicate` against `md`. The database and the
  /// description must outlive the qualifier.
  static Result<MoleculeQualifier> Create(const Database& db,
                                          const MoleculeDescription& md,
                                          expr::ExprPtr predicate);

  /// True iff the molecule satisfies the predicate.
  Result<bool> Matches(const Molecule& molecule) const;

  /// Evaluates an *already resolved* predicate (label-qualified attribute
  /// references, COUNT/FORALL qualifiers that are node labels) over one
  /// molecule with the qualifier's molecule-scope semantics. This is the
  /// seam the differential tests drive directly: unlike Matches(), the
  /// expression need not be the one validated by Create(), so unresolved
  /// qualifiers must surface as Status errors, never as exceptions.
  Result<bool> EvalResolved(const expr::Expr& expr,
                            const Molecule& molecule) const;

  /// The predicate with every attribute reference rewritten to
  /// label-qualified form.
  const expr::ExprPtr& resolved_predicate() const { return resolved_; }

 private:
  MoleculeQualifier() = default;

  /// Checked label_info_ lookup: a qualifier that is not a node label of
  /// the description yields InvalidArgument instead of std::out_of_range.
  Result<const std::pair<size_t, const Schema*>*> FindLabel(
      const std::string& label) const;

  Result<bool> EvalBoolean(const expr::Expr& expr,
                           const Molecule& molecule) const;
  Result<bool> EvalExistential(const expr::Expr& expr,
                               const Molecule& molecule) const;
  Result<bool> EvalForAll(const expr::Expr& expr,
                          const Molecule& molecule) const;
  /// Copies `expr` with every COUNT(label) replaced by its value in
  /// `molecule`.
  Result<expr::ExprPtr> SubstituteCounts(const expr::Expr& expr,
                                         const Molecule& molecule) const;

  const Database* db_ = nullptr;
  const MoleculeDescription* md_ = nullptr;
  expr::ExprPtr resolved_;
  /// label -> (node index, schema of the node's atom type).
  std::map<std::string, std::pair<size_t, const Schema*>> label_info_;
};

/// Rewrites every attribute reference of `predicate` to label-qualified
/// form against `md`, validating attribute existence, projection narrowing,
/// COUNT/FORALL qualifiers, and the FORALL scoping rules along the way —
/// the resolution step of MoleculeQualifier::Create, exposed for the
/// predicate compiler (expr/compile.h) so interpreted and compiled
/// evaluation agree on exactly which predicates are accepted.
Result<expr::ExprPtr> ResolveQualification(const Database& db,
                                           const MoleculeDescription& md,
                                           const expr::ExprPtr& predicate);

/// Collects the distinct qualifiers of `expr`'s attribute references in
/// first-reference (pre-order) order — the binding-loop order of existential
/// evaluation. Shared with the predicate compiler (expr/compile.h) so
/// interpreted and compiled evaluation enumerate witnesses identically.
void CollectQualifierLabels(const expr::Expr& expr,
                            std::vector<std::string>* out);

}  // namespace mad

#endif  // MAD_MOLECULE_QUALIFICATION_H_
