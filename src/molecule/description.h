#ifndef MAD_MOLECULE_DESCRIPTION_H_
#define MAD_MOLECULE_DESCRIPTION_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "storage/database.h"
#include "util/digraph.h"
#include "util/result.h"

namespace mad {

/// One node of a molecule-type description: an atom type plus a label.
///
/// The label names the node inside the description (qualification formulas
/// refer to it, e.g. `point.name = 'pn'`). It defaults to the atom-type
/// name; distinct labels are what allow an operation result (whose atom
/// types were renamed by propagation, Def. 9) to keep presenting the
/// original vocabulary to queries.
struct MoleculeNode {
  std::string type_name;
  std::string label;
  /// Attribute narrowing installed by molecule-type projection Π; nullopt
  /// means every attribute of the atom type is visible.
  std::optional<std::vector<std::string>> attributes;
};

/// One directed link type of a description (Def. 5's dl =
/// <lname, aname_i1, aname_i2>): traverse `link_type` from the node
/// labelled `from` to the node labelled `to`.
///
/// `reverse` selects the traversal orientation through the underlying
/// symmetric link type: false follows first-role -> second-role, true the
/// opposite. For non-reflexive link types Create() infers it from the node
/// types; for reflexive link types the caller must say which end is which.
struct DirectedLink {
  std::string link_type;
  std::string from;
  std::string to;
  bool reverse = false;
};

/// A molecule-type description md = <C, G> (Def. 5): a coherent, directed,
/// acyclic type graph with exactly one root (the paper's md_graph
/// predicate), validated against a database schema.
class MoleculeDescription {
 public:
  /// Builds and validates a description. Checks: labels unique; atom types
  /// exist; narrowed attributes exist; every directed link names an
  /// existing link type whose role assignment matches the endpoint node
  /// types; and md_graph holds (rooted DAG, coherent).
  /// Nodes may be given as bare atom-type names (`{"state", "area"}`):
  /// an empty label defaults to the type name, and link orientation is
  /// inferred for non-reflexive link types.
  static Result<MoleculeDescription> Create(const Database& db,
                                            std::vector<MoleculeNode> nodes,
                                            std::vector<DirectedLink> links);

  /// Convenience: nodes given as bare atom-type names (label = type name).
  static Result<MoleculeDescription> CreateFromTypes(
      const Database& db, std::vector<std::string> atom_types,
      std::vector<DirectedLink> links);

  const std::vector<MoleculeNode>& nodes() const { return nodes_; }
  const std::vector<DirectedLink>& links() const { return links_; }
  /// Label of the unique root node.
  const std::string& root_label() const { return root_label_; }
  const MoleculeNode& root_node() const { return nodes_[*NodeIndex(root_label_)]; }
  /// Labels in a deterministic topological order (root first).
  const std::vector<std::string>& topo_order() const { return topo_order_; }

  /// Index of the node labelled `label`, or NotFound.
  Result<size_t> NodeIndex(const std::string& label) const;
  bool HasLabel(const std::string& label) const {
    return node_index_.count(label) > 0;
  }

  /// Resolves a qualification qualifier to a node index: an exact label
  /// match wins; otherwise a unique type-name match; otherwise an error.
  Result<size_t> ResolveQualifier(const std::string& qualifier) const;

  /// Indexes (into links()) of the directed links entering / leaving the
  /// node labelled `label`.
  const std::vector<size_t>& InLinksOf(const std::string& label) const;
  const std::vector<size_t>& OutLinksOf(const std::string& label) const;

  /// Structural equality: same nodes (type, label, narrowing) in the same
  /// order and same links — the compatibility precondition of Ω and Δ.
  bool operator==(const MoleculeDescription& other) const;
  bool operator!=(const MoleculeDescription& other) const {
    return !(*this == other);
  }

  /// Compact display form, e.g. "point-edge-(area-state,net-river)".
  std::string ToString() const;

 private:
  MoleculeDescription() = default;

  std::vector<MoleculeNode> nodes_;
  std::vector<DirectedLink> links_;
  std::map<std::string, size_t> node_index_;
  std::map<std::string, std::vector<size_t>> in_links_;
  std::map<std::string, std::vector<size_t>> out_links_;
  std::string root_label_;
  std::vector<std::string> topo_order_;
};

}  // namespace mad

#endif  // MAD_MOLECULE_DESCRIPTION_H_
