#ifndef MAD_MOLECULE_RECURSIVE_H_
#define MAD_MOLECULE_RECURSIVE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "molecule/description.h"
#include "molecule/molecule.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// A recursive molecule structure (the Ch. 5 outlook, [Schö89]): starting
/// from each atom of `atom_type`, transitively follow the reflexive link
/// type `link_type`.
///
/// Plain molecule-type descriptions reject reflexive link types — a
/// self-loop violates md_graph's acyclicity — so recursion is the data
/// model's dedicated mechanism for bill-of-material-style schemas. The
/// traversal `direction` selects the view: through a 'composition' link
/// type stored <super, sub>, kForward yields the parts explosion
/// (sub-component view) and kBackward the where-used parts implosion
/// (super-component view), exploiting the link type's symmetry.
struct RecursiveDescription {
  std::string atom_type;
  std::string link_type;
  LinkDirection direction = LinkDirection::kForward;
  /// Maximum traversal depth; -1 is unbounded. Termination on cyclic
  /// instance data is guaranteed by a visited set either way.
  int max_depth = -1;
};

/// A recursive molecule: the root atom plus the transitive closure of its
/// partners, stratified by traversal level (level 0 holds the root; an atom
/// appears at its *shortest* distance from the root).
class RecursiveMolecule {
 public:
  RecursiveMolecule(AtomId root) : levels_{{root}}, members_{root} {}

  AtomId root() const { return levels_[0][0]; }
  /// Levels of the breadth-first expansion; levels_[d] holds the atoms
  /// first reached after d link traversals.
  const std::vector<std::vector<AtomId>>& levels() const { return levels_; }
  /// Traversal depth actually reached.
  size_t depth() const { return levels_.size() - 1; }
  /// Number of distinct atoms (the root included).
  size_t atom_count() const { return members_.size(); }
  bool Contains(AtomId id) const { return members_.count(id) > 0; }
  /// The realised links, oriented parent→child in traversal order. Links
  /// between already-contained atoms (DAG sharing, cycles) are included.
  const std::vector<Link>& links() const { return links_; }

  // Construction interface used by the derivation engine.
  void AddLevel(std::vector<AtomId> level) { levels_.push_back(std::move(level)); }
  bool AddMember(AtomId id) { return members_.insert(id).second; }
  void AddLink(Link link) { links_.push_back(link); }

 private:
  std::vector<std::vector<AtomId>> levels_;
  std::unordered_set<AtomId> members_;
  std::vector<Link> links_;
};

/// Validates a recursive description: the atom type exists and the link
/// type is reflexive on it.
Status ValidateRecursiveDescription(const Database& db,
                                    const RecursiveDescription& rd);

/// Derives the recursive molecule rooted at `root` (breadth-first, cycle
/// safe).
Result<RecursiveMolecule> DeriveRecursiveMoleculeFor(
    const Database& db, const RecursiveDescription& rd, AtomId root);

/// Derives one recursive molecule per atom of the root atom type.
Result<std::vector<RecursiveMolecule>> DeriveRecursiveMolecules(
    const Database& db, const RecursiveDescription& rd);

/// A recursive molecule whose closure members are expanded by a plain
/// molecule structure — [Schö89]'s recursive molecule types as full data
/// model objects: the closure gives the skeleton, and every member atom
/// carries its own component molecule (e.g. each part of an explosion with
/// its suppliers and documents).
struct ExpandedRecursiveMolecule {
  RecursiveMolecule closure;
  /// One component molecule per distinct closure member (the root
  /// included), in closure level order.
  std::vector<Molecule> components;
};

/// Derives the recursive molecule for `root` and expands every member with
/// `expansion`, whose root node must be the recursion's atom type.
Result<ExpandedRecursiveMolecule> DeriveExpandedRecursiveMoleculeFor(
    const Database& db, const RecursiveDescription& rd,
    const MoleculeDescription& expansion, AtomId root);

/// One expanded recursive molecule per atom of the recursion's atom type.
Result<std::vector<ExpandedRecursiveMolecule>>
DeriveExpandedRecursiveMolecules(const Database& db,
                                 const RecursiveDescription& rd,
                                 const MoleculeDescription& expansion);

/// Materialises the recursion result as a first-class schema object
/// (recursive molecule types as data model objects, [Schö89]): defines a
/// new link type `closure_name` on `rd.atom_type` holding one link
/// <root, member> per closure membership (root excluded), and returns the
/// number of closure links inserted.
Result<size_t> PropagateClosureLinks(Database& db,
                                     const RecursiveDescription& rd,
                                     const std::string& closure_name);

}  // namespace mad

#endif  // MAD_MOLECULE_RECURSIVE_H_
