#ifndef MAD_MOLECULE_PROPAGATION_H_
#define MAD_MOLECULE_PROPAGATION_H_

#include <string>

#include "molecule/molecule_type.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// The propagation function prop (Def. 9): materialises a molecule type's
/// occurrence back into the database, enlarging it with
///
///   * one renamed atom type per description node ("<label>@<mname>"),
///     whose occurrence contains exactly the atoms appearing in the
///     molecule set (identity preserved; attribute narrowing applied), and
///   * one link type per directed description link ("<lname>@<mname>"),
///     whose occurrence contains exactly the links appearing in the
///     molecule set (stored in parent→child role order).
///
/// Returns the equivalent molecule type over the enlarged database: same
/// molecule set, description rebuilt over the propagated types with the
/// original labels. Theorem 2's re-derivability (m_dom(md') == mv) holds
/// for restriction results and is exercised by the property tests; see
/// DESIGN.md for the sharing corner cases where maximal re-derivation may
/// merge molecules.
Result<MoleculeType> PropagateMoleculeType(Database& db,
                                           const MoleculeType& mt,
                                           std::string result_name = "");

}  // namespace mad

#endif  // MAD_MOLECULE_PROPAGATION_H_
