#include "molecule/derivation.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_map>

#include "expr/compile.h"
#include "util/digraph.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mad {

// ---- Frozen snapshot construction -----------------------------------------

Result<DerivationEngine> DerivationEngine::Create(const Database& db,
                                                 const MoleculeDescription& md,
                                                 DerivationOptions options) {
  DerivationEngine engine;
  engine.options_ = options;
  const size_t node_count = md.nodes().size();
  engine.nodes_.resize(node_count);
  engine.in_edges_.resize(node_count);

  // Dense-index maps are a build-time convenience only; the derivation loop
  // never hashes.
  std::vector<std::unordered_map<AtomId, uint32_t>> dense(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    MAD_ASSIGN_OR_RETURN(const AtomType* at,
                         db.GetAtomType(md.nodes()[i].type_name));
    const std::vector<Atom>& atoms = at->occurrence().atoms();
    engine.nodes_[i].ids.reserve(atoms.size());
    engine.nodes_[i].rows.reserve(atoms.size());
    dense[i].reserve(atoms.size());
    for (size_t k = 0; k < atoms.size(); ++k) {
      engine.nodes_[i].ids.push_back(atoms[k].id);
      engine.nodes_[i].rows.push_back(&atoms[k]);
      dense[i].emplace(atoms[k].id, static_cast<uint32_t>(k));
    }
    const std::vector<size_t>& ins = md.InLinksOf(md.nodes()[i].label);
    engine.in_edges_[i].assign(ins.begin(), ins.end());
  }

  MAD_ASSIGN_OR_RETURN(engine.root_node_, md.NodeIndex(md.root_label()));
  engine.root_type_name_ = md.root_node().type_name;

  engine.node_order_.reserve(md.topo_order().size());
  for (const std::string& label : md.topo_order()) {
    MAD_ASSIGN_OR_RETURN(size_t idx, md.NodeIndex(label));
    engine.node_order_.push_back(idx);
  }

  engine.edges_.reserve(md.links().size());
  for (const DirectedLink& dl : md.links()) {
    EdgeSnapshot edge;
    MAD_ASSIGN_OR_RETURN(edge.from_node, md.NodeIndex(dl.from));
    MAD_ASSIGN_OR_RETURN(edge.to_node, md.NodeIndex(dl.to));
    MAD_ASSIGN_OR_RETURN(const LinkType* lt, db.GetLinkType(dl.link_type));
    const LinkStore& store = lt->occurrence();
    const LinkDirection direction =
        dl.reverse ? LinkDirection::kBackward : LinkDirection::kForward;
    const std::unordered_map<AtomId, uint32_t>& to_dense = dense[edge.to_node];

    edge.offsets.reserve(engine.nodes_[edge.from_node].ids.size() + 1);
    edge.offsets.push_back(0);
    for (AtomId from_id : engine.nodes_[edge.from_node].ids) {
      for (AtomId partner : store.Partners(from_id, direction)) {
        auto it = to_dense.find(partner);
        if (it != to_dense.end()) edge.targets.push_back(it->second);
      }
      edge.offsets.push_back(edge.targets.size());
    }
    engine.edges_.push_back(std::move(edge));
  }

  // Pushed-down qualification: rearrange the filters to node order and note
  // which nodes must publish dense rows for some program's binding loops.
  engine.filters_by_node_.assign(node_count, nullptr);
  engine.needs_rows_.assign(node_count, false);
  auto adopt = [&](const expr::CompiledPredicate* program) -> Status {
    if (program->node_count() != node_count) {
      return Status::InvalidArgument(
          "pushed predicate program was compiled against a different "
          "description");
    }
    for (size_t n : program->loop_nodes()) engine.needs_rows_[n] = true;
    engine.filtering_ = true;
    return Status::OK();
  };
  for (const auto& [node_idx, program] : options.node_filters) {
    if (program == nullptr) continue;
    if (node_idx >= node_count) {
      return Status::InvalidArgument("pushed filter names node index " +
                                     std::to_string(node_idx) +
                                     " outside the description");
    }
    if (engine.filters_by_node_[node_idx] != nullptr) {
      return Status::InvalidArgument(
          "node '" + md.nodes()[node_idx].label +
          "' has more than one pushed filter (conjoin them instead)");
    }
    MAD_RETURN_IF_ERROR(adopt(program));
    engine.filters_by_node_[node_idx] = program;
  }
  if (options.residual != nullptr) {
    MAD_RETURN_IF_ERROR(adopt(options.residual));
  }

  engine.root_index_ = std::move(dense[engine.root_node_]);
  return engine;
}

// ---- Per-worker scratch ---------------------------------------------------

/// Epoch-stamped scratch, one instance per worker thread: sized once to the
/// snapshot's occurrence sizes, then reused across every root without
/// clearing — stale entries are dead because their stamp differs from the
/// current epoch/token.
struct DerivationEngine::Workspace {
  struct NodeScratch {
    std::vector<uint64_t> edge_token;    // last (epoch, edge) that saw the atom
    std::vector<uint64_t> hit_epoch;     // epoch of first discovery
    std::vector<uint32_t> hit_count;     // in-edges that reached it this epoch
    std::vector<uint64_t> member_epoch;  // epoch when accepted as contained
    std::vector<uint32_t> group;         // contained atoms, derivation order
    std::vector<uint32_t> order;         // candidate discovery order
  };
  std::vector<NodeScratch> nodes;
  uint64_t epoch = 0;
  size_t atoms_visited = 0;
  size_t links_scanned = 0;
  size_t rejected = 0;
  // Pushed-qualification state: one span per description node (published as
  // each group completes), dense-row buffers for looped nodes, and the
  // reusable program scratch. All empty when no filters are pushed.
  std::vector<expr::CompiledPredicate::AtomSpan> spans;
  std::vector<std::vector<const Atom*>> row_buf;
  expr::CompiledPredicate::Scratch scratch;
};

DerivationEngine::Workspace DerivationEngine::MakeWorkspace() const {
  Workspace ws;
  ws.nodes.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const size_t occ = nodes_[i].ids.size();
    ws.nodes[i].edge_token.assign(occ, 0);
    ws.nodes[i].hit_epoch.assign(occ, 0);
    ws.nodes[i].hit_count.assign(occ, 0);
    ws.nodes[i].member_epoch.assign(occ, 0);
  }
  if (filtering_) {
    ws.spans.resize(nodes_.size());
    ws.row_buf.resize(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (needs_rows_[i]) ws.row_buf[i].reserve(nodes_[i].ids.size());
    }
  }
  return ws;
}

// ---- Derivation of one molecule (Def. 6) ----------------------------------

/// Publishes a completed group to the pushed-qualification spans and runs
/// the node's filter, if any. Returns false to reject the molecule. Called
/// only when filtering: the span array always reflects every group
/// completed so far this epoch (a program for node i references only node
/// i, and the residual runs when all groups are complete).
Result<bool> DerivationEngine::CompleteNode(size_t node_idx,
                                            Workspace& ws) const {
  expr::CompiledPredicate::AtomSpan& span = ws.spans[node_idx];
  const std::vector<uint32_t>& group = ws.nodes[node_idx].group;
  span.size = group.size();
  if (needs_rows_[node_idx]) {
    std::vector<const Atom*>& buf = ws.row_buf[node_idx];
    buf.clear();
    const std::vector<const Atom*>& rows = nodes_[node_idx].rows;
    for (uint32_t member : group) buf.push_back(rows[member]);
    span.data = buf.data();
  }
  const expr::CompiledPredicate* filter = filters_by_node_[node_idx];
  if (filter == nullptr) return true;
  return filter->Eval(ws.spans.data(), ws.scratch);
}

/// Grows the maximal molecule for one root atom (the `contained`/`total`
/// semantics of Def. 6). Nodes are processed in topological order, so every
/// parent group is complete before its children are computed; an atom joins
/// a node's group iff it has a contained parent through *every* incoming
/// directed link type (conjunctive ∀-semantics). The loop runs entirely on
/// dense indexes over the frozen CSR snapshot: no hashing, no lookups.
///
/// Pushed filters run as each group completes — a subtree that cannot
/// qualify is pruned before its descendants expand — and the residual
/// program runs before materialization. Rejections return nullopt.
Result<std::optional<Molecule>> DerivationEngine::DeriveOne(
    uint32_t root_dense, Workspace& ws) const {
  const uint64_t epoch = ++ws.epoch;
  const uint64_t token_base = epoch * edges_.size();
  for (Workspace::NodeScratch& ns : ws.nodes) ns.group.clear();
  if (filtering_) {
    for (expr::CompiledPredicate::AtomSpan& span : ws.spans) {
      span = expr::CompiledPredicate::AtomSpan{};
    }
  }

  Workspace::NodeScratch& root_scratch = ws.nodes[root_node_];
  root_scratch.group.push_back(root_dense);
  root_scratch.member_epoch[root_dense] = epoch;
  ws.atoms_visited += 1;
  if (filtering_) {
    MAD_ASSIGN_OR_RETURN(bool keep, CompleteNode(root_node_, ws));
    if (!keep) {
      ++ws.rejected;
      return std::optional<Molecule>();
    }
  }

  for (size_t oi = 1; oi < node_order_.size(); ++oi) {
    const size_t node_idx = node_order_[oi];
    Workspace::NodeScratch& ns = ws.nodes[node_idx];
    const std::vector<uint32_t>& ins = in_edges_[node_idx];
    ns.order.clear();

    for (uint32_t edge_idx : ins) {
      const uint64_t token = token_base + edge_idx;
      const EdgeSnapshot& edge = edges_[edge_idx];
      for (uint32_t parent : ws.nodes[edge.from_node].group) {
        const size_t row_begin = edge.offsets[parent];
        const size_t row_end = edge.offsets[parent + 1];
        ws.links_scanned += row_end - row_begin;
        for (size_t k = row_begin; k < row_end; ++k) {
          const uint32_t target = edge.targets[k];
          if (ns.edge_token[target] == token) continue;  // dedup per edge
          ns.edge_token[target] = token;
          if (ns.hit_epoch[target] != epoch) {
            ns.hit_epoch[target] = epoch;
            ns.hit_count[target] = 1;
            ns.order.push_back(target);
          } else {
            ++ns.hit_count[target];
          }
        }
      }
    }
    ws.atoms_visited += ns.order.size();
    for (uint32_t candidate : ns.order) {
      if (ns.hit_count[candidate] == ins.size()) {
        ns.group.push_back(candidate);
        ns.member_epoch[candidate] = epoch;
      }
    }
    if (filtering_) {
      MAD_ASSIGN_OR_RETURN(bool keep, CompleteNode(node_idx, ws));
      if (!keep) {
        ++ws.rejected;
        return std::optional<Molecule>();
      }
    }
  }

  if (options_.residual != nullptr) {
    MAD_ASSIGN_OR_RETURN(bool keep,
                         options_.residual->Eval(ws.spans.data(), ws.scratch));
    if (!keep) {
      ++ws.rejected;
      return std::optional<Molecule>();
    }
  }

  Molecule m(nodes_[root_node_].ids[root_dense], nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    std::vector<AtomId>& out = m.MutableAtomsOf(i);
    out.reserve(ws.nodes[i].group.size());
    for (uint32_t member : ws.nodes[i].group) {
      out.push_back(nodes_[i].ids[member]);
    }
  }

  // Record the molecule's links g: every underlying link between contained
  // atoms along a description edge.
  for (size_t edge_idx = 0; edge_idx < edges_.size(); ++edge_idx) {
    const EdgeSnapshot& edge = edges_[edge_idx];
    const Workspace::NodeScratch& to_scratch = ws.nodes[edge.to_node];
    const std::vector<AtomId>& from_ids = nodes_[edge.from_node].ids;
    const std::vector<AtomId>& to_ids = nodes_[edge.to_node].ids;
    for (uint32_t parent : ws.nodes[edge.from_node].group) {
      const size_t row_begin = edge.offsets[parent];
      const size_t row_end = edge.offsets[parent + 1];
      ws.links_scanned += row_end - row_begin;
      for (size_t k = row_begin; k < row_end; ++k) {
        const uint32_t target = edge.targets[k];
        if (to_scratch.member_epoch[target] == epoch) {
          m.AddLink(MoleculeLink{edge_idx, from_ids[parent], to_ids[target]});
        }
      }
    }
  }
  return std::optional<Molecule>(std::move(m));
}

// ---- Parallel fan-out -----------------------------------------------------

Result<std::vector<Molecule>> DerivationEngine::FanOut(
    const std::vector<uint32_t>& roots, DerivationStats* stats) const {
  unsigned parallelism = options_.parallelism != 0
                             ? options_.parallelism
                             : ThreadPool::DefaultParallelism();
  parallelism = static_cast<unsigned>(std::min<size_t>(
      parallelism, std::max<size_t>(1, roots.size())));

  // One span covers the whole fan-out; the per-root hot loop on the worker
  // threads stays span-free (it aggregates into DerivationStats instead).
  ScopedSpan span("derive",
                  std::to_string(parallelism) + " thread" +
                      (parallelism == 1 ? "" : "s"));
  span.set_rows_in(static_cast<int64_t>(roots.size()));

  const auto start = std::chrono::steady_clock::now();

  std::vector<Workspace> workspaces;
  workspaces.reserve(parallelism);
  for (unsigned w = 0; w < parallelism; ++w) {
    workspaces.push_back(MakeWorkspace());
  }

  // Pre-sized slots keyed by root position: whatever thread derives slot i,
  // the output order is root order — bit-for-bit identical to a serial run.
  // A filter rejection leaves its slot empty; an evaluation error is
  // recorded per worker and the error of the *smallest* root index wins
  // after the join, so the reported status never depends on scheduling.
  std::vector<std::optional<Molecule>> slots(roots.size());
  struct WorkerError {
    size_t index;
    Status status;
  };
  std::vector<std::optional<WorkerError>> worker_errors(parallelism);
  const size_t chunk =
      std::max<size_t>(1, roots.size() / (static_cast<size_t>(parallelism) * 8));
  ThreadPool::Shared().ParallelFor(
      roots.size(), chunk, parallelism,
      [&](unsigned worker, size_t begin, size_t end) {
        Workspace& ws = workspaces[worker];
        for (size_t i = begin; i < end; ++i) {
          Result<std::optional<Molecule>> derived = DeriveOne(roots[i], ws);
          if (!derived.ok()) {
            std::optional<WorkerError>& err = worker_errors[worker];
            if (!err.has_value() || i < err->index) {
              err = WorkerError{i, derived.status()};
            }
            continue;
          }
          slots[i] = std::move(derived).value();
        }
      });

  const WorkerError* first_error = nullptr;
  for (const std::optional<WorkerError>& err : worker_errors) {
    if (err.has_value() &&
        (first_error == nullptr || err->index < first_error->index)) {
      first_error = &*err;
    }
  }
  if (first_error != nullptr) return first_error->status;

  std::vector<Molecule> molecules;
  molecules.reserve(slots.size());
  for (std::optional<Molecule>& slot : slots) {
    if (slot.has_value()) molecules.push_back(std::move(*slot));
  }

  size_t atoms_visited = 0;
  size_t links_scanned = 0;
  size_t rejected = 0;
  for (const Workspace& ws : workspaces) {
    atoms_visited += ws.atoms_visited;
    links_scanned += ws.links_scanned;
    rejected += ws.rejected;
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (stats != nullptr) {
    *stats = DerivationStats{};
    stats->roots = roots.size();
    stats->threads_used = parallelism;
    stats->atoms_visited = atoms_visited;
    stats->links_scanned = links_scanned;
    stats->molecules_rejected = rejected;
    stats->wall_ms = wall_ms;
  }

  // Fold the run into the process-wide registry (static refs: the name
  // lookup happens once, the updates are relaxed atomics).
  static Counter& roots_counter =
      Registry::Global().GetCounter("derivation.roots");
  static Counter& atoms_counter =
      Registry::Global().GetCounter("derivation.atoms_visited");
  static Counter& links_counter =
      Registry::Global().GetCounter("derivation.links_scanned");
  static Counter& rejected_counter =
      Registry::Global().GetCounter("derivation.rejected");
  static Histogram& wall_hist =
      Registry::Global().GetHistogram("derivation.fanout_us");
  roots_counter.Add(roots.size());
  atoms_counter.Add(atoms_visited);
  links_counter.Add(links_scanned);
  rejected_counter.Add(rejected);
  wall_hist.Observe(static_cast<uint64_t>(wall_ms * 1000.0));

  span.set_rows_out(static_cast<int64_t>(molecules.size()));
  return molecules;
}

Result<std::vector<Molecule>> DerivationEngine::DeriveAll(
    DerivationStats* stats) const {
  std::vector<uint32_t> roots(root_count());
  for (size_t i = 0; i < roots.size(); ++i) {
    roots[i] = static_cast<uint32_t>(i);
  }
  return FanOut(roots, stats);
}

Result<std::vector<Molecule>> DerivationEngine::DeriveForRoots(
    const std::vector<AtomId>& roots, DerivationStats* stats) const {
  // Validate every root before deriving anything, and report all offenders
  // in one message instead of failing at the first mid-loop.
  std::vector<uint32_t> dense_roots;
  dense_roots.reserve(roots.size());
  std::string bad;
  size_t bad_count = 0;
  for (AtomId root : roots) {
    auto it = root_index_.find(root);
    if (it == root_index_.end()) {
      if (!bad.empty()) bad += ", ";
      bad += "#" + std::to_string(root.value);
      ++bad_count;
      continue;
    }
    dense_roots.push_back(it->second);
  }
  if (bad_count > 0) {
    return Status::NotFound(
        (bad_count == 1 ? "atom " + bad + " is" : "atoms " + bad + " are") +
        " not in root atom type '" + root_type_name_ + "'");
  }
  return FanOut(dense_roots, stats);
}

Result<Molecule> DerivationEngine::DeriveFor(AtomId root,
                                             DerivationStats* stats) const {
  auto it = root_index_.find(root);
  if (it == root_index_.end()) {
    return Status::NotFound("atom #" + std::to_string(root.value) +
                            " is not in root atom type '" + root_type_name_ +
                            "'");
  }
  Workspace ws = MakeWorkspace();
  MAD_ASSIGN_OR_RETURN(std::optional<Molecule> m, DeriveOne(it->second, ws));
  if (!m.has_value()) {
    return Status::NotFound("molecule #" + std::to_string(root.value) +
                            " was rejected by pushed-down qualification");
  }
  if (stats != nullptr) {
    *stats = DerivationStats{};
    stats->roots = 1;
    stats->threads_used = 1;
    stats->atoms_visited = ws.atoms_visited;
    stats->links_scanned = ws.links_scanned;
  }
  return *std::move(m);
}

// ---- Free-function façade --------------------------------------------------

Result<std::vector<Molecule>> DeriveMolecules(const Database& db,
                                              const MoleculeDescription& md,
                                              const DerivationOptions& options,
                                              DerivationStats* stats) {
  MAD_ASSIGN_OR_RETURN(DerivationEngine engine,
                       DerivationEngine::Create(db, md, options));
  return engine.DeriveAll(stats);
}

Result<Molecule> DeriveMoleculeFor(const Database& db,
                                   const MoleculeDescription& md,
                                   AtomId root) {
  MAD_ASSIGN_OR_RETURN(DerivationEngine engine,
                       DerivationEngine::Create(db, md));
  return engine.DeriveFor(root);
}

Result<std::vector<Molecule>> DeriveMoleculesForRoots(
    const Database& db, const MoleculeDescription& md,
    const std::vector<AtomId>& roots, const DerivationOptions& options,
    DerivationStats* stats) {
  MAD_ASSIGN_OR_RETURN(DerivationEngine engine,
                       DerivationEngine::Create(db, md, options));
  return engine.DeriveForRoots(roots, stats);
}

Result<MoleculeType> DefineMoleculeType(const Database& db, std::string name,
                                        MoleculeDescription md,
                                        const DerivationOptions& options,
                                        DerivationStats* stats) {
  if (name.empty()) {
    return Status::InvalidArgument("molecule type name must be non-empty");
  }
  MAD_ASSIGN_OR_RETURN(std::vector<Molecule> molecules,
                       DeriveMolecules(db, md, options, stats));
  return MoleculeType(std::move(name), std::move(md), std::move(molecules));
}

Status ValidateMolecule(const Database& db, const MoleculeDescription& md,
                        const Molecule& molecule) {
  if (molecule.node_count() != md.nodes().size()) {
    return Status::InvalidArgument(
        "molecule has a different node count than its description");
  }
  MAD_ASSIGN_OR_RETURN(size_t root_idx, md.NodeIndex(md.root_label()));

  // The root group holds exactly the root atom.
  const std::vector<AtomId>& root_group = molecule.AtomsOf(root_idx);
  if (root_group.size() != 1 || root_group[0] != molecule.root()) {
    return Status::ConstraintViolation(
        "molecule root group must hold exactly the root atom");
  }

  // Every atom exists under its node's atom type.
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    MAD_ASSIGN_OR_RETURN(const AtomType* at,
                         db.GetAtomType(md.nodes()[i].type_name));
    for (AtomId id : molecule.AtomsOf(i)) {
      if (!at->occurrence().Contains(id)) {
        return Status::ConstraintViolation(
            "molecule atom #" + std::to_string(id.value) +
            " is not in atom type '" + md.nodes()[i].type_name + "'");
      }
    }
  }

  // Every link is realised in the database with the right orientation and
  // connects contained atoms; build the instance graph along the way.
  Digraph instance;
  auto node_key = [](size_t node_idx, AtomId id) {
    return std::to_string(node_idx) + ":" + std::to_string(id.value);
  };
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    for (AtomId id : molecule.AtomsOf(i)) instance.AddNode(node_key(i, id));
  }
  for (const MoleculeLink& link : molecule.links()) {
    if (link.edge_index >= md.links().size()) {
      return Status::ConstraintViolation("molecule link has bad edge index");
    }
    const DirectedLink& dl = md.links()[link.edge_index];
    MAD_ASSIGN_OR_RETURN(size_t from_idx, md.NodeIndex(dl.from));
    MAD_ASSIGN_OR_RETURN(size_t to_idx, md.NodeIndex(dl.to));
    if (!molecule.ContainsAtom(from_idx, link.parent) ||
        !molecule.ContainsAtom(to_idx, link.child)) {
      return Status::ConstraintViolation(
          "molecule link endpoints are not molecule atoms");
    }
    MAD_ASSIGN_OR_RETURN(const LinkType* lt, db.GetLinkType(dl.link_type));
    bool present = dl.reverse
                       ? lt->occurrence().Contains(link.child, link.parent)
                       : lt->occurrence().Contains(link.parent, link.child);
    if (!present) {
      return Status::ConstraintViolation(
          "molecule link is not present in link type '" + dl.link_type + "'");
    }
    MAD_RETURN_IF_ERROR(instance.AddEdge(dl.link_type,
                                         node_key(from_idx, link.parent),
                                         node_key(to_idx, link.child)));
  }

  // mv_graph: the instance graph is a coherent DAG rooted at the root atom.
  MAD_ASSIGN_OR_RETURN(std::string instance_root, instance.CheckRootedDag());
  if (instance_root != node_key(root_idx, molecule.root())) {
    return Status::ConstraintViolation(
        "molecule instance graph is not rooted at the root atom");
  }
  return Status::OK();
}

}  // namespace mad
