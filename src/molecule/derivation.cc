#include "molecule/derivation.h"

#include <unordered_map>
#include <unordered_set>

#include "util/digraph.h"

namespace mad {

namespace {

/// Pre-resolved traversal plan: one entry per directed link of the
/// description, holding everything derivation needs without further name
/// lookups.
struct ResolvedEdge {
  size_t from_node = 0;
  size_t to_node = 0;
  const LinkStore* store = nullptr;
  LinkDirection direction = LinkDirection::kForward;
};

struct Plan {
  std::vector<ResolvedEdge> edges;
  std::vector<size_t> node_order;  // node indexes in topo order
};

Result<Plan> MakePlan(const Database& db, const MoleculeDescription& md) {
  Plan plan;
  plan.edges.reserve(md.links().size());
  for (const DirectedLink& dl : md.links()) {
    ResolvedEdge edge;
    MAD_ASSIGN_OR_RETURN(edge.from_node, md.NodeIndex(dl.from));
    MAD_ASSIGN_OR_RETURN(edge.to_node, md.NodeIndex(dl.to));
    MAD_ASSIGN_OR_RETURN(const LinkType* lt, db.GetLinkType(dl.link_type));
    edge.store = &lt->occurrence();
    edge.direction =
        dl.reverse ? LinkDirection::kBackward : LinkDirection::kForward;
    plan.edges.push_back(edge);
  }
  plan.node_order.reserve(md.topo_order().size());
  for (const std::string& label : md.topo_order()) {
    MAD_ASSIGN_OR_RETURN(size_t idx, md.NodeIndex(label));
    plan.node_order.push_back(idx);
  }
  return plan;
}

/// Grows the maximal molecule for one root atom (the `contained`/`total`
/// semantics of Def. 6). Nodes are processed in topological order, so every
/// parent group is complete before its children are computed; an atom joins
/// a node's group iff it has a contained parent through *every* incoming
/// directed link type (conjunctive ∀-semantics).
Molecule DeriveOne(const MoleculeDescription& md, const Plan& plan,
                   AtomId root) {
  Molecule m(root, md.nodes().size());
  std::vector<std::unordered_set<AtomId>> members(md.nodes().size());

  size_t root_idx = plan.node_order[0];
  m.MutableAtomsOf(root_idx).push_back(root);
  members[root_idx].insert(root);

  for (size_t oi = 1; oi < plan.node_order.size(); ++oi) {
    size_t node_idx = plan.node_order[oi];
    const std::string& label = md.nodes()[node_idx].label;
    const std::vector<size_t>& in_edges = md.InLinksOf(label);

    std::vector<AtomId> order;
    std::unordered_map<AtomId, size_t> hits;
    for (size_t edge_idx : in_edges) {
      const ResolvedEdge& edge = plan.edges[edge_idx];
      std::unordered_set<AtomId> seen_this_edge;
      for (AtomId parent : m.AtomsOf(edge.from_node)) {
        for (AtomId partner : edge.store->Partners(parent, edge.direction)) {
          if (!seen_this_edge.insert(partner).second) continue;
          if (hits[partner]++ == 0) order.push_back(partner);
        }
      }
    }
    for (AtomId atom : order) {
      if (hits[atom] == in_edges.size()) {
        m.MutableAtomsOf(node_idx).push_back(atom);
        members[node_idx].insert(atom);
      }
    }
  }

  // Record the molecule's links g: every underlying link between contained
  // atoms along a description edge.
  for (size_t edge_idx = 0; edge_idx < plan.edges.size(); ++edge_idx) {
    const ResolvedEdge& edge = plan.edges[edge_idx];
    for (AtomId parent : m.AtomsOf(edge.from_node)) {
      for (AtomId partner : edge.store->Partners(parent, edge.direction)) {
        if (members[edge.to_node].count(partner) > 0) {
          m.AddLink(MoleculeLink{edge_idx, parent, partner});
        }
      }
    }
  }
  return m;
}

}  // namespace

Result<std::vector<Molecule>> DeriveMolecules(const Database& db,
                                              const MoleculeDescription& md) {
  MAD_ASSIGN_OR_RETURN(const AtomType* root_at,
                       db.GetAtomType(md.root_node().type_name));
  MAD_ASSIGN_OR_RETURN(Plan plan, MakePlan(db, md));

  std::vector<Molecule> molecules;
  molecules.reserve(root_at->occurrence().size());
  for (const Atom& root : root_at->occurrence().atoms()) {
    molecules.push_back(DeriveOne(md, plan, root.id));
  }
  return molecules;
}

Result<Molecule> DeriveMoleculeFor(const Database& db,
                                   const MoleculeDescription& md,
                                   AtomId root) {
  MAD_ASSIGN_OR_RETURN(const AtomType* root_at,
                       db.GetAtomType(md.root_node().type_name));
  if (!root_at->occurrence().Contains(root)) {
    return Status::NotFound("atom #" + std::to_string(root.value) +
                            " is not in root atom type '" +
                            md.root_node().type_name + "'");
  }
  MAD_ASSIGN_OR_RETURN(Plan plan, MakePlan(db, md));
  return DeriveOne(md, plan, root);
}

Result<std::vector<Molecule>> DeriveMoleculesForRoots(
    const Database& db, const MoleculeDescription& md,
    const std::vector<AtomId>& roots) {
  MAD_ASSIGN_OR_RETURN(const AtomType* root_at,
                       db.GetAtomType(md.root_node().type_name));
  MAD_ASSIGN_OR_RETURN(Plan plan, MakePlan(db, md));
  std::vector<Molecule> molecules;
  molecules.reserve(roots.size());
  for (AtomId root : roots) {
    if (!root_at->occurrence().Contains(root)) {
      return Status::NotFound("atom #" + std::to_string(root.value) +
                              " is not in root atom type '" +
                              md.root_node().type_name + "'");
    }
    molecules.push_back(DeriveOne(md, plan, root));
  }
  return molecules;
}

Result<MoleculeType> DefineMoleculeType(const Database& db, std::string name,
                                        MoleculeDescription md) {
  if (name.empty()) {
    return Status::InvalidArgument("molecule type name must be non-empty");
  }
  MAD_ASSIGN_OR_RETURN(std::vector<Molecule> molecules,
                       DeriveMolecules(db, md));
  return MoleculeType(std::move(name), std::move(md), std::move(molecules));
}

Status ValidateMolecule(const Database& db, const MoleculeDescription& md,
                        const Molecule& molecule) {
  if (molecule.node_count() != md.nodes().size()) {
    return Status::InvalidArgument(
        "molecule has a different node count than its description");
  }
  MAD_ASSIGN_OR_RETURN(size_t root_idx, md.NodeIndex(md.root_label()));

  // The root group holds exactly the root atom.
  const std::vector<AtomId>& root_group = molecule.AtomsOf(root_idx);
  if (root_group.size() != 1 || root_group[0] != molecule.root()) {
    return Status::ConstraintViolation(
        "molecule root group must hold exactly the root atom");
  }

  // Every atom exists under its node's atom type.
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    MAD_ASSIGN_OR_RETURN(const AtomType* at,
                         db.GetAtomType(md.nodes()[i].type_name));
    for (AtomId id : molecule.AtomsOf(i)) {
      if (!at->occurrence().Contains(id)) {
        return Status::ConstraintViolation(
            "molecule atom #" + std::to_string(id.value) +
            " is not in atom type '" + md.nodes()[i].type_name + "'");
      }
    }
  }

  // Every link is realised in the database with the right orientation and
  // connects contained atoms; build the instance graph along the way.
  Digraph instance;
  auto node_key = [](size_t node_idx, AtomId id) {
    return std::to_string(node_idx) + ":" + std::to_string(id.value);
  };
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    for (AtomId id : molecule.AtomsOf(i)) instance.AddNode(node_key(i, id));
  }
  for (const MoleculeLink& link : molecule.links()) {
    if (link.edge_index >= md.links().size()) {
      return Status::ConstraintViolation("molecule link has bad edge index");
    }
    const DirectedLink& dl = md.links()[link.edge_index];
    MAD_ASSIGN_OR_RETURN(size_t from_idx, md.NodeIndex(dl.from));
    MAD_ASSIGN_OR_RETURN(size_t to_idx, md.NodeIndex(dl.to));
    if (!molecule.ContainsAtom(from_idx, link.parent) ||
        !molecule.ContainsAtom(to_idx, link.child)) {
      return Status::ConstraintViolation(
          "molecule link endpoints are not molecule atoms");
    }
    MAD_ASSIGN_OR_RETURN(const LinkType* lt, db.GetLinkType(dl.link_type));
    bool present = dl.reverse
                       ? lt->occurrence().Contains(link.child, link.parent)
                       : lt->occurrence().Contains(link.parent, link.child);
    if (!present) {
      return Status::ConstraintViolation(
          "molecule link is not present in link type '" + dl.link_type + "'");
    }
    MAD_RETURN_IF_ERROR(instance.AddEdge(dl.link_type,
                                         node_key(from_idx, link.parent),
                                         node_key(to_idx, link.child)));
  }

  // mv_graph: the instance graph is a coherent DAG rooted at the root atom.
  MAD_ASSIGN_OR_RETURN(std::string instance_root, instance.CheckRootedDag());
  if (instance_root != node_key(root_idx, molecule.root())) {
    return Status::ConstraintViolation(
        "molecule instance graph is not rooted at the root atom");
  }
  return Status::OK();
}

}  // namespace mad
