#include "molecule/qualification.h"

#include <algorithm>

#include "expr/eval.h"

namespace mad {

namespace {

using expr::Expr;
using expr::ExprPtr;

bool ContainsForAll(const Expr& expr);

/// Rewrites every attribute reference to label-qualified form, validating
/// existence and attribute narrowing along the way.
Result<ExprPtr> ResolveRefs(const Database& db, const MoleculeDescription& md,
                            const ExprPtr& node) {
  switch (node->kind()) {
    case Expr::Kind::kLiteral:
      return node;
    case Expr::Kind::kAttrRef: {
      size_t node_idx;
      if (!node->qualifier().empty()) {
        MAD_ASSIGN_OR_RETURN(node_idx, md.ResolveQualifier(node->qualifier()));
        const MoleculeNode& mn = md.nodes()[node_idx];
        MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(mn.type_name));
        if (!at->description().HasAttribute(node->attribute())) {
          return Status::NotFound("node '" + mn.label +
                                  "' has no attribute '" + node->attribute() +
                                  "'");
        }
      } else {
        // Unqualified: the attribute must be visible in exactly one node.
        const size_t kNone = static_cast<size_t>(-1);
        size_t hit = kNone;
        for (size_t i = 0; i < md.nodes().size(); ++i) {
          MAD_ASSIGN_OR_RETURN(const AtomType* at,
                               db.GetAtomType(md.nodes()[i].type_name));
          if (!at->description().HasAttribute(node->attribute())) continue;
          if (md.nodes()[i].attributes.has_value()) {
            const auto& visible = *md.nodes()[i].attributes;
            if (std::find(visible.begin(), visible.end(), node->attribute()) ==
                visible.end()) {
              continue;
            }
          }
          if (hit != kNone) {
            return Status::InvalidArgument(
                "ambiguous attribute '" + node->attribute() +
                "' (qualify it with a node label)");
          }
          hit = i;
        }
        if (hit == kNone) {
          return Status::NotFound("attribute '" + node->attribute() +
                                  "' occurs in no node of the description");
        }
        node_idx = hit;
      }
      const MoleculeNode& mn = md.nodes()[node_idx];
      // Projection narrowing hides attributes even under a qualifier.
      if (mn.attributes.has_value()) {
        const auto& visible = *mn.attributes;
        if (std::find(visible.begin(), visible.end(), node->attribute()) ==
            visible.end()) {
          return Status::NotFound("attribute '" + node->attribute() +
                                  "' was projected away from node '" +
                                  mn.label + "'");
        }
      }
      return Expr::MakeAttrRef(mn.label, node->attribute());
    }
    case Expr::Kind::kCompare: {
      MAD_ASSIGN_OR_RETURN(ExprPtr lhs, ResolveRefs(db, md, node->left()));
      MAD_ASSIGN_OR_RETURN(ExprPtr rhs, ResolveRefs(db, md, node->right()));
      return Expr::MakeCompare(node->compare_op(), std::move(lhs),
                               std::move(rhs));
    }
    case Expr::Kind::kArith: {
      MAD_ASSIGN_OR_RETURN(ExprPtr lhs, ResolveRefs(db, md, node->left()));
      MAD_ASSIGN_OR_RETURN(ExprPtr rhs, ResolveRefs(db, md, node->right()));
      return Expr::MakeArith(node->arith_op(), std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kAnd: {
      MAD_ASSIGN_OR_RETURN(ExprPtr lhs, ResolveRefs(db, md, node->left()));
      MAD_ASSIGN_OR_RETURN(ExprPtr rhs, ResolveRefs(db, md, node->right()));
      return Expr::MakeAnd(std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kOr: {
      MAD_ASSIGN_OR_RETURN(ExprPtr lhs, ResolveRefs(db, md, node->left()));
      MAD_ASSIGN_OR_RETURN(ExprPtr rhs, ResolveRefs(db, md, node->right()));
      return Expr::MakeOr(std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kNot: {
      MAD_ASSIGN_OR_RETURN(ExprPtr operand, ResolveRefs(db, md, node->left()));
      return Expr::MakeNot(std::move(operand));
    }
    case Expr::Kind::kCount: {
      MAD_ASSIGN_OR_RETURN(size_t node_idx,
                           md.ResolveQualifier(node->qualifier()));
      return Expr::MakeCount(md.nodes()[node_idx].label);
    }
    case Expr::Kind::kForAll: {
      MAD_ASSIGN_OR_RETURN(size_t node_idx,
                           md.ResolveQualifier(node->qualifier()));
      const std::string& label = md.nodes()[node_idx].label;
      if (ContainsForAll(*node->left())) {
        return Status::Unsupported("nested FORALL is not supported");
      }
      MAD_ASSIGN_OR_RETURN(ExprPtr inner, ResolveRefs(db, md, node->left()));
      // The quantified predicate may reference only the quantified node
      // (plus molecule-level COUNTs); mixing quantifiers stays out of
      // scope.
      std::vector<const Expr*> refs;
      inner->CollectAttrRefs(&refs);
      for (const Expr* ref : refs) {
        if (ref->qualifier() != label) {
          return Status::InvalidArgument(
              "FORALL " + label + ": predicate may only reference '" + label +
              "', found '" + ref->qualifier() + "." + ref->attribute() + "'");
        }
      }
      return Expr::MakeForAll(label, std::move(inner));
    }
  }
  return Status::Internal("unknown expression kind");
}

bool ContainsCount(const Expr& expr) {
  if (expr.kind() == Expr::Kind::kCount) return true;
  if (expr.left() != nullptr && ContainsCount(*expr.left())) return true;
  return expr.right() != nullptr && ContainsCount(*expr.right());
}

bool ContainsForAll(const Expr& expr) {
  if (expr.kind() == Expr::Kind::kForAll) return true;
  if (expr.left() != nullptr && ContainsForAll(*expr.left())) return true;
  return expr.right() != nullptr && ContainsForAll(*expr.right());
}

}  // namespace

void CollectQualifierLabels(const Expr& expr, std::vector<std::string>* out) {
  std::vector<const Expr*> refs;
  expr.CollectAttrRefs(&refs);
  for (const Expr* ref : refs) {
    if (std::find(out->begin(), out->end(), ref->qualifier()) == out->end()) {
      out->push_back(ref->qualifier());
    }
  }
}

Result<expr::ExprPtr> ResolveQualification(const Database& db,
                                           const MoleculeDescription& md,
                                           const expr::ExprPtr& predicate) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("qualification predicate must be non-null");
  }
  if (!predicate->IsPredicate()) {
    return Status::InvalidArgument("expression " + predicate->ToString() +
                                   " is not a predicate");
  }
  return ResolveRefs(db, md, predicate);
}

Result<MoleculeQualifier> MoleculeQualifier::Create(
    const Database& db, const MoleculeDescription& md,
    expr::ExprPtr predicate) {
  MoleculeQualifier q;
  q.db_ = &db;
  q.md_ = &md;
  MAD_ASSIGN_OR_RETURN(q.resolved_, ResolveQualification(db, md, predicate));
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    MAD_ASSIGN_OR_RETURN(const AtomType* at,
                         db.GetAtomType(md.nodes()[i].type_name));
    q.label_info_[md.nodes()[i].label] = {i, &at->description()};
  }
  return q;
}

Result<bool> MoleculeQualifier::Matches(const Molecule& molecule) const {
  return EvalBoolean(*resolved_, molecule);
}

Result<bool> MoleculeQualifier::EvalResolved(const expr::Expr& expr,
                                             const Molecule& molecule) const {
  return EvalBoolean(expr, molecule);
}

Result<const std::pair<size_t, const Schema*>*> MoleculeQualifier::FindLabel(
    const std::string& label) const {
  auto it = label_info_.find(label);
  if (it == label_info_.end()) {
    return Status::InvalidArgument("unresolved qualifier '" + label +
                                   "' in qualification formula (not a node "
                                   "label of the description)");
  }
  return &it->second;
}

Result<bool> MoleculeQualifier::EvalBoolean(const expr::Expr& expr,
                                            const Molecule& molecule) const {
  switch (expr.kind()) {
    case Expr::Kind::kAnd: {
      MAD_ASSIGN_OR_RETURN(bool lhs, EvalBoolean(*expr.left(), molecule));
      if (!lhs) return false;
      return EvalBoolean(*expr.right(), molecule);
    }
    case Expr::Kind::kOr: {
      MAD_ASSIGN_OR_RETURN(bool lhs, EvalBoolean(*expr.left(), molecule));
      if (lhs) return true;
      return EvalBoolean(*expr.right(), molecule);
    }
    case Expr::Kind::kNot: {
      MAD_ASSIGN_OR_RETURN(bool operand, EvalBoolean(*expr.left(), molecule));
      return !operand;
    }
    case Expr::Kind::kForAll:
      return EvalForAll(expr, molecule);
    default:
      return EvalExistential(expr, molecule);
  }
}

Result<expr::ExprPtr> MoleculeQualifier::SubstituteCounts(
    const expr::Expr& node, const Molecule& molecule) const {
  switch (node.kind()) {
    case Expr::Kind::kCount: {
      MAD_ASSIGN_OR_RETURN(const auto* info, FindLabel(node.qualifier()));
      return expr::Lit(
          static_cast<int64_t>(molecule.AtomsOf(info->first).size()));
    }
    case Expr::Kind::kLiteral:
      return Expr::MakeLiteral(node.literal());
    case Expr::Kind::kAttrRef:
      return Expr::MakeAttrRef(node.qualifier(), node.attribute());
    case Expr::Kind::kCompare: {
      MAD_ASSIGN_OR_RETURN(ExprPtr lhs,
                           SubstituteCounts(*node.left(), molecule));
      MAD_ASSIGN_OR_RETURN(ExprPtr rhs,
                           SubstituteCounts(*node.right(), molecule));
      return Expr::MakeCompare(node.compare_op(), std::move(lhs),
                               std::move(rhs));
    }
    case Expr::Kind::kArith: {
      MAD_ASSIGN_OR_RETURN(ExprPtr lhs,
                           SubstituteCounts(*node.left(), molecule));
      MAD_ASSIGN_OR_RETURN(ExprPtr rhs,
                           SubstituteCounts(*node.right(), molecule));
      return Expr::MakeArith(node.arith_op(), std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kAnd: {
      MAD_ASSIGN_OR_RETURN(ExprPtr lhs,
                           SubstituteCounts(*node.left(), molecule));
      MAD_ASSIGN_OR_RETURN(ExprPtr rhs,
                           SubstituteCounts(*node.right(), molecule));
      return Expr::MakeAnd(std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kOr: {
      MAD_ASSIGN_OR_RETURN(ExprPtr lhs,
                           SubstituteCounts(*node.left(), molecule));
      MAD_ASSIGN_OR_RETURN(ExprPtr rhs,
                           SubstituteCounts(*node.right(), molecule));
      return Expr::MakeOr(std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kNot: {
      MAD_ASSIGN_OR_RETURN(ExprPtr operand,
                           SubstituteCounts(*node.left(), molecule));
      return Expr::MakeNot(std::move(operand));
    }
    case Expr::Kind::kForAll: {
      MAD_ASSIGN_OR_RETURN(ExprPtr inner,
                           SubstituteCounts(*node.left(), molecule));
      return Expr::MakeForAll(node.qualifier(), std::move(inner));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> MoleculeQualifier::EvalForAll(const expr::Expr& expr,
                                           const Molecule& molecule) const {
  MAD_ASSIGN_OR_RETURN(const auto* info, FindLabel(expr.qualifier()));
  const auto& [node_idx, schema] = *info;
  MAD_ASSIGN_OR_RETURN(expr::ExprPtr inner,
                       SubstituteCounts(*expr.left(), molecule));
  const std::string& type_name = md_->nodes()[node_idx].type_name;
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db_->GetAtomType(type_name));
  expr::BindingSet bindings;
  for (AtomId id : molecule.AtomsOf(node_idx)) {
    const Atom* atom = at->occurrence().Find(id);
    if (atom == nullptr) {
      return Status::Internal("molecule atom missing from store");
    }
    bindings.Bind(expr.qualifier(), schema, atom);
    MAD_ASSIGN_OR_RETURN(bool hit, expr::EvalPredicate(*inner, bindings));
    if (!hit) return false;
  }
  return true;  // vacuously true on an empty group
}

Result<bool> MoleculeQualifier::EvalExistential(const expr::Expr& expr,
                                                const Molecule& molecule) const {
  // COUNT(label) nodes are molecule-level constants: substitute them first.
  if (ContainsCount(expr)) {
    MAD_ASSIGN_OR_RETURN(expr::ExprPtr substituted,
                         SubstituteCounts(expr, molecule));
    return EvalExistential(*substituted, molecule);
  }

  std::vector<std::string> labels;
  CollectQualifierLabels(expr, &labels);

  if (labels.empty()) {
    expr::BindingSet empty;
    return expr::EvalPredicate(expr, empty);
  }

  // Existential nested loops over the molecule's atoms of each referenced
  // node; a failing binding combination is just "no witness", but a type
  // error in the comparison itself propagates.
  expr::BindingSet bindings;
  // Recursive lambda over the label list.
  auto search = [&](auto&& self, size_t depth) -> Result<bool> {
    if (depth == labels.size()) return expr::EvalPredicate(expr, bindings);
    MAD_ASSIGN_OR_RETURN(const auto* info, FindLabel(labels[depth]));
    const auto& [node_idx, schema] = *info;
    const std::string& type_name = md_->nodes()[node_idx].type_name;
    MAD_ASSIGN_OR_RETURN(const AtomType* at, db_->GetAtomType(type_name));
    for (AtomId id : molecule.AtomsOf(node_idx)) {
      const Atom* atom = at->occurrence().Find(id);
      if (atom == nullptr) {
        return Status::Internal("molecule atom missing from store");
      }
      bindings.Bind(labels[depth], schema, atom);
      MAD_ASSIGN_OR_RETURN(bool hit, self(self, depth + 1));
      if (hit) return true;
    }
    return false;
  };
  return search(search, 0);
}

}  // namespace mad
