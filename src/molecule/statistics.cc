#include "molecule/statistics.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace mad {

MoleculeTypeStats ComputeMoleculeTypeStats(const MoleculeType& mt) {
  MoleculeTypeStats stats;
  stats.molecule_count = mt.size();
  const std::vector<MoleculeNode>& nodes = mt.description().nodes();
  stats.nodes.resize(nodes.size());

  std::vector<std::unordered_set<AtomId>> distinct_per_node(nodes.size());
  std::unordered_set<AtomId> distinct_overall;

  bool first = true;
  size_t total_atoms = 0;
  size_t total_links = 0;
  for (const Molecule& m : mt.molecules()) {
    size_t atoms = m.atom_count();
    size_t links = m.links().size();
    total_atoms += atoms;
    total_links += links;
    if (first) {
      stats.min_atoms = stats.max_atoms = atoms;
      stats.min_links = stats.max_links = links;
    } else {
      stats.min_atoms = std::min(stats.min_atoms, atoms);
      stats.max_atoms = std::max(stats.max_atoms, atoms);
      stats.min_links = std::min(stats.min_links, links);
      stats.max_links = std::max(stats.max_links, links);
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
      const std::vector<AtomId>& group = m.AtomsOf(i);
      NodeStats& ns = stats.nodes[i];
      size_t count = group.size();
      if (first) {
        ns.min_atoms = ns.max_atoms = count;
      } else {
        ns.min_atoms = std::min(ns.min_atoms, count);
        ns.max_atoms = std::max(ns.max_atoms, count);
      }
      ns.total_slots += count;
      for (AtomId id : group) {
        distinct_per_node[i].insert(id);
        distinct_overall.insert(id);
      }
    }
    first = false;
  }

  for (size_t i = 0; i < nodes.size(); ++i) {
    stats.nodes[i].label = nodes[i].label;
    stats.nodes[i].distinct_atoms = distinct_per_node[i].size();
    stats.nodes[i].avg_atoms =
        stats.molecule_count == 0
            ? 0.0
            : static_cast<double>(stats.nodes[i].total_slots) /
                  static_cast<double>(stats.molecule_count);
  }
  stats.total_atom_slots = total_atoms;
  stats.distinct_atoms = distinct_overall.size();
  if (stats.molecule_count > 0) {
    stats.avg_atoms = static_cast<double>(total_atoms) /
                      static_cast<double>(stats.molecule_count);
    stats.avg_links = static_cast<double>(total_links) /
                      static_cast<double>(stats.molecule_count);
  }
  return stats;
}

std::string FormatMoleculeTypeStats(const MoleculeTypeStats& stats) {
  std::ostringstream out;
  out << "molecules: " << stats.molecule_count << "\n";
  out << "atoms/molecule: min " << stats.min_atoms << ", avg "
      << stats.avg_atoms << ", max " << stats.max_atoms << "\n";
  out << "links/molecule: min " << stats.min_links << ", avg "
      << stats.avg_links << ", max " << stats.max_links << "\n";
  out << "distinct atoms: " << stats.distinct_atoms << " over "
      << stats.total_atom_slots
      << " slots (sharing factor " << stats.sharing_factor() << ")\n";
  for (const NodeStats& ns : stats.nodes) {
    out << "  " << ns.label << ": min " << ns.min_atoms << ", avg "
        << ns.avg_atoms << ", max " << ns.max_atoms << ", distinct "
        << ns.distinct_atoms << "\n";
  }
  return out.str();
}

}  // namespace mad
