#ifndef MAD_MOLECULE_OPERATIONS_H_
#define MAD_MOLECULE_OPERATIONS_H_

#include <map>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "molecule/molecule_type.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// Molecule-type restriction Σ[restr(md)](mt) (Def. 10): keeps the
/// molecules satisfying the qualification formula. The description is
/// unchanged (rsd = md). The formula is compiled once into a flat predicate
/// program and evaluated per molecule; with `parallelism` > 1 (0 = hardware
/// concurrency) verdicts are computed across the shared worker pool. Output
/// order and error selection (the first failing molecule in input order)
/// are independent of the thread count.
Result<MoleculeType> RestrictMolecules(const Database& db,
                                       const MoleculeType& mt,
                                       const expr::ExprPtr& predicate,
                                       std::string result_name,
                                       unsigned parallelism = 1);

/// Specification of a molecule-type projection Π: which node labels to
/// keep (must include the root and stay coherent) and, optionally, which
/// attributes stay visible per kept label.
struct MoleculeProjectionSpec {
  std::vector<std::string> keep_labels;
  std::map<std::string, std::vector<std::string>> attributes;
};

/// Molecule-type projection Π: restricts the description to a
/// root-preserving coherent sub-DAG and optionally narrows the visible
/// attributes per node. Atoms keep their identity.
Result<MoleculeType> ProjectMolecules(const Database& db,
                                      const MoleculeType& mt,
                                      const MoleculeProjectionSpec& spec,
                                      std::string result_name);

/// Molecule-type union Ω: requires structurally identical descriptions;
/// set semantics on molecules (identical atom+link sets deduplicate).
Result<MoleculeType> UnionMolecules(const MoleculeType& left,
                                    const MoleculeType& right,
                                    std::string result_name);

/// Molecule-type difference Δ: molecules of `left` not present in `right`.
Result<MoleculeType> DifferenceMolecules(const MoleculeType& left,
                                         const MoleculeType& right,
                                         std::string result_name);

/// Derived intersection Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)) — implemented
/// literally with the paper's recipe (Theorem 3 commentary).
Result<MoleculeType> IntersectMolecules(const MoleculeType& left,
                                        const MoleculeType& right,
                                        std::string result_name);

/// Molecule-type cartesian product X: couples every pair of operand
/// molecules under a synthetic pair-root atom. Because md_graph demands a
/// single root, the operation enlarges the database with a fresh pair atom
/// type (empty schema) and two link types connecting it to the operand
/// roots; right-hand node labels are suffixed with "#2" on collision.
Result<MoleculeType> CartesianProductMolecules(Database& db,
                                               const MoleculeType& left,
                                               const MoleculeType& right,
                                               std::string result_name);

}  // namespace mad

#endif  // MAD_MOLECULE_OPERATIONS_H_
