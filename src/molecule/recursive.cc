#include "molecule/recursive.h"

#include "molecule/derivation.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace mad {

Status ValidateRecursiveDescription(const Database& db,
                                    const RecursiveDescription& rd) {
  MAD_RETURN_IF_ERROR(db.GetAtomType(rd.atom_type).status());
  MAD_ASSIGN_OR_RETURN(const LinkType* lt, db.GetLinkType(rd.link_type));
  if (!lt->reflexive() || lt->first_atom_type() != rd.atom_type) {
    return Status::InvalidArgument(
        "recursive derivation needs a reflexive link type on '" +
        rd.atom_type + "'; '" + rd.link_type + "' connects <" +
        lt->first_atom_type() + ", " + lt->second_atom_type() + ">");
  }
  return Status::OK();
}

Result<RecursiveMolecule> DeriveRecursiveMoleculeFor(
    const Database& db, const RecursiveDescription& rd, AtomId root) {
  MAD_RETURN_IF_ERROR(ValidateRecursiveDescription(db, rd));
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(rd.atom_type));
  if (!at->occurrence().Contains(root)) {
    return Status::NotFound("atom #" + std::to_string(root.value) +
                            " is not in atom type '" + rd.atom_type + "'");
  }
  MAD_ASSIGN_OR_RETURN(const LinkType* lt, db.GetLinkType(rd.link_type));
  const LinkStore& store = lt->occurrence();

  RecursiveMolecule molecule(root);
  std::vector<AtomId> frontier = {root};
  int depth = 0;
  size_t links_traversed = 0;
  while (!frontier.empty() &&
         (rd.max_depth < 0 || depth < rd.max_depth)) {
    ScopedSpan round_span("closure-round", "depth " + std::to_string(depth));
    round_span.set_rows_in(static_cast<int64_t>(frontier.size()));
    std::vector<AtomId> next;
    for (AtomId atom : frontier) {
      for (AtomId partner : store.Partners(atom, rd.direction)) {
        // Record every traversed link; expand each atom once (cycle/DAG
        // sharing safety).
        ++links_traversed;
        molecule.AddLink(rd.direction == LinkDirection::kForward
                             ? Link{atom, partner}
                             : Link{partner, atom});
        if (molecule.AddMember(partner)) next.push_back(partner);
      }
    }
    round_span.set_rows_out(static_cast<int64_t>(next.size()));
    if (next.empty()) break;
    molecule.AddLevel(next);
    frontier = std::move(next);
    ++depth;
  }
  static Counter& links_counter =
      Registry::Global().GetCounter("closure.links_traversed");
  static Counter& rounds_counter =
      Registry::Global().GetCounter("closure.rounds");
  links_counter.Add(links_traversed);
  rounds_counter.Add(static_cast<uint64_t>(depth) + 1);
  return molecule;
}

Result<std::vector<RecursiveMolecule>> DeriveRecursiveMolecules(
    const Database& db, const RecursiveDescription& rd) {
  MAD_RETURN_IF_ERROR(ValidateRecursiveDescription(db, rd));
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(rd.atom_type));
  ScopedSpan span("closure", rd.atom_type + " via " + rd.link_type);
  span.set_rows_in(static_cast<int64_t>(at->occurrence().size()));
  span.set_rows_out(static_cast<int64_t>(at->occurrence().size()));
  std::vector<RecursiveMolecule> molecules;
  molecules.reserve(at->occurrence().size());
  for (const Atom& atom : at->occurrence().atoms()) {
    MAD_ASSIGN_OR_RETURN(RecursiveMolecule m,
                         DeriveRecursiveMoleculeFor(db, rd, atom.id));
    molecules.push_back(std::move(m));
  }
  return molecules;
}

namespace {

Status CheckExpansionRoot(const RecursiveDescription& rd,
                          const MoleculeDescription& expansion) {
  if (expansion.root_node().type_name != rd.atom_type) {
    return Status::InvalidArgument(
        "expansion structure must be rooted at '" + rd.atom_type +
        "', found '" + expansion.root_node().type_name + "'");
  }
  return Status::OK();
}

}  // namespace

Result<ExpandedRecursiveMolecule> DeriveExpandedRecursiveMoleculeFor(
    const Database& db, const RecursiveDescription& rd,
    const MoleculeDescription& expansion, AtomId root) {
  MAD_RETURN_IF_ERROR(CheckExpansionRoot(rd, expansion));
  ExpandedRecursiveMolecule out{RecursiveMolecule(root), {}};
  MAD_ASSIGN_OR_RETURN(out.closure,
                       DeriveRecursiveMoleculeFor(db, rd, root));
  std::vector<AtomId> members;
  for (const auto& level : out.closure.levels()) {
    members.insert(members.end(), level.begin(), level.end());
  }
  MAD_ASSIGN_OR_RETURN(out.components,
                       DeriveMoleculesForRoots(db, expansion, members));
  return out;
}

Result<std::vector<ExpandedRecursiveMolecule>>
DeriveExpandedRecursiveMolecules(const Database& db,
                                 const RecursiveDescription& rd,
                                 const MoleculeDescription& expansion) {
  MAD_RETURN_IF_ERROR(ValidateRecursiveDescription(db, rd));
  MAD_RETURN_IF_ERROR(CheckExpansionRoot(rd, expansion));
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(rd.atom_type));
  std::vector<ExpandedRecursiveMolecule> out;
  out.reserve(at->occurrence().size());
  for (const Atom& atom : at->occurrence().atoms()) {
    MAD_ASSIGN_OR_RETURN(
        ExpandedRecursiveMolecule m,
        DeriveExpandedRecursiveMoleculeFor(db, rd, expansion, atom.id));
    out.push_back(std::move(m));
  }
  return out;
}

Result<size_t> PropagateClosureLinks(Database& db,
                                     const RecursiveDescription& rd,
                                     const std::string& closure_name) {
  MAD_RETURN_IF_ERROR(ValidateRecursiveDescription(db, rd));
  MAD_ASSIGN_OR_RETURN(std::vector<RecursiveMolecule> molecules,
                       DeriveRecursiveMolecules(db, rd));
  MAD_RETURN_IF_ERROR(
      db.DefineLinkType(closure_name, rd.atom_type, rd.atom_type));
  size_t inserted = 0;
  for (const RecursiveMolecule& m : molecules) {
    for (size_t level = 1; level < m.levels().size(); ++level) {
      for (AtomId member : m.levels()[level]) {
        Status s = db.InsertLink(closure_name, m.root(), member);
        if (s.ok()) {
          ++inserted;
        } else if (s.code() != StatusCode::kAlreadyExists) {
          return s;
        }
      }
    }
  }
  return inserted;
}

}  // namespace mad
