#ifndef MAD_MOLECULE_MOLECULE_H_
#define MAD_MOLECULE_MOLECULE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/atom.h"

namespace mad {

/// One instantiated directed link inside a molecule: the link (parent,
/// child) realised through the description edge `edge_index` (an index into
/// MoleculeDescription::links()).
struct MoleculeLink {
  size_t edge_index;
  AtomId parent;
  AtomId child;

  auto operator<=>(const MoleculeLink&) const = default;
};

/// A molecule (Def. 6): the maximal coherent set of atoms and links
/// matching a molecule-type description, grown from one root atom.
/// Atom groups are parallel to the description's node list; links carry
/// their description edge index.
///
/// Molecules are plain values; two molecules of the same description
/// compare equal iff they contain the same atoms per node and the same
/// links (set semantics — CanonicalKey() gives a hashable form).
class Molecule {
 public:
  Molecule(AtomId root, size_t node_count)
      : root_(root), atoms_per_node_(node_count) {}

  AtomId root() const { return root_; }

  /// Atoms of node `node_index`, in derivation order.
  const std::vector<AtomId>& AtomsOf(size_t node_index) const {
    return atoms_per_node_[node_index];
  }
  std::vector<AtomId>& MutableAtomsOf(size_t node_index) {
    return atoms_per_node_[node_index];
  }

  size_t node_count() const { return atoms_per_node_.size(); }
  bool ContainsAtom(size_t node_index, AtomId id) const;

  /// Total number of atoms over all nodes. Shared atoms that occur under
  /// two different nodes count twice (they are distinct (type, atom)
  /// slots); within one node each atom counts once.
  size_t atom_count() const;

  const std::vector<MoleculeLink>& links() const { return links_; }
  void AddLink(MoleculeLink link) { links_.push_back(link); }

  /// Order-insensitive fingerprint used for set semantics in Ω, Δ, Ψ and
  /// for dedup. Stable across molecules built in different atom orders.
  std::string CanonicalKey() const;

  bool operator==(const Molecule& other) const {
    return CanonicalKey() == other.CanonicalKey();
  }

 private:
  AtomId root_;
  std::vector<std::vector<AtomId>> atoms_per_node_;
  std::vector<MoleculeLink> links_;
};

}  // namespace mad

#endif  // MAD_MOLECULE_MOLECULE_H_
