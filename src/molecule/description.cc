#include "molecule/description.h"

#include <algorithm>

namespace mad {

namespace {
const std::vector<size_t> kNoLinks;
}  // namespace

Result<MoleculeDescription> MoleculeDescription::Create(
    const Database& db, std::vector<MoleculeNode> nodes,
    std::vector<DirectedLink> links) {
  MoleculeDescription md;
  md.nodes_ = std::move(nodes);
  md.links_ = std::move(links);

  // Nodes: unique labels over existing atom types with valid narrowing.
  Digraph graph;
  for (size_t i = 0; i < md.nodes_.size(); ++i) {
    MoleculeNode& node = md.nodes_[i];
    if (node.label.empty()) node.label = node.type_name;
    if (!graph.AddNode(node.label)) {
      return Status::InvalidArgument("duplicate node label '" + node.label +
                                     "' in molecule description");
    }
    md.node_index_[node.label] = i;
    MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(node.type_name));
    if (node.attributes.has_value()) {
      for (const std::string& attr : *node.attributes) {
        if (!at->description().HasAttribute(attr)) {
          return Status::NotFound("atom type '" + node.type_name +
                                  "' has no attribute '" + attr + "'");
        }
      }
    }
  }

  // Directed links: existing link types with consistent role orientation.
  for (size_t i = 0; i < md.links_.size(); ++i) {
    DirectedLink& dl = md.links_[i];
    auto from_it = md.node_index_.find(dl.from);
    auto to_it = md.node_index_.find(dl.to);
    if (from_it == md.node_index_.end() || to_it == md.node_index_.end()) {
      return Status::NotFound("directed link '" + dl.link_type +
                              "' references unknown node label");
    }
    MAD_ASSIGN_OR_RETURN(const LinkType* lt, db.GetLinkType(dl.link_type));
    const std::string& from_type = md.nodes_[from_it->second].type_name;
    const std::string& to_type = md.nodes_[to_it->second].type_name;

    bool forward_fits = lt->first_atom_type() == from_type &&
                        lt->second_atom_type() == to_type;
    bool backward_fits = lt->second_atom_type() == from_type &&
                         lt->first_atom_type() == to_type;
    if (lt->reflexive()) {
      if (!forward_fits) {
        return Status::InvalidArgument(
            "reflexive link type '" + dl.link_type +
            "' does not connect node types '" + from_type + "' and '" +
            to_type + "'");
      }
      // Keep the caller's `reverse` choice: it selects super- vs
      // sub-component view.
    } else if (forward_fits) {
      dl.reverse = false;
    } else if (backward_fits) {
      dl.reverse = true;
    } else {
      return Status::InvalidArgument(
          "link type '" + dl.link_type + "' connects <" +
          lt->first_atom_type() + ", " + lt->second_atom_type() +
          ">, not <" + from_type + ", " + to_type + ">");
    }

    MAD_RETURN_IF_ERROR(graph.AddEdge(dl.link_type, dl.from, dl.to));
    md.out_links_[dl.from].push_back(i);
    md.in_links_[dl.to].push_back(i);
  }

  // md_graph (Def. 5): directed, acyclic, coherent, exactly one root.
  MAD_ASSIGN_OR_RETURN(md.root_label_, graph.CheckRootedDag());
  MAD_ASSIGN_OR_RETURN(md.topo_order_, graph.TopologicalOrder());
  return md;
}

Result<MoleculeDescription> MoleculeDescription::CreateFromTypes(
    const Database& db, std::vector<std::string> atom_types,
    std::vector<DirectedLink> links) {
  std::vector<MoleculeNode> nodes;
  nodes.reserve(atom_types.size());
  for (std::string& type : atom_types) {
    nodes.push_back(MoleculeNode{std::move(type), "", std::nullopt});
  }
  return Create(db, std::move(nodes), std::move(links));
}

Result<size_t> MoleculeDescription::NodeIndex(const std::string& label) const {
  auto it = node_index_.find(label);
  if (it == node_index_.end()) {
    return Status::NotFound("no node labelled '" + label +
                            "' in molecule description");
  }
  return it->second;
}

Result<size_t> MoleculeDescription::ResolveQualifier(
    const std::string& qualifier) const {
  auto it = node_index_.find(qualifier);
  if (it != node_index_.end()) return it->second;
  // Fall back to a unique atom-type-name match.
  const size_t kNone = static_cast<size_t>(-1);
  size_t hit = kNone;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type_name != qualifier) continue;
    if (hit != kNone) {
      return Status::InvalidArgument("qualifier '" + qualifier +
                                     "' matches several nodes; use a label");
    }
    hit = i;
  }
  if (hit == kNone) {
    return Status::NotFound("qualifier '" + qualifier +
                            "' matches no node of the molecule description");
  }
  return hit;
}

const std::vector<size_t>& MoleculeDescription::InLinksOf(
    const std::string& label) const {
  auto it = in_links_.find(label);
  return it == in_links_.end() ? kNoLinks : it->second;
}

const std::vector<size_t>& MoleculeDescription::OutLinksOf(
    const std::string& label) const {
  auto it = out_links_.find(label);
  return it == out_links_.end() ? kNoLinks : it->second;
}

bool MoleculeDescription::operator==(const MoleculeDescription& other) const {
  if (nodes_.size() != other.nodes_.size() ||
      links_.size() != other.links_.size()) {
    return false;
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type_name != other.nodes_[i].type_name ||
        nodes_[i].label != other.nodes_[i].label ||
        nodes_[i].attributes != other.nodes_[i].attributes) {
      return false;
    }
  }
  for (size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].link_type != other.links_[i].link_type ||
        links_[i].from != other.links_[i].from ||
        links_[i].to != other.links_[i].to ||
        links_[i].reverse != other.links_[i].reverse) {
      return false;
    }
  }
  return true;
}

std::string MoleculeDescription::ToString() const {
  // Render as root followed by nested branches, Ch. 4 style:
  // point-edge-(area-state,net-river).
  std::string out;
  // Recursive lambda over the (acyclic) structure.
  auto render = [&](auto&& self, const std::string& label) -> std::string {
    std::string text = label;
    const std::vector<size_t>& outs = OutLinksOf(label);
    if (outs.empty()) return text;
    std::vector<std::string> branches;
    branches.reserve(outs.size());
    for (size_t link_idx : outs) {
      branches.push_back(self(self, links_[link_idx].to));
    }
    if (branches.size() == 1) return text + "-" + branches[0];
    text += "-(";
    for (size_t i = 0; i < branches.size(); ++i) {
      if (i > 0) text += ",";
      text += branches[i];
    }
    text += ")";
    return text;
  };
  return render(render, root_label_);
}

}  // namespace mad
