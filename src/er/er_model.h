#ifndef MAD_ER_ER_MODEL_H_
#define MAD_ER_ER_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "core/schema.h"
#include "relational/relation.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {
namespace er {

/// Relationship cardinalities of the (binary, attribute-free) ER model the
/// paper compares against in Ch. 5.
enum class Cardinality { kOneToOne, kOneToMany, kManyToMany };

const char* CardinalityName(Cardinality c);

/// An entity type: name plus attribute schema.
struct EntityType {
  std::string name;
  Schema attributes;
};

/// A binary relationship type between two entity types.
struct RelationshipType {
  std::string name;
  std::string left;
  std::string right;
  Cardinality cardinality = Cardinality::kManyToMany;
};

/// A binary ER schema (Fig. 1's upper diagram). Validation mirrors the MAD
/// catalog: unique names, known endpoints.
class ErSchema {
 public:
  Status AddEntityType(const std::string& name, Schema attributes);
  Status AddRelationshipType(const std::string& name, const std::string& left,
                             const std::string& right, Cardinality cardinality);

  const std::vector<EntityType>& entity_types() const { return entities_; }
  const std::vector<RelationshipType>& relationship_types() const {
    return relationships_;
  }
  bool HasEntityType(const std::string& name) const {
    return entity_index_.count(name) > 0;
  }

 private:
  std::vector<EntityType> entities_;
  std::map<std::string, size_t> entity_index_;
  std::vector<RelationshipType> relationships_;
  std::map<std::string, size_t> relationship_index_;
};

/// The paper's Ch. 2 claim, made executable: "there is a one-to-one mapping
/// from the ER model to the MAD model associating each entity type with an
/// atom type and each relationship type with a link type." Installs that
/// mapping into `db` (no auxiliary structures, regardless of cardinality).
Status MapToMad(const ErSchema& er, Database& db);

/// The classical ER → relational mapping for comparison: every entity type
/// becomes a relation with a surrogate `_id`; 1:1 and 1:n relationships
/// become a foreign-key column `_<rname>_ref` on the right-hand (many)
/// side; n:m relationships need an auxiliary relation `{_from, _to}`.
Result<rel::RelationalDatabase> MapToRelational(const ErSchema& er);

/// Schema-complexity comparison of the two mappings (the quantified form
/// of "the transformation to the relational model becomes quite
/// cumbersome").
struct MappingReport {
  size_t er_entity_types = 0;
  size_t er_relationship_types = 0;
  size_t mad_atom_types = 0;
  size_t mad_link_types = 0;
  size_t rel_relations = 0;
  size_t rel_auxiliary_relations = 0;
  size_t rel_foreign_key_columns = 0;
};

Result<MappingReport> CompareMappings(const ErSchema& er);

/// Builds the Fig. 1 cartographic ER schema (point/edge/area/net plus
/// state/city/river and their relationship types).
ErSchema Figure1ErSchema();

}  // namespace er
}  // namespace mad

#endif  // MAD_ER_ER_MODEL_H_
