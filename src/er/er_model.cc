#include "er/er_model.h"

namespace mad {
namespace er {

const char* CardinalityName(Cardinality c) {
  switch (c) {
    case Cardinality::kOneToOne:
      return "1:1";
    case Cardinality::kOneToMany:
      return "1:n";
    case Cardinality::kManyToMany:
      return "n:m";
  }
  return "?";
}

Status ErSchema::AddEntityType(const std::string& name, Schema attributes) {
  if (name.empty()) {
    return Status::InvalidArgument("entity type name must be non-empty");
  }
  if (entity_index_.count(name) > 0) {
    return Status::AlreadyExists("entity type '" + name + "' already defined");
  }
  entity_index_[name] = entities_.size();
  entities_.push_back(EntityType{name, std::move(attributes)});
  return Status::OK();
}

Status ErSchema::AddRelationshipType(const std::string& name,
                                     const std::string& left,
                                     const std::string& right,
                                     Cardinality cardinality) {
  if (relationship_index_.count(name) > 0) {
    return Status::AlreadyExists("relationship type '" + name +
                                 "' already defined");
  }
  if (entity_index_.count(left) == 0 || entity_index_.count(right) == 0) {
    return Status::NotFound("relationship type '" + name +
                            "' references an unknown entity type");
  }
  relationship_index_[name] = relationships_.size();
  relationships_.push_back(RelationshipType{name, left, right, cardinality});
  return Status::OK();
}

Status MapToMad(const ErSchema& er, Database& db) {
  // Entity type -> atom type; relationship type -> link type. Cardinality
  // needs no auxiliary structure: link types capture 1:1, 1:n and n:m
  // uniformly (Def. 2 commentary).
  for (const EntityType& entity : er.entity_types()) {
    MAD_RETURN_IF_ERROR(db.DefineAtomType(entity.name, entity.attributes));
  }
  for (const RelationshipType& rel : er.relationship_types()) {
    LinkCardinality cardinality = LinkCardinality::kManyToMany;
    switch (rel.cardinality) {
      case Cardinality::kOneToOne:
        cardinality = LinkCardinality::kOneToOne;
        break;
      case Cardinality::kOneToMany:
        cardinality = LinkCardinality::kOneToMany;
        break;
      case Cardinality::kManyToMany:
        cardinality = LinkCardinality::kManyToMany;
        break;
    }
    MAD_RETURN_IF_ERROR(
        db.DefineLinkType(rel.name, rel.left, rel.right, cardinality));
  }
  return Status::OK();
}

Result<rel::RelationalDatabase> MapToRelational(const ErSchema& er) {
  rel::RelationalDatabase out("er_rel");

  // Collect per-entity foreign keys first (1:1 and 1:n add a column on the
  // right-hand side).
  std::map<std::string, std::vector<std::string>> foreign_keys;
  for (const RelationshipType& rel : er.relationship_types()) {
    if (rel.cardinality != Cardinality::kManyToMany) {
      foreign_keys[rel.right].push_back("_" + rel.name + "_ref");
    }
  }

  for (const EntityType& entity : er.entity_types()) {
    Schema schema;
    MAD_RETURN_IF_ERROR(schema.AddAttribute("_id", DataType::kInt64));
    for (const AttributeDescription& attr : entity.attributes.attributes()) {
      MAD_RETURN_IF_ERROR(schema.AddAttribute(attr.name, attr.type));
    }
    auto it = foreign_keys.find(entity.name);
    if (it != foreign_keys.end()) {
      for (const std::string& fk : it->second) {
        MAD_RETURN_IF_ERROR(schema.AddAttribute(fk, DataType::kInt64));
      }
    }
    MAD_RETURN_IF_ERROR(out.Define(entity.name, std::move(schema)));
  }

  for (const RelationshipType& rel : er.relationship_types()) {
    if (rel.cardinality != Cardinality::kManyToMany) continue;
    Schema schema;
    MAD_RETURN_IF_ERROR(schema.AddAttribute("_from", DataType::kInt64));
    MAD_RETURN_IF_ERROR(schema.AddAttribute("_to", DataType::kInt64));
    MAD_RETURN_IF_ERROR(out.Define(rel.name, std::move(schema)));
  }
  return out;
}

Result<MappingReport> CompareMappings(const ErSchema& er) {
  MappingReport report;
  report.er_entity_types = er.entity_types().size();
  report.er_relationship_types = er.relationship_types().size();

  // MAD side: strictly one-to-one.
  Database mad_db("er_mad");
  MAD_RETURN_IF_ERROR(MapToMad(er, mad_db));
  report.mad_atom_types = mad_db.atom_type_count();
  report.mad_link_types = mad_db.link_type_count();

  // Relational side.
  MAD_ASSIGN_OR_RETURN(rel::RelationalDatabase rel_db, MapToRelational(er));
  report.rel_relations = rel_db.relation_count();
  for (const RelationshipType& rel : er.relationship_types()) {
    if (rel.cardinality == Cardinality::kManyToMany) {
      ++report.rel_auxiliary_relations;
    } else {
      ++report.rel_foreign_key_columns;
    }
  }
  return report;
}

ErSchema Figure1ErSchema() {
  ErSchema er;
  auto named = [] {
    Schema s;
    Status st = s.AddAttribute("name", DataType::kString);
    (void)st;
    return s;
  };

  Schema state = named();
  Status st = state.AddAttribute("hectare", DataType::kInt64);
  (void)st;
  Schema river = named();
  st = river.AddAttribute("length", DataType::kInt64);
  (void)st;
  Schema area = named();
  st = area.AddAttribute("hectare", DataType::kInt64);
  (void)st;
  Schema point = named();
  st = point.AddAttribute("x", DataType::kDouble);
  (void)st;
  st = point.AddAttribute("y", DataType::kDouble);
  (void)st;

  st = er.AddEntityType("state", std::move(state));
  st = er.AddEntityType("city", named());
  st = er.AddEntityType("river", std::move(river));
  st = er.AddEntityType("area", std::move(area));
  st = er.AddEntityType("net", named());
  st = er.AddEntityType("edge", named());
  st = er.AddEntityType("point", std::move(point));

  st = er.AddRelationshipType("state-area", "state", "area",
                              Cardinality::kOneToOne);
  st = er.AddRelationshipType("city-point", "city", "point",
                              Cardinality::kOneToOne);
  st = er.AddRelationshipType("river-net", "river", "net",
                              Cardinality::kOneToOne);
  st = er.AddRelationshipType("area-edge", "area", "edge",
                              Cardinality::kManyToMany);
  st = er.AddRelationshipType("net-edge", "net", "edge",
                              Cardinality::kManyToMany);
  st = er.AddRelationshipType("edge-point", "edge", "point",
                              Cardinality::kManyToMany);
  return er;
}

}  // namespace er
}  // namespace mad
