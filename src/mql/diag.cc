#include "mql/diag.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace mad {
namespace mql {

namespace {

struct DiagInfo {
  DiagId id;
  const char* code;
  Severity severity;
  StatusCode status_code;
};

// Status codes mirror what the execution path historically returned for the
// same mistake (e.g. an unknown atom type was a kNotFound from the catalog),
// so pre-execution rejection is invisible to callers that switch on codes.
constexpr DiagInfo kDiagInfo[] = {
    {DiagId::kParseError, "MQL0001", Severity::kError, StatusCode::kParseError},
    {DiagId::kUnknownAtomType, "MQL0101", Severity::kError,
     StatusCode::kNotFound},
    {DiagId::kUnknownLinkType, "MQL0102", Severity::kError,
     StatusCode::kNotFound},
    {DiagId::kUnknownAttribute, "MQL0103", Severity::kError,
     StatusCode::kNotFound},
    {DiagId::kUnknownQualifier, "MQL0104", Severity::kError,
     StatusCode::kNotFound},
    {DiagId::kUnknownFromName, "MQL0105", Severity::kError,
     StatusCode::kNotFound},
    {DiagId::kUnknownSetOption, "MQL0106", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kAmbiguousAttribute, "MQL0108", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kAmbiguousQualifier, "MQL0109", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kDuplicateStructureAtom, "MQL0201", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kNoConnectingLinkType, "MQL0202", Severity::kError,
     StatusCode::kNotFound},
    {DiagId::kAmbiguousImplicitLink, "MQL0203", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kLinkDirectionMismatch, "MQL0204", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kCyclicDescription, "MQL0205", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kMultipleRoots, "MQL0206", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kIncoherentDescription, "MQL0207", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kMisplacedRecursion, "MQL0208", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kNonReflexiveRecursion, "MQL0209", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kNonBooleanPredicate, "MQL0301", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kComparisonTypeMismatch, "MQL0302", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kNonNumericArithmetic, "MQL0303", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kInvalidRecursiveQualifier, "MQL0305", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kRecursiveProjection, "MQL0306", Severity::kError,
     StatusCode::kUnsupported},
    {DiagId::kForAllForeignReference, "MQL0307", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kNestedForAll, "MQL0308", Severity::kError,
     StatusCode::kUnsupported},
    {DiagId::kAggregateInAtomScope, "MQL0309", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kInsertArityMismatch, "MQL0401", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kValueTypeMismatch, "MQL0402", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kDuplicateAttribute, "MQL0403", Severity::kError,
     StatusCode::kAlreadyExists},
    {DiagId::kTypeAlreadyExists, "MQL0404", Severity::kError,
     StatusCode::kAlreadyExists},
    {DiagId::kInvalidOptionValue, "MQL0405", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kQualifierTypeMismatch, "MQL0406", Severity::kError,
     StatusCode::kInvalidArgument},
    {DiagId::kShadowedLabel, "MQL0501", Severity::kWarning,
     StatusCode::kInvalidArgument},
    {DiagId::kZeroDepthRecursion, "MQL0502", Severity::kWarning,
     StatusCode::kInvalidArgument},
    {DiagId::kRestrictionOnNarrowedAttribute, "MQL0503", Severity::kWarning,
     StatusCode::kInvalidArgument},
    {DiagId::kUnusedStructureNode, "MQL0504", Severity::kWarning,
     StatusCode::kInvalidArgument},
};

const DiagInfo& InfoFor(DiagId id) {
  for (const DiagInfo& info : kDiagInfo) {
    if (info.id == id) return info;
  }
  return kDiagInfo[0];
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The source line (without its newline) containing byte `offset`.
std::string_view LineAt(std::string_view source, size_t offset) {
  if (offset > source.size()) offset = source.size();
  size_t begin = source.rfind('\n', offset == 0 ? 0 : offset - 1);
  begin = begin == std::string_view::npos ? 0 : begin + 1;
  if (offset < begin) begin = offset;  // offset sits on the newline itself
  size_t end = source.find('\n', offset);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(begin, end - begin);
}

void RenderSpanBlock(const SourceSpan& span, std::string_view source,
                     std::string* out) {
  std::string_view line = LineAt(source, span.offset);
  std::string line_no = std::to_string(span.line);
  std::string gutter(line_no.size(), ' ');
  *out += "   " + gutter + " |\n";
  *out += "   " + line_no + " | " + std::string(line) + "\n";
  size_t caret_col = span.column > 0 ? span.column - 1 : 0;
  if (caret_col > line.size()) caret_col = line.size();
  size_t caret_len = span.length > 0 ? span.length : 1;
  // A span never points past its own line in rendered output.
  caret_len = std::min(caret_len, line.size() - caret_col + 1);
  caret_len = std::max<size_t>(caret_len, 1);
  *out += "   " + gutter + " | " + std::string(caret_col, ' ') +
          std::string(caret_len, '^') + "\n";
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

const char* DiagCode(DiagId id) { return InfoFor(id).code; }

Severity DiagSeverity(DiagId id) { return InfoFor(id).severity; }

StatusCode DiagStatusCode(DiagId id) { return InfoFor(id).status_code; }

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity() == Severity::kError;
  });
}

std::vector<Diagnostic> WarningsOnly(const std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.severity() != Severity::kError) out.push_back(d);
  }
  return out;
}

std::string RenderDiagnostic(const Diagnostic& diag, std::string_view source,
                             std::string_view filename) {
  std::string out;
  out += std::string(SeverityName(diag.severity())) + "[" + diag.code() +
         "]: " + diag.message + "\n";
  if (diag.span.known()) {
    out += "    --> ";
    if (!filename.empty()) out += std::string(filename) + ":";
    out += std::to_string(diag.span.line) + ":" +
           std::to_string(diag.span.column) + "\n";
    RenderSpanBlock(diag.span, source, &out);
  }
  for (const DiagNote& note : diag.notes) {
    out += "    = note: " + note.message + "\n";
    if (note.span.known()) RenderSpanBlock(note.span, source, &out);
  }
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diags,
                              std::string_view source,
                              std::string_view filename) {
  std::string out;
  for (const Diagnostic& diag : diags) {
    if (!out.empty()) out += "\n";
    out += RenderDiagnostic(diag, source, filename);
  }
  return out;
}

std::string FormatDiagnosticLine(const Diagnostic& diag) {
  std::string out = std::string(diag.code()) + ": " + diag.message;
  if (diag.span.known()) {
    out += " (line " + std::to_string(diag.span.line) + ", column " +
           std::to_string(diag.span.column) + ")";
  }
  for (const DiagNote& note : diag.notes) {
    out += "; " + note.message;
  }
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags,
                              std::string_view filename) {
  std::string out = "[";
  bool first = true;
  for (const Diagnostic& diag : diags) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"file\": \"" + JsonEscape(filename) + "\", \"code\": \"" +
           diag.code() + "\", \"severity\": \"" +
           SeverityName(diag.severity()) + "\", \"line\": " +
           std::to_string(diag.span.line) + ", \"column\": " +
           std::to_string(diag.span.column) + ", \"offset\": " +
           std::to_string(diag.span.offset) + ", \"length\": " +
           std::to_string(diag.span.length) + ", \"message\": \"" +
           JsonEscape(diag.message) + "\", \"notes\": [";
    for (size_t i = 0; i < diag.notes.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"message\": \"" + JsonEscape(diag.notes[i].message) +
             "\", \"line\": " + std::to_string(diag.notes[i].span.line) +
             ", \"column\": " + std::to_string(diag.notes[i].span.column) +
             "}";
    }
    out += "]}";
  }
  out += diags.empty() ? "]" : "\n]";
  return out;
}

Status DiagnosticsToStatus(const std::vector<Diagnostic>& diags) {
  std::string message;
  StatusCode code = StatusCode::kInvalidArgument;
  bool first = true;
  for (const Diagnostic& diag : diags) {
    if (diag.severity() != Severity::kError) continue;
    if (first) code = DiagStatusCode(diag.id);
    if (!first) message += "\n";
    first = false;
    message += FormatDiagnosticLine(diag);
  }
  if (first) return Status::Internal("DiagnosticsToStatus without errors");
  return Status(code, std::move(message));
}

size_t EditDistance(std::string_view a, std::string_view b) {
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t substitute =
          diagonal + (lower(a[i - 1]) == lower(b[j - 1]) ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
      diagonal = up;
    }
  }
  return row[b.size()];
}

std::optional<std::string> ClosestMatch(
    std::string_view name, const std::vector<std::string>& candidates) {
  if (name.empty()) return std::nullopt;
  size_t budget = std::max<size_t>(1, name.size() / 3);
  std::optional<std::string> best;
  size_t best_distance = budget + 1;
  for (const std::string& candidate : candidates) {
    size_t d = EditDistance(name, candidate);
    if (d > 0 && d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

void AddSuggestion(Diagnostic* diag, std::string_view name,
                   const std::vector<std::string>& candidates) {
  std::optional<std::string> match = ClosestMatch(name, candidates);
  if (match.has_value()) {
    diag->notes.push_back({"did you mean '" + *match + "'?", SourceSpan{}});
  }
}

}  // namespace mql
}  // namespace mad
