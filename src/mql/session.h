#ifndef MAD_MQL_SESSION_H_
#define MAD_MQL_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "molecule/molecule_type.h"
#include "molecule/recursive.h"
#include "molecule/statistics.h"
#include "mql/ast.h"
#include "storage/database.h"
#include "storage/durable_database.h"
#include "util/result.h"
#include "util/trace.h"

namespace mad {
namespace mql {

/// The outcome of one executed MQL statement.
struct QueryResult {
  enum class Kind { kMolecules, kRecursive, kCommand };

  Kind kind = Kind::kCommand;
  /// SELECT over a molecule structure: the resulting molecule type.
  std::shared_ptr<const MoleculeType> molecules;
  /// SELECT over a recursive structure.
  std::vector<RecursiveMolecule> recursive;
  RecursiveDescription recursive_description;
  /// With an expansion tail (`part-[composition*]-supplier`):
  /// recursive_components[i] holds one component molecule per closure
  /// member of recursive[i], described by expansion_description.
  std::vector<std::vector<Molecule>> recursive_components;
  std::optional<MoleculeDescription> expansion_description;
  /// Human-readable command outcome ("atom type created", ...).
  std::string message;
  /// Rows/atoms/links affected by DDL/DML.
  size_t affected = 0;
  /// Counters of the derivation run(s) behind a SELECT, when one happened.
  std::optional<DerivationStats> derivation;
  /// Durability counters after OPEN / CHECKPOINT / SET SYNC.
  std::optional<DurabilityStats> durability;
  /// The operator span tree recorded while executing this statement; set by
  /// EXPLAIN ANALYZE and by any statement under `SET TRACE ON`.
  std::shared_ptr<const QueryTrace> trace;
  /// Analyzer warnings that accompanied the statement (errors never get
  /// here: they block execution). CHECK puts its full report here.
  std::vector<Diagnostic> diagnostics;
};

/// Execution tuning knobs.
struct SessionOptions {
  /// Push WHERE conjuncts decidable on root attributes alone below the
  /// molecule derivation, so only qualifying roots are derived (the
  /// query-optimization direction the paper's outlook sketches). Disable
  /// for the ablation benchmarks.
  bool enable_root_pushdown = true;
  /// Worker threads for molecule derivation (0 = hardware_concurrency);
  /// adjustable at runtime with `SET PARALLELISM n`. Results are identical
  /// at every setting.
  unsigned parallelism = 0;
  /// Per-mutation fsync for databases attached with OPEN; adjustable at
  /// runtime with `SET SYNC ON|OFF`.
  bool sync = false;
  /// Record a QueryTrace for every statement (`SET TRACE ON|OFF`). EXPLAIN
  /// ANALYZE always traces, independent of this option.
  bool trace = false;
};

/// An MQL session: parses statements, translates them to the molecule
/// algebra, and executes them against one Database. FROM clauses of the
/// form `name(structure)` register `name` as a molecule type for later
/// reuse (`SELECT ALL FROM name`), realising the dynamic object definition
/// the paper emphasises — complex objects live in queries, not the schema.
class Session {
 public:
  explicit Session(Database* db, SessionOptions options = {})
      : db_(db), options_(options) {}

  /// Parses, statically analyzes, and executes one statement. Analyzer
  /// errors block execution (the returned Status carries one line per
  /// error); warnings ride along in QueryResult::diagnostics.
  Result<QueryResult> Execute(const std::string& text);

  /// Parses a ';'-separated script upfront, then analyzes and executes each
  /// statement in turn, stopping at the first error. Per-statement analysis
  /// (rather than upfront) lets later statements see the catalog effects of
  /// earlier DDL.
  Result<std::vector<QueryResult>> ExecuteScript(const std::string& text);

  /// Executes an already-parsed statement.
  Result<QueryResult> Run(Statement statement);

  /// Registers a molecule-type description under a reusable name.
  Status RegisterMoleculeType(const std::string& name,
                              MoleculeDescription description);
  bool HasRegisteredMoleculeType(const std::string& name) const {
    return registry_.count(name) > 0;
  }

  Database& database() { return *db_; }

  /// The durable database attached with OPEN, or nullptr when the session
  /// runs against the in-memory database it was constructed with.
  DurableDatabase* durable() { return durable_.get(); }

 private:
  Result<QueryResult> RunStatement(Statement statement);
  Result<QueryResult> RunSelect(SelectStatement stmt);
  Result<QueryResult> RunCreateAtomType(CreateAtomTypeStatement stmt);
  Result<QueryResult> RunCreateLinkType(CreateLinkTypeStatement stmt);
  Result<QueryResult> RunInsertAtom(InsertAtomStatement stmt);
  Result<QueryResult> RunInsertLink(InsertLinkStatement stmt);
  Result<QueryResult> RunDelete(DeleteStatement stmt);
  Result<QueryResult> RunUpdate(UpdateStatement stmt);
  Result<QueryResult> RunExplain(ExplainStatement stmt);
  Result<QueryResult> RunShowMetrics(ShowMetricsStatement stmt);
  Result<QueryResult> RunSetOption(SetOptionStatement stmt);
  Result<QueryResult> RunOpen(OpenStatement stmt);
  Result<QueryResult> RunCheckpoint(CheckpointStatement stmt);
  Result<QueryResult> RunCheck(CheckStatement stmt);

  // SET option handlers, dispatched through kSessionOptions in session.cc;
  // the table is also the source of the "available: ..." error list.
  Result<QueryResult> SetParallelism(int64_t value);
  Result<QueryResult> SetSync(int64_t value);
  Result<QueryResult> SetTrace(int64_t value);

  Database* db_;
  SessionOptions options_;
  std::map<std::string, MoleculeDescription> registry_;
  /// Owns the durable database after OPEN; db_ then points at its wrapped
  /// Database.
  std::unique_ptr<DurableDatabase> durable_;
};

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_SESSION_H_
