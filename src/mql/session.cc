#include "mql/session.h"

#include <algorithm>

#include "expr/compile.h"
#include "expr/eval.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "mql/optimizer.h"
#include "mql/parser.h"
#include "mql/sema.h"
#include "mql/translator.h"
#include "text/printer.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mad {
namespace mql {

namespace {

/// Evaluates a WHERE predicate over one recursive molecule. Permitted
/// qualifiers: "root" (binds the root atom only), the recursion's atom
/// type (existential over the closure members), or none (unqualified
/// attributes of the atom type).
class RecursiveQualifier {
 public:
  RecursiveQualifier(const Database& db, const RecursiveDescription& rd,
                     const expr::ExprPtr& predicate)
      : db_(db), rd_(rd), predicate_(predicate) {}

  Result<bool> Matches(const RecursiveMolecule& m) const {
    return EvalBoolean(*predicate_, m);
  }

 private:
  Result<bool> EvalBoolean(const expr::Expr& e,
                           const RecursiveMolecule& m) const {
    using K = expr::Expr::Kind;
    switch (e.kind()) {
      case K::kAnd: {
        MAD_ASSIGN_OR_RETURN(bool lhs, EvalBoolean(*e.left(), m));
        if (!lhs) return false;
        return EvalBoolean(*e.right(), m);
      }
      case K::kOr: {
        MAD_ASSIGN_OR_RETURN(bool lhs, EvalBoolean(*e.left(), m));
        if (lhs) return true;
        return EvalBoolean(*e.right(), m);
      }
      case K::kNot: {
        MAD_ASSIGN_OR_RETURN(bool operand, EvalBoolean(*e.left(), m));
        return !operand;
      }
      default:
        return EvalExistential(e, m);
    }
  }

  Result<bool> EvalExistential(const expr::Expr& e,
                               const RecursiveMolecule& m) const {
    std::vector<const expr::Expr*> refs;
    e.CollectAttrRefs(&refs);
    bool needs_root = false;
    bool needs_member = false;
    for (const expr::Expr* ref : refs) {
      if (ref->qualifier() == "root") {
        needs_root = true;
      } else if (ref->qualifier().empty() ||
                 ref->qualifier() == rd_.atom_type) {
        needs_member = true;
      } else {
        return Status::InvalidArgument(
            "recursive queries allow the qualifiers 'root' and '" +
            rd_.atom_type + "'; found '" + ref->qualifier() + "'");
      }
    }

    MAD_ASSIGN_OR_RETURN(const AtomType* at, db_.GetAtomType(rd_.atom_type));
    const Schema& schema = at->description();
    const Atom* root_atom = at->occurrence().Find(m.root());
    if (root_atom == nullptr) {
      return Status::Internal("recursive molecule root missing from store");
    }

    expr::BindingSet bindings;
    if (needs_root) bindings.Bind("root", &schema, root_atom);
    if (!needs_member) {
      return expr::EvalPredicate(e, bindings);
    }
    // Existential over every closure member (the root included).
    for (const auto& level : m.levels()) {
      for (AtomId id : level) {
        const Atom* atom = at->occurrence().Find(id);
        if (atom == nullptr) {
          return Status::Internal("recursive molecule atom missing from store");
        }
        bindings.Bind(rd_.atom_type, &schema, atom);
        MAD_ASSIGN_OR_RETURN(bool hit, expr::EvalPredicate(e, bindings));
        if (hit) return true;
      }
    }
    return false;
  }

  const Database& db_;
  const RecursiveDescription& rd_;
  const expr::ExprPtr& predicate_;
};

}  // namespace

Result<QueryResult> Session::Execute(const std::string& text) {
  MAD_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(text));
  std::vector<Diagnostic> diags = AnalyzeStatement(*db_, registry_, stmt);
  if (HasErrors(diags)) return DiagnosticsToStatus(diags);
  Result<QueryResult> result = Run(std::move(stmt));
  if (result.ok()) {
    for (Diagnostic& warning : WarningsOnly(diags)) {
      result->diagnostics.push_back(std::move(warning));
    }
  }
  return result;
}

Result<std::vector<QueryResult>> Session::ExecuteScript(
    const std::string& text) {
  MAD_ASSIGN_OR_RETURN(std::vector<Statement> statements, ParseScript(text));
  std::vector<QueryResult> results;
  results.reserve(statements.size());
  for (Statement& stmt : statements) {
    // Analyze per statement, not upfront: later statements must see the
    // catalog effects of earlier DDL in the script.
    std::vector<Diagnostic> diags = AnalyzeStatement(*db_, registry_, stmt);
    if (HasErrors(diags)) return DiagnosticsToStatus(diags);
    Result<QueryResult> result = Run(std::move(stmt));
    if (!result.ok()) return result.status();
    for (Diagnostic& warning : WarningsOnly(diags)) {
      result->diagnostics.push_back(std::move(warning));
    }
    results.push_back(std::move(*result));
  }
  return results;
}

Result<QueryResult> Session::Run(Statement statement) {
  static Counter& statements = Registry::Global().GetCounter("mql.statements");
  static Histogram& latency =
      Registry::Global().GetHistogram("mql.statement_us");
  statements.Increment();
  ScopedTimer timer(latency);

  if (!options_.trace || CurrentTrace() != nullptr) {
    // Tracing off, or already under an EXPLAIN ANALYZE / outer trace.
    return RunStatement(std::move(statement));
  }
  auto trace = std::make_shared<QueryTrace>();
  Result<QueryResult> result = [&] {
    TraceScope scope(trace.get());
    return RunStatement(std::move(statement));
  }();
  if (result.ok() && result->trace == nullptr) result->trace = trace;
  return result;
}

Result<QueryResult> Session::RunStatement(Statement statement) {
  return std::visit(
      [this](auto&& stmt) -> Result<QueryResult> {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, SelectStatement>) {
          return RunSelect(std::move(stmt));
        } else if constexpr (std::is_same_v<T, CreateAtomTypeStatement>) {
          return RunCreateAtomType(std::move(stmt));
        } else if constexpr (std::is_same_v<T, CreateLinkTypeStatement>) {
          return RunCreateLinkType(std::move(stmt));
        } else if constexpr (std::is_same_v<T, InsertAtomStatement>) {
          return RunInsertAtom(std::move(stmt));
        } else if constexpr (std::is_same_v<T, InsertLinkStatement>) {
          return RunInsertLink(std::move(stmt));
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          return RunUpdate(std::move(stmt));
        } else if constexpr (std::is_same_v<T, ExplainStatement>) {
          return RunExplain(std::move(stmt));
        } else if constexpr (std::is_same_v<T, ShowMetricsStatement>) {
          return RunShowMetrics(std::move(stmt));
        } else if constexpr (std::is_same_v<T, SetOptionStatement>) {
          return RunSetOption(std::move(stmt));
        } else if constexpr (std::is_same_v<T, OpenStatement>) {
          return RunOpen(std::move(stmt));
        } else if constexpr (std::is_same_v<T, CheckpointStatement>) {
          return RunCheckpoint(std::move(stmt));
        } else if constexpr (std::is_same_v<T, CheckStatement>) {
          return RunCheck(std::move(stmt));
        } else {
          return RunDelete(std::move(stmt));
        }
      },
      std::move(statement));
}

Status Session::RegisterMoleculeType(const std::string& name,
                                     MoleculeDescription description) {
  if (name.empty()) {
    return Status::InvalidArgument("molecule type name must be non-empty");
  }
  registry_.insert_or_assign(name, std::move(description));
  return Status::OK();
}

Result<QueryResult> Session::RunSelect(SelectStatement stmt) {
  ScopedSpan select_span("select",
                         stmt.from.molecule_name.empty()
                             ? std::string()
                             : stmt.from.molecule_name);
  // Resolve the FROM clause into a molecule or recursive description.
  std::optional<MoleculeDescription> md;
  std::optional<RecursiveDescription> rd;
  std::optional<MoleculeDescription> expansion;
  std::string name = stmt.from.molecule_name.empty() ? "query"
                                                     : stmt.from.molecule_name;

  const StructureNode& root = *stmt.from.structure;
  bool bare_identifier =
      stmt.from.molecule_name.empty() && root.branches.empty();
  auto registered = bare_identifier ? registry_.find(root.atom)
                                    : registry_.end();
  if (registered != registry_.end()) {
    md = registered->second;
    name = registered->first;
  } else {
    MAD_ASSIGN_OR_RETURN(TranslatedFrom translated,
                         TranslateStructure(*db_, root));
    md = std::move(translated.description);
    rd = std::move(translated.recursive);
    expansion = std::move(translated.recursive_expansion);
    if (!stmt.from.molecule_name.empty() && md.has_value()) {
      MAD_RETURN_IF_ERROR(RegisterMoleculeType(stmt.from.molecule_name, *md));
    }
  }

  QueryResult result;
  if (rd.has_value()) {
    // Recursive query: SELECT ALL only (the closure is the result).
    if (!stmt.select_all) {
      return Status::Unsupported(
          "recursive queries support SELECT ALL projections only");
    }
    MAD_ASSIGN_OR_RETURN(std::vector<RecursiveMolecule> molecules,
                         DeriveRecursiveMolecules(*db_, *rd));
    result.kind = QueryResult::Kind::kRecursive;
    result.recursive_description = *rd;
    if (stmt.where != nullptr) {
      ScopedSpan filter_span("sigma", stmt.where->ToString());
      filter_span.set_rows_in(static_cast<int64_t>(molecules.size()));
      RecursiveQualifier qualifier(*db_, *rd, stmt.where);
      for (RecursiveMolecule& m : molecules) {
        MAD_ASSIGN_OR_RETURN(bool hit, qualifier.Matches(m));
        if (hit) result.recursive.push_back(std::move(m));
      }
      filter_span.set_rows_out(static_cast<int64_t>(result.recursive.size()));
    } else {
      result.recursive = std::move(molecules);
    }
    if (expansion.has_value()) {
      // Expansion tail: one component molecule per closure member, derived
      // only for the closures that survived the WHERE filter. One engine
      // serves every closure — the adjacency snapshot is built once, not
      // once per recursive molecule.
      DerivationOptions dopts{options_.parallelism};
      MAD_ASSIGN_OR_RETURN(DerivationEngine engine,
                           DerivationEngine::Create(*db_, *expansion, dopts));
      DerivationStats totals;
      for (const RecursiveMolecule& m : result.recursive) {
        ScopedSpan expand_span(
            "expand", "root #" + std::to_string(m.root().value));
        std::vector<AtomId> members;
        for (const auto& level : m.levels()) {
          members.insert(members.end(), level.begin(), level.end());
        }
        expand_span.set_rows_in(static_cast<int64_t>(members.size()));
        DerivationStats stats;
        MAD_ASSIGN_OR_RETURN(std::vector<Molecule> components,
                             engine.DeriveForRoots(members, &stats));
        expand_span.set_rows_out(static_cast<int64_t>(components.size()));
        totals.roots += stats.roots;
        totals.atoms_visited += stats.atoms_visited;
        totals.links_scanned += stats.links_scanned;
        totals.threads_used = std::max(totals.threads_used, stats.threads_used);
        totals.wall_ms += stats.wall_ms;
        result.recursive_components.push_back(std::move(components));
      }
      result.expansion_description = std::move(expansion);
      result.derivation = totals;
    }
    select_span.set_rows_out(static_cast<int64_t>(result.recursive.size()));
    return result;
  }

  // Ch. 4 translation: a (definition) ∘ Σ (WHERE) ∘ Π (SELECT). With
  // pushdown enabled the Σ is fused into the derivation: the WHERE clause
  // is split per description node, each group compiled into a flat
  // predicate program the engine evaluates the moment that node's group
  // completes, the multi-node residue compiled into a program evaluated
  // inside the parallel fan-out, and an indexed root equality seeds the
  // root set from its AttributeIndex bucket.
  expr::ExprPtr residual_where = stmt.where;
  DerivationOptions dopts{options_.parallelism};
  DerivationStats dstats;
  std::optional<MoleculeType> derived;
  if (options_.enable_root_pushdown && stmt.where != nullptr) {
    MAD_ASSIGN_OR_RETURN(PushdownPlan plan,
                         PlanPredicatePushdown(*db_, *md, stmt.where));
    // The programs live on this frame; the engine borrows them only for
    // the derive call below.
    std::vector<expr::CompiledPredicate> programs;
    programs.reserve(plan.node_filters.size() + 1);
    for (const NodeFilter& filter : plan.node_filters) {
      MAD_ASSIGN_OR_RETURN(
          expr::CompiledPredicate program,
          expr::CompiledPredicate::Compile(*db_, *md, filter.predicate));
      programs.push_back(std::move(program));
    }
    for (size_t i = 0; i < plan.node_filters.size(); ++i) {
      dopts.node_filters.emplace_back(plan.node_filters[i].node_index,
                                      &programs[i]);
    }
    if (plan.residual != nullptr) {
      MAD_ASSIGN_OR_RETURN(
          expr::CompiledPredicate residual_program,
          expr::CompiledPredicate::Compile(*db_, *md, plan.residual));
      programs.push_back(std::move(residual_program));
      dopts.residual = &programs.back();
    }
    residual_where = nullptr;  // the engine consumes the whole WHERE

    // Root seeding: take the index bucket instead of scanning the whole
    // occurrence. Bucket order is index insertion order, which diverges
    // from occurrence order after updates, so restore occurrence order —
    // seeded derivation stays bit-identical to the unseeded scan.
    std::optional<std::vector<AtomId>> seeded;
    if (plan.seed.has_value()) {
      MAD_ASSIGN_OR_RETURN(const AtomType* root_at,
                           db_->GetAtomType(md->root_node().type_name));
      ScopedSpan seed_span("index-seed",
                           md->root_node().type_name + "." +
                               plan.seed->attribute + " = " +
                               plan.seed->value.ToString());
      seed_span.set_rows_in(
          static_cast<int64_t>(root_at->occurrence().size()));
      const std::vector<AtomId>& bucket =
          plan.seed->index->Lookup(plan.seed->value);
      std::vector<std::pair<size_t, AtomId>> ordered;
      ordered.reserve(bucket.size());
      for (AtomId id : bucket) {
        std::optional<size_t> pos = root_at->occurrence().PositionOf(id);
        if (pos.has_value()) ordered.emplace_back(*pos, id);
      }
      std::sort(ordered.begin(), ordered.end());
      seeded.emplace();
      seeded->reserve(ordered.size());
      for (const auto& [pos, id] : ordered) seeded->push_back(id);
      seed_span.set_rows_out(static_cast<int64_t>(seeded->size()));
    }

    {
      // The fused Σ: rows_in counts the roots fanned out over, rows_out
      // the molecules surviving the pushed programs.
      ScopedSpan sigma_span("sigma", stmt.where->ToString());
      std::vector<Molecule> molecules;
      if (seeded.has_value()) {
        MAD_ASSIGN_OR_RETURN(
            molecules,
            DeriveMoleculesForRoots(*db_, *md, *seeded, dopts, &dstats));
      } else {
        MAD_ASSIGN_OR_RETURN(molecules,
                             DeriveMolecules(*db_, *md, dopts, &dstats));
      }
      sigma_span.set_rows_in(static_cast<int64_t>(dstats.roots));
      sigma_span.set_rows_out(static_cast<int64_t>(molecules.size()));
      derived.emplace(name, *md, std::move(molecules));
    }
  }
  if (!derived.has_value()) {
    MAD_ASSIGN_OR_RETURN(MoleculeType full,
                         DefineMoleculeType(*db_, name, *md, dopts, &dstats));
    derived.emplace(std::move(full));
  }
  result.derivation = dstats;
  MoleculeType mt = *std::move(derived);
  if (residual_where != nullptr) {
    MAD_ASSIGN_OR_RETURN(
        mt, RestrictMolecules(*db_, mt, residual_where, name,
                              options_.parallelism));
  }
  if (!stmt.select_all) {
    MAD_ASSIGN_OR_RETURN(MoleculeProjectionSpec spec,
                         TranslateProjection(mt.description(), stmt.items));
    MAD_ASSIGN_OR_RETURN(mt, ProjectMolecules(*db_, mt, spec, name));
  }
  result.kind = QueryResult::Kind::kMolecules;
  result.molecules = std::make_shared<MoleculeType>(std::move(mt));
  select_span.set_rows_out(static_cast<int64_t>(result.molecules->size()));
  return result;
}

Result<QueryResult> Session::RunCreateAtomType(CreateAtomTypeStatement stmt) {
  Schema schema;
  for (const auto& [attr, type] : stmt.attributes) {
    MAD_RETURN_IF_ERROR(schema.AddAttribute(attr, type));
  }
  MAD_RETURN_IF_ERROR(db_->DefineAtomType(stmt.name, std::move(schema)));
  QueryResult result;
  result.message = "atom type '" + stmt.name + "' created";
  return result;
}

Result<QueryResult> Session::RunCreateLinkType(CreateLinkTypeStatement stmt) {
  MAD_RETURN_IF_ERROR(db_->DefineLinkType(stmt.name, stmt.first, stmt.second,
                                          stmt.cardinality));
  QueryResult result;
  result.message = "link type '" + stmt.name + "' created";
  return result;
}

Result<QueryResult> Session::RunInsertAtom(InsertAtomStatement stmt) {
  QueryResult result;
  for (std::vector<Value>& row : stmt.rows) {
    MAD_RETURN_IF_ERROR(db_->InsertAtom(stmt.atom_type, std::move(row)).status());
    ++result.affected;
  }
  result.message = std::to_string(result.affected) + " atom(s) inserted into '" +
                   stmt.atom_type + "'";
  return result;
}

namespace {

/// Atoms of `aname` matching `predicate` (validated up front).
Result<std::vector<AtomId>> MatchingAtoms(const Database& db,
                                          const std::string& aname,
                                          const expr::ExprPtr& predicate) {
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(aname));
  MAD_RETURN_IF_ERROR(
      expr::ValidateAgainstSchema(*predicate, aname, at->description()));
  std::vector<AtomId> matches;
  for (const Atom& atom : at->occurrence().atoms()) {
    MAD_ASSIGN_OR_RETURN(
        bool hit, expr::EvalOnAtom(*predicate, aname, at->description(), atom));
    if (hit) matches.push_back(atom.id);
  }
  return matches;
}

}  // namespace

Result<QueryResult> Session::RunInsertLink(InsertLinkStatement stmt) {
  MAD_ASSIGN_OR_RETURN(const LinkType* lt, db_->GetLinkType(stmt.link_type));
  MAD_ASSIGN_OR_RETURN(
      std::vector<AtomId> first_atoms,
      MatchingAtoms(*db_, lt->first_atom_type(), stmt.first_predicate));
  MAD_ASSIGN_OR_RETURN(
      std::vector<AtomId> second_atoms,
      MatchingAtoms(*db_, lt->second_atom_type(), stmt.second_predicate));

  QueryResult result;
  for (AtomId first : first_atoms) {
    for (AtomId second : second_atoms) {
      Status s = db_->InsertLink(stmt.link_type, first, second);
      if (s.ok()) {
        ++result.affected;
      } else if (s.code() != StatusCode::kAlreadyExists) {
        return s;
      }
    }
  }
  result.message = std::to_string(result.affected) + " link(s) inserted into '" +
                   stmt.link_type + "'";
  return result;
}

Result<QueryResult> Session::RunUpdate(UpdateStatement stmt) {
  MAD_ASSIGN_OR_RETURN(const AtomType* at, db_->GetAtomType(stmt.atom_type));
  const Schema& schema = at->description();

  // Resolve assignment targets and validate value expressions' references.
  std::vector<size_t> target_indexes;
  for (const auto& [attr, value_expr] : stmt.assignments) {
    MAD_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(attr));
    target_indexes.push_back(idx);
    std::vector<const expr::Expr*> refs;
    value_expr->CollectAttrRefs(&refs);
    for (const expr::Expr* ref : refs) {
      if (!ref->qualifier().empty() && ref->qualifier() != stmt.atom_type) {
        return Status::InvalidArgument("qualifier '" + ref->qualifier() +
                                       "' does not match atom type '" +
                                       stmt.atom_type + "'");
      }
      if (!schema.HasAttribute(ref->attribute())) {
        return Status::NotFound("unknown attribute '" + ref->attribute() +
                                "' in atom type '" + stmt.atom_type + "'");
      }
    }
  }

  std::vector<AtomId> targets;
  if (stmt.predicate != nullptr) {
    MAD_ASSIGN_OR_RETURN(targets,
                         MatchingAtoms(*db_, stmt.atom_type, stmt.predicate));
  } else {
    for (const Atom& atom : at->occurrence().atoms()) targets.push_back(atom.id);
  }

  QueryResult result;
  for (AtomId id : targets) {
    const Atom* atom = at->occurrence().Find(id);
    if (atom == nullptr) continue;
    expr::BindingSet bindings;
    bindings.Bind(stmt.atom_type, &schema, atom);
    std::vector<Value> values = atom->values;
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      MAD_ASSIGN_OR_RETURN(
          Value v, expr::EvalValue(*stmt.assignments[i].second, bindings));
      values[target_indexes[i]] = std::move(v);
    }
    MAD_RETURN_IF_ERROR(db_->UpdateAtom(stmt.atom_type, id, std::move(values)));
    ++result.affected;
  }
  result.message = std::to_string(result.affected) + " atom(s) updated in '" +
                   stmt.atom_type + "'";
  return result;
}

Result<QueryResult> Session::RunExplain(ExplainStatement stmt) {
  const SelectStatement& select = stmt.select;
  const StructureNode& root = *select.from.structure;

  std::string plan = "-- molecule algebra translation --\n";

  std::optional<MoleculeDescription> md;
  std::optional<RecursiveDescription> rd;
  std::optional<MoleculeDescription> expansion;
  std::string name = select.from.molecule_name.empty()
                         ? "query"
                         : select.from.molecule_name;
  bool bare_identifier =
      select.from.molecule_name.empty() && root.branches.empty();
  auto registered =
      bare_identifier ? registry_.find(root.atom) : registry_.end();
  if (registered != registry_.end()) {
    md = registered->second;
    name = registered->first;
  } else {
    MAD_ASSIGN_OR_RETURN(TranslatedFrom translated,
                         TranslateStructure(*db_, root));
    md = std::move(translated.description);
    rd = std::move(translated.recursive);
    expansion = std::move(translated.recursive_expansion);
  }

  if (rd.has_value()) {
    plan += "closure[" + rd->atom_type + ", " + rd->link_type + ", " +
            (rd->direction == LinkDirection::kForward ? "forward" : "backward");
    plan += rd->max_depth < 0 ? ", unbounded]"
                              : ", depth<=" + std::to_string(rd->max_depth) +
                                    "]";
    plan += "   -- recursive molecule type [Schö89]\n";
    if (expansion.has_value()) {
      plan += "expand-each[" + expansion->ToString() +
              "]   -- per-member component molecule\n";
    }
  } else {
    plan += "a[" + name + ", {";
    for (size_t j = 0; j < md->links().size(); ++j) {
      if (j > 0) plan += ", ";
      const DirectedLink& dl = md->links()[j];
      plan += "<" + dl.link_type + ": " + dl.from +
              (dl.reverse ? " <~ " : " -> ") + dl.to + ">";
    }
    plan += "}]({";
    for (size_t i = 0; i < md->nodes().size(); ++i) {
      if (i > 0) plan += ", ";
      plan += md->nodes()[i].label;
    }
    plan += "})   -- molecule-type definition (Def. 8)\n";
  }

  if (select.where != nullptr) {
    plan += "Sigma[" + select.where->ToString() +
            "]   -- molecule-type restriction (Def. 10)\n";
    if (options_.enable_root_pushdown && md.has_value() && !rd.has_value()) {
      // How the Σ will actually run: per-node compiled filters inside the
      // derivation, an index-seeded root set, and the compiled residual.
      Result<PushdownPlan> pushed =
          PlanPredicatePushdown(*db_, *md, select.where);
      if (pushed.ok()) {
        for (const NodeFilter& filter : pushed->node_filters) {
          plan += "  push-down[" + md->nodes()[filter.node_index].label +
                  "]: " + filter.predicate->ToString();
          Result<expr::CompiledPredicate> program =
              expr::CompiledPredicate::Compile(*db_, *md, filter.predicate);
          if (program.ok()) plan += "   -- compiled: " + program->Summary();
          plan += "\n";
        }
        if (pushed->seed.has_value()) {
          plan += "  seed-index[" + md->root_node().type_name + "." +
                  pushed->seed->attribute + " = " +
                  pushed->seed->value.ToString() +
                  "]   -- root fan-out from AttributeIndex\n";
        }
        if (pushed->residual != nullptr) {
          plan += "  residual: " + pushed->residual->ToString();
          Result<expr::CompiledPredicate> program =
              expr::CompiledPredicate::Compile(*db_, *md, pushed->residual);
          if (program.ok()) plan += "   -- compiled: " + program->Summary();
          plan += "\n";
        }
      }
    }
  }
  if (!select.select_all) {
    if (rd.has_value()) {
      return Status::Unsupported(
          "recursive queries support SELECT ALL projections only");
    }
    MAD_ASSIGN_OR_RETURN(MoleculeProjectionSpec spec,
                         TranslateProjection(*md, select.items));
    plan += "Pi[{";
    for (size_t i = 0; i < spec.keep_labels.size(); ++i) {
      if (i > 0) plan += ", ";
      plan += spec.keep_labels[i];
      auto it = spec.attributes.find(spec.keep_labels[i]);
      if (it != spec.attributes.end()) {
        plan += "(";
        for (size_t j = 0; j < it->second.size(); ++j) {
          if (j > 0) plan += ",";
          plan += it->second[j];
        }
        plan += ")";
      }
    }
    plan += "}]   -- molecule-type projection\n";
  }

  if (!stmt.analyze) {
    QueryResult result;
    result.message = std::move(plan);
    return result;
  }

  // EXPLAIN ANALYZE: execute the select under a fresh trace and report the
  // plan together with the recorded operator span tree.
  auto trace = std::make_shared<QueryTrace>();
  Result<QueryResult> executed = [&] {
    TraceScope scope(trace.get());
    return RunSelect(std::move(stmt.select));
  }();
  MAD_RETURN_IF_ERROR(executed.status());

  QueryResult result = *std::move(executed);
  result.kind = QueryResult::Kind::kCommand;
  result.message = std::move(plan) + "-- execution profile --\n" +
                   text::FormatQueryTrace(*trace);
  result.trace = std::move(trace);
  return result;
}

Result<QueryResult> Session::RunShowMetrics(ShowMetricsStatement) {
  QueryResult result;
  result.message =
      text::FormatMetricsSnapshot(Registry::Global().Snapshot());
  return result;
}

Result<QueryResult> Session::RunSetOption(SetOptionStatement stmt) {
  // KnownSessionOptions() (sema.h) is the single source of the option
  // list; it drives dispatch, the analyzer's MQL0106 suggestions, and the
  // "available: ..." list here, so the three cannot drift apart.
  const std::vector<std::string>& options = KnownSessionOptions();
  for (const std::string& option : options) {
    if (!EqualsIgnoreCase(stmt.option, option)) continue;
    if (option == "PARALLELISM") return SetParallelism(stmt.value);
    if (option == "SYNC") return SetSync(stmt.value);
    return SetTrace(stmt.value);
  }
  std::string available;
  for (const std::string& option : options) {
    if (!available.empty()) available += ", ";
    available += option;
  }
  return Status::InvalidArgument("unknown session option '" + stmt.option +
                                 "'; available: " + available);
}

Result<QueryResult> Session::SetParallelism(int64_t value) {
  if (value < 0) {
    return Status::InvalidArgument(
        "PARALLELISM must be >= 0 (0 selects hardware concurrency)");
  }
  options_.parallelism = static_cast<unsigned>(value);
  static Gauge& gauge = Registry::Global().GetGauge("mql.parallelism");
  gauge.Set(value == 0 ? ThreadPool::DefaultParallelism() : value);
  QueryResult result;
  result.message =
      options_.parallelism == 0
          ? "parallelism set to auto (" +
                std::to_string(ThreadPool::DefaultParallelism()) +
                " threads)"
          : "parallelism set to " + std::to_string(options_.parallelism) +
                " thread" + (options_.parallelism == 1 ? "" : "s");
  return result;
}

Result<QueryResult> Session::SetSync(int64_t value) {
  if (value != 0 && value != 1) {
    return Status::InvalidArgument("SYNC must be ON/1 or OFF/0");
  }
  options_.sync = value == 1;
  if (durable_ != nullptr) durable_->set_sync(options_.sync);
  QueryResult result;
  result.message = options_.sync
                       ? "sync on: every mutation is fsync'd"
                       : "sync off: mutations batch in the group-commit "
                         "buffer";
  if (durable_ != nullptr) result.durability = durable_->stats();
  return result;
}

Result<QueryResult> Session::SetTrace(int64_t value) {
  if (value != 0 && value != 1) {
    return Status::InvalidArgument("TRACE must be ON/1 or OFF/0");
  }
  options_.trace = value == 1;
  QueryResult result;
  result.message = options_.trace
                       ? "trace on: every statement records an operator "
                         "span tree"
                       : "trace off";
  return result;
}

Result<QueryResult> Session::RunOpen(OpenStatement stmt) {
  DurabilityOptions options;
  options.sync = options_.sync;
  MAD_ASSIGN_OR_RETURN(std::unique_ptr<DurableDatabase> durable,
                       DurableDatabase::Open(stmt.directory, options));
  // Swap the session over: molecule types registered against the previous
  // database describe structures that may not exist in the new one.
  durable_ = std::move(durable);
  db_ = &durable_->database();
  registry_.clear();

  DurabilityStats stats = durable_->stats();
  QueryResult result;
  result.message =
      "opened '" + stmt.directory + "' at generation " +
      std::to_string(stats.generation) +
      (stats.created_fresh
           ? " (fresh)"
           : " (" + std::to_string(stats.replayed_records) +
                 " WAL record(s) replayed" +
                 (stats.wal_torn_tail
                      ? ", torn tail of " +
                            std::to_string(stats.wal_discarded_bytes) +
                            " byte(s) discarded"
                      : "") +
                 ")");
  result.durability = std::move(stats);
  return result;
}

Result<QueryResult> Session::RunCheckpoint(CheckpointStatement) {
  if (durable_ == nullptr) {
    return Status::InvalidArgument(
        "CHECKPOINT requires a durable database; OPEN '<directory>' first");
  }
  MAD_RETURN_IF_ERROR(durable_->Checkpoint());
  DurabilityStats stats = durable_->stats();
  QueryResult result;
  result.message = "checkpoint written: generation " +
                   std::to_string(stats.generation) + ", " +
                   std::to_string(stats.last_checkpoint_bytes) + " byte(s)";
  result.durability = std::move(stats);
  return result;
}

Result<QueryResult> Session::RunCheck(CheckStatement stmt) {
  // The diagnostics travel structurally; callers that hold the source text
  // (the shell, mql_lint) render them with carets. The message is just the
  // verdict line.
  QueryResult result;
  if (stmt.inner != nullptr) {
    result.diagnostics = AnalyzeStatement(*db_, registry_, stmt.inner->value);
  }
  if (result.diagnostics.empty()) {
    result.message = "CHECK: no issues found";
    return result;
  }
  size_t errors = 0;
  size_t warnings = 0;
  for (const Diagnostic& diag : result.diagnostics) {
    (diag.severity() == Severity::kError ? errors : warnings) += 1;
  }
  result.message = "CHECK: " + std::to_string(errors) + " error(s), " +
                   std::to_string(warnings) + " warning(s)";
  return result;
}

Result<QueryResult> Session::RunDelete(DeleteStatement stmt) {
  std::vector<AtomId> doomed;
  if (stmt.predicate != nullptr) {
    MAD_ASSIGN_OR_RETURN(doomed,
                         MatchingAtoms(*db_, stmt.atom_type, stmt.predicate));
  } else {
    MAD_ASSIGN_OR_RETURN(const AtomType* at, db_->GetAtomType(stmt.atom_type));
    for (const Atom& atom : at->occurrence().atoms()) doomed.push_back(atom.id);
  }
  QueryResult result;
  for (AtomId id : doomed) {
    MAD_RETURN_IF_ERROR(db_->DeleteAtom(stmt.atom_type, id));
    ++result.affected;
  }
  result.message = std::to_string(result.affected) + " atom(s) deleted from '" +
                   stmt.atom_type + "'";
  return result;
}

}  // namespace mql
}  // namespace mad
