#ifndef MAD_MQL_LEXER_H_
#define MAD_MQL_LEXER_H_

#include <string>
#include <vector>

#include "mql/token.h"
#include "util/result.h"

namespace mad {
namespace mql {

/// Tokenises one MQL text. Keywords are case-insensitive; identifiers are
/// [A-Za-z_][A-Za-z0-9_]*; strings are single-quoted with '' escaping;
/// `[...]` lexes to a link-reference token whose body is taken verbatim
/// (so link-type names containing '-' remain expressible inside molecule
/// structures, e.g. `state-[state-area]-area`).
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_LEXER_H_
