#ifndef MAD_MQL_TRANSLATOR_H_
#define MAD_MQL_TRANSLATOR_H_

#include <optional>
#include <vector>

#include "molecule/description.h"
#include "molecule/operations.h"
#include "molecule/recursive.h"
#include "mql/ast.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {
namespace mql {

/// The algebraic reading of a FROM structure — Ch. 4's point: MQL semantics
/// are *defined* by translation into the molecule algebra. A structure
/// translates either to a molecule-type description (the operand of the
/// molecule-type-definition operator a) or, when its single step carries
/// the '*' flag, to a recursive description (the Ch. 5 extension).
struct TranslatedFrom {
  std::optional<MoleculeDescription> description;
  std::optional<RecursiveDescription> recursive;
  /// Per-member expansion of a recursive step (`part-[composition*]-supplier`),
  /// rooted at the recursion's atom type.
  std::optional<MoleculeDescription> recursive_expansion;
};

/// Translates a parsed structure. Implicit '-' connectors resolve to the
/// unique link type between the adjacent atom types (an error names the
/// candidates when several exist); each atom type may occur once.
Result<TranslatedFrom> TranslateStructure(const Database& db,
                                          const StructureNode& root);

/// Translates a SELECT list into a molecule-type projection Π spec: the
/// selected labels plus every ancestor up to the root are kept (Π must
/// stay root-preserving and coherent); `label.attr` items narrow a node's
/// visible attributes, a bare `label` (or `label.*`) keeps them all.
Result<MoleculeProjectionSpec> TranslateProjection(
    const MoleculeDescription& md, const std::vector<ProjectionItem>& items);

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_TRANSLATOR_H_
