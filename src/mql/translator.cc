#include "mql/translator.h"

#include <set>

namespace mad {
namespace mql {

namespace {

/// Finds the unique link type connecting `a` and `b` (either orientation).
Result<std::string> InferLinkType(const Database& db, const std::string& a,
                                  const std::string& b) {
  std::vector<std::string> candidates;
  for (const LinkType* lt : db.link_types()) {
    bool forward = lt->first_atom_type() == a && lt->second_atom_type() == b;
    bool backward = lt->first_atom_type() == b && lt->second_atom_type() == a;
    if (forward || backward) candidates.push_back(lt->name());
  }
  if (candidates.empty()) {
    return Status::NotFound("no link type connects '" + a + "' and '" + b +
                            "'");
  }
  if (candidates.size() > 1) {
    std::string names;
    for (const std::string& c : candidates) {
      if (!names.empty()) names += ", ";
      names += c;
    }
    return Status::InvalidArgument("several link types connect '" + a +
                                   "' and '" + b + "' (" + names +
                                   "); name one with -[link]-");
  }
  return candidates[0];
}

Status Collect(const Database& db, const StructureNode& node,
               std::vector<std::string>* atoms,
               std::vector<DirectedLink>* links,
               std::set<std::string>* seen) {
  if (!seen->insert(node.atom).second) {
    return Status::InvalidArgument(
        "atom type '" + node.atom +
        "' occurs twice in the molecule structure (Def. 5: C is a set)");
  }
  atoms->push_back(node.atom);
  for (const StructureNode::Branch& branch : node.branches) {
    if (branch.recursive) {
      return Status::InvalidArgument(
          "a recursive step must be the only step of the structure");
    }
    std::string link;
    if (branch.link.has_value()) {
      link = *branch.link;
    } else {
      MAD_ASSIGN_OR_RETURN(link,
                           InferLinkType(db, node.atom, branch.child->atom));
    }
    links->push_back(
        DirectedLink{link, node.atom, branch.child->atom, branch.reverse});
    MAD_RETURN_IF_ERROR(Collect(db, *branch.child, atoms, links, seen));
  }
  return Status::OK();
}

}  // namespace

Result<TranslatedFrom> TranslateStructure(const Database& db,
                                          const StructureNode& root) {
  TranslatedFrom out;

  // Recursive form: exactly one branch, flagged '*', no target node.
  if (root.branches.size() == 1 && root.branches[0].recursive) {
    const StructureNode::Branch& branch = root.branches[0];
    if (!branch.link.has_value()) {
      return Status::InvalidArgument(
          "recursive steps need an explicit link name: atom-[link*]");
    }
    RecursiveDescription rd;
    rd.atom_type = root.atom;
    rd.link_type = *branch.link;
    rd.direction =
        branch.reverse ? LinkDirection::kBackward : LinkDirection::kForward;
    rd.max_depth = branch.recursive_depth;
    MAD_RETURN_IF_ERROR(ValidateRecursiveDescription(db, rd));
    out.recursive = rd;
    if (branch.child != nullptr) {
      // Expansion tail: a plain structure applied to every closure member.
      std::vector<std::string> atoms;
      std::vector<DirectedLink> links;
      std::set<std::string> seen;
      MAD_RETURN_IF_ERROR(Collect(db, *branch.child, &atoms, &links, &seen));
      MAD_ASSIGN_OR_RETURN(
          MoleculeDescription expansion,
          MoleculeDescription::CreateFromTypes(db, std::move(atoms),
                                               std::move(links)));
      out.recursive_expansion = std::move(expansion);
    }
    return out;
  }

  std::vector<std::string> atoms;
  std::vector<DirectedLink> links;
  std::set<std::string> seen;
  MAD_RETURN_IF_ERROR(Collect(db, root, &atoms, &links, &seen));
  MAD_ASSIGN_OR_RETURN(
      MoleculeDescription md,
      MoleculeDescription::CreateFromTypes(db, std::move(atoms),
                                           std::move(links)));
  out.description = std::move(md);
  return out;
}

Result<MoleculeProjectionSpec> TranslateProjection(
    const MoleculeDescription& md, const std::vector<ProjectionItem>& items) {
  if (items.empty()) {
    return Status::InvalidArgument("projection list must be non-empty");
  }

  std::set<std::string> keep;
  std::map<std::string, std::vector<std::string>> narrowing;
  std::set<std::string> whole_node;  // labels selected without narrowing

  for (const ProjectionItem& item : items) {
    MAD_ASSIGN_OR_RETURN(size_t idx, md.ResolveQualifier(item.label));
    const std::string& label = md.nodes()[idx].label;
    keep.insert(label);
    if (item.attribute.has_value()) {
      narrowing[label].push_back(*item.attribute);
    } else {
      whole_node.insert(label);
    }
  }
  // A bare `label` wins over `label.attr` narrowing.
  for (const std::string& label : whole_node) narrowing.erase(label);

  // Close over ancestors so the projection stays root-preserving and
  // coherent: a kept node pulls in the sources of its incoming links.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::string& label : std::set<std::string>(keep)) {
      for (size_t link_idx : md.InLinksOf(label)) {
        const std::string& parent = md.links()[link_idx].from;
        if (keep.insert(parent).second) changed = true;
      }
    }
  }

  MoleculeProjectionSpec spec;
  // Preserve description node order for determinism.
  for (const MoleculeNode& node : md.nodes()) {
    if (keep.count(node.label) > 0) spec.keep_labels.push_back(node.label);
  }
  spec.attributes = std::move(narrowing);
  return spec;
}

}  // namespace mql
}  // namespace mad
