#include "mql/optimizer.h"

#include <algorithm>
#include <vector>

namespace mad {
namespace mql {

namespace {

/// Resolves one attribute reference to a node index, mirroring the
/// qualification resolution rules (label first, unique type name, unique
/// unqualified attribute).
Result<size_t> ResolveRef(const Database& db, const MoleculeDescription& md,
                          const expr::Expr& ref) {
  if (!ref.qualifier().empty()) return md.ResolveQualifier(ref.qualifier());

  const size_t kNone = static_cast<size_t>(-1);
  size_t hit = kNone;
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    MAD_ASSIGN_OR_RETURN(const AtomType* at,
                         db.GetAtomType(md.nodes()[i].type_name));
    if (!at->description().HasAttribute(ref.attribute())) continue;
    if (md.nodes()[i].attributes.has_value()) {
      const auto& visible = *md.nodes()[i].attributes;
      if (std::find(visible.begin(), visible.end(), ref.attribute()) ==
          visible.end()) {
        continue;
      }
    }
    if (hit != kNone) {
      return Status::InvalidArgument("ambiguous attribute '" +
                                     ref.attribute() + "'");
    }
    hit = i;
  }
  if (hit == kNone) {
    return Status::NotFound("attribute '" + ref.attribute() +
                            "' occurs in no node");
  }
  return hit;
}

void CollectConjuncts(const expr::ExprPtr& node,
                      std::vector<expr::ExprPtr>* out) {
  if (node->kind() == expr::Expr::Kind::kAnd) {
    CollectConjuncts(node->left(), out);
    CollectConjuncts(node->right(), out);
    return;
  }
  out->push_back(node);
}

expr::ExprPtr AndAll(const std::vector<expr::ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  expr::ExprPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = expr::And(result, conjuncts[i]);
  }
  return result;
}

}  // namespace

Result<bool> IsRootOnly(const Database& db, const MoleculeDescription& md,
                        const expr::Expr& node) {
  MAD_ASSIGN_OR_RETURN(size_t root_idx, md.NodeIndex(md.root_label()));
  std::vector<const expr::Expr*> refs;
  node.CollectAttrRefs(&refs);
  if (refs.empty()) return false;  // constant conjuncts stay residual
  for (const expr::Expr* ref : refs) {
    MAD_ASSIGN_OR_RETURN(size_t idx, ResolveRef(db, md, *ref));
    if (idx != root_idx) return false;
  }
  return true;
}

Result<SplitPredicate> SplitRootConjuncts(const Database& db,
                                          const MoleculeDescription& md,
                                          const expr::ExprPtr& predicate) {
  SplitPredicate split;
  if (predicate == nullptr) return split;

  std::vector<expr::ExprPtr> conjuncts;
  CollectConjuncts(predicate, &conjuncts);

  std::vector<expr::ExprPtr> root_side;
  std::vector<expr::ExprPtr> residual_side;
  for (const expr::ExprPtr& conjunct : conjuncts) {
    MAD_ASSIGN_OR_RETURN(bool root_only, IsRootOnly(db, md, *conjunct));
    (root_only ? root_side : residual_side).push_back(conjunct);
  }
  split.root_only = AndAll(root_side);
  split.residual = AndAll(residual_side);
  return split;
}

}  // namespace mql
}  // namespace mad
