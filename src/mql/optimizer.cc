#include "mql/optimizer.h"

#include <algorithm>
#include <map>
#include <set>

namespace mad {
namespace mql {

namespace {

/// Resolves one attribute reference to a node index, mirroring the
/// qualification resolution rules (label first, unique type name, unique
/// unqualified attribute).
Result<size_t> ResolveRef(const Database& db, const MoleculeDescription& md,
                          const expr::Expr& ref) {
  if (!ref.qualifier().empty()) return md.ResolveQualifier(ref.qualifier());

  const size_t kNone = static_cast<size_t>(-1);
  size_t hit = kNone;
  for (size_t i = 0; i < md.nodes().size(); ++i) {
    MAD_ASSIGN_OR_RETURN(const AtomType* at,
                         db.GetAtomType(md.nodes()[i].type_name));
    if (!at->description().HasAttribute(ref.attribute())) continue;
    if (md.nodes()[i].attributes.has_value()) {
      const auto& visible = *md.nodes()[i].attributes;
      if (std::find(visible.begin(), visible.end(), ref.attribute()) ==
          visible.end()) {
        continue;
      }
    }
    if (hit != kNone) {
      return Status::InvalidArgument("ambiguous attribute '" +
                                     ref.attribute() + "'");
    }
    hit = i;
  }
  if (hit == kNone) {
    return Status::NotFound("attribute '" + ref.attribute() +
                            "' occurs in no node");
  }
  return hit;
}

/// Attribute references bind nodes; COUNT(x) and FORALL x(...) bind their
/// quantified node even without attribute references underneath.
Status CollectNodeRefs(const Database& db, const MoleculeDescription& md,
                       const expr::Expr& node, std::set<size_t>* out) {
  switch (node.kind()) {
    case expr::Expr::Kind::kAttrRef: {
      MAD_ASSIGN_OR_RETURN(size_t idx, ResolveRef(db, md, node));
      out->insert(idx);
      return Status::OK();
    }
    case expr::Expr::Kind::kCount: {
      MAD_ASSIGN_OR_RETURN(size_t idx, md.ResolveQualifier(node.qualifier()));
      out->insert(idx);
      return Status::OK();
    }
    case expr::Expr::Kind::kForAll: {
      MAD_ASSIGN_OR_RETURN(size_t idx, md.ResolveQualifier(node.qualifier()));
      out->insert(idx);
      return CollectNodeRefs(db, md, *node.left(), out);
    }
    default:
      if (node.left() != nullptr) {
        MAD_RETURN_IF_ERROR(CollectNodeRefs(db, md, *node.left(), out));
      }
      if (node.right() != nullptr) {
        MAD_RETURN_IF_ERROR(CollectNodeRefs(db, md, *node.right(), out));
      }
      return Status::OK();
  }
}

void CollectConjuncts(const expr::ExprPtr& node,
                      std::vector<expr::ExprPtr>* out) {
  if (node->kind() == expr::Expr::Kind::kAnd) {
    CollectConjuncts(node->left(), out);
    CollectConjuncts(node->right(), out);
    return;
  }
  out->push_back(node);
}

expr::ExprPtr AndAll(const std::vector<expr::ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  expr::ExprPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = expr::And(result, conjuncts[i]);
  }
  return result;
}

/// Matches `attr = literal` / `literal = attr` with `attr` on the root
/// node and an AttributeIndex on the root atom type.
std::optional<IndexSeed> MatchIndexSeed(const Database& db,
                                        const MoleculeDescription& md,
                                        size_t root_idx,
                                        const expr::Expr& conjunct) {
  if (conjunct.kind() != expr::Expr::Kind::kCompare ||
      conjunct.compare_op() != expr::CompareOp::kEq) {
    return std::nullopt;
  }
  const expr::Expr* attr = conjunct.left().get();
  const expr::Expr* lit = conjunct.right().get();
  if (attr->kind() != expr::Expr::Kind::kAttrRef) std::swap(attr, lit);
  if (attr->kind() != expr::Expr::Kind::kAttrRef ||
      lit->kind() != expr::Expr::Kind::kLiteral) {
    return std::nullopt;
  }
  // The conjunct was already classified to the root node, so the reference
  // is known to bind there; only the index lookup can still fail.
  (void)root_idx;
  const AttributeIndex* index =
      db.FindIndex(md.root_node().type_name, attr->attribute());
  if (index == nullptr) return std::nullopt;
  IndexSeed seed;
  seed.index = index;
  seed.attribute = attr->attribute();
  seed.value = lit->literal();
  return seed;
}

}  // namespace

Result<std::vector<size_t>> ReferencedNodes(const Database& db,
                                            const MoleculeDescription& md,
                                            const expr::Expr& node) {
  std::set<size_t> refs;
  MAD_RETURN_IF_ERROR(CollectNodeRefs(db, md, node, &refs));
  return std::vector<size_t>(refs.begin(), refs.end());
}

Result<PushdownPlan> PlanPredicatePushdown(const Database& db,
                                           const MoleculeDescription& md,
                                           const expr::ExprPtr& predicate) {
  PushdownPlan plan;
  if (predicate == nullptr) return plan;

  MAD_ASSIGN_OR_RETURN(size_t root_idx, md.NodeIndex(md.root_label()));

  std::vector<expr::ExprPtr> conjuncts;
  CollectConjuncts(predicate, &conjuncts);

  // Group single-node conjuncts per node (original order within a node),
  // keep everything else residual.
  std::map<size_t, std::vector<expr::ExprPtr>> per_node;
  std::vector<expr::ExprPtr> residual_side;
  for (const expr::ExprPtr& conjunct : conjuncts) {
    MAD_ASSIGN_OR_RETURN(std::vector<size_t> nodes,
                         ReferencedNodes(db, md, *conjunct));
    if (nodes.size() == 1) {
      const size_t node_idx = nodes[0];
      per_node[node_idx].push_back(conjunct);
      if (node_idx == root_idx && !plan.seed.has_value()) {
        plan.seed = MatchIndexSeed(db, md, root_idx, *conjunct);
      }
    } else {
      // Constants (no references) and multi-node conjuncts.
      residual_side.push_back(conjunct);
    }
  }

  for (const auto& [node_idx, node_conjuncts] : per_node) {
    NodeFilter filter;
    filter.node_index = node_idx;
    filter.predicate = AndAll(node_conjuncts);
    plan.node_filters.push_back(std::move(filter));
  }
  plan.residual = AndAll(residual_side);
  return plan;
}

}  // namespace mql
}  // namespace mad
