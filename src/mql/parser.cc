#include "mql/parser.h"

#include <cctype>
#include <utility>

#include "mql/lexer.h"
#include "util/string_util.h"

namespace mad {
namespace mql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOne() {
    MAD_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    if (Peek().kind == TokenKind::kSemicolon) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after statement");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> statements;
    while (Peek().kind != TokenKind::kEnd) {
      MAD_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
      statements.push_back(std::move(stmt));
      if (Peek().kind == TokenKind::kSemicolon) {
        Advance();
      } else if (Peek().kind != TokenKind::kEnd) {
        return Error("expected ';' between statements");
      }
    }
    return statements;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind kind) {
    if (Accept(kind)) return Status::OK();
    return Error(std::string("expected ") + TokenKindName(kind) + ", found " +
                 TokenKindName(Peek().kind));
  }
  Status Error(const std::string& message) const {
    const SourceSpan& at = Peek().span;
    return Status::ParseError(message + " (line " + std::to_string(at.line) +
                              ", column " + std::to_string(at.column) + ")");
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    MAD_ASSIGN_OR_RETURN(Token tok, ExpectIdentifierToken(what));
    return std::move(tok.text);
  }

  /// Like ExpectIdentifier but keeps the token, for callers that record
  /// its span into the AST.
  Result<Token> ExpectIdentifierToken(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what + ", found " +
                   TokenKindName(Peek().kind));
    }
    return Advance();
  }

  /// Index of the next token; pairs with SpanSince to cover a parsed range.
  size_t Mark() const { return pos_; }

  /// The span from the token at `mark` through the last consumed token.
  SourceSpan SpanSince(size_t mark) const {
    if (mark >= tokens_.size()) mark = tokens_.size() - 1;
    SourceSpan span = tokens_[mark].span;
    const Token& last = tokens_[pos_ > mark ? pos_ - 1 : mark];
    size_t end = last.span.offset + last.span.length;
    if (end > span.offset) span.length = end - span.offset;
    return span;
  }

  /// Records the source range of an expression node (side map: expr::Expr
  /// is shared with the algebra layer and carries no spans itself).
  void NoteExpr(const expr::ExprPtr& e, size_t mark) {
    if (e != nullptr) expr_spans_[e.get()] = SpanSince(mark);
  }

  ExprSpanMap TakeExprSpans() { return std::exchange(expr_spans_, {}); }

  Result<Statement> ParseStatementInner() {
    switch (Peek().kind) {
      case TokenKind::kSelect:
        return ParseSelect();
      case TokenKind::kCreate:
        return ParseCreate();
      case TokenKind::kInsert:
        return ParseInsert();
      case TokenKind::kDelete:
        return ParseDelete();
      case TokenKind::kUpdate:
        return ParseUpdate();
      case TokenKind::kExplain: {
        Advance();
        ExplainStatement stmt;
        stmt.analyze = Accept(TokenKind::kAnalyze);
        MAD_ASSIGN_OR_RETURN(Statement inner, ParseSelect());
        stmt.select = std::get<SelectStatement>(std::move(inner));
        return Statement(std::move(stmt));
      }
      case TokenKind::kShow:
        Advance();
        MAD_RETURN_IF_ERROR(Expect(TokenKind::kMetrics));
        return Statement(ShowMetricsStatement{});
      case TokenKind::kSet:
        // Statement-initial SET is a session option; SET also appears
        // mid-statement in UPDATE ... SET, which ParseUpdate consumes.
        return ParseSetOption();
      case TokenKind::kOpen:
        return ParseOpen();
      case TokenKind::kCheckpoint:
        Advance();
        return Statement(CheckpointStatement{});
      case TokenKind::kCheck: {
        Advance();
        if (Peek().kind == TokenKind::kCheck) {
          return Error("CHECK does not nest");
        }
        MAD_ASSIGN_OR_RETURN(Statement inner, ParseStatementInner());
        CheckStatement stmt;
        stmt.inner = std::make_shared<StatementBox>();
        stmt.inner->value = std::move(inner);
        return Statement(std::move(stmt));
      }
      default:
        return Error(
            "expected SELECT, CREATE, INSERT, UPDATE, DELETE, SET, OPEN, "
            "CHECKPOINT, SHOW, EXPLAIN, or CHECK");
    }
  }

  // SET option [=] (integer | ON | OFF)
  Result<Statement> ParseSetOption() {
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kSet));
    SetOptionStatement stmt;
    MAD_ASSIGN_OR_RETURN(Token option, ExpectIdentifierToken("option name"));
    stmt.option = std::move(option.text);
    stmt.option_span = option.span;
    Accept(TokenKind::kEq);  // optional '='
    if (Peek().kind == TokenKind::kIdentifier &&
        (EqualsIgnoreCase(Peek().text, "on") ||
         EqualsIgnoreCase(Peek().text, "off"))) {
      stmt.value_span = Peek().span;
      stmt.value = EqualsIgnoreCase(Advance().text, "on") ? 1 : 0;
      return Statement(std::move(stmt));
    }
    if (Peek().kind != TokenKind::kInteger) {
      return Error("expected non-negative integer, ON, or OFF option value");
    }
    stmt.value_span = Peek().span;
    stmt.value = Advance().int_value;
    return Statement(std::move(stmt));
  }

  // OPEN '<directory>'
  Result<Statement> ParseOpen() {
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kOpen));
    if (Peek().kind != TokenKind::kString) {
      return Error("expected a quoted directory path after OPEN");
    }
    OpenStatement stmt;
    stmt.directory = Advance().text;
    return Statement(std::move(stmt));
  }

  // SELECT (ALL | items) FROM from [WHERE expr]
  Result<Statement> ParseSelect() {
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kSelect));
    SelectStatement stmt;
    if (Accept(TokenKind::kAll)) {
      stmt.select_all = true;
    } else {
      stmt.select_all = false;
      do {
        ProjectionItem item;
        MAD_ASSIGN_OR_RETURN(Token label,
                             ExpectIdentifierToken("projection label"));
        item.label = std::move(label.text);
        item.label_span = label.span;
        if (Accept(TokenKind::kDot)) {
          if (Accept(TokenKind::kStar)) {
            item.attribute = std::nullopt;  // label.* == label
          } else {
            MAD_ASSIGN_OR_RETURN(Token attr,
                                 ExpectIdentifierToken("attribute name"));
            item.attribute = std::move(attr.text);
            item.attr_span = attr.span;
          }
        }
        stmt.items.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
    }
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
    MAD_ASSIGN_OR_RETURN(stmt.from, ParseFrom());
    if (Accept(TokenKind::kWhere)) {
      MAD_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    stmt.expr_spans = TakeExprSpans();
    return Statement(std::move(stmt));
  }

  // from := IDENT '(' structure ')' | structure
  Result<FromClause> ParseFrom() {
    FromClause from;
    // Named form: IDENT '(' ... — but `a-(b,c)` also puts '(' after a
    // *connector*, never directly after the first identifier, so the
    // two-token lookahead is unambiguous.
    if (Peek().kind == TokenKind::kIdentifier &&
        Peek(1).kind == TokenKind::kLParen) {
      from.name_span = Peek().span;
      from.molecule_name = Advance().text;
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      MAD_ASSIGN_OR_RETURN(from.structure, ParseStructure());
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return from;
    }
    MAD_ASSIGN_OR_RETURN(from.structure, ParseStructure());
    return from;
  }

  // structure := IDENT tail ; tail handles chains and parenthesised branch
  // lists. `A-B-C` chains (B continues the walk), `A-(B-C,D)` branches,
  // and `A-[l*]-B-...` expands every closure member of a recursive step by
  // the remaining structure (implicitly rooted at A).
  Result<std::unique_ptr<StructureNode>> ParseStructure() {
    auto node = std::make_unique<StructureNode>();
    MAD_ASSIGN_OR_RETURN(Token atom, ExpectIdentifierToken("atom type"));
    node->atom = std::move(atom.text);
    node->span = atom.span;
    MAD_RETURN_IF_ERROR(ParseTail(node.get()));
    return node;
  }

  Status ParseTail(StructureNode* start) {
    StructureNode* current = start;
    while (Peek().kind == TokenKind::kDash) {
      SourceSpan connector_span = Peek().span;
      Advance();  // '-'
      StructureNode::Branch branch;
      branch.link_span = connector_span;
      if (Peek().kind == TokenKind::kLinkRef) {
        branch.link_span = Peek().span;
        std::string body = Advance().text;
        // A '*' may carry a depth bound: [composition*3]. Digits belong to
        // the link name unless a '*' precedes them.
        size_t digits_begin = body.size();
        while (digits_begin > 0 &&
               std::isdigit(static_cast<unsigned char>(body[digits_begin - 1]))) {
          --digits_begin;
        }
        if (digits_begin < body.size() && digits_begin > 0 &&
            body[digits_begin - 1] == '*') {
          branch.recursive = true;
          branch.recursive_depth = std::stoi(body.substr(digits_begin));
          body.resize(digits_begin - 1);
        }
        // Trailing '*' and '~' flags, any order.
        bool changed = true;
        while (changed && !body.empty()) {
          changed = false;
          if (body.back() == '*') {
            branch.recursive = true;
            body.pop_back();
            changed = true;
          } else if (body.back() == '~') {
            branch.reverse = true;
            body.pop_back();
            changed = true;
          }
        }
        body = std::string(StripWhitespace(body));
        if (body.empty()) return Error("empty link name in link reference");
        branch.link = std::move(body);
        if (branch.recursive) {
          // A recursive step ends the chain; an optional '-' tail becomes
          // the per-member expansion structure, implicitly rooted at the
          // recursion's atom type.
          if (Accept(TokenKind::kDash)) {
            auto expansion = std::make_unique<StructureNode>();
            expansion->atom = current->atom;
            expansion->span = current->span;
            StructureNode::Branch inner;
            inner.link_span = connector_span;
            if (Peek().kind == TokenKind::kLinkRef) {
              inner.link_span = Peek().span;
              std::string inner_body = Advance().text;
              inner_body = std::string(StripWhitespace(inner_body));
              if (inner_body.empty() || inner_body.back() == '*') {
                return Error("nested recursion is not supported");
              }
              if (!inner_body.empty() && inner_body.back() == '~') {
                inner.reverse = true;
                inner_body.pop_back();
              }
              inner.link = std::move(inner_body);
              MAD_RETURN_IF_ERROR(Expect(TokenKind::kDash));
            }
            if (Accept(TokenKind::kLParen)) {
              do {
                StructureNode::Branch element;
                element.link = inner.link;
                element.reverse = inner.reverse;
                element.link_span = inner.link_span;
                MAD_ASSIGN_OR_RETURN(element.child, ParseStructure());
                expansion->branches.push_back(std::move(element));
              } while (Accept(TokenKind::kComma));
              MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
            } else {
              MAD_ASSIGN_OR_RETURN(inner.child, ParseStructure());
              expansion->branches.push_back(std::move(inner));
            }
            branch.child = std::move(expansion);
          }
          current->branches.push_back(std::move(branch));
          return Status::OK();
        }
        MAD_RETURN_IF_ERROR(Expect(TokenKind::kDash));
      }
      if (Accept(TokenKind::kLParen)) {
        // Branch list: each element is a full sub-structure; the chain does
        // not continue after ')'.
        std::optional<std::string> shared_link = branch.link;
        bool shared_reverse = branch.reverse;
        SourceSpan shared_span = branch.link_span;
        do {
          StructureNode::Branch element;
          element.link = shared_link;
          element.reverse = shared_reverse;
          element.link_span = shared_span;
          MAD_ASSIGN_OR_RETURN(element.child, ParseStructure());
          current->branches.push_back(std::move(element));
        } while (Accept(TokenKind::kComma));
        MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        break;
      }
      MAD_ASSIGN_OR_RETURN(Token next_atom,
                           ExpectIdentifierToken("atom type after '-'"));
      auto child = std::make_unique<StructureNode>();
      child->atom = std::move(next_atom.text);
      child->span = next_atom.span;
      StructureNode* next = child.get();
      branch.child = std::move(child);
      current->branches.push_back(std::move(branch));
      current = next;  // the chain continues from the new node
    }
    return Status::OK();
  }

  // ---- DDL / DML ------------------------------------------------------

  Result<Statement> ParseCreate() {
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kCreate));
    if (Accept(TokenKind::kAtom)) {
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kType));
      CreateAtomTypeStatement stmt;
      MAD_ASSIGN_OR_RETURN(Token name,
                           ExpectIdentifierToken("atom type name"));
      stmt.name = std::move(name.text);
      stmt.name_span = name.span;
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      do {
        MAD_ASSIGN_OR_RETURN(Token attr,
                             ExpectIdentifierToken("attribute name"));
        MAD_ASSIGN_OR_RETURN(std::string type_name,
                             ExpectIdentifier("data type"));
        DataType type = DataTypeFromName(type_name);
        if (type == DataType::kNull) {
          return Error("unknown data type '" + type_name + "'");
        }
        stmt.attributes.emplace_back(std::move(attr.text), type);
        stmt.attribute_spans.push_back(attr.span);
      } while (Accept(TokenKind::kComma));
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Statement(std::move(stmt));
    }
    if (Accept(TokenKind::kLink)) {
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kType));
      CreateLinkTypeStatement stmt;
      MAD_ASSIGN_OR_RETURN(Token name,
                           ExpectIdentifierToken("link type name"));
      stmt.name = std::move(name.text);
      stmt.name_span = name.span;
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      MAD_ASSIGN_OR_RETURN(Token first, ExpectIdentifierToken("atom type"));
      stmt.first = std::move(first.text);
      stmt.first_span = first.span;
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      MAD_ASSIGN_OR_RETURN(Token second, ExpectIdentifierToken("atom type"));
      stmt.second = std::move(second.text);
      stmt.second_span = second.span;
      if (Accept(TokenKind::kComma)) {
        // Extended link-type definition: cardinality restriction.
        if (Peek().kind != TokenKind::kString) {
          return Error("expected cardinality string like '1:n'");
        }
        std::string text = Advance().text;
        if (!ParseLinkCardinality(text, &stmt.cardinality)) {
          return Error("bad cardinality '" + text +
                       "' (use '1:1', '1:n', 'n:1', or 'n:m')");
        }
      }
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Statement(std::move(stmt));
    }
    return Error("expected ATOM TYPE or LINK TYPE after CREATE");
  }

  Result<Statement> ParseInsert() {
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kInsert));
    if (Accept(TokenKind::kInto)) {
      InsertAtomStatement stmt;
      MAD_ASSIGN_OR_RETURN(Token type, ExpectIdentifierToken("atom type"));
      stmt.atom_type = std::move(type.text);
      stmt.type_span = type.span;
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kValues));
      do {
        stmt.row_spans.push_back(Peek().span);
        MAD_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        std::vector<Value> row;
        std::vector<SourceSpan> row_value_spans;
        if (Peek().kind != TokenKind::kRParen) {
          do {
            size_t mark = Mark();
            MAD_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
            row.push_back(std::move(v));
            row_value_spans.push_back(SpanSince(mark));
          } while (Accept(TokenKind::kComma));
        }
        MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        stmt.rows.push_back(std::move(row));
        stmt.value_spans.push_back(std::move(row_value_spans));
      } while (Accept(TokenKind::kComma));
      return Statement(std::move(stmt));
    }
    if (Accept(TokenKind::kLink)) {
      InsertLinkStatement stmt;
      if (Peek().kind == TokenKind::kLinkRef) {
        stmt.link_span = Peek().span;
        stmt.link_type = Advance().text;
      } else {
        MAD_ASSIGN_OR_RETURN(Token link, ExpectIdentifierToken("link type"));
        stmt.link_type = std::move(link.text);
        stmt.link_span = link.span;
      }
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      MAD_ASSIGN_OR_RETURN(stmt.first_predicate, ParseExpr());
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kTo));
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      MAD_ASSIGN_OR_RETURN(stmt.second_predicate, ParseExpr());
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      stmt.expr_spans = TakeExprSpans();
      return Statement(std::move(stmt));
    }
    return Error("expected INTO or LINK after INSERT");
  }

  Result<Statement> ParseDelete() {
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kDelete));
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
    DeleteStatement stmt;
    MAD_ASSIGN_OR_RETURN(Token type, ExpectIdentifierToken("atom type"));
    stmt.atom_type = std::move(type.text);
    stmt.type_span = type.span;
    if (Accept(TokenKind::kWhere)) {
      MAD_ASSIGN_OR_RETURN(stmt.predicate, ParseExpr());
    }
    stmt.expr_spans = TakeExprSpans();
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kUpdate));
    UpdateStatement stmt;
    MAD_ASSIGN_OR_RETURN(Token type, ExpectIdentifierToken("atom type"));
    stmt.atom_type = std::move(type.text);
    stmt.type_span = type.span;
    MAD_RETURN_IF_ERROR(Expect(TokenKind::kSet));
    do {
      MAD_ASSIGN_OR_RETURN(Token attr,
                           ExpectIdentifierToken("attribute name"));
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      MAD_ASSIGN_OR_RETURN(expr::ExprPtr value, ParseAdditive());
      stmt.assignments.emplace_back(std::move(attr.text), std::move(value));
      stmt.assignment_spans.push_back(attr.span);
    } while (Accept(TokenKind::kComma));
    if (Accept(TokenKind::kWhere)) {
      MAD_ASSIGN_OR_RETURN(stmt.predicate, ParseExpr());
    }
    stmt.expr_spans = TakeExprSpans();
    return Statement(std::move(stmt));
  }

  // ---- Expressions (WHERE clauses) --------------------------------------

  Result<Value> ParseLiteralValue() {
    bool negative = false;
    if (Accept(TokenKind::kDash)) negative = true;
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kString:
        if (negative) return Error("cannot negate a string literal");
        Advance();
        return Value(t.text);
      case TokenKind::kInteger:
        Advance();
        return Value(negative ? -t.int_value : t.int_value);
      case TokenKind::kDouble:
        Advance();
        return Value(negative ? -t.double_value : t.double_value);
      case TokenKind::kTrue:
        Advance();
        return Value(true);
      case TokenKind::kFalse:
        Advance();
        return Value(false);
      case TokenKind::kNull:
        Advance();
        return Value();
      default:
        return Error("expected literal value");
    }
  }

  Result<expr::ExprPtr> ParseExpr() { return ParseOr(); }

  Result<expr::ExprPtr> ParseOr() {
    size_t mark = Mark();
    MAD_ASSIGN_OR_RETURN(expr::ExprPtr lhs, ParseAnd());
    while (Accept(TokenKind::kOr)) {
      MAD_ASSIGN_OR_RETURN(expr::ExprPtr rhs, ParseAnd());
      lhs = expr::Or(std::move(lhs), std::move(rhs));
      NoteExpr(lhs, mark);
    }
    return lhs;
  }

  Result<expr::ExprPtr> ParseAnd() {
    size_t mark = Mark();
    MAD_ASSIGN_OR_RETURN(expr::ExprPtr lhs, ParseNot());
    while (Accept(TokenKind::kAnd)) {
      MAD_ASSIGN_OR_RETURN(expr::ExprPtr rhs, ParseNot());
      lhs = expr::And(std::move(lhs), std::move(rhs));
      NoteExpr(lhs, mark);
    }
    return lhs;
  }

  Result<expr::ExprPtr> ParseNot() {
    size_t mark = Mark();
    if (Accept(TokenKind::kNot)) {
      MAD_ASSIGN_OR_RETURN(expr::ExprPtr operand, ParseNot());
      expr::ExprPtr e = expr::Not(std::move(operand));
      NoteExpr(e, mark);
      return e;
    }
    if (Accept(TokenKind::kForAll)) {
      MAD_ASSIGN_OR_RETURN(std::string label,
                           ExpectIdentifier("node label after FORALL"));
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      MAD_ASSIGN_OR_RETURN(expr::ExprPtr inner, ParseExpr());
      MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      expr::ExprPtr e = expr::ForAll(std::move(label), std::move(inner));
      NoteExpr(e, mark);
      return e;
    }
    return ParseComparison();
  }

  Result<expr::ExprPtr> ParseComparison() {
    size_t mark = Mark();
    MAD_ASSIGN_OR_RETURN(expr::ExprPtr lhs, ParseAdditive());
    expr::CompareOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = expr::CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = expr::CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = expr::CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = expr::CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = expr::CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = expr::CompareOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    MAD_ASSIGN_OR_RETURN(expr::ExprPtr rhs, ParseAdditive());
    expr::ExprPtr e =
        expr::Expr::MakeCompare(op, std::move(lhs), std::move(rhs));
    NoteExpr(e, mark);
    return e;
  }

  Result<expr::ExprPtr> ParseAdditive() {
    size_t mark = Mark();
    MAD_ASSIGN_OR_RETURN(expr::ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (Accept(TokenKind::kPlus)) {
        MAD_ASSIGN_OR_RETURN(expr::ExprPtr rhs, ParseMultiplicative());
        lhs = expr::Add(std::move(lhs), std::move(rhs));
        NoteExpr(lhs, mark);
      } else if (Accept(TokenKind::kDash)) {
        MAD_ASSIGN_OR_RETURN(expr::ExprPtr rhs, ParseMultiplicative());
        lhs = expr::Sub(std::move(lhs), std::move(rhs));
        NoteExpr(lhs, mark);
      } else {
        return lhs;
      }
    }
  }

  Result<expr::ExprPtr> ParseMultiplicative() {
    size_t mark = Mark();
    MAD_ASSIGN_OR_RETURN(expr::ExprPtr lhs, ParseUnary());
    while (true) {
      if (Accept(TokenKind::kStar)) {
        MAD_ASSIGN_OR_RETURN(expr::ExprPtr rhs, ParseUnary());
        lhs = expr::Mul(std::move(lhs), std::move(rhs));
        NoteExpr(lhs, mark);
      } else if (Accept(TokenKind::kSlash)) {
        MAD_ASSIGN_OR_RETURN(expr::ExprPtr rhs, ParseUnary());
        lhs = expr::Div(std::move(lhs), std::move(rhs));
        NoteExpr(lhs, mark);
      } else {
        return lhs;
      }
    }
  }

  Result<expr::ExprPtr> ParseUnary() {
    size_t mark = Mark();
    if (Accept(TokenKind::kDash)) {
      MAD_ASSIGN_OR_RETURN(expr::ExprPtr operand, ParseUnary());
      expr::ExprPtr e = expr::Sub(expr::Lit(int64_t{0}), std::move(operand));
      NoteExpr(e, mark);
      return e;
    }
    return ParsePrimary();
  }

  Result<expr::ExprPtr> ParsePrimary() {
    size_t mark = Mark();
    auto noted = [&](expr::ExprPtr e) {
      NoteExpr(e, mark);
      return e;
    };
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kString:
        Advance();
        return noted(expr::Lit(Value(t.text)));
      case TokenKind::kInteger:
        Advance();
        return noted(expr::Lit(Value(t.int_value)));
      case TokenKind::kDouble:
        Advance();
        return noted(expr::Lit(Value(t.double_value)));
      case TokenKind::kTrue:
        Advance();
        return noted(expr::Lit(Value(true)));
      case TokenKind::kFalse:
        Advance();
        return noted(expr::Lit(Value(false)));
      case TokenKind::kNull:
        Advance();
        return noted(expr::Lit(Value()));
      case TokenKind::kIdentifier: {
        std::string first = Advance().text;
        if (Accept(TokenKind::kDot)) {
          MAD_ASSIGN_OR_RETURN(std::string attr,
                               ExpectIdentifier("attribute name"));
          return noted(expr::Attr(std::move(first), std::move(attr)));
        }
        return noted(expr::Attr(std::move(first)));
      }
      case TokenKind::kCount: {
        Advance();
        MAD_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MAD_ASSIGN_OR_RETURN(std::string label,
                             ExpectIdentifier("node label"));
        MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return noted(expr::Count(std::move(label)));
      }
      case TokenKind::kLParen: {
        Advance();
        MAD_ASSIGN_OR_RETURN(expr::ExprPtr inner, ParseExpr());
        MAD_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      default:
        return Error(std::string("unexpected ") + TokenKindName(t.kind) +
                     " in expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  ExprSpanMap expr_spans_;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& text) {
  MAD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseOne();
}

Result<std::vector<Statement>> ParseScript(const std::string& text) {
  MAD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

}  // namespace mql
}  // namespace mad
