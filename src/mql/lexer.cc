#include "mql/lexer.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace mad {
namespace mql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kInteger:
      return "integer literal";
    case TokenKind::kDouble:
      return "double literal";
    case TokenKind::kLinkRef:
      return "link reference";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kAll:
      return "ALL";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kTrue:
      return "TRUE";
    case TokenKind::kFalse:
      return "FALSE";
    case TokenKind::kNull:
      return "NULL";
    case TokenKind::kCreate:
      return "CREATE";
    case TokenKind::kAtom:
      return "ATOM";
    case TokenKind::kLink:
      return "LINK";
    case TokenKind::kType:
      return "TYPE";
    case TokenKind::kInsert:
      return "INSERT";
    case TokenKind::kInto:
      return "INTO";
    case TokenKind::kValues:
      return "VALUES";
    case TokenKind::kDelete:
      return "DELETE";
    case TokenKind::kTo:
      return "TO";
    case TokenKind::kUpdate:
      return "UPDATE";
    case TokenKind::kSet:
      return "SET";
    case TokenKind::kExplain:
      return "EXPLAIN";
    case TokenKind::kAnalyze:
      return "ANALYZE";
    case TokenKind::kShow:
      return "SHOW";
    case TokenKind::kMetrics:
      return "METRICS";
    case TokenKind::kCount:
      return "COUNT";
    case TokenKind::kForAll:
      return "FORALL";
    case TokenKind::kOpen:
      return "OPEN";
    case TokenKind::kCheckpoint:
      return "CHECKPOINT";
    case TokenKind::kCheck:
      return "CHECK";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDash:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
  }
  return "?";
}

namespace {

struct Keyword {
  const char* spelling;
  TokenKind kind;
};

constexpr Keyword kKeywords[] = {
    {"select", TokenKind::kSelect}, {"all", TokenKind::kAll},
    {"from", TokenKind::kFrom},     {"where", TokenKind::kWhere},
    {"and", TokenKind::kAnd},       {"or", TokenKind::kOr},
    {"not", TokenKind::kNot},       {"true", TokenKind::kTrue},
    {"false", TokenKind::kFalse},   {"null", TokenKind::kNull},
    {"create", TokenKind::kCreate}, {"atom", TokenKind::kAtom},
    {"link", TokenKind::kLink},     {"type", TokenKind::kType},
    {"insert", TokenKind::kInsert}, {"into", TokenKind::kInto},
    {"values", TokenKind::kValues}, {"delete", TokenKind::kDelete},
    {"to", TokenKind::kTo},         {"update", TokenKind::kUpdate},
    {"set", TokenKind::kSet},       {"explain", TokenKind::kExplain},
    {"count", TokenKind::kCount},   {"forall", TokenKind::kForAll},
    {"open", TokenKind::kOpen},     {"checkpoint", TokenKind::kCheckpoint},
    {"analyze", TokenKind::kAnalyze}, {"show", TokenKind::kShow},
    {"metrics", TokenKind::kMetrics}, {"check", TokenKind::kCheck},
};

/// 0-based byte offsets of every line start, for offset -> line:column.
std::vector<size_t> LineStarts(const std::string& text) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

SourceSpan SpanFor(const std::vector<size_t>& line_starts, size_t offset,
                   size_t length) {
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  size_t line_idx = static_cast<size_t>(it - line_starts.begin()) - 1;
  SourceSpan span;
  span.offset = offset;
  span.length = length;
  span.line = line_idx + 1;
  span.column = offset - line_starts[line_idx] + 1;
  return span;
}

std::string LocationText(const std::vector<size_t>& line_starts,
                         size_t offset) {
  SourceSpan span = SpanFor(line_starts, offset, 1);
  return "line " + std::to_string(span.line) + ", column " +
         std::to_string(span.column);
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  const std::vector<size_t> line_starts = LineStarts(text);

  // `pos` is the token's first byte; the span runs to the current scan
  // position `i` (or `pos + len` for the symbol cases that pass one).
  auto push = [&](TokenKind kind, size_t pos, std::string spelling = "",
                  size_t len = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(spelling);
    t.span = SpanFor(line_starts, pos, len > 0 ? len : (i > pos ? i - pos : 1));
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;

    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t begin = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      std::string word = text.substr(begin, i - begin);
      TokenKind kind = TokenKind::kIdentifier;
      for (const Keyword& kw : kKeywords) {
        if (EqualsIgnoreCase(word, kw.spelling)) {
          kind = kw.kind;
          break;
        }
      }
      push(kind, begin, std::move(word));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t begin = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i + 1 < n && text[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      std::string number = text.substr(begin, i - begin);
      Token t;
      t.span = SpanFor(line_starts, begin, i - begin);
      t.text = number;
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::stod(number);
      } else {
        t.kind = TokenKind::kInteger;
        try {
          t.int_value = std::stoll(number);
        } catch (const std::out_of_range&) {
          return Status::ParseError("integer literal out of range at " +
                                    LocationText(line_starts, begin));
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }

    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += text[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at " +
                                  LocationText(line_starts, start));
      }
      push(TokenKind::kString, start, std::move(value));
      continue;
    }

    if (c == '[') {
      size_t close = text.find(']', i + 1);
      if (close == std::string::npos) {
        return Status::ParseError("unterminated link reference at " +
                                  LocationText(line_starts, start));
      }
      std::string body(StripWhitespace(text.substr(i + 1, close - i - 1)));
      if (body.empty()) {
        return Status::ParseError("empty link reference at " +
                                  LocationText(line_starts, start));
      }
      i = close + 1;
      push(TokenKind::kLinkRef, start, std::move(body));
      continue;
    }

    auto two = [&](char second) { return i + 1 < n && text[i + 1] == second; };
    switch (c) {
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon, start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        break;
      case '-':
        push(TokenKind::kDash, start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, start);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe, start, "", 2);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at " +
                                    LocationText(line_starts, start));
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe, start, "", 2);
          i += 2;
        } else if (two('>')) {
          push(TokenKind::kNe, start, "", 2);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, start, "", 2);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at " + LocationText(line_starts, start));
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.span = SpanFor(line_starts, n, 1);
  tokens.push_back(end);
  return tokens;
}

}  // namespace mql
}  // namespace mad
