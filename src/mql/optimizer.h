#ifndef MAD_MQL_OPTIMIZER_H_
#define MAD_MQL_OPTIMIZER_H_

#include "expr/expr.h"
#include "molecule/description.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {
namespace mql {

/// A WHERE predicate split into the part decidable on the root atom alone
/// and the residual part needing the full molecule. Either side may be
/// null.
struct SplitPredicate {
  expr::ExprPtr root_only;
  expr::ExprPtr residual;
};

/// Splits the top-level conjunction of `predicate`: a conjunct whose
/// attribute references all resolve to the description's root node can be
/// evaluated *before* deriving the molecule — the restriction-pushdown
/// rewrite the paper's outlook anticipates ("exploit the algebra to ...
/// enhance query transformation and query optimization"). Anything else
/// (disjunctions over mixed nodes, non-root references) stays residual.
Result<SplitPredicate> SplitRootConjuncts(const Database& db,
                                          const MoleculeDescription& md,
                                          const expr::ExprPtr& predicate);

/// True iff every attribute reference in `node` binds to the root node of
/// `md` (explicitly or as an unambiguous unqualified reference).
Result<bool> IsRootOnly(const Database& db, const MoleculeDescription& md,
                        const expr::Expr& node);

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_OPTIMIZER_H_
