#ifndef MAD_MQL_OPTIMIZER_H_
#define MAD_MQL_OPTIMIZER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/value.h"
#include "expr/expr.h"
#include "molecule/description.h"
#include "storage/database.h"
#include "storage/index.h"
#include "util/result.h"

namespace mad {
namespace mql {

/// The WHERE conjuncts decidable on one description node alone, AND-joined
/// in their original order. The derivation engine evaluates the predicate
/// the moment the node's group completes, rejecting the molecule before
/// downstream nodes expand.
struct NodeFilter {
  size_t node_index = 0;
  expr::ExprPtr predicate;
};

/// A root equality conjunct `root.attr = literal` matched against an
/// existing AttributeIndex: derivation seeds its root set from the index
/// bucket instead of scanning the whole occurrence. The root's node filter
/// still verifies the conjunct, so the seed only narrows the fan-out.
struct IndexSeed {
  const AttributeIndex* index = nullptr;
  std::string attribute;
  Value value;
};

/// A WHERE predicate split for qualification pushdown (the restriction
/// rewrite the paper's outlook anticipates: "exploit the algebra to ...
/// enhance query transformation and query optimization").
struct PushdownPlan {
  /// Single-node conjuncts, grouped per node, ascending node index. The
  /// root node's filter (if any) is an ordinary entry.
  std::vector<NodeFilter> node_filters;
  /// Conjuncts needing more than one node (plus constants), AND-joined in
  /// original order; null when everything was pushed.
  expr::ExprPtr residual;
  /// Root-index seed, when a usable equality conjunct exists.
  std::optional<IndexSeed> seed;

  bool HasPushdown() const {
    return !node_filters.empty() || seed.has_value();
  }
};

/// Splits the top-level conjunction of `predicate` per description node: a
/// conjunct whose references (attributes, COUNT and FORALL quantifiers) all
/// bind to one node becomes that node's filter; everything else — mixed
/// conjuncts, disjunctions over several nodes, constants — stays residual.
/// A null predicate yields an empty plan.
Result<PushdownPlan> PlanPredicatePushdown(const Database& db,
                                           const MoleculeDescription& md,
                                           const expr::ExprPtr& predicate);

/// Description node indices referenced by `node` — attribute references
/// plus COUNT/FORALL quantifiers — sorted and unique. Resolution mirrors
/// the qualification rules (label first, unique type name, unique
/// unqualified attribute), so a predicate the qualifier accepts always
/// classifies.
Result<std::vector<size_t>> ReferencedNodes(const Database& db,
                                            const MoleculeDescription& md,
                                            const expr::Expr& node);

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_OPTIMIZER_H_
