#ifndef MAD_MQL_AST_H_
#define MAD_MQL_AST_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "catalog/link_type.h"
#include "core/data_type.h"
#include "core/value.h"
#include "expr/expr.h"
#include "mql/diag.h"

namespace mad {
namespace mql {

/// Source spans of expression nodes, keyed by node identity. expr::Expr is
/// shared with the algebra layer, so spans ride alongside the tree instead
/// of inside it; ExprPtr sharing keeps the keys alive as long as the
/// statement. Nodes without an entry render span-less diagnostics.
using ExprSpanMap = std::map<const expr::Expr*, SourceSpan>;

/// A molecule structure expression from a FROM clause, e.g.
/// `point-edge-(area-state,net-river)` or `part-[composition*]`.
///
/// Connectors: `-` uses the unique link type between the adjacent atom
/// types; `-[lname]-` names it explicitly. Inside the brackets a trailing
/// `~` flips the traversal to second-role -> first-role (needed for
/// reflexive link types) and a trailing `*` makes the step recursive
/// (transitive closure; the branch then has no target node).
struct StructureNode {
  struct Branch {
    std::optional<std::string> link;  ///< explicit link-type name
    bool reverse = false;             ///< '~' flag
    bool recursive = false;           ///< '*' flag (child is null)
    int recursive_depth = -1;         ///< '*N' bounds the depth; -1 unbounded
    std::unique_ptr<StructureNode> child;
    SourceSpan link_span;  ///< the `[lname...]` token, or the connector '-'
  };

  std::string atom;
  std::vector<Branch> branches;
  SourceSpan span;  ///< the atom-type identifier token
};

/// FROM clause: an optional molecule-type name plus either an inline
/// structure (`mt_state(state-area-edge-point)` / bare structure) or — when
/// the structure degenerates to a single identifier — a reference the
/// session resolves against registered molecule types first and atom types
/// second.
struct FromClause {
  std::string molecule_name;  ///< empty for anonymous queries
  std::unique_ptr<StructureNode> structure;
  SourceSpan name_span;  ///< the registration name, when present
};

/// One SELECT list item: a node label (`state`), a narrowed attribute
/// (`state.name`), or an explicit whole-node `state.*`.
struct ProjectionItem {
  std::string label;
  std::optional<std::string> attribute;  ///< nullopt means the whole node
  SourceSpan label_span;
  SourceSpan attr_span;
};

/// SELECT [ALL | items] FROM from [WHERE predicate].
struct SelectStatement {
  bool select_all = true;
  std::vector<ProjectionItem> items;
  FromClause from;
  expr::ExprPtr where;  ///< null when absent
  ExprSpanMap expr_spans;
};

/// CREATE ATOM TYPE name (attr TYPE, ...).
struct CreateAtomTypeStatement {
  std::string name;
  std::vector<std::pair<std::string, DataType>> attributes;
  SourceSpan name_span;
  std::vector<SourceSpan> attribute_spans;  ///< parallel to `attributes`
};

/// CREATE LINK TYPE name (first, second [, '1:1'|'1:n'|'n:1'|'n:m']).
struct CreateLinkTypeStatement {
  std::string name;
  std::string first;
  std::string second;
  LinkCardinality cardinality = LinkCardinality::kManyToMany;
  SourceSpan name_span;
  SourceSpan first_span;
  SourceSpan second_span;
};

/// INSERT INTO type VALUES (v, ...)[, (v, ...)]*.
struct InsertAtomStatement {
  std::string atom_type;
  std::vector<std::vector<Value>> rows;
  SourceSpan type_span;
  std::vector<SourceSpan> row_spans;  ///< each row's '(' token
  std::vector<std::vector<SourceSpan>> value_spans;  ///< parallel to `rows`
};

/// INSERT LINK lname FROM (pred) TO (pred): links every first-role atom
/// matching the first predicate to every second-role atom matching the
/// second.
struct InsertLinkStatement {
  std::string link_type;
  expr::ExprPtr first_predicate;
  expr::ExprPtr second_predicate;
  SourceSpan link_span;
  ExprSpanMap expr_spans;
};

/// DELETE FROM type WHERE pred (links cascade, Def. 2's integrity).
struct DeleteStatement {
  std::string atom_type;
  expr::ExprPtr predicate;  ///< null deletes everything
  SourceSpan type_span;
  ExprSpanMap expr_spans;
};

/// UPDATE type SET attr = expr, ... [WHERE pred]. Assignment expressions
/// are evaluated against the pre-update atom.
struct UpdateStatement {
  std::string atom_type;
  std::vector<std::pair<std::string, expr::ExprPtr>> assignments;
  expr::ExprPtr predicate;  ///< null updates everything
  SourceSpan type_span;
  std::vector<SourceSpan> assignment_spans;  ///< target attrs, parallel
  ExprSpanMap expr_spans;
};

/// EXPLAIN <select>: prints the molecule-algebra translation instead of
/// executing it — the Ch. 4 correspondence made inspectable. With
/// `analyze` (EXPLAIN ANALYZE <select>) the query IS executed under a
/// QueryTrace and the result carries the plan plus the recorded operator
/// span tree with wall times and cardinalities.
struct ExplainStatement {
  SelectStatement select;
  bool analyze = false;
};

/// SHOW METRICS: reports a snapshot of the process-wide metrics registry
/// (util/metrics.h) — counters, gauges, and latency histograms.
struct ShowMetricsStatement {};

/// SET option [=] value: a session tuning command, e.g. `SET PARALLELISM 4`
/// or `SET SYNC ON`. The option name is a case-insensitive identifier
/// interpreted by the session; values are non-negative integers, with
/// ON/OFF accepted as spellings of 1/0.
struct SetOptionStatement {
  std::string option;
  int64_t value = 0;
  SourceSpan option_span;
  SourceSpan value_span;
};

/// OPEN '<directory>': attaches the session to a durable database
/// directory, recovering its state (storage/durable_database.h). Subsequent
/// mutations are write-ahead logged there.
struct OpenStatement {
  std::string directory;
};

/// CHECKPOINT: forces a new checkpoint generation of the open durable
/// database.
struct CheckpointStatement {};

struct StatementBox;

/// CHECK <statement>: runs the semantic analyzer over the inner statement
/// and reports its diagnostics without executing anything — the MQL spelling
/// of `mql_lint` for one statement. The box indirection lets the variant
/// hold its own alias.
struct CheckStatement {
  std::shared_ptr<StatementBox> inner;
};

using Statement =
    std::variant<SelectStatement, CreateAtomTypeStatement,
                 CreateLinkTypeStatement, InsertAtomStatement,
                 InsertLinkStatement, DeleteStatement, UpdateStatement,
                 ExplainStatement, ShowMetricsStatement, SetOptionStatement,
                 OpenStatement, CheckpointStatement, CheckStatement>;

struct StatementBox {
  Statement value;
};

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_AST_H_
