#include "mql/sema.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <set>
#include <utility>

#include "catalog/atom_type.h"
#include "catalog/link_type.h"
#include "core/data_type.h"
#include "core/schema.h"
#include "expr/expr.h"
#include "util/string_util.h"

namespace mad {
namespace mql {

const std::vector<std::string>& KnownSessionOptions() {
  static const std::vector<std::string> kOptions = {"PARALLELISM", "SYNC",
                                                    "TRACE"};
  return kOptions;
}

namespace {

using expr::Expr;
using expr::ExprPtr;

Diagnostic& Emit(std::vector<Diagnostic>* out, DiagId id, std::string message,
                 SourceSpan span) {
  Diagnostic d;
  d.id = id;
  d.message = std::move(message);
  d.span = span;
  out->push_back(std::move(d));
  return out->back();
}

std::string Join(const std::vector<std::string>& parts) {
  std::string joined;
  for (const std::string& part : parts) {
    if (!joined.empty()) joined += ", ";
    joined += part;
  }
  return joined;
}

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

std::vector<std::string> AtomTypeNames(const Database& db) {
  std::vector<std::string> names;
  for (const AtomType* at : db.atom_types()) names.push_back(at->name());
  return names;
}

std::vector<std::string> LinkTypeNames(const Database& db) {
  std::vector<std::string> names;
  for (const LinkType* lt : db.link_types()) names.push_back(lt->name());
  return names;
}

std::vector<std::string> SchemaAttrNames(const Schema& schema) {
  std::vector<std::string> names;
  for (const AttributeDescription& ad : schema.attributes())
    names.push_back(ad.name);
  return names;
}

// ---- Scope model ------------------------------------------------------------

/// One node visible to qualification formulas: a description node (molecule
/// scope), the single atom type (atom scope), or root/member (recursive
/// scope). `schema == nullptr` means the atom type is unknown — already
/// reported — so lookups through it stay silent instead of cascading.
struct ScopeNode {
  std::string label;
  std::string type_name;
  const Schema* schema = nullptr;
  const std::vector<std::string>* narrowing = nullptr;  ///< null = all visible
  SourceSpan span;
};

enum class ScopeKind { kAtom, kMolecule, kRecursive };

bool NarrowedAway(const ScopeNode& node, const std::string& attr) {
  return node.narrowing != nullptr &&
         std::find(node.narrowing->begin(), node.narrowing->end(), attr) ==
             node.narrowing->end();
}

/// Mirror of MoleculeDescription::ResolveQualifier: exact label first, then
/// a unique type-name match. Emits MQL0104/MQL0109 on failure.
std::optional<size_t> ResolveScopeQualifier(const std::vector<ScopeNode>& nodes,
                                            const std::string& qualifier,
                                            SourceSpan span,
                                            std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].label == qualifier) return i;
  }
  std::vector<size_t> matches;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].type_name == qualifier) matches.push_back(i);
  }
  if (matches.size() == 1) return matches[0];
  if (matches.size() > 1) {
    Emit(out, DiagId::kAmbiguousQualifier,
         "qualifier '" + qualifier + "' matches several nodes; use a label",
         span);
  } else {
    Diagnostic& d = Emit(
        out, DiagId::kUnknownQualifier,
        "qualifier '" + qualifier +
            "' matches no node of the molecule description",
        span);
    std::vector<std::string> candidates;
    for (const ScopeNode& node : nodes) {
      candidates.push_back(node.label);
      if (node.type_name != node.label) candidates.push_back(node.type_name);
    }
    AddSuggestion(&d, qualifier, candidates);
  }
  return std::nullopt;
}

// ---- Expression analysis ----------------------------------------------------

bool ContainsForAll(const Expr& e) {
  if (e.kind() == Expr::Kind::kForAll) return true;
  if (e.left() != nullptr && ContainsForAll(*e.left())) return true;
  if (e.right() != nullptr && ContainsForAll(*e.right())) return true;
  return false;
}

/// Walks a qualification formula against a scope, mirroring what
/// eval.cc / qualification.cc reject eagerly (unknown names, misplaced
/// aggregates, non-predicates) plus the type errors they only hit lazily
/// per-atom (comparison and arithmetic over statically known types).
class ExprAnalyzer {
 public:
  struct UsedAttr {
    size_t node;  ///< index into the scope
    std::string attribute;
    SourceSpan span;
  };

  ExprAnalyzer(ScopeKind kind, const std::vector<ScopeNode>& nodes,
               const ExprSpanMap* spans, std::vector<Diagnostic>* out)
      : kind_(kind), nodes_(nodes), spans_(spans), out_(out) {}

  void CheckPredicate(const ExprPtr& e) {
    if (e != nullptr) Check(*e);
  }

  /// Value position (UPDATE assignments): inferred type, nullopt when
  /// unknown or already diagnosed.
  std::optional<DataType> CheckValue(const ExprPtr& e) {
    if (e == nullptr) return std::nullopt;
    return Infer(*e);
  }

  const std::vector<UsedAttr>& used_attrs() const { return used_attrs_; }
  const std::set<std::string>& used_labels() const { return used_labels_; }

 private:
  SourceSpan Span(const Expr& e) const {
    if (spans_ == nullptr) return SourceSpan{};
    auto it = spans_->find(&e);
    return it == spans_->end() ? SourceSpan{} : it->second;
  }

  void Check(const Expr& e) {
    switch (e.kind()) {
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
        Check(*e.left());
        Check(*e.right());
        return;
      case Expr::Kind::kNot:
        Check(*e.left());
        return;
      case Expr::Kind::kForAll:
        CheckForAll(e);
        return;
      case Expr::Kind::kArith:
      case Expr::Kind::kCount:
        Infer(e);  // still surface operand and scope errors underneath
        Emit(out_, DiagId::kNonBooleanPredicate,
             "expression " + e.ToString() + " is not a predicate", Span(e));
        return;
      default: {
        std::optional<DataType> t = Infer(e);
        if (t.has_value() && *t != DataType::kBool) {
          Emit(out_, DiagId::kNonBooleanPredicate,
               "expression " + e.ToString() +
                   " is not a predicate (it evaluates to " +
                   DataTypeName(*t) + ")",
               Span(e));
        }
        return;
      }
    }
  }

  std::optional<DataType> Infer(const Expr& e) {
    switch (e.kind()) {
      case Expr::Kind::kLiteral:
        return e.literal().type();
      case Expr::Kind::kAttrRef: {
        auto resolved = ResolveAttr(e);
        if (!resolved.has_value()) return std::nullopt;
        used_labels_.insert(nodes_[resolved->first].label);
        used_attrs_.push_back(UsedAttr{resolved->first, e.attribute(), Span(e)});
        return resolved->second;
      }
      case Expr::Kind::kCompare: {
        std::optional<DataType> l = Infer(*e.left());
        std::optional<DataType> r = Infer(*e.right());
        if (l.has_value() && r.has_value() && *l != DataType::kNull &&
            *r != DataType::kNull && *l != *r &&
            !(IsNumeric(*l) && IsNumeric(*r))) {
          Emit(out_, DiagId::kComparisonTypeMismatch,
               std::string("cannot compare ") + DataTypeName(*l) + " with " +
                   DataTypeName(*r),
               Span(e));
        }
        return DataType::kBool;
      }
      case Expr::Kind::kArith: {
        std::optional<DataType> l = Infer(*e.left());
        std::optional<DataType> r = Infer(*e.right());
        bool bad = false;
        auto flag = [&](const std::optional<DataType>& t, const Expr& side) {
          if (t.has_value() && !IsNumeric(*t)) {
            bad = true;
            Emit(out_, DiagId::kNonNumericArithmetic,
                 "operand " + side.ToString() + " is not numeric (it has type " +
                     DataTypeName(*t) + ")",
                 Span(side).known() ? Span(side) : Span(e));
          }
        };
        flag(l, *e.left());
        flag(r, *e.right());
        if (bad) return std::nullopt;
        if (l.has_value() && r.has_value()) {
          return (*l == DataType::kInt64 && *r == DataType::kInt64)
                     ? DataType::kInt64
                     : DataType::kDouble;
        }
        return std::nullopt;
      }
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
        Check(*e.left());
        Check(*e.right());
        return DataType::kBool;
      case Expr::Kind::kNot:
        Check(*e.left());
        return DataType::kBool;
      case Expr::Kind::kCount: {
        if (kind_ != ScopeKind::kMolecule) {
          Emit(out_, DiagId::kAggregateInAtomScope,
               "COUNT(" + e.qualifier() +
                   ") is only valid in molecule-scope qualification",
               Span(e));
          return DataType::kInt64;
        }
        auto idx = ResolveScopeQualifier(nodes_, e.qualifier(), Span(e), out_);
        if (idx.has_value()) used_labels_.insert(nodes_[*idx].label);
        return DataType::kInt64;
      }
      case Expr::Kind::kForAll:
        return CheckForAll(e);
    }
    return std::nullopt;
  }

  DataType CheckForAll(const Expr& e) {
    if (kind_ != ScopeKind::kMolecule) {
      Emit(out_, DiagId::kAggregateInAtomScope,
           "FORALL " + e.qualifier() +
               ": quantifiers are only valid in molecule-scope qualification",
           Span(e));
      return DataType::kBool;
    }
    auto idx = ResolveScopeQualifier(nodes_, e.qualifier(), Span(e), out_);
    if (idx.has_value()) used_labels_.insert(nodes_[*idx].label);
    if (ContainsForAll(*e.left())) {
      Emit(out_, DiagId::kNestedForAll, "nested FORALL is not supported",
           Span(e));
      return DataType::kBool;
    }
    const size_t before = used_attrs_.size();
    Check(*e.left());
    if (idx.has_value()) {
      const std::string& label = nodes_[*idx].label;
      for (size_t i = before; i < used_attrs_.size(); ++i) {
        const UsedAttr& ua = used_attrs_[i];
        if (nodes_[ua.node].label == label) continue;
        Emit(out_, DiagId::kForAllForeignReference,
             "FORALL " + label + ": predicate may only reference '" + label +
                 "', found '" + nodes_[ua.node].label + "." + ua.attribute +
                 "'",
             ua.span);
      }
    }
    return DataType::kBool;
  }

  /// Resolves an attribute reference to (scope index, declared type).
  std::optional<std::pair<size_t, DataType>> ResolveAttr(const Expr& e) {
    const SourceSpan span = Span(e);
    const std::string& qualifier = e.qualifier();
    const std::string& attr = e.attribute();
    switch (kind_) {
      case ScopeKind::kAtom: {
        if (!qualifier.empty() && qualifier != nodes_[0].type_name) {
          Emit(out_, DiagId::kQualifierTypeMismatch,
               "qualifier '" + qualifier + "' does not match atom type '" +
                   nodes_[0].type_name + "'",
               span);
          return std::nullopt;
        }
        return LookupInNode(0, attr, span);
      }
      case ScopeKind::kRecursive: {
        size_t idx = 1;  // the recursion member, qualifiers default to it
        if (!qualifier.empty()) {
          if (qualifier == "root") {
            idx = 0;
          } else if (qualifier == nodes_[1].type_name) {
            idx = 1;
          } else {
            Emit(out_, DiagId::kInvalidRecursiveQualifier,
                 "recursive queries allow the qualifiers 'root' and '" +
                     nodes_[1].type_name + "'; found '" + qualifier + "'",
                 span);
            return std::nullopt;
          }
        }
        return LookupInNode(idx, attr, span);
      }
      case ScopeKind::kMolecule: {
        if (!qualifier.empty()) {
          auto idx = ResolveScopeQualifier(nodes_, qualifier, span, out_);
          if (!idx.has_value()) return std::nullopt;
          return LookupInNode(*idx, attr, span);
        }
        // Unqualified: a unique node where the attribute is visible.
        std::vector<size_t> hits;
        bool unknown_schema = false;
        for (size_t i = 0; i < nodes_.size(); ++i) {
          if (nodes_[i].schema == nullptr) {
            unknown_schema = true;
            continue;
          }
          if (nodes_[i].schema->HasAttribute(attr) &&
              !NarrowedAway(nodes_[i], attr)) {
            hits.push_back(i);
          }
        }
        if (hits.size() == 1) {
          return std::make_pair(
              hits[0],
              nodes_[hits[0]]
                  .schema->attribute(*nodes_[hits[0]].schema->IndexOf(attr))
                  .type);
        }
        if (hits.size() > 1) {
          Diagnostic& d = Emit(
              out_, DiagId::kAmbiguousAttribute,
              "ambiguous attribute '" + attr +
                  "' (qualify it with a node label)",
              span);
          std::vector<std::string> labels;
          for (size_t i : hits) labels.push_back(nodes_[i].label);
          d.notes.push_back(DiagNote{"candidates: " + Join(labels), {}});
          return std::nullopt;
        }
        if (unknown_schema) return std::nullopt;  // don't cascade
        Diagnostic& d = Emit(
            out_, DiagId::kUnknownAttribute,
            "attribute '" + attr + "' occurs in no node of the description",
            span);
        std::vector<std::string> candidates;
        for (const ScopeNode& node : nodes_) {
          for (const AttributeDescription& ad : node.schema->attributes()) {
            if (!NarrowedAway(node, ad.name)) candidates.push_back(ad.name);
          }
        }
        AddSuggestion(&d, attr, candidates);
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  std::optional<std::pair<size_t, DataType>> LookupInNode(size_t idx,
                                                          const std::string& attr,
                                                          SourceSpan span) {
    const ScopeNode& node = nodes_[idx];
    if (node.schema == nullptr) return std::nullopt;  // already reported
    if (!node.schema->HasAttribute(attr)) {
      Diagnostic& d =
          (kind_ == ScopeKind::kMolecule)
              ? Emit(out_, DiagId::kUnknownAttribute,
                     "node '" + node.label + "' has no attribute '" + attr +
                         "'",
                     span)
              : Emit(out_, DiagId::kUnknownAttribute,
                     "unknown attribute '" + attr + "' in atom type '" +
                         node.type_name + "'",
                     span);
      AddSuggestion(&d, attr, SchemaAttrNames(*node.schema));
      return std::nullopt;
    }
    if (NarrowedAway(node, attr)) {
      Emit(out_, DiagId::kUnknownAttribute,
           "attribute '" + attr + "' was projected away from node '" +
               node.label + "'",
           span);
      return std::nullopt;
    }
    return std::make_pair(idx,
                          node.schema->attribute(*node.schema->IndexOf(attr))
                              .type);
  }

  ScopeKind kind_;
  const std::vector<ScopeNode>& nodes_;
  const ExprSpanMap* spans_;
  std::vector<Diagnostic>* out_;
  std::vector<UsedAttr> used_attrs_;
  std::set<std::string> used_labels_;
};

// ---- Structure walking ------------------------------------------------------

struct StructureInfo {
  std::vector<ScopeNode> scope;  ///< unique labels, first-occurrence order
  std::vector<DescNode> nodes;   ///< every occurrence, for the graph check
  std::vector<DescLink> links;
};

/// Mirrors translator.cc's Collect + description.cc's link orientation
/// checks, emitting diagnostics instead of stopping at the first problem.
void WalkStructure(const Database& db, const StructureNode& node,
                   StructureInfo* info, std::vector<Diagnostic>* out) {
  info->nodes.push_back(DescNode{node.atom, node.atom, node.span});
  const Schema* schema = nullptr;
  if (auto at = db.GetAtomType(node.atom); at.ok()) {
    schema = &(*at)->description();
  } else {
    Diagnostic& d = Emit(out, DiagId::kUnknownAtomType,
                         "atom type '" + node.atom + "' not defined",
                         node.span);
    AddSuggestion(&d, node.atom, AtomTypeNames(db));
  }
  const bool first_occurrence =
      std::none_of(info->scope.begin(), info->scope.end(),
                   [&](const ScopeNode& n) { return n.label == node.atom; });
  if (first_occurrence) {
    info->scope.push_back(
        ScopeNode{node.atom, node.atom, schema, nullptr, node.span});
  }

  for (const StructureNode::Branch& branch : node.branches) {
    if (branch.recursive || branch.child == nullptr) {
      Emit(out, DiagId::kMisplacedRecursion,
           "a recursive step must be the only step of the structure",
           branch.link_span);
      continue;
    }
    const StructureNode& child = *branch.child;
    const bool endpoints_known =
        db.HasAtomType(node.atom) && db.HasAtomType(child.atom);
    std::string link_name;
    if (branch.link.has_value()) {
      link_name = *branch.link;
      auto lt = db.GetLinkType(link_name);
      if (!lt.ok()) {
        Diagnostic& d = Emit(out, DiagId::kUnknownLinkType,
                             "link type '" + link_name + "' not defined",
                             branch.link_span);
        AddSuggestion(&d, link_name, LinkTypeNames(db));
      } else if (endpoints_known) {
        const LinkType* l = *lt;
        const bool forward = l->first_atom_type() == node.atom &&
                             l->second_atom_type() == child.atom;
        const bool backward = l->first_atom_type() == child.atom &&
                              l->second_atom_type() == node.atom;
        if (l->reflexive()) {
          if (!forward) {
            Emit(out, DiagId::kLinkDirectionMismatch,
                 "reflexive link type '" + link_name +
                     "' does not connect node types '" + node.atom +
                     "' and '" + child.atom + "'",
                 branch.link_span);
          }
        } else if (!forward && !backward) {
          Emit(out, DiagId::kLinkDirectionMismatch,
               "link type '" + link_name + "' connects <" +
                   l->first_atom_type() + ", " + l->second_atom_type() +
                   ">, not <" + node.atom + ", " + child.atom + ">",
               branch.link_span);
        }
      }
    } else if (endpoints_known) {
      std::vector<std::string> candidates;
      for (const LinkType* l : db.link_types()) {
        const bool forward = l->first_atom_type() == node.atom &&
                             l->second_atom_type() == child.atom;
        const bool backward = l->first_atom_type() == child.atom &&
                              l->second_atom_type() == node.atom;
        if (forward || backward) candidates.push_back(l->name());
      }
      if (candidates.empty()) {
        Emit(out, DiagId::kNoConnectingLinkType,
             "no link type connects '" + node.atom + "' and '" + child.atom +
                 "'",
             branch.link_span);
      } else if (candidates.size() > 1) {
        Emit(out, DiagId::kAmbiguousImplicitLink,
             "several link types connect '" + node.atom + "' and '" +
                 child.atom + "' (" + Join(candidates) +
                 "); name one with -[link]-",
             branch.link_span);
      } else {
        link_name = candidates[0];
      }
    }
    info->links.push_back(DescLink{link_name.empty() ? "-" : link_name,
                                   node.atom, child.atom, branch.link_span});
    WalkStructure(db, child, info, out);
  }
}

}  // namespace

// ---- Def. 5 graph checking --------------------------------------------------

void CheckDescriptionGraph(const std::vector<DescNode>& nodes,
                           const std::vector<DescLink>& links,
                           std::vector<Diagnostic>* out) {
  if (nodes.empty()) return;

  // C is a set: duplicate labels (MQL0201).
  std::map<std::string, size_t> first;
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto [it, inserted] = first.insert({nodes[i].label, i});
    if (!inserted) {
      Diagnostic& d =
          Emit(out, DiagId::kDuplicateStructureAtom,
               "node '" + nodes[i].label +
                   "' occurs twice in the molecule description (Def. 5: C is "
                   "a set)",
               nodes[i].span);
      d.notes.push_back(
          DiagNote{"first occurrence is here", nodes[it->second].span});
    }
  }

  // Unique labels in first-occurrence order, for deterministic reports.
  std::vector<std::string> order;
  {
    std::vector<std::pair<size_t, std::string>> tmp;
    for (const auto& [label, idx] : first) tmp.push_back({idx, label});
    std::sort(tmp.begin(), tmp.end());
    for (auto& [idx, label] : tmp) order.push_back(std::move(label));
  }

  std::map<std::string, std::vector<std::string>> succ, pred, und;
  for (const std::string& label : order) {
    succ[label];
    pred[label];
    und[label];
  }
  for (const DescLink& l : links) {
    if (first.count(l.from) == 0 || first.count(l.to) == 0) continue;
    succ[l.from].push_back(l.to);
    pred[l.to].push_back(l.from);
    und[l.from].push_back(l.to);
    und[l.to].push_back(l.from);
  }

  // Acyclicity (MQL0205), via Kahn's algorithm; leftovers sit on or behind
  // a cycle, and walking predecessors inside the leftover set must revisit
  // a node — that revisit names a concrete cycle.
  std::map<std::string, size_t> indeg;
  for (const std::string& label : order) indeg[label] = pred[label].size();
  std::vector<std::string> ready;
  for (const std::string& label : order) {
    if (indeg[label] == 0) ready.push_back(label);
  }
  size_t removed = 0;
  while (!ready.empty()) {
    std::string cur = ready.back();
    ready.pop_back();
    ++removed;
    for (const std::string& next : succ[cur]) {
      if (--indeg[next] == 0) ready.push_back(next);
    }
  }
  if (removed < order.size()) {
    std::set<std::string> leftover;
    for (const std::string& label : order) {
      if (indeg[label] > 0) leftover.insert(label);
    }
    std::string start;
    for (const std::string& label : order) {
      if (leftover.count(label) > 0) {
        start = label;
        break;
      }
    }
    std::vector<std::string> path{start};
    std::map<std::string, size_t> pos{{start, 0}};
    std::vector<std::string> cycle;
    std::string cur = start;
    while (true) {
      const std::string* back = nullptr;
      for (const std::string& p : pred[cur]) {
        if (leftover.count(p) > 0) {
          back = &p;
          break;
        }
      }
      if (back == nullptr) break;  // unreachable: leftover indegrees > 0
      auto hit = pos.find(*back);
      if (hit != pos.end()) {
        // path[hit..end] walked backwards is a forward cycle.
        cycle.push_back(path[hit->second]);
        for (size_t i = path.size(); i-- > hit->second + 1;) {
          cycle.push_back(path[i]);
        }
        cycle.push_back(path[hit->second]);
        break;
      }
      pos[*back] = path.size();
      path.push_back(*back);
      cur = *back;
    }
    std::string rendered;
    for (const std::string& label : cycle) {
      if (!rendered.empty()) rendered += " -> ";
      rendered += label;
    }
    Emit(out, DiagId::kCyclicDescription,
         "the description graph has a cycle (" + rendered +
             "); Def. 5 requires a DAG",
         cycle.empty() ? SourceSpan{} : nodes[first[cycle[0]]].span);
  }

  // Coherence (MQL0207): one weakly connected component.
  std::map<std::string, size_t> comp;
  std::vector<std::string> representatives;
  for (const std::string& label : order) {
    if (comp.count(label) > 0) continue;
    const size_t id = representatives.size();
    representatives.push_back(label);
    std::vector<std::string> stack{label};
    comp[label] = id;
    while (!stack.empty()) {
      std::string cur = stack.back();
      stack.pop_back();
      for (const std::string& next : und[cur]) {
        if (comp.insert({next, id}).second) stack.push_back(next);
      }
    }
  }
  if (representatives.size() > 1) {
    Diagnostic& d =
        Emit(out, DiagId::kIncoherentDescription,
             "the description is not coherent: it falls apart into " +
                 std::to_string(representatives.size()) +
                 " disconnected components (Def. 5)",
             nodes[first[representatives[1]]].span);
    d.notes.push_back(DiagNote{"unconnected with this node",
                               nodes[first[representatives[0]]].span});
  }

  // Single root (MQL0206), per component so a cyclic component reports
  // only its cycle and a second component only the coherence failure.
  for (size_t id = 0; id < representatives.size(); ++id) {
    std::vector<std::string> roots;
    for (const std::string& label : order) {
      if (comp[label] == id && pred[label].empty()) roots.push_back(label);
    }
    if (roots.size() > 1) {
      Diagnostic& d = Emit(
          out, DiagId::kMultipleRoots,
          "the description has " + std::to_string(roots.size()) + " roots (" +
              Join(roots) + "); Def. 5 requires exactly one",
          nodes[first[roots[1]]].span);
      d.notes.push_back(
          DiagNote{"first root is here", nodes[first[roots[0]]].span});
    }
  }
}

// ---- Per-statement analysis -------------------------------------------------

namespace {

using Registry = std::map<std::string, MoleculeDescription>;

void BuildScopeFromDescription(const Database& db,
                               const MoleculeDescription& md,
                               std::vector<ScopeNode>* scope,
                               std::vector<std::pair<std::string, std::string>>*
                                   label_links) {
  for (const MoleculeNode& node : md.nodes()) {
    const Schema* schema = nullptr;
    if (auto at = db.GetAtomType(node.type_name); at.ok()) {
      schema = &(*at)->description();
    }
    scope->push_back(ScopeNode{
        node.label, node.type_name, schema,
        node.attributes.has_value() ? &*node.attributes : nullptr,
        SourceSpan{}});
  }
  for (const DirectedLink& link : md.links()) {
    label_links->push_back({link.from, link.to});
  }
}

void AnalyzeRecursiveSelect(const Database& db, const SelectStatement& stmt,
                            std::vector<Diagnostic>* out) {
  const StructureNode& root = *stmt.from.structure;
  const StructureNode::Branch& rb = root.branches[0];

  const Schema* schema = nullptr;
  if (auto at = db.GetAtomType(root.atom); at.ok()) {
    schema = &(*at)->description();
  } else {
    Diagnostic& d = Emit(out, DiagId::kUnknownAtomType,
                         "atom type '" + root.atom + "' not defined",
                         root.span);
    AddSuggestion(&d, root.atom, AtomTypeNames(db));
  }

  if (!rb.link.has_value()) {
    // The parser always names the link; mirror the translator's guard.
    Emit(out, DiagId::kMisplacedRecursion,
         "recursive steps need an explicit link name: atom-[link*]",
         rb.link_span);
  } else {
    auto lt = db.GetLinkType(*rb.link);
    if (!lt.ok()) {
      Diagnostic& d = Emit(out, DiagId::kUnknownLinkType,
                           "link type '" + *rb.link + "' not defined",
                           rb.link_span);
      AddSuggestion(&d, *rb.link, LinkTypeNames(db));
    } else if (schema != nullptr) {
      const LinkType* l = *lt;
      if (!l->reflexive() || l->first_atom_type() != root.atom) {
        Emit(out, DiagId::kNonReflexiveRecursion,
             "recursive derivation needs a reflexive link type on '" +
                 root.atom + "'; '" + l->name() + "' connects <" +
                 l->first_atom_type() + ", " + l->second_atom_type() + ">",
             rb.link_span);
      }
    }
  }

  if (rb.recursive_depth == 0) {
    Emit(out, DiagId::kZeroDepthRecursion,
         "recursion depth bound 0 derives only the root atom", rb.link_span);
  }
  if (!stmt.select_all) {
    Emit(out, DiagId::kRecursiveProjection,
         "recursive queries support SELECT ALL projections only",
         stmt.items.empty() ? root.span : stmt.items[0].label_span);
  }
  if (rb.child != nullptr) {
    StructureInfo tail;
    WalkStructure(db, *rb.child, &tail, out);
    CheckDescriptionGraph(tail.nodes, tail.links, out);
  }
  if (stmt.where != nullptr) {
    std::vector<ScopeNode> nodes;
    nodes.push_back(ScopeNode{"root", root.atom, schema, nullptr, root.span});
    nodes.push_back(
        ScopeNode{root.atom, root.atom, schema, nullptr, root.span});
    ExprAnalyzer analyzer(ScopeKind::kRecursive, nodes, &stmt.expr_spans, out);
    analyzer.CheckPredicate(stmt.where);
  }
}

void AnalyzeSelect(const Database& db, const Registry& registry,
                   const SelectStatement& stmt, std::vector<Diagnostic>* out) {
  if (stmt.from.structure == nullptr) return;
  const StructureNode& root = *stmt.from.structure;

  // MQL0501: registration names that shadow something (warning).
  if (!stmt.from.molecule_name.empty()) {
    const std::string& name = stmt.from.molecule_name;
    if (registry.count(name) > 0) {
      Emit(out, DiagId::kShadowedLabel,
           "registered molecule type '" + name +
               "' is redefined by this SELECT",
           stmt.from.name_span);
    } else if (db.HasAtomType(name)) {
      Emit(out, DiagId::kShadowedLabel,
           "molecule type '" + name + "' shadows the atom type '" + name +
               "'; a bare FROM " + name + " will now mean the molecule type",
           stmt.from.name_span);
    }
  }

  if (root.branches.size() == 1 && root.branches[0].recursive) {
    AnalyzeRecursiveSelect(db, stmt, out);
    return;
  }

  std::vector<ScopeNode> scope;
  std::vector<std::pair<std::string, std::string>> label_links;
  const bool bare = stmt.from.molecule_name.empty() && root.branches.empty();
  if (bare) {
    auto it = registry.find(root.atom);
    if (it != registry.end()) {
      BuildScopeFromDescription(db, it->second, &scope, &label_links);
    } else if (db.HasAtomType(root.atom)) {
      const Schema* schema = nullptr;
      if (auto at = db.GetAtomType(root.atom); at.ok()) {
        schema = &(*at)->description();
      }
      scope.push_back(
          ScopeNode{root.atom, root.atom, schema, nullptr, root.span});
    } else {
      Diagnostic& d = Emit(out, DiagId::kUnknownFromName,
                           "'" + root.atom +
                               "' names neither a registered molecule type "
                               "nor an atom type",
                           root.span);
      std::vector<std::string> candidates;
      for (const auto& [name, md] : registry) candidates.push_back(name);
      for (std::string& name : AtomTypeNames(db)) {
        candidates.push_back(std::move(name));
      }
      AddSuggestion(&d, root.atom, candidates);
      return;  // no scope — anything further would cascade
    }
  } else {
    StructureInfo info;
    WalkStructure(db, root, &info, out);
    CheckDescriptionGraph(info.nodes, info.links, out);
    scope = std::move(info.scope);
    for (const DescLink& link : info.links) {
      label_links.push_back({link.from, link.to});
    }
  }

  ExprAnalyzer analyzer(ScopeKind::kMolecule, scope, &stmt.expr_spans, out);
  if (stmt.where != nullptr) analyzer.CheckPredicate(stmt.where);

  // Projection items.
  std::set<std::string> kept;
  std::map<std::string, std::set<std::string>> narrowed;
  std::set<std::string> whole;
  if (!stmt.select_all) {
    for (const ProjectionItem& item : stmt.items) {
      auto idx = ResolveScopeQualifier(scope, item.label, item.label_span, out);
      if (!idx.has_value()) continue;
      const ScopeNode& node = scope[*idx];
      kept.insert(node.label);
      if (item.attribute.has_value()) {
        // Mirror MoleculeDescription::Create's narrowing validation; the
        // runtime checks against the atom type, not the current narrowing.
        if (node.schema != nullptr &&
            !node.schema->HasAttribute(*item.attribute)) {
          Diagnostic& d = Emit(out, DiagId::kUnknownAttribute,
                               "atom type '" + node.type_name +
                                   "' has no attribute '" + *item.attribute +
                                   "'",
                               item.attr_span);
          AddSuggestion(&d, *item.attribute, SchemaAttrNames(*node.schema));
        }
        narrowed[node.label].insert(*item.attribute);
      } else {
        whole.insert(node.label);
      }
    }
    for (const std::string& label : whole) narrowed.erase(label);
  }

  // MQL0503: the WHERE clause touches an attribute the SELECT list narrows
  // away — legal (restriction runs before projection), but worth a flag.
  if (!stmt.select_all) {
    for (const ExprAnalyzer::UsedAttr& ua : analyzer.used_attrs()) {
      const ScopeNode& node = scope[ua.node];
      auto it = narrowed.find(node.label);
      if (it != narrowed.end() && it->second.count(ua.attribute) == 0) {
        Emit(out, DiagId::kRestrictionOnNarrowedAttribute,
             "WHERE references '" + node.label + "." + ua.attribute +
                 "', which the SELECT list projects away (the restriction "
                 "still applies before projection)",
             ua.span);
      }
    }
  }

  // MQL0504: structure nodes that are neither projected, nor restricted,
  // nor needed to connect a used node to the root (projection closes over
  // ancestors, so ancestors of used nodes are load-bearing).
  if (!stmt.select_all && !kept.empty()) {
    std::set<std::string> closure = kept;
    for (const std::string& label : analyzer.used_labels()) {
      closure.insert(label);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [from, to] : label_links) {
        if (closure.count(to) > 0 && closure.insert(from).second) {
          changed = true;
        }
      }
    }
    for (const ScopeNode& node : scope) {
      if (closure.count(node.label) > 0) continue;
      Emit(out, DiagId::kUnusedStructureNode,
           "structure node '" + node.label +
               "' is not projected, not restricted, and not needed to "
               "connect projected nodes",
           node.span);
    }
  }
}

void AnalyzeCreateAtomType(const Database& db,
                           const CreateAtomTypeStatement& stmt,
                           std::vector<Diagnostic>* out) {
  if (db.HasAtomType(stmt.name)) {
    Emit(out, DiagId::kTypeAlreadyExists,
         "atom type '" + stmt.name + "' already defined", stmt.name_span);
  }
  std::map<std::string, size_t> seen;
  for (size_t i = 0; i < stmt.attributes.size(); ++i) {
    const std::string& attr = stmt.attributes[i].first;
    const SourceSpan span =
        i < stmt.attribute_spans.size() ? stmt.attribute_spans[i]
                                        : SourceSpan{};
    auto [it, inserted] = seen.insert({attr, i});
    if (!inserted) {
      Diagnostic& d = Emit(out, DiagId::kDuplicateAttribute,
                           "duplicate attribute '" + attr +
                               "' in atom type '" + stmt.name + "'",
                           span);
      if (it->second < stmt.attribute_spans.size()) {
        d.notes.push_back(DiagNote{"first declared here",
                                   stmt.attribute_spans[it->second]});
      }
    }
  }
}

void AnalyzeCreateLinkType(const Database& db,
                           const CreateLinkTypeStatement& stmt,
                           std::vector<Diagnostic>* out) {
  if (db.HasLinkType(stmt.name)) {
    Emit(out, DiagId::kTypeAlreadyExists,
         "link type '" + stmt.name + "' already defined", stmt.name_span);
  }
  auto check_endpoint = [&](const std::string& atom, SourceSpan span) {
    if (db.HasAtomType(atom)) return;
    Diagnostic& d = Emit(out, DiagId::kUnknownAtomType,
                         "atom type '" + atom + "' not defined", span);
    AddSuggestion(&d, atom, AtomTypeNames(db));
  };
  check_endpoint(stmt.first, stmt.first_span);
  check_endpoint(stmt.second, stmt.second_span);
}

void AnalyzeInsertAtom(const Database& db, const InsertAtomStatement& stmt,
                       std::vector<Diagnostic>* out) {
  auto at = db.GetAtomType(stmt.atom_type);
  if (!at.ok()) {
    Diagnostic& d = Emit(out, DiagId::kUnknownAtomType,
                         "atom type '" + stmt.atom_type + "' not defined",
                         stmt.type_span);
    AddSuggestion(&d, stmt.atom_type, AtomTypeNames(db));
    return;
  }
  const Schema& schema = (*at)->description();
  for (size_t i = 0; i < stmt.rows.size(); ++i) {
    const std::vector<Value>& row = stmt.rows[i];
    const SourceSpan row_span =
        i < stmt.row_spans.size() ? stmt.row_spans[i] : SourceSpan{};
    if (row.size() != schema.attribute_count()) {
      Emit(out, DiagId::kInsertArityMismatch,
           "row arity " + std::to_string(row.size()) +
               " does not match schema arity " +
               std::to_string(schema.attribute_count()),
           row_span);
      continue;
    }
    for (size_t j = 0; j < row.size(); ++j) {
      const Value& value = row[j];
      if (value.is_null() || value.type() == schema.attribute(j).type) {
        continue;
      }
      const SourceSpan span =
          (i < stmt.value_spans.size() && j < stmt.value_spans[i].size())
              ? stmt.value_spans[i][j]
              : row_span;
      Emit(out, DiagId::kValueTypeMismatch,
           "attribute '" + schema.attribute(j).name + "' expects " +
               DataTypeName(schema.attribute(j).type) + " but got " +
               DataTypeName(value.type()) + " (" + value.ToString() + ")",
           span);
    }
  }
}

void AnalyzeAtomPredicate(const Database& db, const std::string& atom_type,
                          const ExprPtr& predicate, const ExprSpanMap& spans,
                          std::vector<Diagnostic>* out) {
  if (predicate == nullptr) return;
  const Schema* schema = nullptr;
  if (auto at = db.GetAtomType(atom_type); at.ok()) {
    schema = &(*at)->description();
  }
  std::vector<ScopeNode> nodes{
      ScopeNode{atom_type, atom_type, schema, nullptr, SourceSpan{}}};
  ExprAnalyzer analyzer(ScopeKind::kAtom, nodes, &spans, out);
  analyzer.CheckPredicate(predicate);
}

void AnalyzeInsertLink(const Database& db, const InsertLinkStatement& stmt,
                       std::vector<Diagnostic>* out) {
  auto lt = db.GetLinkType(stmt.link_type);
  if (!lt.ok()) {
    Diagnostic& d = Emit(out, DiagId::kUnknownLinkType,
                         "link type '" + stmt.link_type + "' not defined",
                         stmt.link_span);
    AddSuggestion(&d, stmt.link_type, LinkTypeNames(db));
    return;
  }
  AnalyzeAtomPredicate(db, (*lt)->first_atom_type(), stmt.first_predicate,
                       stmt.expr_spans, out);
  AnalyzeAtomPredicate(db, (*lt)->second_atom_type(), stmt.second_predicate,
                       stmt.expr_spans, out);
}

void AnalyzeDelete(const Database& db, const DeleteStatement& stmt,
                   std::vector<Diagnostic>* out) {
  if (!db.HasAtomType(stmt.atom_type)) {
    Diagnostic& d = Emit(out, DiagId::kUnknownAtomType,
                         "atom type '" + stmt.atom_type + "' not defined",
                         stmt.type_span);
    AddSuggestion(&d, stmt.atom_type, AtomTypeNames(db));
    return;
  }
  AnalyzeAtomPredicate(db, stmt.atom_type, stmt.predicate, stmt.expr_spans,
                       out);
}

void AnalyzeUpdate(const Database& db, const UpdateStatement& stmt,
                   std::vector<Diagnostic>* out) {
  auto at = db.GetAtomType(stmt.atom_type);
  if (!at.ok()) {
    Diagnostic& d = Emit(out, DiagId::kUnknownAtomType,
                         "atom type '" + stmt.atom_type + "' not defined",
                         stmt.type_span);
    AddSuggestion(&d, stmt.atom_type, AtomTypeNames(db));
    return;
  }
  const Schema& schema = (*at)->description();
  std::vector<ScopeNode> nodes{ScopeNode{stmt.atom_type, stmt.atom_type,
                                         &schema, nullptr, SourceSpan{}}};
  ExprAnalyzer analyzer(ScopeKind::kAtom, nodes, &stmt.expr_spans, out);
  analyzer.CheckPredicate(stmt.predicate);

  for (size_t i = 0; i < stmt.assignments.size(); ++i) {
    const std::string& attr = stmt.assignments[i].first;
    const SourceSpan span =
        i < stmt.assignment_spans.size() ? stmt.assignment_spans[i]
                                         : SourceSpan{};
    std::optional<DataType> declared;
    auto idx = schema.IndexOf(attr);
    if (idx.ok()) {
      declared = schema.attribute(*idx).type;
    } else {
      Diagnostic& d = Emit(out, DiagId::kUnknownAttribute,
                           "unknown attribute '" + attr + "' in atom type '" +
                               stmt.atom_type + "'",
                           span);
      AddSuggestion(&d, attr, SchemaAttrNames(schema));
    }
    std::optional<DataType> inferred =
        analyzer.CheckValue(stmt.assignments[i].second);
    if (declared.has_value() && inferred.has_value() &&
        *inferred != DataType::kNull && *inferred != *declared) {
      Emit(out, DiagId::kValueTypeMismatch,
           "attribute '" + attr + "' expects " + DataTypeName(*declared) +
               " but got " + DataTypeName(*inferred),
           span);
    }
  }
}

void AnalyzeSetOption(const SetOptionStatement& stmt,
                      std::vector<Diagnostic>* out) {
  const std::vector<std::string>& options = KnownSessionOptions();
  std::string matched;
  for (const std::string& option : options) {
    if (EqualsIgnoreCase(stmt.option, option)) matched = option;
  }
  if (matched.empty()) {
    Diagnostic& d = Emit(out, DiagId::kUnknownSetOption,
                         "unknown session option '" + stmt.option +
                             "'; available: " + Join(options),
                         stmt.option_span);
    AddSuggestion(&d, stmt.option, options);
    return;
  }
  if (matched == "PARALLELISM") {
    if (stmt.value < 0) {
      Emit(out, DiagId::kInvalidOptionValue,
           "PARALLELISM must be >= 0 (0 selects hardware concurrency)",
           stmt.value_span);
    }
  } else if (stmt.value != 0 && stmt.value != 1) {
    Emit(out, DiagId::kInvalidOptionValue,
         matched + " must be ON/1 or OFF/0", stmt.value_span);
  }
}

}  // namespace

std::vector<Diagnostic> AnalyzeStatement(const Database& db,
                                         const Registry& registry,
                                         const Statement& statement) {
  std::vector<Diagnostic> out;
  std::visit(
      [&](const auto& stmt) {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, SelectStatement>) {
          AnalyzeSelect(db, registry, stmt, &out);
        } else if constexpr (std::is_same_v<T, ExplainStatement>) {
          AnalyzeSelect(db, registry, stmt.select, &out);
        } else if constexpr (std::is_same_v<T, CreateAtomTypeStatement>) {
          AnalyzeCreateAtomType(db, stmt, &out);
        } else if constexpr (std::is_same_v<T, CreateLinkTypeStatement>) {
          AnalyzeCreateLinkType(db, stmt, &out);
        } else if constexpr (std::is_same_v<T, InsertAtomStatement>) {
          AnalyzeInsertAtom(db, stmt, &out);
        } else if constexpr (std::is_same_v<T, InsertLinkStatement>) {
          AnalyzeInsertLink(db, stmt, &out);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          AnalyzeDelete(db, stmt, &out);
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          AnalyzeUpdate(db, stmt, &out);
        } else if constexpr (std::is_same_v<T, SetOptionStatement>) {
          AnalyzeSetOption(stmt, &out);
        }
        // CheckStatement: RunCheck analyzes the inner statement itself so
        // the diagnostics become the result, not an execution error.
        // ShowMetrics/Open/Checkpoint have nothing to check statically.
      },
      statement);
  return out;
}

}  // namespace mql
}  // namespace mad
