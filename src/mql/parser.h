#ifndef MAD_MQL_PARSER_H_
#define MAD_MQL_PARSER_H_

#include <string>
#include <vector>

#include "mql/ast.h"
#include "util/result.h"

namespace mad {
namespace mql {

/// Parses exactly one MQL statement (the trailing ';' is optional).
Result<Statement> ParseStatement(const std::string& text);

/// Parses a ';'-separated script into its statements.
Result<std::vector<Statement>> ParseScript(const std::string& text);

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_PARSER_H_
