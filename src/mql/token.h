#ifndef MAD_MQL_TOKEN_H_
#define MAD_MQL_TOKEN_H_

#include <string>

#include "mql/diag.h"

namespace mad {
namespace mql {

/// Token kinds of the MQL lexer.
enum class TokenKind {
  kEnd,
  kIdentifier,   // state, mt_state, ...
  kString,       // 'pn' (with '' as the embedded-quote escape)
  kInteger,      // 1000
  kDouble,       // 3.5
  kLinkRef,      // [state-area], [composition~], [composition*] — the text
                 // between the brackets, verbatim
  // Keywords (case-insensitive in the source).
  kSelect,
  kAll,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNull,
  kCreate,
  kAtom,
  kLink,
  kType,
  kInsert,
  kInto,
  kValues,
  kDelete,
  kTo,
  kUpdate,
  kSet,
  kExplain,
  kAnalyze,
  kShow,
  kMetrics,
  kCount,
  kForAll,
  kOpen,
  kCheckpoint,
  kCheck,
  // Symbols.
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kDot,
  kDash,        // '-' structure connector / minus
  kStar,
  kSlash,
  kPlus,
  kEq,          // =
  kNe,          // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* TokenKindName(TokenKind kind);

/// One lexed token with its full source span (byte offset + length plus
/// 1-based line/column) over the raw statement or script text.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier spelling / string value / link-ref body
  int64_t int_value = 0;
  double double_value = 0.0;
  SourceSpan span;
};

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_TOKEN_H_
