#ifndef MAD_MQL_DIAG_H_
#define MAD_MQL_DIAG_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mad {
namespace mql {

/// A half-open byte range over the statement (or script) text, plus the
/// 1-based line/column of its first byte. `line == 0` means "no usable
/// location" (e.g. a synthesized AST node); renderers skip the caret then.
struct SourceSpan {
  size_t offset = 0;  ///< 0-based byte offset of the first byte
  size_t length = 0;  ///< number of bytes covered (>= 1 for real tokens)
  size_t line = 0;    ///< 1-based source line, 0 = unknown
  size_t column = 0;  ///< 1-based column on that line

  bool known() const { return line > 0; }
};

enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity severity);

/// Stable diagnostic codes. The numeric blocks group by phase:
/// MQL0001       parse/lex errors surfaced through the lint driver
/// MQL01xx       name resolution
/// MQL02xx       molecule structure / Def. 5 well-formedness
/// MQL03xx       predicate and projection checking
/// MQL04xx       DDL / DML checking
/// MQL05xx       lint-grade warnings
/// Codes are part of the tool's contract (tests and --json consumers pin
/// them); never renumber an existing one.
enum class DiagId {
  kParseError,              // MQL0001
  kUnknownAtomType,         // MQL0101
  kUnknownLinkType,         // MQL0102
  kUnknownAttribute,        // MQL0103
  kUnknownQualifier,        // MQL0104
  kUnknownFromName,         // MQL0105
  kUnknownSetOption,        // MQL0106
  kAmbiguousAttribute,      // MQL0108
  kAmbiguousQualifier,      // MQL0109
  kDuplicateStructureAtom,  // MQL0201
  kNoConnectingLinkType,    // MQL0202
  kAmbiguousImplicitLink,   // MQL0203
  kLinkDirectionMismatch,   // MQL0204
  kCyclicDescription,       // MQL0205
  kMultipleRoots,           // MQL0206
  kIncoherentDescription,   // MQL0207
  kMisplacedRecursion,      // MQL0208
  kNonReflexiveRecursion,   // MQL0209
  kNonBooleanPredicate,     // MQL0301
  kComparisonTypeMismatch,  // MQL0302
  kNonNumericArithmetic,    // MQL0303
  kInvalidRecursiveQualifier,  // MQL0305
  kRecursiveProjection,     // MQL0306
  kForAllForeignReference,  // MQL0307
  kNestedForAll,            // MQL0308
  kAggregateInAtomScope,    // MQL0309
  kInsertArityMismatch,     // MQL0401
  kValueTypeMismatch,       // MQL0402
  kDuplicateAttribute,      // MQL0403
  kTypeAlreadyExists,       // MQL0404
  kInvalidOptionValue,      // MQL0405
  kQualifierTypeMismatch,   // MQL0406
  kShadowedLabel,           // MQL0501 (warning)
  kZeroDepthRecursion,      // MQL0502 (warning)
  kRestrictionOnNarrowedAttribute,  // MQL0503 (warning)
  kUnusedStructureNode,     // MQL0504 (warning)
};

/// The stable "MQLxxxx" code string for a diagnostic id.
const char* DiagCode(DiagId id);

/// The default severity of a diagnostic id (05xx warn, the rest error).
Severity DiagSeverity(DiagId id);

/// The StatusCode Execute() reports when this diagnostic blocks a
/// statement — chosen to match what the execution path historically
/// returned for the same mistake, so callers switching on codes keep
/// working.
StatusCode DiagStatusCode(DiagId id);

/// A secondary location or remark attached to a diagnostic ("first
/// occurrence was here", "did you mean 'state'?").
struct DiagNote {
  std::string message;
  SourceSpan span;  ///< may be unknown; rendered without a caret then
};

/// One structured diagnostic: a stable code, a primary message and span,
/// and any number of notes.
struct Diagnostic {
  DiagId id = DiagId::kParseError;
  std::string message;
  SourceSpan span;
  std::vector<DiagNote> notes;

  const char* code() const { return DiagCode(id); }
  Severity severity() const { return DiagSeverity(id); }
};

/// True iff any diagnostic in `diags` is error-severity.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// Splits warnings (and notes) out of `diags`, keeping relative order.
std::vector<Diagnostic> WarningsOnly(const std::vector<Diagnostic>& diags);

/// Renders one diagnostic rustc-style over its source text:
///
///   error[MQL0101]: unknown atom type 'statee'
///     --> 2:15
///      |
///    2 | SELECT ALL FROM statee-area
///      |                 ^^^^^^
///      = note: did you mean 'state'?
///
/// `filename` (when non-empty) prefixes the location as `file:line:col`.
std::string RenderDiagnostic(const Diagnostic& diag, std::string_view source,
                             std::string_view filename = {});

/// Renders every diagnostic, separated by blank lines.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diags,
                              std::string_view source,
                              std::string_view filename = {});

/// One-line form: `error[MQL0101]: unknown atom type 'statee' (line 2,
/// column 15); did you mean 'state'?` — used for Status messages.
std::string FormatDiagnosticLine(const Diagnostic& diag);

/// Stable JSON for scripts/CI: an array of
/// {"file","code","severity","line","column","offset","length","message",
///  "notes":[{"message","line","column"}]} objects, sorted as given.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags,
                              std::string_view filename = {});

/// Collapses the error diagnostics into the Status that Execute() returns:
/// the StatusCode of the first error, with one FormatDiagnosticLine per
/// error joined by newlines. Requires HasErrors(diags).
Status DiagnosticsToStatus(const std::vector<Diagnostic>& diags);

/// Levenshtein edit distance (insert/delete/substitute, all cost 1),
/// case-insensitive — MQL identifiers compare case-sensitively but typos
/// rarely respect case.
size_t EditDistance(std::string_view a, std::string_view b);

/// The candidate closest to `name` when it is close enough to plausibly be
/// a typo (distance <= max(1, |name|/3)); nullopt otherwise.
std::optional<std::string> ClosestMatch(
    std::string_view name, const std::vector<std::string>& candidates);

/// Appends a "did you mean '...'?" note when a close candidate exists.
void AddSuggestion(Diagnostic* diag, std::string_view name,
                   const std::vector<std::string>& candidates);

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_DIAG_H_
