#ifndef MAD_MQL_SEMA_H_
#define MAD_MQL_SEMA_H_

#include <map>
#include <string>
#include <vector>

#include "molecule/description.h"
#include "mql/ast.h"
#include "mql/diag.h"
#include "storage/database.h"

namespace mad {
namespace mql {

/// The session options SET accepts, in display order. Session::RunSetOption
/// dispatches against this same list, so the analyzer's MQL0106 suggestion
/// text and the executor's "available: ..." error cannot drift apart.
const std::vector<std::string>& KnownSessionOptions();

/// One node of a candidate molecule-type description graph, as fed to
/// CheckDescriptionGraph. The span points at the construct that introduced
/// the node (for MQL structures, the atom-type token).
struct DescNode {
  std::string label;
  std::string type_name;
  SourceSpan span;
};

/// One directed link of a candidate description graph.
struct DescLink {
  std::string link_type;
  std::string from;
  std::string to;
  SourceSpan span;
};

/// Checks the paper's md_graph predicate (Def. 5) on an arbitrary
/// description graph and appends one diagnostic per violation:
///
///   MQL0201  duplicate node label (C is a set)
///   MQL0205  the directed graph has a cycle
///   MQL0206  more than one root (in-degree-0 node) in a connected graph
///   MQL0207  the graph is not coherent (falls apart into components)
///
/// MQL structures parse to trees, which satisfy md_graph by construction;
/// this entry point exists so the Def. 5 checks stay honest and directly
/// testable on graphs the grammar cannot spell (programmatic descriptions,
/// future syntax). AnalyzeStatement routes every structure through it.
void CheckDescriptionGraph(const std::vector<DescNode>& nodes,
                           const std::vector<DescLink>& links,
                           std::vector<Diagnostic>* out);

/// Statically analyzes one parsed statement against the database catalog
/// and the session's registered molecule types, without executing anything.
/// Returns every diagnostic found (errors and warnings, in source order of
/// discovery). The analyzer never rejects a statement the executor would
/// accept; it is deliberately stricter only about type errors that the
/// executor reports lazily per-atom (and therefore misses on empty data).
std::vector<Diagnostic> AnalyzeStatement(
    const Database& db,
    const std::map<std::string, MoleculeDescription>& registry,
    const Statement& statement);

}  // namespace mql
}  // namespace mad

#endif  // MAD_MQL_SEMA_H_
