#ifndef MAD_CORE_VALUE_H_
#define MAD_CORE_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "core/data_type.h"
#include "util/result.h"

namespace mad {

/// A dynamically typed attribute value. Values are small value types: cheap
/// to copy (except long strings), totally ordered within a type, hashable.
///
/// Nulls: the paper does not define null semantics, so madlib uses a simple
/// convention — null equals null, null sorts before every non-null value,
/// and nulls are only produced explicitly (never by the engine).
class Value {
 public:
  /// Constructs the null value.
  Value() : repr_(std::monostate{}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(const char* v) : repr_(std::string(v)) {}
  explicit Value(bool v) : repr_(v) {}

  static Value Null() { return Value(); }

  DataType type() const;
  bool is_null() const { return type() == DataType::kNull; }

  /// Typed accessors; the caller must check `type()` first (asserts in
  /// debug builds on mismatch).
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  bool AsBool() const { return std::get<bool>(repr_); }

  /// Numeric view: int64 and double both convert; anything else fails.
  Result<double> ToNumeric() const;

  /// Display form: 1000, 3.5, 'SP', TRUE, NULL.
  std::string ToString() const;

  /// Total order across values. Values of different non-null types compare
  /// by type rank (int64 and double compare numerically with each other);
  /// null sorts first.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with operator== (numeric int64/double that compare
  /// equal hash equally).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace mad

#endif  // MAD_CORE_VALUE_H_
