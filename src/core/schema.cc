#include "core/schema.h"

#include <cassert>

namespace mad {

Schema::Schema(std::vector<AttributeDescription> attributes) {
  for (AttributeDescription& attr : attributes) {
    Status s = AddAttribute(attr.name, attr.type);
    assert(s.ok() && "duplicate attribute name in Schema constructor");
    (void)s;
  }
}

Status Schema::AddAttribute(const std::string& name, DataType type) {
  if (type == DataType::kNull) {
    return Status::InvalidArgument("attribute '" + name +
                                   "' must have a declarable data type");
  }
  if (index_.count(name) > 0) {
    return Status::AlreadyExists("duplicate attribute name '" + name + "'");
  }
  index_[name] = attributes_.size();
  attributes_.push_back(AttributeDescription{name, type});
  return Status::OK();
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown attribute '" + name + "'");
  }
  return it->second;
}

bool Schema::HasAttribute(const std::string& name) const {
  return index_.count(name) > 0;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  Schema out;
  for (const std::string& name : names) {
    MAD_ASSIGN_OR_RETURN(size_t idx, IndexOf(name));
    MAD_RETURN_IF_ERROR(out.AddAttribute(name, attributes_[idx].type));
  }
  return out;
}

Result<Schema> Schema::ConcatDisjoint(const Schema& other) const {
  Schema out = *this;
  for (const AttributeDescription& attr : other.attributes_) {
    if (out.HasAttribute(attr.name)) {
      return Status::InvalidArgument(
          "cartesian product requires disjoint attribute sets; '" + attr.name +
          "' occurs in both operands");
    }
    MAD_RETURN_IF_ERROR(out.AddAttribute(attr.name, attr.type));
  }
  return out;
}

Status Schema::RenameAttribute(const std::string& from, const std::string& to) {
  auto it = index_.find(from);
  if (it == index_.end()) {
    return Status::NotFound("unknown attribute '" + from + "'");
  }
  if (from == to) return Status::OK();
  if (index_.count(to) > 0) {
    return Status::AlreadyExists("attribute '" + to + "' already exists");
  }
  size_t idx = it->second;
  index_.erase(it);
  index_[to] = idx;
  attributes_[idx].name = to;
  return Status::OK();
}

Status Schema::ValidateRow(const std::vector<Value>& values) const {
  if (values.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) +
        " does not match schema arity " + std::to_string(attributes_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) continue;
    if (values[i].type() != attributes_[i].type) {
      return Status::InvalidArgument(
          "attribute '" + attributes_[i].name + "' expects " +
          DataTypeName(attributes_[i].type) + " but got " +
          DataTypeName(values[i].type()) + " (" + values[i].ToString() + ")");
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += DataTypeName(attributes_[i].type);
  }
  out += "}";
  return out;
}

}  // namespace mad
