#include "core/data_type.h"

#include "util/string_util.h"

namespace mad {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kBool:
      return "BOOL";
  }
  return "NULL";
}

DataType DataTypeFromName(std::string_view name) {
  if (EqualsIgnoreCase(name, "INT64") || EqualsIgnoreCase(name, "INT")) {
    return DataType::kInt64;
  }
  if (EqualsIgnoreCase(name, "DOUBLE") || EqualsIgnoreCase(name, "FLOAT")) {
    return DataType::kDouble;
  }
  if (EqualsIgnoreCase(name, "STRING") || EqualsIgnoreCase(name, "TEXT")) {
    return DataType::kString;
  }
  if (EqualsIgnoreCase(name, "BOOL") || EqualsIgnoreCase(name, "BOOLEAN")) {
    return DataType::kBool;
  }
  return DataType::kNull;
}

}  // namespace mad
