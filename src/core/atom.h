#ifndef MAD_CORE_ATOM_H_
#define MAD_CORE_ATOM_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "core/value.h"

namespace mad {

/// Globally unique, stable atom identity (Def. 1: "each atom ... is uniquely
/// identifiable"). Ids are assigned by the owning Database and never reused.
///
/// Identity is *entity* identity: restriction results and propagated atom
/// types (Def. 9) contain the same atoms — same ids — with possibly fewer
/// attributes, which is what makes link-type inheritance well defined.
struct AtomId {
  uint64_t value = 0;

  static constexpr AtomId Invalid() { return AtomId{0}; }
  bool valid() const { return value != 0; }

  auto operator<=>(const AtomId&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, AtomId id) {
  return os << "#" << id.value;
}

/// An atom: identity plus one value per attribute of its atom type's
/// description, positionally aligned with the Schema.
struct Atom {
  AtomId id;
  std::vector<Value> values;
};

}  // namespace mad

template <>
struct std::hash<mad::AtomId> {
  size_t operator()(mad::AtomId id) const noexcept {
    return std::hash<uint64_t>{}(id.value);
  }
};

#endif  // MAD_CORE_ATOM_H_
