#ifndef MAD_CORE_DATA_TYPE_H_
#define MAD_CORE_DATA_TYPE_H_

#include <string_view>

namespace mad {

/// Attribute data types supported by atom-type descriptions (Def. 1 speaks
/// of "attributes of various data types"; this is the concrete set).
enum class DataType {
  kNull = 0,  ///< Type of the untyped null value only; not declarable.
  kInt64,
  kDouble,
  kString,
  kBool,
};

/// Stable name, e.g. "INT64".
const char* DataTypeName(DataType type);

/// Parses "INT64"/"DOUBLE"/"STRING"/"BOOL" (case-insensitive); returns
/// kNull on failure.
DataType DataTypeFromName(std::string_view name);

}  // namespace mad

#endif  // MAD_CORE_DATA_TYPE_H_
