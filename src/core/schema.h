#ifndef MAD_CORE_SCHEMA_H_
#define MAD_CORE_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "core/data_type.h"
#include "core/value.h"
#include "util/result.h"

namespace mad {

/// One attribute description: name + data type (Def. 1).
struct AttributeDescription {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const AttributeDescription& other) const {
    return name == other.name && type == other.type;
  }
};

/// An atom-type description (Def. 1): an ordered set of attribute
/// descriptions with unique names. Also reused as the relational "relation
/// schema" (Fig. 3 maps the two concepts one-to-one).
class Schema {
 public:
  Schema() = default;
  /// Convenience constructor; duplicate names assert via AddAttribute in
  /// debug builds — use AddAttribute for checked construction.
  explicit Schema(std::vector<AttributeDescription> attributes);

  /// Appends an attribute; fails on duplicate names.
  Status AddAttribute(const std::string& name, DataType type);

  size_t attribute_count() const { return attributes_.size(); }
  const std::vector<AttributeDescription>& attributes() const {
    return attributes_;
  }
  const AttributeDescription& attribute(size_t index) const {
    return attributes_[index];
  }

  /// Index of the attribute named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;
  bool HasAttribute(const std::string& name) const;

  /// The projected schema keeping exactly `names` in the given order
  /// (Def. 4, proj(ad) ⊆ ad). Fails if a name is unknown or repeated.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// Concatenation for the cartesian product (Def. 4 requires the operand
  /// descriptions to be disjoint in pairs); fails on a name collision.
  Result<Schema> ConcatDisjoint(const Schema& other) const;

  /// Renames one attribute; fails if `from` is unknown or `to` exists.
  Status RenameAttribute(const std::string& from, const std::string& to);

  /// True iff both schemas have the same attributes in the same order —
  /// the precondition of union/difference (Def. 4: ad1 = ad2).
  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// Checks that `values` matches this schema positionally (arity and, for
  /// non-null values, data type).
  Status ValidateRow(const std::vector<Value>& values) const;

  /// e.g. "{name: STRING, hectare: INT64}".
  std::string ToString() const;

 private:
  std::vector<AttributeDescription> attributes_;
  std::map<std::string, size_t> index_;
};

}  // namespace mad

#endif  // MAD_CORE_SCHEMA_H_
