#include "core/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace mad {

namespace {

// Rank used to order values of incomparable types; int64 and double share a
// numeric comparison instead.
int TypeRank(DataType type) {
  switch (type) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 0;
}

}  // namespace

DataType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    case 3:
      return DataType::kString;
    case 4:
      return DataType::kBool;
  }
  return DataType::kNull;
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(AsInt64());
    case DataType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument("value " + ToString() + " is not numeric");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case DataType::kString:
      return "'" + AsString() + "'";
    case DataType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "NULL";
}

int Value::Compare(const Value& other) const {
  DataType a = type();
  DataType b = other.type();
  int rank_a = TypeRank(a);
  int rank_b = TypeRank(b);
  if (rank_a != rank_b) return rank_a < rank_b ? -1 : 1;

  switch (rank_a) {
    case 0:  // both null
      return 0;
    case 1: {  // bool
      bool x = AsBool();
      bool y = other.AsBool();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case 2: {  // numeric
      if (a == DataType::kInt64 && b == DataType::kInt64) {
        int64_t x = AsInt64();
        int64_t y = other.AsInt64();
        return x == y ? 0 : (x < y ? -1 : 1);
      }
      double x = a == DataType::kInt64 ? static_cast<double>(AsInt64())
                                       : AsDouble();
      double y = b == DataType::kInt64 ? static_cast<double>(other.AsInt64())
                                       : other.AsDouble();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case 3: {  // string
      int cmp = AsString().compare(other.AsString());
      return cmp == 0 ? 0 : (cmp < 0 ? -1 : 1);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kInt64: {
      // Hash integral doubles and int64s identically so == implies equal
      // hashes across the numeric types.
      return std::hash<double>{}(static_cast<double>(AsInt64()));
    }
    case DataType::kDouble:
      return std::hash<double>{}(AsDouble());
    case DataType::kString:
      return std::hash<std::string>{}(AsString());
    case DataType::kBool:
      return std::hash<bool>{}(AsBool());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace mad
