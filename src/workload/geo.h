#ifndef MAD_WORKLOAD_GEO_H_
#define MAD_WORKLOAD_GEO_H_

#include <cstdint>
#include <map>
#include <string>

#include "storage/database.h"
#include "util/result.h"

namespace mad {
namespace workload {

/// Atom ids of the Figure-4 geographic database, keyed by the names used in
/// the paper (states by abbreviation, areas a1..a10, nets n1..n3, edges
/// e1..e12, points pn/p2..p12, plus three point-like cities).
struct GeoIds {
  std::map<std::string, AtomId> states;
  std::map<std::string, AtomId> rivers;
  std::map<std::string, AtomId> areas;
  std::map<std::string, AtomId> nets;
  std::map<std::string, AtomId> edges;
  std::map<std::string, AtomId> points;
  std::map<std::string, AtomId> cities;
};

/// Builds the paper's geographic database (Figs. 1 and 4) into `db`:
///
///   atom types: state, city, river, area, net, edge, point
///   link types: state-area, city-point, river-net, area-edge, net-edge,
///               edge-point
///
/// The occurrence reproduces the situations the paper calls out:
///  * the river Parana (net n1) shares edge/point atoms with the states
///    Minas Gerais, Sao Paulo, and Parana (Ch. 2);
///  * point 'pn' is shared by four edges so that its point-neighborhood
///    molecule reaches the states SP, MS, MG, GO and the river Parana
///    (Fig. 2, upper part);
///  * the mt_state molecules of SP and MG share point 'pn' (Fig. 2, lower).
Result<GeoIds> BuildFigure4GeoDatabase(Database& db);

/// Parameters of the scaled synthetic geography used by the performance
/// benchmarks (PERF-NM, PERF-OPS). All sizes are per-instance counts; the
/// generator is deterministic for a fixed seed.
struct GeoScale {
  int states = 50;
  int rivers = 10;
  /// Border edges per area.
  int edges_per_area = 8;
  /// Course edges per net; drawn from area borders with this probability
  /// (producing the n:m sharing the paper motivates), else fresh.
  int edges_per_net = 20;
  double shared_edge_fraction = 0.5;
  /// Points per edge (each edge keeps exactly 2, sampled from a pool of
  /// this size per area so neighbouring edges share corner points).
  int point_pool_per_area = 10;
  uint64_t seed = 42;
};

/// Summary of a generated scaled geography.
struct GeoStats {
  size_t atoms = 0;
  size_t links = 0;
};

/// Generates a scaled geographic database with the Figure-1 schema into
/// `db` (which must be empty) and returns its size.
Result<GeoStats> GenerateScaledGeo(Database& db, const GeoScale& scale);

}  // namespace workload
}  // namespace mad

#endif  // MAD_WORKLOAD_GEO_H_
