#include "workload/geo.h"

#include <random>
#include <vector>

namespace mad {
namespace workload {

namespace {

Schema NameSchema() {
  Schema s;
  Status st = s.AddAttribute("name", DataType::kString);
  (void)st;
  return s;
}

Status DefineFigure1Schema(Database& db) {
  Schema state;
  MAD_RETURN_IF_ERROR(state.AddAttribute("name", DataType::kString));
  MAD_RETURN_IF_ERROR(state.AddAttribute("hectare", DataType::kInt64));
  MAD_RETURN_IF_ERROR(db.DefineAtomType("state", std::move(state)));

  MAD_RETURN_IF_ERROR(db.DefineAtomType("city", NameSchema()));

  Schema river;
  MAD_RETURN_IF_ERROR(river.AddAttribute("name", DataType::kString));
  MAD_RETURN_IF_ERROR(river.AddAttribute("length", DataType::kInt64));
  MAD_RETURN_IF_ERROR(db.DefineAtomType("river", std::move(river)));

  // Areas carry the hectare measure so the paper's running example
  // σ[hectare > 1000](x(area, edge)) is expressible (Ch. 3.1).
  Schema area;
  MAD_RETURN_IF_ERROR(area.AddAttribute("name", DataType::kString));
  MAD_RETURN_IF_ERROR(area.AddAttribute("hectare", DataType::kInt64));
  MAD_RETURN_IF_ERROR(db.DefineAtomType("area", std::move(area)));
  MAD_RETURN_IF_ERROR(db.DefineAtomType("net", NameSchema()));
  MAD_RETURN_IF_ERROR(db.DefineAtomType("edge", NameSchema()));

  Schema point;
  MAD_RETURN_IF_ERROR(point.AddAttribute("name", DataType::kString));
  MAD_RETURN_IF_ERROR(point.AddAttribute("x", DataType::kDouble));
  MAD_RETURN_IF_ERROR(point.AddAttribute("y", DataType::kDouble));
  MAD_RETURN_IF_ERROR(db.DefineAtomType("point", std::move(point)));

  // One link type per ER relationship type (Fig. 1: one-to-one mapping).
  MAD_RETURN_IF_ERROR(db.DefineLinkType("state-area", "state", "area"));
  MAD_RETURN_IF_ERROR(db.DefineLinkType("city-point", "city", "point"));
  MAD_RETURN_IF_ERROR(db.DefineLinkType("river-net", "river", "net"));
  MAD_RETURN_IF_ERROR(db.DefineLinkType("area-edge", "area", "edge"));
  MAD_RETURN_IF_ERROR(db.DefineLinkType("net-edge", "net", "edge"));
  MAD_RETURN_IF_ERROR(db.DefineLinkType("edge-point", "edge", "point"));
  return Status::OK();
}

}  // namespace

Result<GeoIds> BuildFigure4GeoDatabase(Database& db) {
  MAD_RETURN_IF_ERROR(DefineFigure1Schema(db));
  GeoIds ids;

  // States of Fig. 1 with hectare figures (thousands of km^2) chosen so the
  // paper's restriction example hectare > 1000 selects a proper subset.
  struct StateRow {
    const char* abbrev;
    int64_t hectare;
  };
  const StateRow kStates[] = {
      {"BA", 1500}, {"GO", 900}, {"MS", 1100}, {"MG", 900}, {"ES", 200},
      {"RJ", 150},  {"SP", 1000}, {"PR", 800},  {"SC", 400}, {"RS", 1050},
  };
  for (const StateRow& row : kStates) {
    MAD_ASSIGN_OR_RETURN(
        AtomId id,
        db.InsertAtom("state", {Value(row.abbrev), Value(row.hectare)}));
    ids.states[row.abbrev] = id;
  }

  struct RiverRow {
    const char* name;
    int64_t length;
  };
  const RiverRow kRivers[] = {
      {"Parana", 4880}, {"Amazonas", 6992}, {"Uruguai", 1838}};
  for (const RiverRow& row : kRivers) {
    MAD_ASSIGN_OR_RETURN(
        AtomId id, db.InsertAtom("river", {Value(row.name), Value(row.length)}));
    ids.rivers[row.name] = id;
  }

  // One area per state (a1..a10, in state order) and one net per river.
  const char* kAreaOwner[] = {"BA", "GO", "MS", "MG", "ES",
                              "RJ", "SP", "PR", "SC", "RS"};
  for (int i = 0; i < 10; ++i) {
    std::string aname = "a" + std::to_string(i + 1);
    MAD_ASSIGN_OR_RETURN(
        AtomId id,
        db.InsertAtom("area", {Value(aname), Value(kStates[i].hectare)}));
    ids.areas[aname] = id;
    MAD_RETURN_IF_ERROR(
        db.InsertLink("state-area", ids.states[kAreaOwner[i]], id));
  }
  const char* kNetOwner[] = {"Parana", "Amazonas", "Uruguai"};
  for (int i = 0; i < 3; ++i) {
    std::string nname = "n" + std::to_string(i + 1);
    MAD_ASSIGN_OR_RETURN(AtomId id, db.InsertAtom("net", {Value(nname)}));
    ids.nets[nname] = id;
    MAD_RETURN_IF_ERROR(db.InsertLink("river-net", ids.rivers[kNetOwner[i]], id));
  }

  // Edges e1..e12.
  for (int i = 1; i <= 12; ++i) {
    std::string ename = "e" + std::to_string(i);
    MAD_ASSIGN_OR_RETURN(AtomId id, db.InsertAtom("edge", {Value(ename)}));
    ids.edges[ename] = id;
  }

  // Points: p1 is the paper's 'pn'; p2..p12 follow.
  for (int i = 1; i <= 12; ++i) {
    std::string pname = i == 1 ? "pn" : "p" + std::to_string(i);
    MAD_ASSIGN_OR_RETURN(
        AtomId id, db.InsertAtom("point", {Value(pname), Value(i * 1.0),
                                           Value(i * 2.0)}));
    ids.points[pname] = id;
  }

  // Area borders (n:m): e1 in SP's area, e2 in MS's, e3 in MG's, e4 in GO's;
  // the Parana river (n1) runs along e1 (SP), e3 (MG), e5 (PR) — the shared
  // subobjects called out in Ch. 2.
  struct AE {
    const char* area;
    const char* edge;
  };
  const AE kAreaEdges[] = {
      {"a7", "e1"},  // SP
      {"a3", "e2"},  // MS
      {"a4", "e3"},  // MG
      {"a2", "e4"},  // GO
      {"a8", "e5"},  // PR
      {"a8", "e11"},
      {"a1", "e8"},  // BA
      {"a5", "e9"},  // ES
      {"a6", "e10"},  // RJ
      {"a9", "e12"},  // SC
      {"a10", "e7"},  // RS
  };
  for (const AE& ae : kAreaEdges) {
    MAD_RETURN_IF_ERROR(
        db.InsertLink("area-edge", ids.areas[ae.area], ids.edges[ae.edge]));
  }

  struct NE {
    const char* net;
    const char* edge;
  };
  const NE kNetEdges[] = {
      {"n1", "e1"}, {"n1", "e3"}, {"n1", "e5"},  // Parana shares SP/MG/PR
      {"n2", "e6"},                              // Amazonas
      {"n3", "e7"},                              // Uruguai along RS border
  };
  for (const NE& ne : kNetEdges) {
    MAD_RETURN_IF_ERROR(
        db.InsertLink("net-edge", ids.nets[ne.net], ids.edges[ne.edge]));
  }

  // Edge endpoints; point 'pn' is an endpoint of e1..e4, giving the Fig. 2
  // point-neighborhood molecule its four branches.
  struct EP {
    const char* edge;
    const char* point;
  };
  const EP kEdgePoints[] = {
      {"e1", "pn"}, {"e1", "p2"},  {"e2", "pn"},  {"e2", "p3"},
      {"e3", "pn"}, {"e3", "p4"},  {"e4", "pn"},  {"e4", "p5"},
      {"e5", "p6"}, {"e5", "p7"},  {"e6", "p7"},  {"e6", "p8"},
      {"e7", "p8"}, {"e7", "p9"},  {"e8", "p9"},  {"e8", "p10"},
      {"e9", "p10"}, {"e9", "p11"}, {"e10", "p11"}, {"e10", "p12"},
      {"e11", "p12"}, {"e11", "p6"}, {"e12", "p2"}, {"e12", "p3"},
  };
  for (const EP& ep : kEdgePoints) {
    MAD_RETURN_IF_ERROR(
        db.InsertLink("edge-point", ids.edges[ep.edge], ids.points[ep.point]));
  }

  // Three point-like city objects (Fig. 1 models cities through the shared
  // geographic model as well).
  struct CityRow {
    const char* name;
    const char* point;
  };
  const CityRow kCities[] = {{"Sao Paulo", "p2"},
                             {"Rio de Janeiro", "p11"},
                             {"Brasilia", "p5"}};
  for (const CityRow& row : kCities) {
    MAD_ASSIGN_OR_RETURN(AtomId id, db.InsertAtom("city", {Value(row.name)}));
    ids.cities[row.name] = id;
    MAD_RETURN_IF_ERROR(db.InsertLink("city-point", id, ids.points[row.point]));
  }

  return ids;
}

Result<GeoStats> GenerateScaledGeo(Database& db, const GeoScale& scale) {
  if (db.atom_type_count() != 0) {
    return Status::InvalidArgument("scaled geo generator needs an empty database");
  }
  MAD_RETURN_IF_ERROR(DefineFigure1Schema(db));
  std::mt19937_64 rng(scale.seed);

  std::vector<AtomId> areas;
  std::vector<std::vector<AtomId>> area_edges(
      static_cast<size_t>(scale.states));
  std::vector<AtomId> all_border_edges;

  // States with their areas, border edges, and corner points.
  for (int s = 0; s < scale.states; ++s) {
    std::string tag = std::to_string(s + 1);
    MAD_ASSIGN_OR_RETURN(
        AtomId state,
        db.InsertAtom("state", {Value("S" + tag),
                                Value(static_cast<int64_t>(rng() % 2000))}));
    MAD_ASSIGN_OR_RETURN(
        AtomId area,
        db.InsertAtom("area", {Value("a" + tag),
                               Value(static_cast<int64_t>(rng() % 2000))}));
    MAD_RETURN_IF_ERROR(db.InsertLink("state-area", state, area));
    areas.push_back(area);

    // A pool of corner points shared by this area's edges.
    std::vector<AtomId> pool;
    for (int p = 0; p < scale.point_pool_per_area; ++p) {
      std::string pname = "p" + tag + "_" + std::to_string(p + 1);
      MAD_ASSIGN_OR_RETURN(
          AtomId point,
          db.InsertAtom("point",
                        {Value(pname),
                         Value(static_cast<double>(rng() % 10000) / 10.0),
                         Value(static_cast<double>(rng() % 10000) / 10.0)}));
      pool.push_back(point);
    }

    for (int e = 0; e < scale.edges_per_area; ++e) {
      std::string ename = "e" + tag + "_" + std::to_string(e + 1);
      MAD_ASSIGN_OR_RETURN(AtomId edge, db.InsertAtom("edge", {Value(ename)}));
      MAD_RETURN_IF_ERROR(db.InsertLink("area-edge", area, edge));
      area_edges[static_cast<size_t>(s)].push_back(edge);
      all_border_edges.push_back(edge);
      // Two distinct endpoints from the pool (neighbouring edges share).
      size_t i = rng() % pool.size();
      size_t j = rng() % pool.size();
      if (j == i) j = (i + 1) % pool.size();
      MAD_RETURN_IF_ERROR(db.InsertLink("edge-point", edge, pool[i]));
      MAD_RETURN_IF_ERROR(db.InsertLink("edge-point", edge, pool[j]));
    }
  }

  // Rivers whose nets draw a configurable fraction of their course edges
  // from state borders — the n:m sharing of subobjects.
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int r = 0; r < scale.rivers; ++r) {
    std::string tag = std::to_string(r + 1);
    MAD_ASSIGN_OR_RETURN(
        AtomId river,
        db.InsertAtom("river", {Value("R" + tag),
                                Value(static_cast<int64_t>(rng() % 7000))}));
    MAD_ASSIGN_OR_RETURN(AtomId net, db.InsertAtom("net", {Value("n" + tag)}));
    MAD_RETURN_IF_ERROR(db.InsertLink("river-net", river, net));

    for (int e = 0; e < scale.edges_per_net; ++e) {
      AtomId edge;
      if (!all_border_edges.empty() &&
          unit(rng) < scale.shared_edge_fraction) {
        edge = all_border_edges[rng() % all_border_edges.size()];
        Status s = db.InsertLink("net-edge", net, edge);
        if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
      } else {
        std::string ename = "re" + tag + "_" + std::to_string(e + 1);
        MAD_ASSIGN_OR_RETURN(edge, db.InsertAtom("edge", {Value(ename)}));
        MAD_RETURN_IF_ERROR(db.InsertLink("net-edge", net, edge));
        // Fresh course edges take endpoints from a random area's pool via
        // that area's first edge partner set; simplest: two fresh points.
        for (int p = 0; p < 2; ++p) {
          std::string pname = "rp" + tag + "_" + std::to_string(2 * e + p + 1);
          MAD_ASSIGN_OR_RETURN(
              AtomId point,
              db.InsertAtom("point",
                            {Value(pname),
                             Value(static_cast<double>(rng() % 10000) / 10.0),
                             Value(static_cast<double>(rng() % 10000) / 10.0)}));
          MAD_RETURN_IF_ERROR(db.InsertLink("edge-point", edge, point));
        }
      }
    }
  }

  // A city on a random point of every fifth area's pool: point-like objects.
  auto point_type = db.GetAtomType("point");
  if (point_type.ok() && !(*point_type)->occurrence().empty()) {
    const auto& points = (*point_type)->occurrence().atoms();
    for (int c = 0; c < scale.states / 5 + 1; ++c) {
      MAD_ASSIGN_OR_RETURN(
          AtomId city,
          db.InsertAtom("city", {Value("C" + std::to_string(c + 1))}));
      AtomId point = points[rng() % points.size()].id;
      Status s = db.InsertLink("city-point", city, point);
      if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
    }
  }

  return GeoStats{db.total_atom_count(), db.total_link_count()};
}

}  // namespace workload
}  // namespace mad
