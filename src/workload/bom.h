#ifndef MAD_WORKLOAD_BOM_H_
#define MAD_WORKLOAD_BOM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/database.h"
#include "util/result.h"

namespace mad {
namespace workload {

/// Builds the small fixed bill-of-material the paper alludes to in Ch. 3.1
/// (one reflexive link type 'composition' on atom type 'part'):
///
///   car ── engine ── piston ── bolt
///       └─ chassis ──────────── bolt   (bolt is a shared sub-part)
///
/// part has attributes {name: STRING, cost: INT64}; composition links are
/// stored <super, sub>. Returns name -> atom id.
Result<std::map<std::string, AtomId>> BuildCarBom(Database& db);

/// Parameters of the scaled synthetic BOM used by the recursion benchmarks
/// (PERF-REC). Deterministic for a fixed seed.
struct BomScale {
  int roots = 1;
  int depth = 6;
  /// Children per part.
  int fanout = 3;
  /// Probability that a child slot reuses an existing part of the next
  /// level instead of minting a new one (DAG sharing).
  double share_fraction = 0.3;
  uint64_t seed = 7;
};

struct BomStats {
  std::vector<AtomId> roots;
  size_t parts = 0;
  size_t links = 0;
};

/// Generates a layered BOM DAG into `db` (which must not yet define
/// 'part'/'composition').
Result<BomStats> GenerateBom(Database& db, const BomScale& scale);

}  // namespace workload
}  // namespace mad

#endif  // MAD_WORKLOAD_BOM_H_
