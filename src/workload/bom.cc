#include "workload/bom.h"

#include <random>
#include <vector>

namespace mad {
namespace workload {

namespace {

Status DefineBomSchema(Database& db) {
  Schema part;
  MAD_RETURN_IF_ERROR(part.AddAttribute("name", DataType::kString));
  MAD_RETURN_IF_ERROR(part.AddAttribute("cost", DataType::kInt64));
  MAD_RETURN_IF_ERROR(db.DefineAtomType("part", std::move(part)));
  return db.DefineLinkType("composition", "part", "part");
}

}  // namespace

Result<std::map<std::string, AtomId>> BuildCarBom(Database& db) {
  MAD_RETURN_IF_ERROR(DefineBomSchema(db));
  std::map<std::string, AtomId> ids;

  struct PartRow {
    const char* name;
    int64_t cost;
  };
  const PartRow kParts[] = {{"car", 20000}, {"engine", 5000},
                            {"chassis", 3000}, {"piston", 120},
                            {"bolt", 1}};
  for (const PartRow& row : kParts) {
    MAD_ASSIGN_OR_RETURN(
        AtomId id, db.InsertAtom("part", {Value(row.name), Value(row.cost)}));
    ids[row.name] = id;
  }

  struct Comp {
    const char* super;
    const char* sub;
  };
  const Comp kLinks[] = {{"car", "engine"},
                         {"car", "chassis"},
                         {"engine", "piston"},
                         {"piston", "bolt"},
                         {"chassis", "bolt"}};
  for (const Comp& comp : kLinks) {
    MAD_RETURN_IF_ERROR(
        db.InsertLink("composition", ids[comp.super], ids[comp.sub]));
  }
  return ids;
}

Result<BomStats> GenerateBom(Database& db, const BomScale& scale) {
  MAD_RETURN_IF_ERROR(DefineBomSchema(db));
  std::mt19937_64 rng(scale.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  BomStats stats;
  std::vector<AtomId> current;
  for (int r = 0; r < scale.roots; ++r) {
    MAD_ASSIGN_OR_RETURN(
        AtomId root,
        db.InsertAtom("part", {Value("root" + std::to_string(r + 1)),
                               Value(static_cast<int64_t>(10000 + r))}));
    stats.roots.push_back(root);
    current.push_back(root);
    ++stats.parts;
  }

  for (int d = 1; d <= scale.depth; ++d) {
    std::vector<AtomId> next;
    for (size_t i = 0; i < current.size(); ++i) {
      for (int c = 0; c < scale.fanout; ++c) {
        AtomId child;
        if (!next.empty() && unit(rng) < scale.share_fraction) {
          child = next[rng() % next.size()];  // shared sub-part
        } else {
          std::string name = "p" + std::to_string(d) + "_" +
                             std::to_string(next.size() + 1);
          MAD_ASSIGN_OR_RETURN(
              child,
              db.InsertAtom("part",
                            {Value(name),
                             Value(static_cast<int64_t>(rng() % 1000 + 1))}));
          next.push_back(child);
          ++stats.parts;
        }
        Status s = db.InsertLink("composition", current[i], child);
        if (s.ok()) {
          ++stats.links;
        } else if (s.code() != StatusCode::kAlreadyExists) {
          return s;
        }
      }
    }
    if (next.empty()) break;
    current = std::move(next);
  }
  return stats;
}

}  // namespace workload
}  // namespace mad
