#include "util/string_util.h"

#include <cctype>

namespace mad {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  auto head = static_cast<unsigned char>(text[0]);
  if (!std::isalpha(head) && head != '_') return false;
  for (size_t i = 1; i < text.size(); ++i) {
    auto c = static_cast<unsigned char>(text[i]);
    if (!std::isalnum(c) && c != '_') return false;
  }
  return true;
}

std::string QuoteString(std::string_view text) {
  std::string out = "'";
  for (char c : text) {
    out += c;
    if (c == '\'') out += '\'';
  }
  out += '\'';
  return out;
}

}  // namespace mad
