#include "util/trace.h"

#include <functional>
#include <thread>
#include <utility>

namespace mad {

namespace {

// Ambient trace + current parent span for the calling thread. Plain
// thread_local pointers: reads on the no-trace fast path cost one load.
thread_local QueryTrace* g_current_trace = nullptr;
thread_local int32_t g_current_parent = TraceSpan::kNoParent;

uint64_t NsSince(std::chrono::steady_clock::time_point epoch) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace

QueryTrace::QueryTrace() : epoch_(std::chrono::steady_clock::now()) {}

int32_t QueryTrace::BeginSpan(const char* name, std::string note,
                              int32_t parent) {
  uint64_t start = NsSince(epoch_);
  uint64_t tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t thread_index = 0;
  while (thread_index < thread_ids_.size() &&
         thread_ids_[thread_index] != tid) {
    ++thread_index;
  }
  if (thread_index == thread_ids_.size()) thread_ids_.push_back(tid);

  TraceSpan span;
  span.id = static_cast<int32_t>(spans_.size());
  span.parent = parent;
  span.name = name;
  span.note = std::move(note);
  span.start_ns = start;
  span.thread = thread_index;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::EndSpan(int32_t id, int64_t rows_in, int64_t rows_out) {
  uint64_t end = NsSince(epoch_);
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan& span = spans_[static_cast<size_t>(id)];
  span.duration_ns = end - span.start_ns;
  span.rows_in = rows_in;
  span.rows_out = rows_out;
  if (end > total_duration_ns_) total_duration_ns_ = end;
}

TraceScope::TraceScope(QueryTrace* trace)
    : trace_(trace),
      previous_(g_current_trace),
      previous_parent_(g_current_parent),
      start_(std::chrono::steady_clock::now()) {
  g_current_trace = trace;
  g_current_parent = TraceSpan::kNoParent;
}

TraceScope::~TraceScope() {
  if (trace_ != nullptr) {
    trace_->SetTotalDuration(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  g_current_trace = previous_;
  g_current_parent = previous_parent_;
}

QueryTrace* CurrentTrace() { return g_current_trace; }

ScopedSpan::ScopedSpan(const char* name, std::string note)
    : trace_(g_current_trace) {
  if (trace_ == nullptr) return;
  id_ = trace_->BeginSpan(name, std::move(note), g_current_parent);
  saved_parent_ = g_current_parent;
  g_current_parent = id_;
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  trace_->EndSpan(id_, rows_in_, rows_out_);
  g_current_parent = saved_parent_;
}

}  // namespace mad
