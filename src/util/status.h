#ifndef MAD_UTIL_STATUS_H_
#define MAD_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mad {

/// Error categories used across the library. The public API never throws;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  /// A name lookup failed (unknown atom type, link type, attribute, ...).
  kNotFound,
  /// A definition clashes with an existing one (duplicate type name, ...).
  kAlreadyExists,
  /// The arguments violate a static precondition (schema mismatch,
  /// ill-formed molecule description, type error in an expression, ...).
  kInvalidArgument,
  /// A structural invariant of the data model would be violated
  /// (dangling link, non-DAG molecule structure, ...).
  kConstraintViolation,
  /// Parsing MQL text failed.
  kParseError,
  /// The operation is well-formed but not supported (yet).
  kUnsupported,
  /// An internal invariant failed; indicates a bug in madlib itself.
  kInternal,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Value-semantic status object carrying a code and a message.
///
/// The conventions follow the common database-engine idiom (RocksDB, Arrow):
/// functions that can fail return Status (or Result<T>); Status is cheap to
/// move, and `MAD_RETURN_IF_ERROR` propagates failures. [[nodiscard]] makes
/// silently dropping a failure a compiler warning at every call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status out of the enclosing function.
#define MAD_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::mad::Status _mad_status = (expr);           \
    if (!_mad_status.ok()) return _mad_status;    \
  } while (false)

}  // namespace mad

#endif  // MAD_UTIL_STATUS_H_
