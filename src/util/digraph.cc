#include "util/digraph.h"

#include <algorithm>
#include <deque>

namespace mad {

bool Digraph::AddNode(const std::string& name) {
  if (node_index_.count(name) > 0) return false;
  node_index_[name] = nodes_.size();
  nodes_.push_back(name);
  return true;
}

Status Digraph::AddEdge(const std::string& label, const std::string& from,
                        const std::string& to) {
  auto from_it = node_index_.find(from);
  auto to_it = node_index_.find(to);
  if (from_it == node_index_.end()) {
    return Status::NotFound("digraph: unknown edge source node '" + from + "'");
  }
  if (to_it == node_index_.end()) {
    return Status::NotFound("digraph: unknown edge target node '" + to + "'");
  }
  size_t edge_id = edges_.size();
  edges_.push_back(Edge{label, from, to});
  out_[from_it->second].push_back(edge_id);
  in_[to_it->second].push_back(edge_id);
  return Status::OK();
}

bool Digraph::HasNode(const std::string& name) const {
  return node_index_.count(name) > 0;
}

std::vector<const Digraph::Edge*> Digraph::OutEdges(
    const std::string& node) const {
  std::vector<const Edge*> result;
  auto it = node_index_.find(node);
  if (it == node_index_.end()) return result;
  auto out_it = out_.find(it->second);
  if (out_it == out_.end()) return result;
  result.reserve(out_it->second.size());
  for (size_t edge_id : out_it->second) result.push_back(&edges_[edge_id]);
  return result;
}

std::vector<const Digraph::Edge*> Digraph::InEdges(
    const std::string& node) const {
  std::vector<const Edge*> result;
  auto it = node_index_.find(node);
  if (it == node_index_.end()) return result;
  auto in_it = in_.find(it->second);
  if (in_it == in_.end()) return result;
  result.reserve(in_it->second.size());
  for (size_t edge_id : in_it->second) result.push_back(&edges_[edge_id]);
  return result;
}

bool Digraph::IsAcyclic() const { return TopologicalOrder().ok(); }

bool Digraph::IsCoherent() const {
  if (nodes_.empty()) return false;
  // Breadth-first search over the underlying undirected graph.
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<size_t> queue = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!queue.empty()) {
    size_t node = queue.front();
    queue.pop_front();
    auto visit = [&](size_t next) {
      if (!seen[next]) {
        seen[next] = true;
        ++visited;
        queue.push_back(next);
      }
    };
    auto out_it = out_.find(node);
    if (out_it != out_.end()) {
      for (size_t edge_id : out_it->second) {
        visit(node_index_.at(edges_[edge_id].to));
      }
    }
    auto in_it = in_.find(node);
    if (in_it != in_.end()) {
      for (size_t edge_id : in_it->second) {
        visit(node_index_.at(edges_[edge_id].from));
      }
    }
  }
  return visited == nodes_.size();
}

std::vector<std::string> Digraph::Roots() const {
  std::vector<std::string> roots;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    auto in_it = in_.find(i);
    if (in_it == in_.end() || in_it->second.empty()) roots.push_back(nodes_[i]);
  }
  return roots;
}

Result<std::vector<std::string>> Digraph::TopologicalOrder() const {
  std::vector<size_t> in_degree(nodes_.size(), 0);
  for (const Edge& edge : edges_) ++in_degree[node_index_.at(edge.to)];

  // Kahn's algorithm; the ready list is kept sorted by insertion index so
  // the order is deterministic.
  std::deque<size_t> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  std::vector<std::string> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    size_t node = ready.front();
    ready.pop_front();
    order.push_back(nodes_[node]);
    auto out_it = out_.find(node);
    if (out_it == out_.end()) continue;
    for (size_t edge_id : out_it->second) {
      size_t next = node_index_.at(edges_[edge_id].to);
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::ConstraintViolation("digraph: graph contains a cycle");
  }
  return order;
}

Result<std::string> Digraph::CheckRootedDag() const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("digraph: empty graph is not a rooted DAG");
  }
  if (!IsAcyclic()) {
    return Status::ConstraintViolation("digraph: graph contains a cycle");
  }
  if (!IsCoherent()) {
    return Status::ConstraintViolation("digraph: graph is not coherent");
  }
  std::vector<std::string> roots = Roots();
  if (roots.size() != 1) {
    return Status::ConstraintViolation(
        "digraph: expected exactly one root, found " +
        std::to_string(roots.size()));
  }
  return roots[0];
}

std::set<std::string> Digraph::ReachableFrom(const std::string& start) const {
  std::set<std::string> seen;
  auto it = node_index_.find(start);
  if (it == node_index_.end()) return seen;
  std::deque<size_t> queue = {it->second};
  seen.insert(start);
  while (!queue.empty()) {
    size_t node = queue.front();
    queue.pop_front();
    auto out_it = out_.find(node);
    if (out_it == out_.end()) continue;
    for (size_t edge_id : out_it->second) {
      const std::string& to = edges_[edge_id].to;
      if (seen.insert(to).second) queue.push_back(node_index_.at(to));
    }
  }
  return seen;
}

}  // namespace mad
