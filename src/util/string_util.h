#ifndef MAD_UTIL_STRING_UTIL_H_
#define MAD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mad {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep=", ").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Case-insensitive ASCII equality (used for MQL keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view text);

/// True iff `text` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view text);

/// Quotes a string for display: abc -> 'abc', with ' doubled.
std::string QuoteString(std::string_view text);

}  // namespace mad

#endif  // MAD_UTIL_STRING_UTIL_H_
