#ifndef MAD_UTIL_THREAD_POOL_H_
#define MAD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mad {

/// A small fixed-purpose worker pool for data-parallel fan-out: one job at a
/// time, chunked over an index range with a shared work queue (an atomic
/// next-chunk cursor), the calling thread participating as worker 0..n-1.
///
/// Workers are started lazily and kept alive across jobs, so repeated
/// ParallelFor calls (one per molecule derivation) pay no thread-spawn cost.
/// Jobs are serialized: a second caller blocks until the first job finished.
/// ParallelFor must not be called from inside a job body (no nesting).
class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide shared pool.
  static ThreadPool& Shared();

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned DefaultParallelism();

  /// Runs `body(worker, begin, end)` over chunks of [0, count) using up to
  /// `parallelism` threads (the caller included); blocks until every index
  /// is processed. `worker` is a dense job-local index in [0, parallelism)
  /// usable to address per-worker scratch. Chunks are handed out through a
  /// shared cursor, so any worker may process any chunk — callers that need
  /// deterministic output must write results into per-index slots, never
  /// append in completion order.
  void ParallelFor(size_t count, size_t chunk_size, unsigned parallelism,
                   const std::function<void(unsigned worker, size_t begin,
                                            size_t end)>& body);

 private:
  void EnsureWorkers(unsigned n);
  void WorkerLoop();
  void RunSlice();

  std::mutex job_serial_mu_;  // serializes whole jobs

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // the caller waits for running_ == 0
  uint64_t generation_ = 0;
  bool stop_ = false;
  unsigned running_ = 0;  // workers currently inside the job

  // State of the current job; readable by late-waking workers of an older
  // generation, which is safe because they bail out on next_ >= count_
  // before ever touching body_.
  const std::function<void(unsigned, size_t, size_t)>* body_ = nullptr;
  size_t count_ = 0;
  size_t chunk_ = 1;
  unsigned max_slots_ = 0;
  std::atomic<size_t> next_{0};
  std::atomic<unsigned> slots_{0};

  std::vector<std::thread> workers_;
};

}  // namespace mad

#endif  // MAD_UTIL_THREAD_POOL_H_
