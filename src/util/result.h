#ifndef MAD_UTIL_RESULT_H_
#define MAD_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace mad {

/// Either a value of type T or a non-OK Status, in the style of
/// arrow::Result / absl::StatusOr. Accessing the value of a failed Result is
/// a programming error and asserts in debug builds. [[nodiscard]], like
/// Status: an ignored Result is an ignored failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value — enables `return some_value;`.
  Result(T value) : repr_(std::move(value)) {}
  /// Implicit construction from a non-OK status — enables
  /// `return Status::InvalidArgument(...);`.
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the carried status; OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status out of the enclosing function.
#define MAD_ASSIGN_OR_RETURN(lhs, expr)                      \
  MAD_ASSIGN_OR_RETURN_IMPL_(                                \
      MAD_RESULT_CONCAT_(_mad_result_, __LINE__), lhs, expr)

#define MAD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define MAD_RESULT_CONCAT_(a, b) MAD_RESULT_CONCAT_IMPL_(a, b)
#define MAD_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace mad

#endif  // MAD_UTIL_RESULT_H_
