#ifndef MAD_UTIL_TRACE_H_
#define MAD_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mad {

/// Per-query operator tracing: while a QueryTrace is installed (TraceScope),
/// instrumented code opens ScopedSpans that record a tree of timed operator
/// spans — derivation fan-out, algebra operators, molecule ops, recursive
/// expansion rounds, WAL appends/fsyncs — each with wall time, cardinalities
/// in/out, and the recording thread.
///
/// The ambient trace is thread-local, so deep call sites (the WAL under a
/// session statement, an algebra operator under a molecule op) need no API
/// changes to participate: they see the installing thread's trace. Worker
/// threads spawned by ThreadPool do NOT inherit it — per-root derivation work
/// deliberately stays span-free (aggregated into DerivationStats and the
/// metrics registry instead) to keep hot-loop overhead near zero. When no
/// trace is installed, ScopedSpan construction is a null-pointer check.

/// One completed operator span. `parent` indexes into QueryTrace::spans()
/// (kNoParent for roots); children always appear after their parent.
struct TraceSpan {
  static constexpr int32_t kNoParent = -1;

  int32_t id = 0;
  int32_t parent = kNoParent;
  /// Operator name, e.g. "select", "derive", "sigma", "pi", "wal.sync".
  std::string name;
  /// Free-form detail: molecule type, predicate, link type, ...
  std::string note;
  /// Nanoseconds from the trace epoch to span start.
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Cardinality in/out; meaning is operator-specific (atoms, links, or
  /// molecules). -1 = not applicable.
  int64_t rows_in = -1;
  int64_t rows_out = -1;
  /// Dense per-trace thread index ("t0", "t1", ...) — t0 is the installer.
  uint32_t thread = 0;
};

/// A tree of spans recorded during one statement's execution.
///
/// Span completion appends under a mutex; this is off the per-row hot path
/// (spans wrap whole operators, not rows), so contention is negligible.
class QueryTrace {
 public:
  QueryTrace();

  /// Spans in start order; a span's parent always has a smaller id, and
  /// `id` equals the span's index. Safe to call once tracing has finished.
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Total wall time from trace creation to FinishRoot (or the latest span
  /// end seen, when the root was never closed).
  uint64_t total_duration_ns() const { return total_duration_ns_; }

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  // -- internal API used by TraceScope / ScopedSpan --------------------

  int32_t BeginSpan(const char* name, std::string note, int32_t parent);
  void EndSpan(int32_t id, int64_t rows_in, int64_t rows_out);
  void SetTotalDuration(uint64_t ns) { total_duration_ns_ = ns; }

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<uint64_t> thread_ids_;  // hashed std::thread::id -> dense index
  uint64_t total_duration_ns_ = 0;
};

/// Installs `trace` as the calling thread's ambient trace for the scope's
/// lifetime (restoring any previous one on exit) and records the overall
/// wall time into QueryTrace::total_duration_ns.
class TraceScope {
 public:
  explicit TraceScope(QueryTrace* trace);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  QueryTrace* trace_;
  QueryTrace* previous_;
  int32_t previous_parent_;
  std::chrono::steady_clock::time_point start_;
};

/// The calling thread's ambient trace, or nullptr when tracing is off.
QueryTrace* CurrentTrace();

/// RAII span under the ambient trace. A no-op (one branch) when no trace is
/// installed. Nested ScopedSpans on the same thread form the tree.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::string note = std::string());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Cardinality annotations; ignored when tracing is off.
  void set_rows_in(int64_t n) { rows_in_ = n; }
  void set_rows_out(int64_t n) { rows_out_ = n; }

  bool active() const { return trace_ != nullptr; }

 private:
  QueryTrace* trace_;
  int32_t id_ = -1;
  int32_t saved_parent_ = TraceSpan::kNoParent;
  int64_t rows_in_ = -1;
  int64_t rows_out_ = -1;
};

}  // namespace mad

#endif  // MAD_UTIL_TRACE_H_
