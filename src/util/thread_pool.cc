#include "util/thread_pool.h"

#include <algorithm>

namespace mad {

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

unsigned ThreadPool::DefaultParallelism() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::EnsureWorkers(unsigned n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      ++running_;
    }
    RunSlice();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunSlice() {
  // Job-local worker identity; threads beyond the requested parallelism
  // (stragglers of an earlier, already-finished generation) sit the job out.
  unsigned slot = slots_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= max_slots_) return;
  for (;;) {
    size_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= count_) return;
    size_t end = std::min(begin + chunk_, count_);
    (*body_)(slot, begin, end);
  }
}

void ThreadPool::ParallelFor(
    size_t count, size_t chunk_size, unsigned parallelism,
    const std::function<void(unsigned, size_t, size_t)>& body) {
  if (count == 0) return;
  unsigned p = std::max(1u, parallelism);
  size_t chunk = std::max<size_t>(1, chunk_size);
  if (p == 1 || count <= chunk) {
    body(0, 0, count);
    return;
  }
  std::lock_guard<std::mutex> job_lock(job_serial_mu_);
  EnsureWorkers(p - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    chunk_ = chunk;
    max_slots_ = p;
    next_.store(0, std::memory_order_relaxed);
    slots_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  RunSlice();  // the caller is a worker too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return running_ == 0 && next_.load(std::memory_order_relaxed) >= count_;
  });
}

}  // namespace mad
