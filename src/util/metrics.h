#ifndef MAD_UTIL_METRICS_H_
#define MAD_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mad {

/// Process-wide metrics: named counters, gauges, and latency histograms.
///
/// Design goals, in order:
///   1. the *update* path is lock-free (a relaxed atomic add) so hot loops
///      and ThreadPool workers can bump counters without contention;
///   2. instrument addresses are stable for the lifetime of the process, so
///      call sites may cache `static Counter& c = Registry::Global()...`
///      and skip the name lookup entirely after the first call;
///   3. snapshots are consistent enough for reporting (each value is read
///      atomically; cross-metric skew is acceptable).
///
/// Lookup (`GetCounter` etc.) takes a mutex over a std::map whose nodes never
/// move and are never erased — `Reset()` zeroes values but keeps every
/// registered instrument alive, precisely so cached references stay valid.

/// Monotonic event count (rows scanned, fsyncs issued, ...).
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written level (open databases, configured parallelism, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency distribution over fixed power-of-two microsecond buckets:
/// bucket i counts observations with value_us in [2^(i-1), 2^i), bucket 0
/// counts [0, 1). 32 buckets cover up to ~35 minutes; the last bucket is a
/// catch-all. Also tracks count/sum/max for mean and tail reporting.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Observe(uint64_t value_us);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

  /// Smallest upper bound `b` such that at least `quantile` (in [0,1]) of
  /// the recorded observations fall in buckets whose range ends at or below
  /// 2^b microseconds. Returns 0 when empty.
  uint64_t ApproximateQuantileUs(double quantile) const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// One metric row in a snapshot, already stringly-typed for reporting.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  // Counter/gauge: `value`. Histogram: count/sum/max/p50/p99 in microseconds.
  int64_t value = 0;
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t max_us = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

/// All instruments at one point in time, sorted by (kind-independent) name.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;
};

class Registry {
 public:
  /// The process-wide registry used by all madlib instrumentation.
  static Registry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. References stay valid for the registry's lifetime; names are
  /// namespaced with dots, e.g. "derivation.links_scanned".
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Zeroes every instrument's value. Registered instruments stay alive so
  /// references cached by call sites remain valid.
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // std::map: node-based, so values never move on insert.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII timer recording its scope's wall time into a histogram (and
/// optionally adding it to a counter of cumulative microseconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    hist_->Observe(static_cast<uint64_t>(us));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mad

#endif  // MAD_UTIL_METRICS_H_
