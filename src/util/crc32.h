#ifndef MAD_UTIL_CRC32_H_
#define MAD_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mad {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// protecting every WAL record frame and checkpoint section of the
/// durability subsystem. Software slice-by-one implementation; fast enough
/// for the log sizes madlib writes, and dependency-free.
///
/// `seed` lets callers chain partial buffers:
///   Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace mad

#endif  // MAD_UTIL_CRC32_H_
