#ifndef MAD_UTIL_DIGRAPH_H_
#define MAD_UTIL_DIGRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"

namespace mad {

/// A small labelled directed multigraph over string-named nodes.
///
/// This is the structural workhorse behind the paper's `md_graph` predicate
/// (Def. 5): a molecule-type description must form a directed, acyclic,
/// coherent graph with exactly one root. Nodes are stored in insertion
/// order; edges may carry a label (the directed link-type name).
class Digraph {
 public:
  struct Edge {
    std::string label;
    std::string from;
    std::string to;
  };

  /// Adds a node; returns false if it already exists.
  bool AddNode(const std::string& name);
  /// Adds a labelled edge; both endpoints must already be nodes.
  Status AddEdge(const std::string& label, const std::string& from,
                 const std::string& to);

  bool HasNode(const std::string& name) const;
  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }
  const std::vector<std::string>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Outgoing edges of `node`, in insertion order.
  std::vector<const Edge*> OutEdges(const std::string& node) const;
  /// Incoming edges of `node`, in insertion order.
  std::vector<const Edge*> InEdges(const std::string& node) const;

  /// True iff the graph has no directed cycle.
  bool IsAcyclic() const;
  /// True iff the graph is weakly connected (the paper's "coherent").
  /// The empty graph is not coherent; a single node is.
  bool IsCoherent() const;
  /// Nodes with no incoming edge, in insertion order.
  std::vector<std::string> Roots() const;

  /// Topological order of the nodes; fails on cyclic graphs. Ties are broken
  /// by insertion order, making the result deterministic.
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// Checks the full `md_graph` property set: nonempty, directed-acyclic,
  /// coherent, exactly one root. Returns the root name on success.
  Result<std::string> CheckRootedDag() const;

  /// Nodes reachable from `start` (including `start`) following edge
  /// direction.
  std::set<std::string> ReachableFrom(const std::string& start) const;

 private:
  std::vector<std::string> nodes_;
  std::map<std::string, size_t> node_index_;
  std::vector<Edge> edges_;
  // Node index -> indexes into edges_.
  std::map<size_t, std::vector<size_t>> out_;
  std::map<size_t, std::vector<size_t>> in_;
};

}  // namespace mad

#endif  // MAD_UTIL_DIGRAPH_H_
