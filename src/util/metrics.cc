#include "util/metrics.h"

#include <algorithm>
#include <bit>

namespace mad {

namespace {

// Bucket index for a microsecond value: 0 for 0, else 1 + floor(log2(v)),
// clamped to the last bucket.
size_t BucketIndex(uint64_t value_us) {
  if (value_us == 0) return 0;
  size_t idx = 64 - static_cast<size_t>(std::countl_zero(value_us));
  return std::min(idx, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::Observe(uint64_t value_us) {
  buckets_[BucketIndex(value_us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(value_us, std::memory_order_relaxed);
  uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (value_us > seen &&
         !max_us_.compare_exchange_weak(seen, value_us,
                                        std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::ApproximateQuantileUs(double quantile) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t target = static_cast<uint64_t>(quantile * static_cast<double>(total));
  if (target < 1) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= target) {
      // Upper bound of bucket i: 2^(i-1)..2^i-1 rounds up to 2^i - 1; bucket
      // 0 holds only the value 0.
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return max_us();
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.samples.reserve(counters_.size() + gauges_.size() +
                           histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.value = static_cast<int64_t>(c.value());
    snapshot.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.value = g.value();
    snapshot.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.count = h.count();
    s.sum_us = h.sum_us();
    s.max_us = h.max_us();
    s.p50_us = h.ApproximateQuantileUs(0.5);
    s.p99_us = h.ApproximateQuantileUs(0.99);
    snapshot.samples.push_back(std::move(s));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snapshot;
}

}  // namespace mad
