#include "storage/atom_store.h"

namespace mad {

Status AtomStore::Insert(Atom atom) {
  if (!atom.id.valid()) {
    return Status::InvalidArgument("atom id must be valid");
  }
  if (by_id_.count(atom.id) > 0) {
    return Status::AlreadyExists("atom #" + std::to_string(atom.id.value) +
                                 " already present");
  }
  by_id_[atom.id] = atoms_.size();
  atoms_.push_back(std::move(atom));
  return Status::OK();
}

Status AtomStore::Erase(AtomId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("atom #" + std::to_string(id.value) +
                            " not present");
  }
  size_t pos = it->second;
  by_id_.erase(it);
  atoms_.erase(atoms_.begin() + static_cast<ptrdiff_t>(pos));
  // Reindex the tail to keep insertion order stable.
  for (size_t i = pos; i < atoms_.size(); ++i) by_id_[atoms_[i].id] = i;
  return Status::OK();
}

const Atom* AtomStore::Find(AtomId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  return &atoms_[it->second];
}

}  // namespace mad
