#include "storage/link_store.h"

#include <algorithm>

namespace mad {

namespace {
const std::vector<AtomId> kNoPartners;

/// Removes the first occurrence of `id`, preserving the relative order of
/// the remaining entries (the Partners() ordering guarantee).
void RemoveOne(std::vector<AtomId>& list, AtomId id) {
  auto it = std::find(list.begin(), list.end(), id);
  if (it != list.end()) list.erase(it);
}
}  // namespace

Status LinkStore::Insert(AtomId first, AtomId second) {
  if (!first.valid() || !second.valid()) {
    return Status::InvalidArgument("link endpoints must be valid atom ids");
  }
  Link link{first, second};
  if (!index_.emplace(link, links_.size()).second) {
    return Status::AlreadyExists("link <#" + std::to_string(first.value) +
                                 ", #" + std::to_string(second.value) +
                                 "> already present");
  }
  links_.push_back(link);
  forward_[first].push_back(second);
  backward_[second].push_back(first);
  return Status::OK();
}

void LinkStore::EraseFromLinks(const Link& link) {
  auto it = index_.find(link);
  size_t slot = it->second;
  index_.erase(it);
  if (slot + 1 != links_.size()) {
    links_[slot] = links_.back();
    index_[links_[slot]] = slot;
  }
  links_.pop_back();
}

Status LinkStore::Erase(AtomId first, AtomId second) {
  Link link{first, second};
  if (index_.count(link) == 0) {
    return Status::NotFound("link <#" + std::to_string(first.value) + ", #" +
                            std::to_string(second.value) + "> not present");
  }
  EraseFromLinks(link);
  RemoveOne(forward_[first], second);
  RemoveOne(backward_[second], first);
  return Status::OK();
}

size_t LinkStore::EraseAllOf(AtomId atom) {
  size_t erased = 0;
  // Links with `atom` in the first role (reflexive self-links included).
  auto fit = forward_.find(atom);
  if (fit != forward_.end()) {
    for (AtomId second : fit->second) {
      EraseFromLinks(Link{atom, second});
      if (second != atom) RemoveOne(backward_[second], atom);
      ++erased;
    }
    forward_.erase(fit);
  }
  // Links with `atom` in the second role; self-links were handled above and
  // their backward entry dies with the wholesale erase below.
  auto bit = backward_.find(atom);
  if (bit != backward_.end()) {
    for (AtomId first : bit->second) {
      if (first == atom) continue;
      EraseFromLinks(Link{first, atom});
      RemoveOne(forward_[first], atom);
      ++erased;
    }
    backward_.erase(bit);
  }
  return erased;
}

bool LinkStore::Contains(AtomId first, AtomId second) const {
  return index_.count(Link{first, second}) > 0;
}

const std::vector<AtomId>& LinkStore::Partners(AtomId atom,
                                               LinkDirection direction) const {
  const auto& index =
      direction == LinkDirection::kForward ? forward_ : backward_;
  auto it = index.find(atom);
  if (it == index.end()) return kNoPartners;
  return it->second;
}

}  // namespace mad
