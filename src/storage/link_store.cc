#include "storage/link_store.h"

#include <algorithm>

namespace mad {

namespace {
const std::vector<AtomId> kNoPartners;

void RemoveOne(std::vector<AtomId>& list, AtomId id) {
  auto it = std::find(list.begin(), list.end(), id);
  if (it != list.end()) list.erase(it);
}
}  // namespace

Status LinkStore::Insert(AtomId first, AtomId second) {
  if (!first.valid() || !second.valid()) {
    return Status::InvalidArgument("link endpoints must be valid atom ids");
  }
  Link link{first, second};
  if (!present_.insert(link).second) {
    return Status::AlreadyExists("link <#" + std::to_string(first.value) +
                                 ", #" + std::to_string(second.value) +
                                 "> already present");
  }
  links_.push_back(link);
  forward_[first].push_back(second);
  backward_[second].push_back(first);
  return Status::OK();
}

Status LinkStore::Erase(AtomId first, AtomId second) {
  Link link{first, second};
  if (present_.erase(link) == 0) {
    return Status::NotFound("link <#" + std::to_string(first.value) + ", #" +
                            std::to_string(second.value) + "> not present");
  }
  links_.erase(std::find(links_.begin(), links_.end(), link));
  RemoveOne(forward_[first], second);
  RemoveOne(backward_[second], first);
  return Status::OK();
}

size_t LinkStore::EraseAllOf(AtomId atom) {
  std::vector<Link> doomed;
  for (const Link& link : links_) {
    if (link.first == atom || link.second == atom) doomed.push_back(link);
  }
  for (const Link& link : doomed) {
    Status s = Erase(link.first, link.second);
    (void)s;  // Present by construction.
  }
  return doomed.size();
}

bool LinkStore::Contains(AtomId first, AtomId second) const {
  return present_.count(Link{first, second}) > 0;
}

const std::vector<AtomId>& LinkStore::Partners(AtomId atom,
                                               LinkDirection direction) const {
  const auto& index =
      direction == LinkDirection::kForward ? forward_ : backward_;
  auto it = index.find(atom);
  if (it == index.end()) return kNoPartners;
  return it->second;
}

}  // namespace mad
