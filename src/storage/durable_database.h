#ifndef MAD_STORAGE_DURABLE_DATABASE_H_
#define MAD_STORAGE_DURABLE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/database.h"
#include "storage/wal.h"
#include "util/result.h"

namespace mad {

/// Tuning knobs for DurableDatabase::Open.
struct DurabilityOptions {
  /// Name given to the database when the directory holds no checkpoint yet.
  std::string database_name = "db";
  /// When true every mutation is fsync'd before the mutating call returns;
  /// when false mutations batch in the group-commit buffer (an OS or
  /// process crash may lose the unsynced tail — never more).
  bool sync = false;
  /// Flush threshold of the WAL group-commit buffer.
  size_t group_commit_bytes = 1 << 16;
  /// How many generations before the current one survive checkpoint GC.
  /// Keeping one lets recovery fall back should the newest checkpoint be
  /// damaged after the fact.
  uint64_t keep_generations = 1;
};

/// Counters surfaced to MQL sessions (printed like DerivationStats).
struct DurabilityStats {
  std::string directory;
  uint64_t generation = 0;
  bool sync = false;
  // Recovery (filled at Open).
  bool created_fresh = false;
  uint64_t checkpoints_skipped = 0;
  uint64_t replayed_records = 0;
  uint64_t wal_discarded_bytes = 0;
  bool wal_torn_tail = false;
  double recovery_ms = 0.0;
  // Log activity since Open.
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t flush_count = 0;
  uint64_t sync_count = 0;
  // Checkpoints taken since Open.
  uint64_t checkpoint_count = 0;
  uint64_t last_checkpoint_bytes = 0;
  double last_checkpoint_ms = 0.0;
};

/// Owns a Database whose every mutation is mirrored into a write-ahead log,
/// so the state survives a crash at any instant (see recovery.h for the
/// startup path and DESIGN.md §7 for the invariants).
///
/// The wrapper installs itself as the Database's MutationListener: all
/// mutations — MQL statements, direct API calls, algebra operators that
/// enlarge the database — are logged with no cooperation from call sites.
/// Queries read the wrapped Database directly.
///
/// Listener callbacks cannot fail, so a WAL append error is remembered and
/// returned from the next Flush()/Sync()/Checkpoint() (and by last_error());
/// the in-memory database stays usable.
class DurableDatabase : public MutationListener {
 public:
  /// Opens (creating if needed) a durable database directory, recovers the
  /// newest consistent state, truncates any torn WAL tail, and resumes
  /// logging. A fresh directory immediately writes an empty generation-0
  /// checkpoint so the directory is recoverable from the start.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      const std::string& dir, const DurabilityOptions& options = {});

  ~DurableDatabase() override;

  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  Database& database() { return *db_; }
  const Database& database() const { return *db_; }

  const std::string& directory() const { return dir_; }
  uint64_t generation() const { return generation_; }

  /// Serializes the current state to a new checkpoint generation: syncs the
  /// WAL, writes checkpoint-(g+1) through a temp file + atomic rename +
  /// directory fsync, rotates to an empty wal-(g+1), and garbage-collects
  /// generations older than keep_generations.
  Status Checkpoint();

  /// Pushes the group-commit buffer to the OS (no fsync).
  Status Flush();

  /// Makes everything logged so far durable.
  Status Sync();

  void set_sync(bool sync);
  bool sync_enabled() const { return wal_->sync_enabled(); }

  /// First WAL append error since Open, or OK.
  Status last_error() const { return append_error_; }

  DurabilityStats stats() const;

  // MutationListener — one WAL record per successful mutation.
  void OnDefineAtomType(const std::string& aname,
                        const Schema& description) override;
  void OnDefineLinkType(const std::string& lname, const std::string& first,
                        const std::string& second,
                        LinkCardinality cardinality) override;
  void OnDropAtomType(const std::string& aname) override;
  void OnDropLinkType(const std::string& lname) override;
  void OnInsertAtom(const std::string& aname, const Atom& atom) override;
  void OnUpdateAtom(const std::string& aname, const Atom& atom) override;
  void OnDeleteAtom(const std::string& aname, AtomId id) override;
  void OnInsertLink(const std::string& lname, AtomId first,
                    AtomId second) override;
  void OnEraseLink(const std::string& lname, AtomId first,
                   AtomId second) override;
  void OnCreateIndex(const std::string& aname,
                     const std::string& attribute) override;
  void OnDropIndex(const std::string& aname,
                   const std::string& attribute) override;

 private:
  DurableDatabase() = default;

  void Log(WalRecord record);

  std::string dir_;
  DurabilityOptions options_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t generation_ = 0;
  Status append_error_ = Status::OK();

  // Recovery facts for stats().
  bool created_fresh_ = false;
  uint64_t checkpoints_skipped_ = 0;
  uint64_t replayed_records_ = 0;
  uint64_t wal_discarded_bytes_ = 0;
  bool wal_torn_tail_ = false;
  double recovery_ms_ = 0.0;

  // Carried across WAL rotations (WalWriter counters reset per file).
  uint64_t records_appended_base_ = 0;
  uint64_t bytes_appended_base_ = 0;
  uint64_t flush_count_base_ = 0;
  uint64_t sync_count_base_ = 0;

  uint64_t checkpoint_count_ = 0;
  uint64_t last_checkpoint_bytes_ = 0;
  double last_checkpoint_ms_ = 0.0;
};

}  // namespace mad

#endif  // MAD_STORAGE_DURABLE_DATABASE_H_
