#ifndef MAD_STORAGE_WAL_H_
#define MAD_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/schema.h"
#include "core/value.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// One logical database mutation, as logged to (and replayed from) the
/// write-ahead log. Field usage depends on `kind`; unused fields keep their
/// defaults and are neither encoded nor decoded.
struct WalRecord {
  enum class Kind : uint8_t {
    kDefineAtomType = 1,  // name, schema
    kDefineLinkType = 2,  // name, first, second, cardinality
    kDropAtomType = 3,    // name
    kDropLinkType = 4,    // name
    kInsertAtom = 5,      // name, id, values
    kUpdateAtom = 6,      // name, id, values
    kDeleteAtom = 7,      // name, id
    kInsertLink = 8,      // name, id (first), id2 (second)
    kEraseLink = 9,       // name, id (first), id2 (second)
    kCreateIndex = 10,    // name, attribute
    kDropIndex = 11,      // name, attribute
  };

  Kind kind = Kind::kInsertAtom;
  /// Atom- or link-type name (every kind).
  std::string name;
  /// End atom-type names of a kDefineLinkType.
  std::string first;
  std::string second;
  LinkCardinality cardinality = LinkCardinality::kManyToMany;
  /// Attribute description of a kDefineAtomType.
  Schema schema;
  /// Atom id, or a link's first endpoint.
  uint64_t id = 0;
  /// A link's second endpoint.
  uint64_t id2 = 0;
  /// Attribute values of a kInsertAtom / kUpdateAtom.
  std::vector<Value> values;
  /// Attribute name of a kCreateIndex / kDropIndex.
  std::string attribute;
};

/// Encodes the record payload (kind byte + kind-specific fields) without
/// framing.
std::string EncodeWalRecordPayload(const WalRecord& record);

/// Decodes one payload previously produced by EncodeWalRecordPayload.
/// Trailing bytes, unknown kinds, or malformed fields are a ParseError.
Result<WalRecord> DecodeWalRecordPayload(std::string_view payload);

/// Wraps the payload in the on-disk frame [u32 len][u32 crc32][payload].
std::string FrameWalRecord(const WalRecord& record);

/// Result of scanning a WAL byte stream. Scanning is tolerant by design: a
/// torn or corrupted tail (truncated frame, CRC mismatch, undecodable
/// payload) terminates the scan cleanly after the last valid record — it is
/// reported, never an error. This is the crash-recovery contract: fsync
/// ordering guarantees every complete frame before the tear is intact.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Bytes covered by fully valid frames; the WAL should be truncated to
  /// this length before further appends.
  uint64_t valid_bytes = 0;
  /// Bytes after valid_bytes that were discarded.
  uint64_t discarded_bytes = 0;
  /// True when any bytes were discarded.
  bool torn_tail = false;
};

/// Scans an in-memory WAL image. Never fails — corruption only shortens the
/// result (see WalReadResult).
WalReadResult ReadWal(std::string_view bytes);

/// Reads and scans a WAL file; NotFound if the file cannot be opened.
Result<WalReadResult> ReadWalFile(const std::string& path);

/// Applies one decoded record to `db`. Replaying a WAL in order against the
/// checkpoint it extends reproduces the logged database state exactly.
Status ApplyWalRecord(const WalRecord& record, Database* db);

/// Options for WalWriter::Open.
struct WalWriterOptions {
  /// When true every Append is flushed and fsync'd before returning
  /// (durability per mutation); when false frames accumulate in the
  /// group-commit buffer and reach the OS only when it fills, on Sync(),
  /// or on close.
  bool sync = true;
  /// Flush threshold of the group-commit buffer.
  size_t group_commit_bytes = 1 << 16;
  /// When set, the file is truncated to this length before appending —
  /// used by recovery to cut a torn tail off an existing log.
  bool has_truncate_to = false;
  uint64_t truncate_to = 0;
};

/// Append-only writer of CRC-framed WAL records over a POSIX fd.
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 const WalWriterOptions& opts);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frames and buffers one record; see WalWriterOptions::sync for when it
  /// reaches disk.
  Status Append(const WalRecord& record);

  /// Writes the group-commit buffer to the file (no fsync).
  Status Flush();

  /// Flush + fsync: everything appended so far is durable on return.
  Status Sync();

  void set_sync(bool sync) { sync_ = sync; }
  bool sync_enabled() const { return sync_; }

  uint64_t records_appended() const { return records_appended_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t flush_count() const { return flush_count_; }
  uint64_t sync_count() const { return sync_count_; }

 private:
  WalWriter(int fd, bool sync, size_t group_commit_bytes)
      : fd_(fd), sync_(sync), group_commit_bytes_(group_commit_bytes) {}

  int fd_ = -1;
  bool sync_ = true;
  size_t group_commit_bytes_ = 1 << 16;
  std::string buffer_;
  uint64_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t flush_count_ = 0;
  uint64_t sync_count_ = 0;
};

}  // namespace mad

#endif  // MAD_STORAGE_WAL_H_
