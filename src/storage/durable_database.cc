#include "storage/durable_database.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "storage/binary_codec.h"
#include "storage/recovery.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace mad {

namespace {

namespace fs = std::filesystem;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// fsyncs a directory so a just-created or just-renamed entry inside it is
/// durable (POSIX requires syncing the containing directory, not only the
/// file).
Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory for fsync " + dir + ": " +
                            std::strerror(errno));
  }
  Status status = Status::OK();
  if (::fsync(fd) != 0) {
    status = Status::Internal("directory fsync failed " + dir + ": " +
                              std::strerror(errno));
  }
  ::close(fd);
  return status;
}

/// Writes `bytes` to `dir/filename` crash-atomically: temp file, fsync,
/// rename over the target, directory fsync. Readers either see the complete
/// new file or no file — never a torn one.
Status WriteFileAtomic(const std::string& dir, const std::string& filename,
                       const std::string& bytes) {
  std::string tmp_path = (fs::path(dir) / (filename + ".tmp")).string();
  std::string final_path = (fs::path(dir) / filename).string();

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + tmp_path + ": " +
                            std::strerror(errno));
  }
  const char* data = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::Internal("write failed " + tmp_path + ": " +
                                  std::strerror(errno));
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return s;
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status s = Status::Internal("fsync failed " + tmp_path + ": " +
                                std::strerror(errno));
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return s;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status s = Status::Internal("rename failed " + final_path + ": " +
                                std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return s;
  }
  return SyncDirectory(dir);
}

}  // namespace

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& dir, const DurabilityOptions& options) {
  auto start = std::chrono::steady_clock::now();

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create durable database directory " +
                            dir + ": " + ec.message());
  }

  MAD_ASSIGN_OR_RETURN(RecoveryResult recovered,
                       RecoverDatabase(dir, options.database_name));

  auto durable = std::unique_ptr<DurableDatabase>(new DurableDatabase());
  durable->dir_ = dir;
  durable->options_ = options;
  durable->db_ = std::move(recovered.db);
  durable->generation_ = recovered.generation;
  durable->created_fresh_ = recovered.created_fresh;
  durable->checkpoints_skipped_ = recovered.checkpoints_skipped;
  durable->replayed_records_ = recovered.replayed_records;
  durable->wal_discarded_bytes_ = recovered.wal_discarded_bytes;
  durable->wal_torn_tail_ = recovered.wal_torn_tail;

  if (recovered.created_fresh) {
    // Make the empty generation-0 state durable right away: from here on the
    // directory always holds a loadable checkpoint.
    MAD_ASSIGN_OR_RETURN(std::string bytes,
                         SerializeDatabaseBinary(*durable->db_));
    MAD_RETURN_IF_ERROR(
        WriteFileAtomic(dir, CheckpointFileName(0), bytes));
  }

  WalWriterOptions wal_options;
  wal_options.sync = options.sync;
  wal_options.group_commit_bytes = options.group_commit_bytes;
  // Cut off a torn tail (or any tail we refused to replay) before the next
  // append lands behind it.
  wal_options.has_truncate_to = true;
  wal_options.truncate_to = recovered.wal_valid_bytes;
  std::string wal_path =
      (fs::path(dir) / WalFileName(durable->generation_)).string();
  MAD_ASSIGN_OR_RETURN(durable->wal_, WalWriter::Open(wal_path, wal_options));
  MAD_RETURN_IF_ERROR(SyncDirectory(dir));

  durable->db_->SetMutationListener(durable.get());
  durable->recovery_ms_ = MsSince(start);
  static Counter& opens = Registry::Global().GetCounter("storage.opens");
  static Counter& replayed =
      Registry::Global().GetCounter("storage.replayed_records");
  static Histogram& recovery =
      Registry::Global().GetHistogram("storage.recovery_us");
  opens.Increment();
  replayed.Add(durable->replayed_records_);
  recovery.Observe(static_cast<uint64_t>(durable->recovery_ms_ * 1000.0));
  return durable;
}

DurableDatabase::~DurableDatabase() {
  if (db_ != nullptr) db_->SetMutationListener(nullptr);
  // WalWriter's destructor flushes the group-commit buffer best-effort.
}

Status DurableDatabase::Checkpoint() {
  MAD_RETURN_IF_ERROR(append_error_);
  ScopedSpan span("checkpoint", dir_);
  static Counter& checkpoints =
      Registry::Global().GetCounter("storage.checkpoints");
  static Histogram& latency =
      Registry::Global().GetHistogram("storage.checkpoint_us");
  checkpoints.Increment();
  ScopedTimer timer(latency);
  auto start = std::chrono::steady_clock::now();

  // Everything logged so far must be on disk before the old generation can
  // be superseded (and eventually GC'd).
  MAD_RETURN_IF_ERROR(wal_->Sync());

  MAD_ASSIGN_OR_RETURN(std::string bytes, SerializeDatabaseBinary(*db_));
  uint64_t new_generation = generation_ + 1;
  MAD_RETURN_IF_ERROR(
      WriteFileAtomic(dir_, CheckpointFileName(new_generation), bytes));

  // Rotate to the new generation's empty WAL. Carry the old writer's
  // counters into the session totals first.
  records_appended_base_ += wal_->records_appended();
  bytes_appended_base_ += wal_->bytes_appended();
  flush_count_base_ += wal_->flush_count();
  sync_count_base_ += wal_->sync_count();
  bool sync = wal_->sync_enabled();
  wal_.reset();

  WalWriterOptions wal_options;
  wal_options.sync = sync;
  wal_options.group_commit_bytes = options_.group_commit_bytes;
  wal_options.has_truncate_to = true;
  wal_options.truncate_to = 0;
  std::string wal_path =
      (fs::path(dir_) / WalFileName(new_generation)).string();
  MAD_ASSIGN_OR_RETURN(wal_, WalWriter::Open(wal_path, wal_options));
  MAD_RETURN_IF_ERROR(SyncDirectory(dir_));
  generation_ = new_generation;

  // GC generations older than the keep window; the previous generation's
  // checkpoint + WAL stay behind as a fallback.
  std::error_code ec;
  for (uint64_t g : ListCheckpointGenerations(dir_)) {
    if (g + options_.keep_generations < generation_) {
      fs::remove(fs::path(dir_) / CheckpointFileName(g), ec);
      fs::remove(fs::path(dir_) / WalFileName(g), ec);
    }
  }

  ++checkpoint_count_;
  last_checkpoint_bytes_ = bytes.size();
  last_checkpoint_ms_ = MsSince(start);
  static Counter& checkpoint_bytes =
      Registry::Global().GetCounter("storage.checkpoint_bytes");
  checkpoint_bytes.Add(bytes.size());
  span.set_rows_out(static_cast<int64_t>(bytes.size()));
  return Status::OK();
}

Status DurableDatabase::Flush() {
  MAD_RETURN_IF_ERROR(append_error_);
  return wal_->Flush();
}

Status DurableDatabase::Sync() {
  MAD_RETURN_IF_ERROR(append_error_);
  return wal_->Sync();
}

void DurableDatabase::set_sync(bool sync) { wal_->set_sync(sync); }

DurabilityStats DurableDatabase::stats() const {
  DurabilityStats stats;
  stats.directory = dir_;
  stats.generation = generation_;
  stats.sync = wal_->sync_enabled();
  stats.created_fresh = created_fresh_;
  stats.checkpoints_skipped = checkpoints_skipped_;
  stats.replayed_records = replayed_records_;
  stats.wal_discarded_bytes = wal_discarded_bytes_;
  stats.wal_torn_tail = wal_torn_tail_;
  stats.recovery_ms = recovery_ms_;
  stats.records_appended = records_appended_base_ + wal_->records_appended();
  stats.bytes_appended = bytes_appended_base_ + wal_->bytes_appended();
  stats.flush_count = flush_count_base_ + wal_->flush_count();
  stats.sync_count = sync_count_base_ + wal_->sync_count();
  stats.checkpoint_count = checkpoint_count_;
  stats.last_checkpoint_bytes = last_checkpoint_bytes_;
  stats.last_checkpoint_ms = last_checkpoint_ms_;
  return stats;
}

void DurableDatabase::Log(WalRecord record) {
  Status appended = wal_->Append(record);
  if (!appended.ok() && append_error_.ok()) append_error_ = appended;
}

void DurableDatabase::OnDefineAtomType(const std::string& aname,
                                       const Schema& description) {
  WalRecord record;
  record.kind = WalRecord::Kind::kDefineAtomType;
  record.name = aname;
  record.schema = description;
  Log(std::move(record));
}

void DurableDatabase::OnDefineLinkType(const std::string& lname,
                                       const std::string& first,
                                       const std::string& second,
                                       LinkCardinality cardinality) {
  WalRecord record;
  record.kind = WalRecord::Kind::kDefineLinkType;
  record.name = lname;
  record.first = first;
  record.second = second;
  record.cardinality = cardinality;
  Log(std::move(record));
}

void DurableDatabase::OnDropAtomType(const std::string& aname) {
  WalRecord record;
  record.kind = WalRecord::Kind::kDropAtomType;
  record.name = aname;
  Log(std::move(record));
}

void DurableDatabase::OnDropLinkType(const std::string& lname) {
  WalRecord record;
  record.kind = WalRecord::Kind::kDropLinkType;
  record.name = lname;
  Log(std::move(record));
}

void DurableDatabase::OnInsertAtom(const std::string& aname,
                                   const Atom& atom) {
  WalRecord record;
  record.kind = WalRecord::Kind::kInsertAtom;
  record.name = aname;
  record.id = atom.id.value;
  record.values = atom.values;
  Log(std::move(record));
}

void DurableDatabase::OnUpdateAtom(const std::string& aname,
                                   const Atom& atom) {
  WalRecord record;
  record.kind = WalRecord::Kind::kUpdateAtom;
  record.name = aname;
  record.id = atom.id.value;
  record.values = atom.values;
  Log(std::move(record));
}

void DurableDatabase::OnDeleteAtom(const std::string& aname, AtomId id) {
  WalRecord record;
  record.kind = WalRecord::Kind::kDeleteAtom;
  record.name = aname;
  record.id = id.value;
  Log(std::move(record));
}

void DurableDatabase::OnInsertLink(const std::string& lname, AtomId first,
                                   AtomId second) {
  WalRecord record;
  record.kind = WalRecord::Kind::kInsertLink;
  record.name = lname;
  record.id = first.value;
  record.id2 = second.value;
  Log(std::move(record));
}

void DurableDatabase::OnEraseLink(const std::string& lname, AtomId first,
                                  AtomId second) {
  WalRecord record;
  record.kind = WalRecord::Kind::kEraseLink;
  record.name = lname;
  record.id = first.value;
  record.id2 = second.value;
  Log(std::move(record));
}

void DurableDatabase::OnCreateIndex(const std::string& aname,
                                    const std::string& attribute) {
  WalRecord record;
  record.kind = WalRecord::Kind::kCreateIndex;
  record.name = aname;
  record.attribute = attribute;
  Log(std::move(record));
}

void DurableDatabase::OnDropIndex(const std::string& aname,
                                  const std::string& attribute) {
  WalRecord record;
  record.kind = WalRecord::Kind::kDropIndex;
  record.name = aname;
  record.attribute = attribute;
  Log(std::move(record));
}

}  // namespace mad
