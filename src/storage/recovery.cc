#include "storage/recovery.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "storage/binary_codec.h"
#include "storage/wal.h"

namespace mad {

namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".madb";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";

/// Parses "<prefix><decimal><suffix>"; false on any mismatch.
bool ParseGeneration(const std::string& filename, const std::string& prefix,
                     const std::string& suffix, uint64_t* generation) {
  if (filename.size() <= prefix.size() + suffix.size()) return false;
  if (filename.compare(0, prefix.size(), prefix) != 0) return false;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return false;
  }
  std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  // Reject values that would overflow uint64.
  if (digits.size() > 20) return false;
  uint64_t value = 0;
  for (char c : digits) {
    uint64_t next = value * 10 + static_cast<uint64_t>(c - '0');
    if (next < value) return false;
    value = next;
  }
  *generation = value;
  return true;
}

}  // namespace

std::string CheckpointFileName(uint64_t generation) {
  return kCheckpointPrefix + std::to_string(generation) + kCheckpointSuffix;
}

std::string WalFileName(uint64_t generation) {
  return kWalPrefix + std::to_string(generation) + kWalSuffix;
}

std::vector<uint64_t> ListCheckpointGenerations(const std::string& dir) {
  std::vector<uint64_t> generations;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    uint64_t generation = 0;
    if (ParseGeneration(entry.path().filename().string(), kCheckpointPrefix,
                        kCheckpointSuffix, &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Status::Internal("error reading " + path);
  return std::move(contents).str();
}

Result<RecoveryResult> RecoverDatabase(const std::string& dir,
                                       const std::string& database_name) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("durable database directory missing: " + dir);
  }

  RecoveryResult result;
  std::vector<uint64_t> generations = ListCheckpointGenerations(dir);

  if (generations.empty()) {
    result.db = std::make_unique<Database>(database_name);
    result.generation = 0;
    result.created_fresh = true;
  } else {
    // Newest checkpoint that validates wins; corrupted ones are skipped.
    Status last_error = Status::OK();
    for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
      std::string path = (fs::path(dir) / CheckpointFileName(*it)).string();
      auto bytes_or = ReadFileToString(path);
      if (!bytes_or.ok()) {
        last_error = bytes_or.status();
        ++result.checkpoints_skipped;
        continue;
      }
      auto db_or = DeserializeDatabaseBinary(*bytes_or);
      if (!db_or.ok()) {
        last_error = db_or.status();
        ++result.checkpoints_skipped;
        continue;
      }
      result.db = std::move(db_or).value();
      result.generation = *it;
      break;
    }
    if (result.db == nullptr) {
      return Status::Internal("no valid checkpoint in " + dir +
                              " (last error: " + last_error.ToString() + ")");
    }
  }

  // Replay this generation's WAL tail. A missing WAL simply means no
  // mutation survived since the checkpoint.
  std::string wal_path =
      (fs::path(dir) / WalFileName(result.generation)).string();
  auto wal_or = ReadWalFile(wal_path);
  if (wal_or.ok()) {
    result.wal_valid_bytes = wal_or->valid_bytes;
    result.wal_discarded_bytes = wal_or->discarded_bytes;
    result.wal_torn_tail = wal_or->torn_tail;
    for (const WalRecord& record : wal_or->records) {
      Status applied = ApplyWalRecord(record, result.db.get());
      if (!applied.ok()) {
        return Status::Internal("WAL replay failed at record " +
                                std::to_string(result.replayed_records) +
                                " of " + wal_path + ": " +
                                applied.ToString());
      }
      ++result.replayed_records;
    }
  } else if (wal_or.status().code() != StatusCode::kNotFound) {
    return wal_or.status();
  }

  return result;
}

}  // namespace mad
