#ifndef MAD_STORAGE_RECOVERY_H_
#define MAD_STORAGE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// File naming inside a durable database directory. Generation g pairs
/// `checkpoint-<g>.madb` (the state at checkpoint time) with `wal-<g>.log`
/// (every mutation applied since). A fresh directory starts at generation 0
/// with an empty checkpoint.
std::string CheckpointFileName(uint64_t generation);
std::string WalFileName(uint64_t generation);

/// Checkpoint generations present in `dir`, ascending. Non-matching file
/// names are ignored.
std::vector<uint64_t> ListCheckpointGenerations(const std::string& dir);

/// Reads an entire file into a string; NotFound if it cannot be opened.
Result<std::string> ReadFileToString(const std::string& path);

/// Outcome of opening a durable database directory.
struct RecoveryResult {
  std::unique_ptr<Database> db;
  /// Generation the database now runs at (its WAL extends this
  /// generation's checkpoint).
  uint64_t generation = 0;
  /// True when no checkpoint existed and an empty database was started.
  bool created_fresh = false;
  /// Checkpoints whose CRC or structure was invalid and that were skipped
  /// in favour of an older generation.
  uint64_t checkpoints_skipped = 0;
  uint64_t replayed_records = 0;
  /// WAL scan outcome (see WalReadResult): the torn tail, if any, must be
  /// truncated before appending to the log again.
  uint64_t wal_valid_bytes = 0;
  uint64_t wal_discarded_bytes = 0;
  bool wal_torn_tail = false;
};

/// Opens `dir` and reconstructs the most recent durable state: loads the
/// newest checkpoint that passes validation (falling back to older
/// generations), then replays that generation's WAL tail, tolerating a torn
/// tail (prefix consistency: the result is the state after some prefix of
/// the logged mutations, and every fsync'd mutation is included).
///
/// A directory without any checkpoint yields a fresh empty database named
/// `database_name` at generation 0. Checkpoints present but all invalid is
/// an error — recovery never silently discards a whole database.
Result<RecoveryResult> RecoverDatabase(const std::string& dir,
                                       const std::string& database_name);

}  // namespace mad

#endif  // MAD_STORAGE_RECOVERY_H_
