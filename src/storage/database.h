#ifndef MAD_STORAGE_DATABASE_H_
#define MAD_STORAGE_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/atom_type.h"
#include "catalog/link_type.h"
#include "storage/index.h"
#include "util/result.h"

namespace mad {

/// Observer of successful Database mutations, in call order. The durability
/// subsystem (storage/durable_database.h) installs one to mirror every
/// mutation into the write-ahead log; replaying the notifications against a
/// fresh Database reproduces the exact same state.
///
/// Contract:
///  * notified only *after* a mutation succeeded — failed calls are silent;
///  * cascaded side effects that a replayed call would reproduce by itself
///    are NOT re-notified (DeleteAtom's referential link erases), while
///    cascades that run through the public API are (DropAtomType notifies
///    one OnDropLinkType per doomed link type, then OnDropAtomType; the
///    replayed drops are harmlessly idempotent in that order);
///  * listeners must not mutate the database from inside a callback.
class MutationListener {
 public:
  virtual ~MutationListener() = default;

  virtual void OnDefineAtomType(const std::string& aname,
                                const Schema& description) = 0;
  virtual void OnDefineLinkType(const std::string& lname,
                                const std::string& first,
                                const std::string& second,
                                LinkCardinality cardinality) = 0;
  virtual void OnDropAtomType(const std::string& aname) = 0;
  virtual void OnDropLinkType(const std::string& lname) = 0;
  /// Covers both InsertAtom and InsertAtomWithId; `atom` carries the id.
  virtual void OnInsertAtom(const std::string& aname, const Atom& atom) = 0;
  /// `atom` carries the post-update values.
  virtual void OnUpdateAtom(const std::string& aname, const Atom& atom) = 0;
  virtual void OnDeleteAtom(const std::string& aname, AtomId id) = 0;
  virtual void OnInsertLink(const std::string& lname, AtomId first,
                            AtomId second) = 0;
  virtual void OnEraseLink(const std::string& lname, AtomId first,
                           AtomId second) = 0;
  virtual void OnCreateIndex(const std::string& aname,
                             const std::string& attribute) = 0;
  virtual void OnDropIndex(const std::string& aname,
                           const std::string& attribute) = 0;
};

/// A MAD database (Def. 3): DB = <AT, LT>, a set of atom types plus a set of
/// link types over them, together with their occurrences (the atom
/// networks). The Database also owns atom-id assignment and enforces
/// referential integrity:
///
///  * a link may only be inserted between atoms that exist in the link
///    type's two atom types (no dangling links, ever);
///  * deleting an atom removes every link attached to it.
///
/// Algebra operations *enlarge* the database with result atom types and
/// inherited link types (the paper's database domain DB* closure): results
/// are ordinary atom types inside the same Database.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }

  // --- Schema definition -------------------------------------------------

  /// Defines a new atom type; the name must be unused by atom types.
  Status DefineAtomType(const std::string& aname, Schema description);

  /// Defines a new link type connecting two existing atom types; the name
  /// must be unused by link types. Reflexive link types (both ends equal)
  /// are allowed, as are multiple link types between the same pair. The
  /// optional cardinality is enforced on every link insertion (the paper's
  /// "extended link-type definition").
  Status DefineLinkType(const std::string& lname, const std::string& first,
                        const std::string& second,
                        LinkCardinality cardinality = LinkCardinality::kManyToMany);

  /// Drops an atom type together with every link type touching it.
  Status DropAtomType(const std::string& aname);
  Status DropLinkType(const std::string& lname);

  // --- Occurrence manipulation -------------------------------------------

  /// Inserts an atom with a freshly assigned id; returns the id.
  Result<AtomId> InsertAtom(const std::string& aname,
                            std::vector<Value> values);

  /// Inserts an atom under a caller-chosen id. Used by the algebra layer to
  /// preserve atom identity across derived atom types (see Def. 9): the same
  /// id may legitimately live in several atom types.
  Status InsertAtomWithId(const std::string& aname, AtomId id,
                          std::vector<Value> values);

  /// Replaces the attribute values of an existing atom.
  Status UpdateAtom(const std::string& aname, AtomId id,
                    std::vector<Value> values);

  /// Deletes an atom and, maintaining referential integrity, every link of
  /// any link type that attaches to it at a role of this atom type.
  Status DeleteAtom(const std::string& aname, AtomId id);

  /// Inserts a link; both endpoint atoms must exist in the link type's
  /// respective atom types (referential integrity).
  Status InsertLink(const std::string& lname, AtomId first, AtomId second);
  Status EraseLink(const std::string& lname, AtomId first, AtomId second);

  // --- Lookup -------------------------------------------------------------

  bool HasAtomType(const std::string& aname) const;
  bool HasLinkType(const std::string& lname) const;

  /// atyp(aname); NotFound if absent.
  Result<const AtomType*> GetAtomType(const std::string& aname) const;
  Result<AtomType*> GetMutableAtomType(const std::string& aname);
  Result<const LinkType*> GetLinkType(const std::string& lname) const;
  Result<LinkType*> GetMutableLinkType(const std::string& lname);

  /// All atom types in definition order.
  std::vector<const AtomType*> atom_types() const;
  /// All link types in definition order.
  std::vector<const LinkType*> link_types() const;
  /// Link types having `aname` at either end, in definition order.
  std::vector<const LinkType*> LinkTypesTouching(const std::string& aname) const;

  /// The atom `id` within atom type `aname`; NotFound if absent.
  Result<const Atom*> GetAtom(const std::string& aname, AtomId id) const;

  /// Value of `attribute` of atom `id` in atom type `aname`.
  Result<Value> GetAttribute(const std::string& aname, AtomId id,
                             const std::string& attribute) const;

  // --- Secondary indexes -----------------------------------------------------

  /// Builds a hash index over `attribute` of atom type `aname` and keeps it
  /// maintained across occurrence mutations. Fails if it already exists.
  Status CreateIndex(const std::string& aname, const std::string& attribute);
  Status DropIndex(const std::string& aname, const std::string& attribute);

  /// The index over (aname, attribute), or nullptr.
  const AttributeIndex* FindIndex(const std::string& aname,
                                  const std::string& attribute) const;

  /// Atom ids of `aname` whose `attribute` equals `value` — through the
  /// index when one exists, by scan otherwise.
  Result<std::vector<AtomId>> LookupByAttribute(const std::string& aname,
                                                const std::string& attribute,
                                                const Value& value) const;

  // --- Id and name generation ----------------------------------------------

  /// Allocates a fresh, never-reused atom id.
  AtomId NewAtomId() { return AtomId{++last_atom_id_}; }

  /// The highest atom id ever assigned (0 on an empty database). Persisted
  /// by the binary checkpoint codec so deleted ids stay retired across
  /// restarts.
  uint64_t last_atom_id() const { return last_atom_id_; }

  /// Advances the id counter to at least `id` (never lowers it). Used when
  /// restoring a database whose highest-ever id exceeds every surviving
  /// atom's id.
  void EnsureAtomIdAtLeast(uint64_t id) {
    if (id > last_atom_id_) last_atom_id_ = id;
  }

  // --- Mutation observation --------------------------------------------------

  /// Installs (or, with nullptr, removes) the single mutation listener.
  /// The listener is borrowed and must outlive the database or be removed
  /// before it dies.
  void SetMutationListener(MutationListener* listener) {
    listener_ = listener;
  }
  MutationListener* mutation_listener() const { return listener_; }

  /// A type name based on `prefix` that clashes with no existing atom or
  /// link type ("prefix", "prefix@2", "prefix@3", ...).
  std::string UniqueAtomTypeName(const std::string& prefix) const;
  std::string UniqueLinkTypeName(const std::string& prefix) const;

  // --- Invariant checking ------------------------------------------------------

  /// Full-database consistency audit: every link's endpoints exist in the
  /// link type's atom types (no dangling links), every atom's values match
  /// its type's description, and every secondary index agrees with its
  /// occurrence. Used by the integrity test suite and available to
  /// applications as a debugging aid.
  Status CheckConsistency() const;

  // --- Statistics -----------------------------------------------------------

  size_t atom_type_count() const { return atom_type_order_.size(); }
  size_t link_type_count() const { return link_type_order_.size(); }
  size_t total_atom_count() const;
  size_t total_link_count() const;

 private:
  /// Index maintenance hooks called by the occurrence mutators.
  void IndexInsert(const std::string& aname, const Atom& atom);
  void IndexErase(const std::string& aname, const Atom& atom);

  std::string name_;
  std::map<std::string, std::unique_ptr<AtomType>> atom_types_;
  /// aname -> attribute -> index.
  std::map<std::string, std::map<std::string, std::unique_ptr<AttributeIndex>>>
      indexes_;
  std::vector<std::string> atom_type_order_;
  std::map<std::string, std::unique_ptr<LinkType>> link_types_;
  std::vector<std::string> link_type_order_;
  uint64_t last_atom_id_ = 0;
  MutationListener* listener_ = nullptr;
};

}  // namespace mad

#endif  // MAD_STORAGE_DATABASE_H_
