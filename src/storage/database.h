#ifndef MAD_STORAGE_DATABASE_H_
#define MAD_STORAGE_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/atom_type.h"
#include "catalog/link_type.h"
#include "storage/index.h"
#include "util/result.h"

namespace mad {

/// A MAD database (Def. 3): DB = <AT, LT>, a set of atom types plus a set of
/// link types over them, together with their occurrences (the atom
/// networks). The Database also owns atom-id assignment and enforces
/// referential integrity:
///
///  * a link may only be inserted between atoms that exist in the link
///    type's two atom types (no dangling links, ever);
///  * deleting an atom removes every link attached to it.
///
/// Algebra operations *enlarge* the database with result atom types and
/// inherited link types (the paper's database domain DB* closure): results
/// are ordinary atom types inside the same Database.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }

  // --- Schema definition -------------------------------------------------

  /// Defines a new atom type; the name must be unused by atom types.
  Status DefineAtomType(const std::string& aname, Schema description);

  /// Defines a new link type connecting two existing atom types; the name
  /// must be unused by link types. Reflexive link types (both ends equal)
  /// are allowed, as are multiple link types between the same pair. The
  /// optional cardinality is enforced on every link insertion (the paper's
  /// "extended link-type definition").
  Status DefineLinkType(const std::string& lname, const std::string& first,
                        const std::string& second,
                        LinkCardinality cardinality = LinkCardinality::kManyToMany);

  /// Drops an atom type together with every link type touching it.
  Status DropAtomType(const std::string& aname);
  Status DropLinkType(const std::string& lname);

  // --- Occurrence manipulation -------------------------------------------

  /// Inserts an atom with a freshly assigned id; returns the id.
  Result<AtomId> InsertAtom(const std::string& aname,
                            std::vector<Value> values);

  /// Inserts an atom under a caller-chosen id. Used by the algebra layer to
  /// preserve atom identity across derived atom types (see Def. 9): the same
  /// id may legitimately live in several atom types.
  Status InsertAtomWithId(const std::string& aname, AtomId id,
                          std::vector<Value> values);

  /// Replaces the attribute values of an existing atom.
  Status UpdateAtom(const std::string& aname, AtomId id,
                    std::vector<Value> values);

  /// Deletes an atom and, maintaining referential integrity, every link of
  /// any link type that attaches to it at a role of this atom type.
  Status DeleteAtom(const std::string& aname, AtomId id);

  /// Inserts a link; both endpoint atoms must exist in the link type's
  /// respective atom types (referential integrity).
  Status InsertLink(const std::string& lname, AtomId first, AtomId second);
  Status EraseLink(const std::string& lname, AtomId first, AtomId second);

  // --- Lookup -------------------------------------------------------------

  bool HasAtomType(const std::string& aname) const;
  bool HasLinkType(const std::string& lname) const;

  /// atyp(aname); NotFound if absent.
  Result<const AtomType*> GetAtomType(const std::string& aname) const;
  Result<AtomType*> GetMutableAtomType(const std::string& aname);
  Result<const LinkType*> GetLinkType(const std::string& lname) const;
  Result<LinkType*> GetMutableLinkType(const std::string& lname);

  /// All atom types in definition order.
  std::vector<const AtomType*> atom_types() const;
  /// All link types in definition order.
  std::vector<const LinkType*> link_types() const;
  /// Link types having `aname` at either end, in definition order.
  std::vector<const LinkType*> LinkTypesTouching(const std::string& aname) const;

  /// The atom `id` within atom type `aname`; NotFound if absent.
  Result<const Atom*> GetAtom(const std::string& aname, AtomId id) const;

  /// Value of `attribute` of atom `id` in atom type `aname`.
  Result<Value> GetAttribute(const std::string& aname, AtomId id,
                             const std::string& attribute) const;

  // --- Secondary indexes -----------------------------------------------------

  /// Builds a hash index over `attribute` of atom type `aname` and keeps it
  /// maintained across occurrence mutations. Fails if it already exists.
  Status CreateIndex(const std::string& aname, const std::string& attribute);
  Status DropIndex(const std::string& aname, const std::string& attribute);

  /// The index over (aname, attribute), or nullptr.
  const AttributeIndex* FindIndex(const std::string& aname,
                                  const std::string& attribute) const;

  /// Atom ids of `aname` whose `attribute` equals `value` — through the
  /// index when one exists, by scan otherwise.
  Result<std::vector<AtomId>> LookupByAttribute(const std::string& aname,
                                                const std::string& attribute,
                                                const Value& value) const;

  // --- Id and name generation ----------------------------------------------

  /// Allocates a fresh, never-reused atom id.
  AtomId NewAtomId() { return AtomId{++last_atom_id_}; }

  /// A type name based on `prefix` that clashes with no existing atom or
  /// link type ("prefix", "prefix@2", "prefix@3", ...).
  std::string UniqueAtomTypeName(const std::string& prefix) const;
  std::string UniqueLinkTypeName(const std::string& prefix) const;

  // --- Invariant checking ------------------------------------------------------

  /// Full-database consistency audit: every link's endpoints exist in the
  /// link type's atom types (no dangling links), every atom's values match
  /// its type's description, and every secondary index agrees with its
  /// occurrence. Used by the integrity test suite and available to
  /// applications as a debugging aid.
  Status CheckConsistency() const;

  // --- Statistics -----------------------------------------------------------

  size_t atom_type_count() const { return atom_type_order_.size(); }
  size_t link_type_count() const { return link_type_order_.size(); }
  size_t total_atom_count() const;
  size_t total_link_count() const;

 private:
  /// Index maintenance hooks called by the occurrence mutators.
  void IndexInsert(const std::string& aname, const Atom& atom);
  void IndexErase(const std::string& aname, const Atom& atom);

  std::string name_;
  std::map<std::string, std::unique_ptr<AtomType>> atom_types_;
  /// aname -> attribute -> index.
  std::map<std::string, std::map<std::string, std::unique_ptr<AttributeIndex>>>
      indexes_;
  std::vector<std::string> atom_type_order_;
  std::map<std::string, std::unique_ptr<LinkType>> link_types_;
  std::vector<std::string> link_type_order_;
  uint64_t last_atom_id_ = 0;
};

}  // namespace mad

#endif  // MAD_STORAGE_DATABASE_H_
