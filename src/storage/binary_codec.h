#ifndef MAD_STORAGE_BINARY_CODEC_H_
#define MAD_STORAGE_BINARY_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/value.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// Little-endian, bounds-checked byte encoding shared by the binary
/// checkpoint codec and the write-ahead log (wal.h). Integers use LEB128
/// varints (signed values zig-zag encoded), doubles their raw IEEE-754 bit
/// pattern — so non-finite values and -0.0 round-trip bit-identically —
/// and strings a varint length prefix.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutZigzag(int64_t v);
  void PutString(std::string_view s);
  void PutValue(const Value& v);

  const std::string& bytes() const { return out_; }
  std::string TakeBytes() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Cursor over an immutable byte buffer. Every getter is bounds-checked and
/// returns a Status/Result instead of reading out of range — corrupted or
/// hostile input must yield a clean error, never UB (the serializer fuzz
/// test pins this down under ASan/UBSan).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetFixed32();
  Result<uint64_t> GetFixed64();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetZigzag();
  Result<std::string> GetString();
  Result<Value> GetValue();
  /// The next `n` raw bytes (a view into the underlying buffer).
  Result<std::string_view> GetBytes(size_t n);

  size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }
  size_t position() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Binary database checkpoints. The format is a compact, CRC32-protected
/// replacement for the line-oriented MADDB text format:
///
///   magic "MADB", u32 version
///   section*   where section = [u8 tag][u32 payload-len][u32 crc32][payload]
///
/// Sections appear in fixed order — meta (database name, atom-id counter),
/// schema (atom-type + link-type definitions), atoms, links, indexes — and
/// are terminated by an empty `end` section. Every payload is covered by
/// its CRC, so torn or bit-flipped checkpoints are detected, not loaded.
///
/// Serialization is deterministic: types in definition order, atoms in
/// insertion order, links in storage order. Re-serializing a deserialized
/// database yields bit-identical output, which the crash-recovery tests use
/// to prove state equivalence.
Result<std::string> SerializeDatabaseBinary(const Database& db);

/// Reads a checkpoint produced by SerializeDatabaseBinary. Trailing bytes
/// after the end section are an error; any CRC mismatch, truncation, or
/// malformed payload yields a ParseError.
Result<std::unique_ptr<Database>> DeserializeDatabaseBinary(
    std::string_view bytes);

}  // namespace mad

#endif  // MAD_STORAGE_BINARY_CODEC_H_
