#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/binary_codec.h"
#include "util/crc32.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace mad {

namespace {

/// Upper bound on a single framed record; larger length prefixes can only
/// come from corruption and are treated as a torn tail.
constexpr uint64_t kMaxRecordLength = uint64_t{1} << 30;

constexpr uint8_t kMinKind = static_cast<uint8_t>(WalRecord::Kind::kDefineAtomType);
constexpr uint8_t kMaxKind = static_cast<uint8_t>(WalRecord::Kind::kDropIndex);

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

// ---- Record payload codec -------------------------------------------------

std::string EncodeWalRecordPayload(const WalRecord& record) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(record.kind));
  switch (record.kind) {
    case WalRecord::Kind::kDefineAtomType:
      w.PutString(record.name);
      w.PutVarint(record.schema.attribute_count());
      for (const AttributeDescription& attr : record.schema.attributes()) {
        w.PutString(attr.name);
        w.PutU8(static_cast<uint8_t>(attr.type));
      }
      break;
    case WalRecord::Kind::kDefineLinkType:
      w.PutString(record.name);
      w.PutString(record.first);
      w.PutString(record.second);
      w.PutU8(static_cast<uint8_t>(record.cardinality));
      break;
    case WalRecord::Kind::kDropAtomType:
    case WalRecord::Kind::kDropLinkType:
      w.PutString(record.name);
      break;
    case WalRecord::Kind::kInsertAtom:
    case WalRecord::Kind::kUpdateAtom:
      w.PutString(record.name);
      w.PutVarint(record.id);
      w.PutVarint(record.values.size());
      for (const Value& v : record.values) w.PutValue(v);
      break;
    case WalRecord::Kind::kDeleteAtom:
      w.PutString(record.name);
      w.PutVarint(record.id);
      break;
    case WalRecord::Kind::kInsertLink:
    case WalRecord::Kind::kEraseLink:
      w.PutString(record.name);
      w.PutVarint(record.id);
      w.PutVarint(record.id2);
      break;
    case WalRecord::Kind::kCreateIndex:
    case WalRecord::Kind::kDropIndex:
      w.PutString(record.name);
      w.PutString(record.attribute);
      break;
  }
  return w.TakeBytes();
}

Result<WalRecord> DecodeWalRecordPayload(std::string_view payload) {
  ByteReader r(payload);
  MAD_ASSIGN_OR_RETURN(uint8_t kind_byte, r.GetU8());
  if (kind_byte < kMinKind || kind_byte > kMaxKind) {
    return Status::ParseError("unknown WAL record kind " +
                              std::to_string(kind_byte));
  }
  WalRecord record;
  record.kind = static_cast<WalRecord::Kind>(kind_byte);
  switch (record.kind) {
    case WalRecord::Kind::kDefineAtomType: {
      MAD_ASSIGN_OR_RETURN(record.name, r.GetString());
      MAD_ASSIGN_OR_RETURN(uint64_t attr_count, r.GetVarint());
      if (attr_count > kMaxRecordLength) {
        return Status::ParseError("WAL attribute count out of range");
      }
      for (uint64_t i = 0; i < attr_count; ++i) {
        MAD_ASSIGN_OR_RETURN(std::string attr, r.GetString());
        MAD_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
        if (type < static_cast<uint8_t>(DataType::kInt64) ||
            type > static_cast<uint8_t>(DataType::kBool)) {
          return Status::ParseError("bad WAL attribute data type " +
                                    std::to_string(type));
        }
        MAD_RETURN_IF_ERROR(
            record.schema.AddAttribute(attr, static_cast<DataType>(type)));
      }
      break;
    }
    case WalRecord::Kind::kDefineLinkType: {
      MAD_ASSIGN_OR_RETURN(record.name, r.GetString());
      MAD_ASSIGN_OR_RETURN(record.first, r.GetString());
      MAD_ASSIGN_OR_RETURN(record.second, r.GetString());
      MAD_ASSIGN_OR_RETURN(uint8_t cardinality, r.GetU8());
      if (cardinality > static_cast<uint8_t>(LinkCardinality::kManyToMany)) {
        return Status::ParseError("bad WAL link cardinality " +
                                  std::to_string(cardinality));
      }
      record.cardinality = static_cast<LinkCardinality>(cardinality);
      break;
    }
    case WalRecord::Kind::kDropAtomType:
    case WalRecord::Kind::kDropLinkType: {
      MAD_ASSIGN_OR_RETURN(record.name, r.GetString());
      break;
    }
    case WalRecord::Kind::kInsertAtom:
    case WalRecord::Kind::kUpdateAtom: {
      MAD_ASSIGN_OR_RETURN(record.name, r.GetString());
      MAD_ASSIGN_OR_RETURN(record.id, r.GetVarint());
      MAD_ASSIGN_OR_RETURN(uint64_t value_count, r.GetVarint());
      if (value_count > kMaxRecordLength) {
        return Status::ParseError("WAL value count out of range");
      }
      record.values.reserve(value_count);
      for (uint64_t i = 0; i < value_count; ++i) {
        MAD_ASSIGN_OR_RETURN(Value v, r.GetValue());
        record.values.push_back(std::move(v));
      }
      break;
    }
    case WalRecord::Kind::kDeleteAtom: {
      MAD_ASSIGN_OR_RETURN(record.name, r.GetString());
      MAD_ASSIGN_OR_RETURN(record.id, r.GetVarint());
      break;
    }
    case WalRecord::Kind::kInsertLink:
    case WalRecord::Kind::kEraseLink: {
      MAD_ASSIGN_OR_RETURN(record.name, r.GetString());
      MAD_ASSIGN_OR_RETURN(record.id, r.GetVarint());
      MAD_ASSIGN_OR_RETURN(record.id2, r.GetVarint());
      break;
    }
    case WalRecord::Kind::kCreateIndex:
    case WalRecord::Kind::kDropIndex: {
      MAD_ASSIGN_OR_RETURN(record.name, r.GetString());
      MAD_ASSIGN_OR_RETURN(record.attribute, r.GetString());
      break;
    }
  }
  if (!r.exhausted()) {
    return Status::ParseError("trailing bytes in WAL record payload");
  }
  return record;
}

std::string FrameWalRecord(const WalRecord& record) {
  std::string payload = EncodeWalRecordPayload(record);
  ByteWriter frame;
  frame.PutFixed32(static_cast<uint32_t>(payload.size()));
  frame.PutFixed32(Crc32(payload));
  std::string out = frame.TakeBytes();
  out.append(payload);
  return out;
}

// ---- WAL scan -------------------------------------------------------------

WalReadResult ReadWal(std::string_view bytes) {
  WalReadResult result;
  ByteReader in(bytes);
  while (!in.exhausted()) {
    size_t frame_start = in.position();
    auto stop_torn = [&]() {
      result.valid_bytes = frame_start;
      result.discarded_bytes = bytes.size() - frame_start;
      result.torn_tail = true;
    };
    auto len_or = in.GetFixed32();
    if (!len_or.ok()) {
      stop_torn();
      return result;
    }
    auto crc_or = in.GetFixed32();
    if (!crc_or.ok() || *len_or > kMaxRecordLength ||
        *len_or > in.remaining()) {
      stop_torn();
      return result;
    }
    auto payload_or = in.GetBytes(*len_or);
    if (!payload_or.ok() || Crc32(*payload_or) != *crc_or) {
      stop_torn();
      return result;
    }
    auto record_or = DecodeWalRecordPayload(*payload_or);
    if (!record_or.ok()) {
      stop_torn();
      return result;
    }
    result.records.push_back(std::move(record_or).value());
    result.valid_bytes = in.position();
  }
  result.valid_bytes = bytes.size();
  return result;
}

Result<WalReadResult> ReadWalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open WAL file " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("error reading WAL file " + path);
  }
  std::string bytes = std::move(contents).str();
  return ReadWal(bytes);
}

// ---- Replay ---------------------------------------------------------------

Status ApplyWalRecord(const WalRecord& record, Database* db) {
  switch (record.kind) {
    case WalRecord::Kind::kDefineAtomType:
      return db->DefineAtomType(record.name, record.schema);
    case WalRecord::Kind::kDefineLinkType:
      return db->DefineLinkType(record.name, record.first, record.second,
                                record.cardinality);
    case WalRecord::Kind::kDropAtomType:
      return db->DropAtomType(record.name);
    case WalRecord::Kind::kDropLinkType:
      // DropAtomType cascades are logged as explicit OnDropLinkType records
      // before the OnDropAtomType record, so a replayed drop may find the
      // link type already gone — that is the expected idempotent case.
      if (!db->HasLinkType(record.name)) return Status::OK();
      return db->DropLinkType(record.name);
    case WalRecord::Kind::kInsertAtom:
      return db->InsertAtomWithId(record.name, AtomId{record.id},
                                  record.values);
    case WalRecord::Kind::kUpdateAtom:
      return db->UpdateAtom(record.name, AtomId{record.id}, record.values);
    case WalRecord::Kind::kDeleteAtom:
      return db->DeleteAtom(record.name, AtomId{record.id});
    case WalRecord::Kind::kInsertLink:
      return db->InsertLink(record.name, AtomId{record.id},
                            AtomId{record.id2});
    case WalRecord::Kind::kEraseLink:
      return db->EraseLink(record.name, AtomId{record.id}, AtomId{record.id2});
    case WalRecord::Kind::kCreateIndex:
      return db->CreateIndex(record.name, record.attribute);
    case WalRecord::Kind::kDropIndex:
      return db->DropIndex(record.name, record.attribute);
  }
  return Status::Internal("unhandled WAL record kind");
}

// ---- WalWriter ------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, const WalWriterOptions& opts) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return ErrnoStatus("cannot open WAL for append", path);
  }
  if (opts.has_truncate_to) {
    if (::ftruncate(fd, static_cast<off_t>(opts.truncate_to)) != 0) {
      Status s = ErrnoStatus("cannot truncate WAL", path);
      ::close(fd);
      return s;
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status s = ErrnoStatus("cannot seek WAL", path);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, opts.sync, opts.group_commit_bytes));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // Best effort on destruction; callers needing the error must Sync()
    // themselves first.
    (void)Flush();
    ::close(fd_);
  }
}

Status WalWriter::Append(const WalRecord& record) {
  ScopedSpan span("wal.append");
  std::string frame = FrameWalRecord(record);
  buffer_.append(frame);
  ++records_appended_;
  bytes_appended_ += frame.size();
  span.set_rows_out(static_cast<int64_t>(frame.size()));
  static Counter& records = Registry::Global().GetCounter("wal.records");
  static Counter& bytes = Registry::Global().GetCounter("wal.bytes");
  records.Increment();
  bytes.Add(frame.size());
  if (sync_) return Sync();
  if (buffer_.size() >= group_commit_bytes_) return Flush();
  return Status::OK();
}

Status WalWriter::Flush() {
  if (buffer_.empty()) return Status::OK();
  ScopedSpan span("wal.flush");
  span.set_rows_in(static_cast<int64_t>(buffer_.size()));
  static Counter& flushes = Registry::Global().GetCounter("wal.flushes");
  flushes.Increment();
  const char* data = buffer_.data();
  size_t left = buffer_.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("WAL write failed: ") +
                              std::strerror(errno));
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  buffer_.clear();
  ++flush_count_;
  return Status::OK();
}

Status WalWriter::Sync() {
  ScopedSpan span("wal.sync");
  static Counter& syncs = Registry::Global().GetCounter("wal.syncs");
  static Histogram& latency = Registry::Global().GetHistogram("wal.sync_us");
  syncs.Increment();
  ScopedTimer timer(latency);
  MAD_RETURN_IF_ERROR(Flush());
  if (::fsync(fd_) != 0) {
    return Status::Internal(std::string("WAL fsync failed: ") +
                            std::strerror(errno));
  }
  ++sync_count_;
  return Status::OK();
}

}  // namespace mad
