#ifndef MAD_STORAGE_ATOM_STORE_H_
#define MAD_STORAGE_ATOM_STORE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/schema.h"
#include "util/result.h"

namespace mad {

/// An atom-type occurrence (Def. 1): the set of atoms of one atom type,
/// stored in insertion order with O(1) lookup by id.
class AtomStore {
 public:
  /// Inserts an atom; fails if the id is invalid or already present.
  Status Insert(Atom atom);

  /// Removes an atom; fails if absent. Iteration order of the remaining
  /// atoms is preserved.
  Status Erase(AtomId id);

  bool Contains(AtomId id) const { return by_id_.count(id) > 0; }

  /// Pointer into the store, or nullptr if absent. Invalidated by mutation.
  const Atom* Find(AtomId id) const;

  /// Insertion-order position of `id`, or nullopt if absent. Lets callers
  /// that collected ids out of order (e.g. from an AttributeIndex bucket)
  /// restore occurrence order deterministically.
  std::optional<size_t> PositionOf(AtomId id) const {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) return std::nullopt;
    return it->second;
  }

  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  /// Atoms in insertion order.
  const std::vector<Atom>& atoms() const { return atoms_; }

 private:
  std::vector<Atom> atoms_;
  std::unordered_map<AtomId, size_t> by_id_;
};

}  // namespace mad

#endif  // MAD_STORAGE_ATOM_STORE_H_
