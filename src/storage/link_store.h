#ifndef MAD_STORAGE_LINK_STORE_H_
#define MAD_STORAGE_LINK_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/atom.h"
#include "util/result.h"

namespace mad {

/// One link: a pair of atoms. `first` plays the role of the link type's
/// first atom type, `second` of its second.
///
/// Def. 2 calls links "unsorted pairs" — traversal is symmetric and neither
/// end is privileged — but madlib stores the role of each end explicitly so
/// that *reflexive* link types (e.g. a bill-of-material 'composition' link on
/// atom type 'part') can still distinguish the super-component end from the
/// sub-component end, which the paper's super-/sub-component views require.
struct Link {
  AtomId first;
  AtomId second;

  auto operator<=>(const Link&) const = default;
};

/// Traversal direction through a link type.
enum class LinkDirection {
  kForward,   ///< from the first-role end to the second-role end
  kBackward,  ///< from the second-role end to the first-role end
};

/// A link-type occurrence (Def. 2): a set of links, indexed from both ends
/// so traversal is symmetric and O(degree).
///
/// Ordering guarantees:
///  * Partners() lists partners in link-insertion order, and erasing a link
///    preserves the relative order of the remaining partners — derivation
///    output order depends on this.
///  * links() has no order guarantee across erases: Erase() swap-and-pops
///    the backing vector (O(1) instead of an O(n) scan), so it is insertion
///    order only until the first erase.
class LinkStore {
 public:
  /// Inserts a link; duplicate (first, second) pairs are rejected.
  Status Insert(AtomId first, AtomId second);

  /// Removes a link in ~O(degree); fails if absent.
  Status Erase(AtomId first, AtomId second);

  /// Removes every link having `atom` at either end; returns the number
  /// removed. Used to maintain referential integrity on atom deletion.
  /// Cost is proportional to the atom's degree plus one ordered removal in
  /// each partner's list — not to the store size.
  size_t EraseAllOf(AtomId atom);

  bool Contains(AtomId first, AtomId second) const;

  /// Partner atoms of `atom` when traversing in `direction`; for kForward
  /// `atom` is matched against the first role, for kBackward against the
  /// second. Partners appear in link-insertion order (see class comment).
  const std::vector<AtomId>& Partners(AtomId atom,
                                      LinkDirection direction) const;

  size_t size() const { return links_.size(); }
  bool empty() const { return links_.empty(); }

  /// All links, in storage order (see class comment).
  const std::vector<Link>& links() const { return links_; }

 private:
  struct LinkHash {
    size_t operator()(const Link& link) const noexcept {
      size_t h = std::hash<AtomId>{}(link.first);
      return h ^ (std::hash<AtomId>{}(link.second) + 0x9e3779b97f4a7c15ULL +
                  (h << 6) + (h >> 2));
    }
  };

  /// Swap-and-pop removal from links_ keeping index_ consistent; the link
  /// must be present.
  void EraseFromLinks(const Link& link);

  std::vector<Link> links_;
  std::unordered_map<Link, size_t, LinkHash> index_;  // link -> links_ slot
  std::unordered_map<AtomId, std::vector<AtomId>> forward_;
  std::unordered_map<AtomId, std::vector<AtomId>> backward_;
};

}  // namespace mad

#endif  // MAD_STORAGE_LINK_STORE_H_
