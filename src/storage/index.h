#ifndef MAD_STORAGE_INDEX_H_
#define MAD_STORAGE_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/value.h"

namespace mad {

/// A hash index over one attribute of one atom type: value -> atom ids.
/// Maintained by the owning Database on every occurrence mutation; used by
/// the equality fast path of the atom-type restriction σ and exposed for
/// point lookups.
class AttributeIndex {
 public:
  AttributeIndex(std::string atom_type, std::string attribute,
                 size_t value_index)
      : atom_type_(std::move(atom_type)),
        attribute_(std::move(attribute)),
        value_index_(value_index) {}

  const std::string& atom_type() const { return atom_type_; }
  const std::string& attribute() const { return attribute_; }
  size_t value_index() const { return value_index_; }

  void Insert(const Atom& atom);
  void Erase(const Atom& atom);

  /// Atom ids whose attribute equals `value`, in insertion order.
  const std::vector<AtomId>& Lookup(const Value& value) const;

  /// Number of distinct indexed values.
  size_t distinct_values() const { return buckets_.size(); }
  size_t entry_count() const { return entries_; }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  std::string atom_type_;
  std::string attribute_;
  size_t value_index_;
  std::unordered_map<Value, std::vector<AtomId>, ValueHash> buckets_;
  size_t entries_ = 0;
};

}  // namespace mad

#endif  // MAD_STORAGE_INDEX_H_
