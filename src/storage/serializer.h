#ifndef MAD_STORAGE_SERIALIZER_H_
#define MAD_STORAGE_SERIALIZER_H_

#include <iostream>
#include <memory>
#include <string>

#include "storage/database.h"
#include "util/result.h"

namespace mad {

/// Writes the complete database — schema, occurrences (with atom ids), and
/// index definitions — to a line-oriented text format:
///
///   MADDB 1
///   DATABASE <name>
///   ATOMTYPE <name> <attr-count>
///   ATTR <name> <TYPE>
///   ATOM <id> <value>...
///   LINKTYPE <name> <first> <second>
///   LINK <first-id> <second-id>
///   INDEX <atom-type> <attribute>
///   END
///
/// Values are encoded as N (null), I<int>, D<double>, B0/B1, or
/// S<percent-encoded-utf8>; percent-encoding covers '%', whitespace and
/// control characters, so the format stays line-parsable for arbitrary
/// string contents. Non-finite doubles use the explicit spellings Dnan,
/// Dinf, and D-inf; finite doubles are written with 17 significant digits
/// so every bit pattern (including -0.0) round-trips. The reader is strict:
/// a numeric token with trailing garbage or an unrecognised non-finite
/// spelling is a ParseError.
Status WriteDatabase(const Database& db, std::ostream& out);

/// Reads a database previously written by WriteDatabase. The stream must
/// contain exactly one database; trailing garbage is an error.
Result<std::unique_ptr<Database>> ReadDatabase(std::istream& in);

/// Convenience: full round trip through a string.
Result<std::string> SerializeDatabase(const Database& db);
Result<std::unique_ptr<Database>> DeserializeDatabase(const std::string& text);

/// Deep copy of a database — atom ids, occurrences, index definitions, and
/// the atom-id counter included (implemented as a round trip through the
/// binary codec, storage/binary_codec.h).
Result<std::unique_ptr<Database>> CloneDatabase(const Database& db);

}  // namespace mad

#endif  // MAD_STORAGE_SERIALIZER_H_
