#include "storage/serializer.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "storage/binary_codec.h"
#include "util/string_util.h"

namespace mad {

namespace {

constexpr char kMagic[] = "MADDB";
constexpr int kVersion = 1;

bool NeedsEscape(char c) {
  auto u = static_cast<unsigned char>(c);
  return c == '%' || std::isspace(u) || std::iscntrl(u) || u >= 0x7f;
}

std::string PercentEncode(const std::string& text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (NeedsEscape(c)) {
      auto u = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> PercentDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out += text[i];
      continue;
    }
    if (i + 2 >= text.size()) {
      return Status::ParseError("truncated percent escape");
    }
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    int hi = hex(text[i + 1]);
    int lo = hex(text[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("bad percent escape in '" + text + "'");
    }
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return "N";
    case DataType::kInt64:
      return "I" + std::to_string(v.AsInt64());
    case DataType::kDouble: {
      double d = v.AsDouble();
      // Non-finite values get explicit spellings — the default ostream
      // renderings ("nan", "-nan", "inf") vary across platforms and never
      // round-tripped reliably through stod.
      if (std::isnan(d)) return "Dnan";
      if (std::isinf(d)) return d > 0 ? "Dinf" : "D-inf";
      std::ostringstream os;
      os.precision(17);
      os << d;
      return "D" + os.str();
    }
    case DataType::kString:
      return "S" + PercentEncode(v.AsString());
    case DataType::kBool:
      return v.AsBool() ? "B1" : "B0";
  }
  return "N";
}

Result<Value> DecodeValue(const std::string& token) {
  if (token.empty()) return Status::ParseError("empty value token");
  std::string body = token.substr(1);
  switch (token[0]) {
    case 'N':
      if (!body.empty()) {
        return Status::ParseError("bad null token '" + token + "'");
      }
      return Value();
    case 'I':
      try {
        size_t consumed = 0;
        int64_t i = std::stoll(body, &consumed);
        if (consumed != body.size()) {
          return Status::ParseError("trailing garbage in integer token '" +
                                    token + "'");
        }
        return Value(i);
      } catch (...) {
        return Status::ParseError("bad integer token '" + token + "'");
      }
    case 'D': {
      // Exactly three non-finite spellings exist; stod's looser forms
      // ("infinity", "nan(char-seq)", hex floats overflowing to inf) are
      // rejected so every accepted token is one this library wrote.
      if (body == "nan") {
        return Value(std::numeric_limits<double>::quiet_NaN());
      }
      if (body == "inf") return Value(std::numeric_limits<double>::infinity());
      if (body == "-inf") {
        return Value(-std::numeric_limits<double>::infinity());
      }
      // strtod, not stod: stod throws out_of_range on subnormals, which are
      // legitimate values that must round-trip; strtod returns them
      // correctly rounded (and turns true overflow into inf, rejected
      // below).
      if (body.empty()) {
        return Status::ParseError("bad double token '" + token + "'");
      }
      char* end = nullptr;
      double d = std::strtod(body.c_str(), &end);
      if (end != body.c_str() + body.size()) {
        return Status::ParseError("trailing garbage in double token '" +
                                  token + "'");
      }
      if (!std::isfinite(d)) {
        return Status::ParseError("non-finite double token '" + token +
                                  "' (use Dnan, Dinf, or D-inf)");
      }
      return Value(d);
    }
    case 'S': {
      MAD_ASSIGN_OR_RETURN(std::string decoded, PercentDecode(body));
      return Value(std::move(decoded));
    }
    case 'B':
      if (body == "1") return Value(true);
      if (body == "0") return Value(false);
      return Status::ParseError("bad bool token '" + token + "'");
    default:
      return Status::ParseError("unknown value token '" + token + "'");
  }
}

}  // namespace

Status WriteDatabase(const Database& db, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";
  out << "DATABASE " << PercentEncode(db.name()) << "\n";

  for (const AtomType* at : db.atom_types()) {
    out << "ATOMTYPE " << PercentEncode(at->name()) << " "
        << at->description().attribute_count() << "\n";
    for (const AttributeDescription& attr : at->description().attributes()) {
      out << "ATTR " << PercentEncode(attr.name) << " "
          << DataTypeName(attr.type) << "\n";
    }
    for (const Atom& atom : at->occurrence().atoms()) {
      out << "ATOM " << atom.id.value;
      for (const Value& v : atom.values) out << " " << EncodeValue(v);
      out << "\n";
    }
  }
  for (const LinkType* lt : db.link_types()) {
    out << "LINKTYPE " << PercentEncode(lt->name()) << " "
        << PercentEncode(lt->first_atom_type()) << " "
        << PercentEncode(lt->second_atom_type()) << " "
        << LinkCardinalityName(lt->cardinality()) << "\n";
    for (const Link& link : lt->occurrence().links()) {
      out << "LINK " << link.first.value << " " << link.second.value << "\n";
    }
  }
  for (const AtomType* at : db.atom_types()) {
    // Index definitions are discovered per attribute.
    for (const AttributeDescription& attr : at->description().attributes()) {
      if (db.FindIndex(at->name(), attr.name) != nullptr) {
        out << "INDEX " << PercentEncode(at->name()) << " "
            << PercentEncode(attr.name) << "\n";
      }
    }
  }
  out << "END\n";
  if (!out) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<std::unique_ptr<Database>> ReadDatabase(std::istream& in) {
  std::string line;
  size_t line_no = 0;
  auto fail = [&](const std::string& message) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " +
                              message);
  };

  if (!std::getline(in, line)) return fail("empty input");
  ++line_no;
  {
    std::vector<std::string> header = Split(line, ' ');
    if (header.size() != 2 || header[0] != kMagic ||
        header[1] != std::to_string(kVersion)) {
      return fail("bad header '" + line + "'");
    }
  }

  std::unique_ptr<Database> db;
  std::string current_atom_type;
  std::string current_link_type;
  size_t pending_attrs = 0;
  Schema pending_schema;
  bool ended = false;

  auto flush_atom_type = [&]() -> Status {
    if (pending_attrs > 0) {
      return Status::ParseError("atom type '" + current_atom_type +
                                "' is missing attribute declarations");
    }
    return Status::OK();
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (ended) return fail("content after END");
    std::vector<std::string> fields = Split(std::string(stripped), ' ');
    const std::string& tag = fields[0];

    if (tag == "DATABASE") {
      if (db != nullptr || fields.size() != 2) return fail("bad DATABASE line");
      MAD_ASSIGN_OR_RETURN(std::string name, PercentDecode(fields[1]));
      db = std::make_unique<Database>(name);
      continue;
    }
    if (db == nullptr) return fail("expected DATABASE first");

    if (tag == "ATOMTYPE") {
      MAD_RETURN_IF_ERROR(flush_atom_type());
      if (fields.size() != 3) return fail("bad ATOMTYPE line");
      MAD_ASSIGN_OR_RETURN(current_atom_type, PercentDecode(fields[1]));
      try {
        pending_attrs = std::stoul(fields[2]);
      } catch (...) {
        return fail("bad attribute count");
      }
      pending_schema = Schema();
      if (pending_attrs == 0) {
        MAD_RETURN_IF_ERROR(db->DefineAtomType(current_atom_type, Schema()));
      }
      continue;
    }
    if (tag == "ATTR") {
      if (pending_attrs == 0) return fail("unexpected ATTR");
      if (fields.size() != 3) return fail("bad ATTR line");
      MAD_ASSIGN_OR_RETURN(std::string attr, PercentDecode(fields[1]));
      DataType type = DataTypeFromName(fields[2]);
      if (type == DataType::kNull) return fail("unknown type " + fields[2]);
      MAD_RETURN_IF_ERROR(pending_schema.AddAttribute(attr, type));
      if (--pending_attrs == 0) {
        MAD_RETURN_IF_ERROR(
            db->DefineAtomType(current_atom_type, std::move(pending_schema)));
      }
      continue;
    }
    if (tag == "ATOM") {
      MAD_RETURN_IF_ERROR(flush_atom_type());
      if (current_atom_type.empty()) return fail("ATOM before ATOMTYPE");
      if (fields.size() < 2) return fail("bad ATOM line");
      uint64_t id = 0;
      try {
        id = std::stoull(fields[1]);
      } catch (...) {
        return fail("bad atom id");
      }
      std::vector<Value> values;
      values.reserve(fields.size() - 2);
      for (size_t i = 2; i < fields.size(); ++i) {
        MAD_ASSIGN_OR_RETURN(Value v, DecodeValue(fields[i]));
        values.push_back(std::move(v));
      }
      MAD_RETURN_IF_ERROR(
          db->InsertAtomWithId(current_atom_type, AtomId{id}, std::move(values)));
      continue;
    }
    if (tag == "LINKTYPE") {
      MAD_RETURN_IF_ERROR(flush_atom_type());
      if (fields.size() != 4 && fields.size() != 5) {
        return fail("bad LINKTYPE line");
      }
      MAD_ASSIGN_OR_RETURN(current_link_type, PercentDecode(fields[1]));
      MAD_ASSIGN_OR_RETURN(std::string first, PercentDecode(fields[2]));
      MAD_ASSIGN_OR_RETURN(std::string second, PercentDecode(fields[3]));
      LinkCardinality cardinality = LinkCardinality::kManyToMany;
      if (fields.size() == 5 &&
          !ParseLinkCardinality(fields[4], &cardinality)) {
        return fail("bad cardinality '" + fields[4] + "'");
      }
      MAD_RETURN_IF_ERROR(
          db->DefineLinkType(current_link_type, first, second, cardinality));
      continue;
    }
    if (tag == "LINK") {
      if (current_link_type.empty()) return fail("LINK before LINKTYPE");
      if (fields.size() != 3) return fail("bad LINK line");
      uint64_t a = 0;
      uint64_t b = 0;
      try {
        a = std::stoull(fields[1]);
        b = std::stoull(fields[2]);
      } catch (...) {
        return fail("bad link ids");
      }
      MAD_RETURN_IF_ERROR(
          db->InsertLink(current_link_type, AtomId{a}, AtomId{b}));
      continue;
    }
    if (tag == "INDEX") {
      MAD_RETURN_IF_ERROR(flush_atom_type());
      if (fields.size() != 3) return fail("bad INDEX line");
      MAD_ASSIGN_OR_RETURN(std::string aname, PercentDecode(fields[1]));
      MAD_ASSIGN_OR_RETURN(std::string attr, PercentDecode(fields[2]));
      MAD_RETURN_IF_ERROR(db->CreateIndex(aname, attr));
      continue;
    }
    if (tag == "END") {
      MAD_RETURN_IF_ERROR(flush_atom_type());
      ended = true;
      continue;
    }
    return fail("unknown tag '" + tag + "'");
  }
  if (db == nullptr) return Status::ParseError("no DATABASE section");
  if (!ended) return Status::ParseError("missing END marker");
  return db;
}

Result<std::string> SerializeDatabase(const Database& db) {
  std::ostringstream out;
  MAD_RETURN_IF_ERROR(WriteDatabase(db, out));
  return out.str();
}

Result<std::unique_ptr<Database>> DeserializeDatabase(const std::string& text) {
  std::istringstream in(text);
  return ReadDatabase(in);
}

Result<std::unique_ptr<Database>> CloneDatabase(const Database& db) {
  // Round trip through the binary codec: considerably faster than the text
  // format (no number formatting/parsing) and preserves the atom-id
  // counter, which the text format does not carry.
  MAD_ASSIGN_OR_RETURN(std::string bytes, SerializeDatabaseBinary(db));
  return DeserializeDatabaseBinary(bytes);
}

}  // namespace mad
