#include "storage/database.h"

#include <algorithm>

namespace mad {

Status Database::DefineAtomType(const std::string& aname, Schema description) {
  if (aname.empty()) {
    return Status::InvalidArgument("atom type name must be non-empty");
  }
  if (atom_types_.count(aname) > 0) {
    return Status::AlreadyExists("atom type '" + aname + "' already defined");
  }
  atom_types_[aname] = std::make_unique<AtomType>(aname, std::move(description));
  atom_type_order_.push_back(aname);
  if (listener_ != nullptr) {
    listener_->OnDefineAtomType(aname, atom_types_[aname]->description());
  }
  return Status::OK();
}

Status Database::DefineLinkType(const std::string& lname,
                                const std::string& first,
                                const std::string& second,
                                LinkCardinality cardinality) {
  if (lname.empty()) {
    return Status::InvalidArgument("link type name must be non-empty");
  }
  if (link_types_.count(lname) > 0) {
    return Status::AlreadyExists("link type '" + lname + "' already defined");
  }
  if (atom_types_.count(first) == 0) {
    return Status::NotFound("link type '" + lname +
                            "' references unknown atom type '" + first + "'");
  }
  if (atom_types_.count(second) == 0) {
    return Status::NotFound("link type '" + lname +
                            "' references unknown atom type '" + second + "'");
  }
  link_types_[lname] =
      std::make_unique<LinkType>(lname, first, second, cardinality);
  link_type_order_.push_back(lname);
  if (listener_ != nullptr) {
    listener_->OnDefineLinkType(lname, first, second, cardinality);
  }
  return Status::OK();
}

Status Database::DropAtomType(const std::string& aname) {
  if (atom_types_.count(aname) == 0) {
    return Status::NotFound("atom type '" + aname + "' not defined");
  }
  // Link types may not dangle: drop every link type touching this atom type.
  std::vector<std::string> doomed;
  for (const auto& [lname, lt] : link_types_) {
    if (lt->Touches(aname)) doomed.push_back(lname);
  }
  for (const std::string& lname : doomed) {
    MAD_RETURN_IF_ERROR(DropLinkType(lname));
  }
  atom_types_.erase(aname);
  atom_type_order_.erase(
      std::find(atom_type_order_.begin(), atom_type_order_.end(), aname));
  indexes_.erase(aname);
  if (listener_ != nullptr) listener_->OnDropAtomType(aname);
  return Status::OK();
}

Status Database::DropLinkType(const std::string& lname) {
  if (link_types_.count(lname) == 0) {
    return Status::NotFound("link type '" + lname + "' not defined");
  }
  link_types_.erase(lname);
  link_type_order_.erase(
      std::find(link_type_order_.begin(), link_type_order_.end(), lname));
  if (listener_ != nullptr) listener_->OnDropLinkType(lname);
  return Status::OK();
}

Result<AtomId> Database::InsertAtom(const std::string& aname,
                                    std::vector<Value> values) {
  AtomId id = NewAtomId();
  MAD_RETURN_IF_ERROR(InsertAtomWithId(aname, id, std::move(values)));
  return id;
}

Status Database::InsertAtomWithId(const std::string& aname, AtomId id,
                                  std::vector<Value> values) {
  MAD_ASSIGN_OR_RETURN(AtomType * at, GetMutableAtomType(aname));
  MAD_RETURN_IF_ERROR(at->description().ValidateRow(values));
  // Keep the id counter ahead of any caller-chosen id so fresh ids never
  // collide with identities preserved from other atom types.
  last_atom_id_ = std::max(last_atom_id_, id.value);
  Atom atom{id, std::move(values)};
  MAD_RETURN_IF_ERROR(at->mutable_occurrence().Insert(atom));
  IndexInsert(aname, atom);
  if (listener_ != nullptr) listener_->OnInsertAtom(aname, atom);
  return Status::OK();
}

Status Database::UpdateAtom(const std::string& aname, AtomId id,
                            std::vector<Value> values) {
  MAD_ASSIGN_OR_RETURN(AtomType * at, GetMutableAtomType(aname));
  MAD_RETURN_IF_ERROR(at->description().ValidateRow(values));
  const Atom* existing = at->occurrence().Find(id);
  if (existing == nullptr) {
    return Status::NotFound("atom #" + std::to_string(id.value) +
                            " not in atom type '" + aname + "'");
  }
  IndexErase(aname, *existing);
  MAD_RETURN_IF_ERROR(at->mutable_occurrence().Erase(id));
  Atom atom{id, std::move(values)};
  MAD_RETURN_IF_ERROR(at->mutable_occurrence().Insert(atom));
  IndexInsert(aname, atom);
  if (listener_ != nullptr) listener_->OnUpdateAtom(aname, atom);
  return Status::OK();
}

Status Database::DeleteAtom(const std::string& aname, AtomId id) {
  MAD_ASSIGN_OR_RETURN(AtomType * at, GetMutableAtomType(aname));
  if (const Atom* atom = at->occurrence().Find(id); atom != nullptr) {
    IndexErase(aname, *atom);
  }
  MAD_RETURN_IF_ERROR(at->mutable_occurrence().Erase(id));
  // Referential integrity: remove every link attached to the deleted atom
  // through a link type touching this atom type.
  for (const auto& lname : link_type_order_) {
    LinkType* lt = link_types_[lname].get();
    if (!lt->Touches(aname)) continue;
    std::vector<Link> doomed;
    for (const Link& link : lt->occurrence().links()) {
      bool hit = (lt->first_atom_type() == aname && link.first == id) ||
                 (lt->second_atom_type() == aname && link.second == id);
      if (hit) doomed.push_back(link);
    }
    for (const Link& link : doomed) {
      // Direct occurrence erases: a replayed DeleteAtom cascades these
      // identically, so they are deliberately not re-notified.
      MAD_RETURN_IF_ERROR(
          lt->mutable_occurrence().Erase(link.first, link.second));
    }
  }
  if (listener_ != nullptr) listener_->OnDeleteAtom(aname, id);
  return Status::OK();
}

Status Database::InsertLink(const std::string& lname, AtomId first,
                            AtomId second) {
  MAD_ASSIGN_OR_RETURN(LinkType * lt, GetMutableLinkType(lname));
  MAD_ASSIGN_OR_RETURN(const AtomType* at1, GetAtomType(lt->first_atom_type()));
  MAD_ASSIGN_OR_RETURN(const AtomType* at2,
                       GetAtomType(lt->second_atom_type()));
  if (!at1->occurrence().Contains(first)) {
    return Status::ConstraintViolation(
        "link '" + lname + "': atom #" + std::to_string(first.value) +
        " is not in atom type '" + lt->first_atom_type() + "'");
  }
  if (!at2->occurrence().Contains(second)) {
    return Status::ConstraintViolation(
        "link '" + lname + "': atom #" + std::to_string(second.value) +
        " is not in atom type '" + lt->second_atom_type() + "'");
  }
  // Cardinality restriction of the extended link-type definition.
  LinkCardinality cardinality = lt->cardinality();
  bool first_bounded = cardinality == LinkCardinality::kOneToOne ||
                       cardinality == LinkCardinality::kManyToOne;
  bool second_bounded = cardinality == LinkCardinality::kOneToOne ||
                        cardinality == LinkCardinality::kOneToMany;
  if (first_bounded &&
      !lt->occurrence().Partners(first, LinkDirection::kForward).empty()) {
    return Status::ConstraintViolation(
        "link '" + lname + "' (" + LinkCardinalityName(cardinality) +
        "): atom #" + std::to_string(first.value) +
        " already has a partner");
  }
  if (second_bounded &&
      !lt->occurrence().Partners(second, LinkDirection::kBackward).empty()) {
    return Status::ConstraintViolation(
        "link '" + lname + "' (" + LinkCardinalityName(cardinality) +
        "): atom #" + std::to_string(second.value) +
        " already has a partner");
  }
  MAD_RETURN_IF_ERROR(lt->mutable_occurrence().Insert(first, second));
  if (listener_ != nullptr) listener_->OnInsertLink(lname, first, second);
  return Status::OK();
}

Status Database::EraseLink(const std::string& lname, AtomId first,
                           AtomId second) {
  MAD_ASSIGN_OR_RETURN(LinkType * lt, GetMutableLinkType(lname));
  MAD_RETURN_IF_ERROR(lt->mutable_occurrence().Erase(first, second));
  if (listener_ != nullptr) listener_->OnEraseLink(lname, first, second);
  return Status::OK();
}

bool Database::HasAtomType(const std::string& aname) const {
  return atom_types_.count(aname) > 0;
}

bool Database::HasLinkType(const std::string& lname) const {
  return link_types_.count(lname) > 0;
}

Result<const AtomType*> Database::GetAtomType(const std::string& aname) const {
  auto it = atom_types_.find(aname);
  if (it == atom_types_.end()) {
    return Status::NotFound("atom type '" + aname + "' not defined");
  }
  return static_cast<const AtomType*>(it->second.get());
}

Result<AtomType*> Database::GetMutableAtomType(const std::string& aname) {
  auto it = atom_types_.find(aname);
  if (it == atom_types_.end()) {
    return Status::NotFound("atom type '" + aname + "' not defined");
  }
  return it->second.get();
}

Result<const LinkType*> Database::GetLinkType(const std::string& lname) const {
  auto it = link_types_.find(lname);
  if (it == link_types_.end()) {
    return Status::NotFound("link type '" + lname + "' not defined");
  }
  return static_cast<const LinkType*>(it->second.get());
}

Result<LinkType*> Database::GetMutableLinkType(const std::string& lname) {
  auto it = link_types_.find(lname);
  if (it == link_types_.end()) {
    return Status::NotFound("link type '" + lname + "' not defined");
  }
  return it->second.get();
}

std::vector<const AtomType*> Database::atom_types() const {
  std::vector<const AtomType*> out;
  out.reserve(atom_type_order_.size());
  for (const std::string& aname : atom_type_order_) {
    out.push_back(atom_types_.at(aname).get());
  }
  return out;
}

std::vector<const LinkType*> Database::link_types() const {
  std::vector<const LinkType*> out;
  out.reserve(link_type_order_.size());
  for (const std::string& lname : link_type_order_) {
    out.push_back(link_types_.at(lname).get());
  }
  return out;
}

std::vector<const LinkType*> Database::LinkTypesTouching(
    const std::string& aname) const {
  std::vector<const LinkType*> out;
  for (const std::string& lname : link_type_order_) {
    const LinkType* lt = link_types_.at(lname).get();
    if (lt->Touches(aname)) out.push_back(lt);
  }
  return out;
}

Result<const Atom*> Database::GetAtom(const std::string& aname,
                                      AtomId id) const {
  MAD_ASSIGN_OR_RETURN(const AtomType* at, GetAtomType(aname));
  const Atom* atom = at->occurrence().Find(id);
  if (atom == nullptr) {
    return Status::NotFound("atom #" + std::to_string(id.value) +
                            " not in atom type '" + aname + "'");
  }
  return atom;
}

Result<Value> Database::GetAttribute(const std::string& aname, AtomId id,
                                     const std::string& attribute) const {
  MAD_ASSIGN_OR_RETURN(const AtomType* at, GetAtomType(aname));
  MAD_ASSIGN_OR_RETURN(size_t idx, at->description().IndexOf(attribute));
  const Atom* atom = at->occurrence().Find(id);
  if (atom == nullptr) {
    return Status::NotFound("atom #" + std::to_string(id.value) +
                            " not in atom type '" + aname + "'");
  }
  return atom->values[idx];
}

Status Database::CreateIndex(const std::string& aname,
                             const std::string& attribute) {
  MAD_ASSIGN_OR_RETURN(const AtomType* at, GetAtomType(aname));
  MAD_ASSIGN_OR_RETURN(size_t value_index, at->description().IndexOf(attribute));
  auto& per_type = indexes_[aname];
  if (per_type.count(attribute) > 0) {
    return Status::AlreadyExists("index on " + aname + "." + attribute +
                                 " already exists");
  }
  auto index =
      std::make_unique<AttributeIndex>(aname, attribute, value_index);
  for (const Atom& atom : at->occurrence().atoms()) index->Insert(atom);
  per_type[attribute] = std::move(index);
  if (listener_ != nullptr) listener_->OnCreateIndex(aname, attribute);
  return Status::OK();
}

Status Database::DropIndex(const std::string& aname,
                           const std::string& attribute) {
  auto type_it = indexes_.find(aname);
  if (type_it == indexes_.end() || type_it->second.erase(attribute) == 0) {
    return Status::NotFound("no index on " + aname + "." + attribute);
  }
  if (type_it->second.empty()) indexes_.erase(type_it);
  if (listener_ != nullptr) listener_->OnDropIndex(aname, attribute);
  return Status::OK();
}

const AttributeIndex* Database::FindIndex(const std::string& aname,
                                          const std::string& attribute) const {
  auto type_it = indexes_.find(aname);
  if (type_it == indexes_.end()) return nullptr;
  auto attr_it = type_it->second.find(attribute);
  if (attr_it == type_it->second.end()) return nullptr;
  return attr_it->second.get();
}

Result<std::vector<AtomId>> Database::LookupByAttribute(
    const std::string& aname, const std::string& attribute,
    const Value& value) const {
  if (const AttributeIndex* index = FindIndex(aname, attribute)) {
    return index->Lookup(value);
  }
  MAD_ASSIGN_OR_RETURN(const AtomType* at, GetAtomType(aname));
  MAD_ASSIGN_OR_RETURN(size_t idx, at->description().IndexOf(attribute));
  std::vector<AtomId> matches;
  for (const Atom& atom : at->occurrence().atoms()) {
    if (atom.values[idx] == value) matches.push_back(atom.id);
  }
  return matches;
}

void Database::IndexInsert(const std::string& aname, const Atom& atom) {
  auto type_it = indexes_.find(aname);
  if (type_it == indexes_.end()) return;
  for (auto& [attr, index] : type_it->second) index->Insert(atom);
}

void Database::IndexErase(const std::string& aname, const Atom& atom) {
  auto type_it = indexes_.find(aname);
  if (type_it == indexes_.end()) return;
  for (auto& [attr, index] : type_it->second) index->Erase(atom);
}

std::string Database::UniqueAtomTypeName(const std::string& prefix) const {
  if (atom_types_.count(prefix) == 0) return prefix;
  for (int i = 2;; ++i) {
    std::string candidate = prefix + "@" + std::to_string(i);
    if (atom_types_.count(candidate) == 0) return candidate;
  }
}

std::string Database::UniqueLinkTypeName(const std::string& prefix) const {
  if (link_types_.count(prefix) == 0) return prefix;
  for (int i = 2;; ++i) {
    std::string candidate = prefix + "@" + std::to_string(i);
    if (link_types_.count(candidate) == 0) return candidate;
  }
}

Status Database::CheckConsistency() const {
  // Atom values match their descriptions.
  for (const auto& [aname, at] : atom_types_) {
    for (const Atom& atom : at->occurrence().atoms()) {
      Status s = at->description().ValidateRow(atom.values);
      if (!s.ok()) {
        return Status::Internal("atom type '" + aname + "': " + s.message());
      }
    }
  }
  // No dangling links.
  for (const auto& [lname, lt] : link_types_) {
    auto first_it = atom_types_.find(lt->first_atom_type());
    auto second_it = atom_types_.find(lt->second_atom_type());
    if (first_it == atom_types_.end() || second_it == atom_types_.end()) {
      return Status::Internal("link type '" + lname +
                              "' references a dropped atom type");
    }
    for (const Link& link : lt->occurrence().links()) {
      if (!first_it->second->occurrence().Contains(link.first) ||
          !second_it->second->occurrence().Contains(link.second)) {
        return Status::Internal("link type '" + lname +
                                "' contains a dangling link <#" +
                                std::to_string(link.first.value) + ", #" +
                                std::to_string(link.second.value) + ">");
      }
    }
  }
  // Indexes agree with their occurrences.
  for (const auto& [aname, per_type] : indexes_) {
    auto at_it = atom_types_.find(aname);
    if (at_it == atom_types_.end()) {
      return Status::Internal("index set for dropped atom type '" + aname +
                              "'");
    }
    const AtomStore& store = at_it->second->occurrence();
    for (const auto& [attr, index] : per_type) {
      if (index->entry_count() != store.size()) {
        return Status::Internal("index " + aname + "." + attr +
                                " entry count mismatch");
      }
      for (const Atom& atom : store.atoms()) {
        const auto& bucket = index->Lookup(atom.values[index->value_index()]);
        bool found = false;
        for (AtomId id : bucket) {
          if (id == atom.id) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::Internal("index " + aname + "." + attr +
                                  " is missing atom #" +
                                  std::to_string(atom.id.value));
        }
      }
    }
  }
  return Status::OK();
}

size_t Database::total_atom_count() const {
  size_t n = 0;
  for (const auto& [name, at] : atom_types_) n += at->occurrence().size();
  return n;
}

size_t Database::total_link_count() const {
  size_t n = 0;
  for (const auto& [name, lt] : link_types_) n += lt->occurrence().size();
  return n;
}

}  // namespace mad
