#include "storage/index.h"

#include <algorithm>

namespace mad {

namespace {
const std::vector<AtomId> kNoMatches;
}  // namespace

void AttributeIndex::Insert(const Atom& atom) {
  buckets_[atom.values[value_index_]].push_back(atom.id);
  ++entries_;
}

void AttributeIndex::Erase(const Atom& atom) {
  auto it = buckets_.find(atom.values[value_index_]);
  if (it == buckets_.end()) return;
  auto pos = std::find(it->second.begin(), it->second.end(), atom.id);
  if (pos == it->second.end()) return;
  it->second.erase(pos);
  --entries_;
  if (it->second.empty()) buckets_.erase(it);
}

const std::vector<AtomId>& AttributeIndex::Lookup(const Value& value) const {
  auto it = buckets_.find(value);
  if (it == buckets_.end()) return kNoMatches;
  return it->second;
}

}  // namespace mad
