#include "storage/binary_codec.h"

#include <cstring>

#include "util/crc32.h"

namespace mad {

namespace {

constexpr char kMagic[4] = {'M', 'A', 'D', 'B'};
constexpr uint32_t kVersion = 1;

/// Section tags, in the order sections must appear in a checkpoint.
enum class SectionTag : uint8_t {
  kMeta = 1,
  kSchema = 2,
  kAtoms = 3,
  kLinks = 4,
  kIndexes = 5,
  kEnd = 6,
};

/// Upper bound on any single section or string — rejects absurd lengths
/// decoded from corrupted input before they reach an allocation.
constexpr uint64_t kMaxSaneLength = uint64_t{1} << 30;

/// Value type tags of the binary value encoding.
enum class ValueTag : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
};

}  // namespace

// ---- ByteWriter -----------------------------------------------------------

void ByteWriter::PutFixed32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutZigzag(int64_t v) {
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  out_.append(s.data(), s.size());
}

void ByteWriter::PutValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      PutU8(static_cast<uint8_t>(ValueTag::kNull));
      return;
    case DataType::kInt64:
      PutU8(static_cast<uint8_t>(ValueTag::kInt64));
      PutZigzag(v.AsInt64());
      return;
    case DataType::kDouble: {
      PutU8(static_cast<uint8_t>(ValueTag::kDouble));
      uint64_t bits = 0;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutFixed64(bits);
      return;
    }
    case DataType::kString:
      PutU8(static_cast<uint8_t>(ValueTag::kString));
      PutString(v.AsString());
      return;
    case DataType::kBool:
      PutU8(static_cast<uint8_t>(ValueTag::kBool));
      PutU8(v.AsBool() ? 1 : 0);
      return;
  }
  PutU8(static_cast<uint8_t>(ValueTag::kNull));
}

// ---- ByteReader -----------------------------------------------------------

Result<uint8_t> ByteReader::GetU8() {
  if (pos_ >= bytes_.size()) {
    return Status::ParseError("binary input truncated (byte)");
  }
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<uint32_t> ByteReader::GetFixed32() {
  if (remaining() < 4) {
    return Status::ParseError("binary input truncated (fixed32)");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetFixed64() {
  if (remaining() < 8) {
    return Status::ParseError("binary input truncated (fixed64)");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    MAD_ASSIGN_OR_RETURN(uint8_t byte, GetU8());
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte & 0x7e) != 0) {
        return Status::ParseError("varint overflows 64 bits");
      }
      return v;
    }
  }
  return Status::ParseError("varint longer than 10 bytes");
}

Result<int64_t> ByteReader::GetZigzag() {
  MAD_ASSIGN_OR_RETURN(uint64_t raw, GetVarint());
  return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

Result<std::string> ByteReader::GetString() {
  MAD_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
  if (len > kMaxSaneLength || len > remaining()) {
    return Status::ParseError("string length exceeds remaining input");
  }
  std::string out(bytes_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<std::string_view> ByteReader::GetBytes(size_t n) {
  if (n > remaining()) {
    return Status::ParseError("binary input truncated (raw bytes)");
  }
  std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

Result<Value> ByteReader::GetValue() {
  MAD_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      return Value();
    case ValueTag::kInt64: {
      MAD_ASSIGN_OR_RETURN(int64_t v, GetZigzag());
      return Value(v);
    }
    case ValueTag::kDouble: {
      MAD_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64());
      double d = 0.0;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case ValueTag::kString: {
      MAD_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value(std::move(s));
    }
    case ValueTag::kBool: {
      MAD_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      if (b > 1) return Status::ParseError("bad bool value byte");
      return Value(b == 1);
    }
  }
  return Status::ParseError("unknown value tag " + std::to_string(tag));
}

// ---- Checkpoint writer ----------------------------------------------------

namespace {

void AppendSection(SectionTag tag, const ByteWriter& payload,
                   std::string* out) {
  ByteWriter header;
  header.PutU8(static_cast<uint8_t>(tag));
  header.PutFixed32(static_cast<uint32_t>(payload.size()));
  header.PutFixed32(Crc32(payload.bytes()));
  out->append(header.bytes());
  out->append(payload.bytes());
}

}  // namespace

Result<std::string> SerializeDatabaseBinary(const Database& db) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  {
    ByteWriter version;
    version.PutFixed32(kVersion);
    out.append(version.bytes());
  }

  {
    ByteWriter meta;
    meta.PutString(db.name());
    meta.PutVarint(db.last_atom_id());
    AppendSection(SectionTag::kMeta, meta, &out);
  }
  {
    ByteWriter schema;
    schema.PutVarint(db.atom_type_count());
    for (const AtomType* at : db.atom_types()) {
      schema.PutString(at->name());
      schema.PutVarint(at->description().attribute_count());
      for (const AttributeDescription& attr : at->description().attributes()) {
        schema.PutString(attr.name);
        schema.PutU8(static_cast<uint8_t>(attr.type));
      }
    }
    schema.PutVarint(db.link_type_count());
    for (const LinkType* lt : db.link_types()) {
      schema.PutString(lt->name());
      schema.PutString(lt->first_atom_type());
      schema.PutString(lt->second_atom_type());
      schema.PutU8(static_cast<uint8_t>(lt->cardinality()));
    }
    AppendSection(SectionTag::kSchema, schema, &out);
  }
  {
    ByteWriter atoms;
    atoms.PutVarint(db.atom_type_count());
    for (const AtomType* at : db.atom_types()) {
      atoms.PutVarint(at->occurrence().size());
      for (const Atom& atom : at->occurrence().atoms()) {
        atoms.PutVarint(atom.id.value);
        for (const Value& v : atom.values) atoms.PutValue(v);
      }
    }
    AppendSection(SectionTag::kAtoms, atoms, &out);
  }
  {
    ByteWriter links;
    links.PutVarint(db.link_type_count());
    for (const LinkType* lt : db.link_types()) {
      links.PutVarint(lt->occurrence().size());
      for (const Link& link : lt->occurrence().links()) {
        links.PutVarint(link.first.value);
        links.PutVarint(link.second.value);
      }
    }
    AppendSection(SectionTag::kLinks, links, &out);
  }
  {
    ByteWriter indexes;
    size_t count = 0;
    for (const AtomType* at : db.atom_types()) {
      for (const AttributeDescription& attr : at->description().attributes()) {
        if (db.FindIndex(at->name(), attr.name) != nullptr) ++count;
      }
    }
    indexes.PutVarint(count);
    for (const AtomType* at : db.atom_types()) {
      for (const AttributeDescription& attr : at->description().attributes()) {
        if (db.FindIndex(at->name(), attr.name) != nullptr) {
          indexes.PutString(at->name());
          indexes.PutString(attr.name);
        }
      }
    }
    AppendSection(SectionTag::kIndexes, indexes, &out);
  }
  AppendSection(SectionTag::kEnd, ByteWriter(), &out);
  return out;
}

// ---- Checkpoint reader ----------------------------------------------------

namespace {

/// Reads one framed section, verifies its CRC, and returns a reader over
/// the payload.
Result<std::pair<SectionTag, ByteReader>> ReadSection(ByteReader* in) {
  MAD_ASSIGN_OR_RETURN(uint8_t tag, in->GetU8());
  if (tag < static_cast<uint8_t>(SectionTag::kMeta) ||
      tag > static_cast<uint8_t>(SectionTag::kEnd)) {
    return Status::ParseError("unknown section tag " + std::to_string(tag));
  }
  MAD_ASSIGN_OR_RETURN(uint32_t len, in->GetFixed32());
  MAD_ASSIGN_OR_RETURN(uint32_t crc, in->GetFixed32());
  if (len > kMaxSaneLength) {
    return Status::ParseError("section length out of range");
  }
  MAD_ASSIGN_OR_RETURN(std::string_view payload, in->GetBytes(len));
  if (Crc32(payload) != crc) {
    return Status::ParseError("section CRC mismatch (tag " +
                              std::to_string(tag) + ")");
  }
  return std::make_pair(static_cast<SectionTag>(tag), ByteReader(payload));
}

Result<ByteReader> ExpectSection(ByteReader* in, SectionTag expected) {
  MAD_ASSIGN_OR_RETURN(auto section, ReadSection(in));
  if (section.first != expected) {
    return Status::ParseError(
        "unexpected section order (tag " +
        std::to_string(static_cast<uint8_t>(section.first)) + ", expected " +
        std::to_string(static_cast<uint8_t>(expected)) + ")");
  }
  return section.second;
}

}  // namespace

Result<std::unique_ptr<Database>> DeserializeDatabaseBinary(
    std::string_view bytes) {
  ByteReader in(bytes);
  MAD_ASSIGN_OR_RETURN(std::string_view magic, in.GetBytes(sizeof(kMagic)));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("bad binary checkpoint magic");
  }
  MAD_ASSIGN_OR_RETURN(uint32_t version, in.GetFixed32());
  if (version != kVersion) {
    return Status::ParseError("unsupported binary checkpoint version " +
                              std::to_string(version));
  }

  // Meta.
  MAD_ASSIGN_OR_RETURN(ByteReader meta, ExpectSection(&in, SectionTag::kMeta));
  MAD_ASSIGN_OR_RETURN(std::string name, meta.GetString());
  MAD_ASSIGN_OR_RETURN(uint64_t last_atom_id, meta.GetVarint());
  auto db = std::make_unique<Database>(std::move(name));

  // Schema: atom types, then link types.
  MAD_ASSIGN_OR_RETURN(ByteReader schema,
                       ExpectSection(&in, SectionTag::kSchema));
  MAD_ASSIGN_OR_RETURN(uint64_t atom_type_count, schema.GetVarint());
  if (atom_type_count > kMaxSaneLength) {
    return Status::ParseError("atom type count out of range");
  }
  std::vector<std::string> atom_type_names;
  std::vector<size_t> arities;
  atom_type_names.reserve(atom_type_count);
  for (uint64_t i = 0; i < atom_type_count; ++i) {
    MAD_ASSIGN_OR_RETURN(std::string aname, schema.GetString());
    MAD_ASSIGN_OR_RETURN(uint64_t attr_count, schema.GetVarint());
    if (attr_count > kMaxSaneLength) {
      return Status::ParseError("attribute count out of range");
    }
    Schema description;
    for (uint64_t j = 0; j < attr_count; ++j) {
      MAD_ASSIGN_OR_RETURN(std::string attr, schema.GetString());
      MAD_ASSIGN_OR_RETURN(uint8_t type, schema.GetU8());
      if (type < static_cast<uint8_t>(DataType::kInt64) ||
          type > static_cast<uint8_t>(DataType::kBool)) {
        return Status::ParseError("bad attribute data type " +
                                  std::to_string(type));
      }
      MAD_RETURN_IF_ERROR(
          description.AddAttribute(attr, static_cast<DataType>(type)));
    }
    arities.push_back(description.attribute_count());
    MAD_RETURN_IF_ERROR(db->DefineAtomType(aname, std::move(description)));
    atom_type_names.push_back(std::move(aname));
  }
  MAD_ASSIGN_OR_RETURN(uint64_t link_type_count, schema.GetVarint());
  if (link_type_count > kMaxSaneLength) {
    return Status::ParseError("link type count out of range");
  }
  std::vector<std::string> link_type_names;
  link_type_names.reserve(link_type_count);
  for (uint64_t i = 0; i < link_type_count; ++i) {
    MAD_ASSIGN_OR_RETURN(std::string lname, schema.GetString());
    MAD_ASSIGN_OR_RETURN(std::string first, schema.GetString());
    MAD_ASSIGN_OR_RETURN(std::string second, schema.GetString());
    MAD_ASSIGN_OR_RETURN(uint8_t cardinality, schema.GetU8());
    if (cardinality > static_cast<uint8_t>(LinkCardinality::kManyToMany)) {
      return Status::ParseError("bad link cardinality " +
                                std::to_string(cardinality));
    }
    MAD_RETURN_IF_ERROR(db->DefineLinkType(
        lname, first, second, static_cast<LinkCardinality>(cardinality)));
    link_type_names.push_back(std::move(lname));
  }
  if (!schema.exhausted()) {
    return Status::ParseError("trailing bytes in schema section");
  }

  // Atoms, aligned with the schema section's atom-type order.
  MAD_ASSIGN_OR_RETURN(ByteReader atoms, ExpectSection(&in, SectionTag::kAtoms));
  MAD_ASSIGN_OR_RETURN(uint64_t atoms_type_count, atoms.GetVarint());
  if (atoms_type_count != atom_type_count) {
    return Status::ParseError("atoms section type count mismatch");
  }
  for (uint64_t i = 0; i < atoms_type_count; ++i) {
    MAD_ASSIGN_OR_RETURN(uint64_t atom_count, atoms.GetVarint());
    if (atom_count > kMaxSaneLength) {
      return Status::ParseError("atom count out of range");
    }
    for (uint64_t j = 0; j < atom_count; ++j) {
      MAD_ASSIGN_OR_RETURN(uint64_t id, atoms.GetVarint());
      std::vector<Value> values;
      values.reserve(arities[i]);
      for (size_t k = 0; k < arities[i]; ++k) {
        MAD_ASSIGN_OR_RETURN(Value v, atoms.GetValue());
        values.push_back(std::move(v));
      }
      MAD_RETURN_IF_ERROR(db->InsertAtomWithId(atom_type_names[i], AtomId{id},
                                               std::move(values)));
    }
  }
  if (!atoms.exhausted()) {
    return Status::ParseError("trailing bytes in atoms section");
  }

  // Links, aligned with the schema section's link-type order.
  MAD_ASSIGN_OR_RETURN(ByteReader links, ExpectSection(&in, SectionTag::kLinks));
  MAD_ASSIGN_OR_RETURN(uint64_t links_type_count, links.GetVarint());
  if (links_type_count != link_type_count) {
    return Status::ParseError("links section type count mismatch");
  }
  for (uint64_t i = 0; i < links_type_count; ++i) {
    MAD_ASSIGN_OR_RETURN(uint64_t link_count, links.GetVarint());
    if (link_count > kMaxSaneLength) {
      return Status::ParseError("link count out of range");
    }
    for (uint64_t j = 0; j < link_count; ++j) {
      MAD_ASSIGN_OR_RETURN(uint64_t first, links.GetVarint());
      MAD_ASSIGN_OR_RETURN(uint64_t second, links.GetVarint());
      MAD_RETURN_IF_ERROR(
          db->InsertLink(link_type_names[i], AtomId{first}, AtomId{second}));
    }
  }
  if (!links.exhausted()) {
    return Status::ParseError("trailing bytes in links section");
  }

  // Index definitions.
  MAD_ASSIGN_OR_RETURN(ByteReader indexes,
                       ExpectSection(&in, SectionTag::kIndexes));
  MAD_ASSIGN_OR_RETURN(uint64_t index_count, indexes.GetVarint());
  if (index_count > kMaxSaneLength) {
    return Status::ParseError("index count out of range");
  }
  for (uint64_t i = 0; i < index_count; ++i) {
    MAD_ASSIGN_OR_RETURN(std::string aname, indexes.GetString());
    MAD_ASSIGN_OR_RETURN(std::string attr, indexes.GetString());
    MAD_RETURN_IF_ERROR(db->CreateIndex(aname, attr));
  }
  if (!indexes.exhausted()) {
    return Status::ParseError("trailing bytes in indexes section");
  }

  MAD_ASSIGN_OR_RETURN(ByteReader end, ExpectSection(&in, SectionTag::kEnd));
  if (!end.exhausted()) {
    return Status::ParseError("end section must be empty");
  }
  if (!in.exhausted()) {
    return Status::ParseError("trailing bytes after end section");
  }

  // Restore the id counter: deleted atoms' ids must never be reused, even
  // when no surviving atom carries the highest id ever assigned.
  db->EnsureAtomIdAtLeast(last_atom_id);
  return db;
}

}  // namespace mad
