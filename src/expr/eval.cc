#include "expr/eval.h"

namespace mad {
namespace expr {

Result<bool> ApplyCompareBool(CompareOp op, const Value& lhs,
                              const Value& rhs) {
  // Guard against comparing unrelated types: only equal types, numeric
  // pairs, and nulls are comparable.
  auto numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kDouble;
  };
  if (!lhs.is_null() && !rhs.is_null() && lhs.type() != rhs.type() &&
      !(numeric(lhs.type()) && numeric(rhs.type()))) {
    return Status::InvalidArgument("cannot compare " + lhs.ToString() +
                                   " with " + rhs.ToString());
  }

  int cmp = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return Status::Internal("unknown comparison operator");
}

Result<Value> ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  MAD_ASSIGN_OR_RETURN(bool result, ApplyCompareBool(op, lhs, rhs));
  return Value(result);
}

Result<Value> ApplyArith(ArithOp op, const Value& lhs, const Value& rhs) {
  bool both_int =
      lhs.type() == DataType::kInt64 && rhs.type() == DataType::kInt64;
  if (both_int) {
    int64_t a = lhs.AsInt64();
    int64_t b = rhs.AsInt64();
    switch (op) {
      case ArithOp::kAdd:
        return Value(a + b);
      case ArithOp::kSub:
        return Value(a - b);
      case ArithOp::kMul:
        return Value(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value(a / b);
    }
  }
  MAD_ASSIGN_OR_RETURN(double a, lhs.ToNumeric());
  MAD_ASSIGN_OR_RETURN(double b, rhs.ToNumeric());
  switch (op) {
    case ArithOp::kAdd:
      return Value(a + b);
    case ArithOp::kSub:
      return Value(a - b);
    case ArithOp::kMul:
      return Value(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
  }
  return Status::Internal("unknown arithmetic operator");
}

Result<bool> RequireBool(const Value& v) {
  if (v.type() != DataType::kBool) {
    return Status::InvalidArgument("predicate evaluated to non-boolean " +
                                   v.ToString());
  }
  return v.AsBool();
}

namespace {

Result<Value> EvalCompare(const Expr& expr, const BindingSet& bindings) {
  MAD_ASSIGN_OR_RETURN(Value lhs, EvalValue(*expr.left(), bindings));
  MAD_ASSIGN_OR_RETURN(Value rhs, EvalValue(*expr.right(), bindings));
  return ApplyCompare(expr.compare_op(), lhs, rhs);
}

Result<Value> EvalArith(const Expr& expr, const BindingSet& bindings) {
  MAD_ASSIGN_OR_RETURN(Value lhs, EvalValue(*expr.left(), bindings));
  MAD_ASSIGN_OR_RETURN(Value rhs, EvalValue(*expr.right(), bindings));
  return ApplyArith(expr.arith_op(), lhs, rhs);
}

}  // namespace

Result<Value> BindingSet::Resolve(const std::string& qualifier,
                                  const std::string& attribute) const {
  if (!qualifier.empty()) {
    auto it = bindings_.find(qualifier);
    if (it == bindings_.end()) {
      return Status::NotFound("unbound qualifier '" + qualifier + "' in '" +
                              qualifier + "." + attribute + "'");
    }
    MAD_ASSIGN_OR_RETURN(size_t idx, it->second.schema->IndexOf(attribute));
    return it->second.atom->values[idx];
  }
  // Unqualified: the attribute must occur in exactly one binding.
  const AtomBinding* hit = nullptr;
  std::string hit_qualifier;
  for (const auto& [name, binding] : bindings_) {
    if (!binding.schema->HasAttribute(attribute)) continue;
    if (hit != nullptr) {
      return Status::InvalidArgument("ambiguous attribute '" + attribute +
                                     "' (occurs in '" + hit_qualifier +
                                     "' and '" + name + "')");
    }
    hit = &binding;
    hit_qualifier = name;
  }
  if (hit == nullptr) {
    return Status::NotFound("unknown attribute '" + attribute + "'");
  }
  MAD_ASSIGN_OR_RETURN(size_t idx, hit->schema->IndexOf(attribute));
  return hit->atom->values[idx];
}

Result<Value> EvalValue(const Expr& expr, const BindingSet& bindings) {
  switch (expr.kind()) {
    case Expr::Kind::kLiteral:
      return expr.literal();
    case Expr::Kind::kAttrRef:
      return bindings.Resolve(expr.qualifier(), expr.attribute());
    case Expr::Kind::kCompare:
      return EvalCompare(expr, bindings);
    case Expr::Kind::kArith:
      return EvalArith(expr, bindings);
    case Expr::Kind::kAnd: {
      MAD_ASSIGN_OR_RETURN(bool lhs, EvalPredicate(*expr.left(), bindings));
      if (!lhs) return Value(false);
      MAD_ASSIGN_OR_RETURN(bool rhs, EvalPredicate(*expr.right(), bindings));
      return Value(rhs);
    }
    case Expr::Kind::kOr: {
      MAD_ASSIGN_OR_RETURN(bool lhs, EvalPredicate(*expr.left(), bindings));
      if (lhs) return Value(true);
      MAD_ASSIGN_OR_RETURN(bool rhs, EvalPredicate(*expr.right(), bindings));
      return Value(rhs);
    }
    case Expr::Kind::kNot: {
      MAD_ASSIGN_OR_RETURN(bool operand, EvalPredicate(*expr.left(), bindings));
      return Value(!operand);
    }
    case Expr::Kind::kCount:
      return Status::InvalidArgument(
          "COUNT(" + expr.qualifier() +
          ") is only valid in molecule-scope qualification");
    case Expr::Kind::kForAll:
      return Status::InvalidArgument(
          "FORALL is only valid in molecule-scope qualification");
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const BindingSet& bindings) {
  MAD_ASSIGN_OR_RETURN(Value v, EvalValue(expr, bindings));
  return RequireBool(v);
}

Result<bool> EvalOnAtom(const Expr& expr, const std::string& type_name,
                        const Schema& schema, const Atom& atom) {
  BindingSet bindings;
  bindings.Bind(type_name, &schema, &atom);
  return EvalPredicate(expr, bindings);
}

Status ValidateAgainstSchema(const Expr& expr, const std::string& type_name,
                             const Schema& schema) {
  std::vector<const Expr*> refs;
  expr.CollectAttrRefs(&refs);
  for (const Expr* ref : refs) {
    if (!ref->qualifier().empty() && ref->qualifier() != type_name) {
      return Status::InvalidArgument("qualifier '" + ref->qualifier() +
                                     "' does not match atom type '" +
                                     type_name + "'");
    }
    if (!schema.HasAttribute(ref->attribute())) {
      return Status::NotFound("unknown attribute '" + ref->attribute() +
                              "' in atom type '" + type_name + "'");
    }
  }
  if (!expr.IsPredicate()) {
    return Status::InvalidArgument("expression " + expr.ToString() +
                                   " is not a predicate");
  }
  return Status::OK();
}

}  // namespace expr
}  // namespace mad
