#include "expr/expr.h"

namespace mad {
namespace expr {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kAttrRef:
      return qualifier_.empty() ? attribute_ : qualifier_ + "." + attribute_;
    case Kind::kCompare:
      return "(" + left_->ToString() + " " + CompareOpName(compare_op_) + " " +
             right_->ToString() + ")";
    case Kind::kArith:
      return "(" + left_->ToString() + " " + ArithOpName(arith_op_) + " " +
             right_->ToString() + ")";
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + left_->ToString() + ")";
    case Kind::kCount:
      return "COUNT(" + qualifier_ + ")";
    case Kind::kForAll:
      return "FORALL " + qualifier_ + " " + left_->ToString();
  }
  return "?";
}

void Expr::CollectAttrRefs(std::vector<const Expr*>* out) const {
  if (kind_ == Kind::kAttrRef) {
    out->push_back(this);
    return;
  }
  if (left_ != nullptr) left_->CollectAttrRefs(out);
  if (right_ != nullptr) right_->CollectAttrRefs(out);
}

bool Expr::IsPredicate() const {
  switch (kind_) {
    case Kind::kCompare:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
    case Kind::kForAll:
      return true;
    case Kind::kLiteral:
      return literal_.type() == DataType::kBool;
    case Kind::kAttrRef:
      return true;  // May resolve to a BOOL attribute.
    case Kind::kArith:
    case Kind::kCount:
      return false;
  }
  return false;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::MakeAttrRef(std::string qualifier, std::string attribute) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAttrRef));
  e->qualifier_ = std::move(qualifier);
  e->attribute_ = std::move(attribute);
  return e;
}

ExprPtr Expr::MakeCount(std::string qualifier) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kCount));
  e->qualifier_ = std::move(qualifier);
  return e;
}

ExprPtr Expr::MakeForAll(std::string qualifier, ExprPtr predicate) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kForAll));
  e->qualifier_ = std::move(qualifier);
  e->left_ = std::move(predicate);
  return e;
}

ExprPtr Expr::MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kCompare));
  e->compare_op_ = op;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kArith));
  e->arith_op_ = op;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAnd));
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeOr(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kOr));
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kNot));
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Lit(Value v) { return Expr::MakeLiteral(std::move(v)); }
ExprPtr Attr(std::string attribute) {
  return Expr::MakeAttrRef("", std::move(attribute));
}
ExprPtr Attr(std::string qualifier, std::string attribute) {
  return Expr::MakeAttrRef(std::move(qualifier), std::move(attribute));
}

ExprPtr Count(std::string qualifier) {
  return Expr::MakeCount(std::move(qualifier));
}

ExprPtr ForAll(std::string qualifier, ExprPtr predicate) {
  return Expr::MakeForAll(std::move(qualifier), std::move(predicate));
}

ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeCompare(CompareOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeCompare(CompareOp::kNe, std::move(lhs), std::move(rhs));
}
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeCompare(CompareOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr Le(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeCompare(CompareOp::kLe, std::move(lhs), std::move(rhs));
}
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeCompare(CompareOp::kGt, std::move(lhs), std::move(rhs));
}
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeCompare(CompareOp::kGe, std::move(lhs), std::move(rhs));
}

ExprPtr Add(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeArith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
}
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeArith(ArithOp::kSub, std::move(lhs), std::move(rhs));
}
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeArith(ArithOp::kMul, std::move(lhs), std::move(rhs));
}
ExprPtr Div(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeArith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
}

ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeAnd(std::move(lhs), std::move(rhs));
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return Expr::MakeOr(std::move(lhs), std::move(rhs));
}
ExprPtr Not(ExprPtr operand) { return Expr::MakeNot(std::move(operand)); }

}  // namespace expr
}  // namespace mad
