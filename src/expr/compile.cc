#include "expr/compile.h"

#include <algorithm>

#include "expr/eval.h"
#include "molecule/qualification.h"

namespace mad {
namespace expr {

Result<CompiledPredicate> CompiledPredicate::Compile(
    const Database& db, const MoleculeDescription& md,
    const ExprPtr& predicate) {
  CompiledPredicate cp;
  cp.db_ = &db;
  cp.md_ = &md;
  MAD_ASSIGN_OR_RETURN(cp.resolved_, ResolveQualification(db, md, predicate));
  cp.stores_.reserve(md.nodes().size());
  cp.schemas_.reserve(md.nodes().size());
  for (const MoleculeNode& node : md.nodes()) {
    MAD_ASSIGN_OR_RETURN(const AtomType* at, db.GetAtomType(node.type_name));
    cp.stores_.push_back(&at->occurrence());
    cp.schemas_.push_back(&at->description());
  }
  MAD_ASSIGN_OR_RETURN(cp.root_, cp.BuildBool(*cp.resolved_));
  // Direct-mapped rows for every node the binding loops touch.
  cp.row_tables_.resize(cp.stores_.size());
  for (size_t node_idx : cp.loop_node_set_) {
    const AtomStore& store = *cp.stores_[node_idx];
    uint64_t max_id = 0;
    for (const Atom& atom : store.atoms()) {
      max_id = std::max(max_id, atom.id.value);
    }
    std::vector<const Atom*>& table = cp.row_tables_[node_idx];
    table.assign(static_cast<size_t>(max_id) + 1, nullptr);
    for (const Atom& atom : store.atoms()) {
      table[atom.id.value] = &atom;
    }
  }
  return cp;
}

// ---- Compilation ------------------------------------------------------------

Result<int32_t> CompiledPredicate::BuildBool(const Expr& expr) {
  // Mirrors MoleculeQualifier::EvalBoolean: AND/OR/NOT and top-level FORALL
  // split recursively, everything else is one existential leaf.
  switch (expr.kind()) {
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      MAD_ASSIGN_OR_RETURN(int32_t left, BuildBool(*expr.left()));
      MAD_ASSIGN_OR_RETURN(int32_t right, BuildBool(*expr.right()));
      BoolNode node;
      node.kind = expr.kind() == Expr::Kind::kAnd ? BoolNode::Kind::kAnd
                                                  : BoolNode::Kind::kOr;
      node.left = left;
      node.right = right;
      bools_.push_back(node);
      return static_cast<int32_t>(bools_.size() - 1);
    }
    case Expr::Kind::kNot: {
      MAD_ASSIGN_OR_RETURN(int32_t left, BuildBool(*expr.left()));
      BoolNode node;
      node.kind = BoolNode::Kind::kNot;
      node.left = left;
      bools_.push_back(node);
      return static_cast<int32_t>(bools_.size() - 1);
    }
    case Expr::Kind::kForAll: {
      MAD_ASSIGN_OR_RETURN(int32_t leaf, BuildForAllLeaf(expr));
      BoolNode node;
      node.kind = BoolNode::Kind::kForAll;
      node.leaf = leaf;
      bools_.push_back(node);
      return static_cast<int32_t>(bools_.size() - 1);
    }
    default: {
      MAD_ASSIGN_OR_RETURN(int32_t leaf, BuildLeaf(expr));
      BoolNode node;
      node.kind = BoolNode::Kind::kLeaf;
      node.leaf = leaf;
      bools_.push_back(node);
      return static_cast<int32_t>(bools_.size() - 1);
    }
  }
}

namespace {

/// Folds a finished leaf's loops into the predicate-wide bookkeeping.
void RecordLoops(const std::vector<uint32_t>& loop_nodes,
                 std::vector<size_t>* loop_node_set,
                 uint32_t* max_loop_depth) {
  *max_loop_depth =
      std::max(*max_loop_depth, static_cast<uint32_t>(loop_nodes.size()));
  for (uint32_t idx : loop_nodes) {
    auto it = std::lower_bound(loop_node_set->begin(), loop_node_set->end(),
                               static_cast<size_t>(idx));
    if (it == loop_node_set->end() || *it != idx) {
      loop_node_set->insert(it, idx);
    }
  }
}

}  // namespace

void CompiledPredicate::MaybeMarkFast(Leaf& leaf) const {
  if (leaf.loop_nodes.size() != 1 || leaf.code_end - leaf.code_begin != 3) {
    return;
  }
  const Instruction& i0 = code_[leaf.code_begin];
  const Instruction& i1 = code_[leaf.code_begin + 1];
  const Instruction& i2 = code_[leaf.code_begin + 2];
  if (i2.op != Op::kCompare) return;
  if (i0.op == Op::kPushAttr && i1.op == Op::kPushLiteral) {
    leaf.fast = true;
    leaf.fast_attr_on_left = true;
    leaf.fast_value_slot = i0.b;
    leaf.fast_literal = i1.a;
  } else if (i0.op == Op::kPushLiteral && i1.op == Op::kPushAttr) {
    leaf.fast = true;
    leaf.fast_attr_on_left = false;
    leaf.fast_value_slot = i1.b;
    leaf.fast_literal = i0.a;
  } else {
    return;
  }
  leaf.fast_op = static_cast<CompareOp>(i2.a);
}

Result<int32_t> CompiledPredicate::BuildLeaf(const Expr& expr) {
  // Binding loops in first-reference order — the same enumeration
  // EvalExistential performs, so witnesses are found (and errors surface)
  // in the same order.
  std::vector<std::string> labels;
  CollectQualifierLabels(expr, &labels);
  Leaf leaf;
  std::map<std::string, uint32_t> slots;
  for (const std::string& label : labels) {
    MAD_ASSIGN_OR_RETURN(size_t node_idx, md_->NodeIndex(label));
    slots[label] = static_cast<uint32_t>(leaf.loop_nodes.size());
    leaf.loop_nodes.push_back(static_cast<uint32_t>(node_idx));
  }
  leaf.code_begin = static_cast<uint32_t>(code_.size());
  MAD_RETURN_IF_ERROR(EmitValue(expr, slots));
  leaf.code_end = static_cast<uint32_t>(code_.size());
  MaybeMarkFast(leaf);
  RecordLoops(leaf.loop_nodes, &loop_node_set_, &max_loop_depth_);
  leaves_.push_back(std::move(leaf));
  return static_cast<int32_t>(leaves_.size() - 1);
}

Result<int32_t> CompiledPredicate::BuildForAllLeaf(const Expr& expr) {
  MAD_ASSIGN_OR_RETURN(size_t node_idx,
                       md_->ResolveQualifier(expr.qualifier()));
  Leaf leaf;
  leaf.loop_nodes.push_back(static_cast<uint32_t>(node_idx));
  std::map<std::string, uint32_t> slots;
  slots[expr.qualifier()] = 0;
  leaf.code_begin = static_cast<uint32_t>(code_.size());
  MAD_RETURN_IF_ERROR(EmitValue(*expr.left(), slots));
  leaf.code_end = static_cast<uint32_t>(code_.size());
  MaybeMarkFast(leaf);
  RecordLoops(leaf.loop_nodes, &loop_node_set_, &max_loop_depth_);
  leaves_.push_back(std::move(leaf));
  return static_cast<int32_t>(leaves_.size() - 1);
}

Status CompiledPredicate::EmitValue(
    const Expr& expr, const std::map<std::string, uint32_t>& slots) {
  switch (expr.kind()) {
    case Expr::Kind::kLiteral: {
      literals_.push_back(expr.literal());
      Instruction ins;
      ins.op = Op::kPushLiteral;
      ins.a = static_cast<uint32_t>(literals_.size() - 1);
      code_.push_back(ins);
      return Status::OK();
    }
    case Expr::Kind::kAttrRef: {
      auto slot_it = slots.find(expr.qualifier());
      if (slot_it == slots.end()) {
        return Status::Internal("attribute reference '" + expr.ToString() +
                                "' escapes its binding loops");
      }
      MAD_ASSIGN_OR_RETURN(size_t node_idx,
                           md_->NodeIndex(expr.qualifier()));
      MAD_ASSIGN_OR_RETURN(size_t value_slot,
                           schemas_[node_idx]->IndexOf(expr.attribute()));
      Instruction ins;
      ins.op = Op::kPushAttr;
      ins.a = slot_it->second;
      ins.b = static_cast<uint32_t>(value_slot);
      code_.push_back(ins);
      return Status::OK();
    }
    case Expr::Kind::kCount: {
      // COUNT(label) is a molecule-level constant (the interpreter
      // substitutes it before binding loops run); compiled, it reads the
      // group size directly.
      MAD_ASSIGN_OR_RETURN(size_t node_idx,
                           md_->ResolveQualifier(expr.qualifier()));
      Instruction ins;
      ins.op = Op::kPushCount;
      ins.a = static_cast<uint32_t>(node_idx);
      code_.push_back(ins);
      return Status::OK();
    }
    case Expr::Kind::kCompare: {
      MAD_RETURN_IF_ERROR(EmitValue(*expr.left(), slots));
      MAD_RETURN_IF_ERROR(EmitValue(*expr.right(), slots));
      Instruction ins;
      ins.op = Op::kCompare;
      ins.a = static_cast<uint32_t>(expr.compare_op());
      code_.push_back(ins);
      return Status::OK();
    }
    case Expr::Kind::kArith: {
      MAD_RETURN_IF_ERROR(EmitValue(*expr.left(), slots));
      MAD_RETURN_IF_ERROR(EmitValue(*expr.right(), slots));
      Instruction ins;
      ins.op = Op::kArith;
      ins.a = static_cast<uint32_t>(expr.arith_op());
      code_.push_back(ins);
      return Status::OK();
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      // Value-position connective (nested under a comparison): both sides
      // must be boolean, left short-circuits — exactly EvalValue's kAnd/kOr.
      MAD_RETURN_IF_ERROR(EmitValue(*expr.left(), slots));
      size_t jump_at = code_.size();
      Instruction jump;
      jump.op = expr.kind() == Expr::Kind::kAnd ? Op::kJumpIfFalse
                                                : Op::kJumpIfTrue;
      code_.push_back(jump);
      MAD_RETURN_IF_ERROR(EmitValue(*expr.right(), slots));
      Instruction require;
      require.op = Op::kRequireBool;
      code_.push_back(require);
      code_[jump_at].a = static_cast<uint32_t>(code_.size());
      return Status::OK();
    }
    case Expr::Kind::kNot: {
      MAD_RETURN_IF_ERROR(EmitValue(*expr.left(), slots));
      Instruction ins;
      ins.op = Op::kNot;
      code_.push_back(ins);
      return Status::OK();
    }
    case Expr::Kind::kForAll: {
      // FORALL below a comparison is an evaluation-time error in the
      // interpreter (EvalValue), raised per binding combination. Emit the
      // error at the same program point; the operand never evaluates.
      Instruction ins;
      ins.op = Op::kErrorForAll;
      code_.push_back(ins);
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression kind");
}

// ---- Evaluation -------------------------------------------------------------

void CompiledPredicate::PrepareScratch(Scratch& scratch) const {
  if (scratch.temps_.size() < code_.size()) {
    scratch.temps_.resize(code_.size());
  }
  if (scratch.bound_.size() < max_loop_depth_) {
    scratch.bound_.resize(max_loop_depth_);
  }
}

Result<bool> CompiledPredicate::Eval(const AtomSpan* groups,
                                     Scratch& scratch) const {
  PrepareScratch(scratch);
  return EvalBool(root_, groups, scratch);
}

Result<bool> CompiledPredicate::EvalMolecule(const Molecule& molecule,
                                             Scratch& scratch) const {
  if (molecule.node_count() != stores_.size()) {
    return Status::Internal(
        "molecule node count does not match the compiled description");
  }
  PrepareScratch(scratch);
  scratch.rows_.resize(stores_.size());
  scratch.spans_.resize(stores_.size());
  for (size_t i = 0; i < stores_.size(); ++i) {
    scratch.spans_[i].data = nullptr;
    scratch.spans_[i].size = molecule.AtomsOf(i).size();
  }
  // Dense rows only for looped nodes; a missing atom becomes a null row and
  // errors when (and only when) the binding loops reach it — the
  // interpreter's lazy Find() timing at the cost of one direct-mapped table
  // read per atom instead of one hash per binding iteration.
  for (size_t node_idx : loop_node_set_) {
    const std::vector<const Atom*>& table = row_tables_[node_idx];
    std::vector<const Atom*>& row = scratch.rows_[node_idx];
    row.clear();
    for (AtomId id : molecule.AtomsOf(node_idx)) {
      row.push_back(id.value < table.size() ? table[id.value] : nullptr);
    }
    scratch.spans_[node_idx].data = row.data();
  }
  return EvalBool(root_, scratch.spans_.data(), scratch);
}

Result<bool> CompiledPredicate::EvalBool(int32_t index, const AtomSpan* groups,
                                         Scratch& scratch) const {
  const BoolNode& node = bools_[index];
  switch (node.kind) {
    case BoolNode::Kind::kAnd: {
      MAD_ASSIGN_OR_RETURN(bool lhs, EvalBool(node.left, groups, scratch));
      if (!lhs) return false;
      return EvalBool(node.right, groups, scratch);
    }
    case BoolNode::Kind::kOr: {
      MAD_ASSIGN_OR_RETURN(bool lhs, EvalBool(node.left, groups, scratch));
      if (lhs) return true;
      return EvalBool(node.right, groups, scratch);
    }
    case BoolNode::Kind::kNot: {
      MAD_ASSIGN_OR_RETURN(bool operand,
                           EvalBool(node.left, groups, scratch));
      return !operand;
    }
    case BoolNode::Kind::kLeaf:
      return EvalLeafExistential(leaves_[node.leaf], groups, scratch);
    case BoolNode::Kind::kForAll:
      return EvalLeafForAll(leaves_[node.leaf], groups, scratch);
  }
  return Status::Internal("unknown boolean node kind");
}

Result<bool> CompiledPredicate::EvalLeafExistential(const Leaf& leaf,
                                                    const AtomSpan* groups,
                                                    Scratch& scratch) const {
  if (leaf.loop_nodes.empty()) return RunProgram(leaf, groups, scratch);
  // Single-loop leaves (the common shape: one attribute scan) skip the
  // generic recursion; fast leaves additionally skip the stack machine.
  if (leaf.loop_nodes.size() == 1) {
    const AtomSpan& span = groups[leaf.loop_nodes[0]];
    if (leaf.fast) {
      const Value& literal = literals_[leaf.fast_literal];
      for (size_t i = 0; i < span.size; ++i) {
        const Atom* atom = span.data[i];
        if (atom == nullptr) {
          return Status::Internal("molecule atom missing from store");
        }
        const Value& attr = atom->values[leaf.fast_value_slot];
        MAD_ASSIGN_OR_RETURN(
            bool hit, leaf.fast_attr_on_left
                          ? ApplyCompareBool(leaf.fast_op, attr, literal)
                          : ApplyCompareBool(leaf.fast_op, literal, attr));
        if (hit) return true;
      }
      return false;
    }
    for (size_t i = 0; i < span.size; ++i) {
      const Atom* atom = span.data[i];
      if (atom == nullptr) {
        return Status::Internal("molecule atom missing from store");
      }
      scratch.bound_[0] = atom;
      MAD_ASSIGN_OR_RETURN(bool hit, RunProgram(leaf, groups, scratch));
      if (hit) return true;
    }
    return false;
  }
  // Existential nested loops, outermost = first-referenced node; a failing
  // combination is just "no witness", an evaluation error propagates, an
  // empty group makes the leaf false.
  auto search = [&](auto&& self, size_t depth) -> Result<bool> {
    if (depth == leaf.loop_nodes.size()) {
      return RunProgram(leaf, groups, scratch);
    }
    const AtomSpan& span = groups[leaf.loop_nodes[depth]];
    for (size_t i = 0; i < span.size; ++i) {
      const Atom* atom = span.data[i];
      if (atom == nullptr) {
        return Status::Internal("molecule atom missing from store");
      }
      scratch.bound_[depth] = atom;
      MAD_ASSIGN_OR_RETURN(bool hit, self(self, depth + 1));
      if (hit) return true;
    }
    return false;
  };
  return search(search, 0);
}

Result<bool> CompiledPredicate::EvalLeafForAll(const Leaf& leaf,
                                               const AtomSpan* groups,
                                               Scratch& scratch) const {
  const AtomSpan& span = groups[leaf.loop_nodes[0]];
  if (leaf.fast) {
    const Value& literal = literals_[leaf.fast_literal];
    for (size_t i = 0; i < span.size; ++i) {
      const Atom* atom = span.data[i];
      if (atom == nullptr) {
        return Status::Internal("molecule atom missing from store");
      }
      const Value& attr = atom->values[leaf.fast_value_slot];
      MAD_ASSIGN_OR_RETURN(
          bool hit, leaf.fast_attr_on_left
                        ? ApplyCompareBool(leaf.fast_op, attr, literal)
                        : ApplyCompareBool(leaf.fast_op, literal, attr));
      if (!hit) return false;
    }
    return true;  // vacuously true on an empty group
  }
  for (size_t i = 0; i < span.size; ++i) {
    const Atom* atom = span.data[i];
    if (atom == nullptr) {
      return Status::Internal("molecule atom missing from store");
    }
    scratch.bound_[0] = atom;
    MAD_ASSIGN_OR_RETURN(bool hit, RunProgram(leaf, groups, scratch));
    if (!hit) return false;
  }
  return true;  // vacuously true on an empty group
}

Result<bool> CompiledPredicate::RunProgram(const Leaf& leaf,
                                           const AtomSpan* groups,
                                           Scratch& scratch) const {
  std::vector<const Value*>& stack = scratch.stack_;
  stack.clear();
  size_t ip = leaf.code_begin;
  while (ip < leaf.code_end) {
    const Instruction& ins = code_[ip];
    switch (ins.op) {
      case Op::kPushLiteral:
        stack.push_back(&literals_[ins.a]);
        ++ip;
        break;
      case Op::kPushAttr:
        stack.push_back(&scratch.bound_[ins.a]->values[ins.b]);
        ++ip;
        break;
      case Op::kPushCount:
        scratch.temps_[ip] =
            Value(static_cast<int64_t>(groups[ins.a].size));
        stack.push_back(&scratch.temps_[ip]);
        ++ip;
        break;
      case Op::kCompare: {
        const Value* rhs = stack.back();
        stack.pop_back();
        const Value* lhs = stack.back();
        stack.pop_back();
        MAD_ASSIGN_OR_RETURN(
            scratch.temps_[ip],
            ApplyCompare(static_cast<CompareOp>(ins.a), *lhs, *rhs));
        stack.push_back(&scratch.temps_[ip]);
        ++ip;
        break;
      }
      case Op::kArith: {
        const Value* rhs = stack.back();
        stack.pop_back();
        const Value* lhs = stack.back();
        stack.pop_back();
        MAD_ASSIGN_OR_RETURN(
            scratch.temps_[ip],
            ApplyArith(static_cast<ArithOp>(ins.a), *lhs, *rhs));
        stack.push_back(&scratch.temps_[ip]);
        ++ip;
        break;
      }
      case Op::kNot: {
        const Value* operand = stack.back();
        stack.pop_back();
        MAD_ASSIGN_OR_RETURN(bool b, RequireBool(*operand));
        scratch.temps_[ip] = Value(!b);
        stack.push_back(&scratch.temps_[ip]);
        ++ip;
        break;
      }
      case Op::kJumpIfFalse: {
        MAD_ASSIGN_OR_RETURN(bool b, RequireBool(*stack.back()));
        if (!b) {
          ip = ins.a;  // the false value stays as the connective's result
        } else {
          stack.pop_back();
          ++ip;
        }
        break;
      }
      case Op::kJumpIfTrue: {
        MAD_ASSIGN_OR_RETURN(bool b, RequireBool(*stack.back()));
        if (b) {
          ip = ins.a;  // the true value stays as the connective's result
        } else {
          stack.pop_back();
          ++ip;
        }
        break;
      }
      case Op::kRequireBool: {
        MAD_ASSIGN_OR_RETURN(bool b, RequireBool(*stack.back()));
        (void)b;
        ++ip;
        break;
      }
      case Op::kErrorForAll:
        return Status::InvalidArgument(
            "FORALL is only valid in molecule-scope qualification");
    }
  }
  // The predicate-position contract of EvalPredicate.
  return RequireBool(*stack.back());
}

std::string CompiledPredicate::Summary() const {
  std::string out = std::to_string(code_.size()) + " ops, " +
                    std::to_string(literals_.size()) + " literals";
  if (loop_node_set_.empty()) {
    out += ", no binding loops";
    return out;
  }
  out += ", loops over {";
  for (size_t i = 0; i < loop_node_set_.size(); ++i) {
    if (i > 0) out += ", ";
    out += md_->nodes()[loop_node_set_[i]].label;
  }
  out += "}";
  return out;
}

}  // namespace expr
}  // namespace mad
