#ifndef MAD_EXPR_COMPILE_H_
#define MAD_EXPR_COMPILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/atom.h"
#include "core/schema.h"
#include "core/value.h"
#include "expr/expr.h"
#include "molecule/description.h"
#include "molecule/molecule.h"
#include "storage/atom_store.h"
#include "storage/database.h"
#include "util/result.h"

namespace mad {
namespace expr {

/// A qualification formula compiled once against a molecule description
/// into a flat postfix program: attribute references become pre-resolved
/// (loop slot, value slot) pairs, literals live in a pool, COUNT(label) is
/// an opcode reading a group size, and the existential / universal binding
/// loops of molecule-scope evaluation (Def. 10) run over dense `const
/// Atom*` rows. Per-molecule evaluation does no shared_ptr tree walks, no
/// string lookups, and no SubstituteCounts expression rebuilds.
///
/// Semantics contract: bit-for-bit identical to the tree interpreter
/// (MoleculeQualifier::Matches) — same verdicts, same error messages, same
/// error timing. The interpreter stays authoritative; differential tests
/// hold this class to it. The shared pieces (ApplyCompare / ApplyArith /
/// RequireBool in expr/eval.h, ResolveQualification / CollectQualifierLabels
/// in molecule/qualification.h) make the equivalence structural rather than
/// coincidental.
///
/// Lifetime: a compiled predicate borrows the database's atom stores and
/// schemas. It stays valid only while the database is not mutated — the
/// same contract as the derivation engine's frozen snapshot. Evaluation is
/// const and thread-safe provided each thread uses its own Scratch.
class CompiledPredicate {
 public:
  /// Dense view of one description node's atoms. `data` may be null when
  /// `size` is 0, and also for nodes the program only COUNTs (the binding
  /// loops never touch them).
  struct AtomSpan {
    const Atom* const* data = nullptr;
    size_t size = 0;
  };

  /// Reusable per-thread evaluation state (operand stack, temporaries,
  /// bound-atom slots, dense-row buffers). Grown on first use, then
  /// allocation-free across evaluations.
  class Scratch {
   private:
    friend class CompiledPredicate;
    std::vector<const Value*> stack_;
    std::vector<Value> temps_;
    std::vector<const Atom*> bound_;
    std::vector<std::vector<const Atom*>> rows_;
    std::vector<AtomSpan> spans_;
  };

  /// Resolves `predicate` against `md` (identical acceptance to
  /// MoleculeQualifier::Create) and compiles it. The database and the
  /// description must outlive the compiled predicate.
  static Result<CompiledPredicate> Compile(const Database& db,
                                           const MoleculeDescription& md,
                                           const ExprPtr& predicate);

  /// Evaluates over `groups`, an array of md.nodes().size() spans (one per
  /// description node, in node order). A null row pointer inside a span
  /// reproduces the interpreter's "molecule atom missing from store" error
  /// at the moment that atom would be bound.
  Result<bool> Eval(const AtomSpan* groups, Scratch& scratch) const;

  /// Evaluates over a materialized molecule, resolving atom ids through the
  /// stores captured at compile time into dense rows held in `scratch`.
  Result<bool> EvalMolecule(const Molecule& molecule, Scratch& scratch) const;

  /// The predicate with every attribute reference rewritten to
  /// label-qualified form (shared vocabulary with EXPLAIN and the
  /// interpreter oracle).
  const ExprPtr& resolved_predicate() const { return resolved_; }

  /// Description node indices the binding loops iterate (sorted, unique).
  const std::vector<size_t>& loop_nodes() const { return loop_node_set_; }

  size_t instruction_count() const { return code_.size(); }
  size_t literal_count() const { return literals_.size(); }
  size_t node_count() const { return stores_.size(); }

  /// One-line program summary for EXPLAIN, e.g.
  /// "7 ops, 2 literals, loops over {point}".
  std::string Summary() const;

 private:
  enum class Op : uint8_t {
    kPushLiteral,  // a = literal pool index
    kPushAttr,     // a = binding loop slot, b = attribute value slot
    kPushCount,    // a = description node index; pushes the group size
    kCompare,      // a = CompareOp; pops rhs, lhs
    kArith,        // a = ArithOp; pops rhs, lhs
    kNot,          // pops one boolean, pushes its negation
    // Short-circuit connectives in *value* position (nested under a
    // comparison). The top of stack must be boolean (checked, matching
    // EvalPredicate); on a taken jump the value stays as the result,
    // otherwise it is popped and the other operand runs.
    kJumpIfFalse,  // a = absolute jump target
    kJumpIfTrue,   // a = absolute jump target
    kRequireBool,  // validates top of stack is boolean, leaves it in place
    // FORALL in value position is an evaluation-time error in the
    // interpreter; this opcode reproduces it at the same program point.
    kErrorForAll,
  };

  struct Instruction {
    Op op;
    uint32_t a = 0;
    uint32_t b = 0;
  };

  /// One existential comparison (or FORALL) with its binding loops: the
  /// program slice [code_begin, code_end) runs once per binding
  /// combination; `loop_nodes` lists the looped description nodes in
  /// first-reference order (outermost first). A FORALL leaf loops over
  /// exactly its quantified node, conjunctively.
  struct Leaf {
    uint32_t code_begin = 0;
    uint32_t code_end = 0;
    std::vector<uint32_t> loop_nodes;
    /// Fast path, detected at compile time: the leaf is a single
    /// `attr ⊕ literal` comparison over one loop node, so evaluation calls
    /// ApplyCompareBool directly per binding and skips the stack machine.
    bool fast = false;
    bool fast_attr_on_left = true;
    uint32_t fast_value_slot = 0;
    uint32_t fast_literal = 0;
    CompareOp fast_op = CompareOp::kEq;
  };

  /// The boolean skeleton EvalBoolean walks: AND/OR/NOT split recursively
  /// (short-circuiting), everything else is an existential or FORALL leaf.
  struct BoolNode {
    enum class Kind : uint8_t { kAnd, kOr, kNot, kLeaf, kForAll };
    Kind kind;
    int32_t left = -1;   // bools_ index (kAnd / kOr / kNot)
    int32_t right = -1;  // bools_ index (kAnd / kOr)
    int32_t leaf = -1;   // leaves_ index (kLeaf / kForAll)
  };

  CompiledPredicate() = default;

  // Build helpers (compile time).
  Result<int32_t> BuildBool(const Expr& expr);
  Result<int32_t> BuildLeaf(const Expr& expr);
  Result<int32_t> BuildForAllLeaf(const Expr& expr);
  void MaybeMarkFast(Leaf& leaf) const;
  Status EmitValue(const Expr& expr,
                   const std::map<std::string, uint32_t>& slots);

  // Evaluation helpers (run time).
  void PrepareScratch(Scratch& scratch) const;
  Result<bool> EvalBool(int32_t index, const AtomSpan* groups,
                        Scratch& scratch) const;
  Result<bool> EvalLeafExistential(const Leaf& leaf, const AtomSpan* groups,
                                   Scratch& scratch) const;
  Result<bool> EvalLeafForAll(const Leaf& leaf, const AtomSpan* groups,
                              Scratch& scratch) const;
  Result<bool> RunProgram(const Leaf& leaf, const AtomSpan* groups,
                          Scratch& scratch) const;

  const Database* db_ = nullptr;
  const MoleculeDescription* md_ = nullptr;
  ExprPtr resolved_;
  std::vector<Instruction> code_;
  std::vector<Value> literals_;
  std::vector<Leaf> leaves_;
  std::vector<BoolNode> bools_;
  int32_t root_ = -1;
  /// Per description node, captured at compile time (node order).
  std::vector<const AtomStore*> stores_;
  std::vector<const Schema*> schemas_;
  /// Per *looped* node: direct-mapped id.value -> atom row (nullptr =
  /// absent), built once at compile time so EvalMolecule resolves each
  /// molecule atom with one array read instead of one hash per atom. Ids
  /// are dense database-assigned counters, so the table is at most
  /// max-id + 1 pointers. Same borrow-until-mutation contract as `stores_`.
  std::vector<std::vector<const Atom*>> row_tables_;
  std::vector<size_t> loop_node_set_;
  uint32_t max_loop_depth_ = 0;
};

}  // namespace expr
}  // namespace mad

#endif  // MAD_EXPR_COMPILE_H_
