#ifndef MAD_EXPR_EVAL_H_
#define MAD_EXPR_EVAL_H_

#include <map>
#include <string>

#include "core/atom.h"
#include "core/schema.h"
#include "expr/expr.h"
#include "util/result.h"

namespace mad {
namespace expr {

/// One bound atom visible to the evaluator under a qualifier name.
struct AtomBinding {
  const Schema* schema = nullptr;
  const Atom* atom = nullptr;
};

/// The set of atoms an expression is evaluated against. In atom scope (the
/// atom-type restriction of Def. 4) exactly one binding exists; in molecule
/// scope the molecule layer binds one atom per referenced atom type.
class BindingSet {
 public:
  void Bind(const std::string& qualifier, const Schema* schema,
            const Atom* atom) {
    bindings_[qualifier] = AtomBinding{schema, atom};
  }

  /// Resolves `qualifier.attribute`; an empty qualifier searches all
  /// bindings and fails if the attribute name is absent or ambiguous.
  Result<Value> Resolve(const std::string& qualifier,
                        const std::string& attribute) const;

  const std::map<std::string, AtomBinding>& bindings() const {
    return bindings_;
  }

 private:
  std::map<std::string, AtomBinding> bindings_;
};

/// Evaluates a value expression (literal / attribute / arithmetic /
/// comparison / boolean connective) under `bindings`. Comparisons and
/// connectives yield BOOL values.
Result<Value> EvalValue(const Expr& expr, const BindingSet& bindings);

/// Evaluates `expr` as a predicate: like EvalValue but requires a BOOL
/// result (the paper's qual(restr, a)).
Result<bool> EvalPredicate(const Expr& expr, const BindingSet& bindings);

/// Atom-scope convenience: binds a single atom under `type_name` and
/// evaluates (supports both `attr` and `type_name.attr` references).
Result<bool> EvalOnAtom(const Expr& expr, const std::string& type_name,
                        const Schema& schema, const Atom& atom);

/// Static check that every attribute reference in `expr` resolves against
/// `schema` when bound under `type_name`, with type-compatible comparisons
/// left to evaluation. Used by σ before scanning.
Status ValidateAgainstSchema(const Expr& expr, const std::string& type_name,
                             const Schema& schema);

}  // namespace expr
}  // namespace mad

#endif  // MAD_EXPR_EVAL_H_
