#ifndef MAD_EXPR_EVAL_H_
#define MAD_EXPR_EVAL_H_

#include <map>
#include <string>

#include "core/atom.h"
#include "core/schema.h"
#include "expr/expr.h"
#include "util/result.h"

namespace mad {
namespace expr {

/// One bound atom visible to the evaluator under a qualifier name.
struct AtomBinding {
  const Schema* schema = nullptr;
  const Atom* atom = nullptr;
};

/// The set of atoms an expression is evaluated against. In atom scope (the
/// atom-type restriction of Def. 4) exactly one binding exists; in molecule
/// scope the molecule layer binds one atom per referenced atom type.
class BindingSet {
 public:
  void Bind(const std::string& qualifier, const Schema* schema,
            const Atom* atom) {
    bindings_[qualifier] = AtomBinding{schema, atom};
  }

  /// Resolves `qualifier.attribute`; an empty qualifier searches all
  /// bindings and fails if the attribute name is absent or ambiguous.
  Result<Value> Resolve(const std::string& qualifier,
                        const std::string& attribute) const;

  const std::map<std::string, AtomBinding>& bindings() const {
    return bindings_;
  }

 private:
  std::map<std::string, AtomBinding> bindings_;
};

/// Applies a comparison operator to two already-evaluated values, with the
/// type-compatibility guard of qualification formulas (equal types, numeric
/// pairs, and nulls compare; everything else is an error). Shared between
/// the tree interpreter below and the compiled runtime (expr/compile.h) so
/// both produce bit-identical results and error messages.
Result<Value> ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs);

/// ApplyCompare without the Value box: same type guard, same error text,
/// bool verdict. The compiled runtime's attr-vs-literal fast path calls
/// this once per binding; ApplyCompare itself is a thin wrapper over it, so
/// the two can never disagree.
Result<bool> ApplyCompareBool(CompareOp op, const Value& lhs,
                              const Value& rhs);

/// Applies an arithmetic operator to two already-evaluated values (int64
/// fast path, double otherwise, division by zero rejected). Shared with the
/// compiled runtime.
Result<Value> ApplyArith(ArithOp op, const Value& lhs, const Value& rhs);

/// Requires `v` to be a BOOL (the predicate-position contract); shared with
/// the compiled runtime so the error text cannot drift.
Result<bool> RequireBool(const Value& v);

/// Evaluates a value expression (literal / attribute / arithmetic /
/// comparison / boolean connective) under `bindings`. Comparisons and
/// connectives yield BOOL values.
Result<Value> EvalValue(const Expr& expr, const BindingSet& bindings);

/// Evaluates `expr` as a predicate: like EvalValue but requires a BOOL
/// result (the paper's qual(restr, a)).
Result<bool> EvalPredicate(const Expr& expr, const BindingSet& bindings);

/// Atom-scope convenience: binds a single atom under `type_name` and
/// evaluates (supports both `attr` and `type_name.attr` references).
Result<bool> EvalOnAtom(const Expr& expr, const std::string& type_name,
                        const Schema& schema, const Atom& atom);

/// Static check that every attribute reference in `expr` resolves against
/// `schema` when bound under `type_name`, with type-compatible comparisons
/// left to evaluation. Used by σ before scanning.
Status ValidateAgainstSchema(const Expr& expr, const std::string& type_name,
                             const Schema& schema);

}  // namespace expr
}  // namespace mad

#endif  // MAD_EXPR_EVAL_H_
