#ifndef MAD_EXPR_EXPR_H_
#define MAD_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/value.h"

namespace mad {
namespace expr {

/// Comparison operators of qualification formulas.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Arithmetic operators usable inside qualification formulas.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);

class Expr;
/// Expressions are immutable and shared; compose freely.
using ExprPtr = std::shared_ptr<const Expr>;

/// A node of a qualification formula (the paper's restr(ad) / restr(md)).
///
/// Grammar (abstract):
///   predicate  := comparison | predicate AND predicate
///               | predicate OR predicate | NOT predicate | literal-bool
///   comparison := value (= | != | < | <= | > | >=) value
///   value      := literal | attribute-ref | value (+|-|*|/) value
///
/// Attribute references are optionally qualified with an atom-type name:
/// `hectare` (atom scope) or `point.name` (molecule scope, Ch. 4 example).
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kAttrRef,
    kCompare,
    kArith,
    kAnd,
    kOr,
    kNot,
    /// COUNT(<node label>) — the number of atoms of one description node
    /// in the molecule under qualification. Only meaningful in molecule
    /// scope; the plain evaluator rejects it.
    kCount,
    /// FORALL <node label> (predicate) — true iff every atom of the node
    /// satisfies the predicate (vacuously true on empty groups). The dual
    /// of the default existential comparison semantics; molecule scope
    /// only.
    kForAll,
  };

  Kind kind() const { return kind_; }

  // kLiteral
  const Value& literal() const { return literal_; }
  // kAttrRef (qualifier empty for unqualified references); kCount reuses
  // qualifier() for the counted node label.
  const std::string& qualifier() const { return qualifier_; }
  const std::string& attribute() const { return attribute_; }
  // kCompare
  CompareOp compare_op() const { return compare_op_; }
  // kArith
  ArithOp arith_op() const { return arith_op_; }
  // kCompare / kArith / kAnd / kOr: left(), right(); kNot: left() only.
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  /// Display form, e.g. "(point.name = 'pn')".
  std::string ToString() const;

  /// Collects every attribute reference in the tree (pre-order).
  void CollectAttrRefs(std::vector<const Expr*>* out) const;

  /// True iff this node can produce a boolean (predicate position).
  bool IsPredicate() const;

  // Factories (use the free builder functions below for brevity).
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeAttrRef(std::string qualifier, std::string attribute);
  static ExprPtr MakeCount(std::string qualifier);
  static ExprPtr MakeForAll(std::string qualifier, ExprPtr predicate);
  static ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeNot(ExprPtr operand);

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  Value literal_;
  std::string qualifier_;
  std::string attribute_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  ExprPtr left_;
  ExprPtr right_;
};

// ---- Terse builders ---------------------------------------------------------

/// Literal value.
ExprPtr Lit(Value v);
inline ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
inline ExprPtr Lit(double v) { return Lit(Value(v)); }
inline ExprPtr Lit(const char* v) { return Lit(Value(v)); }
inline ExprPtr Lit(bool v) { return Lit(Value(v)); }

/// Unqualified attribute reference.
ExprPtr Attr(std::string attribute);
/// Qualified attribute reference, e.g. Attr("point", "name").
ExprPtr Attr(std::string qualifier, std::string attribute);

/// Component count of a description node, e.g. Count("edge").
ExprPtr Count(std::string qualifier);

/// Universal quantification over a node's atoms, e.g.
/// ForAll("edge", Gt(Attr("edge", "length"), Lit(0))).
ExprPtr ForAll(std::string qualifier, ExprPtr predicate);

ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);

ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);

ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);

}  // namespace expr
}  // namespace mad

#endif  // MAD_EXPR_EXPR_H_
