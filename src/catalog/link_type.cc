#include "catalog/link_type.h"

#include "util/string_util.h"

namespace mad {

const char* LinkCardinalityName(LinkCardinality cardinality) {
  switch (cardinality) {
    case LinkCardinality::kOneToOne:
      return "1:1";
    case LinkCardinality::kOneToMany:
      return "1:n";
    case LinkCardinality::kManyToOne:
      return "n:1";
    case LinkCardinality::kManyToMany:
      return "n:m";
  }
  return "n:m";
}

bool ParseLinkCardinality(std::string_view text, LinkCardinality* out) {
  auto is_one = [](char c) { return c == '1'; };
  auto is_many = [](char c) {
    return c == 'n' || c == 'N' || c == 'm' || c == 'M' || c == '*';
  };
  if (text.size() != 3 || text[1] != ':') return false;
  char a = text[0];
  char b = text[2];
  if (is_one(a) && is_one(b)) {
    *out = LinkCardinality::kOneToOne;
  } else if (is_one(a) && is_many(b)) {
    *out = LinkCardinality::kOneToMany;
  } else if (is_many(a) && is_one(b)) {
    *out = LinkCardinality::kManyToOne;
  } else if (is_many(a) && is_many(b)) {
    *out = LinkCardinality::kManyToMany;
  } else {
    return false;
  }
  return true;
}

}  // namespace mad
