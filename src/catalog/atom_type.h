#ifndef MAD_CATALOG_ATOM_TYPE_H_
#define MAD_CATALOG_ATOM_TYPE_H_

#include <string>
#include <utility>

#include "core/schema.h"
#include "storage/atom_store.h"

namespace mad {

/// An atom type (Def. 1): the triple <aname, ad, av> — name, description
/// (Schema), and occurrence (AtomStore). Owned by a Database; the Database
/// guarantees name uniqueness (atyp is a function).
class AtomType {
 public:
  AtomType(std::string name, Schema description)
      : name_(std::move(name)), description_(std::move(description)) {}

  AtomType(const AtomType&) = delete;
  AtomType& operator=(const AtomType&) = delete;

  /// nam(at)
  const std::string& name() const { return name_; }
  /// des(at)
  const Schema& description() const { return description_; }
  /// ext(at)
  const AtomStore& occurrence() const { return occurrence_; }
  AtomStore& mutable_occurrence() { return occurrence_; }

 private:
  std::string name_;
  Schema description_;
  AtomStore occurrence_;
};

}  // namespace mad

#endif  // MAD_CATALOG_ATOM_TYPE_H_
