#ifndef MAD_CATALOG_LINK_TYPE_H_
#define MAD_CATALOG_LINK_TYPE_H_

#include <string>
#include <string_view>
#include <utility>

#include "storage/link_store.h"

namespace mad {

/// Cardinality restriction of an extended link-type definition (the Ch. 3.1
/// remark: "it is even possible to control cardinality restrictions
/// specified in an extended link-type definition"). The first symbol bounds
/// how many second-role partners a first-role atom may have; the second
/// symbol the converse.
enum class LinkCardinality {
  kOneToOne,    ///< 1:1 — at most one partner on either side
  kOneToMany,   ///< 1:n — a second-role atom has at most one first partner
  kManyToOne,   ///< n:1 — a first-role atom has at most one second partner
  kManyToMany,  ///< n:m — unrestricted (the default, Def. 2)
};

const char* LinkCardinalityName(LinkCardinality cardinality);

/// Parses "1:1", "1:n", "n:1", "n:m" (case-insensitive, 'm'/'n'
/// interchangeable on the many side); kManyToMany on anything else is an
/// error signalled by the bool.
bool ParseLinkCardinality(std::string_view text, LinkCardinality* out);

/// A link type (Def. 2): the triple <lname, ld, lv> — name, description
/// (the two connected atom-type names), and occurrence (LinkStore).
///
/// Link types are the MAD model's replacement for relational foreign keys:
/// relationships are explicit, symmetric (traversable from either end), and
/// referential integrity is enforced structurally by the Database. Several
/// link types may connect the same pair of atom types, and a link type may
/// be reflexive (both ends the same atom type).
class LinkType {
 public:
  LinkType(std::string name, std::string first_atom_type,
           std::string second_atom_type,
           LinkCardinality cardinality = LinkCardinality::kManyToMany)
      : name_(std::move(name)),
        first_atom_type_(std::move(first_atom_type)),
        second_atom_type_(std::move(second_atom_type)),
        cardinality_(cardinality) {}

  LinkType(const LinkType&) = delete;
  LinkType& operator=(const LinkType&) = delete;

  /// nam(lt)
  const std::string& name() const { return name_; }
  /// des(lt) — the atom type of the first link role.
  const std::string& first_atom_type() const { return first_atom_type_; }
  /// des(lt) — the atom type of the second link role.
  const std::string& second_atom_type() const { return second_atom_type_; }
  bool reflexive() const { return first_atom_type_ == second_atom_type_; }
  LinkCardinality cardinality() const { return cardinality_; }

  /// True iff `aname` is one of the connected atom types.
  bool Touches(const std::string& aname) const {
    return first_atom_type_ == aname || second_atom_type_ == aname;
  }

  /// ext(lt)
  const LinkStore& occurrence() const { return occurrence_; }
  LinkStore& mutable_occurrence() { return occurrence_; }

 private:
  std::string name_;
  std::string first_atom_type_;
  std::string second_atom_type_;
  LinkCardinality cardinality_ = LinkCardinality::kManyToMany;
  LinkStore occurrence_;
};

}  // namespace mad

#endif  // MAD_CATALOG_LINK_TYPE_H_
