#include "storage/binary_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "molecule/derivation.h"
#include "storage/serializer.h"
#include "workload/bom.h"
#include "workload/geo.h"

namespace mad {
namespace {

TEST(ByteCodecTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefull);
  w.PutVarint(0);
  w.PutVarint(300);
  w.PutVarint(std::numeric_limits<uint64_t>::max());
  w.PutZigzag(-1);
  w.PutZigzag(std::numeric_limits<int64_t>::min());
  w.PutString("hello");
  w.PutString("");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetFixed32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetFixed64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.GetVarint().value(), 0u);
  EXPECT_EQ(r.GetVarint().value(), 300u);
  EXPECT_EQ(r.GetVarint().value(), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(r.GetZigzag().value(), -1);
  EXPECT_EQ(r.GetZigzag().value(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodecTest, ReaderIsBoundsChecked) {
  ByteReader empty("");
  EXPECT_FALSE(empty.GetU8().ok());
  EXPECT_FALSE(empty.GetFixed32().ok());
  EXPECT_FALSE(empty.GetVarint().ok());
  EXPECT_FALSE(empty.GetString().ok());

  // A string whose declared length exceeds the remaining input.
  ByteWriter w;
  w.PutVarint(100);
  std::string lying = w.bytes() + "short";
  ByteReader r(lying);
  EXPECT_FALSE(r.GetString().ok()) << "length prefix lies about the payload";

  // An unterminated varint.
  std::string endless(11, '\x80');
  ByteReader v(endless);
  EXPECT_FALSE(v.GetVarint().ok());
}

TEST(BinaryCodecTest, RoundTripPreservesEverything) {
  Database db("GEO_DB");
  auto ids = workload::BuildFigure4GeoDatabase(db);
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(db.CreateIndex("state", "name").ok());

  auto bytes = SerializeDatabaseBinary(db);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto restored = DeserializeDatabaseBinary(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ((*restored)->name(), "GEO_DB");
  EXPECT_EQ((*restored)->atom_type_count(), db.atom_type_count());
  EXPECT_EQ((*restored)->link_type_count(), db.link_type_count());
  EXPECT_EQ((*restored)->total_atom_count(), db.total_atom_count());
  EXPECT_EQ((*restored)->total_link_count(), db.total_link_count());
  EXPECT_EQ((*restored)->last_atom_id(), db.last_atom_id());
  auto v = (*restored)->GetAttribute("state", ids->states["SP"], "hectare");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 1000);
  EXPECT_NE((*restored)->FindIndex("state", "name"), nullptr);
  EXPECT_TRUE((*restored)->CheckConsistency().ok());
}

TEST(BinaryCodecTest, ReserializationIsBitIdentical) {
  Database db("BOM");
  ASSERT_TRUE(workload::BuildCarBom(db).ok());
  auto bytes = SerializeDatabaseBinary(db);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeDatabaseBinary(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto again = SerializeDatabaseBinary(**restored);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bytes, *again) << "deterministic serialization contract";
}

TEST(BinaryCodecTest, AtomIdCounterSurvivesDeletionOfHighestId) {
  Database db("ids");
  ASSERT_TRUE(db.DefineAtomType("t", Schema()).ok());
  auto a = db.InsertAtom("t", {});
  auto b = db.InsertAtom("t", {});
  ASSERT_TRUE(a.ok() && b.ok());
  // Delete the atom carrying the highest-ever id.
  ASSERT_TRUE(db.DeleteAtom("t", *b).ok());

  auto bytes = SerializeDatabaseBinary(db);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeDatabaseBinary(*bytes);
  ASSERT_TRUE(restored.ok());
  // A fresh insert must not resurrect the deleted id.
  auto fresh = (*restored)->InsertAtom("t", {});
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, *b);
  EXPECT_GT(fresh->value, b->value);
}

TEST(BinaryCodecTest, NonFiniteDoublesAreBitExact) {
  Database db("doubles");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("d", DataType::kDouble).ok());
  ASSERT_TRUE(db.DefineAtomType("t", std::move(s)).ok());
  const double cases[] = {std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(), -0.0,
                          0.1};
  for (double d : cases) ASSERT_TRUE(db.InsertAtom("t", {Value(d)}).ok());

  auto bytes = SerializeDatabaseBinary(db);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeDatabaseBinary(*bytes);
  ASSERT_TRUE(restored.ok());
  const auto& atoms = (*(*restored)->GetAtomType("t"))->occurrence().atoms();
  ASSERT_EQ(atoms.size(), std::size(cases));
  for (size_t i = 0; i < std::size(cases); ++i) {
    double got = atoms[i].values[0].AsDouble();
    if (std::isnan(cases[i])) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_EQ(got, cases[i]);
      EXPECT_EQ(std::signbit(got), std::signbit(cases[i]));
    }
  }
}

TEST(BinaryCodecTest, RejectsCorruptInput) {
  Database db("GEO_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  auto bytes = SerializeDatabaseBinary(db);
  ASSERT_TRUE(bytes.ok());

  EXPECT_FALSE(DeserializeDatabaseBinary("").ok());
  EXPECT_FALSE(DeserializeDatabaseBinary("MADX").ok());
  EXPECT_FALSE(DeserializeDatabaseBinary(bytes->substr(0, 4)).ok());

  // Every truncation is detected.
  for (size_t cut = 0; cut < bytes->size(); ++cut) {
    auto r = DeserializeDatabaseBinary(bytes->substr(0, cut));
    EXPECT_FALSE(r.ok()) << "truncation at " << cut << " must be detected";
  }
  // Trailing garbage is detected.
  EXPECT_FALSE(DeserializeDatabaseBinary(*bytes + "x").ok());
  // A flipped payload byte trips the section CRC.
  std::string flipped = *bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  auto r = DeserializeDatabaseBinary(flipped);
  EXPECT_FALSE(r.ok());
}

TEST(BinaryCodecTest, CloneDatabaseDerivesIdenticalMolecules) {
  Database db("GEO_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  auto md = MoleculeDescription::CreateFromTypes(
      db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md.ok());
  auto original = DeriveMolecules(db, *md);
  ASSERT_TRUE(original.ok());

  auto clone = CloneDatabase(db);
  ASSERT_TRUE(clone.ok()) << clone.status();
  EXPECT_EQ((*clone)->last_atom_id(), db.last_atom_id());
  auto md2 = MoleculeDescription::CreateFromTypes(
      **clone, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md2.ok());
  auto rederived = DeriveMolecules(**clone, *md2);
  ASSERT_TRUE(rederived.ok());
  ASSERT_EQ(original->size(), rederived->size());
  for (size_t i = 0; i < original->size(); ++i) {
    EXPECT_EQ((*original)[i].CanonicalKey(), (*rederived)[i].CanonicalKey());
  }
}

}  // namespace
}  // namespace mad
