#include "text/printer.h"

#include <gtest/gtest.h>

#include "er/er_model.h"
#include "molecule/derivation.h"
#include "workload/bom.h"
#include "workload/geo.h"

namespace mad {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
};

TEST_F(PrinterTest, FormatAtom) {
  EXPECT_EQ(text::FormatAtom(db_, "state", ids_.states["SP"]),
            "<'SP', 1000>");
  EXPECT_EQ(text::FormatAtom(db_, "state", AtomId{99999}), "<#99999?>");
  EXPECT_EQ(text::FormatAtom(db_, "bogus", AtomId{1}), "<?>");
}

TEST_F(PrinterTest, DatabaseSpecMatchesFigure4Shape) {
  std::string spec = text::FormatDatabaseSpec(db_, 2);
  // Every atom/link type appears as a formal triple, Fig. 4 style.
  EXPECT_NE(spec.find("state = <state, {name: STRING, hectare: INT64}, {"),
            std::string::npos);
  EXPECT_NE(spec.find("river-net = <river-net, {river, net}, {"),
            std::string::npos);
  // Truncation marker.
  EXPECT_NE(spec.find(", ...}"), std::string::npos);
  // The closing database line.
  EXPECT_NE(spec.find("GEO_DB = <{state, city, river, area, net, edge, "
                      "point}, {state-area, city-point, river-net, "
                      "area-edge, net-edge, edge-point}> in DB*"),
            std::string::npos);
}

TEST_F(PrinterTest, MadDiagramListsReflexivity) {
  Database bom("BOM");
  ASSERT_TRUE(workload::BuildCarBom(bom).ok());
  std::string diagram = text::FormatMadDiagram(bom);
  EXPECT_NE(diagram.find("part ---composition--- part  (reflexive)"),
            std::string::npos);
}

TEST_F(PrinterTest, ErDiagramShowsCardinalities) {
  std::string diagram = text::FormatErDiagram(er::Figure1ErSchema());
  EXPECT_NE(diagram.find("area <area-edge n:m> edge"), std::string::npos);
  EXPECT_NE(diagram.find("state <state-area 1:1> area"), std::string::npos);
}

TEST_F(PrinterTest, MoleculeFormatting) {
  auto md = MoleculeDescription::CreateFromTypes(
      db_, {"state", "area"}, {{"state-area", "state", "area", false}});
  ASSERT_TRUE(md.ok());
  auto m = DeriveMoleculeFor(db_, *md, ids_.states["SP"]);
  ASSERT_TRUE(m.ok());
  std::string molecule_text = text::FormatMolecule(db_, *md, *m);
  EXPECT_NE(molecule_text.find("molecule(root=<'SP', 1000>)"),
            std::string::npos);
  EXPECT_NE(molecule_text.find("area: {<'a7', 1000>}"), std::string::npos);

  auto mt = DefineMoleculeType(db_, "pairs", *md);
  ASSERT_TRUE(mt.ok());
  std::string type_text = text::FormatMoleculeType(db_, *mt, 2);
  EXPECT_NE(type_text.find("molecule type 'pairs'"), std::string::npos);
  EXPECT_NE(type_text.find("structure: state-area"), std::string::npos);
  EXPECT_NE(type_text.find("molecule set (10 molecules)"), std::string::npos);
  EXPECT_NE(type_text.find("..."), std::string::npos);  // truncated at 2
}

TEST_F(PrinterTest, RecursiveMoleculeFormatting) {
  Database bom("BOM");
  auto ids = workload::BuildCarBom(bom);
  ASSERT_TRUE(ids.ok());
  RecursiveDescription rd{"part", "composition", LinkDirection::kForward, -1};
  auto m = DeriveRecursiveMoleculeFor(bom, rd, (*ids)["car"]);
  ASSERT_TRUE(m.ok());
  std::string recursive_text = text::FormatRecursiveMolecule(bom, rd, *m);
  EXPECT_NE(recursive_text.find("part-[composition*]"), std::string::npos);
  EXPECT_NE(recursive_text.find("level 0: {<'car', 20000>}"),
            std::string::npos);
  EXPECT_NE(recursive_text.find("level 2:"), std::string::npos);

  RecursiveDescription up{"part", "composition", LinkDirection::kBackward, -1};
  auto bolt = DeriveRecursiveMoleculeFor(bom, up, (*ids)["bolt"]);
  ASSERT_TRUE(bolt.ok());
  EXPECT_NE(text::FormatRecursiveMolecule(bom, up, *bolt)
                .find("part-[composition~*]"),
            std::string::npos);
}

namespace {

// Minimal field extraction for the flat JSON the printer emits; enough to
// round-trip every span back out of QueryTraceToJson.
int64_t JsonInt(const std::string& json, size_t object_start,
                const std::string& key) {
  size_t pos = json.find("\"" + key + "\": ", object_start);
  EXPECT_NE(pos, std::string::npos) << key;
  return std::stoll(json.substr(pos + key.size() + 4));
}

std::string JsonString(const std::string& json, size_t object_start,
                       const std::string& key) {
  size_t pos = json.find("\"" + key + "\": \"", object_start);
  EXPECT_NE(pos, std::string::npos) << key;
  size_t begin = pos + key.size() + 5;
  return json.substr(begin, json.find('"', begin) - begin);
}

// QueryTrace owns a mutex (immovable), so the caller provides it.
void RecordSampleTrace(QueryTrace* trace) {
  {
    TraceScope scope(trace);
    ScopedSpan select("select", "state-area");
    select.set_rows_out(10);
    {
      ScopedSpan derive("derive", "1 thread(s)");
      derive.set_rows_in(10);
      derive.set_rows_out(10);
    }
    for (int i = 0; i < 5; ++i) {
      ScopedSpan append("wal.append");
      append.set_rows_out(32);
    }
  }
}

}  // namespace

TEST_F(PrinterTest, QueryTraceFormattingCollapsesSiblingRuns) {
  QueryTrace trace;
  RecordSampleTrace(&trace);
  std::string out = text::FormatQueryTrace(trace);
  EXPECT_NE(out.find("trace: 7 spans, total "), std::string::npos) << out;
  EXPECT_NE(out.find("select [state-area]"), std::string::npos) << out;
  EXPECT_NE(out.find("derive [1 thread(s)]"), std::string::npos) << out;
  EXPECT_NE(out.find("10 -> 10"), std::string::npos) << out;
  // Five wal.append siblings exceed the run limit of three: the first is
  // printed, the other four collapse into one aggregate line.
  EXPECT_NE(out.find("... 4 more wal.append spans, total "),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("rows out 32", out.find("... 4 more")),
            std::string::npos)
      << out;
}

TEST_F(PrinterTest, QueryTraceJsonRoundTrips) {
  QueryTrace trace;
  RecordSampleTrace(&trace);
  std::string json = text::QueryTraceToJson(trace);
  EXPECT_EQ(static_cast<uint64_t>(JsonInt(json, 0, "total_ns")),
            trace.total_duration_ns());

  // Walk the span objects in order and reconstruct each field.
  size_t pos = json.find("\"spans\": [");
  ASSERT_NE(pos, std::string::npos);
  for (const TraceSpan& span : trace.spans()) {
    pos = json.find("{\"id\":", pos);
    ASSERT_NE(pos, std::string::npos) << "missing object for span " << span.id;
    EXPECT_EQ(JsonInt(json, pos, "id"), span.id);
    EXPECT_EQ(JsonInt(json, pos, "parent"), span.parent);
    EXPECT_EQ(JsonString(json, pos, "name"), span.name);
    EXPECT_EQ(JsonString(json, pos, "note"), span.note);
    EXPECT_EQ(static_cast<uint64_t>(JsonInt(json, pos, "start_ns")),
              span.start_ns);
    EXPECT_EQ(static_cast<uint64_t>(JsonInt(json, pos, "duration_ns")),
              span.duration_ns);
    EXPECT_EQ(JsonInt(json, pos, "rows_in"), span.rows_in);
    EXPECT_EQ(JsonInt(json, pos, "rows_out"), span.rows_out);
    EXPECT_EQ(static_cast<uint32_t>(JsonInt(json, pos, "thread")),
              span.thread);
    ++pos;
  }
  EXPECT_EQ(json.find("{\"id\":", pos), std::string::npos)
      << "more span objects than spans";
}

TEST_F(PrinterTest, MetricsSnapshotFormattingAndJson) {
  Registry registry;
  registry.GetCounter("c.scans").Add(5);
  registry.GetGauge("g.parallelism").Set(-2);
  registry.GetHistogram("h.latency").Observe(3);
  MetricsSnapshot snapshot = registry.Snapshot();

  std::string table = text::FormatMetricsSnapshot(snapshot);
  EXPECT_NE(table.find("c.scans"), std::string::npos);
  EXPECT_NE(table.find("5"), std::string::npos);
  EXPECT_NE(table.find("count 1, mean "), std::string::npos) << table;
  EXPECT_NE(table.find("p50 <= "), std::string::npos) << table;
  EXPECT_EQ(text::FormatMetricsSnapshot(MetricsSnapshot{}),
            "no metrics recorded\n");

  // The JSON form is deterministic for a fixed snapshot — pin it exactly so
  // downstream consumers (bench_compare-style tooling) can rely on it.
  EXPECT_EQ(text::MetricsSnapshotToJson(snapshot),
            "{\"counters\": {\"c.scans\": 5}, "
            "\"gauges\": {\"g.parallelism\": -2}, "
            "\"histograms\": {\"h.latency\": {\"count\": 1, \"sum_us\": 3, "
            "\"max_us\": 3, \"p50_us\": 3, \"p99_us\": 3}}}");
}

TEST_F(PrinterTest, ConceptComparisonContainsAllFigure3Rows) {
  std::string table = text::FormatConceptComparison();
  for (const char* row :
       {"attribute", "relation schema", "atom-type description", "tuple",
        "atom", "link type", "referential integrity(?)",
        "referential integrity(!)", "database domain"}) {
    EXPECT_NE(table.find(row), std::string::npos) << row;
  }
}

}  // namespace
}  // namespace mad
