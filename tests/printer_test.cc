#include "text/printer.h"

#include <gtest/gtest.h>

#include "er/er_model.h"
#include "molecule/derivation.h"
#include "workload/bom.h"
#include "workload/geo.h"

namespace mad {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
};

TEST_F(PrinterTest, FormatAtom) {
  EXPECT_EQ(text::FormatAtom(db_, "state", ids_.states["SP"]),
            "<'SP', 1000>");
  EXPECT_EQ(text::FormatAtom(db_, "state", AtomId{99999}), "<#99999?>");
  EXPECT_EQ(text::FormatAtom(db_, "bogus", AtomId{1}), "<?>");
}

TEST_F(PrinterTest, DatabaseSpecMatchesFigure4Shape) {
  std::string spec = text::FormatDatabaseSpec(db_, 2);
  // Every atom/link type appears as a formal triple, Fig. 4 style.
  EXPECT_NE(spec.find("state = <state, {name: STRING, hectare: INT64}, {"),
            std::string::npos);
  EXPECT_NE(spec.find("river-net = <river-net, {river, net}, {"),
            std::string::npos);
  // Truncation marker.
  EXPECT_NE(spec.find(", ...}"), std::string::npos);
  // The closing database line.
  EXPECT_NE(spec.find("GEO_DB = <{state, city, river, area, net, edge, "
                      "point}, {state-area, city-point, river-net, "
                      "area-edge, net-edge, edge-point}> in DB*"),
            std::string::npos);
}

TEST_F(PrinterTest, MadDiagramListsReflexivity) {
  Database bom("BOM");
  ASSERT_TRUE(workload::BuildCarBom(bom).ok());
  std::string diagram = text::FormatMadDiagram(bom);
  EXPECT_NE(diagram.find("part ---composition--- part  (reflexive)"),
            std::string::npos);
}

TEST_F(PrinterTest, ErDiagramShowsCardinalities) {
  std::string diagram = text::FormatErDiagram(er::Figure1ErSchema());
  EXPECT_NE(diagram.find("area <area-edge n:m> edge"), std::string::npos);
  EXPECT_NE(diagram.find("state <state-area 1:1> area"), std::string::npos);
}

TEST_F(PrinterTest, MoleculeFormatting) {
  auto md = MoleculeDescription::CreateFromTypes(
      db_, {"state", "area"}, {{"state-area", "state", "area", false}});
  ASSERT_TRUE(md.ok());
  auto m = DeriveMoleculeFor(db_, *md, ids_.states["SP"]);
  ASSERT_TRUE(m.ok());
  std::string molecule_text = text::FormatMolecule(db_, *md, *m);
  EXPECT_NE(molecule_text.find("molecule(root=<'SP', 1000>)"),
            std::string::npos);
  EXPECT_NE(molecule_text.find("area: {<'a7', 1000>}"), std::string::npos);

  auto mt = DefineMoleculeType(db_, "pairs", *md);
  ASSERT_TRUE(mt.ok());
  std::string type_text = text::FormatMoleculeType(db_, *mt, 2);
  EXPECT_NE(type_text.find("molecule type 'pairs'"), std::string::npos);
  EXPECT_NE(type_text.find("structure: state-area"), std::string::npos);
  EXPECT_NE(type_text.find("molecule set (10 molecules)"), std::string::npos);
  EXPECT_NE(type_text.find("..."), std::string::npos);  // truncated at 2
}

TEST_F(PrinterTest, RecursiveMoleculeFormatting) {
  Database bom("BOM");
  auto ids = workload::BuildCarBom(bom);
  ASSERT_TRUE(ids.ok());
  RecursiveDescription rd{"part", "composition", LinkDirection::kForward, -1};
  auto m = DeriveRecursiveMoleculeFor(bom, rd, (*ids)["car"]);
  ASSERT_TRUE(m.ok());
  std::string recursive_text = text::FormatRecursiveMolecule(bom, rd, *m);
  EXPECT_NE(recursive_text.find("part-[composition*]"), std::string::npos);
  EXPECT_NE(recursive_text.find("level 0: {<'car', 20000>}"),
            std::string::npos);
  EXPECT_NE(recursive_text.find("level 2:"), std::string::npos);

  RecursiveDescription up{"part", "composition", LinkDirection::kBackward, -1};
  auto bolt = DeriveRecursiveMoleculeFor(bom, up, (*ids)["bolt"]);
  ASSERT_TRUE(bolt.ok());
  EXPECT_NE(text::FormatRecursiveMolecule(bom, up, *bolt)
                .find("part-[composition~*]"),
            std::string::npos);
}

TEST_F(PrinterTest, ConceptComparisonContainsAllFigure3Rows) {
  std::string table = text::FormatConceptComparison();
  for (const char* row :
       {"attribute", "relation schema", "atom-type description", "tuple",
        "atom", "link type", "referential integrity(?)",
        "referential integrity(!)", "database domain"}) {
    EXPECT_NE(table.find(row), std::string::npos) << row;
  }
}

}  // namespace
}  // namespace mad
