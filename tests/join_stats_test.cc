#include <gtest/gtest.h>

#include <set>

#include "algebra/atom_algebra.h"
#include "expr/expr.h"
#include "molecule/derivation.h"
#include "molecule/statistics.h"
#include "workload/geo.h"

namespace mad {
namespace e = expr;
namespace {

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
    // Disjoint operand schemas for joining state with area.
    ASSERT_TRUE(algebra::Rename(db_, "area",
                                {{"name", "aname"}, {"hectare", "ahectare"}},
                                "area_r")
                    .ok());
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
};

TEST_F(JoinTest, ThetaJoinEqualsRestrictedProduct) {
  auto pred = e::Eq(e::Attr("state", "hectare"), e::Attr("area_r", "ahectare"));
  auto joined = algebra::Join(db_, "state", "area_r", pred, "joined");
  ASSERT_TRUE(joined.ok()) << joined.status();

  // Reference result through × then σ.
  auto product = algebra::CartesianProduct(db_, "state", "area_r", "product");
  ASSERT_TRUE(product.ok());
  auto restricted = algebra::Restrict(
      db_, "product", e::Eq(e::Attr("hectare"), e::Attr("ahectare")),
      "restricted");
  ASSERT_TRUE(restricted.ok());

  EXPECT_EQ((*db_.GetAtomType("joined"))->occurrence().size(),
            (*db_.GetAtomType("restricted"))->occurrence().size());
  EXPECT_EQ((*db_.GetAtomType("joined"))->description(),
            (*db_.GetAtomType("restricted"))->description());
  // hectare values pair up: 900 x 900 twice on each side etc.
  // (10 states, areas copy hectares; duplicates 900/900 give 2x2, plus the
  // unique ones 1x1 each.)
  EXPECT_EQ((*db_.GetAtomType("joined"))->occurrence().size(), 12u);
}

TEST_F(JoinTest, JoinInheritsComponentLinks) {
  auto pred = e::Eq(e::Attr("hectare"), e::Attr("ahectare"));
  auto joined = algebra::Join(db_, "state", "area_r", pred, "j2");
  ASSERT_TRUE(joined.ok());
  EXPECT_FALSE(joined->inherited_link_types.empty());
  // Some inherited link type connects the join result back to the network.
  bool connects = false;
  for (const std::string& lname : joined->inherited_link_types) {
    const LinkType* lt = *db_.GetLinkType(lname);
    if (lt->Touches("j2") && !lt->occurrence().empty()) connects = true;
  }
  EXPECT_TRUE(connects);
}

TEST_F(JoinTest, JoinValidation) {
  auto pred = e::Eq(e::Attr("hectare"), e::Attr("ahectare"));
  EXPECT_FALSE(algebra::Join(db_, "state", "state", pred).ok());
  EXPECT_FALSE(algebra::Join(db_, "state", "area_r", nullptr).ok());
  EXPECT_FALSE(algebra::Join(db_, "state", "area_r",
                             e::Eq(e::Attr("bogus"), e::Lit(int64_t{1})))
                   .ok());
  EXPECT_FALSE(algebra::Join(db_, "state", "area_r",
                             e::Eq(e::Attr("river", "name"), e::Lit("x")))
                   .ok());
  EXPECT_FALSE(algebra::Join(db_, "state", "area_r",
                             e::Add(e::Attr("hectare"), e::Lit(int64_t{1})))
                   .ok());
  // Overlapping schemas rejected (area has 'name'/'hectare' like state).
  EXPECT_FALSE(algebra::Join(db_, "state", "area", pred).ok());
}

TEST(StatsTest, Figure4MtStateStatistics) {
  Database db("GEO_DB");
  auto ids = workload::BuildFigure4GeoDatabase(db);
  ASSERT_TRUE(ids.ok());
  auto md = MoleculeDescription::CreateFromTypes(
      db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md.ok());
  auto mt = DefineMoleculeType(db, "mt_state", *md);
  ASSERT_TRUE(mt.ok());

  MoleculeTypeStats stats = ComputeMoleculeTypeStats(*mt);
  EXPECT_EQ(stats.molecule_count, 10u);
  EXPECT_GE(stats.max_atoms, stats.min_atoms);
  EXPECT_GT(stats.avg_atoms, 0.0);
  // The fixture shares points between state molecules: sharing factor > 1.
  EXPECT_GT(stats.sharing_factor(), 1.0);
  EXPECT_GT(stats.total_atom_slots, stats.distinct_atoms);

  ASSERT_EQ(stats.nodes.size(), 4u);
  EXPECT_EQ(stats.nodes[0].label, "state");
  EXPECT_EQ(stats.nodes[0].min_atoms, 1u);
  EXPECT_EQ(stats.nodes[0].max_atoms, 1u);
  EXPECT_EQ(stats.nodes[0].distinct_atoms, 10u);
  // Points are the shared node: slots exceed distinct atoms.
  const NodeStats& points = stats.nodes[3];
  EXPECT_EQ(points.label, "point");
  EXPECT_GT(points.total_slots, points.distinct_atoms);

  std::string text = FormatMoleculeTypeStats(stats);
  EXPECT_NE(text.find("sharing factor"), std::string::npos);
  EXPECT_NE(text.find("point:"), std::string::npos);
}

TEST(StatsTest, EmptyMoleculeType) {
  Database db("GEO_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  auto md = MoleculeDescription::CreateFromTypes(db, {"city"}, {});
  ASSERT_TRUE(md.ok());
  // Restrict away everything by deleting cities first.
  for (const Atom& atom :
       std::vector<Atom>((*db.GetAtomType("city"))->occurrence().atoms())) {
    ASSERT_TRUE(db.DeleteAtom("city", atom.id).ok());
  }
  auto mt = DefineMoleculeType(db, "none", *md);
  ASSERT_TRUE(mt.ok());
  MoleculeTypeStats stats = ComputeMoleculeTypeStats(*mt);
  EXPECT_EQ(stats.molecule_count, 0u);
  EXPECT_DOUBLE_EQ(stats.sharing_factor(), 1.0);
  // No molecules: every aggregate must stay at its zero state rather than
  // inherit garbage from a never-taken seeding branch.
  EXPECT_EQ(stats.min_atoms, 0u);
  EXPECT_EQ(stats.max_atoms, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_atoms, 0.0);
  EXPECT_DOUBLE_EQ(stats.avg_links, 0.0);
  ASSERT_EQ(stats.nodes.size(), 1u);
  EXPECT_EQ(stats.nodes[0].min_atoms, 0u);
  EXPECT_EQ(stats.nodes[0].max_atoms, 0u);
  EXPECT_DOUBLE_EQ(stats.nodes[0].avg_atoms, 0.0);
  EXPECT_EQ(stats.nodes[0].distinct_atoms, 0u);
}

}  // namespace
}  // namespace mad
