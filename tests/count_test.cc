// COUNT(label) qualification: molecule-level component counts in
// restriction predicates, through the algebra and through MQL.

#include <gtest/gtest.h>

#include <set>

#include "expr/eval.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "mql/session.h"
#include "workload/geo.h"

namespace mad {
namespace e = expr;
namespace {

class CountTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"point", "edge", "area", "state", "net", "river"},
        {{"edge-point", "point", "edge", false},
         {"area-edge", "edge", "area", false},
         {"state-area", "area", "state", false},
         {"net-edge", "edge", "net", false},
         {"river-net", "net", "river", false}});
    ASSERT_TRUE(md.ok());
    auto mt = DefineMoleculeType(db_, "pn", *md);
    ASSERT_TRUE(mt.ok());
    pn_ = std::make_unique<MoleculeType>(*std::move(mt));
  }

  std::set<std::string> RootNames(const MoleculeType& mt) {
    std::set<std::string> names;
    const AtomType* at =
        *db_.GetAtomType(mt.description().root_node().type_name);
    size_t idx = *at->description().IndexOf("name");
    for (const Molecule& m : mt.molecules()) {
      names.insert(at->occurrence().Find(m.root())->values[idx].AsString());
    }
    return names;
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
  std::unique_ptr<MoleculeType> pn_;
};

TEST_F(CountTest, ExprToString) {
  auto pred = e::Ge(e::Count("edge"), e::Lit(int64_t{4}));
  EXPECT_EQ(pred->ToString(), "(COUNT(edge) >= 4)");
}

TEST_F(CountTest, CountRejectedOutsideMoleculeScope) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("x", DataType::kInt64).ok());
  Atom atom{AtomId{1}, {Value(int64_t{1})}};
  auto result =
      e::EvalOnAtom(*e::Gt(e::Count("edge"), e::Lit(int64_t{0})), "t", s, atom);
  EXPECT_FALSE(result.ok());
}

TEST_F(CountTest, RestrictByComponentCount) {
  // Only point 'pn' meets four edges.
  auto hubs = RestrictMolecules(
      db_, *pn_, e::Ge(e::Count("edge"), e::Lit(int64_t{4})), "hubs");
  ASSERT_TRUE(hubs.ok()) << hubs.status();
  EXPECT_EQ(RootNames(*hubs), std::set<std::string>{"pn"});

  // Points on no river at all.
  auto inland = RestrictMolecules(
      db_, *pn_, e::Eq(e::Count("river"), e::Lit(int64_t{0})), "inland");
  ASSERT_TRUE(inland.ok());
  EXPECT_GT(inland->size(), 0u);
  size_t river_idx = *pn_->description().NodeIndex("river");
  for (const Molecule& m : inland->molecules()) {
    EXPECT_TRUE(m.AtomsOf(river_idx).empty());
  }
}

TEST_F(CountTest, CountCombinesWithAttributePredicates) {
  // Border points that touch at least two states AND lie on the Parana:
  // 'pn' (4 states) and 'p2' (endpoint of e1 on SP/Parana and e12 on SC).
  auto result = RestrictMolecules(
      db_, *pn_,
      e::And(e::Ge(e::Count("state"), e::Lit(int64_t{2})),
             e::Eq(e::Attr("river", "name"), e::Lit("Parana"))),
      "tripoints");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(RootNames(*result), (std::set<std::string>{"pn", "p2"}));

  // Arithmetic over counts: twice the river count is below the edge count.
  auto arith = RestrictMolecules(
      db_, *pn_,
      e::Lt(e::Mul(e::Count("river"), e::Lit(int64_t{2})), e::Count("edge")),
      "arith");
  ASSERT_TRUE(arith.ok()) << arith.status();
  EXPECT_GT(arith->size(), 0u);
}

TEST_F(CountTest, CountValidatesQualifier) {
  EXPECT_FALSE(RestrictMolecules(db_, *pn_,
                                 e::Gt(e::Count("bogus"), e::Lit(int64_t{0})),
                                 "x")
                   .ok());
}

TEST_F(CountTest, MqlCountSyntax) {
  mql::Session session(&db_);
  auto result = session.Execute(
      "SELECT ALL FROM point-edge-(area-state,net-river) "
      "WHERE COUNT(edge) >= 4;");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->molecules->size(), 1u);
  EXPECT_EQ(result->molecules->molecules()[0].root(), ids_.points["pn"]);

  // COUNT parses inside compound predicates and EXPLAIN.
  auto plan = session.Execute(
      "EXPLAIN SELECT ALL FROM point-edge-(area-state,net-river) "
      "WHERE COUNT(state) >= 2 AND point.x > 0;");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->message.find("Sigma[((COUNT(state) >= 2) AND (point.x > "
                               "0))]"),
            std::string::npos)
      << plan->message;

  EXPECT_FALSE(session.Execute("SELECT ALL FROM state WHERE COUNT();").ok());
  EXPECT_FALSE(
      session.Execute("SELECT ALL FROM state WHERE COUNT(1) > 0;").ok());
}

TEST_F(CountTest, ForAllQuantification) {
  // FORALL is the dual of the existential default: molecules where every
  // edge lies on the Parana course vs molecules where some edge does.
  size_t net_idx = *pn_->description().NodeIndex("net");
  auto all_on_net = RestrictMolecules(
      db_, *pn_,
      e::ForAll("edge", e::Ne(e::Attr("edge", "name"), e::Lit("e12"))),
      "no_e12");
  ASSERT_TRUE(all_on_net.ok()) << all_on_net.status();
  // The complement through NOT + existential: NOT (exists edge named e12).
  auto complement = RestrictMolecules(
      db_, *pn_, e::Not(e::Eq(e::Attr("edge", "name"), e::Lit("e12"))),
      "not_e12");
  ASSERT_TRUE(complement.ok());
  // FORALL(edge != x) == NOT EXISTS(edge == x) — De Morgan over groups.
  EXPECT_EQ(all_on_net->size(), complement->size());
  (void)net_idx;
}

TEST_F(CountTest, ForAllIsVacuouslyTrueOnEmptyGroups) {
  // Molecules without any river trivially satisfy FORALL river (...).
  auto result = RestrictMolecules(
      db_, *pn_,
      e::And(e::Eq(e::Count("river"), e::Lit(int64_t{0})),
             e::ForAll("river", e::Eq(e::Attr("river", "name"), e::Lit("x")))),
      "vacuous");
  ASSERT_TRUE(result.ok()) << result.status();
  auto no_river = RestrictMolecules(
      db_, *pn_, e::Eq(e::Count("river"), e::Lit(int64_t{0})), "no_river");
  ASSERT_TRUE(no_river.ok());
  EXPECT_EQ(result->size(), no_river->size());
}

TEST_F(CountTest, ForAllValidation) {
  // Predicate referencing another node is rejected.
  EXPECT_FALSE(RestrictMolecules(
                   db_, *pn_,
                   e::ForAll("edge", e::Eq(e::Attr("river", "name"),
                                           e::Lit("Parana"))),
                   "x")
                   .ok());
  // Unknown label.
  EXPECT_FALSE(
      RestrictMolecules(db_, *pn_,
                        e::ForAll("bogus", e::Lit(true)), "x")
          .ok());
  // Nested FORALL unsupported.
  EXPECT_FALSE(RestrictMolecules(
                   db_, *pn_,
                   e::ForAll("edge", e::ForAll("edge", e::Lit(true))), "x")
                   .ok());
  // FORALL outside molecule scope.
  Schema s;
  ASSERT_TRUE(s.AddAttribute("x", DataType::kInt64).ok());
  Atom atom{AtomId{1}, {Value(int64_t{1})}};
  EXPECT_FALSE(
      e::EvalOnAtom(*e::ForAll("edge", e::Lit(true)), "t", s, atom).ok());
}

TEST_F(CountTest, MqlForAllSyntax) {
  mql::Session session(&db_);
  // Points all of whose edges belong to the Parana net: with COUNT guard
  // so points with no edges don't qualify vacuously.
  auto result = session.Execute(
      "SELECT ALL FROM point-edge-(area-state,net-river) "
      "WHERE COUNT(edge) >= 1 AND FORALL edge (edge.name != 'e12');");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->molecules->size(), 0u);
  EXPECT_LT(result->molecules->size(), 12u);

  auto plan = session.Execute(
      "EXPLAIN SELECT ALL FROM point-edge-(area-state,net-river) "
      "WHERE FORALL edge (edge.name != 'e12');");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->message.find("FORALL edge (edge.name != 'e12')"),
            std::string::npos)
      << plan->message;

  EXPECT_FALSE(session.Execute("SELECT ALL FROM state WHERE FORALL;").ok());
  EXPECT_FALSE(
      session.Execute("SELECT ALL FROM state WHERE FORALL x y;").ok());
}

}  // namespace
}  // namespace mad
