#include "molecule/operations.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "molecule/derivation.h"
#include "molecule/propagation.h"
#include "molecule/qualification.h"
#include "workload/geo.h"

namespace mad {
namespace e = expr;
namespace {

class MoleculeOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;

    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"state", "area", "edge", "point"},
        {{"state-area", "state", "area", false},
         {"area-edge", "area", "edge", false},
         {"edge-point", "edge", "point", false}});
    ASSERT_TRUE(md.ok()) << md.status();
    auto mt = DefineMoleculeType(db_, "mt_state", *md);
    ASSERT_TRUE(mt.ok()) << mt.status();
    mt_state_ = std::make_unique<MoleculeType>(*std::move(mt));

    auto pn_md = MoleculeDescription::CreateFromTypes(
        db_, {"point", "edge", "area", "state", "net", "river"},
        {{"edge-point", "point", "edge", false},
         {"area-edge", "edge", "area", false},
         {"state-area", "area", "state", false},
         {"net-edge", "edge", "net", false},
         {"river-net", "net", "river", false}});
    ASSERT_TRUE(pn_md.ok()) << pn_md.status();
    auto pn = DefineMoleculeType(db_, "point-neighborhood", *pn_md);
    ASSERT_TRUE(pn.ok());
    pn_ = std::make_unique<MoleculeType>(*std::move(pn));
  }

  std::set<std::string> RootNames(const MoleculeType& mt) {
    std::set<std::string> names;
    const AtomType* at =
        *db_.GetAtomType(mt.description().root_node().type_name);
    size_t idx = *at->description().IndexOf("name");
    for (const Molecule& m : mt.molecules()) {
      names.insert(at->occurrence().Find(m.root())->values[idx].AsString());
    }
    return names;
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
  std::unique_ptr<MoleculeType> mt_state_;
  std::unique_ptr<MoleculeType> pn_;
};

// ---- Σ restriction (Def. 10) ------------------------------------------------

TEST_F(MoleculeOpsTest, RestrictByRootAttribute) {
  auto big = RestrictMolecules(
      db_, *mt_state_, e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000})),
      "big");
  ASSERT_TRUE(big.ok()) << big.status();
  EXPECT_EQ(RootNames(*big), (std::set<std::string>{"BA", "MS", "RS"}));
  // rsd = md (Def. 10): the description is unchanged.
  EXPECT_EQ(big->description(), mt_state_->description());
}

TEST_F(MoleculeOpsTest, RestrictByComponentAttributeIsExistential) {
  // Ch. 4's second example: the neighbourhood of point 'pn'.
  auto result = RestrictMolecules(
      db_, *pn_, e::Eq(e::Attr("point", "name"), e::Lit("pn")), "pn_only");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->molecules()[0].root(), ids_.points["pn"]);

  // mt_state molecules containing point 'pn': SP, MS, MG, GO (their borders
  // meet at pn).
  auto touching = RestrictMolecules(
      db_, *mt_state_, e::Eq(e::Attr("point", "name"), e::Lit("pn")),
      "touching_pn");
  ASSERT_TRUE(touching.ok());
  EXPECT_EQ(RootNames(*touching),
            (std::set<std::string>{"SP", "MS", "MG", "GO"}));
}

TEST_F(MoleculeOpsTest, RestrictWithCompoundPredicate) {
  auto result = RestrictMolecules(
      db_, *mt_state_,
      e::And(e::Eq(e::Attr("point", "name"), e::Lit("pn")),
             e::Ge(e::Attr("state", "hectare"), e::Lit(int64_t{1000}))),
      "big_touching");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RootNames(*result), (std::set<std::string>{"SP", "MS"}));

  auto inverted = RestrictMolecules(
      db_, *mt_state_,
      e::Not(e::Eq(e::Attr("point", "name"), e::Lit("pn"))), "not_touching");
  ASSERT_TRUE(inverted.ok());
  EXPECT_EQ(inverted->size(), 6u);  // 10 - 4
}

TEST_F(MoleculeOpsTest, RestrictCrossNodeComparison) {
  // Exists an area and a state in the molecule with area.hectare >
  // state.hectare? Never (each state's area copies its hectare).
  auto result = RestrictMolecules(
      db_, *mt_state_,
      e::Gt(e::Attr("area", "hectare"), e::Attr("state", "hectare")),
      "mismatch");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
  auto equal = RestrictMolecules(
      db_, *mt_state_,
      e::Eq(e::Attr("area", "hectare"), e::Attr("state", "hectare")), "match");
  ASSERT_TRUE(equal.ok());
  EXPECT_EQ(equal->size(), 10u);
}

TEST_F(MoleculeOpsTest, RestrictValidatesPredicate) {
  EXPECT_FALSE(RestrictMolecules(db_, *mt_state_, nullptr, "x").ok());
  EXPECT_FALSE(RestrictMolecules(db_, *mt_state_,
                                 e::Eq(e::Attr("bogus", "name"), e::Lit("x")),
                                 "x")
                   .ok());
  EXPECT_FALSE(RestrictMolecules(db_, *mt_state_,
                                 e::Eq(e::Attr("state", "bogus"), e::Lit("x")),
                                 "x")
                   .ok());
  // Ambiguous unqualified attribute ('name' occurs in all four nodes).
  EXPECT_FALSE(
      RestrictMolecules(db_, *mt_state_, e::Eq(e::Attr("name"), e::Lit("SP")),
                        "x")
          .ok());
  // Unambiguous unqualified attribute ('hectare' occurs in state and area).
  EXPECT_FALSE(
      RestrictMolecules(db_, *mt_state_,
                        e::Gt(e::Attr("hectare"), e::Lit(int64_t{0})), "x")
          .ok());
}

// ---- Π projection ------------------------------------------------------------

TEST_F(MoleculeOpsTest, ProjectDropsBranch) {
  MoleculeProjectionSpec spec;
  spec.keep_labels = {"point", "edge", "area", "state"};
  auto result = ProjectMolecules(db_, *pn_, spec, "pn_no_rivers");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->description().nodes().size(), 4u);
  EXPECT_EQ(result->description().links().size(), 3u);
  EXPECT_EQ(result->description().root_label(), "point");
  EXPECT_EQ(result->size(), pn_->size());
  // Molecules lost their net/river atoms but kept everything else.
  const Molecule* pn_mol = nullptr;
  for (const Molecule& m : result->molecules()) {
    if (m.root() == ids_.points["pn"]) pn_mol = &m;
  }
  ASSERT_NE(pn_mol, nullptr);
  EXPECT_EQ(pn_mol->atom_count(), 1u + 4u + 4u + 4u);
}

TEST_F(MoleculeOpsTest, ProjectNarrowsAttributes) {
  MoleculeProjectionSpec spec;
  spec.keep_labels = {"state", "area"};
  spec.attributes["state"] = {"name"};
  auto result = ProjectMolecules(db_, *mt_state_, spec, "state_names");
  ASSERT_TRUE(result.ok()) << result.status();
  // hectare is no longer visible on state.
  EXPECT_FALSE(RestrictMolecules(db_, *result,
                                 e::Gt(e::Attr("state", "hectare"),
                                       e::Lit(int64_t{0})),
                                 "x")
                   .ok());
  // name still is.
  auto sp = RestrictMolecules(db_, *result,
                              e::Eq(e::Attr("state", "name"), e::Lit("SP")),
                              "sp");
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->size(), 1u);
}

TEST_F(MoleculeOpsTest, ProjectRejectsInvalidSpecs) {
  MoleculeProjectionSpec drop_root;
  drop_root.keep_labels = {"area", "edge", "point"};
  EXPECT_FALSE(ProjectMolecules(db_, *mt_state_, drop_root, "x").ok());

  MoleculeProjectionSpec disconnect;
  disconnect.keep_labels = {"state", "edge", "point"};  // drops 'area'
  EXPECT_FALSE(ProjectMolecules(db_, *mt_state_, disconnect, "x").ok());

  MoleculeProjectionSpec unknown;
  unknown.keep_labels = {"state", "bogus"};
  EXPECT_FALSE(ProjectMolecules(db_, *mt_state_, unknown, "x").ok());

  MoleculeProjectionSpec narrowing_dropped;
  narrowing_dropped.keep_labels = {"state", "area"};
  narrowing_dropped.attributes["edge"] = {"name"};
  EXPECT_FALSE(ProjectMolecules(db_, *mt_state_, narrowing_dropped, "x").ok());
}

// ---- Ω, Δ, Ψ ------------------------------------------------------------------

TEST_F(MoleculeOpsTest, UnionDifferenceIntersection) {
  auto big = RestrictMolecules(
      db_, *mt_state_, e::Ge(e::Attr("state", "hectare"), e::Lit(int64_t{1000})),
      "big");  // BA MS SP RS
  auto touching = RestrictMolecules(
      db_, *mt_state_, e::Eq(e::Attr("point", "name"), e::Lit("pn")),
      "touching");  // SP MS MG GO
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(touching.ok());

  auto u = UnionMolecules(*big, *touching, "u");
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(RootNames(*u),
            (std::set<std::string>{"BA", "MS", "SP", "RS", "MG", "GO"}));

  auto d = DifferenceMolecules(*big, *touching, "d");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(RootNames(*d), (std::set<std::string>{"BA", "RS"}));

  auto i = IntersectMolecules(*big, *touching, "i");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(RootNames(*i), (std::set<std::string>{"MS", "SP"}));
}

TEST_F(MoleculeOpsTest, UnionDeduplicatesIdenticalMolecules) {
  auto u = UnionMolecules(*mt_state_, *mt_state_, "self");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), mt_state_->size());
}

TEST_F(MoleculeOpsTest, SetOperationsRequireIdenticalDescriptions) {
  EXPECT_FALSE(UnionMolecules(*mt_state_, *pn_, "x").ok());
  EXPECT_FALSE(DifferenceMolecules(*mt_state_, *pn_, "x").ok());
  EXPECT_FALSE(IntersectMolecules(*mt_state_, *pn_, "x").ok());
}

TEST_F(MoleculeOpsTest, IntersectionMatchesPaperRecipe) {
  // Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)) must equal the naive intersection.
  auto big = RestrictMolecules(
      db_, *mt_state_, e::Ge(e::Attr("state", "hectare"), e::Lit(int64_t{900})),
      "big");
  auto touching = RestrictMolecules(
      db_, *mt_state_, e::Eq(e::Attr("point", "name"), e::Lit("pn")),
      "touching");
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(touching.ok());
  auto psi = IntersectMolecules(*big, *touching, "psi");
  ASSERT_TRUE(psi.ok());

  std::unordered_set<std::string> right_keys;
  for (const Molecule& m : touching->molecules()) {
    right_keys.insert(m.CanonicalKey());
  }
  std::set<std::string> naive;
  for (const Molecule& m : big->molecules()) {
    if (right_keys.count(m.CanonicalKey()) > 0) naive.insert(m.CanonicalKey());
  }
  std::set<std::string> psi_keys;
  for (const Molecule& m : psi->molecules()) psi_keys.insert(m.CanonicalKey());
  EXPECT_EQ(psi_keys, naive);
}

// ---- X cartesian product -------------------------------------------------------

TEST_F(MoleculeOpsTest, CartesianProductCouplesMolecules) {
  auto big = RestrictMolecules(
      db_, *mt_state_, e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000})),
      "big");  // 3 molecules
  auto pn_only = RestrictMolecules(
      db_, *pn_, e::Eq(e::Attr("point", "name"), e::Lit("pn")), "pn1");  // 1
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(pn_only.ok());

  auto x = CartesianProductMolecules(db_, *big, *pn_only, "pairs");
  ASSERT_TRUE(x.ok()) << x.status();
  EXPECT_EQ(x->size(), 3u);
  // Description: synthetic pair root + 4 + 6 nodes.
  EXPECT_EQ(x->description().nodes().size(), 11u);
  EXPECT_EQ(x->description().root_node().type_name, "pairs");
  // Label collisions between the two operands were de-collided.
  EXPECT_TRUE(x->description().HasLabel("state"));
  EXPECT_TRUE(x->description().HasLabel("state#2"));

  // Every product molecule is a valid molecule over the enlarged database.
  for (const Molecule& m : x->molecules()) {
    EXPECT_TRUE(ValidateMolecule(db_, x->description(), m).ok());
  }

  // The result can be re-derived from the enlarged database: closure.
  auto rederived = DeriveMolecules(db_, x->description());
  ASSERT_TRUE(rederived.ok());
  EXPECT_EQ(rederived->size(), 3u);
}

TEST_F(MoleculeOpsTest, CartesianProductQualifiesAcrossOperands) {
  auto x = CartesianProductMolecules(db_, *mt_state_, *pn_, "all_pairs");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->size(), 120u);  // 10 x 12

  // Restrict across operand boundaries: state (left operand) vs the right
  // operand's root point, whose label was de-collided to "point#2".
  auto result = RestrictMolecules(
      db_, *x,
      e::And(e::Eq(e::Attr("state", "name"), e::Lit("SP")),
             e::Eq(e::Attr("point#2", "name"), e::Lit("pn"))),
      "sp_pn");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
  // The left operand's own 'point' label keeps existential semantics over
  // the left molecules: SP's border contains point 'pn' too, so qualifying
  // on the *left* label matches every pair whose left molecule is SP's.
  auto left_label = RestrictMolecules(
      db_, *x,
      e::And(e::Eq(e::Attr("state", "name"), e::Lit("SP")),
             e::Eq(e::Attr("point", "name"), e::Lit("pn"))),
      "sp_left");
  ASSERT_TRUE(left_label.ok());
  EXPECT_EQ(left_label->size(), 12u);
}

// ---- prop (Def. 9) and Theorem 2 -------------------------------------------------

TEST_F(MoleculeOpsTest, PropagationMaterialisesRestrictedTypes) {
  auto big = RestrictMolecules(
      db_, *mt_state_, e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000})),
      "big");
  ASSERT_TRUE(big.ok());
  auto prop = PropagateMoleculeType(db_, *big);
  ASSERT_TRUE(prop.ok()) << prop.status();

  // Renamed atom types exist with restricted occurrences.
  auto state_t = db_.GetAtomType("state@big");
  ASSERT_TRUE(state_t.ok());
  EXPECT_EQ((*state_t)->occurrence().size(), 3u);
  // Same description (schema) as the original (Def. 9).
  EXPECT_EQ((*state_t)->description(),
            (*db_.GetAtomType("state"))->description());
  // Atom identity preserved.
  EXPECT_TRUE((*state_t)->occurrence().Contains(ids_.states["BA"]));

  // Inherited link types exist and are restricted.
  auto sa = db_.GetLinkType("state-area@big");
  ASSERT_TRUE(sa.ok());
  EXPECT_EQ((*sa)->occurrence().size(), 3u);

  // The result set stays intact.
  EXPECT_EQ(prop->size(), 3u);
}

TEST_F(MoleculeOpsTest, Theorem2RederivationAfterPropagation) {
  // mt = a[mname, ltyp(G')](atyp(C')): deriving over the propagated types
  // regenerates exactly the propagated molecule set.
  auto big = RestrictMolecules(
      db_, *mt_state_, e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000})),
      "big");
  ASSERT_TRUE(big.ok());
  auto prop = PropagateMoleculeType(db_, *big);
  ASSERT_TRUE(prop.ok());

  auto rederived = DeriveMolecules(db_, prop->description());
  ASSERT_TRUE(rederived.ok());
  std::set<std::string> original_keys;
  for (const Molecule& m : prop->molecules()) {
    original_keys.insert(m.CanonicalKey());
  }
  std::set<std::string> rederived_keys;
  for (const Molecule& m : *rederived) rederived_keys.insert(m.CanonicalKey());
  EXPECT_EQ(original_keys, rederived_keys);
}

TEST_F(MoleculeOpsTest, Theorem2HoldsForEveryRestrictionOfPointNeighborhood) {
  // Property sweep: propagate + re-derive every single-molecule restriction.
  for (const auto& [pname, pid] : ids_.points) {
    auto one = RestrictMolecules(
        db_, *pn_, e::Eq(e::Attr("point", "name"), e::Lit(Value(pname))),
        "one_" + pname);
    ASSERT_TRUE(one.ok());
    ASSERT_EQ(one->size(), 1u) << pname;
    auto prop = PropagateMoleculeType(db_, *one);
    ASSERT_TRUE(prop.ok()) << prop.status();
    auto rederived = DeriveMolecules(db_, prop->description());
    ASSERT_TRUE(rederived.ok());
    ASSERT_EQ(rederived->size(), 1u);
    EXPECT_EQ((*rederived)[0].CanonicalKey(),
              prop->molecules()[0].CanonicalKey())
        << pname;
  }
}

TEST_F(MoleculeOpsTest, PropagationAppliesAttributeNarrowing) {
  MoleculeProjectionSpec spec;
  spec.keep_labels = {"state", "area"};
  spec.attributes["state"] = {"name"};
  auto projected = ProjectMolecules(db_, *mt_state_, spec, "narrow");
  ASSERT_TRUE(projected.ok());
  auto prop = PropagateMoleculeType(db_, *projected);
  ASSERT_TRUE(prop.ok()) << prop.status();

  auto state_t = db_.GetAtomType("state@narrow");
  ASSERT_TRUE(state_t.ok());
  EXPECT_EQ((*state_t)->description().attribute_count(), 1u);
  EXPECT_EQ((*state_t)->description().attribute(0).name, "name");
  EXPECT_EQ((*state_t)->occurrence().size(), 10u);
}

// ---- Closure chain (Theorem 3) -----------------------------------------------------

TEST_F(MoleculeOpsTest, OperationsConcatenate) {
  // Σ ∘ Π ∘ Σ: operations compose because every result is a molecule type.
  auto big = RestrictMolecules(
      db_, *mt_state_, e::Ge(e::Attr("state", "hectare"), e::Lit(int64_t{900})),
      "s1");
  ASSERT_TRUE(big.ok());
  MoleculeProjectionSpec spec;
  spec.keep_labels = {"state", "area", "edge", "point"};
  spec.attributes["area"] = {"name"};
  auto projected = ProjectMolecules(db_, *big, spec, "s2");
  ASSERT_TRUE(projected.ok());
  auto final_mt = RestrictMolecules(
      db_, *projected, e::Eq(e::Attr("point", "name"), e::Lit("pn")), "s3");
  ASSERT_TRUE(final_mt.ok());
  EXPECT_EQ(RootNames(*final_mt), (std::set<std::string>{"SP", "MS", "MG", "GO"}));
}

}  // namespace
}  // namespace mad
