// LinkStore ordering and erase semantics: Erase/EraseAllOf must run in
// ~O(degree) via swap-and-pop on the backing vector, but Partners() must
// keep the relative insertion order of the survivors — derivation output
// order depends on it.

#include "storage/link_store.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace mad {
namespace {

AtomId Id(uint64_t v) { return AtomId{v}; }

TEST(LinkStoreTest, InsertRejectsDuplicatesAndInvalidIds) {
  LinkStore store;
  EXPECT_TRUE(store.Insert(Id(1), Id(2)).ok());
  EXPECT_EQ(store.Insert(Id(1), Id(2)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Insert(AtomId{}, Id(2)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.size(), 1u);
}

TEST(LinkStoreTest, EraseKeepsPartnerOrder) {
  LinkStore store;
  for (uint64_t second : {10, 11, 12, 13, 14}) {
    ASSERT_TRUE(store.Insert(Id(1), Id(second)).ok());
  }
  ASSERT_TRUE(store.Erase(Id(1), Id(12)).ok());
  // Survivors keep their relative insertion order.
  EXPECT_EQ(store.Partners(Id(1), LinkDirection::kForward),
            (std::vector<AtomId>{Id(10), Id(11), Id(13), Id(14)}));
  EXPECT_EQ(store.Erase(Id(1), Id(12)).code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.Contains(Id(1), Id(12)));
  EXPECT_EQ(store.size(), 4u);
}

TEST(LinkStoreTest, EraseKeepsLinksQueryable) {
  LinkStore store;
  ASSERT_TRUE(store.Insert(Id(1), Id(2)).ok());
  ASSERT_TRUE(store.Insert(Id(3), Id(4)).ok());
  ASSERT_TRUE(store.Insert(Id(5), Id(6)).ok());
  // Erasing the first link swap-and-pops; every survivor must stay
  // reachable through links(), Contains(), and both partner indexes.
  ASSERT_TRUE(store.Erase(Id(1), Id(2)).ok());
  EXPECT_EQ(store.links().size(), 2u);
  for (const Link& link : {Link{Id(3), Id(4)}, Link{Id(5), Id(6)}}) {
    EXPECT_TRUE(store.Contains(link.first, link.second));
    EXPECT_NE(std::find(store.links().begin(), store.links().end(), link),
              store.links().end());
  }
  // And erasing a survivor through the moved slot still works.
  ASSERT_TRUE(store.Erase(Id(5), Id(6)).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Contains(Id(3), Id(4)));
}

TEST(LinkStoreTest, EraseAllOfRemovesBothRoles) {
  LinkStore store;
  ASSERT_TRUE(store.Insert(Id(1), Id(2)).ok());   // 1 first
  ASSERT_TRUE(store.Insert(Id(1), Id(3)).ok());   // 1 first
  ASSERT_TRUE(store.Insert(Id(4), Id(1)).ok());   // 1 second
  ASSERT_TRUE(store.Insert(Id(2), Id(3)).ok());   // untouched
  EXPECT_EQ(store.EraseAllOf(Id(1)), 3u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Contains(Id(2), Id(3)));
  EXPECT_TRUE(store.Partners(Id(1), LinkDirection::kForward).empty());
  EXPECT_TRUE(store.Partners(Id(1), LinkDirection::kBackward).empty());
  // Partner lists of the other endpoints no longer mention atom 1.
  EXPECT_EQ(store.Partners(Id(2), LinkDirection::kBackward),
            std::vector<AtomId>{});
  EXPECT_EQ(store.Partners(Id(4), LinkDirection::kForward),
            std::vector<AtomId>{});
  EXPECT_EQ(store.EraseAllOf(Id(1)), 0u);
}

TEST(LinkStoreTest, EraseAllOfCountsReflexiveSelfLinkOnce) {
  LinkStore store;
  ASSERT_TRUE(store.Insert(Id(7), Id(7)).ok());  // self-link
  ASSERT_TRUE(store.Insert(Id(7), Id(8)).ok());
  ASSERT_TRUE(store.Insert(Id(9), Id(7)).ok());
  EXPECT_EQ(store.EraseAllOf(Id(7)), 3u);
  EXPECT_TRUE(store.empty());
}

TEST(LinkStoreTest, EraseAllOfKeepsSurvivorPartnerOrder) {
  LinkStore store;
  // Atom 20 sees partners 1, 2, 3 in that order; erasing all of atom 2
  // must leave 1, 3 in order.
  ASSERT_TRUE(store.Insert(Id(1), Id(20)).ok());
  ASSERT_TRUE(store.Insert(Id(2), Id(20)).ok());
  ASSERT_TRUE(store.Insert(Id(3), Id(20)).ok());
  EXPECT_EQ(store.EraseAllOf(Id(2)), 1u);
  EXPECT_EQ(store.Partners(Id(20), LinkDirection::kBackward),
            (std::vector<AtomId>{Id(1), Id(3)}));
}

}  // namespace
}  // namespace mad
