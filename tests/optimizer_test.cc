#include "mql/optimizer.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mql/session.h"
#include "workload/geo.h"

namespace mad {
namespace mql {
namespace e = mad::expr;
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"state", "area", "edge", "point"},
        {{"state-area", "state", "area", false},
         {"area-edge", "area", "edge", false},
         {"edge-point", "edge", "point", false}});
    ASSERT_TRUE(md.ok());
    md_ = std::make_unique<MoleculeDescription>(*std::move(md));
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
  std::unique_ptr<MoleculeDescription> md_;
};

TEST_F(OptimizerTest, ReferencedNodesClassification) {
  auto root_ref = e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1}));
  auto leaf_ref = e::Eq(e::Attr("point", "name"), e::Lit("pn"));
  auto mixed = e::Gt(e::Attr("state", "hectare"), e::Attr("area", "hectare"));
  EXPECT_EQ(*ReferencedNodes(db_, *md_, *root_ref), (std::vector<size_t>{0}));
  EXPECT_EQ(*ReferencedNodes(db_, *md_, *leaf_ref), (std::vector<size_t>{3}));
  EXPECT_EQ(*ReferencedNodes(db_, *md_, *mixed),
            (std::vector<size_t>{0, 1}));
  // Unqualified 'x' resolves uniquely to point.
  EXPECT_EQ(*ReferencedNodes(db_, *md_, *e::Gt(e::Attr("x"), e::Lit(0.0))),
            (std::vector<size_t>{3}));
  // COUNT and FORALL bind their quantified node even without attribute
  // references underneath.
  EXPECT_EQ(*ReferencedNodes(db_, *md_,
                             *e::Ge(e::Count("point"), e::Lit(int64_t{2}))),
            (std::vector<size_t>{3}));
  EXPECT_EQ(*ReferencedNodes(
                db_, *md_,
                *e::ForAll("point", e::Gt(e::Attr("point", "x"),
                                          e::Attr("area", "hectare")))),
            (std::vector<size_t>{1, 3}));
  // Constant predicates reference nothing.
  EXPECT_TRUE(ReferencedNodes(db_, *md_, *e::Lit(true))->empty());
  // Unknown references surface as errors.
  EXPECT_FALSE(ReferencedNodes(db_, *md_, *e::Attr("bogus", "name")).ok());
}

TEST_F(OptimizerTest, SplitsConjunctionPerNode) {
  auto pred = e::And(
      e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{900})),
      e::And(e::Eq(e::Attr("point", "name"), e::Lit("pn")),
             e::Ne(e::Attr("state", "name"), e::Lit("XX"))));
  auto plan = PlanPredicatePushdown(db_, *md_, pred);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->node_filters.size(), 2u);
  EXPECT_EQ(plan->node_filters[0].node_index, 0u);
  EXPECT_EQ(plan->node_filters[0].predicate->ToString(),
            "((state.hectare > 900) AND (state.name != 'XX'))");
  EXPECT_EQ(plan->node_filters[1].node_index, 3u);
  EXPECT_EQ(plan->node_filters[1].predicate->ToString(),
            "(point.name = 'pn')");
  EXPECT_EQ(plan->residual, nullptr);
  EXPECT_TRUE(plan->HasPushdown());
}

TEST_F(OptimizerTest, MultiNodeDisjunctionStaysResidual) {
  auto pred = e::Or(e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{900})),
                    e::Eq(e::Attr("point", "name"), e::Lit("pn")));
  auto plan = PlanPredicatePushdown(db_, *md_, pred);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->node_filters.empty());
  ASSERT_NE(plan->residual, nullptr);
  EXPECT_EQ(plan->residual->ToString(), pred->ToString());
  EXPECT_FALSE(plan->HasPushdown());
}

TEST_F(OptimizerTest, SingleNodeDisjunctionIsPushed) {
  // A disjunction confined to one node is still decidable on that node.
  auto pred = e::Or(e::Eq(e::Attr("point", "name"), e::Lit("pn")),
                    e::Gt(e::Attr("point", "x"), e::Lit(100.0)));
  auto plan = PlanPredicatePushdown(db_, *md_, pred);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->node_filters.size(), 1u);
  EXPECT_EQ(plan->node_filters[0].node_index, 3u);
  EXPECT_EQ(plan->node_filters[0].predicate->ToString(), pred->ToString());
  EXPECT_EQ(plan->residual, nullptr);
}

TEST_F(OptimizerTest, CountConjunctIsPushedToItsNode) {
  auto pred = e::And(e::Ge(e::Count("point"), e::Lit(int64_t{2})),
                     e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{0})));
  auto plan = PlanPredicatePushdown(db_, *md_, pred);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->node_filters.size(), 2u);
  EXPECT_EQ(plan->node_filters[0].node_index, 0u);
  EXPECT_EQ(plan->node_filters[1].node_index, 3u);
  EXPECT_EQ(plan->node_filters[1].predicate->ToString(),
            "(COUNT(point) >= 2)");
  EXPECT_EQ(plan->residual, nullptr);
}

TEST_F(OptimizerTest, ConstantPredicateStaysResidual) {
  auto plan = PlanPredicatePushdown(db_, *md_, e::Lit(true));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->node_filters.empty());
  ASSERT_NE(plan->residual, nullptr);
  EXPECT_FALSE(plan->HasPushdown());
}

TEST_F(OptimizerTest, NullPredicateYieldsEmptyPlan) {
  auto plan = PlanPredicatePushdown(db_, *md_, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->node_filters.empty());
  EXPECT_EQ(plan->residual, nullptr);
  EXPECT_FALSE(plan->seed.has_value());
  EXPECT_FALSE(plan->HasPushdown());
}

TEST_F(OptimizerTest, IndexSeedRequiresIndexAndRootEquality) {
  auto pred = e::And(e::Eq(e::Attr("state", "name"), e::Lit("SP")),
                     e::Gt(e::Attr("point", "x"), e::Lit(0.0)));
  // No index yet: the conjunct is pushed, but nothing seeds the roots.
  auto before = PlanPredicatePushdown(db_, *md_, pred);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->seed.has_value());

  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  auto after = PlanPredicatePushdown(db_, *md_, pred);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->seed.has_value());
  EXPECT_EQ(after->seed->attribute, "name");
  EXPECT_EQ(after->seed->value.ToString(), "'SP'");
  ASSERT_EQ(after->node_filters.size(), 2u);
  // The seed only narrows: the root conjunct still verifies as a filter.
  EXPECT_EQ(after->node_filters[0].predicate->ToString(),
            "(state.name = 'SP')");

  // Inequalities and non-root equalities never seed.
  auto range = PlanPredicatePushdown(
      db_, *md_, e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{900})));
  ASSERT_TRUE(range.ok());
  EXPECT_FALSE(range->seed.has_value());
}

std::set<std::string> RootNames(const Database& db, const QueryResult& r) {
  std::set<std::string> names;
  const MoleculeType& mt = *r.molecules;
  const AtomType* at = *db.GetAtomType(mt.description().root_node().type_name);
  size_t idx = *at->description().IndexOf("name");
  for (const Molecule& m : mt.molecules()) {
    names.insert(at->occurrence().Find(m.root())->values[idx].AsString());
  }
  return names;
}

/// Canonical keys in result order — the bit-for-bit comparison: same
/// molecules, same atoms and links per molecule, same order.
std::vector<std::string> Keys(const QueryResult& r) {
  std::vector<std::string> keys;
  keys.reserve(r.molecules->size());
  for (const Molecule& m : r.molecules->molecules()) {
    keys.push_back(m.CanonicalKey());
  }
  return keys;
}

TEST_F(OptimizerTest, PushdownAndBaselineAgree) {
  // An index on the root makes the seeded path participate too.
  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  const char* queries[] = {
      "SELECT ALL FROM m1(state-area-edge-point) "
      "WHERE state.hectare > 900;",
      "SELECT ALL FROM m2(state-area-edge-point) "
      "WHERE state.hectare > 900 AND point.name = 'pn';",
      "SELECT ALL FROM m3(state-area-edge-point) "
      "WHERE point.name = 'pn';",
      "SELECT ALL FROM m4(state-area-edge-point) "
      "WHERE state.name = 'SP' OR point.name = 'p9';",
      "SELECT state.name FROM m5(state-area-edge-point) "
      "WHERE state.hectare >= 1000 AND NOT state.name = 'SP';",
      "SELECT ALL FROM m6(state-area-edge-point) "
      "WHERE state.name = 'SP' AND point.x >= 0;",
      "SELECT ALL FROM m7(state-area-edge-point) "
      "WHERE COUNT(point) >= 1 AND state.hectare > 0;",
      "SELECT ALL FROM m8(state-area-edge-point) "
      "WHERE FORALL point (point.x >= 0);",
  };
  // Pushdown on/off at several parallelism settings must agree
  // bit-for-bit, per Theorem 2's closure argument: Σ commutes with the
  // derivation split because each pushed conjunct is decided by the same
  // group either way.
  for (const char* query : queries) {
    std::vector<std::string> baseline;
    bool have_baseline = false;
    for (bool pushdown : {true, false}) {
      for (unsigned parallelism : {1u, 4u, 8u}) {
        SessionOptions options;
        options.enable_root_pushdown = pushdown;
        options.parallelism = parallelism;
        Session session(&db_, options);
        auto result = session.Execute(query);
        ASSERT_TRUE(result.ok()) << query << ": " << result.status();
        if (!have_baseline) {
          baseline = Keys(*result);
          have_baseline = true;
        } else {
          EXPECT_EQ(Keys(*result), baseline)
              << query << " (pushdown=" << pushdown
              << ", parallelism=" << parallelism << ")";
        }
      }
    }
  }
}

TEST_F(OptimizerTest, PushdownDerivesOnlyQualifyingRoots) {
  Session session(&db_);
  auto result = session.Execute(
      "SELECT ALL FROM m(state-area-edge-point) WHERE state.name = 'SP';");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->molecules->size(), 1u);
  EXPECT_EQ(result->molecules->molecules()[0].root(), ids_.states["SP"]);
  // All ten states fan out (no index on state.name here), but nine are
  // rejected by the pushed root filter before their descendants expand.
  ASSERT_TRUE(result->derivation.has_value());
  EXPECT_EQ(result->derivation->roots, 10u);
  EXPECT_EQ(result->derivation->molecules_rejected, 9u);
}

TEST_F(OptimizerTest, IndexSeedNarrowsTheFanOut) {
  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  Session session(&db_);
  auto result = session.Execute(
      "SELECT ALL FROM m(state-area-edge-point) WHERE state.name = 'SP';");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->molecules->size(), 1u);
  EXPECT_EQ(result->molecules->molecules()[0].root(), ids_.states["SP"]);
  // The index bucket seeds exactly the qualifying root: one root fans
  // out, nothing is rejected.
  ASSERT_TRUE(result->derivation.has_value());
  EXPECT_EQ(result->derivation->roots, 1u);
  EXPECT_EQ(result->derivation->molecules_rejected, 0u);
}

}  // namespace
}  // namespace mql
}  // namespace mad
