#include "mql/optimizer.h"

#include <gtest/gtest.h>

#include <set>

#include "mql/session.h"
#include "workload/geo.h"

namespace mad {
namespace mql {
namespace e = mad::expr;
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"state", "area", "edge", "point"},
        {{"state-area", "state", "area", false},
         {"area-edge", "area", "edge", false},
         {"edge-point", "edge", "point", false}});
    ASSERT_TRUE(md.ok());
    md_ = std::make_unique<MoleculeDescription>(*std::move(md));
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
  std::unique_ptr<MoleculeDescription> md_;
};

TEST_F(OptimizerTest, IsRootOnlyClassification) {
  auto root_ref = e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1}));
  auto leaf_ref = e::Eq(e::Attr("point", "name"), e::Lit("pn"));
  auto mixed = e::Gt(e::Attr("state", "hectare"), e::Attr("area", "hectare"));
  EXPECT_TRUE(*IsRootOnly(db_, *md_, *root_ref));
  EXPECT_FALSE(*IsRootOnly(db_, *md_, *leaf_ref));
  EXPECT_FALSE(*IsRootOnly(db_, *md_, *mixed));
  // Unqualified 'x' resolves uniquely to point — not root.
  EXPECT_FALSE(*IsRootOnly(db_, *md_, *e::Gt(e::Attr("x"), e::Lit(0.0))));
  // Constant predicates stay residual.
  EXPECT_FALSE(*IsRootOnly(db_, *md_, *e::Lit(true)));
  // Unknown references surface as errors.
  EXPECT_FALSE(IsRootOnly(db_, *md_, *e::Attr("bogus", "name")).ok());
}

TEST_F(OptimizerTest, SplitsTopLevelConjunction) {
  auto pred = e::And(
      e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{900})),
      e::And(e::Eq(e::Attr("point", "name"), e::Lit("pn")),
             e::Ne(e::Attr("state", "name"), e::Lit("XX"))));
  auto split = SplitRootConjuncts(db_, *md_, pred);
  ASSERT_TRUE(split.ok());
  ASSERT_NE(split->root_only, nullptr);
  ASSERT_NE(split->residual, nullptr);
  EXPECT_EQ(split->root_only->ToString(),
            "((state.hectare > 900) AND (state.name != 'XX'))");
  EXPECT_EQ(split->residual->ToString(), "(point.name = 'pn')");
}

TEST_F(OptimizerTest, DisjunctionIsNotSplit) {
  auto pred = e::Or(e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{900})),
                    e::Eq(e::Attr("point", "name"), e::Lit("pn")));
  auto split = SplitRootConjuncts(db_, *md_, pred);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->root_only, nullptr);
  ASSERT_NE(split->residual, nullptr);
  EXPECT_EQ(split->residual->ToString(), pred->ToString());
}

TEST_F(OptimizerTest, PureRootPredicateLeavesNoResidual) {
  auto pred = e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{900}));
  auto split = SplitRootConjuncts(db_, *md_, pred);
  ASSERT_TRUE(split.ok());
  EXPECT_NE(split->root_only, nullptr);
  EXPECT_EQ(split->residual, nullptr);
}

TEST_F(OptimizerTest, NullPredicateSplitsToNulls) {
  auto split = SplitRootConjuncts(db_, *md_, nullptr);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->root_only, nullptr);
  EXPECT_EQ(split->residual, nullptr);
}

std::set<std::string> RootNames(const Database& db, const QueryResult& r) {
  std::set<std::string> names;
  const MoleculeType& mt = *r.molecules;
  const AtomType* at = *db.GetAtomType(mt.description().root_node().type_name);
  size_t idx = *at->description().IndexOf("name");
  for (const Molecule& m : mt.molecules()) {
    names.insert(at->occurrence().Find(m.root())->values[idx].AsString());
  }
  return names;
}

TEST_F(OptimizerTest, PushdownAndBaselineAgree) {
  SessionOptions with;
  with.enable_root_pushdown = true;
  SessionOptions without;
  without.enable_root_pushdown = false;
  Session fast(&db_, with);
  Session slow(&db_, without);

  const char* queries[] = {
      "SELECT ALL FROM m1(state-area-edge-point) "
      "WHERE state.hectare > 900;",
      "SELECT ALL FROM m2(state-area-edge-point) "
      "WHERE state.hectare > 900 AND point.name = 'pn';",
      "SELECT ALL FROM m3(state-area-edge-point) "
      "WHERE point.name = 'pn';",
      "SELECT ALL FROM m4(state-area-edge-point) "
      "WHERE state.name = 'SP' OR point.name = 'p9';",
      "SELECT state.name FROM m5(state-area-edge-point) "
      "WHERE state.hectare >= 1000 AND NOT state.name = 'SP';",
  };
  for (const char* query : queries) {
    auto a = fast.Execute(query);
    auto b = slow.Execute(query);
    ASSERT_TRUE(a.ok()) << query << ": " << a.status();
    ASSERT_TRUE(b.ok()) << query << ": " << b.status();
    EXPECT_EQ(RootNames(db_, *a), RootNames(db_, *b)) << query;
    EXPECT_EQ(a->molecules->size(), b->molecules->size()) << query;
  }
}

TEST_F(OptimizerTest, PushdownDerivesOnlyQualifyingRoots) {
  Session session(&db_);
  auto result = session.Execute(
      "SELECT ALL FROM m(state-area-edge-point) WHERE state.name = 'SP';");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->molecules->size(), 1u);
  EXPECT_EQ(result->molecules->molecules()[0].root(), ids_.states["SP"]);
}

}  // namespace
}  // namespace mql
}  // namespace mad
