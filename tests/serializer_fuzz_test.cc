// Property test: no byte-level corruption of a serialized database — text
// or binary — may ever crash the readers or invoke UB; they must either
// parse successfully or return a clean error Status. Run under MAD_SANITIZE
// (ASan/UBSan) this pins the "never crash on hostile input" contract down.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "storage/binary_codec.h"
#include "storage/serializer.h"
#include "storage/wal.h"
#include "workload/geo.h"

namespace mad {
namespace {

/// Deterministic seed: the fuzz corpus is reproducible run to run.
constexpr uint32_t kSeed = 0xC0FFEE;

std::string BuildTextImage() {
  Database db("GEO_DB");
  EXPECT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  EXPECT_TRUE(db.CreateIndex("state", "name").ok());
  auto text = SerializeDatabase(db);
  EXPECT_TRUE(text.ok());
  return *text;
}

std::string BuildBinaryImage() {
  Database db("GEO_DB");
  EXPECT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  EXPECT_TRUE(db.CreateIndex("state", "name").ok());
  auto bytes = SerializeDatabaseBinary(db);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

/// Applies `mutations` random byte edits (overwrite, insert, or erase).
std::string Mutate(const std::string& image, std::mt19937& rng,
                   int mutations) {
  std::string out = image;
  std::uniform_int_distribution<int> op(0, 2);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int i = 0; i < mutations && !out.empty(); ++i) {
    std::uniform_int_distribution<size_t> pos(0, out.size() - 1);
    switch (op(rng)) {
      case 0:
        out[pos(rng)] = static_cast<char>(byte(rng));
        break;
      case 1:
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos(rng)),
                   static_cast<char>(byte(rng)));
        break;
      case 2:
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos(rng)));
        break;
    }
  }
  return out;
}

TEST(SerializerFuzzTest, TextReaderNeverCrashesOnMutatedInput) {
  const std::string image = BuildTextImage();
  std::mt19937 rng(kSeed);
  std::uniform_int_distribution<int> mutation_count(1, 16);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = Mutate(image, rng, mutation_count(rng));
    auto result = DeserializeDatabase(mutated);
    if (result.ok()) {
      // Whatever parsed must be internally consistent.
      EXPECT_TRUE((*result)->CheckConsistency().ok());
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(SerializerFuzzTest, TextReaderSurvivesTruncations) {
  const std::string image = BuildTextImage();
  for (size_t cut = 0; cut <= image.size(); ++cut) {
    auto result = DeserializeDatabase(image.substr(0, cut));
    if (result.ok()) EXPECT_TRUE((*result)->CheckConsistency().ok());
  }
}

TEST(SerializerFuzzTest, BinaryReaderNeverCrashesOnMutatedInput) {
  const std::string image = BuildBinaryImage();
  std::mt19937 rng(kSeed ^ 1);
  std::uniform_int_distribution<int> mutation_count(1, 16);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = Mutate(image, rng, mutation_count(rng));
    auto result = DeserializeDatabaseBinary(mutated);
    if (result.ok()) {
      EXPECT_TRUE((*result)->CheckConsistency().ok());
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(SerializerFuzzTest, BinaryReaderNeverCrashesOnRandomNoise) {
  std::mt19937 rng(kSeed ^ 2);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> len(0, 512);
  for (int round = 0; round < 2000; ++round) {
    std::string noise(len(rng), '\0');
    for (char& c : noise) c = static_cast<char>(byte(rng));
    auto result = DeserializeDatabaseBinary(noise);
    if (result.ok()) EXPECT_TRUE((*result)->CheckConsistency().ok());
  }
}

TEST(SerializerFuzzTest, WalScanNeverCrashesOnMutatedInput) {
  // Build a small WAL image, then mutate it; the scanner must always return
  // cleanly (it cannot even fail — corruption only shortens the result).
  std::string image;
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDefineAtomType;
    r.name = "t";
    EXPECT_TRUE(r.schema.AddAttribute("x", DataType::kInt64).ok());
    image += FrameWalRecord(r);
    WalRecord ins;
    ins.kind = WalRecord::Kind::kInsertAtom;
    ins.name = "t";
    ins.id = 1;
    ins.values = {Value(int64_t{42})};
    image += FrameWalRecord(ins);
  }
  std::mt19937 rng(kSeed ^ 3);
  std::uniform_int_distribution<int> mutation_count(1, 8);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = Mutate(image, rng, mutation_count(rng));
    WalReadResult result = ReadWal(mutated);
    EXPECT_LE(result.valid_bytes, mutated.size());
    EXPECT_EQ(result.valid_bytes + result.discarded_bytes, mutated.size());
  }
}

}  // namespace
}  // namespace mad
