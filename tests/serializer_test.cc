#include "storage/serializer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "molecule/derivation.h"
#include "workload/bom.h"
#include "workload/geo.h"

namespace mad {
namespace {

TEST(SerializerTest, RoundTripFigure4Database) {
  Database db("GEO_DB");
  auto ids = workload::BuildFigure4GeoDatabase(db);
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(db.CreateIndex("state", "name").ok());

  auto text = SerializeDatabase(db);
  ASSERT_TRUE(text.ok()) << text.status();
  auto restored = DeserializeDatabase(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ((*restored)->name(), "GEO_DB");
  EXPECT_EQ((*restored)->atom_type_count(), db.atom_type_count());
  EXPECT_EQ((*restored)->link_type_count(), db.link_type_count());
  EXPECT_EQ((*restored)->total_atom_count(), db.total_atom_count());
  EXPECT_EQ((*restored)->total_link_count(), db.total_link_count());
  // Atom ids and values survive.
  auto v = (*restored)->GetAttribute("state", ids->states["SP"], "hectare");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 1000);
  // Index definitions survive and are rebuilt.
  EXPECT_NE((*restored)->FindIndex("state", "name"), nullptr);
  EXPECT_TRUE((*restored)->CheckConsistency().ok());
}

TEST(SerializerTest, RestoredDatabaseDerivesIdenticalMolecules) {
  Database db("GEO_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  auto md = MoleculeDescription::CreateFromTypes(
      db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md.ok());
  auto original = DeriveMolecules(db, *md);
  ASSERT_TRUE(original.ok());

  auto restored = CloneDatabase(db);
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto md2 = MoleculeDescription::CreateFromTypes(
      **restored, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md2.ok());
  auto rederived = DeriveMolecules(**restored, *md2);
  ASSERT_TRUE(rederived.ok());

  ASSERT_EQ(original->size(), rederived->size());
  for (size_t i = 0; i < original->size(); ++i) {
    EXPECT_EQ((*original)[i].CanonicalKey(), (*rederived)[i].CanonicalKey());
  }
}

TEST(SerializerTest, CloneIsIndependent) {
  Database db("BOM");
  auto ids = workload::BuildCarBom(db);
  ASSERT_TRUE(ids.ok());
  auto clone = CloneDatabase(db);
  ASSERT_TRUE(clone.ok());
  // Mutating the clone leaves the original untouched.
  ASSERT_TRUE((*clone)->DeleteAtom("part", (*ids)["bolt"]).ok());
  EXPECT_EQ((*clone)->total_atom_count(), 4u);
  EXPECT_EQ(db.total_atom_count(), 5u);
  EXPECT_EQ((*db.GetLinkType("composition"))->occurrence().size(), 5u);
  // Fresh ids in the clone do not collide with preserved ids.
  auto fresh = (*clone)->InsertAtom("part", {Value("new"), Value(int64_t{2})});
  ASSERT_TRUE(fresh.ok());
  for (const Atom& atom : (*db.GetAtomType("part"))->occurrence().atoms()) {
    EXPECT_NE(atom.id, *fresh);
  }
}

TEST(SerializerTest, EscapingSurvivesHostileStrings) {
  Database db("tricky name with spaces");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("text", DataType::kString).ok());
  ASSERT_TRUE(db.DefineAtomType("t", std::move(s)).ok());
  const std::string hostile = "line\nbreak %25 tab\t 'quote' S I N D";
  ASSERT_TRUE(db.InsertAtom("t", {Value(hostile)}).ok());
  ASSERT_TRUE(db.InsertAtom("t", {Value()}).ok());  // null value

  auto clone = CloneDatabase(db);
  ASSERT_TRUE(clone.ok()) << clone.status();
  EXPECT_EQ((*clone)->name(), "tricky name with spaces");
  const auto& atoms = (*(*clone)->GetAtomType("t"))->occurrence().atoms();
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0].values[0].AsString(), hostile);
  EXPECT_TRUE(atoms[1].values[0].is_null());
}

TEST(SerializerTest, AllValueTypesRoundTrip) {
  Database db("typed");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("i", DataType::kInt64).ok());
  ASSERT_TRUE(s.AddAttribute("d", DataType::kDouble).ok());
  ASSERT_TRUE(s.AddAttribute("s", DataType::kString).ok());
  ASSERT_TRUE(s.AddAttribute("b", DataType::kBool).ok());
  ASSERT_TRUE(db.DefineAtomType("t", std::move(s)).ok());
  ASSERT_TRUE(db.InsertAtom("t", {Value(int64_t{-42}), Value(0.1),
                                  Value("x"), Value(false)})
                  .ok());
  auto clone = CloneDatabase(db);
  ASSERT_TRUE(clone.ok());
  const Atom& atom = (*(*clone)->GetAtomType("t"))->occurrence().atoms()[0];
  EXPECT_EQ(atom.values[0].AsInt64(), -42);
  EXPECT_DOUBLE_EQ(atom.values[1].AsDouble(), 0.1);
  EXPECT_EQ(atom.values[2].AsString(), "x");
  EXPECT_EQ(atom.values[3].AsBool(), false);
}

TEST(SerializerTest, NonFiniteAndEdgeDoublesRoundTrip) {
  Database db("doubles");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("d", DataType::kDouble).ok());
  ASSERT_TRUE(db.DefineAtomType("t", std::move(s)).ok());
  const double cases[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -0.0,
      0.1,                                       // needs 17 digits
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::min(),
  };
  for (double d : cases) ASSERT_TRUE(db.InsertAtom("t", {Value(d)}).ok());

  // Through the text format explicitly (CloneDatabase is binary now).
  auto text = SerializeDatabase(db);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("Dnan"), std::string::npos);
  EXPECT_NE(text->find("Dinf"), std::string::npos);
  EXPECT_NE(text->find("D-inf"), std::string::npos);
  auto restored = DeserializeDatabase(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& atoms = (*(*restored)->GetAtomType("t"))->occurrence().atoms();
  ASSERT_EQ(atoms.size(), std::size(cases));
  for (size_t i = 0; i < std::size(cases); ++i) {
    double got = atoms[i].values[0].AsDouble();
    if (std::isnan(cases[i])) {
      EXPECT_TRUE(std::isnan(got)) << "case " << i;
    } else {
      EXPECT_EQ(got, cases[i]) << "case " << i;
      // -0.0 == 0.0 compares equal; pin the sign bit down too.
      EXPECT_EQ(std::signbit(got), std::signbit(cases[i])) << "case " << i;
    }
  }
}

TEST(SerializerTest, RejectsMalformedValueTokens) {
  auto with_value = [](const std::string& token) {
    return "MADDB 1\nDATABASE x\nATOMTYPE t 1\nATTR a DOUBLE\nATOM 1 " +
           token + "\nEND\n";
  };
  auto int_value = [](const std::string& token) {
    return "MADDB 1\nDATABASE x\nATOMTYPE t 1\nATTR a INT64\nATOM 1 " +
           token + "\nEND\n";
  };
  // Well-formed forms parse.
  EXPECT_TRUE(DeserializeDatabase(with_value("Dnan")).ok());
  EXPECT_TRUE(DeserializeDatabase(with_value("Dinf")).ok());
  EXPECT_TRUE(DeserializeDatabase(with_value("D-inf")).ok());
  EXPECT_TRUE(DeserializeDatabase(with_value("D-0")).ok());
  EXPECT_TRUE(DeserializeDatabase(int_value("I-42")).ok());
  // Malformed ones are a ParseError, not silently truncated.
  for (const char* bad :
       {"D", "D12abc", "Dinfinity", "D-infinity", "DNaN(tag)", "D1e999",
        "Dnanx", "D--1"}) {
    auto r = DeserializeDatabase(with_value(bad));
    ASSERT_FALSE(r.ok()) << "token '" << bad << "' must be rejected";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << bad;
  }
  for (const char* bad : {"I", "I12abc", "I1.5", "I99999999999999999999"}) {
    auto r = DeserializeDatabase(int_value(bad));
    ASSERT_FALSE(r.ok()) << "token '" << bad << "' must be rejected";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << bad;
  }
  // Null with a payload is malformed too.
  auto null_trailing = DeserializeDatabase(
      "MADDB 1\nDATABASE x\nATOMTYPE t 1\nATTR a INT64\nATOM 1 Nx\nEND\n");
  EXPECT_FALSE(null_trailing.ok());
}

TEST(SerializerTest, SeventeenDigitPrecisionSurvivesTextRoundTrip) {
  Database db("precise");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("d", DataType::kDouble).ok());
  ASSERT_TRUE(db.DefineAtomType("t", std::move(s)).ok());
  // A value whose nearest-17-digit decimal differs from its 16-digit one.
  const double tricky = 0.1 + 0.2;  // 0.30000000000000004
  ASSERT_TRUE(db.InsertAtom("t", {Value(tricky)}).ok());
  ASSERT_TRUE(db.InsertAtom("t", {Value(1.0 / 3.0)}).ok());

  auto text = SerializeDatabase(db);
  ASSERT_TRUE(text.ok());
  auto restored = DeserializeDatabase(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& atoms = (*(*restored)->GetAtomType("t"))->occurrence().atoms();
  uint64_t bits_want = 0;
  uint64_t bits_got = 0;
  double want = tricky;
  double got = atoms[0].values[0].AsDouble();
  std::memcpy(&bits_want, &want, sizeof(want));
  std::memcpy(&bits_got, &got, sizeof(got));
  EXPECT_EQ(bits_got, bits_want) << "bit-exact round trip required";
  EXPECT_EQ(atoms[1].values[0].AsDouble(), 1.0 / 3.0);
}

TEST(SerializerTest, EmptySchemaAtomTypeRoundTrips) {
  Database db("empty");
  ASSERT_TRUE(db.DefineAtomType("pair", Schema()).ok());
  ASSERT_TRUE(db.InsertAtom("pair", {}).ok());
  auto clone = CloneDatabase(db);
  ASSERT_TRUE(clone.ok()) << clone.status();
  EXPECT_EQ((*(*clone)->GetAtomType("pair"))->occurrence().size(), 1u);
}

TEST(SerializerTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeDatabase("").ok());
  EXPECT_FALSE(DeserializeDatabase("GARBAGE 1\n").ok());
  EXPECT_FALSE(DeserializeDatabase("MADDB 99\nDATABASE x\nEND\n").ok());
  EXPECT_FALSE(DeserializeDatabase("MADDB 1\nDATABASE x\n").ok())
      << "missing END must be detected";
  EXPECT_FALSE(
      DeserializeDatabase("MADDB 1\nDATABASE x\nATOM 1 Sfoo\nEND\n").ok())
      << "ATOM before ATOMTYPE must be detected";
  EXPECT_FALSE(
      DeserializeDatabase("MADDB 1\nDATABASE x\nEND\ntrailing\n").ok());
  EXPECT_FALSE(DeserializeDatabase(
                   "MADDB 1\nDATABASE x\nATOMTYPE t 1\nATTR a BLOB\nEND\n")
                   .ok());
  // Dangling link in the payload is rejected by referential integrity.
  EXPECT_FALSE(DeserializeDatabase("MADDB 1\nDATABASE x\n"
                                   "ATOMTYPE t 1\nATTR a STRING\n"
                                   "LINKTYPE l t t\nLINK 5 6\nEND\n")
                   .ok());
}

}  // namespace
}  // namespace mad
