#include <gtest/gtest.h>

#include "catalog/link_type.h"
#include "er/er_model.h"
#include "mql/session.h"
#include "storage/database.h"
#include "storage/serializer.h"

namespace mad {
namespace {

TEST(LinkCardinalityTest, ParseAndName) {
  LinkCardinality c;
  ASSERT_TRUE(ParseLinkCardinality("1:1", &c));
  EXPECT_EQ(c, LinkCardinality::kOneToOne);
  ASSERT_TRUE(ParseLinkCardinality("1:n", &c));
  EXPECT_EQ(c, LinkCardinality::kOneToMany);
  ASSERT_TRUE(ParseLinkCardinality("N:1", &c));
  EXPECT_EQ(c, LinkCardinality::kManyToOne);
  ASSERT_TRUE(ParseLinkCardinality("n:m", &c));
  EXPECT_EQ(c, LinkCardinality::kManyToMany);
  ASSERT_TRUE(ParseLinkCardinality("*:*", &c));
  EXPECT_EQ(c, LinkCardinality::kManyToMany);
  EXPECT_FALSE(ParseLinkCardinality("", &c));
  EXPECT_FALSE(ParseLinkCardinality("1-n", &c));
  EXPECT_FALSE(ParseLinkCardinality("2:3", &c));
  EXPECT_STREQ(LinkCardinalityName(LinkCardinality::kOneToMany), "1:n");
}

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s;
    ASSERT_TRUE(s.AddAttribute("name", DataType::kString).ok());
    ASSERT_TRUE(db_.DefineAtomType("a", s).ok());
    ASSERT_TRUE(db_.DefineAtomType("b", s).ok());
    a1_ = *db_.InsertAtom("a", {Value("a1")});
    a2_ = *db_.InsertAtom("a", {Value("a2")});
    b1_ = *db_.InsertAtom("b", {Value("b1")});
    b2_ = *db_.InsertAtom("b", {Value("b2")});
  }

  Database db_{"CARD"};
  AtomId a1_, a2_, b1_, b2_;
};

TEST_F(CardinalityTest, OneToOneEnforcedOnBothSides) {
  ASSERT_TRUE(
      db_.DefineLinkType("l", "a", "b", LinkCardinality::kOneToOne).ok());
  ASSERT_TRUE(db_.InsertLink("l", a1_, b1_).ok());
  // a1 may not take a second partner; b1 may not either.
  EXPECT_EQ(db_.InsertLink("l", a1_, b2_).code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(db_.InsertLink("l", a2_, b1_).code(),
            StatusCode::kConstraintViolation);
  // A disjoint pair is fine.
  EXPECT_TRUE(db_.InsertLink("l", a2_, b2_).ok());
}

TEST_F(CardinalityTest, OneToManyBoundsTheSecondRole) {
  ASSERT_TRUE(
      db_.DefineLinkType("l", "a", "b", LinkCardinality::kOneToMany).ok());
  ASSERT_TRUE(db_.InsertLink("l", a1_, b1_).ok());
  // One 'a' may have many 'b's...
  EXPECT_TRUE(db_.InsertLink("l", a1_, b2_).ok());
  // ...but each 'b' has at most one 'a'.
  EXPECT_EQ(db_.InsertLink("l", a2_, b1_).code(),
            StatusCode::kConstraintViolation);
}

TEST_F(CardinalityTest, ManyToOneBoundsTheFirstRole) {
  ASSERT_TRUE(
      db_.DefineLinkType("l", "a", "b", LinkCardinality::kManyToOne).ok());
  ASSERT_TRUE(db_.InsertLink("l", a1_, b1_).ok());
  EXPECT_TRUE(db_.InsertLink("l", a2_, b1_).ok());
  EXPECT_EQ(db_.InsertLink("l", a1_, b2_).code(),
            StatusCode::kConstraintViolation);
}

TEST_F(CardinalityTest, ManyToManyIsUnrestricted) {
  ASSERT_TRUE(db_.DefineLinkType("l", "a", "b").ok());
  EXPECT_TRUE(db_.InsertLink("l", a1_, b1_).ok());
  EXPECT_TRUE(db_.InsertLink("l", a1_, b2_).ok());
  EXPECT_TRUE(db_.InsertLink("l", a2_, b1_).ok());
}

TEST_F(CardinalityTest, EraseFreesTheSlot) {
  ASSERT_TRUE(
      db_.DefineLinkType("l", "a", "b", LinkCardinality::kOneToOne).ok());
  ASSERT_TRUE(db_.InsertLink("l", a1_, b1_).ok());
  ASSERT_TRUE(db_.EraseLink("l", a1_, b1_).ok());
  EXPECT_TRUE(db_.InsertLink("l", a1_, b2_).ok());
}

TEST_F(CardinalityTest, SurvivesSerialization) {
  ASSERT_TRUE(
      db_.DefineLinkType("l", "a", "b", LinkCardinality::kOneToMany).ok());
  ASSERT_TRUE(db_.InsertLink("l", a1_, b1_).ok());
  auto clone = CloneDatabase(db_);
  ASSERT_TRUE(clone.ok()) << clone.status();
  EXPECT_EQ((*(*clone)->GetLinkType("l"))->cardinality(),
            LinkCardinality::kOneToMany);
  // Still enforced after the round trip.
  EXPECT_EQ((*clone)->InsertLink("l", a2_, b1_).code(),
            StatusCode::kConstraintViolation);
}

TEST_F(CardinalityTest, MqlExtendedLinkTypeDefinition) {
  mql::Session session(&db_);
  auto created = session.Execute("CREATE LINK TYPE owns (a, b, '1:n');");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ((*db_.GetLinkType("owns"))->cardinality(),
            LinkCardinality::kOneToMany);

  ASSERT_TRUE(session
                  .Execute("INSERT LINK owns FROM (name = 'a1') "
                           "TO (name = 'b1');")
                  .ok());
  // Violating insert through MQL is rejected.
  auto second = session.Execute(
      "INSERT LINK owns FROM (name = 'a2') TO (name = 'b1');");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kConstraintViolation);

  EXPECT_FALSE(session.Execute("CREATE LINK TYPE bad (a, b, 'x:y');").ok());
  EXPECT_FALSE(session.Execute("CREATE LINK TYPE bad (a, b, 7);").ok());
}

TEST_F(CardinalityTest, ErMappingCarriesCardinalities) {
  // Defined in er_test for the schema shape; here the enforcement: the
  // Figure-1 1:1 state-area relationship rejects a second area.
  Database db("GEO");
  er::ErSchema er_schema = er::Figure1ErSchema();
  ASSERT_TRUE(er::MapToMad(er_schema, db).ok());
  auto sp = db.InsertAtom("state", {Value("SP"), Value(int64_t{1})});
  auto x1 = db.InsertAtom("area", {Value("x1"), Value(int64_t{1})});
  auto x2 = db.InsertAtom("area", {Value("x2"), Value(int64_t{1})});
  ASSERT_TRUE(db.InsertLink("state-area", *sp, *x1).ok());
  EXPECT_EQ(db.InsertLink("state-area", *sp, *x2).code(),
            StatusCode::kConstraintViolation);
}

}  // namespace
}  // namespace mad
