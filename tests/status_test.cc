#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace mad {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsThenPropagates() {
  MAD_RETURN_IF_ERROR(Status::NotFound("inner"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "inner");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MAD_ASSIGN_OR_RETURN(int h, Half(x));
  MAD_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> err = Quarter(6);  // 6/2 = 3 is odd.
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mad
