#include "relational/nf2_algebra.h"

#include <gtest/gtest.h>

#include "molecule/derivation.h"
#include "workload/geo.h"

namespace mad {
namespace {

/// Flat staff relation used for nest/unnest laws.
rel::Relation Staff() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("dept", DataType::kString).ok());
  EXPECT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  EXPECT_TRUE(s.AddAttribute("salary", DataType::kInt64).ok());
  rel::Relation r(std::move(s));
  EXPECT_TRUE(r.Insert({Value("eng"), Value("ada"), Value(int64_t{120})}).ok());
  EXPECT_TRUE(r.Insert({Value("eng"), Value("bob"), Value(int64_t{100})}).ok());
  EXPECT_TRUE(r.Insert({Value("ops"), Value("cyd"), Value(int64_t{90})}).ok());
  return r;
}

TEST(Nf2AlgebraTest, NestGroupsByRemainingAttributes) {
  auto nested = nf2::FromRelation(Staff());
  ASSERT_TRUE(nested.ok());
  auto by_dept = nf2::Nest(*nested, {"name", "salary"}, "people");
  ASSERT_TRUE(by_dept.ok()) << by_dept.status();
  EXPECT_EQ(by_dept->size(), 2u);  // eng, ops
  EXPECT_EQ(by_dept->schema().ToString(),
            "(dept: STRING, people: (name: STRING, salary: INT64))");
  // The eng group holds two people.
  for (const auto& tuple : by_dept->tuples()) {
    size_t expected = tuple[0].atomic.AsString() == "eng" ? 2u : 1u;
    EXPECT_EQ(tuple[1].nested->size(), expected);
  }
}

TEST(Nf2AlgebraTest, NestValidation) {
  auto nested = nf2::FromRelation(Staff());
  ASSERT_TRUE(nested.ok());
  EXPECT_FALSE(nf2::Nest(*nested, {}, "x").ok());
  EXPECT_FALSE(nf2::Nest(*nested, {"bogus"}, "x").ok());
  EXPECT_FALSE(nf2::Nest(*nested, {"name", "name"}, "x").ok());
  EXPECT_FALSE(nf2::Nest(*nested, {"dept", "name", "salary"}, "x").ok())
      << "nest must keep at least one grouping attribute";
  EXPECT_FALSE(nf2::Nest(*nested, {"name"}, "dept").ok())
      << "result attribute name collision";
}

TEST(Nf2AlgebraTest, UnnestInvertsNest) {
  // μ_people(ν_people(r)) == r — the classical law (holds because nest
  // never creates empty groups).
  auto nested = nf2::FromRelation(Staff());
  ASSERT_TRUE(nested.ok());
  auto by_dept = nf2::Nest(*nested, {"name", "salary"}, "people");
  ASSERT_TRUE(by_dept.ok());
  auto back = nf2::Unnest(*by_dept, "people");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(nf2::Nf2Equal(*nested, *back));
}

TEST(Nf2AlgebraTest, UnnestValidation) {
  auto nested = nf2::FromRelation(Staff());
  ASSERT_TRUE(nested.ok());
  EXPECT_FALSE(nf2::Unnest(*nested, "name").ok());  // atomic
  EXPECT_FALSE(nf2::Unnest(*nested, "bogus").ok());
}

TEST(Nf2AlgebraTest, UnnestDropsEmptyGroups) {
  // A molecule-type conversion can legitimately contain empty nested
  // relations (a state without edges); unnest drops those tuples.
  Database db("GEO_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  auto xx = db.InsertAtom("state", {Value("XX"), Value(int64_t{1})});
  ASSERT_TRUE(xx.ok());  // a state with no area
  auto md = MoleculeDescription::CreateFromTypes(
      db, {"state", "area"}, {{"state-area", "state", "area", false}});
  ASSERT_TRUE(md.ok());
  auto mt = DefineMoleculeType(db, "sa", *md);
  ASSERT_TRUE(mt.ok());
  auto nested = nf2::MoleculeTypeToNf2(db, *mt);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->size(), 11u);
  auto unnested = nf2::Unnest(*nested, "area");
  ASSERT_TRUE(unnested.ok());
  EXPECT_EQ(unnested->size(), 10u) << "XX has no area and must vanish";
}

TEST(Nf2AlgebraTest, FlattenMoleculeTypeToFirstNormalForm) {
  // The full degeneration chain of Ch. 5: molecules -> NF² -> 1NF.
  Database db("GEO_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  auto md = MoleculeDescription::CreateFromTypes(
      db, {"state", "area", "edge"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false}});
  ASSERT_TRUE(md.ok());
  auto mt = DefineMoleculeType(db, "sae", *md);
  ASSERT_TRUE(mt.ok());
  auto nested = nf2::MoleculeTypeToNf2(db, *mt);
  ASSERT_TRUE(nested.ok());

  auto flat = nf2::Flatten(*nested);
  ASSERT_TRUE(flat.ok()) << flat.status();
  // One row per (state, area, edge) path; PR's area a8 has two edges, one
  // state (XX-free fixture) has one each, so: 11 area-edge pairs.
  EXPECT_EQ(flat->size(), 11u);
  EXPECT_TRUE(flat->schema().HasAttribute("name"));
  EXPECT_TRUE(flat->schema().HasAttribute("area.name"));
  EXPECT_TRUE(flat->schema().HasAttribute("area.edge.name"));
}

TEST(Nf2AlgebraTest, FlattenDetectsNameCollisions) {
  // Two nesting paths producing the same flattened name must error, not
  // silently merge.
  auto inner = std::make_shared<nf2::Nf2Schema>();
  inner->AddAtomic("x", DataType::kInt64);
  auto schema = std::make_shared<nf2::Nf2Schema>();
  schema->AddAtomic("n.x", DataType::kInt64);
  schema->AddNested("n", inner);
  nf2::NestedRelation r(schema);
  EXPECT_FALSE(nf2::Flatten(r).ok());
}

TEST(Nf2AlgebraTest, NestedNestIsExpressible) {
  // ν can be applied repeatedly, producing two nesting levels.
  auto nested = nf2::FromRelation(Staff());
  ASSERT_TRUE(nested.ok());
  auto level1 = nf2::Nest(*nested, {"salary"}, "pay");
  ASSERT_TRUE(level1.ok());
  auto level2 = nf2::Nest(*level1, {"name", "pay"}, "people");
  ASSERT_TRUE(level2.ok()) << level2.status();
  EXPECT_EQ(level2->schema().ToString(),
            "(dept: STRING, people: (name: STRING, pay: (salary: INT64)))");
  // Round trip down to 1NF again.
  auto flat = nf2::Flatten(*level2);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->size(), 3u);
}

}  // namespace
}  // namespace mad
