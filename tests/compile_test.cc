// The compiled predicate runtime (expr/compile.h) against its oracle, the
// tree interpreter (MoleculeQualifier): same accepted predicates, same
// verdicts, same error codes and messages, same error timing — bit for bit,
// including over randomly generated predicates and degraded molecules.

#include "expr/compile.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "molecule/derivation.h"
#include "molecule/qualification.h"
#include "workload/geo.h"

namespace mad {
namespace e = mad::expr;
namespace {

class CompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"state", "area", "edge", "point"},
        {{"state-area", "state", "area", false},
         {"area-edge", "area", "edge", false},
         {"edge-point", "edge", "point", false}});
    ASSERT_TRUE(md.ok());
    md_ = std::make_unique<MoleculeDescription>(*std::move(md));
    auto molecules = DeriveMolecules(db_, *md_);
    ASSERT_TRUE(molecules.ok());
    molecules_ = *std::move(molecules);
    ASSERT_EQ(molecules_.size(), 10u);
  }

  /// Both engines on one predicate over every molecule in `set`: identical
  /// acceptance, then identical verdict-or-error per molecule.
  void ExpectAgreement(const e::ExprPtr& predicate,
                       const std::vector<Molecule>& set) {
    auto interpreter = MoleculeQualifier::Create(db_, *md_, predicate);
    auto compiled = e::CompiledPredicate::Compile(db_, *md_, predicate);
    ASSERT_EQ(interpreter.ok(), compiled.ok())
        << (predicate == nullptr ? "<null>" : predicate->ToString())
        << "\n  interpreter: " << interpreter.status()
        << "\n  compiled:    " << compiled.status();
    if (!interpreter.ok()) {
      EXPECT_EQ(interpreter.status().code(), compiled.status().code());
      EXPECT_EQ(interpreter.status().message(), compiled.status().message());
      return;
    }
    e::CompiledPredicate::Scratch scratch;
    for (size_t i = 0; i < set.size(); ++i) {
      Result<bool> expected = interpreter->Matches(set[i]);
      Result<bool> actual = compiled->EvalMolecule(set[i], scratch);
      ASSERT_EQ(expected.ok(), actual.ok())
          << predicate->ToString() << " on molecule #" << i
          << "\n  interpreter: " << expected.status()
          << "\n  compiled:    " << actual.status();
      if (expected.ok()) {
        EXPECT_EQ(*expected, *actual)
            << predicate->ToString() << " on molecule #" << i;
      } else {
        EXPECT_EQ(expected.status().code(), actual.status().code());
        EXPECT_EQ(expected.status().message(), actual.status().message());
      }
    }
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
  std::unique_ptr<MoleculeDescription> md_;
  std::vector<Molecule> molecules_;
};

TEST_F(CompileTest, SimpleComparisonsMatchInterpreter) {
  ExpectAgreement(e::Eq(e::Attr("point", "name"), e::Lit("pn")), molecules_);
  ExpectAgreement(e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{900})),
                  molecules_);
  ExpectAgreement(e::Le(e::Attr("x"), e::Lit(3.0)), molecules_);
  ExpectAgreement(e::Ne(e::Attr("area", "name"), e::Attr("state", "name")),
                  molecules_);
}

TEST_F(CompileTest, ConnectivesAndConstantsMatchInterpreter) {
  ExpectAgreement(
      e::And(e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{0})),
             e::Or(e::Eq(e::Attr("point", "name"), e::Lit("pn")),
                   e::Not(e::Eq(e::Attr("area", "name"), e::Lit("a7"))))),
      molecules_);
  ExpectAgreement(e::Lit(true), molecules_);
  ExpectAgreement(e::Not(e::Lit(false)), molecules_);
}

TEST_F(CompileTest, CountOpcodeMatchesInterpreter) {
  ExpectAgreement(e::Ge(e::Count("point"), e::Lit(int64_t{2})), molecules_);
  ExpectAgreement(e::Eq(e::Count("edge"), e::Count("point")), molecules_);
  ExpectAgreement(
      e::Gt(e::Add(e::Count("area"), e::Count("edge")), e::Lit(int64_t{4})),
      molecules_);
}

TEST_F(CompileTest, ForAllMatchesInterpreter) {
  ExpectAgreement(e::ForAll("point", e::Ge(e::Attr("point", "x"), e::Lit(0.0))),
                  molecules_);
  ExpectAgreement(
      e::ForAll("edge", e::Ne(e::Attr("edge", "name"), e::Lit("e12"))),
      molecules_);
  // Cross-node reference inside FORALL: the quantified label is universal,
  // the other existential per binding.
  ExpectAgreement(
      e::ForAll("point", e::Lt(e::Attr("point", "x"),
                               e::Add(e::Attr("state", "hectare"),
                                      e::Lit(int64_t{100000})))),
      molecules_);
}

TEST_F(CompileTest, ValuePositionConnectivesMatchInterpreter) {
  // AND/OR nested under a comparison short-circuit as values.
  ExpectAgreement(
      e::Eq(e::And(e::Gt(e::Attr("point", "x"), e::Lit(0.0)),
                   e::Lt(e::Attr("point", "y"), e::Lit(100.0))),
            e::Lit(true)),
      molecules_);
  ExpectAgreement(
      e::Ne(e::Or(e::Lit(false), e::Eq(e::Attr("edge", "name"), e::Lit("e1"))),
            e::Lit(false)),
      molecules_);
}

TEST_F(CompileTest, CompileRejectsExactlyWhatTheInterpreterRejects) {
  // Null, non-predicate root, unknown attribute, ambiguous attribute,
  // unknown COUNT/FORALL qualifier, nested FORALL — identical statuses.
  ExpectAgreement(nullptr, molecules_);
  ExpectAgreement(e::Add(e::Lit(int64_t{1}), e::Lit(int64_t{2})), molecules_);
  ExpectAgreement(e::Eq(e::Attr("bogus", "name"), e::Lit("x")), molecules_);
  ExpectAgreement(e::Eq(e::Attr("name"), e::Lit("x")), molecules_);
  ExpectAgreement(e::Ge(e::Count("bogus"), e::Lit(int64_t{0})), molecules_);
  ExpectAgreement(e::ForAll("bogus", e::Lit(true)), molecules_);
  ExpectAgreement(
      e::ForAll("edge", e::ForAll("edge", e::Lit(true))), molecules_);
}

TEST_F(CompileTest, RuntimeErrorsMatchInterpreter) {
  // Non-boolean predicate result.
  ExpectAgreement(e::And(e::Lit(true), e::Attr("state", "name")), molecules_);
  // FORALL in value position errors per binding combination.
  ExpectAgreement(
      e::Eq(e::ForAll("point", e::Ge(e::Attr("point", "x"), e::Lit(0.0))),
            e::Lit(true)),
      molecules_);
  // Type errors inside arithmetic.
  ExpectAgreement(
      e::Gt(e::Add(e::Attr("state", "name"), e::Lit(int64_t{1})),
            e::Lit(int64_t{0})),
      molecules_);
}

TEST_F(CompileTest, MissingAtomErrorHasInterpreterTiming) {
  // Deleting a shared point leaves dangling ids inside already-derived
  // molecules; both engines must surface the same Internal error when the
  // binding loop reaches the hole — not before.
  ASSERT_TRUE(db_.DeleteAtom("point", ids_.points["pn"]).ok());
  auto full_scan = e::Eq(e::Attr("point", "name"), e::Lit("no-such-point"));
  ExpectAgreement(full_scan, molecules_);
  auto interpreter = MoleculeQualifier::Create(db_, *md_, full_scan);
  auto compiled = e::CompiledPredicate::Compile(db_, *md_, full_scan);
  ASSERT_TRUE(interpreter.ok() && compiled.ok());
  e::CompiledPredicate::Scratch scratch;
  bool saw_missing = false;
  for (const Molecule& m : molecules_) {
    Result<bool> verdict = compiled->EvalMolecule(m, scratch);
    if (!verdict.ok()) {
      EXPECT_EQ(verdict.status().code(), StatusCode::kInternal);
      EXPECT_EQ(verdict.status().message(), "molecule atom missing from store");
      saw_missing = true;
    }
  }
  EXPECT_TRUE(saw_missing);
}

TEST_F(CompileTest, EvalResolvedSurvivesUnresolvedQualifiers) {
  // Regression: label_info_.at(...) used to throw std::out_of_range for
  // qualifiers that are not node labels; now a Status comes back.
  auto qualifier =
      MoleculeQualifier::Create(db_, *md_, e::Lit(true));
  ASSERT_TRUE(qualifier.ok());
  const Molecule& m = molecules_[0];
  auto count = qualifier->EvalResolved(
      *e::Ge(e::Count("bogus"), e::Lit(int64_t{0})), m);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(count.status().message().find("unresolved qualifier 'bogus'"),
            std::string::npos);
  auto forall = qualifier->EvalResolved(
      *e::ForAll("bogus", e::Lit(true)), m);
  EXPECT_FALSE(forall.ok());
  auto existential = qualifier->EvalResolved(
      *e::Eq(e::Attr("bogus", "name"), e::Lit("x")), m);
  EXPECT_FALSE(existential.ok());
}

TEST_F(CompileTest, SummaryAndIntrospection) {
  auto compiled = e::CompiledPredicate::Compile(
      db_, *md_,
      e::And(e::Eq(e::Attr("point", "name"), e::Lit("pn")),
             e::Ge(e::Count("edge"), e::Lit(int64_t{1}))));
  ASSERT_TRUE(compiled.ok());
  EXPECT_GT(compiled->instruction_count(), 0u);
  EXPECT_EQ(compiled->literal_count(), 2u);
  EXPECT_EQ(compiled->node_count(), 4u);
  // Only the point comparison loops; COUNT reads a group size.
  EXPECT_EQ(compiled->loop_nodes(), (std::vector<size_t>{3}));
  EXPECT_NE(compiled->Summary().find("ops"), std::string::npos);
  EXPECT_NE(compiled->Summary().find("point"), std::string::npos);
}

// ---- Differential property test --------------------------------------------

/// Random expression generator over the geo description. Draws valid and
/// deliberately broken references so acceptance parity is exercised along
/// with verdict parity.
class RandomExpr {
 public:
  explicit RandomExpr(uint64_t seed) : rng_(seed) {}

  e::ExprPtr Predicate(int depth) {
    switch (rng_() % (depth > 0 ? 6 : 2)) {
      case 0:
      case 1: {  // comparison
        auto op = static_cast<int>(rng_() % 6);
        e::ExprPtr lhs = Operand(depth);
        e::ExprPtr rhs = Operand(depth);
        switch (op) {
          case 0: return e::Eq(lhs, rhs);
          case 1: return e::Ne(lhs, rhs);
          case 2: return e::Lt(lhs, rhs);
          case 3: return e::Le(lhs, rhs);
          case 4: return e::Gt(lhs, rhs);
          default: return e::Ge(lhs, rhs);
        }
      }
      case 2:
        return e::And(Predicate(depth - 1), Predicate(depth - 1));
      case 3:
        return e::Or(Predicate(depth - 1), Predicate(depth - 1));
      case 4:
        return e::Not(Predicate(depth - 1));
      default:
        return e::ForAll(Label(), Predicate(depth - 1));
    }
  }

 private:
  e::ExprPtr Operand(int depth) {
    switch (rng_() % (depth > 0 ? 8 : 6)) {
      case 0: return e::Lit(static_cast<int64_t>(rng_() % 5));
      case 1: return e::Lit(static_cast<double>(rng_() % 7) - 3.0);
      case 2: {
        const char* strings[] = {"pn", "SP", "a7", "e12", "zz"};
        return e::Lit(strings[rng_() % std::size(strings)]);
      }
      case 3: return e::Lit(rng_() % 2 == 0);
      case 4: {  // attribute reference, occasionally broken or ambiguous
        struct Ref { const char* qualifier; const char* attribute; };
        const Ref refs[] = {
            {"state", "name"}, {"state", "hectare"}, {"area", "name"},
            {"area", "hectare"}, {"edge", "name"},   {"point", "name"},
            {"point", "x"},     {"point", "y"},      {"", "x"},
            {"", "y"},          {"", "hectare"},     {"", "name"},
            {"bogus", "name"},
        };
        const Ref& ref = refs[rng_() % std::size(refs)];
        return *ref.qualifier == '\0' ? e::Attr(ref.attribute)
                                      : e::Attr(ref.qualifier, ref.attribute);
      }
      case 5: return e::Count(Label());
      default: {  // arithmetic
        e::ExprPtr lhs = Operand(depth - 1);
        e::ExprPtr rhs = Operand(depth - 1);
        switch (rng_() % 4) {
          case 0: return e::Add(lhs, rhs);
          case 1: return e::Sub(lhs, rhs);
          case 2: return e::Mul(lhs, rhs);
          default: return e::Div(lhs, rhs);
        }
      }
    }
  }

  std::string Label() {
    const char* labels[] = {"state", "area", "edge", "point", "bogus"};
    return labels[rng_() % std::size(labels)];
  }

  std::mt19937_64 rng_;
};

TEST_F(CompileTest, DifferentialRandomPredicatesAndMolecules) {
  // Degraded variants: random subsets per group (empty groups included)
  // exercise vacuous FORALL, failed existentials, and COUNT edge cases.
  std::mt19937_64 rng(20260806);
  std::vector<Molecule> set = molecules_;
  for (const Molecule& m : molecules_) {
    Molecule variant(m.root(), m.node_count());
    for (size_t n = 0; n < m.node_count(); ++n) {
      for (AtomId id : m.AtomsOf(n)) {
        if (rng() % 3 != 0) variant.MutableAtomsOf(n).push_back(id);
      }
    }
    set.push_back(std::move(variant));
  }

  RandomExpr gen(424242);
  size_t accepted = 0;
  for (int round = 0; round < 300; ++round) {
    e::ExprPtr predicate = gen.Predicate(3);
    ExpectAgreement(predicate, set);
    if (e::CompiledPredicate::Compile(db_, *md_, predicate).ok()) ++accepted;
    if (HasFatalFailure()) {
      ADD_FAILURE() << "diverged on: " << predicate->ToString();
      return;
    }
  }
  // The generator must produce plenty of valid predicates for the parity
  // check to mean anything.
  EXPECT_GT(accepted, 100u);
}

}  // namespace
}  // namespace mad
