// Determinism of the parallel derivation engine: for every thread count the
// output must be bit-for-bit the same — same molecules, same atom order
// within each node group, same link order. The fan-out writes into
// pre-sized per-root slots, so thread scheduling can never reorder results;
// these tests pin that guarantee against the Fig. 2 geo descriptions and a
// shared-subobject BOM DAG.

#include <gtest/gtest.h>

#include <vector>

#include "molecule/derivation.h"
#include "molecule/description.h"
#include "workload/bom.h"
#include "workload/geo.h"

namespace mad {
namespace {

/// Order-sensitive equality, stricter than Molecule::operator== (which is
/// set-semantic via CanonicalKey).
bool ExactlyEqual(const Molecule& a, const Molecule& b) {
  if (a.root() != b.root() || a.node_count() != b.node_count()) return false;
  for (size_t i = 0; i < a.node_count(); ++i) {
    if (a.AtomsOf(i) != b.AtomsOf(i)) return false;
  }
  return a.links() == b.links();
}

void ExpectIdenticalRuns(const Database& db, const MoleculeDescription& md) {
  DerivationStats serial_stats;
  auto serial =
      DeriveMolecules(db, md, DerivationOptions{1}, &serial_stats);
  ASSERT_TRUE(serial.ok()) << serial.status();

  for (unsigned parallelism : {2u, 8u}) {
    DerivationStats stats;
    auto parallel =
        DeriveMolecules(db, md, DerivationOptions{parallelism}, &stats);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ASSERT_EQ(parallel->size(), serial->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_TRUE(ExactlyEqual((*serial)[i], (*parallel)[i]))
          << "molecule " << i << " differs at parallelism " << parallelism;
      EXPECT_TRUE(ValidateMolecule(db, md, (*parallel)[i]).ok());
    }
    // Every counter except wall_ms is thread-count independent.
    EXPECT_EQ(stats.roots, serial_stats.roots);
    EXPECT_EQ(stats.atoms_visited, serial_stats.atoms_visited);
    EXPECT_EQ(stats.links_scanned, serial_stats.links_scanned);
  }
}

TEST(DerivationParallelTest, GeoChainIsThreadCountInvariant) {
  Database db("GEO_DB");
  auto ids = workload::BuildFigure4GeoDatabase(db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  auto md = MoleculeDescription::CreateFromTypes(
      db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md.ok()) << md.status();
  ExpectIdenticalRuns(db, *md);
}

TEST(DerivationParallelTest, GeoBranchingIsThreadCountInvariant) {
  Database db("GEO_DB");
  auto ids = workload::BuildFigure4GeoDatabase(db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  // point-edge-(area-state,net-river): branches plus conjunctive reverse
  // traversals — the hardest Fig. 2 shape.
  auto md = MoleculeDescription::CreateFromTypes(
      db, {"point", "edge", "area", "state", "net", "river"},
      {{"edge-point", "point", "edge", false},
       {"area-edge", "edge", "area", false},
       {"state-area", "area", "state", false},
       {"net-edge", "edge", "net", false},
       {"river-net", "net", "river", false}});
  ASSERT_TRUE(md.ok()) << md.status();
  ExpectIdenticalRuns(db, *md);
}

TEST(DerivationParallelTest, SharedBomDagIsThreadCountInvariant) {
  Database db("BOM_DB");
  workload::BomScale scale;
  scale.roots = 12;
  scale.depth = 4;
  scale.fanout = 3;
  scale.share_fraction = 0.4;  // force shared subobjects
  auto stats = workload::GenerateBom(db, scale);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Two-level super-component view over the reflexive composition link
  // (stored <super, sub>, so forward traversal descends).
  auto md = MoleculeDescription::Create(
      db,
      {{"part", "part", std::nullopt},
       {"part", "sub", std::nullopt},
       {"part", "subsub", std::nullopt}},
      {{"composition", "part", "sub", false},
       {"composition", "sub", "subsub", false}});
  ASSERT_TRUE(md.ok()) << md.status();
  ExpectIdenticalRuns(db, *md);
}

TEST(DerivationParallelTest, ForRootsKeepsCallerOrderAtAnyParallelism) {
  Database db("BOM_DB");
  workload::BomScale scale;
  scale.roots = 8;
  scale.depth = 3;
  auto stats = workload::GenerateBom(db, scale);
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto md = MoleculeDescription::Create(
      db, {{"part", "part", std::nullopt}, {"part", "sub", std::nullopt}},
      {{"composition", "part", "sub", false}});
  ASSERT_TRUE(md.ok()) << md.status();

  // Request roots in reverse order: slots must follow the request order.
  std::vector<AtomId> roots(stats->roots.rbegin(), stats->roots.rend());
  auto serial = DeriveMoleculesForRoots(db, *md, roots, DerivationOptions{1});
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto parallel = DeriveMoleculesForRoots(db, *md, roots, DerivationOptions{8});
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(serial->size(), roots.size());
  ASSERT_EQ(parallel->size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ((*serial)[i].root(), roots[i]);
    EXPECT_TRUE(ExactlyEqual((*serial)[i], (*parallel)[i])) << "slot " << i;
  }
}

}  // namespace
}  // namespace mad
