#include "relational/rel_algebra.h"

#include <gtest/gtest.h>

#include <set>

#include "relational/bridge.h"
#include "workload/geo.h"

namespace mad {
namespace e = expr;
namespace {

rel::Relation States() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  EXPECT_TRUE(s.AddAttribute("hectare", DataType::kInt64).ok());
  rel::Relation r(std::move(s));
  EXPECT_TRUE(r.Insert({Value("SP"), Value(int64_t{1000})}).ok());
  EXPECT_TRUE(r.Insert({Value("MG"), Value(int64_t{900})}).ok());
  EXPECT_TRUE(r.Insert({Value("BA"), Value(int64_t{1500})}).ok());
  return r;
}

std::set<std::string> Names(const rel::Relation& r, const std::string& attr) {
  std::set<std::string> names;
  size_t idx = *r.schema().IndexOf(attr);
  for (const auto& t : r.tuples()) names.insert(t[idx].AsString());
  return names;
}

TEST(RelationTest, SetSemanticsOnInsert) {
  rel::Relation r = States();
  EXPECT_EQ(r.size(), 3u);
  auto dup = r.Insert({Value("SP"), Value(int64_t{1000})});
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(*dup);  // duplicate collapsed
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains({Value("SP"), Value(int64_t{1000})}));
  EXPECT_FALSE(r.Contains({Value("SP"), Value(int64_t{1})}));
  // Schema validation on insert.
  EXPECT_FALSE(r.Insert({Value(int64_t{1}), Value(int64_t{1})}).ok());
}

TEST(RelationTest, EqualityIsOrderInsensitive) {
  rel::Relation a = States();
  Schema s;
  ASSERT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(s.AddAttribute("hectare", DataType::kInt64).ok());
  rel::Relation b(std::move(s));
  ASSERT_TRUE(b.Insert({Value("BA"), Value(int64_t{1500})}).ok());
  ASSERT_TRUE(b.Insert({Value("SP"), Value(int64_t{1000})}).ok());
  ASSERT_TRUE(b.Insert({Value("MG"), Value(int64_t{900})}).ok());
  EXPECT_TRUE(a == b);
}

TEST(RelAlgebraTest, ProjectEliminatesDuplicates) {
  rel::Relation r = States();
  ASSERT_TRUE(r.Insert({Value("SP2"), Value(int64_t{1000})}).ok());
  auto p = rel::Project(r, {"hectare"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 3u);  // 1000 appears once
}

TEST(RelAlgebraTest, RestrictMatchesMadSemantics) {
  auto big = rel::Restrict(
      States(), e::Gt(e::Attr("hectare"), e::Lit(int64_t{950})));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(Names(*big, "name"), (std::set<std::string>{"SP", "BA"}));
  EXPECT_FALSE(rel::Restrict(States(), nullptr).ok());
  EXPECT_FALSE(
      rel::Restrict(States(), e::Gt(e::Attr("bogus"), e::Lit(int64_t{0})))
          .ok());
}

TEST(RelAlgebraTest, SetOperations) {
  rel::Relation a = States();
  rel::Relation b = States();
  auto u = rel::Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);

  auto big = rel::Restrict(a, e::Gt(e::Attr("hectare"), e::Lit(int64_t{950})));
  ASSERT_TRUE(big.ok());
  auto d = rel::Difference(a, *big);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(Names(*d, "name"), std::set<std::string>{"MG"});
  auto i = rel::Intersection(a, *big);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->size(), 2u);
}

TEST(RelAlgebraTest, CartesianProductAndRename) {
  rel::Relation a = States();
  auto renamed = rel::Rename(a, {{"name", "n2"}, {"hectare", "h2"}});
  ASSERT_TRUE(renamed.ok());
  auto x = rel::CartesianProduct(a, *renamed);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->size(), 9u);
  EXPECT_EQ(x->schema().attribute_count(), 4u);
  // Without rename the product is rejected.
  EXPECT_FALSE(rel::CartesianProduct(a, a).ok());
}

TEST(RelAlgebraTest, EquiJoin) {
  Schema cap_schema;
  ASSERT_TRUE(cap_schema.AddAttribute("city", DataType::kString).ok());
  ASSERT_TRUE(cap_schema.AddAttribute("state_name", DataType::kString).ok());
  rel::Relation capitals(std::move(cap_schema));
  ASSERT_TRUE(capitals.Insert({Value("Sao Paulo"), Value("SP")}).ok());
  ASSERT_TRUE(capitals.Insert({Value("Salvador"), Value("BA")}).ok());
  ASSERT_TRUE(capitals.Insert({Value("Nowhere"), Value("XX")}).ok());

  auto j = rel::EquiJoin(States(), "name", capitals, "state_name");
  ASSERT_TRUE(j.ok()) << j.status();
  EXPECT_EQ(j->size(), 2u);
  EXPECT_EQ(Names(*j, "city"), (std::set<std::string>{"Sao Paulo", "Salvador"}));
  EXPECT_FALSE(rel::EquiJoin(States(), "bogus", capitals, "state_name").ok());
}

TEST(RelAlgebraTest, NaturalJoin) {
  Schema pop_schema;
  ASSERT_TRUE(pop_schema.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(pop_schema.AddAttribute("population", DataType::kInt64).ok());
  rel::Relation pops(std::move(pop_schema));
  ASSERT_TRUE(pops.Insert({Value("SP"), Value(int64_t{44})}).ok());
  ASSERT_TRUE(pops.Insert({Value("MG"), Value(int64_t{21})}).ok());

  auto j = rel::NaturalJoin(States(), pops);
  ASSERT_TRUE(j.ok()) << j.status();
  EXPECT_EQ(j->size(), 2u);
  EXPECT_EQ(j->schema().attribute_count(), 3u);
  EXPECT_TRUE(j->schema().HasAttribute("population"));
}

TEST(RelationalDatabaseTest, DefineInsertLookup) {
  rel::RelationalDatabase db("test");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(db.Define("t", std::move(s)).ok());
  EXPECT_EQ(db.Define("t", Schema()).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.Insert("t", {Value("a")}).ok());
  ASSERT_TRUE(db.Insert("t", {Value("a")}).ok());  // dup collapses, no error
  EXPECT_EQ((*db.Get("t"))->size(), 1u);
  EXPECT_FALSE(db.Get("missing").ok());
  EXPECT_EQ(db.total_tuple_count(), 1u);
}

TEST(BridgeTest, TransformFigure4Database) {
  Database db("GEO_DB");
  auto ids = workload::BuildFigure4GeoDatabase(db);
  ASSERT_TRUE(ids.ok());

  rel::TransformStats stats;
  auto rdb = rel::TransformToRelational(db, &stats);
  ASSERT_TRUE(rdb.ok()) << rdb.status();
  EXPECT_EQ(stats.entity_relations, 7u);
  EXPECT_EQ(stats.auxiliary_relations, 6u)
      << "every link type costs an auxiliary relation on the relational side";
  EXPECT_EQ(rdb->relation_count(), 13u);
  EXPECT_EQ(stats.tuples, db.total_atom_count() + db.total_link_count());

  // Round-trip check on one value: SP exists in the 'state' relation.
  auto state = rdb->Get("state");
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE((*state)->schema().HasAttribute("_id"));
  EXPECT_EQ(Names(**state, "name").count("SP"), 1u);

  // Traversal needs a two-join plan: state ⋈ state-area ⋈ area.
  auto aux = rdb->Get("state-area");
  ASSERT_TRUE(aux.ok());
  auto j1 = rel::EquiJoin(**state, "_id", **aux, "_from");
  ASSERT_TRUE(j1.ok()) << j1.status();
  auto area =
      rel::Rename(**rdb->Get("area"),
                  {{"_id", "_aid"}, {"name", "aname"}, {"hectare", "ahectare"}});
  ASSERT_TRUE(area.ok());
  auto j2 = rel::EquiJoin(*j1, "_to", *area, "_aid");
  ASSERT_TRUE(j2.ok()) << j2.status();
  EXPECT_EQ(j2->size(), 10u);  // one area per state
}

TEST(BridgeTest, DegenerationAtomTypeAsRelation) {
  // Fig. 3: an atom type without links degenerates to a relation.
  Database db("FLAT");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(db.DefineAtomType("t", std::move(s)).ok());
  ASSERT_TRUE(db.InsertAtom("t", {Value("a")}).ok());
  ASSERT_TRUE(db.InsertAtom("t", {Value("a")}).ok());  // same values, new id
  ASSERT_TRUE(db.InsertAtom("t", {Value("b")}).ok());

  auto with_id = rel::AtomTypeToRelation(db, "t", true);
  ASSERT_TRUE(with_id.ok());
  EXPECT_EQ(with_id->size(), 3u);  // identity keeps both 'a' atoms

  auto value_only = rel::AtomTypeToRelation(db, "t", false);
  ASSERT_TRUE(value_only.ok());
  EXPECT_EQ(value_only->size(), 2u)  // pure relational view collapses them
      << "the value projection of an atom type is a relation (set)";
}

}  // namespace
}  // namespace mad
