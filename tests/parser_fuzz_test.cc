// Robustness suite: the MQL front end must return ParseError statuses — and
// never crash, hang, or accept garbage — for arbitrary byte soup, token
// soup, and truncations of valid statements.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "expr/compile.h"
#include "molecule/derivation.h"
#include "molecule/description.h"
#include "molecule/qualification.h"
#include "mql/parser.h"
#include "mql/sema.h"
#include "mql/session.h"
#include "workload/geo.h"

namespace mad {
namespace mql {
namespace {

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  std::mt19937_64 rng(2026);
  for (int round = 0; round < 2000; ++round) {
    size_t len = rng() % 120;
    std::string text;
    text.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      text += static_cast<char>(rng() % 127 + 1);  // skip NUL
    }
    auto result = ParseStatement(text);
    // Any status is fine; crashes and hangs are the failure mode.
    (void)result;
  }
}

TEST(ParserFuzzTest, TokenSoupNeverCrashes) {
  const char* fragments[] = {
      "SELECT", "ALL",  "FROM",   "WHERE",  "(",      ")",     ",",
      ";",      "-",    "*",      ".",      "'x'",    "42",    "3.5",
      "state",  "area", "[a-b]",  "AND",    "OR",     "NOT",   "=",
      "<=",     "!=",   "CREATE", "INSERT", "DELETE", "UPDATE", "EXPLAIN",
      "VALUES", "SET",  "LINK",   "TYPE",   "INTO",   "TO",    "[c*]",
  };
  std::mt19937_64 rng(7);
  for (int round = 0; round < 2000; ++round) {
    std::string text;
    size_t tokens = rng() % 24;
    for (size_t i = 0; i < tokens; ++i) {
      text += fragments[rng() % std::size(fragments)];
      text += ' ';
    }
    auto result = ParseStatement(text);
    (void)result;
  }
}

TEST(ParserFuzzTest, TruncationsOfValidStatementsFailCleanly) {
  const std::string statements[] = {
      "SELECT ALL FROM mt_state(state-area-edge-point) "
      "WHERE state.hectare > 1000 AND point.name = 'pn';",
      "CREATE ATOM TYPE t (a STRING, b INT64);",
      "CREATE LINK TYPE l (t, t, '1:n');",
      "INSERT LINK l FROM (a = 'x') TO (a = 'y');",
      "UPDATE t SET b = b + 1 WHERE a != 'z';",
      "EXPLAIN SELECT x.name FROM q(x-y) WHERE y.v <= 3.5;",
  };
  for (const std::string& statement : statements) {
    // The full statement must parse.
    ASSERT_TRUE(ParseStatement(statement).ok()) << statement;
    // Every proper prefix must fail with ParseError (or, for prefixes
    // ending exactly at a statement boundary, parse fine) — never crash.
    for (size_t len = 0; len < statement.size(); ++len) {
      auto result = ParseStatement(statement.substr(0, len));
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kParseError)
            << statement.substr(0, len);
      }
    }
  }
}

TEST(ParserFuzzTest, SessionSurvivesGarbageAgainstRealDatabase) {
  Database db("GEO_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  Session session(&db);
  std::mt19937_64 rng(99);

  // Statements that parse but reference nonsense must fail with clean
  // statuses and leave the database consistent.
  const char* nasty[] = {
      "SELECT ALL FROM nope;",
      "SELECT ALL FROM state-bogus;",
      "SELECT ALL FROM state-[nope]-area;",
      "SELECT nothing FROM m(state-area);",
      "SELECT ALL FROM m(state-area) WHERE ghost.attr = 1;",
      "INSERT INTO state VALUES ('only-one-value');",
      "INSERT LINK ghost FROM (name='x') TO (name='y');",
      "UPDATE state SET hectare = 'not a number';",
      "DELETE FROM ghost;",
      "SELECT ALL FROM part-[composition*];",
      "SELECT ALL FROM state-area-state;",
  };
  for (const char* statement : nasty) {
    auto result = session.Execute(statement);
    EXPECT_FALSE(result.ok()) << statement;
  }
  EXPECT_TRUE(db.CheckConsistency().ok());
  // The session still works afterwards.
  auto ok = session.Execute("SELECT ALL FROM state;");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->molecules->size(), 10u);
  (void)rng;
}

// Whatever the parser accepts, the analyzer must survive: fuzzed token soup
// that happens to parse goes through AnalyzeStatement against a real
// catalog, and the only failure mode is a crash or hang.
TEST(ParserFuzzTest, AnalyzerSurvivesFuzzedStatements) {
  Database db("GEO_SEMA_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  const std::map<std::string, MoleculeDescription> registry;

  // Grammar-directed soup: each slot draws from a pool that mixes valid,
  // misspelled, ill-typed, and structurally absurd fragments, so most
  // statements parse and the analyzer sees the whole diagnostic space.
  const char* projections[] = {
      "ALL", "state.name", "bogus.x", "state.name, area.aname",
      "root.hectare", "statee.name",
  };
  const char* froms[] = {
      "state",
      "statee",
      "m1(state-area)",
      "m1(state-[state-area]-area)",
      "m2(state-area-edge-point)",
      "m3(state-[ghostlink]-area)",
      "m4(state-point)",
      "state-[state-area*]",
      "state-[state-area*2]",
      "state-[state-area*0]-area",
      "state(state-area)",
  };
  const char* predicates[] = {
      "name = 'x'",
      "hectare + 1",
      "name > 3",
      "hectare > 3.5",
      "COUNT(state) > 1",
      "COUNT(bogus) = 0",
      "FORALL area (aname = 'x')",
      "FORALL area (state.name = 'x')",
      "FORALL area (FORALL area (aname = 'x'))",
      "ghost.attr = 1",
      "state.name = area.aname",
      "NOT hectare < 2",
      "hectare + name = 2",
      "root.name != 'y'",
  };
  std::mt19937_64 rng(2027);
  size_t analyzed = 0;
  for (int round = 0; round < 4000; ++round) {
    std::string text = "SELECT ";
    text += projections[rng() % std::size(projections)];
    text += " FROM ";
    text += froms[rng() % std::size(froms)];
    if (rng() % 2 == 0) {
      text += " WHERE ";
      text += predicates[rng() % std::size(predicates)];
      if (rng() % 3 == 0) {
        text += rng() % 2 == 0 ? " AND " : " OR ";
        text += predicates[rng() % std::size(predicates)];
      }
    }
    text += ";";
    auto statement = ParseStatement(text);
    if (!statement.ok()) continue;
    ++analyzed;
    // Any diagnostics (or none) are fine; crashes are the failure mode.
    auto diags = AnalyzeStatement(db, registry, *statement);
    for (const auto& diag : diags) {
      EXPECT_NE(diag.code(), nullptr);
      EXPECT_FALSE(diag.message.empty()) << text;
    }
  }
  // The pools are parser-shaped: the overwhelming majority must reach the
  // analyzer for this test to mean anything.
  EXPECT_GT(analyzed, 3000u);
}

// Whatever WHERE clause the parser accepts, the predicate compiler must
// survive too — and whenever it compiles, it must agree with the tree
// interpreter on every derived molecule. This drives the compiler with
// parser-shaped predicate soup rather than hand-built expression trees.
TEST(ParserFuzzTest, CompilerSurvivesAndMatchesInterpreterOnFuzzedWhere) {
  Database db("GEO_COMPILE_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  auto md = MoleculeDescription::CreateFromTypes(
      db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md.ok());
  auto molecules = DeriveMolecules(db, *md);
  ASSERT_TRUE(molecules.ok());

  const char* predicates[] = {
      "name = 'x'",
      "hectare > 3.5",
      "state.hectare + 1 > area.hectare",
      "COUNT(point) > COUNT(edge)",
      "COUNT(bogus) = 0",
      "FORALL point (point.x >= 0)",
      "FORALL area (state.name = 'x')",
      "FORALL area (FORALL area (area.name = 'x'))",
      "ghost.attr = 1",
      "state.name = area.name",
      "NOT state.hectare < 2",
      "state.hectare + state.name = 2",
      "point.x / 0.0 > 1",
      "edge.name != 'e12'",
  };
  std::mt19937_64 rng(2028);
  size_t compiled_count = 0;
  for (int round = 0; round < 600; ++round) {
    std::string text = "SELECT ALL FROM m(state-area-edge-point) WHERE ";
    text += predicates[rng() % std::size(predicates)];
    for (size_t extra = rng() % 3; extra > 0; --extra) {
      text += rng() % 2 == 0 ? " AND " : " OR ";
      text += predicates[rng() % std::size(predicates)];
    }
    text += ";";
    auto statement = ParseStatement(text);
    if (!statement.ok()) continue;
    const auto* select = std::get_if<SelectStatement>(&*statement);
    ASSERT_NE(select, nullptr) << text;

    auto interpreter = MoleculeQualifier::Create(db, *md, select->where);
    auto program = expr::CompiledPredicate::Compile(db, *md, select->where);
    ASSERT_EQ(interpreter.ok(), program.ok()) << text;
    if (!program.ok()) {
      EXPECT_EQ(interpreter.status().message(), program.status().message())
          << text;
      continue;
    }
    ++compiled_count;
    expr::CompiledPredicate::Scratch scratch;
    for (const Molecule& m : *molecules) {
      Result<bool> expected = interpreter->Matches(m);
      Result<bool> actual = program->EvalMolecule(m, scratch);
      ASSERT_EQ(expected.ok(), actual.ok()) << text;
      if (expected.ok()) {
        EXPECT_EQ(*expected, *actual) << text;
      } else {
        EXPECT_EQ(expected.status().message(), actual.status().message())
            << text;
      }
    }
  }
  EXPECT_GT(compiled_count, 200u);
}

// Truncation sweep, but through the analyzer: every prefix that parses
// must analyze without crashing — including prefixes that cut a statement
// at a semantically absurd point.
TEST(ParserFuzzTest, AnalyzerSurvivesTruncatedStatements) {
  Database db("GEO_SEMA_TRUNC_DB");
  ASSERT_TRUE(workload::BuildFigure4GeoDatabase(db).ok());
  const std::map<std::string, MoleculeDescription> registry;

  const std::string statements[] = {
      "SELECT ALL FROM mt_state(state-area-edge-point) "
      "WHERE state.hectare > 1000 AND FORALL point (point.name = 'pn');",
      "SELECT ALL FROM state-[sa*3] WHERE root.hectare + 1 > 2;",
      "UPDATE state SET hectare = hectare + 1 WHERE COUNT(state) = 1;",
      "INSERT INTO state VALUES ('x', 1), ('y', 2);",
  };
  for (const std::string& statement : statements) {
    for (size_t len = 0; len <= statement.size(); ++len) {
      auto prefix = ParseStatement(statement.substr(0, len) + ";");
      if (!prefix.ok()) continue;
      (void)AnalyzeStatement(db, registry, *prefix);
    }
  }
}

}  // namespace
}  // namespace mql
}  // namespace mad
