#include "core/schema.h"

#include <gtest/gtest.h>

namespace mad {
namespace {

Schema StateSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  EXPECT_TRUE(s.AddAttribute("hectare", DataType::kInt64).ok());
  return s;
}

TEST(SchemaTest, AddAndLookup) {
  Schema s = StateSchema();
  EXPECT_EQ(s.attribute_count(), 2u);
  ASSERT_TRUE(s.IndexOf("name").ok());
  EXPECT_EQ(*s.IndexOf("name"), 0u);
  EXPECT_EQ(*s.IndexOf("hectare"), 1u);
  EXPECT_TRUE(s.HasAttribute("hectare"));
  EXPECT_FALSE(s.HasAttribute("missing"));
  EXPECT_EQ(s.IndexOf("missing").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RejectsDuplicateAttribute) {
  Schema s = StateSchema();
  EXPECT_EQ(s.AddAttribute("name", DataType::kString).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsNullType) {
  Schema s;
  EXPECT_EQ(s.AddAttribute("x", DataType::kNull).code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, Project) {
  Schema s = StateSchema();
  auto p = s.Project({"hectare"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attribute_count(), 1u);
  EXPECT_EQ(p->attribute(0).name, "hectare");
  EXPECT_EQ(p->attribute(0).type, DataType::kInt64);

  EXPECT_FALSE(s.Project({"bogus"}).ok());
  EXPECT_FALSE(s.Project({"name", "name"}).ok());
}

TEST(SchemaTest, ProjectPreservesRequestedOrder) {
  Schema s = StateSchema();
  auto p = s.Project({"hectare", "name"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attribute(0).name, "hectare");
  EXPECT_EQ(p->attribute(1).name, "name");
}

TEST(SchemaTest, ConcatDisjoint) {
  Schema a = StateSchema();
  Schema b;
  ASSERT_TRUE(b.AddAttribute("length", DataType::kDouble).ok());
  auto c = a.ConcatDisjoint(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->attribute_count(), 3u);
  EXPECT_EQ(c->attribute(2).name, "length");

  // Name collision must be rejected (Def. 4: disjoint in pairs).
  Schema clash;
  ASSERT_TRUE(clash.AddAttribute("name", DataType::kString).ok());
  EXPECT_EQ(a.ConcatDisjoint(clash).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, Rename) {
  Schema s = StateSchema();
  EXPECT_TRUE(s.RenameAttribute("name", "state_name").ok());
  EXPECT_TRUE(s.HasAttribute("state_name"));
  EXPECT_FALSE(s.HasAttribute("name"));
  EXPECT_EQ(*s.IndexOf("state_name"), 0u);

  EXPECT_EQ(s.RenameAttribute("missing", "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(s.RenameAttribute("state_name", "hectare").code(),
            StatusCode::kAlreadyExists);
  // Renaming to itself is a no-op.
  EXPECT_TRUE(s.RenameAttribute("hectare", "hectare").ok());
}

TEST(SchemaTest, EqualityIsOrderSensitive) {
  Schema a = StateSchema();
  Schema b = StateSchema();
  EXPECT_EQ(a, b);

  Schema c;
  ASSERT_TRUE(c.AddAttribute("hectare", DataType::kInt64).ok());
  ASSERT_TRUE(c.AddAttribute("name", DataType::kString).ok());
  EXPECT_NE(a, c);
}

TEST(SchemaTest, ValidateRow) {
  Schema s = StateSchema();
  EXPECT_TRUE(s.ValidateRow({Value("SP"), Value(int64_t{100})}).ok());
  // Arity mismatch.
  EXPECT_EQ(s.ValidateRow({Value("SP")}).code(), StatusCode::kInvalidArgument);
  // Type mismatch.
  EXPECT_EQ(s.ValidateRow({Value(int64_t{1}), Value(int64_t{2})}).code(),
            StatusCode::kInvalidArgument);
  // Nulls are allowed anywhere.
  EXPECT_TRUE(s.ValidateRow({Value(), Value()}).ok());
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(StateSchema().ToString(), "{name: STRING, hectare: INT64}");
  EXPECT_EQ(Schema().ToString(), "{}");
}

}  // namespace
}  // namespace mad
