#include <gtest/gtest.h>

#include "molecule/recursive.h"
#include "mql/session.h"
#include "workload/bom.h"

namespace mad {
namespace {

/// Car BOM plus suppliers: engine and bolt have suppliers, linked n:m.
class ExpansionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildCarBom(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
    Schema s;
    ASSERT_TRUE(s.AddAttribute("company", DataType::kString).ok());
    ASSERT_TRUE(db_.DefineAtomType("supplier", std::move(s)).ok());
    ASSERT_TRUE(db_.DefineLinkType("supplies", "supplier", "part").ok());
    acme_ = *db_.InsertAtom("supplier", {Value("Acme")});
    bolts_inc_ = *db_.InsertAtom("supplier", {Value("Bolts Inc")});
    ASSERT_TRUE(db_.InsertLink("supplies", acme_, ids_["engine"]).ok());
    ASSERT_TRUE(db_.InsertLink("supplies", bolts_inc_, ids_["bolt"]).ok());
    ASSERT_TRUE(db_.InsertLink("supplies", acme_, ids_["bolt"]).ok());
  }

  RecursiveDescription Explosion() {
    return RecursiveDescription{"part", "composition",
                                LinkDirection::kForward, -1};
  }
  MoleculeDescription PartWithSuppliers() {
    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"part", "supplier"},
        {{"supplies", "part", "supplier", true}});
    EXPECT_TRUE(md.ok()) << md.status();
    return *md;
  }

  Database db_{"BOM"};
  std::map<std::string, AtomId> ids_;
  AtomId acme_, bolts_inc_;
};

TEST_F(ExpansionTest, LibraryLevelExpansion) {
  auto m = DeriveExpandedRecursiveMoleculeFor(db_, Explosion(),
                                              PartWithSuppliers(),
                                              ids_["car"]);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->closure.atom_count(), 5u);
  ASSERT_EQ(m->components.size(), 5u);

  // Each component molecule is rooted at its closure member; the bolt
  // component carries both suppliers.
  size_t supplier_idx = 1;  // node order: part, supplier
  size_t with_suppliers = 0;
  for (const Molecule& component : m->components) {
    if (component.root() == ids_["bolt"]) {
      EXPECT_EQ(component.AtomsOf(supplier_idx).size(), 2u);
      ++with_suppliers;
    }
    if (component.root() == ids_["engine"]) {
      EXPECT_EQ(component.AtomsOf(supplier_idx).size(), 1u);
      ++with_suppliers;
    }
  }
  EXPECT_EQ(with_suppliers, 2u);
}

TEST_F(ExpansionTest, ExpansionValidatesRootType) {
  auto md = MoleculeDescription::CreateFromTypes(
      db_, {"supplier", "part"},
      {{"supplies", "supplier", "part", false}});
  ASSERT_TRUE(md.ok());
  // Expansion rooted at 'supplier', recursion over 'part' — rejected.
  EXPECT_EQ(DeriveExpandedRecursiveMoleculeFor(db_, Explosion(), *md,
                                               ids_["car"])
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExpansionTest, DeriveAllExpanded) {
  auto all =
      DeriveExpandedRecursiveMolecules(db_, Explosion(), PartWithSuppliers());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 5u);  // one per part
  for (const ExpandedRecursiveMolecule& m : *all) {
    EXPECT_EQ(m.components.size(), m.closure.atom_count());
  }
}

TEST_F(ExpansionTest, MqlExpansionTail) {
  mql::Session session(&db_);
  auto result = session.Execute(
      "SELECT ALL FROM part-[composition*]-[supplies~]-supplier "
      "WHERE root.name = 'car';");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->kind, mql::QueryResult::Kind::kRecursive);
  ASSERT_EQ(result->recursive.size(), 1u);
  ASSERT_EQ(result->recursive_components.size(), 1u);
  EXPECT_EQ(result->recursive_components[0].size(), 5u);
  ASSERT_TRUE(result->expansion_description.has_value());
  EXPECT_EQ(result->expansion_description->root_label(), "part");

  // The expanded components include the bolt's two suppliers.
  size_t supplier_idx =
      *result->expansion_description->NodeIndex("supplier");
  bool found_bolt = false;
  for (const Molecule& component : result->recursive_components[0]) {
    if (component.root() == ids_["bolt"]) {
      EXPECT_EQ(component.AtomsOf(supplier_idx).size(), 2u);
      found_bolt = true;
    }
  }
  EXPECT_TRUE(found_bolt);
}

TEST_F(ExpansionTest, MqlExplainShowsExpansion) {
  mql::Session session(&db_);
  auto plan = session.Execute(
      "EXPLAIN SELECT ALL FROM part-[composition*]-[supplies~]-supplier;");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->message.find("closure[part, composition, forward"),
            std::string::npos);
  EXPECT_NE(plan->message.find("expand-each[part-supplier]"),
            std::string::npos)
      << plan->message;
}

TEST_F(ExpansionTest, MqlRejectsNestedRecursionInExpansion) {
  mql::Session session(&db_);
  EXPECT_FALSE(
      session.Execute("SELECT ALL FROM part-[composition*]-[composition*];")
          .ok());
}

}  // namespace
}  // namespace mad
