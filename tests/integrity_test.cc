// Failure-injection / fuzz suite: random mutation sequences against the
// Figure-1 schema must never break the database invariants (no dangling
// links, schema-valid atoms, index agreement), and molecule derivation over
// the mutated network must keep producing valid molecules.

#include <gtest/gtest.h>

#include <random>

#include "molecule/derivation.h"
#include "workload/geo.h"

namespace mad {
namespace {

class IntegrityFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("FUZZ");
    workload::GeoScale scale;
    scale.states = 15;
    scale.rivers = 4;
    scale.seed = GetParam();
    auto stats = workload::GenerateScaledGeo(*db_, scale);
    ASSERT_TRUE(stats.ok());
    ASSERT_TRUE(db_->CreateIndex("state", "hectare").ok());
    ASSERT_TRUE(db_->CreateIndex("point", "name").ok());
    rng_.seed(GetParam() * 7919 + 13);
  }

  AtomId RandomAtomOf(const std::string& aname) {
    auto at = db_->GetAtomType(aname);
    if (!at.ok() || (*at)->occurrence().empty()) return AtomId::Invalid();
    const auto& atoms = (*at)->occurrence().atoms();
    return atoms[rng_() % atoms.size()].id;
  }

  std::unique_ptr<Database> db_;
  std::mt19937_64 rng_;
};

TEST_P(IntegrityFuzzTest, RandomMutationsPreserveInvariants) {
  const std::string atom_types[] = {"state", "area", "edge", "point"};
  const struct {
    const char* lname;
    const char* first;
    const char* second;
  } link_types[] = {{"state-area", "state", "area"},
                    {"area-edge", "area", "edge"},
                    {"edge-point", "edge", "point"}};

  for (int step = 0; step < 400; ++step) {
    int action = static_cast<int>(rng_() % 6);
    switch (action) {
      case 0: {  // insert atom
        const std::string& aname = atom_types[rng_() % 4];
        const AtomType* at = *db_->GetAtomType(aname);
        std::vector<Value> values;
        for (const AttributeDescription& attr :
             at->description().attributes()) {
          switch (attr.type) {
            case DataType::kString:
              values.push_back(Value("f" + std::to_string(rng_() % 1000)));
              break;
            case DataType::kInt64:
              values.push_back(Value(static_cast<int64_t>(rng_() % 2000)));
              break;
            case DataType::kDouble:
              values.push_back(Value(static_cast<double>(rng_() % 1000)));
              break;
            default:
              values.push_back(Value(true));
          }
        }
        ASSERT_TRUE(db_->InsertAtom(aname, std::move(values)).ok());
        break;
      }
      case 1: {  // insert link (may legitimately collide)
        const auto& lt = link_types[rng_() % 3];
        AtomId first = RandomAtomOf(lt.first);
        AtomId second = RandomAtomOf(lt.second);
        if (!first.valid() || !second.valid()) break;
        Status s = db_->InsertLink(lt.lname, first, second);
        ASSERT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists) << s;
        break;
      }
      case 2: {  // delete atom (cascades links)
        const std::string& aname = atom_types[rng_() % 4];
        AtomId id = RandomAtomOf(aname);
        if (!id.valid()) break;
        ASSERT_TRUE(db_->DeleteAtom(aname, id).ok());
        break;
      }
      case 3: {  // update atom in place
        AtomId id = RandomAtomOf("state");
        if (!id.valid()) break;
        ASSERT_TRUE(db_->UpdateAtom("state", id,
                                    {Value("u" + std::to_string(step)),
                                     Value(static_cast<int64_t>(rng_() % 2000))})
                        .ok());
        break;
      }
      case 4: {  // erase a random existing link
        const auto& lt_desc = link_types[rng_() % 3];
        const LinkType* lt = *db_->GetLinkType(lt_desc.lname);
        if (lt->occurrence().empty()) break;
        const Link& link =
            lt->occurrence().links()[rng_() % lt->occurrence().size()];
        ASSERT_TRUE(db_->EraseLink(lt_desc.lname, link.first, link.second).ok());
        break;
      }
      case 5: {  // toggle an index
        if (db_->FindIndex("area", "name") == nullptr) {
          ASSERT_TRUE(db_->CreateIndex("area", "name").ok());
        } else {
          ASSERT_TRUE(db_->DropIndex("area", "name").ok());
        }
        break;
      }
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(db_->CheckConsistency().ok()) << "after step " << step;
    }
  }
  ASSERT_TRUE(db_->CheckConsistency().ok());

  // Derivation over the mutated network still yields valid molecules.
  auto md = MoleculeDescription::CreateFromTypes(
      *db_, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md.ok());
  auto mv = DeriveMolecules(*db_, *md);
  ASSERT_TRUE(mv.ok());
  EXPECT_EQ(mv->size(), (*db_->GetAtomType("state"))->occurrence().size());
  for (const Molecule& m : *mv) {
    ASSERT_TRUE(ValidateMolecule(*db_, *md, m).ok());
  }
}

TEST_P(IntegrityFuzzTest, DeletionStormLeavesNoDanglingLinks) {
  // Delete every edge atom: all three n:m link types must drain.
  std::vector<AtomId> edges;
  for (const Atom& atom : (*db_->GetAtomType("edge"))->occurrence().atoms()) {
    edges.push_back(atom.id);
  }
  std::shuffle(edges.begin(), edges.end(), rng_);
  for (AtomId id : edges) {
    ASSERT_TRUE(db_->DeleteAtom("edge", id).ok());
  }
  EXPECT_EQ((*db_->GetLinkType("area-edge"))->occurrence().size(), 0u);
  EXPECT_EQ((*db_->GetLinkType("net-edge"))->occurrence().size(), 0u);
  EXPECT_EQ((*db_->GetLinkType("edge-point"))->occurrence().size(), 0u);
  EXPECT_TRUE(db_->CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrityFuzzTest,
                         ::testing::Values(1, 2, 3, 11, 12345));

}  // namespace
}  // namespace mad
