#include "er/er_model.h"

#include <gtest/gtest.h>

namespace mad {
namespace {

TEST(ErSchemaTest, Validation) {
  er::ErSchema er;
  Schema s;
  ASSERT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(er.AddEntityType("a", s).ok());
  EXPECT_EQ(er.AddEntityType("a", s).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(er.AddEntityType("", s).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(er.AddEntityType("b", s).ok());
  ASSERT_TRUE(
      er.AddRelationshipType("r", "a", "b", er::Cardinality::kOneToMany).ok());
  EXPECT_EQ(
      er.AddRelationshipType("r", "a", "b", er::Cardinality::kOneToMany).code(),
      StatusCode::kAlreadyExists);
  EXPECT_EQ(er.AddRelationshipType("r2", "a", "missing",
                                   er::Cardinality::kOneToMany)
                .code(),
            StatusCode::kNotFound);
}

TEST(ErMappingTest, OneToOneMappingToMad) {
  // Ch. 2: entity type -> atom type, relationship type -> link type,
  // exactly one-to-one, no auxiliary structures.
  er::ErSchema er = er::Figure1ErSchema();
  Database db("GEO_FROM_ER");
  ASSERT_TRUE(er::MapToMad(er, db).ok());
  EXPECT_EQ(db.atom_type_count(), er.entity_types().size());
  EXPECT_EQ(db.link_type_count(), er.relationship_types().size());
  // Every relationship became a link type with matching endpoints.
  for (const er::RelationshipType& rel : er.relationship_types()) {
    auto lt = db.GetLinkType(rel.name);
    ASSERT_TRUE(lt.ok()) << rel.name;
    EXPECT_EQ((*lt)->first_atom_type(), rel.left);
    EXPECT_EQ((*lt)->second_atom_type(), rel.right);
  }
}

TEST(ErMappingTest, RelationalMappingNeedsAuxiliaryStructures) {
  er::ErSchema er = er::Figure1ErSchema();
  auto rdb = er::MapToRelational(er);
  ASSERT_TRUE(rdb.ok()) << rdb.status();

  // 7 entity relations + 3 auxiliary relations for the n:m relationships.
  EXPECT_EQ(rdb->relation_count(), 10u);
  EXPECT_TRUE(rdb->Has("area-edge"));
  EXPECT_TRUE(rdb->Has("net-edge"));
  EXPECT_TRUE(rdb->Has("edge-point"));
  // 1:1 relationships became foreign-key columns on the right-hand side.
  auto area = rdb->Get("area");
  ASSERT_TRUE(area.ok());
  EXPECT_TRUE((*area)->schema().HasAttribute("_state-area_ref"));
  auto point = rdb->Get("point");
  ASSERT_TRUE(point.ok());
  EXPECT_TRUE((*point)->schema().HasAttribute("_city-point_ref"));
}

TEST(ErMappingTest, CompareMappingsQuantifiesTheClaim) {
  er::ErSchema er = er::Figure1ErSchema();
  auto report = er::CompareMappings(er);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->er_entity_types, 7u);
  EXPECT_EQ(report->er_relationship_types, 6u);
  // MAD: strictly one-to-one.
  EXPECT_EQ(report->mad_atom_types, report->er_entity_types);
  EXPECT_EQ(report->mad_link_types, report->er_relationship_types);
  // Relational: extra relations and columns appear.
  EXPECT_EQ(report->rel_auxiliary_relations, 3u);
  EXPECT_EQ(report->rel_foreign_key_columns, 3u);
  EXPECT_EQ(report->rel_relations,
            report->er_entity_types + report->rel_auxiliary_relations);
}

TEST(ErMappingTest, MappedMadDatabaseIsUsable) {
  // The ER-derived MAD schema accepts the Figure-4 style data flow.
  er::ErSchema er = er::Figure1ErSchema();
  Database db("GEO_FROM_ER");
  ASSERT_TRUE(er::MapToMad(er, db).ok());
  auto sp = db.InsertAtom("state", {Value("SP"), Value(int64_t{1000})});
  auto a1 = db.InsertAtom("area", {Value("a1"), Value(int64_t{1000})});
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(a1.ok());
  EXPECT_TRUE(db.InsertLink("state-area", *sp, *a1).ok());
}

}  // namespace
}  // namespace mad
