// Remaining end-to-end coverage: script error handling, the city (point-
// like object) flank of the Figure-1 schema, registered-type interactions,
// and session/result plumbing details.

#include <gtest/gtest.h>

#include "mql/session.h"
#include "workload/geo.h"

namespace mad {
namespace mql {
namespace {

class SessionMiscTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
    session_ = std::make_unique<Session>(&db_);
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionMiscTest, ScriptStopsAtFirstError) {
  Database db("SCRATCH");
  Session session(&db);
  auto results = session.ExecuteScript(
      "CREATE ATOM TYPE t (a STRING);"
      "INSERT INTO t VALUES (42);"  // type error
      "CREATE ATOM TYPE u (b STRING);");
  ASSERT_FALSE(results.ok());
  // The first statement took effect, the third never ran.
  EXPECT_TRUE(db.HasAtomType("t"));
  EXPECT_FALSE(db.HasAtomType("u"));
}

TEST_F(SessionMiscTest, CityIsAPointLikeObject) {
  // Fig. 1 models cities through the shared geographic model: city-point
  // is 1:1-shaped in the ER diagram, and the city of 'Brasilia' sits on
  // point p5, which hangs off edge e4 on GO's border.
  auto result = session_->Execute(
      "SELECT ALL FROM city-point-edge-(area-state,net-river) "
      "WHERE city.name = 'Brasilia';");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->molecules->size(), 1u);
  const MoleculeDescription& md = result->molecules->description();
  const Molecule& m = result->molecules->molecules()[0];
  size_t state_idx = *md.NodeIndex("state");
  ASSERT_EQ(m.AtomsOf(state_idx).size(), 1u);
  EXPECT_EQ(m.AtomsOf(state_idx)[0], ids_.states["GO"]);
}

TEST_F(SessionMiscTest, RegisteredTypeCanBeRedefined) {
  ASSERT_TRUE(session_->Execute("SELECT ALL FROM m(state-area);").ok());
  // Redefinition under the same name replaces the registration.
  auto redefined =
      session_->Execute("SELECT ALL FROM m(state-area-edge-point);");
  ASSERT_TRUE(redefined.ok());
  auto reuse = session_->Execute("SELECT ALL FROM m;");
  ASSERT_TRUE(reuse.ok());
  EXPECT_EQ(reuse->molecules->description().nodes().size(), 4u);
}

TEST_F(SessionMiscTest, RegisteredNameShadowedByExplicitStructure) {
  ASSERT_TRUE(session_->Execute("SELECT ALL FROM state(state-area);").ok());
  // 'state' is now registered AND an atom type; a bare FROM prefers the
  // registration, an inline structure is always literal.
  auto bare = session_->Execute("SELECT ALL FROM state;");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->molecules->description().nodes().size(), 2u);
}

TEST_F(SessionMiscTest, CommandMessagesAreInformative) {
  Database db("SCRATCH");
  Session session(&db);
  auto r1 = session.Execute("CREATE ATOM TYPE t (a STRING);");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->kind, QueryResult::Kind::kCommand);
  EXPECT_NE(r1->message.find("'t' created"), std::string::npos);
  auto r2 = session.Execute("INSERT INTO t VALUES ('x'), ('y');");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->affected, 2u);
  auto r3 = session.Execute("DELETE FROM t;");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->affected, 2u);
  EXPECT_NE(r3->message.find("deleted"), std::string::npos);
}

TEST_F(SessionMiscTest, WhereTrueAndWhereFalse) {
  auto all = session_->Execute("SELECT ALL FROM state WHERE TRUE;");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->molecules->size(), 10u);
  auto none = session_->Execute("SELECT ALL FROM state WHERE FALSE;");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->molecules->size(), 0u);
}

TEST_F(SessionMiscTest, SelectItemsByTypeNameQualifier) {
  // Projection items resolve through ResolveQualifier: type names work
  // when unambiguous.
  auto result = session_->Execute(
      "SELECT area.name FROM q(state-area-edge-point) "
      "WHERE state.name = 'SP';");
  ASSERT_TRUE(result.ok()) << result.status();
  const MoleculeDescription& md = result->molecules->description();
  EXPECT_EQ(md.nodes().size(), 2u);  // state (root ancestor) + area
  size_t area_idx = *md.NodeIndex("area");
  ASSERT_TRUE(md.nodes()[area_idx].attributes.has_value());
}

TEST_F(SessionMiscTest, InsertLinkReportsZeroOnNoMatches) {
  auto result = session_->Execute(
      "INSERT LINK [state-area] FROM (name = 'ZZ') TO (name = 'a1');");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->affected, 0u);
}

TEST_F(SessionMiscTest, UpdateCrossAttributeAssignment) {
  Database db("SCRATCH");
  Session session(&db);
  ASSERT_TRUE(session
                  .ExecuteScript("CREATE ATOM TYPE t (a INT64, b INT64);"
                                 "INSERT INTO t VALUES (3, 4);")
                  .ok());
  ASSERT_TRUE(session.Execute("UPDATE t SET a = b * b - a;").ok());
  auto at = db.GetAtomType("t");
  EXPECT_EQ((*at)->occurrence().atoms()[0].values[0].AsInt64(), 13);
}

TEST_F(SessionMiscTest, SetParallelismControlsDerivation) {
  auto set = session_->Execute("SET PARALLELISM 2;");
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_NE(set->message.find("parallelism set to 2"), std::string::npos);

  auto two = session_->Execute("SELECT ALL FROM state-area-edge-point;");
  ASSERT_TRUE(two.ok()) << two.status();
  ASSERT_TRUE(two->derivation.has_value());
  EXPECT_EQ(two->derivation->roots, two->molecules->size());
  EXPECT_LE(two->derivation->threads_used, 2u);
  EXPECT_GT(two->derivation->atoms_visited, 0u);

  // Back to one thread: the result set is identical (canonical equality is
  // enough here; exact-order invariance is pinned in
  // derivation_parallel_test).
  ASSERT_TRUE(session_->Execute("SET PARALLELISM = 1;").ok());
  auto one = session_->Execute("SELECT ALL FROM state-area-edge-point;");
  ASSERT_TRUE(one.ok()) << one.status();
  ASSERT_EQ(one->molecules->size(), two->molecules->size());
  for (size_t i = 0; i < one->molecules->size(); ++i) {
    EXPECT_TRUE(one->molecules->molecules()[i] ==
                two->molecules->molecules()[i]);
  }
  EXPECT_EQ(one->derivation->atoms_visited, two->derivation->atoms_visited);
  EXPECT_EQ(one->derivation->links_scanned, two->derivation->links_scanned);

  // SET PARALLELISM 0 selects hardware concurrency; bad options and
  // negative values fail cleanly.
  auto zero = session_->Execute("SET PARALLELISM 0;");
  ASSERT_TRUE(zero.ok()) << zero.status();
  EXPECT_NE(zero->message.find("auto"), std::string::npos);
  EXPECT_FALSE(session_->Execute("SET PARALLELISM -1;").ok());
  EXPECT_FALSE(session_->Execute("SET FROBNICATION 3;").ok());
}

TEST_F(SessionMiscTest, UnknownOptionErrorListsEveryOption) {
  // The "available: ..." list is generated from the option table, so every
  // dispatchable option must appear in the error — a hardcoded list would
  // go stale the moment an option is added.
  auto bad = session_->Execute("SET FROBNICATION 3;");
  ASSERT_FALSE(bad.ok());
  const std::string message = bad.status().ToString();
  for (const char* option : {"PARALLELISM", "SYNC", "TRACE"}) {
    EXPECT_NE(message.find(option), std::string::npos)
        << "option " << option << " missing from: " << message;
  }
  // Every listed option actually dispatches (accepts or rejects the value,
  // but never reports "unknown session option").
  for (const char* stmt :
       {"SET PARALLELISM 1;", "SET SYNC OFF;", "SET TRACE OFF;"}) {
    auto result = session_->Execute(stmt);
    EXPECT_TRUE(result.ok()) << result.status();
  }
}

TEST_F(SessionMiscTest, SetTraceRecordsSpansOnEveryStatement) {
  ASSERT_TRUE(session_->Execute("SET TRACE ON;").ok());
  auto result = session_->Execute("SELECT ALL FROM state-area;");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->trace, nullptr);
  ASSERT_FALSE(result->trace->spans().empty());
  EXPECT_EQ(result->trace->spans()[0].name, "select");
  ASSERT_TRUE(session_->Execute("SET TRACE OFF;").ok());
  auto untraced = session_->Execute("SELECT ALL FROM state-area;");
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->trace, nullptr);
}

}  // namespace
}  // namespace mql
}  // namespace mad
