#include "storage/index.h"

#include <gtest/gtest.h>

#include <set>

#include "algebra/atom_algebra.h"
#include "expr/expr.h"
#include "workload/geo.h"

namespace mad {
namespace e = expr;
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
};

TEST_F(IndexTest, CreateAndLookup) {
  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  const AttributeIndex* index = db_.FindIndex("state", "name");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->entry_count(), 10u);
  EXPECT_EQ(index->distinct_values(), 10u);

  const auto& hits = index->Lookup(Value("SP"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], ids_.states["SP"]);
  EXPECT_TRUE(index->Lookup(Value("XX")).empty());
}

TEST_F(IndexTest, CreateValidatesArguments) {
  EXPECT_EQ(db_.CreateIndex("bogus", "name").code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.CreateIndex("state", "bogus").code(), StatusCode::kNotFound);
  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  EXPECT_EQ(db_.CreateIndex("state", "name").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(IndexTest, DropIndex) {
  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  ASSERT_TRUE(db_.DropIndex("state", "name").ok());
  EXPECT_EQ(db_.FindIndex("state", "name"), nullptr);
  EXPECT_EQ(db_.DropIndex("state", "name").code(), StatusCode::kNotFound);
}

TEST_F(IndexTest, MaintainedAcrossInsertUpdateDelete) {
  ASSERT_TRUE(db_.CreateIndex("state", "hectare").ok());
  const AttributeIndex* index = db_.FindIndex("state", "hectare");

  // 900 occurs twice in the fixture (GO, MG).
  EXPECT_EQ(index->Lookup(Value(int64_t{900})).size(), 2u);

  auto id = db_.InsertAtom("state", {Value("XX"), Value(int64_t{900})});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(index->Lookup(Value(int64_t{900})).size(), 3u);

  ASSERT_TRUE(db_.UpdateAtom("state", *id, {Value("XX"), Value(int64_t{1})}).ok());
  EXPECT_EQ(index->Lookup(Value(int64_t{900})).size(), 2u);
  EXPECT_EQ(index->Lookup(Value(int64_t{1})).size(), 1u);

  ASSERT_TRUE(db_.DeleteAtom("state", *id).ok());
  EXPECT_TRUE(index->Lookup(Value(int64_t{1})).empty());
  EXPECT_EQ(index->entry_count(), 10u);
}

TEST_F(IndexTest, DroppedWithAtomType) {
  ASSERT_TRUE(db_.CreateIndex("net", "name").ok());
  ASSERT_TRUE(db_.DropAtomType("net").ok());
  EXPECT_EQ(db_.FindIndex("net", "name"), nullptr);
}

TEST_F(IndexTest, LookupByAttributeWithAndWithoutIndex) {
  // Scan path.
  auto scan = db_.LookupByAttribute("state", "name", Value("SP"));
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 1u);
  EXPECT_EQ((*scan)[0], ids_.states["SP"]);

  // Indexed path returns the same atoms.
  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  auto indexed = db_.LookupByAttribute("state", "name", Value("SP"));
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(*indexed, *scan);

  EXPECT_FALSE(db_.LookupByAttribute("state", "bogus", Value("SP")).ok());
}

TEST_F(IndexTest, IndexedRestrictMatchesScanRestrict) {
  auto scan = algebra::Restrict(
      db_, "state", e::Eq(e::Attr("name"), e::Lit("SP")), "scan_result");
  ASSERT_TRUE(scan.ok());

  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  auto indexed = algebra::Restrict(
      db_, "state", e::Eq(e::Attr("name"), e::Lit("SP")), "indexed_result");
  ASSERT_TRUE(indexed.ok());

  auto scan_at = db_.GetAtomType("scan_result");
  auto indexed_at = db_.GetAtomType("indexed_result");
  ASSERT_TRUE(scan_at.ok());
  ASSERT_TRUE(indexed_at.ok());
  EXPECT_EQ((*scan_at)->occurrence().size(), 1u);
  EXPECT_EQ((*indexed_at)->occurrence().size(), 1u);
  EXPECT_TRUE((*indexed_at)->occurrence().Contains(ids_.states["SP"]));
  // Link inheritance is identical in both paths.
  EXPECT_EQ(db_.LinkTypesTouching("scan_result").size(),
            db_.LinkTypesTouching("indexed_result").size());
}

TEST_F(IndexTest, ReversedLiteralPatternAlsoIndexed) {
  ASSERT_TRUE(db_.CreateIndex("state", "name").ok());
  auto result = algebra::Restrict(
      db_, "state", e::Eq(e::Lit("MG"), e::Attr("state", "name")), "mg");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*db_.GetAtomType("mg"))->occurrence().size(), 1u);
}

TEST_F(IndexTest, NonEqualityPredicatesStillScan) {
  ASSERT_TRUE(db_.CreateIndex("state", "hectare").ok());
  auto result = algebra::Restrict(
      db_, "state", e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})), "big");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*db_.GetAtomType("big"))->occurrence().size(), 3u);
}

TEST_F(IndexTest, NumericEqualityAcrossTypes) {
  ASSERT_TRUE(db_.CreateIndex("state", "hectare").ok());
  // 1000 as a double must hit the int64 1000 bucket (Value hashing is
  // numeric-consistent).
  auto hits = db_.LookupByAttribute("state", "hectare", Value(1000.0));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], ids_.states["SP"]);
}

}  // namespace
}  // namespace mad
