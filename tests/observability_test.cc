// End-to-end observability: EXPLAIN ANALYZE produces a span tree whose
// cardinalities match the plain query's result and whose per-operator times
// nest consistently, SHOW METRICS reports the instruments the query touched,
// and the trace JSON stays parseable.

#include <gtest/gtest.h>

#include "mql/session.h"
#include "text/printer.h"
#include "util/metrics.h"
#include "workload/geo.h"

namespace mad {
namespace mql {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok());
    ids_ = *ids;
    session_ = std::make_unique<Session>(&db_);
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
  std::unique_ptr<Session> session_;
};

TEST_F(ObservabilityTest, ExplainAnalyzeMatchesPlainQueryCardinalities) {
  // The Fig. 2 'mt_state' molecule query, filtered on a non-root node: the
  // WHERE is pushed into the derivation as a compiled per-node filter, so
  // the sigma fuses over the fan-out instead of running afterwards.
  const char* body =
      "SELECT ALL FROM state-area-edge-point WHERE area.name = 'a7';";
  auto plain = session_->Execute(body);
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_EQ(plain->molecules->size(), 1u);
  ASSERT_TRUE(plain->derivation.has_value());
  const size_t derived = plain->derivation->roots;
  ASSERT_EQ(derived, 10u);  // every state still fans out...
  EXPECT_EQ(plain->derivation->molecules_rejected, 9u);  // ...9 are pruned

  auto analyzed = session_->Execute(std::string("EXPLAIN ANALYZE ") + body);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_EQ(analyzed->kind, QueryResult::Kind::kCommand);
  EXPECT_NE(analyzed->message.find("-- execution profile --"),
            std::string::npos);
  EXPECT_NE(analyzed->message.find("trace:"), std::string::npos);
  ASSERT_NE(analyzed->trace, nullptr);

  const std::vector<TraceSpan>& spans = analyzed->trace->spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "select");
  EXPECT_EQ(spans[0].parent, TraceSpan::kNoParent);
  EXPECT_EQ(spans[0].rows_out, 1);  // matches the plain query's result

  const TraceSpan* derive = nullptr;
  const TraceSpan* sigma = nullptr;
  for (const TraceSpan& span : spans) {
    if (span.name == "derive") derive = &span;
    if (span.name == "sigma") sigma = &span;
  }
  ASSERT_NE(derive, nullptr);
  // The pushed filter rejects inside the fan-out, so the derive span
  // already reports the survivors.
  EXPECT_EQ(derive->rows_out, 1);
  ASSERT_NE(sigma, nullptr);
  EXPECT_EQ(sigma->rows_in, static_cast<int64_t>(derived));
  EXPECT_EQ(sigma->rows_out, 1);
}

TEST_F(ObservabilityTest, ExplainAnalyzeSpanTimesNest) {
  auto analyzed = session_->Execute(
      "EXPLAIN ANALYZE SELECT ALL FROM state-area-edge-point;");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  ASSERT_NE(analyzed->trace, nullptr);
  const std::vector<TraceSpan>& spans = analyzed->trace->spans();
  ASSERT_FALSE(spans.empty());

  // Tree invariants: id == index, parent precedes child.
  std::vector<uint64_t> child_sum_ns(spans.size(), 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, static_cast<int32_t>(i));
    ASSERT_LT(spans[i].parent, static_cast<int32_t>(i));
    if (spans[i].parent != TraceSpan::kNoParent) {
      child_sum_ns[static_cast<size_t>(spans[i].parent)] +=
          spans[i].duration_ns;
    }
  }
  // Spans on one thread nest strictly, so the children of any span account
  // for at most its own wall time, and the root for at most the statement
  // total. This is the "per-operator times sum to total query time (within
  // overhead)" acceptance check.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LE(child_sum_ns[i], spans[i].duration_ns)
        << "children of span " << i << " (" << spans[i].name
        << ") exceed its duration";
  }
  EXPECT_GT(spans[0].duration_ns, 0u);
  EXPECT_LE(spans[0].duration_ns, analyzed->trace->total_duration_ns());
}

TEST_F(ObservabilityTest, ExplainWithoutAnalyzeDoesNotExecute) {
  auto plan = session_->Execute(
      "EXPLAIN SELECT ALL FROM state-area-edge-point;");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->kind, QueryResult::Kind::kCommand);
  EXPECT_EQ(plan->message.find("-- execution profile --"), std::string::npos);
  EXPECT_EQ(plan->trace, nullptr);
}

TEST_F(ObservabilityTest, ShowMetricsReportsQueryInstruments) {
  ASSERT_TRUE(
      session_->Execute("SELECT ALL FROM state-area-edge-point;").ok());
  auto metrics = session_->Execute("SHOW METRICS;");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->kind, QueryResult::Kind::kCommand);
  for (const char* name :
       {"derivation.roots", "derivation.atoms_visited", "mql.statements",
        "mql.statement_us"}) {
    EXPECT_NE(metrics->message.find(name), std::string::npos)
        << name << " missing from:\n" << metrics->message;
  }
  // The registry outlives sessions; the counters only ever grow.
  EXPECT_GE(Registry::Global().GetCounter("derivation.roots").value(), 10u);
}

TEST_F(ObservabilityTest, TraceJsonStaysWellFormed) {
  auto analyzed = session_->Execute(
      "EXPLAIN ANALYZE SELECT ALL FROM state-area-edge-point "
      "WHERE area.name = 'a7';");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  ASSERT_NE(analyzed->trace, nullptr);
  std::string json = text::QueryTraceToJson(*analyzed->trace);
  // Every span serializes as one object; braces and quotes stay balanced.
  size_t objects = 0;
  for (size_t pos = json.find("{\"id\":"); pos != std::string::npos;
       pos = json.find("{\"id\":", pos + 1)) {
    ++objects;
  }
  EXPECT_EQ(objects, analyzed->trace->spans().size());
  long depth = 0;
  size_t quotes = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '"') ++quotes;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0u);
}

}  // namespace
}  // namespace mql
}  // namespace mad
