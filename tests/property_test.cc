// Property-based suites: algebraic laws of the molecule algebra, derivation
// invariants, and recursion dualities, swept over randomized scaled
// databases (TEST_P over generator seeds).

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "algebra/atom_algebra.h"
#include "expr/expr.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "molecule/propagation.h"
#include "molecule/recursive.h"
#include "storage/serializer.h"
#include "workload/bom.h"
#include "workload/geo.h"

namespace mad {
namespace e = expr;
namespace {

std::set<std::string> Keys(const MoleculeType& mt) {
  std::set<std::string> keys;
  for (const Molecule& m : mt.molecules()) keys.insert(m.CanonicalKey());
  return keys;
}

std::set<std::string> Keys(const std::vector<Molecule>& mv) {
  std::set<std::string> keys;
  for (const Molecule& m : mv) keys.insert(m.CanonicalKey());
  return keys;
}

// ---- Molecule algebra laws over randomized geographies -------------------------

class MoleculeLawTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("SCALED");
    workload::GeoScale scale;
    scale.states = 30;
    scale.rivers = 8;
    scale.seed = GetParam();
    auto stats = workload::GenerateScaledGeo(*db_, scale);
    ASSERT_TRUE(stats.ok()) << stats.status();

    auto md = MoleculeDescription::CreateFromTypes(
        *db_, {"state", "area", "edge", "point"},
        {{"state-area", "state", "area", false},
         {"area-edge", "area", "edge", false},
         {"edge-point", "edge", "point", false}});
    ASSERT_TRUE(md.ok()) << md.status();
    auto mt = DefineMoleculeType(*db_, "mt_state", *md);
    ASSERT_TRUE(mt.ok()) << mt.status();
    mt_ = std::make_unique<MoleculeType>(*std::move(mt));

    // Two predicates whose selectivity varies with the seed.
    p_ = e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000}));
    q_ = e::Gt(e::Attr("point", "x"), e::Lit(500.0));
  }

  MoleculeType Sigma(const e::ExprPtr& pred, const MoleculeType& mt,
                     const std::string& name) {
    auto result = RestrictMolecules(*db_, mt, pred, name);
    EXPECT_TRUE(result.ok()) << result.status();
    return *std::move(result);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<MoleculeType> mt_;
  e::ExprPtr p_;
  e::ExprPtr q_;
};

TEST_P(MoleculeLawTest, DerivationIsDeterministic) {
  auto again = DefineMoleculeType(*db_, "again", mt_->description());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Keys(*mt_), Keys(*again));
  EXPECT_EQ(mt_->size(), again->size());
}

TEST_P(MoleculeLawTest, OneMoleculePerRootAtom) {
  EXPECT_EQ(mt_->size(), (*db_->GetAtomType("state"))->occurrence().size());
  std::unordered_set<AtomId> roots;
  for (const Molecule& m : mt_->molecules()) {
    EXPECT_TRUE(roots.insert(m.root()).second) << "duplicate root molecule";
  }
}

TEST_P(MoleculeLawTest, EveryDerivedMoleculeValidates) {
  for (const Molecule& m : mt_->molecules()) {
    ASSERT_TRUE(ValidateMolecule(*db_, mt_->description(), m).ok());
  }
}

TEST_P(MoleculeLawTest, ConjunctionEqualsComposition) {
  MoleculeType lhs = Sigma(e::And(p_, q_), *mt_, "pq");
  MoleculeType rhs = Sigma(q_, Sigma(p_, *mt_, "p"), "p_then_q");
  EXPECT_EQ(Keys(lhs), Keys(rhs));
}

TEST_P(MoleculeLawTest, DisjunctionEqualsUnion) {
  MoleculeType lhs = Sigma(e::Or(p_, q_), *mt_, "p_or_q");
  auto rhs = UnionMolecules(Sigma(p_, *mt_, "p"), Sigma(q_, *mt_, "q"), "u");
  ASSERT_TRUE(rhs.ok());
  EXPECT_EQ(Keys(lhs), Keys(*rhs));
}

TEST_P(MoleculeLawTest, NegationEqualsDifference) {
  MoleculeType lhs = Sigma(e::Not(p_), *mt_, "not_p");
  auto rhs = DifferenceMolecules(*mt_, Sigma(p_, *mt_, "p"), "d");
  ASSERT_TRUE(rhs.ok());
  EXPECT_EQ(Keys(lhs), Keys(*rhs));
}

TEST_P(MoleculeLawTest, UnionIsCommutativeAndIdempotent) {
  MoleculeType a = Sigma(p_, *mt_, "a");
  MoleculeType b = Sigma(q_, *mt_, "b");
  auto ab = UnionMolecules(a, b, "ab");
  auto ba = UnionMolecules(b, a, "ba");
  auto aa = UnionMolecules(a, a, "aa");
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  ASSERT_TRUE(aa.ok());
  EXPECT_EQ(Keys(*ab), Keys(*ba));
  EXPECT_EQ(Keys(*aa), Keys(a));
}

TEST_P(MoleculeLawTest, SelfDifferenceIsEmpty) {
  auto d = DifferenceMolecules(*mt_, *mt_, "d");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
}

TEST_P(MoleculeLawTest, PsiRecipeMatchesNaiveIntersection) {
  MoleculeType a = Sigma(p_, *mt_, "a");
  MoleculeType b = Sigma(q_, *mt_, "b");
  auto psi_ab = IntersectMolecules(a, b, "psi_ab");
  auto psi_ba = IntersectMolecules(b, a, "psi_ba");
  ASSERT_TRUE(psi_ab.ok());
  ASSERT_TRUE(psi_ba.ok());
  EXPECT_EQ(Keys(*psi_ab), Keys(*psi_ba));

  std::set<std::string> naive;
  std::set<std::string> b_keys = Keys(b);
  for (const std::string& key : Keys(a)) {
    if (b_keys.count(key) > 0) naive.insert(key);
  }
  EXPECT_EQ(Keys(*psi_ab), naive);
}

TEST_P(MoleculeLawTest, DeMorganOverMoleculeSets) {
  MoleculeType lhs = Sigma(e::Not(e::And(p_, q_)), *mt_, "l");
  auto rhs = UnionMolecules(Sigma(e::Not(p_), *mt_, "np"),
                            Sigma(e::Not(q_), *mt_, "nq"), "r");
  ASSERT_TRUE(rhs.ok());
  EXPECT_EQ(Keys(lhs), Keys(*rhs));
}

TEST_P(MoleculeLawTest, ProjectionPreservesMoleculeCountAndRoots) {
  MoleculeProjectionSpec spec;
  spec.keep_labels = {"state", "area"};
  auto projected = ProjectMolecules(*db_, *mt_, spec, "proj");
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->size(), mt_->size());
  for (size_t i = 0; i < mt_->size(); ++i) {
    EXPECT_EQ(projected->molecules()[i].root(), mt_->molecules()[i].root());
  }
}

TEST_P(MoleculeLawTest, Theorem2RederivationForRandomRestrictions) {
  MoleculeType restricted = Sigma(p_, *mt_, "to_prop");
  auto prop = PropagateMoleculeType(*db_, restricted);
  ASSERT_TRUE(prop.ok()) << prop.status();
  auto rederived = DeriveMolecules(*db_, prop->description());
  ASSERT_TRUE(rederived.ok());
  EXPECT_EQ(Keys(prop->molecules()), Keys(*rederived));
}

TEST_P(MoleculeLawTest, PropagationPreservesDatabaseConsistency) {
  MoleculeType restricted = Sigma(q_, *mt_, "to_prop2");
  auto prop = PropagateMoleculeType(*db_, restricted);
  ASSERT_TRUE(prop.ok());
  EXPECT_TRUE(db_->CheckConsistency().ok());
}

TEST_P(MoleculeLawTest, SerializationPreservesDerivation) {
  // Clone via the MADDB text format; the clone derives an identical
  // molecule set and passes the consistency audit.
  auto clone = CloneDatabase(*db_);
  ASSERT_TRUE(clone.ok()) << clone.status();
  ASSERT_TRUE((*clone)->CheckConsistency().ok());
  auto md = MoleculeDescription::CreateFromTypes(
      **clone, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  ASSERT_TRUE(md.ok());
  auto rederived = DeriveMolecules(**clone, *md);
  ASSERT_TRUE(rederived.ok());
  EXPECT_EQ(Keys(*mt_), Keys(*rederived));
}

TEST_P(MoleculeLawTest, CountQualificationConsistentWithGroupSizes) {
  // Σ[COUNT(point) >= k] must keep exactly the molecules whose point group
  // has >= k atoms, for every k up to the maximum.
  size_t point_idx = *mt_->description().NodeIndex("point");
  size_t max_points = 0;
  for (const Molecule& m : mt_->molecules()) {
    max_points = std::max(max_points, m.AtomsOf(point_idx).size());
  }
  for (size_t k = 0; k <= max_points + 1; ++k) {
    auto result = RestrictMolecules(
        *db_, *mt_,
        e::Ge(e::Count("point"), e::Lit(static_cast<int64_t>(k))), "c");
    ASSERT_TRUE(result.ok());
    size_t expected = 0;
    for (const Molecule& m : mt_->molecules()) {
      if (m.AtomsOf(point_idx).size() >= k) ++expected;
    }
    EXPECT_EQ(result->size(), expected) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoleculeLawTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ---- Atom-type algebra laws ---------------------------------------------------

class AtomLawTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("SCALED");
    workload::GeoScale scale;
    scale.states = 40;
    scale.seed = GetParam();
    auto stats = workload::GenerateScaledGeo(*db_, scale);
    ASSERT_TRUE(stats.ok());
  }

  std::set<uint64_t> Ids(const std::string& aname) {
    std::set<uint64_t> ids;
    auto at = db_->GetAtomType(aname);
    EXPECT_TRUE(at.ok());
    for (const Atom& atom : (*at)->occurrence().atoms()) {
      ids.insert(atom.id.value);
    }
    return ids;
  }

  std::unique_ptr<Database> db_;
};

TEST_P(AtomLawTest, RestrictionsCommute) {
  auto p = e::Gt(e::Attr("hectare"), e::Lit(int64_t{500}));
  auto q = e::Lt(e::Attr("hectare"), e::Lit(int64_t{1500}));
  auto pq1 = algebra::Restrict(*db_, "state", p, "s1");
  ASSERT_TRUE(pq1.ok());
  auto pq2 = algebra::Restrict(*db_, "s1", q, "s12");
  ASSERT_TRUE(pq2.ok());
  auto qp1 = algebra::Restrict(*db_, "state", q, "s2");
  ASSERT_TRUE(qp1.ok());
  auto qp2 = algebra::Restrict(*db_, "s2", p, "s21");
  ASSERT_TRUE(qp2.ok());
  EXPECT_EQ(Ids("s12"), Ids("s21"));
}

TEST_P(AtomLawTest, UnionDifferencePartition) {
  auto p = e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000}));
  ASSERT_TRUE(algebra::Restrict(*db_, "state", p, "yes").ok());
  ASSERT_TRUE(algebra::Restrict(*db_, "state", e::Not(p), "no").ok());
  ASSERT_TRUE(algebra::Union(*db_, "yes", "no", "all").ok());
  EXPECT_EQ(Ids("all"), Ids("state"));
  ASSERT_TRUE(algebra::Intersection(*db_, "yes", "no", "none").ok());
  EXPECT_TRUE(Ids("none").empty());
}

TEST_P(AtomLawTest, ProjectThenRestrictEqualsRestrictThenProject) {
  auto p = e::Gt(e::Attr("hectare"), e::Lit(int64_t{700}));
  ASSERT_TRUE(algebra::Project(*db_, "state", {"hectare"}, "proj").ok());
  ASSERT_TRUE(algebra::Restrict(*db_, "proj", p, "proj_then_sigma").ok());
  ASSERT_TRUE(algebra::Restrict(*db_, "state", p, "sigma").ok());
  ASSERT_TRUE(
      algebra::Project(*db_, "sigma", {"hectare"}, "sigma_then_proj").ok());
  EXPECT_EQ(Ids("proj_then_sigma"), Ids("sigma_then_proj"));
}

TEST_P(AtomLawTest, InheritedLinksAreSubsetOfOriginals) {
  auto p = e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000}));
  auto result = algebra::Restrict(*db_, "state", p, "big");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->inherited_link_types.size(), 1u);
  const LinkType* inherited = *db_->GetLinkType(result->inherited_link_types[0]);
  const LinkType* original = *db_->GetLinkType("state-area");
  EXPECT_LE(inherited->occurrence().size(), original->occurrence().size());
  for (const Link& link : inherited->occurrence().links()) {
    EXPECT_TRUE(original->occurrence().Contains(link.first, link.second));
  }
  EXPECT_TRUE(db_->CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomLawTest, ::testing::Values(3, 17, 2026));

// ---- Recursion dualities over randomized BOMs ---------------------------------

class RecursionLawTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("BOM");
    workload::BomScale scale;
    scale.depth = 5;
    scale.fanout = 3;
    scale.share_fraction = 0.4;
    scale.seed = GetParam();
    auto stats = workload::GenerateBom(*db_, scale);
    ASSERT_TRUE(stats.ok());
    stats_ = *stats;
  }

  std::unique_ptr<Database> db_;
  workload::BomStats stats_;
};

TEST_P(RecursionLawTest, ExplosionImplosionDuality) {
  // b in explosion(a)  <=>  a in implosion(b).
  RecursiveDescription down{"part", "composition", LinkDirection::kForward, -1};
  RecursiveDescription up{"part", "composition", LinkDirection::kBackward, -1};
  auto explosions = DeriveRecursiveMolecules(*db_, down);
  ASSERT_TRUE(explosions.ok());
  auto implosions = DeriveRecursiveMolecules(*db_, up);
  ASSERT_TRUE(implosions.ok());

  std::map<AtomId, const RecursiveMolecule*> up_by_root;
  for (const RecursiveMolecule& m : *implosions) up_by_root[m.root()] = &m;

  for (const RecursiveMolecule& down_m : *explosions) {
    for (const auto& level : down_m.levels()) {
      for (AtomId member : level) {
        ASSERT_TRUE(up_by_root.at(member)->Contains(down_m.root()))
            << "duality violated";
      }
    }
  }
}

TEST_P(RecursionLawTest, DepthBoundMonotonicity) {
  RecursiveDescription rd{"part", "composition", LinkDirection::kForward, -1};
  size_t previous = 0;
  for (int depth = 0; depth <= 6; ++depth) {
    rd.max_depth = depth;
    auto m = DeriveRecursiveMoleculeFor(*db_, rd, stats_.roots[0]);
    ASSERT_TRUE(m.ok());
    EXPECT_GE(m->atom_count(), previous);
    previous = m->atom_count();
  }
  rd.max_depth = -1;
  auto unbounded = DeriveRecursiveMoleculeFor(*db_, rd, stats_.roots[0]);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(unbounded->atom_count(), previous)
      << "depth 6 must already reach the whole depth-5 BOM";
}

TEST_P(RecursionLawTest, ClosureLinksMatchExplosionSizes) {
  RecursiveDescription rd{"part", "composition", LinkDirection::kForward, -1};
  auto explosions = DeriveRecursiveMolecules(*db_, rd);
  ASSERT_TRUE(explosions.ok());
  size_t expected = 0;
  for (const RecursiveMolecule& m : *explosions) {
    expected += m.atom_count() - 1;  // root excluded
  }
  auto inserted = PropagateClosureLinks(*db_, rd, "closure");
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, expected);
  EXPECT_TRUE(db_->CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecursionLawTest,
                         ::testing::Values(5, 21, 777));

}  // namespace
}  // namespace mad
