#include "storage/durable_database.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "mql/session.h"
#include "storage/binary_codec.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "text/printer.h"

namespace mad {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "durability_" + name;
  fs::remove_all(dir);
  return dir;
}

Result<std::string> ReadFile(const std::string& path) {
  return ReadFileToString(path);
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A mutation mix covering every WAL record kind, including the cascades
/// with special replay rules: DeleteAtom (implicit link erases are not
/// logged) and DropAtomType (cascaded link-type drops are logged and must
/// replay idempotently).
void RunWorkload(Database& db) {
  Schema part_schema;
  ASSERT_TRUE(part_schema.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(part_schema.AddAttribute("weight", DataType::kDouble).ok());
  ASSERT_TRUE(db.DefineAtomType("part", part_schema).ok());
  ASSERT_TRUE(db.DefineAtomType("supplier", Schema()).ok());
  ASSERT_TRUE(db.DefineLinkType("composition", "part", "part",
                                LinkCardinality::kManyToMany)
                  .ok());
  ASSERT_TRUE(db.DefineLinkType("supplies", "supplier", "part").ok());

  auto car = db.InsertAtom("part", {Value("car"), Value(1200.5)});
  auto wheel = db.InsertAtom(
      "part", {Value("wheel"), Value(std::numeric_limits<double>::infinity())});
  auto bolt = db.InsertAtom(
      "part",
      {Value("bolt"), Value(std::numeric_limits<double>::quiet_NaN())});
  auto acme = db.InsertAtom("supplier", {});
  ASSERT_TRUE(car.ok() && wheel.ok() && bolt.ok() && acme.ok());

  ASSERT_TRUE(db.InsertLink("composition", *car, *wheel).ok());
  ASSERT_TRUE(db.InsertLink("composition", *wheel, *bolt).ok());
  ASSERT_TRUE(db.InsertLink("supplies", *acme, *bolt).ok());

  ASSERT_TRUE(db.CreateIndex("part", "name").ok());
  ASSERT_TRUE(db.UpdateAtom("part", *wheel, {Value("wheel 17\""), Value(-0.0)})
                  .ok());
  ASSERT_TRUE(db.EraseLink("composition", *car, *wheel).ok());
  // Cascades: deleting bolt erases its remaining composition + supplies
  // links implicitly.
  ASSERT_TRUE(db.DeleteAtom("part", *bolt).ok());
  ASSERT_TRUE(db.DropIndex("part", "name").ok());
  // Drop the supplier type; the supplies link type cascades away with it.
  ASSERT_TRUE(db.DropAtomType("supplier").ok());
}

TEST(DurableDatabaseTest, FreshDirectoryStartsAtGenerationZero) {
  std::string dir = TestDir("fresh");
  auto durable = DurableDatabase::Open(dir, {.database_name = "mydb"});
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_EQ((*durable)->database().name(), "mydb");
  EXPECT_EQ((*durable)->generation(), 0u);
  EXPECT_TRUE((*durable)->stats().created_fresh);
  // The empty checkpoint and the WAL exist immediately.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "checkpoint-0.madb"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "wal-0.log"));
  fs::remove_all(dir);
}

TEST(DurableDatabaseTest, StateSurvivesReopen) {
  std::string dir = TestDir("reopen");
  std::string live_bytes;
  {
    auto durable = DurableDatabase::Open(dir);
    ASSERT_TRUE(durable.ok()) << durable.status();
    RunWorkload((*durable)->database());
    auto bytes = SerializeDatabaseBinary((*durable)->database());
    ASSERT_TRUE(bytes.ok());
    live_bytes = *bytes;
    ASSERT_TRUE((*durable)->Sync().ok());
    EXPECT_GT((*durable)->stats().records_appended, 0u);
  }
  {
    auto durable = DurableDatabase::Open(dir);
    ASSERT_TRUE(durable.ok()) << durable.status();
    auto bytes = SerializeDatabaseBinary((*durable)->database());
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, live_bytes) << "recovered state must be bit-identical";
    EXPECT_GT((*durable)->stats().replayed_records, 0u);
    EXPECT_TRUE((*durable)->database().CheckConsistency().ok());
  }
  fs::remove_all(dir);
}

TEST(DurableDatabaseTest, CheckpointRotatesAndCollectsGarbage) {
  std::string dir = TestDir("checkpoint");
  auto durable = DurableDatabase::Open(dir);
  ASSERT_TRUE(durable.ok()) << durable.status();
  Database& db = (*durable)->database();

  ASSERT_TRUE(db.DefineAtomType("t", Schema()).ok());
  ASSERT_TRUE((*durable)->Checkpoint().ok());
  EXPECT_EQ((*durable)->generation(), 1u);
  ASSERT_TRUE(db.InsertAtom("t", {}).ok());
  ASSERT_TRUE((*durable)->Checkpoint().ok());
  EXPECT_EQ((*durable)->generation(), 2u);
  ASSERT_TRUE(db.InsertAtom("t", {}).ok());
  ASSERT_TRUE((*durable)->Sync().ok());

  // keep_generations=1: generation 0 collected, 1 kept as fallback.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "checkpoint-0.madb"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "wal-0.log"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "checkpoint-1.madb"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "checkpoint-2.madb"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "wal-2.log"));
  EXPECT_EQ((*durable)->stats().checkpoint_count, 2u);

  // Reopen resumes at generation 2 and replays its one-record WAL.
  durable = DurableDatabase::Open(dir);
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_EQ((*durable)->generation(), 2u);
  EXPECT_EQ((*durable)->stats().replayed_records, 1u);
  EXPECT_EQ((*durable)->database().total_atom_count(), 2u);
  fs::remove_all(dir);
}

TEST(DurableDatabaseTest, FallsBackToOlderCheckpointWhenNewestCorrupt) {
  std::string dir = TestDir("fallback");
  {
    auto durable = DurableDatabase::Open(dir);
    ASSERT_TRUE(durable.ok()) << durable.status();
    Database& db = (*durable)->database();
    ASSERT_TRUE(db.DefineAtomType("t", Schema()).ok());
    ASSERT_TRUE(db.InsertAtom("t", {}).ok());
    ASSERT_TRUE((*durable)->Checkpoint().ok());  // generation 1
  }
  // Flip a byte deep inside checkpoint-1; recovery must fall back to
  // checkpoint-0 + wal-0, which reproduce the same state.
  std::string ckpt_path = (fs::path(dir) / "checkpoint-1.madb").string();
  auto bytes = ReadFile(ckpt_path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[corrupt.size() - 10] ^= 0x20;
  WriteFile(ckpt_path, corrupt);

  auto durable = DurableDatabase::Open(dir);
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_EQ((*durable)->generation(), 0u);
  EXPECT_EQ((*durable)->stats().checkpoints_skipped, 1u);
  EXPECT_EQ((*durable)->database().total_atom_count(), 1u);
  EXPECT_TRUE((*durable)->database().CheckConsistency().ok());
  fs::remove_all(dir);
}

/// The ISSUE's acceptance harness: truncate the WAL at EVERY byte offset
/// and assert recovery always succeeds with a database equal to the state
/// after some prefix of the logged records — never a crash, never a
/// half-applied record.
TEST(DurabilityFaultInjectionTest, TruncationAtEveryByteOffsetRecovers) {
  std::string dir = TestDir("fault_src");
  {
    auto durable = DurableDatabase::Open(dir);
    ASSERT_TRUE(durable.ok()) << durable.status();
    RunWorkload((*durable)->database());
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  auto checkpoint_bytes =
      ReadFile((fs::path(dir) / "checkpoint-0.madb").string());
  auto wal_bytes = ReadFile((fs::path(dir) / "wal-0.log").string());
  ASSERT_TRUE(checkpoint_bytes.ok() && wal_bytes.ok());
  ASSERT_GT(wal_bytes->size(), 0u);

  // Expected state after each record prefix, built by replaying the full
  // WAL one record at a time on top of the checkpoint. frame_ends[k] is the
  // WAL offset at which prefix k becomes complete.
  WalReadResult full = ReadWal(*wal_bytes);
  ASSERT_FALSE(full.torn_tail);
  ASSERT_GT(full.records.size(), 10u) << "workload must exercise many kinds";
  std::vector<std::string> prefix_state;
  std::vector<size_t> frame_ends;
  {
    auto db = DeserializeDatabaseBinary(*checkpoint_bytes);
    ASSERT_TRUE(db.ok()) << db.status();
    auto snapshot = SerializeDatabaseBinary(**db);
    ASSERT_TRUE(snapshot.ok());
    prefix_state.push_back(*snapshot);
    frame_ends.push_back(0);
    size_t offset = 0;
    for (const WalRecord& record : full.records) {
      ASSERT_TRUE(ApplyWalRecord(record, db->get()).ok());
      offset += 8 + EncodeWalRecordPayload(record).size();
      snapshot = SerializeDatabaseBinary(**db);
      ASSERT_TRUE(snapshot.ok());
      prefix_state.push_back(*snapshot);
      frame_ends.push_back(offset);
    }
    ASSERT_EQ(offset, wal_bytes->size());
  }

  std::string crash_dir = TestDir("fault_crash");
  fs::create_directories(crash_dir);
  WriteFile((fs::path(crash_dir) / "checkpoint-0.madb").string(),
            *checkpoint_bytes);
  for (size_t cut = 0; cut <= wal_bytes->size(); ++cut) {
    WriteFile((fs::path(crash_dir) / "wal-0.log").string(),
              wal_bytes->substr(0, cut));
    auto recovered = RecoverDatabase(crash_dir, "db");
    ASSERT_TRUE(recovered.ok())
        << "cut at " << cut << ": " << recovered.status();
    // Which record prefix must we see? The largest whose frames fit.
    size_t k = 0;
    while (k + 1 < frame_ends.size() && frame_ends[k + 1] <= cut) ++k;
    EXPECT_EQ(recovered->replayed_records, k) << "cut at " << cut;
    EXPECT_EQ(recovered->wal_torn_tail, cut != frame_ends[k])
        << "cut at " << cut;
    auto snapshot = SerializeDatabaseBinary(*recovered->db);
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(*snapshot, prefix_state[k])
        << "cut at " << cut << " must recover the prefix-" << k << " state";
    ASSERT_TRUE(recovered->db->CheckConsistency().ok()) << "cut at " << cut;
  }

  // Bonus: recovery through DurableDatabase::Open truncates the torn tail
  // and stays usable.
  size_t torn_cut = wal_bytes->size() - 3;
  WriteFile((fs::path(crash_dir) / "wal-0.log").string(),
            wal_bytes->substr(0, torn_cut));
  {
    auto durable = DurableDatabase::Open(crash_dir);
    ASSERT_TRUE(durable.ok()) << durable.status();
    EXPECT_TRUE(durable.value()->stats().wal_torn_tail);
    ASSERT_TRUE((*durable)->database().DefineAtomType("post", Schema()).ok());
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  {
    auto durable = DurableDatabase::Open(crash_dir);
    ASSERT_TRUE(durable.ok()) << durable.status();
    EXPECT_FALSE(durable.value()->stats().wal_torn_tail);
    EXPECT_TRUE((*durable)->database().HasAtomType("post"));
  }
  fs::remove_all(dir);
  fs::remove_all(crash_dir);
}

TEST(MqlDurabilityTest, OpenCheckpointAndSyncStatements) {
  std::string dir = TestDir("mql");
  Database scratch("scratch");
  {
    mql::Session session(&scratch);
    auto opened = session.Execute("OPEN '" + dir + "'");
    ASSERT_TRUE(opened.ok()) << opened.status();
    ASSERT_TRUE(opened->durability.has_value());
    EXPECT_TRUE(opened->durability->created_fresh);
    EXPECT_NE(opened->message.find("generation 0"), std::string::npos);

    ASSERT_TRUE(session
                    .Execute("CREATE ATOM TYPE city (name STRING, "
                             "population INT64)")
                    .ok());
    ASSERT_TRUE(session
                    .Execute("INSERT INTO city VALUES ('Rio', 6000000), "
                             "('Berlin', 3500000)")
                    .ok());

    auto sync_on = session.Execute("SET SYNC ON");
    ASSERT_TRUE(sync_on.ok()) << sync_on.status();
    ASSERT_TRUE(session.Execute("INSERT INTO city VALUES ('Pune', 3100000)")
                    .ok());

    auto checkpointed = session.Execute("CHECKPOINT");
    ASSERT_TRUE(checkpointed.ok()) << checkpointed.status();
    ASSERT_TRUE(checkpointed->durability.has_value());
    EXPECT_EQ(checkpointed->durability->generation, 1u);
    // The stats line is printable.
    EXPECT_NE(text::FormatDurabilityStats(*checkpointed->durability).find(
                  "gen 1"),
              std::string::npos);

    auto sync_off = session.Execute("SET SYNC OFF");
    ASSERT_TRUE(sync_off.ok()) << sync_off.status();
  }
  {
    // A second session recovers everything through OPEN.
    Database scratch2("scratch2");
    mql::Session session(&scratch2);
    auto opened = session.Execute("OPEN '" + dir + "'");
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ(opened->durability->generation, 1u);
    auto rows = session.Execute("SELECT ALL FROM city");
    ASSERT_TRUE(rows.ok()) << rows.status();
    ASSERT_NE(rows->molecules, nullptr);
    EXPECT_EQ(rows->molecules->molecules().size(), 3u);
  }
  fs::remove_all(dir);
}

TEST(MqlDurabilityTest, CheckpointWithoutOpenFails) {
  Database db("mem");
  mql::Session session(&db);
  auto result = session.Execute("CHECKPOINT");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("OPEN"), std::string::npos);
}

TEST(MqlDurabilityTest, MutationsThroughMqlAreLogged) {
  std::string dir = TestDir("mql_logged");
  {
    Database scratch("scratch");
    mql::Session session(&scratch);
    ASSERT_TRUE(session.Execute("OPEN '" + dir + "'").ok());
    ASSERT_TRUE(session.Execute("CREATE ATOM TYPE t (x INT64)").ok());
    ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
    ASSERT_TRUE(session.Execute("UPDATE t SET x = x + 10 WHERE x = 2").ok());
    ASSERT_TRUE(session.Execute("DELETE FROM t WHERE x = 3").ok());
    ASSERT_TRUE(session.durable()->Sync().ok());
    EXPECT_GE(session.durable()->stats().records_appended, 6u);
  }
  auto recovered = RecoverDatabase(dir, "db");
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  const auto& atoms =
      (*recovered->db->GetAtomType("t"))->occurrence().atoms();
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0].values[0].AsInt64(), 1);
  EXPECT_EQ(atoms[1].values[0].AsInt64(), 12);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mad
