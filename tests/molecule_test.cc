#include "molecule/derivation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algebra/atom_algebra.h"
#include "expr/expr.h"
#include "molecule/description.h"
#include "workload/geo.h"

namespace mad {
namespace {

class MoleculeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  /// The Fig. 2 'mt_state' structure: state-area-edge-point.
  MoleculeDescription MtState() {
    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"state", "area", "edge", "point"},
        {{"state-area", "state", "area", false},
         {"area-edge", "area", "edge", false},
         {"edge-point", "edge", "point", false}});
    EXPECT_TRUE(md.ok()) << md.status();
    return *md;
  }

  /// The Fig. 2 'point neighborhood' structure:
  /// point-edge-(area-state,net-river).
  MoleculeDescription PointNeighborhood() {
    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"point", "edge", "area", "state", "net", "river"},
        {{"edge-point", "point", "edge", false},
         {"area-edge", "edge", "area", false},
         {"state-area", "area", "state", false},
         {"net-edge", "edge", "net", false},
         {"river-net", "net", "river", false}});
    EXPECT_TRUE(md.ok()) << md.status();
    return *md;
  }

  std::set<std::string> NamesOf(const Molecule& m, const MoleculeDescription& md,
                                const std::string& label) {
    std::set<std::string> names;
    size_t idx = *md.NodeIndex(label);
    const AtomType* at = *db_.GetAtomType(md.nodes()[idx].type_name);
    size_t name_idx = *at->description().IndexOf("name");
    for (AtomId id : m.AtomsOf(idx)) {
      names.insert(at->occurrence().Find(id)->values[name_idx].AsString());
    }
    return names;
  }

  const Molecule* FindByRoot(const std::vector<Molecule>& mv, AtomId root) {
    for (const Molecule& m : mv) {
      if (m.root() == root) return &m;
    }
    return nullptr;
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
};

// ---- Description validation (md_graph, Def. 5) ----------------------------

TEST_F(MoleculeTest, ChainDescriptionIsValid) {
  MoleculeDescription md = MtState();
  EXPECT_EQ(md.root_label(), "state");
  EXPECT_EQ(md.topo_order().front(), "state");
  EXPECT_EQ(md.ToString(), "state-area-edge-point");
}

TEST_F(MoleculeTest, BranchingDescriptionInfersReverseTraversal) {
  MoleculeDescription md = PointNeighborhood();
  EXPECT_EQ(md.root_label(), "point");
  // edge-point is defined <edge, point> but traversed point->edge.
  EXPECT_TRUE(md.links()[0].reverse);
  // state-area is defined <state, area> but traversed area->state.
  EXPECT_TRUE(md.links()[2].reverse);
  // net-edge is defined <net, edge> but traversed edge->net.
  EXPECT_TRUE(md.links()[3].reverse);
  EXPECT_EQ(md.ToString(), "point-edge-(area-state,net-river)");
}

TEST_F(MoleculeTest, DescriptionRejectsUnknownTypesAndLinks) {
  EXPECT_FALSE(MoleculeDescription::CreateFromTypes(db_, {"bogus"}, {}).ok());
  EXPECT_FALSE(MoleculeDescription::CreateFromTypes(
                   db_, {"state", "area"},
                   {{"bogus-link", "state", "area", false}})
                   .ok());
  // Link type exists but does not connect these types.
  EXPECT_FALSE(MoleculeDescription::CreateFromTypes(
                   db_, {"state", "point"},
                   {{"state-area", "state", "point", false}})
                   .ok());
}

TEST_F(MoleculeTest, DescriptionRejectsNonRootedGraphs) {
  // Two roots (incoherent handled separately).
  EXPECT_FALSE(MoleculeDescription::CreateFromTypes(db_, {"state", "river"}, {}).ok());
  // Single node is fine.
  auto single = MoleculeDescription::CreateFromTypes(db_, {"state"}, {});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->root_label(), "state");
}

TEST_F(MoleculeTest, DescriptionRejectsDuplicateLabels) {
  EXPECT_FALSE(MoleculeDescription::Create(
                   db_,
                   {MoleculeNode{"state", "s", std::nullopt},
                    MoleculeNode{"area", "s", std::nullopt}},
                   {{"state-area", "s", "s", false}})
                   .ok());
}

TEST_F(MoleculeTest, DescriptionRejectsCycleThroughReflexiveLink) {
  Schema part;
  ASSERT_TRUE(part.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(db_.DefineAtomType("part", std::move(part)).ok());
  ASSERT_TRUE(db_.DefineLinkType("composition", "part", "part").ok());
  // A self-loop violates acyclicity: reflexive structures need the
  // recursive molecule extension.
  EXPECT_FALSE(MoleculeDescription::CreateFromTypes(
                   db_, {"part"}, {{"composition", "part", "part", false}})
                   .ok());
}

TEST_F(MoleculeTest, DescriptionValidatesAttributeNarrowing) {
  EXPECT_FALSE(MoleculeDescription::Create(
                   db_,
                   {MoleculeNode{"state", "state",
                                 std::vector<std::string>{"bogus"}}},
                   {})
                   .ok());
  EXPECT_TRUE(MoleculeDescription::Create(
                  db_,
                  {MoleculeNode{"state", "state",
                                std::vector<std::string>{"name"}}},
                  {})
                  .ok());
}

TEST_F(MoleculeTest, ResolveQualifier) {
  MoleculeDescription md = PointNeighborhood();
  ASSERT_TRUE(md.ResolveQualifier("point").ok());
  EXPECT_EQ(*md.ResolveQualifier("river"), *md.NodeIndex("river"));
  EXPECT_FALSE(md.ResolveQualifier("bogus").ok());
}

// ---- Derivation (m_dom, Def. 6) --------------------------------------------

TEST_F(MoleculeTest, MtStateDerivesOneMoleculePerState) {
  auto mt = DefineMoleculeType(db_, "mt_state", MtState());
  ASSERT_TRUE(mt.ok()) << mt.status();
  EXPECT_EQ(mt->size(), 10u);
  for (const Molecule& m : mt->molecules()) {
    EXPECT_TRUE(ValidateMolecule(db_, mt->description(), m).ok());
  }
}

TEST_F(MoleculeTest, SpMoleculeMatchesFigure2) {
  auto mt = DefineMoleculeType(db_, "mt_state", MtState());
  ASSERT_TRUE(mt.ok());
  const Molecule* sp = FindByRoot(mt->molecules(), ids_.states["SP"]);
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(NamesOf(*sp, mt->description(), "state"),
            std::set<std::string>{"SP"});
  EXPECT_EQ(NamesOf(*sp, mt->description(), "area"),
            std::set<std::string>{"a7"});
  EXPECT_EQ(NamesOf(*sp, mt->description(), "edge"),
            std::set<std::string>{"e1"});
  EXPECT_EQ(NamesOf(*sp, mt->description(), "point"),
            (std::set<std::string>{"pn", "p2"}));
}

TEST_F(MoleculeTest, SpAndMgMoleculesShareSubobjects) {
  // Fig. 2 lower part: the SP and MG molecules overlap (shared subobjects).
  auto mt = DefineMoleculeType(db_, "mt_state", MtState());
  ASSERT_TRUE(mt.ok());
  const Molecule* sp = FindByRoot(mt->molecules(), ids_.states["SP"]);
  const Molecule* mg = FindByRoot(mt->molecules(), ids_.states["MG"]);
  ASSERT_NE(sp, nullptr);
  ASSERT_NE(mg, nullptr);
  size_t point_idx = *mt->description().NodeIndex("point");
  EXPECT_TRUE(sp->ContainsAtom(point_idx, ids_.points["pn"]));
  EXPECT_TRUE(mg->ContainsAtom(point_idx, ids_.points["pn"]))
      << "molecules must be allowed to overlap in their atom sets";
}

TEST_F(MoleculeTest, PointNeighborhoodMatchesFigure2) {
  auto mt = DefineMoleculeType(db_, "pn", PointNeighborhood());
  ASSERT_TRUE(mt.ok()) << mt.status();
  EXPECT_EQ(mt->size(), 12u);  // one molecule per point

  const Molecule* pn = FindByRoot(mt->molecules(), ids_.points["pn"]);
  ASSERT_NE(pn, nullptr);
  EXPECT_EQ(NamesOf(*pn, mt->description(), "edge"),
            (std::set<std::string>{"e1", "e2", "e3", "e4"}));
  EXPECT_EQ(NamesOf(*pn, mt->description(), "state"),
            (std::set<std::string>{"SP", "MS", "MG", "GO"}));
  EXPECT_EQ(NamesOf(*pn, mt->description(), "river"),
            std::set<std::string>{"Parana"});
  EXPECT_TRUE(ValidateMolecule(db_, mt->description(), *pn).ok());
}

TEST_F(MoleculeTest, SymmetricUseOfLinks) {
  // The same database answers both directions (Ch. 2's flexibility claim):
  // state->...->point and point->...->state, without any schema change.
  auto down = DefineMoleculeType(db_, "down", MtState());
  auto up = DefineMoleculeType(db_, "up", PointNeighborhood());
  ASSERT_TRUE(down.ok());
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(down->size(), 10u);
  EXPECT_EQ(up->size(), 12u);
}

TEST_F(MoleculeTest, DeriveMoleculeForSingleRoot) {
  MoleculeDescription md = MtState();
  auto m = DeriveMoleculeFor(db_, md, ids_.states["SP"]);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->root(), ids_.states["SP"]);
  EXPECT_EQ(m->atom_count(), 5u);  // SP, a7, e1, pn, p2

  // A non-root atom id is rejected.
  EXPECT_EQ(DeriveMoleculeFor(db_, md, ids_.points["pn"]).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MoleculeTest, MoleculeWithEmptyBranches) {
  // A state without area links yields a root-only molecule.
  auto id = db_.InsertAtom("state", {Value("XX"), Value(int64_t{1})});
  ASSERT_TRUE(id.ok());
  auto m = DeriveMoleculeFor(db_, MtState(), *id);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atom_count(), 1u);
  EXPECT_TRUE(m->links().empty());
  EXPECT_TRUE(ValidateMolecule(db_, MtState(), *m).ok());
}

TEST_F(MoleculeTest, ConjunctiveDiamondSemantics) {
  // Def. 6's `contained` quantifies over ALL incoming directed link types:
  // in a diamond, an atom of the shared sink type belongs to the molecule
  // only if it is linked from contained atoms through BOTH branches.
  Database db("DIAMOND");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(db.DefineAtomType("r", s).ok());
  ASSERT_TRUE(db.DefineAtomType("l1", s).ok());
  ASSERT_TRUE(db.DefineAtomType("l2", s).ok());
  ASSERT_TRUE(db.DefineAtomType("sink", s).ok());
  ASSERT_TRUE(db.DefineLinkType("rl1", "r", "l1").ok());
  ASSERT_TRUE(db.DefineLinkType("rl2", "r", "l2").ok());
  ASSERT_TRUE(db.DefineLinkType("l1s", "l1", "sink").ok());
  ASSERT_TRUE(db.DefineLinkType("l2s", "l2", "sink").ok());

  AtomId r = *db.InsertAtom("r", {Value("r")});
  AtomId a = *db.InsertAtom("l1", {Value("a")});
  AtomId b = *db.InsertAtom("l2", {Value("b")});
  AtomId both = *db.InsertAtom("sink", {Value("both")});
  AtomId only_l1 = *db.InsertAtom("sink", {Value("only_l1")});
  ASSERT_TRUE(db.InsertLink("rl1", r, a).ok());
  ASSERT_TRUE(db.InsertLink("rl2", r, b).ok());
  ASSERT_TRUE(db.InsertLink("l1s", a, both).ok());
  ASSERT_TRUE(db.InsertLink("l2s", b, both).ok());
  ASSERT_TRUE(db.InsertLink("l1s", a, only_l1).ok());

  auto md = MoleculeDescription::CreateFromTypes(db, {"r", "l1", "l2", "sink"},
                                        {{"rl1", "r", "l1", false},
                                         {"rl2", "r", "l2", false},
                                         {"l1s", "l1", "sink", false},
                                         {"l2s", "l2", "sink", false}});
  ASSERT_TRUE(md.ok()) << md.status();
  auto m = DeriveMoleculeFor(db, *md, r);
  ASSERT_TRUE(m.ok());
  size_t sink_idx = *md->NodeIndex("sink");
  EXPECT_TRUE(m->ContainsAtom(sink_idx, both));
  EXPECT_FALSE(m->ContainsAtom(sink_idx, only_l1))
      << "an atom reachable through only one of two incoming edges must be "
         "excluded (∀-semantics of `contained`)";
  EXPECT_TRUE(ValidateMolecule(db, *md, *m).ok());
}

TEST_F(MoleculeTest, CanonicalKeyIsOrderInsensitive) {
  Molecule a(AtomId{1}, 2);
  a.MutableAtomsOf(0).push_back(AtomId{1});
  a.MutableAtomsOf(1) = {AtomId{5}, AtomId{3}};
  a.AddLink({0, AtomId{1}, AtomId{5}});
  a.AddLink({0, AtomId{1}, AtomId{3}});

  Molecule b(AtomId{1}, 2);
  b.MutableAtomsOf(0).push_back(AtomId{1});
  b.MutableAtomsOf(1) = {AtomId{3}, AtomId{5}};
  b.AddLink({0, AtomId{1}, AtomId{3}});
  b.AddLink({0, AtomId{1}, AtomId{5}});

  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_EQ(a, b);

  Molecule c(AtomId{1}, 2);
  c.MutableAtomsOf(0).push_back(AtomId{1});
  c.MutableAtomsOf(1) = {AtomId{3}};
  c.AddLink({0, AtomId{1}, AtomId{3}});
  EXPECT_NE(a.CanonicalKey(), c.CanonicalKey());
}

TEST_F(MoleculeTest, ValidateMoleculeRejectsCorruption) {
  MoleculeDescription md = MtState();
  auto m = DeriveMoleculeFor(db_, md, ids_.states["SP"]);
  ASSERT_TRUE(m.ok());

  // Foreign atom injected into a node group.
  Molecule bad = *m;
  bad.MutableAtomsOf(*md.NodeIndex("area")).push_back(ids_.areas["a1"]);
  EXPECT_FALSE(ValidateMolecule(db_, md, bad).ok());

  // Fabricated link not present in the database.
  Molecule bad2 = *m;
  bad2.AddLink(MoleculeLink{0, ids_.states["SP"], ids_.areas["a1"]});
  EXPECT_FALSE(ValidateMolecule(db_, md, bad2).ok());
}

TEST_F(MoleculeTest, DerivationOverDerivedAtomTypesViaInheritedLinks) {
  // Theorem 1's purpose: algebra results stay usable for molecule
  // derivation. Restrict states, then derive molecules from the result.
  namespace a = algebra;
  auto big = algebra::Restrict(
      db_, "state", expr::Gt(expr::Attr("hectare"), expr::Lit(int64_t{1000})),
      "big_states");
  ASSERT_TRUE(big.ok());
  auto md = MoleculeDescription::CreateFromTypes(
      db_, {"big_states", "area"},
      {{"state-area@big_states", "big_states", "area", false}});
  ASSERT_TRUE(md.ok()) << md.status();
  auto mt = DefineMoleculeType(db_, "big_mols", *md);
  ASSERT_TRUE(mt.ok());
  EXPECT_EQ(mt->size(), 3u);  // BA, MS, RS
  for (const Molecule& m : mt->molecules()) {
    EXPECT_EQ(m.atom_count(), 2u);  // state + its area
  }
}

TEST_F(MoleculeTest, ForRootsReportsEveryInvalidRootAtOnce) {
  MoleculeDescription md = MtState();
  // One atom of a non-root type and one unknown id, mixed with a valid
  // root: validation happens before any derivation and names both bad ids.
  AtomId valid_root = ids_.states.at("BA");
  AtomId wrong_type = ids_.points.at("pn");
  AtomId unknown{999999};
  auto result = DeriveMoleculesForRoots(
      db_, md, {valid_root, wrong_type, unknown});
  ASSERT_FALSE(result.ok());
  Status status = result.status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  std::string message = status.message();
  EXPECT_NE(message.find("#" + std::to_string(wrong_type.value)),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("#" + std::to_string(unknown.value)),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("state"), std::string::npos) << message;

  // A single bad root keeps the singular wording.
  auto single = DeriveMoleculesForRoots(db_, md, {wrong_type});
  ASSERT_FALSE(single.ok());
  EXPECT_NE(single.status().message().find("atom #"), std::string::npos)
      << single.status().message();
}

}  // namespace
}  // namespace mad
