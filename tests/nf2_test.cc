#include "relational/nf2.h"

#include <gtest/gtest.h>

#include "expr/expr.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "workload/geo.h"

namespace mad {
namespace {

class Nf2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  MoleculeType MtState() {
    auto md = MoleculeDescription::CreateFromTypes(
        db_, {"state", "area", "edge", "point"},
        {{"state-area", "state", "area", false},
         {"area-edge", "area", "edge", false},
         {"edge-point", "edge", "point", false}});
    EXPECT_TRUE(md.ok());
    auto mt = DefineMoleculeType(db_, "mt_state", *md);
    EXPECT_TRUE(mt.ok());
    return *std::move(mt);
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
};

TEST_F(Nf2Test, HierarchicalMoleculeTypeConverts) {
  MoleculeType mt = MtState();
  nf2::Nf2ConversionStats stats;
  auto nested = nf2::MoleculeTypeToNf2(db_, mt, {}, &stats);
  ASSERT_TRUE(nested.ok()) << nested.status();

  EXPECT_EQ(nested->size(), 10u);  // one tuple per state molecule
  // Schema: state attributes + one relation-valued attribute per child.
  EXPECT_EQ(nested->schema().ToString(),
            "(name: STRING, hectare: INT64, area: (name: STRING, hectare: "
            "INT64, edge: (name: STRING, point: (name: STRING, x: DOUBLE, "
            "y: DOUBLE))))");
}

TEST_F(Nf2Test, SharedSubobjectsAreDuplicated) {
  // Point 'pn' belongs to 4 state molecules: NF²'s strict hierarchy must
  // duplicate it — the paper's Ch. 5 argument, quantified.
  MoleculeType mt = MtState();
  nf2::Nf2ConversionStats stats;
  auto nested = nf2::MoleculeTypeToNf2(db_, mt, {}, &stats);
  ASSERT_TRUE(nested.ok());
  EXPECT_GT(stats.duplicated_atoms(), 0u);
  // 'pn' alone accounts for 3 duplicates (4 copies, 1 distinct).
  EXPECT_GE(stats.duplicated_atoms(), 3u);
  EXPECT_EQ(stats.materialized_atoms,
            stats.distinct_atoms + stats.duplicated_atoms());
}

TEST_F(Nf2Test, DuplicationCanBeRejected) {
  MoleculeType mt = MtState();
  nf2::Nf2ConversionOptions options;
  options.allow_duplication = false;
  auto nested = nf2::MoleculeTypeToNf2(db_, mt, options);
  EXPECT_EQ(nested.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(Nf2Test, DisjointSubsetConvertsWithoutDuplication) {
  // Restricting to a single molecule removes cross-molecule sharing.
  MoleculeType mt = MtState();
  auto one = RestrictMolecules(
      db_, mt, expr::Eq(expr::Attr("state", "name"), expr::Lit("BA")), "ba");
  ASSERT_TRUE(one.ok());
  nf2::Nf2ConversionOptions options;
  options.allow_duplication = false;
  nf2::Nf2ConversionStats stats;
  auto nested = nf2::MoleculeTypeToNf2(db_, *one, options, &stats);
  ASSERT_TRUE(nested.ok()) << nested.status();
  EXPECT_EQ(nested->size(), 1u);
  EXPECT_EQ(stats.duplicated_atoms(), 0u);
  // BA molecule: BA + a1 + e8 + p9 + p10.
  EXPECT_EQ(stats.distinct_atoms, 5u);
}

TEST_F(Nf2Test, NonTreeDescriptionsRejected) {
  // Branching out is fine (a node with two outgoing edges); what NF²
  // cannot express is a node with two *incoming* edges — build one.
  Database db("DIAMOND");
  Schema s;
  ASSERT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(db.DefineAtomType("r", s).ok());
  ASSERT_TRUE(db.DefineAtomType("a", s).ok());
  ASSERT_TRUE(db.DefineAtomType("b", s).ok());
  ASSERT_TRUE(db.DefineAtomType("sink", s).ok());
  ASSERT_TRUE(db.DefineLinkType("ra", "r", "a").ok());
  ASSERT_TRUE(db.DefineLinkType("rb", "r", "b").ok());
  ASSERT_TRUE(db.DefineLinkType("as", "a", "sink").ok());
  ASSERT_TRUE(db.DefineLinkType("bs", "b", "sink").ok());
  auto md = MoleculeDescription::CreateFromTypes(db, {"r", "a", "b", "sink"},
                                                 {{"ra", "r", "a", false},
                                                  {"rb", "r", "b", false},
                                                  {"as", "a", "sink", false},
                                                  {"bs", "b", "sink", false}});
  ASSERT_TRUE(md.ok());
  auto mt = DefineMoleculeType(db, "diamond", *md);
  ASSERT_TRUE(mt.ok());
  auto nested = nf2::MoleculeTypeToNf2(db, *mt);
  EXPECT_EQ(nested.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(Nf2Test, AttributeNarrowingIsHonoured) {
  MoleculeType mt = MtState();
  MoleculeProjectionSpec spec;
  spec.keep_labels = {"state", "area"};
  spec.attributes["state"] = {"name"};
  auto projected = ProjectMolecules(db_, mt, spec, "narrow");
  ASSERT_TRUE(projected.ok());
  auto nested = nf2::MoleculeTypeToNf2(db_, *projected);
  ASSERT_TRUE(nested.ok()) << nested.status();
  EXPECT_EQ(nested->schema().ToString(),
            "(name: STRING, area: (name: STRING, hectare: INT64))");
}

TEST_F(Nf2Test, TotalAtomicFieldsAndToString) {
  MoleculeType mt = MtState();
  auto one = RestrictMolecules(
      db_, mt, expr::Eq(expr::Attr("state", "name"), expr::Lit("SP")), "sp");
  ASSERT_TRUE(one.ok());
  auto nested = nf2::MoleculeTypeToNf2(db_, *one);
  ASSERT_TRUE(nested.ok());
  // SP + a7 + e1 + pn + p2: 2 + 2 + 1 + 3 + 3 atomic fields.
  EXPECT_EQ(nested->TotalAtomicFields(), 11u);
  std::string text = nested->ToString();
  EXPECT_NE(text.find("'SP'"), std::string::npos);
  EXPECT_NE(text.find("'pn'"), std::string::npos);
}

TEST_F(Nf2Test, EmptyMoleculeSetConverts) {
  MoleculeType mt = MtState();
  auto none = RestrictMolecules(
      db_, mt, expr::Eq(expr::Attr("state", "name"), expr::Lit("ZZ")), "none");
  ASSERT_TRUE(none.ok());
  auto nested = nf2::MoleculeTypeToNf2(db_, *none);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->size(), 0u);
}

}  // namespace
}  // namespace mad
