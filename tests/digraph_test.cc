#include "util/digraph.h"

#include <gtest/gtest.h>

namespace mad {
namespace {

Digraph Chain() {
  // state -> area -> edge -> point (the mt_state structure of Fig. 2).
  Digraph g;
  g.AddNode("state");
  g.AddNode("area");
  g.AddNode("edge");
  g.AddNode("point");
  EXPECT_TRUE(g.AddEdge("state-area", "state", "area").ok());
  EXPECT_TRUE(g.AddEdge("area-edge", "area", "edge").ok());
  EXPECT_TRUE(g.AddEdge("edge-point", "edge", "point").ok());
  return g;
}

Digraph PointNeighborhood() {
  // point -> edge -> {area -> state, net -> river} (Fig. 2, upper).
  Digraph g;
  for (const char* n : {"point", "edge", "area", "net", "state", "river"}) {
    g.AddNode(n);
  }
  EXPECT_TRUE(g.AddEdge("point-edge", "point", "edge").ok());
  EXPECT_TRUE(g.AddEdge("edge-area", "edge", "area").ok());
  EXPECT_TRUE(g.AddEdge("edge-net", "edge", "net").ok());
  EXPECT_TRUE(g.AddEdge("area-state", "area", "state").ok());
  EXPECT_TRUE(g.AddEdge("net-river", "net", "river").ok());
  return g;
}

TEST(DigraphTest, AddNodeRejectsDuplicates) {
  Digraph g;
  EXPECT_TRUE(g.AddNode("a"));
  EXPECT_FALSE(g.AddNode("a"));
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(DigraphTest, AddEdgeValidatesEndpoints) {
  Digraph g;
  g.AddNode("a");
  EXPECT_EQ(g.AddEdge("l", "a", "b").code(), StatusCode::kNotFound);
  EXPECT_EQ(g.AddEdge("l", "b", "a").code(), StatusCode::kNotFound);
}

TEST(DigraphTest, OutAndInEdges) {
  Digraph g = PointNeighborhood();
  auto out = g.OutEdges("edge");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->to, "area");
  EXPECT_EQ(out[1]->to, "net");
  auto in = g.InEdges("edge");
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0]->from, "point");
  EXPECT_TRUE(g.OutEdges("river").empty());
}

TEST(DigraphTest, ChainIsRootedDag) {
  Digraph g = Chain();
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_TRUE(g.IsCoherent());
  auto root = g.CheckRootedDag();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, "state");
}

TEST(DigraphTest, BranchingIsRootedDag) {
  Digraph g = PointNeighborhood();
  auto root = g.CheckRootedDag();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, "point");
}

TEST(DigraphTest, CycleDetected) {
  Digraph g;
  g.AddNode("a");
  g.AddNode("b");
  ASSERT_TRUE(g.AddEdge("x", "a", "b").ok());
  ASSERT_TRUE(g.AddEdge("y", "b", "a").ok());
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_EQ(g.CheckRootedDag().status().code(),
            StatusCode::kConstraintViolation);
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

TEST(DigraphTest, SelfLoopIsCycle) {
  Digraph g;
  g.AddNode("part");
  ASSERT_TRUE(g.AddEdge("composition", "part", "part").ok());
  EXPECT_FALSE(g.IsAcyclic());
}

TEST(DigraphTest, IncoherentGraphDetected) {
  Digraph g;
  g.AddNode("a");
  g.AddNode("b");
  EXPECT_FALSE(g.IsCoherent());
  EXPECT_EQ(g.CheckRootedDag().status().code(),
            StatusCode::kConstraintViolation);
}

TEST(DigraphTest, EmptyGraphIsNeitherCoherentNorRooted) {
  Digraph g;
  EXPECT_FALSE(g.IsCoherent());
  EXPECT_EQ(g.CheckRootedDag().status().code(), StatusCode::kInvalidArgument);
}

TEST(DigraphTest, SingleNodeIsRootedDag) {
  Digraph g;
  g.AddNode("only");
  auto root = g.CheckRootedDag();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, "only");
}

TEST(DigraphTest, TwoRootsRejected) {
  Digraph g;
  g.AddNode("r1");
  g.AddNode("r2");
  g.AddNode("leaf");
  ASSERT_TRUE(g.AddEdge("x", "r1", "leaf").ok());
  ASSERT_TRUE(g.AddEdge("y", "r2", "leaf").ok());
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_TRUE(g.IsCoherent());
  EXPECT_EQ(g.Roots().size(), 2u);
  EXPECT_FALSE(g.CheckRootedDag().ok());
}

TEST(DigraphTest, TopologicalOrderIsDeterministicAndValid) {
  Digraph g = PointNeighborhood();
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), 6u);
  EXPECT_EQ(order->front(), "point");
  // Every edge goes forward in the order.
  auto pos = [&](const std::string& n) {
    return std::find(order->begin(), order->end(), n) - order->begin();
  };
  for (const auto& e : g.edges()) {
    EXPECT_LT(pos(e.from), pos(e.to)) << e.from << "->" << e.to;
  }
}

TEST(DigraphTest, ReachableFrom) {
  Digraph g = PointNeighborhood();
  auto from_edge = g.ReachableFrom("edge");
  EXPECT_EQ(from_edge,
            (std::set<std::string>{"edge", "area", "net", "state", "river"}));
  auto from_river = g.ReachableFrom("river");
  EXPECT_EQ(from_river, std::set<std::string>{"river"});
  EXPECT_TRUE(g.ReachableFrom("absent").empty());
}

TEST(DigraphTest, DiamondSharedSubobjectShapeIsValid) {
  // A DAG where two branches re-join (shared subobject at type level).
  Digraph g;
  for (const char* n : {"root", "l", "r", "shared"}) g.AddNode(n);
  ASSERT_TRUE(g.AddEdge("a", "root", "l").ok());
  ASSERT_TRUE(g.AddEdge("b", "root", "r").ok());
  ASSERT_TRUE(g.AddEdge("c", "l", "shared").ok());
  ASSERT_TRUE(g.AddEdge("d", "r", "shared").ok());
  auto root = g.CheckRootedDag();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, "root");
}

TEST(DigraphTest, ParallelEdgesAllowed) {
  // Two link types between the same pair of atom types (allowed by Def. 2).
  Digraph g;
  g.AddNode("a");
  g.AddNode("b");
  ASSERT_TRUE(g.AddEdge("l1", "a", "b").ok());
  ASSERT_TRUE(g.AddEdge("l2", "a", "b").ok());
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.CheckRootedDag().ok());
}

}  // namespace
}  // namespace mad
