// Metrics registry: instrument semantics, snapshot shape, reference
// stability across Reset, and multi-threaded update safety (the test the
// ThreadSanitizer CI job exists for).

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mad {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeSetsAndAdds) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(MetricsTest, HistogramBucketsByPowerOfTwo) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum_us(), 1006u);
  EXPECT_EQ(h.max_us(), 1000u);
  EXPECT_EQ(h.bucket(0), 1u);  // [0, 1)
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 2u);  // [2, 4)
  EXPECT_EQ(h.bucket(10), 1u);  // [512, 1024)
}

TEST(MetricsTest, HistogramQuantilesAreBucketUpperBounds) {
  Histogram h;
  EXPECT_EQ(h.ApproximateQuantileUs(0.5), 0u);
  for (int i = 0; i < 99; ++i) h.Observe(3);   // bucket [2, 4)
  h.Observe(5000);                             // bucket [4096, 8192)
  EXPECT_EQ(h.ApproximateQuantileUs(0.5), 3u);
  EXPECT_EQ(h.ApproximateQuantileUs(0.99), 3u);
  EXPECT_EQ(h.ApproximateQuantileUs(1.0), 8191u);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  Registry registry;
  Counter& a = registry.GetCounter("stable.a");
  a.Add(5);
  // Registering more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("stable.filler" + std::to_string(i));
  }
  Counter& a_again = registry.GetCounter("stable.a");
  EXPECT_EQ(&a, &a_again);
  EXPECT_EQ(a_again.value(), 5u);

  // Reset zeroes values but keeps the instruments (and references) alive.
  registry.Reset();
  EXPECT_EQ(a.value(), 0u);
  a.Increment();
  EXPECT_EQ(registry.GetCounter("stable.a").value(), 1u);
}

TEST(MetricsTest, SnapshotIsSortedAndTyped) {
  Registry registry;
  registry.GetCounter("zz.counter").Add(3);
  registry.GetGauge("aa.gauge").Set(-7);
  registry.GetHistogram("mm.hist").Observe(10);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.samples.size(), 3u);
  EXPECT_EQ(snapshot.samples[0].name, "aa.gauge");
  EXPECT_EQ(snapshot.samples[0].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(snapshot.samples[0].value, -7);
  EXPECT_EQ(snapshot.samples[1].name, "mm.hist");
  EXPECT_EQ(snapshot.samples[1].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(snapshot.samples[1].count, 1u);
  EXPECT_EQ(snapshot.samples[2].name, "zz.counter");
  EXPECT_EQ(snapshot.samples[2].value, 3);
}

TEST(MetricsTest, ScopedTimerObservesIntoHistogram) {
  Histogram h;
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsTest, ConcurrentUpdatesAreExact) {
  // Counters and histograms are written from ThreadPool workers; hammer one
  // registry from several threads and require exact totals. Run under
  // -fsanitize=thread this also proves the update path is race-free.
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads race on lookup too, not just on the update.
      Counter& counter = registry.GetCounter("conc.counter");
      Histogram& hist = registry.GetHistogram("conc.hist");
      Gauge& gauge = registry.GetGauge("conc.gauge");
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        hist.Observe(static_cast<uint64_t>(i % 100));
        gauge.Set(t);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.GetCounter("conc.counter").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  Histogram& hist = registry.GetHistogram("conc.hist");
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) bucket_total += hist.bucket(i);
  EXPECT_EQ(bucket_total, hist.count());
  int64_t gauge_value = registry.GetGauge("conc.gauge").value();
  EXPECT_GE(gauge_value, 0);
  EXPECT_LT(gauge_value, kThreads);
}

}  // namespace
}  // namespace mad
