#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/recovery.h"

namespace mad {
namespace {

namespace fs = std::filesystem;

std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> records;
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDefineAtomType;
    r.name = "part";
    EXPECT_TRUE(r.schema.AddAttribute("name", DataType::kString).ok());
    EXPECT_TRUE(r.schema.AddAttribute("weight", DataType::kDouble).ok());
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDefineLinkType;
    r.name = "composition";
    r.first = "part";
    r.second = "part";
    r.cardinality = LinkCardinality::kOneToMany;
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kInsertAtom;
    r.name = "part";
    r.id = 7;
    r.values = {Value("bolt"), Value(0.25)};
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kUpdateAtom;
    r.name = "part";
    r.id = 7;
    r.values = {Value("bolt M6"), Value()};
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kInsertLink;
    r.name = "composition";
    r.id = 7;
    r.id2 = 9;
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kEraseLink;
    r.name = "composition";
    r.id = 7;
    r.id2 = 9;
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDeleteAtom;
    r.name = "part";
    r.id = 7;
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kCreateIndex;
    r.name = "part";
    r.attribute = "name";
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDropIndex;
    r.name = "part";
    r.attribute = "name";
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDropLinkType;
    r.name = "composition";
    records.push_back(std::move(r));
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDropAtomType;
    r.name = "part";
    records.push_back(std::move(r));
  }
  return records;
}

void ExpectRecordsEqual(const WalRecord& want, const WalRecord& got) {
  EXPECT_EQ(want.kind, got.kind);
  EXPECT_EQ(want.name, got.name);
  EXPECT_EQ(want.first, got.first);
  EXPECT_EQ(want.second, got.second);
  EXPECT_EQ(want.cardinality, got.cardinality);
  EXPECT_EQ(want.id, got.id);
  EXPECT_EQ(want.id2, got.id2);
  ASSERT_EQ(want.values.size(), got.values.size());
  for (size_t i = 0; i < want.values.size(); ++i) {
    EXPECT_EQ(want.values[i], got.values[i]);
  }
  EXPECT_EQ(want.attribute, got.attribute);
  ASSERT_EQ(want.schema.attribute_count(), got.schema.attribute_count());
  for (size_t i = 0; i < want.schema.attribute_count(); ++i) {
    EXPECT_EQ(want.schema.attribute(i).name, got.schema.attribute(i).name);
    EXPECT_EQ(want.schema.attribute(i).type, got.schema.attribute(i).type);
  }
}

TEST(WalRecordTest, EveryKindRoundTrips) {
  for (const WalRecord& record : SampleRecords()) {
    std::string payload = EncodeWalRecordPayload(record);
    auto decoded = DecodeWalRecordPayload(payload);
    ASSERT_TRUE(decoded.ok())
        << "kind " << static_cast<int>(record.kind) << ": "
        << decoded.status();
    ExpectRecordsEqual(record, *decoded);
  }
}

TEST(WalRecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeWalRecordPayload("").ok());
  EXPECT_FALSE(DecodeWalRecordPayload(std::string(1, '\x00')).ok());
  EXPECT_FALSE(DecodeWalRecordPayload(std::string(1, '\x63')).ok());
  // A valid payload with trailing bytes is rejected.
  std::string payload = EncodeWalRecordPayload(SampleRecords()[0]);
  EXPECT_FALSE(DecodeWalRecordPayload(payload + "x").ok());
  // Truncations never decode.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeWalRecordPayload(payload.substr(0, cut)).ok());
  }
}

TEST(WalScanTest, TruncationAtEveryOffsetYieldsValidPrefix) {
  std::string wal;
  std::vector<size_t> boundaries;  // cumulative frame ends
  for (const WalRecord& record : SampleRecords()) {
    wal += FrameWalRecord(record);
    boundaries.push_back(wal.size());
  }

  for (size_t cut = 0; cut <= wal.size(); ++cut) {
    WalReadResult result = ReadWal(std::string_view(wal).substr(0, cut));
    // The scan recovers exactly the records whose frames end at or before
    // the cut.
    size_t expect_records = 0;
    while (expect_records < boundaries.size() &&
           boundaries[expect_records] <= cut) {
      ++expect_records;
    }
    EXPECT_EQ(result.records.size(), expect_records) << "cut at " << cut;
    size_t expect_valid =
        expect_records == 0 ? 0 : boundaries[expect_records - 1];
    EXPECT_EQ(result.valid_bytes, expect_valid) << "cut at " << cut;
    EXPECT_EQ(result.torn_tail, cut != expect_valid) << "cut at " << cut;
    EXPECT_EQ(result.discarded_bytes, cut - expect_valid) << "cut at " << cut;
  }
}

TEST(WalScanTest, BitFlipStopsScanAtCorruptFrame) {
  std::vector<WalRecord> records = SampleRecords();
  std::string wal;
  size_t first_frame_end = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    wal += FrameWalRecord(records[i]);
    if (i == 0) first_frame_end = wal.size();
  }
  // Flip one bit inside the second frame's payload.
  std::string corrupt = wal;
  corrupt[first_frame_end + 9] ^= 0x01;
  WalReadResult result = ReadWal(corrupt);
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.valid_bytes, first_frame_end);
  EXPECT_TRUE(result.torn_tail);
}

TEST(WalWriterTest, AppendReadBackAndGroupCommit) {
  std::string dir = ::testing::TempDir() + "wal_writer_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string path = dir + "/wal-0.log";

  std::vector<WalRecord> records = SampleRecords();
  {
    WalWriterOptions options;
    options.sync = false;
    options.group_commit_bytes = 1 << 20;  // nothing auto-flushes
    auto writer = WalWriter::Open(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (const WalRecord& record : records) {
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
    EXPECT_EQ((*writer)->records_appended(), records.size());
    // Everything still sits in the group-commit buffer.
    EXPECT_EQ((*writer)->flush_count(), 0u);
    EXPECT_EQ(fs::file_size(path), 0u);
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->sync_count(), 1u);
    EXPECT_EQ(fs::file_size(path), (*writer)->bytes_appended());
  }

  auto readback = ReadWalFile(path);
  ASSERT_TRUE(readback.ok()) << readback.status();
  EXPECT_FALSE(readback->torn_tail);
  ASSERT_EQ(readback->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], readback->records[i]);
  }

  // Sync mode reaches the file on every append.
  {
    WalWriterOptions options;
    options.sync = true;
    auto writer = WalWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    size_t before = fs::file_size(path);
    ASSERT_TRUE((*writer)->Append(records[0]).ok());
    EXPECT_GT(fs::file_size(path), before);
    EXPECT_GE((*writer)->sync_count(), 1u);
  }
  fs::remove_all(dir);
}

TEST(WalWriterTest, TruncateToCutsTornTail) {
  std::string dir = ::testing::TempDir() + "wal_truncate_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string path = dir + "/wal-0.log";

  std::vector<WalRecord> records = SampleRecords();
  std::string frame = FrameWalRecord(records[0]);
  {
    std::ofstream out(path, std::ios::binary);
    out << frame;
    out.write(frame.data(), frame.size() / 2);  // torn second frame
  }
  auto scan = ReadWalFile(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, frame.size());

  WalWriterOptions options;
  options.sync = true;
  options.has_truncate_to = true;
  options.truncate_to = scan->valid_bytes;
  {
    auto writer = WalWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(records[1]).ok());
  }
  auto rescan = ReadWalFile(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan->torn_tail);
  ASSERT_EQ(rescan->records.size(), 2u);
  ExpectRecordsEqual(records[0], rescan->records[0]);
  ExpectRecordsEqual(records[1], rescan->records[1]);
  fs::remove_all(dir);
}

TEST(WalReplayTest, ReplayReproducesDirectMutations) {
  Database db("wal_replay");
  std::string wal;

  // Capture the WAL an attached listener would write, by hand.
  auto log = [&wal](WalRecord record) { wal += FrameWalRecord(record); };
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDefineAtomType;
    r.name = "t";
    ASSERT_TRUE(r.schema.AddAttribute("x", DataType::kInt64).ok());
    log(r);
    ASSERT_TRUE(db.DefineAtomType("t", r.schema).ok());
  }
  auto id = db.InsertAtom("t", {Value(int64_t{41})});
  ASSERT_TRUE(id.ok());
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kInsertAtom;
    r.name = "t";
    r.id = id->value;
    r.values = {Value(int64_t{41})};
    log(r);
  }
  ASSERT_TRUE(db.UpdateAtom("t", *id, {Value(int64_t{42})}).ok());
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kUpdateAtom;
    r.name = "t";
    r.id = id->value;
    r.values = {Value(int64_t{42})};
    log(r);
  }

  WalReadResult scanned = ReadWal(wal);
  ASSERT_EQ(scanned.records.size(), 3u);
  Database replayed("wal_replay");
  for (const WalRecord& record : scanned.records) {
    ASSERT_TRUE(ApplyWalRecord(record, &replayed).ok());
  }
  auto v = replayed.GetAttribute("t", *id, "x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 42);
}

}  // namespace
}  // namespace mad
