#include "expr/expr.h"

#include <gtest/gtest.h>

#include "expr/eval.h"

namespace mad {
namespace e = expr;
namespace {

Schema StateSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  EXPECT_TRUE(s.AddAttribute("hectare", DataType::kInt64).ok());
  EXPECT_TRUE(s.AddAttribute("coastal", DataType::kBool).ok());
  return s;
}

Atom SpAtom() {
  return Atom{AtomId{1},
              {Value("SP"), Value(int64_t{1000}), Value(true)}};
}

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() : schema_(StateSchema()), atom_(SpAtom()) {
    bindings_.Bind("state", &schema_, &atom_);
  }

  Result<bool> Eval(const e::ExprPtr& expr) {
    return e::EvalPredicate(*expr, bindings_);
  }
  Result<Value> EvalV(const e::ExprPtr& expr) {
    return e::EvalValue(*expr, bindings_);
  }

  Schema schema_;
  Atom atom_;
  e::BindingSet bindings_;
};

TEST_F(ExprEvalTest, LiteralAndAttrRef) {
  auto v = EvalV(e::Lit(int64_t{7}));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 7);

  auto name = EvalV(e::Attr("state", "name"));
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->AsString(), "SP");

  // Unqualified resolution.
  auto hectare = EvalV(e::Attr("hectare"));
  ASSERT_TRUE(hectare.ok());
  EXPECT_EQ(hectare->AsInt64(), 1000);
}

TEST_F(ExprEvalTest, UnknownReferencesFail) {
  EXPECT_FALSE(EvalV(e::Attr("state", "bogus")).ok());
  EXPECT_FALSE(EvalV(e::Attr("bogus", "name")).ok());
  EXPECT_FALSE(EvalV(e::Attr("bogus")).ok());
}

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(*Eval(e::Eq(e::Attr("name"), e::Lit("SP"))));
  EXPECT_FALSE(*Eval(e::Eq(e::Attr("name"), e::Lit("MG"))));
  EXPECT_TRUE(*Eval(e::Ne(e::Attr("name"), e::Lit("MG"))));
  EXPECT_FALSE(*Eval(e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000}))));
  EXPECT_TRUE(*Eval(e::Ge(e::Attr("hectare"), e::Lit(int64_t{1000}))));
  EXPECT_TRUE(*Eval(e::Lt(e::Attr("hectare"), e::Lit(int64_t{1001}))));
  EXPECT_TRUE(*Eval(e::Le(e::Attr("hectare"), e::Lit(int64_t{1000}))));
}

TEST_F(ExprEvalTest, NumericCrossTypeComparison) {
  EXPECT_TRUE(*Eval(e::Eq(e::Attr("hectare"), e::Lit(1000.0))));
  EXPECT_TRUE(*Eval(e::Lt(e::Attr("hectare"), e::Lit(1000.5))));
}

TEST_F(ExprEvalTest, IncomparableTypesError) {
  EXPECT_FALSE(Eval(e::Eq(e::Attr("name"), e::Lit(int64_t{3}))).ok());
  EXPECT_FALSE(Eval(e::Eq(e::Attr("coastal"), e::Lit("x"))).ok());
}

TEST_F(ExprEvalTest, BooleanConnectives) {
  auto t = e::Eq(e::Attr("name"), e::Lit("SP"));
  auto f = e::Eq(e::Attr("name"), e::Lit("MG"));
  EXPECT_TRUE(*Eval(e::And(t, t)));
  EXPECT_FALSE(*Eval(e::And(t, f)));
  EXPECT_TRUE(*Eval(e::Or(f, t)));
  EXPECT_FALSE(*Eval(e::Or(f, f)));
  EXPECT_TRUE(*Eval(e::Not(f)));
  EXPECT_FALSE(*Eval(e::Not(t)));
}

TEST_F(ExprEvalTest, ShortCircuit) {
  // Right side would error (type mismatch), but short-circuiting skips it.
  auto t = e::Eq(e::Attr("name"), e::Lit("SP"));
  auto f = e::Eq(e::Attr("name"), e::Lit("MG"));
  auto bad = e::Eq(e::Attr("name"), e::Lit(int64_t{1}));
  EXPECT_TRUE(*Eval(e::Or(t, bad)));
  EXPECT_FALSE(*Eval(e::And(f, bad)));
  // Without short-circuit, it surfaces.
  EXPECT_FALSE(Eval(e::And(t, bad)).ok());
}

TEST_F(ExprEvalTest, BoolAttributeAsPredicate) {
  EXPECT_TRUE(*Eval(e::Attr("coastal")));
  EXPECT_TRUE(*Eval(e::Lit(true)));
}

TEST_F(ExprEvalTest, NonBooleanPredicateRejected) {
  EXPECT_FALSE(Eval(e::Attr("hectare")).ok());
  EXPECT_FALSE(Eval(e::Lit(int64_t{1})).ok());
}

TEST_F(ExprEvalTest, Arithmetic) {
  auto v = EvalV(e::Add(e::Attr("hectare"), e::Lit(int64_t{24})));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 1024);

  v = EvalV(e::Mul(e::Lit(int64_t{3}), e::Lit(int64_t{4})));
  EXPECT_EQ(v->AsInt64(), 12);

  v = EvalV(e::Sub(e::Lit(int64_t{3}), e::Lit(int64_t{4})));
  EXPECT_EQ(v->AsInt64(), -1);

  v = EvalV(e::Div(e::Lit(int64_t{7}), e::Lit(int64_t{2})));
  EXPECT_EQ(v->AsInt64(), 3);  // Integer division.

  v = EvalV(e::Div(e::Lit(7.0), e::Lit(int64_t{2})));
  EXPECT_DOUBLE_EQ(v->AsDouble(), 3.5);  // Mixed promotes to double.

  EXPECT_FALSE(EvalV(e::Div(e::Lit(int64_t{1}), e::Lit(int64_t{0}))).ok());
  EXPECT_FALSE(EvalV(e::Div(e::Lit(1.0), e::Lit(0.0))).ok());
  EXPECT_FALSE(EvalV(e::Add(e::Attr("name"), e::Lit(int64_t{1}))).ok());
}

TEST_F(ExprEvalTest, ArithmeticInsideComparison) {
  // hectare * 2 > 1500
  auto pred = e::Gt(e::Mul(e::Attr("hectare"), e::Lit(int64_t{2})),
                    e::Lit(int64_t{1500}));
  EXPECT_TRUE(*Eval(pred));
}

TEST(ExprTest, ToString) {
  auto pred = e::And(e::Eq(e::Attr("point", "name"), e::Lit("pn")),
                     e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})));
  EXPECT_EQ(pred->ToString(),
            "((point.name = 'pn') AND (hectare > 1000))");
  EXPECT_EQ(e::Not(e::Lit(false))->ToString(), "(NOT FALSE)");
  EXPECT_EQ(e::Div(e::Lit(1.5), e::Lit(int64_t{2}))->ToString(), "(1.5 / 2)");
}

TEST(ExprTest, CollectAttrRefs) {
  auto pred = e::Or(e::Eq(e::Attr("a", "x"), e::Attr("b", "y")),
                    e::Lt(e::Attr("z"), e::Lit(int64_t{1})));
  std::vector<const e::Expr*> refs;
  pred->CollectAttrRefs(&refs);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0]->qualifier(), "a");
  EXPECT_EQ(refs[1]->qualifier(), "b");
  EXPECT_EQ(refs[2]->attribute(), "z");
}

TEST(ExprTest, ValidateAgainstSchema) {
  Schema schema = StateSchema();
  auto good = e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{10}));
  EXPECT_TRUE(e::ValidateAgainstSchema(*good, "state", schema).ok());

  auto wrong_qual = e::Gt(e::Attr("river", "hectare"), e::Lit(int64_t{10}));
  EXPECT_EQ(e::ValidateAgainstSchema(*wrong_qual, "state", schema).code(),
            StatusCode::kInvalidArgument);

  auto wrong_attr = e::Gt(e::Attr("bogus"), e::Lit(int64_t{10}));
  EXPECT_EQ(e::ValidateAgainstSchema(*wrong_attr, "state", schema).code(),
            StatusCode::kNotFound);

  auto not_pred = e::Add(e::Attr("hectare"), e::Lit(int64_t{1}));
  EXPECT_EQ(e::ValidateAgainstSchema(*not_pred, "state", schema).code(),
            StatusCode::kInvalidArgument);
}

TEST(ExprTest, MultiBindingResolution) {
  Schema state = StateSchema();
  Schema river;
  ASSERT_TRUE(river.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(river.AddAttribute("length", DataType::kInt64).ok());
  Atom sp = SpAtom();
  Atom parana{AtomId{2}, {Value("Parana"), Value(int64_t{4880})}};

  e::BindingSet bindings;
  bindings.Bind("state", &state, &sp);
  bindings.Bind("river", &river, &parana);

  // Qualified references disambiguate.
  auto v = e::EvalValue(*e::Attr("river", "name"), bindings);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "Parana");

  // Unqualified 'name' is ambiguous across the two bindings.
  EXPECT_EQ(e::EvalValue(*e::Attr("name"), bindings).status().code(),
            StatusCode::kInvalidArgument);
  // Unqualified 'length' is unique.
  v = e::EvalValue(*e::Attr("length"), bindings);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 4880);
  // Cross-binding comparison.
  auto cross = e::Gt(e::Attr("river", "length"), e::Attr("state", "hectare"));
  auto b = e::EvalPredicate(*cross, bindings);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*b);
}

}  // namespace
}  // namespace mad
