#include "algebra/atom_algebra.h"

#include <gtest/gtest.h>

#include <set>

#include "expr/expr.h"
#include "workload/geo.h"

namespace mad {
namespace e = expr;
namespace a = algebra;
namespace {

class AtomAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  std::set<std::string> AtomNames(const std::string& type) {
    std::set<std::string> names;
    auto at = db_.GetAtomType(type);
    EXPECT_TRUE(at.ok());
    size_t idx = *(*at)->description().IndexOf("name");
    for (const Atom& atom : (*at)->occurrence().atoms()) {
      names.insert(atom.values[idx].AsString());
    }
    return names;
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
};

TEST_F(AtomAlgebraTest, FixtureShape) {
  EXPECT_EQ(db_.atom_type_count(), 7u);
  EXPECT_EQ(db_.link_type_count(), 6u);
  EXPECT_EQ((*db_.GetAtomType("state"))->occurrence().size(), 10u);
  EXPECT_EQ((*db_.GetAtomType("edge"))->occurrence().size(), 12u);
  EXPECT_EQ((*db_.GetAtomType("point"))->occurrence().size(), 12u);
}

TEST_F(AtomAlgebraTest, RestrictSelectsSubsetPreservingIdentity) {
  auto result = a::Restrict(db_, "state",
                            e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})),
                            "big_states");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->atom_type, "big_states");
  EXPECT_EQ(AtomNames("big_states"),
            (std::set<std::string>{"BA", "MS", "RS"}));
  // Identity preserved: BA keeps its id.
  auto at = db_.GetAtomType("big_states");
  EXPECT_TRUE((*at)->occurrence().Contains(ids_.states["BA"]));
  // The source is untouched.
  EXPECT_EQ((*db_.GetAtomType("state"))->occurrence().size(), 10u);
}

TEST_F(AtomAlgebraTest, RestrictInheritsFilteredLinkTypes) {
  auto result = a::Restrict(db_, "state",
                            e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})),
                            "big_states");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->inherited_link_types.size(), 1u);
  const std::string& lname = result->inherited_link_types[0];
  EXPECT_EQ(lname, "state-area@big_states");
  auto lt = db_.GetLinkType(lname);
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ((*lt)->first_atom_type(), "big_states");
  EXPECT_EQ((*lt)->second_atom_type(), "area");
  // Only links of surviving states remain: BA, MS, RS each have one area.
  EXPECT_EQ((*lt)->occurrence().size(), 3u);
  EXPECT_TRUE(
      (*lt)->occurrence().Contains(ids_.states["BA"], ids_.areas["a1"]));
}

TEST_F(AtomAlgebraTest, RestrictValidatesPredicate) {
  EXPECT_FALSE(a::Restrict(db_, "state",
                           e::Gt(e::Attr("bogus"), e::Lit(int64_t{1})))
                   .ok());
  EXPECT_FALSE(a::Restrict(db_, "state", nullptr).ok());
  EXPECT_FALSE(a::Restrict(db_, "bogus_type",
                           e::Gt(e::Attr("hectare"), e::Lit(int64_t{1})))
                   .ok());
  // Non-predicate expression rejected up front.
  EXPECT_FALSE(
      a::Restrict(db_, "state", e::Add(e::Attr("hectare"), e::Lit(int64_t{1})))
          .ok());
}

TEST_F(AtomAlgebraTest, ProjectNarrowsSchemaKeepingIdentity) {
  auto result = a::Project(db_, "state", {"name"}, "state_names");
  ASSERT_TRUE(result.ok()) << result.status();
  auto at = db_.GetAtomType("state_names");
  ASSERT_TRUE(at.ok());
  EXPECT_EQ((*at)->description().attribute_count(), 1u);
  EXPECT_EQ((*at)->occurrence().size(), 10u);
  EXPECT_TRUE((*at)->occurrence().Contains(ids_.states["SP"]));
  // Link inheritance keeps the projected type connected to the network.
  ASSERT_EQ(result->inherited_link_types.size(), 1u);
  EXPECT_EQ((*db_.GetLinkType(result->inherited_link_types[0]))
                ->occurrence()
                .size(),
            10u);
}

TEST_F(AtomAlgebraTest, ProjectUnknownAttributeFails) {
  EXPECT_FALSE(a::Project(db_, "state", {"bogus"}).ok());
}

TEST_F(AtomAlgebraTest, RenameThenProductMatchesPaperBorderExample) {
  // Ch. 3.1: x(area, edge) = border. `name` occurs in both operands, so
  // rename first (Def. 4 requires pairwise-disjoint descriptions).
  ASSERT_TRUE(a::Rename(db_, "area", {{"name", "aname"}}, "area_r").ok());
  ASSERT_TRUE(a::Rename(db_, "edge", {{"name", "ename"}}, "edge_r").ok());
  auto border = a::CartesianProduct(db_, "area_r", "edge_r", "border");
  ASSERT_TRUE(border.ok()) << border.status();

  auto at = db_.GetAtomType("border");
  ASSERT_TRUE(at.ok());
  // 10 areas x 12 edges.
  EXPECT_EQ((*at)->occurrence().size(), 120u);
  EXPECT_EQ((*at)->description().ToString(),
            "{aname: STRING, hectare: INT64, ename: STRING}");

  // The paper continues: σ[hectare > 1000](border).
  auto big = a::Restrict(db_, "border",
                         e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})),
                         "big_border");
  ASSERT_TRUE(big.ok()) << big.status();
  // Areas with hectare > 1000: BA (1500), MS (1100), RS (1050) -> 3 x 12.
  EXPECT_EQ((*db_.GetAtomType("big_border"))->occurrence().size(), 36u);
}

TEST_F(AtomAlgebraTest, ProductInheritsLinksOfBothComponents) {
  ASSERT_TRUE(a::Rename(db_, "area", {{"name", "aname"}}, "area_r").ok());
  ASSERT_TRUE(a::Rename(db_, "edge", {{"name", "ename"}}, "edge_r").ok());
  auto border = a::CartesianProduct(db_, "area_r", "edge_r", "border");
  ASSERT_TRUE(border.ok());
  // area_r inherited state-area and area-edge; edge_r inherited area-edge,
  // net-edge, edge-point. Each contributes its roles to the product.
  EXPECT_GE(border->inherited_link_types.size(), 5u);
  // A border atom composed of (a1, e1) is linked to the state owning a1.
  bool found_state_link = false;
  for (const std::string& lname : border->inherited_link_types) {
    const LinkType* lt = *db_.GetLinkType(lname);
    if (lt->first_atom_type() == "state" || lt->second_atom_type() == "state") {
      found_state_link = true;
      // 12 border atoms per area, one state link each.
      EXPECT_EQ(lt->occurrence().size(), 120u);
    }
  }
  EXPECT_TRUE(found_state_link);
}

TEST_F(AtomAlgebraTest, ProductRequiresDisjointSchemas) {
  EXPECT_EQ(a::CartesianProduct(db_, "area", "edge").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a::CartesianProduct(db_, "state", "state").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AtomAlgebraTest, UnionCombinesByIdentity) {
  ASSERT_TRUE(a::Restrict(db_, "state",
                          e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})),
                          "big")
                  .ok());
  ASSERT_TRUE(a::Restrict(db_, "state",
                          e::Eq(e::Attr("name"), e::Lit("SP")), "sp")
                  .ok());
  auto result = a::Union(db_, "big", "sp", "big_or_sp");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(AtomNames("big_or_sp"),
            (std::set<std::string>{"BA", "MS", "RS", "SP"}));

  // Overlapping operands dedupe by id.
  auto self_union = a::Union(db_, "big", "big", "big2");
  ASSERT_TRUE(self_union.ok());
  EXPECT_EQ((*db_.GetAtomType("big2"))->occurrence().size(), 3u);
}

TEST_F(AtomAlgebraTest, UnionRequiresIdenticalDescriptions) {
  EXPECT_EQ(a::Union(db_, "state", "edge").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AtomAlgebraTest, DifferenceAndDerivedIntersection) {
  ASSERT_TRUE(a::Restrict(db_, "state",
                          e::Ge(e::Attr("hectare"), e::Lit(int64_t{1000})),
                          "ge1000")
                  .ok());  // BA MS SP RS
  ASSERT_TRUE(a::Restrict(db_, "state",
                          e::Le(e::Attr("hectare"), e::Lit(int64_t{1100})),
                          "le1100")
                  .ok());  // GO MG ES RJ SP PR SC RS MS

  auto diff = a::Difference(db_, "ge1000", "le1100", "only_big");
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_EQ(AtomNames("only_big"), (std::set<std::string>{"BA"}));

  auto inter = a::Intersection(db_, "ge1000", "le1100", "between");
  ASSERT_TRUE(inter.ok()) << inter.status();
  EXPECT_EQ(AtomNames("between"), (std::set<std::string>{"MS", "SP", "RS"}));
}

TEST_F(AtomAlgebraTest, OperationsComposeAndStayClosed) {
  // Theorem 1: results are regular atom types usable as operands again.
  ASSERT_TRUE(a::Restrict(db_, "state",
                          e::Gt(e::Attr("hectare"), e::Lit(int64_t{500})),
                          "s1")
                  .ok());
  ASSERT_TRUE(a::Restrict(db_, "s1",
                          e::Lt(e::Attr("hectare"), e::Lit(int64_t{1200})),
                          "s2")
                  .ok());
  auto result = a::Project(db_, "s2", {"name"}, "s3");
  ASSERT_TRUE(result.ok());
  // 500 < hectare < 1200: GO(900) MS(1100) MG(900) SP(1000) PR(800) RS(1050).
  EXPECT_EQ(AtomNames("s3"),
            (std::set<std::string>{"GO", "MS", "MG", "SP", "PR", "RS"}));
  // s2 inherited s1's inherited link type; the chain stays connected.
  auto touching = db_.LinkTypesTouching("s2");
  ASSERT_EQ(touching.size(), 1u);
  EXPECT_EQ(touching[0]->second_atom_type(), "area");
}

TEST_F(AtomAlgebraTest, ReflexiveLinkInheritanceOnRestriction) {
  Schema part;
  ASSERT_TRUE(part.AddAttribute("pname", DataType::kString).ok());
  ASSERT_TRUE(part.AddAttribute("cost", DataType::kInt64).ok());
  ASSERT_TRUE(db_.DefineAtomType("part", std::move(part)).ok());
  ASSERT_TRUE(db_.DefineLinkType("composition", "part", "part").ok());
  auto p1 = db_.InsertAtom("part", {Value("engine"), Value(int64_t{500})});
  auto p2 = db_.InsertAtom("part", {Value("piston"), Value(int64_t{50})});
  auto p3 = db_.InsertAtom("part", {Value("bolt"), Value(int64_t{1})});
  ASSERT_TRUE(db_.InsertLink("composition", *p1, *p2).ok());
  ASSERT_TRUE(db_.InsertLink("composition", *p2, *p3).ok());

  auto result = a::Restrict(db_, "part",
                            e::Ge(e::Attr("cost"), e::Lit(int64_t{50})),
                            "pricey");
  ASSERT_TRUE(result.ok()) << result.status();
  // Reflexive inherits as reflexive on the result, filtered at both ends:
  // only engine->piston survives (bolt costs 1).
  ASSERT_EQ(result->inherited_link_types.size(), 1u);
  const LinkType* lt = *db_.GetLinkType(result->inherited_link_types[0]);
  EXPECT_TRUE(lt->reflexive());
  EXPECT_EQ(lt->first_atom_type(), "pricey");
  EXPECT_EQ(lt->occurrence().size(), 1u);
  EXPECT_TRUE(lt->occurrence().Contains(*p1, *p2));
}

TEST_F(AtomAlgebraTest, InheritanceCanBeDisabled) {
  a::AlgebraOptions options;
  options.inherit_links = false;
  auto result = a::Restrict(db_, "state",
                            e::Gt(e::Attr("hectare"), e::Lit(int64_t{0})),
                            "copy", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->inherited_link_types.empty());
  EXPECT_TRUE(db_.LinkTypesTouching("copy").empty());
}

TEST_F(AtomAlgebraTest, AutoGeneratedResultNamesAreUnique) {
  auto r1 = a::Restrict(db_, "state",
                        e::Gt(e::Attr("hectare"), e::Lit(int64_t{0})));
  auto r2 = a::Restrict(db_, "state",
                        e::Gt(e::Attr("hectare"), e::Lit(int64_t{0})));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1->atom_type, r2->atom_type);
}

TEST_F(AtomAlgebraTest, ScaledGeneratorProducesConsistentNetwork) {
  Database scaled("SCALED");
  workload::GeoScale scale;
  scale.states = 10;
  scale.rivers = 3;
  auto stats = workload::GenerateScaledGeo(scaled, scale);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->atoms, 100u);
  EXPECT_GT(stats->links, 100u);
  // Determinism: same seed, same shape.
  Database scaled2("SCALED2");
  auto stats2 = workload::GenerateScaledGeo(scaled2, scale);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats->atoms, stats2->atoms);
  EXPECT_EQ(stats->links, stats2->links);
}

}  // namespace
}  // namespace mad
