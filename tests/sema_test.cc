// Semantic analyzer suite: one test per diagnostic code, plus pinned
// renderings (caret blocks, JSON) and the Session-level contract — errors
// block Execute() with the historical StatusCode, warnings ride along on
// the result, and CHECK analyzes without executing.

#include "mql/sema.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/data_type.h"
#include "core/schema.h"
#include "molecule/description.h"
#include "mql/diag.h"
#include "mql/parser.h"
#include "mql/session.h"
#include "storage/database.h"

namespace mad {
namespace mql {
namespace {

/// Geo + bill-of-materials catalog: enough shape for every diagnostic —
/// a chain (state-area-edge-point), an ambiguous pair (state_area and
/// governs both connect state/area), an ambiguous attribute (state.name
/// and area.name), and a reflexive link type (composition).
class SemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema state;
    ASSERT_TRUE(state.AddAttribute("name", DataType::kString).ok());
    ASSERT_TRUE(state.AddAttribute("hectare", DataType::kInt64).ok());
    ASSERT_TRUE(db_.DefineAtomType("state", std::move(state)).ok());
    Schema area;
    ASSERT_TRUE(area.AddAttribute("name", DataType::kString).ok());
    ASSERT_TRUE(db_.DefineAtomType("area", std::move(area)).ok());
    Schema edge;
    ASSERT_TRUE(edge.AddAttribute("length", DataType::kInt64).ok());
    ASSERT_TRUE(db_.DefineAtomType("edge", std::move(edge)).ok());
    Schema point;
    ASSERT_TRUE(point.AddAttribute("x", DataType::kInt64).ok());
    ASSERT_TRUE(point.AddAttribute("y", DataType::kInt64).ok());
    ASSERT_TRUE(db_.DefineAtomType("point", std::move(point)).ok());
    Schema part;
    ASSERT_TRUE(part.AddAttribute("pname", DataType::kString).ok());
    ASSERT_TRUE(part.AddAttribute("cost", DataType::kInt64).ok());
    ASSERT_TRUE(db_.DefineAtomType("part", std::move(part)).ok());
    ASSERT_TRUE(db_.DefineLinkType("state_area", "state", "area").ok());
    ASSERT_TRUE(db_.DefineLinkType("governs", "state", "area").ok());
    ASSERT_TRUE(db_.DefineLinkType("area_edge", "area", "edge").ok());
    ASSERT_TRUE(db_.DefineLinkType("edge_point", "edge", "point").ok());
    ASSERT_TRUE(db_.DefineLinkType("composition", "part", "part").ok());
  }

  std::vector<Diagnostic> Analyze(const std::string& text) {
    auto stmt = ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << text << "\n" << stmt.status();
    if (!stmt.ok()) return {};
    return AnalyzeStatement(db_, registry_, *stmt);
  }

  std::vector<std::string> Codes(const std::string& text) {
    std::vector<std::string> codes;
    for (const Diagnostic& diag : Analyze(text)) codes.push_back(diag.code());
    return codes;
  }

  /// The single diagnostic `text` must produce, with its code pinned.
  Diagnostic Only(const std::string& text, const std::string& code) {
    auto diags = Analyze(text);
    EXPECT_EQ(diags.size(), 1u) << text;
    if (diags.empty()) return Diagnostic{};
    EXPECT_EQ(std::string(diags[0].code()), code) << diags[0].message;
    return diags[0];
  }

  Database db_{"SEMA_DB"};
  std::map<std::string, MoleculeDescription> registry_;
};

bool Contains(const std::vector<std::string>& codes, const std::string& code) {
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

// ---- MQL01xx: name resolution ------------------------------------------------

TEST_F(SemaTest, Mql0101UnknownAtomType) {
  Diagnostic d = Only("SELECT ALL FROM m(badatom-area);", "MQL0101");
  EXPECT_EQ(d.message, "atom type 'badatom' not defined");
  EXPECT_TRUE(d.span.known());
  // DELETE resolves through the same path.
  EXPECT_EQ(Codes("DELETE FROM ghost;"), std::vector<std::string>{"MQL0101"});
}

TEST_F(SemaTest, Mql0102UnknownLinkType) {
  Diagnostic d = Only("SELECT ALL FROM m(state-[badlink]-area);", "MQL0102");
  EXPECT_EQ(d.message, "link type 'badlink' not defined");
}

TEST_F(SemaTest, Mql0103UnknownAttribute) {
  Diagnostic d = Only("SELECT ALL FROM state WHERE nam = 'x';", "MQL0103");
  ASSERT_EQ(d.notes.size(), 1u);
  EXPECT_EQ(d.notes[0].message, "did you mean 'name'?");
}

TEST_F(SemaTest, Mql0104UnknownQualifier) {
  Diagnostic d =
      Only("SELECT bogus.name FROM m(state-[state_area]-area);", "MQL0104");
  EXPECT_EQ(d.message,
            "qualifier 'bogus' matches no node of the molecule description");
}

TEST_F(SemaTest, Mql0105UnknownFromName) {
  Diagnostic d = Only("SELECT ALL FROM statee;", "MQL0105");
  EXPECT_EQ(d.message,
            "'statee' names neither a registered molecule type nor an "
            "atom type");
  ASSERT_EQ(d.notes.size(), 1u);
  EXPECT_EQ(d.notes[0].message, "did you mean 'state'?");
}

TEST_F(SemaTest, Mql0106UnknownSetOption) {
  Diagnostic d = Only("SET TRACE2 1;", "MQL0106");
  EXPECT_EQ(d.message,
            "unknown session option 'TRACE2'; available: PARALLELISM, "
            "SYNC, TRACE");
  ASSERT_EQ(d.notes.size(), 1u);
  EXPECT_EQ(d.notes[0].message, "did you mean 'TRACE'?");
}

TEST_F(SemaTest, Mql0108AmbiguousAttribute) {
  // state.name and area.name both match the unqualified reference.
  Diagnostic d = Only(
      "SELECT ALL FROM m(state-[state_area]-area) WHERE name = 'x';",
      "MQL0108");
  EXPECT_EQ(d.message, "ambiguous attribute 'name' (qualify it with a "
                       "node label)");
  ASSERT_EQ(d.notes.size(), 1u);
}

TEST_F(SemaTest, Mql0109AmbiguousQualifier) {
  // The grammar spells descriptions as trees of distinct atom types, so an
  // ambiguous type-name qualifier needs a programmatic description with two
  // same-typed nodes under distinct labels.
  auto md = MoleculeDescription::Create(
      db_,
      {MoleculeNode{"state", "state", {}}, MoleculeNode{"area", "north", {}},
       MoleculeNode{"area", "south", {}}},
      {DirectedLink{"state_area", "state", "north"},
       DirectedLink{"governs", "state", "south"}});
  ASSERT_TRUE(md.ok()) << md.status();
  registry_.emplace("twin", *md);
  Diagnostic d = Only("SELECT area.name FROM twin;", "MQL0109");
  EXPECT_EQ(d.message,
            "qualifier 'area' matches several nodes; use a label");
  // A label picks one node unambiguously; only the unused-node lint on
  // 'south' remains, and it is a warning.
  auto diags = Analyze("SELECT north.name FROM twin;");
  EXPECT_FALSE(HasErrors(diags));
}

// ---- MQL02xx: Def. 5 structure checks ----------------------------------------

TEST_F(SemaTest, Mql0201DuplicateStructureAtom) {
  auto codes = Codes("SELECT ALL FROM m(state-area-state);");
  EXPECT_TRUE(Contains(codes, "MQL0201")) << codes.size();
}

TEST_F(SemaTest, Mql0201DirectGraphDuplicate) {
  std::vector<Diagnostic> diags;
  CheckDescriptionGraph({DescNode{"a", "state", {}}, DescNode{"a", "area", {}}},
                        {}, &diags);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(std::string(diags[0].code()), "MQL0201");
  ASSERT_EQ(diags[0].notes.size(), 1u);
  EXPECT_EQ(diags[0].notes[0].message, "first occurrence is here");
}

TEST_F(SemaTest, Mql0202NoConnectingLinkType) {
  Diagnostic d = Only("SELECT ALL FROM m(state-point);", "MQL0202");
  EXPECT_EQ(d.message, "no link type connects 'state' and 'point'");
}

TEST_F(SemaTest, Mql0203AmbiguousImplicitLink) {
  Diagnostic d = Only("SELECT ALL FROM m(state-area);", "MQL0203");
  EXPECT_EQ(d.message,
            "several link types connect 'state' and 'area' (state_area, "
            "governs); name one with -[link]-");
  // Naming one resolves it.
  EXPECT_TRUE(Analyze("SELECT ALL FROM m(state-[governs]-area);").empty());
}

TEST_F(SemaTest, Mql0204LinkDirectionMismatch) {
  Diagnostic d = Only("SELECT ALL FROM m(state-[area_edge]-area);", "MQL0204");
  EXPECT_EQ(d.message,
            "link type 'area_edge' connects <area, edge>, not <state, area>");
}

TEST_F(SemaTest, Mql0205CyclicDescription) {
  std::vector<Diagnostic> diags;
  CheckDescriptionGraph(
      {DescNode{"root", "state", {}}, DescNode{"a", "area", {}},
       DescNode{"b", "edge", {}}},
      {DescLink{"l1", "root", "a", {}}, DescLink{"l2", "a", "b", {}},
       DescLink{"l3", "b", "a", {}}},
      &diags);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(std::string(diags[0].code()), "MQL0205");
  EXPECT_EQ(diags[0].message,
            "the description graph has a cycle (a -> b -> a); Def. 5 "
            "requires a DAG");
}

TEST_F(SemaTest, Mql0206MultipleRoots) {
  std::vector<Diagnostic> diags;
  CheckDescriptionGraph(
      {DescNode{"a", "state", {}}, DescNode{"b", "area", {}},
       DescNode{"c", "edge", {}}},
      {DescLink{"l1", "a", "c", {}}, DescLink{"l2", "b", "c", {}}}, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(std::string(diags[0].code()), "MQL0206");
  EXPECT_EQ(diags[0].message,
            "the description has 2 roots (a, b); Def. 5 requires exactly one");
}

TEST_F(SemaTest, Mql0207IncoherentDescription) {
  std::vector<Diagnostic> diags;
  CheckDescriptionGraph(
      {DescNode{"a", "state", {}}, DescNode{"b", "area", {}},
       DescNode{"c", "edge", {}}, DescNode{"d", "point", {}}},
      {DescLink{"l1", "a", "b", {}}, DescLink{"l2", "c", "d", {}}}, &diags);
  std::vector<std::string> codes;
  for (const Diagnostic& diag : diags) codes.push_back(diag.code());
  EXPECT_TRUE(Contains(codes, "MQL0207"));
  EXPECT_FALSE(Contains(codes, "MQL0206"));  // each component has one root
}

TEST_F(SemaTest, Mql0208MisplacedRecursion) {
  ASSERT_TRUE(db_.DefineLinkType("supplies", "state", "part").ok());
  Diagnostic d =
      Only("SELECT ALL FROM state-[supplies]-part-[composition*];", "MQL0208");
  EXPECT_EQ(d.message, "a recursive step must be the only step of the "
                       "structure");
}

TEST_F(SemaTest, Mql0209NonReflexiveRecursion) {
  Diagnostic d = Only("SELECT ALL FROM state-[state_area*];", "MQL0209");
  EXPECT_EQ(d.message,
            "recursive derivation needs a reflexive link type on 'state'; "
            "'state_area' connects <state, area>");
}

// ---- MQL03xx: predicates and projections -------------------------------------

TEST_F(SemaTest, Mql0301NonBooleanPredicate) {
  Diagnostic d = Only("SELECT ALL FROM state WHERE hectare + 1;", "MQL0301");
  EXPECT_EQ(d.message, "expression (hectare + 1) is not a predicate");
}

TEST_F(SemaTest, Mql0302ComparisonTypeMismatch) {
  Diagnostic d = Only("SELECT ALL FROM state WHERE name > 3;", "MQL0302");
  EXPECT_EQ(d.message, "cannot compare STRING with INT64");
  // Numeric widening stays legal: INT64 vs DOUBLE is fine.
  EXPECT_TRUE(Analyze("SELECT ALL FROM state WHERE hectare > 3.5;").empty());
}

TEST_F(SemaTest, Mql0303NonNumericArithmetic) {
  auto codes = Codes("SELECT ALL FROM state WHERE name + 1 = 2;");
  EXPECT_TRUE(Contains(codes, "MQL0303"));
}

TEST_F(SemaTest, Mql0305InvalidRecursiveQualifier) {
  Diagnostic d = Only(
      "SELECT ALL FROM part-[composition*] WHERE bogus.pname = 'x';",
      "MQL0305");
  EXPECT_EQ(d.message,
            "recursive queries allow the qualifiers 'root' and 'part'; "
            "found 'bogus'");
  EXPECT_TRUE(
      Analyze("SELECT ALL FROM part-[composition*] WHERE root.pname = 'x';")
          .empty());
}

TEST_F(SemaTest, Mql0306RecursiveProjection) {
  Diagnostic d = Only("SELECT root.pname FROM part-[composition*];",
                      "MQL0306");
  EXPECT_EQ(d.message, "recursive queries support SELECT ALL projections "
                       "only");
}

TEST_F(SemaTest, Mql0307ForAllForeignReference) {
  Diagnostic d = Only(
      "SELECT ALL FROM m(state-[governs]-area) "
      "WHERE FORALL area (state.name = 'x');",
      "MQL0307");
  EXPECT_EQ(d.message,
            "FORALL area: predicate may only reference 'area', found "
            "'state.name'");
  EXPECT_TRUE(Analyze("SELECT ALL FROM m(state-[governs]-area) "
                      "WHERE FORALL area (area.name = 'x');")
                  .empty());
}

TEST_F(SemaTest, Mql0308NestedForAll) {
  auto codes = Codes(
      "SELECT ALL FROM m(state-[governs]-area) "
      "WHERE FORALL area (FORALL area (name = 'y'));");
  EXPECT_TRUE(Contains(codes, "MQL0308"));
}

TEST_F(SemaTest, Mql0309AggregateInAtomScope) {
  Diagnostic d = Only("DELETE FROM state WHERE COUNT(state) > 0;", "MQL0309");
  EXPECT_EQ(d.message,
            "COUNT(state) is only valid in molecule-scope qualification");
  // In molecule scope COUNT is fine.
  EXPECT_TRUE(Analyze("SELECT ALL FROM m(state-[governs]-area) "
                      "WHERE COUNT(area) > 1;")
                  .empty());
}

// ---- MQL04xx: DDL / DML ------------------------------------------------------

TEST_F(SemaTest, Mql0401InsertArityMismatch) {
  Diagnostic d = Only("INSERT INTO state VALUES ('x');", "MQL0401");
  EXPECT_EQ(d.message, "row arity 1 does not match schema arity 2");
}

TEST_F(SemaTest, Mql0402ValueTypeMismatch) {
  Diagnostic d = Only("INSERT INTO state VALUES ('x', 'y');", "MQL0402");
  EXPECT_EQ(d.message, "attribute 'hectare' expects INT64 but got STRING "
                       "('y')");
  // UPDATE assignments go through the same check.
  EXPECT_EQ(Codes("UPDATE state SET hectare = 'oops';"),
            std::vector<std::string>{"MQL0402"});
}

TEST_F(SemaTest, Mql0403DuplicateAttribute) {
  Diagnostic d =
      Only("CREATE ATOM TYPE t1 (a STRING, a INT64);", "MQL0403");
  EXPECT_EQ(d.message, "duplicate attribute 'a' in atom type 't1'");
  ASSERT_EQ(d.notes.size(), 1u);
  EXPECT_EQ(d.notes[0].message, "first declared here");
}

TEST_F(SemaTest, Mql0404TypeAlreadyExists) {
  EXPECT_EQ(Codes("CREATE ATOM TYPE state (z STRING);"),
            std::vector<std::string>{"MQL0404"});
  EXPECT_EQ(Codes("CREATE LINK TYPE governs (state, area);"),
            std::vector<std::string>{"MQL0404"});
}

TEST_F(SemaTest, Mql0405InvalidOptionValue) {
  Diagnostic d = Only("SET SYNC 2;", "MQL0405");
  EXPECT_EQ(d.message, "SYNC must be ON/1 or OFF/0");
  EXPECT_TRUE(Analyze("SET SYNC ON;").empty());
  EXPECT_TRUE(Analyze("SET PARALLELISM 0;").empty());
}

TEST_F(SemaTest, Mql0406QualifierTypeMismatch) {
  Diagnostic d = Only("DELETE FROM state WHERE area.name = 'x';", "MQL0406");
  EXPECT_EQ(d.message, "qualifier 'area' does not match atom type 'state'");
  EXPECT_TRUE(Analyze("DELETE FROM state WHERE state.name = 'x';").empty());
}

// ---- MQL05xx: warnings -------------------------------------------------------

TEST_F(SemaTest, Mql0501ShadowedLabel) {
  Diagnostic d = Only("SELECT ALL FROM state(state-[governs]-area);",
                      "MQL0501");
  EXPECT_EQ(d.severity(), Severity::kWarning);
  EXPECT_EQ(d.message,
            "molecule type 'state' shadows the atom type 'state'; a bare "
            "FROM state will now mean the molecule type");
}

TEST_F(SemaTest, Mql0502ZeroDepthRecursion) {
  Diagnostic d = Only("SELECT ALL FROM part-[composition*0];", "MQL0502");
  EXPECT_EQ(d.severity(), Severity::kWarning);
  EXPECT_EQ(d.message, "recursion depth bound 0 derives only the root atom");
}

TEST_F(SemaTest, Mql0503RestrictionOnNarrowedAttribute) {
  auto codes = Codes(
      "SELECT state.name FROM m(state-[governs]-area) "
      "WHERE state.hectare > 1;");
  EXPECT_TRUE(Contains(codes, "MQL0503"));
}

TEST_F(SemaTest, Mql0504UnusedStructureNode) {
  auto diags = Analyze(
      "SELECT state.name FROM m(state-[governs]-area) "
      "WHERE state.name != '';");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(std::string(diags[0].code()), "MQL0504");
  EXPECT_EQ(diags[0].severity(), Severity::kWarning);
  // A node kept alive by the WHERE clause (or by connecting projected
  // nodes) is not flagged.
  EXPECT_TRUE(Analyze("SELECT state.name FROM m(state-[governs]-area) "
                      "WHERE area.name != '';")
                  .empty());
}

// ---- Clean statements stay clean ---------------------------------------------

TEST_F(SemaTest, CleanStatementsProduceNoDiagnostics) {
  const char* clean[] = {
      "SELECT ALL FROM state;",
      "SELECT ALL FROM m(state-[state_area]-area-edge-point);",
      "SELECT ALL FROM part-[composition*3] WHERE root.pname = 'engine';",
      "INSERT INTO state VALUES ('bavaria', 7055000);",
      "UPDATE state SET hectare = hectare + 1 WHERE name = 'bavaria';",
      "DELETE FROM state WHERE hectare < 0;",
      "CREATE ATOM TYPE fresh (a STRING);",
      "SET PARALLELISM 4;",
  };
  for (const char* text : clean) {
    EXPECT_TRUE(Analyze(text).empty()) << text;
  }
}

// ---- Helpers: codes, severities, suggestions ---------------------------------

TEST_F(SemaTest, KnownSessionOptionsArePinned) {
  EXPECT_EQ(KnownSessionOptions(),
            (std::vector<std::string>{"PARALLELISM", "SYNC", "TRACE"}));
}

TEST(DiagTest, CodesAndSeveritiesAreStable) {
  EXPECT_STREQ(DiagCode(DiagId::kParseError), "MQL0001");
  EXPECT_STREQ(DiagCode(DiagId::kUnknownAtomType), "MQL0101");
  EXPECT_STREQ(DiagCode(DiagId::kUnusedStructureNode), "MQL0504");
  EXPECT_EQ(DiagSeverity(DiagId::kUnknownAtomType), Severity::kError);
  EXPECT_EQ(DiagSeverity(DiagId::kShadowedLabel), Severity::kWarning);
  // Status mapping preserves historical Execute() codes.
  EXPECT_EQ(DiagStatusCode(DiagId::kUnknownAtomType), StatusCode::kNotFound);
  EXPECT_EQ(DiagStatusCode(DiagId::kTypeAlreadyExists),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(DiagStatusCode(DiagId::kRecursiveProjection),
            StatusCode::kUnsupported);
  EXPECT_EQ(DiagStatusCode(DiagId::kComparisonTypeMismatch),
            StatusCode::kInvalidArgument);
}

TEST(DiagTest, EditDistanceAndSuggestions) {
  EXPECT_EQ(EditDistance("state", "statee"), 1u);
  EXPECT_EQ(EditDistance("STATE", "state"), 0u);  // case-insensitive
  auto hit = ClosestMatch("statee", {"state", "area", "point"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "state");
  // Too far to plausibly be a typo.
  EXPECT_FALSE(ClosestMatch("zzzzzz", {"state", "area"}).has_value());
}

// ---- Pinned renderings -------------------------------------------------------

TEST_F(SemaTest, CaretRenderingIsPinned) {
  const std::string source = "SELECT ALL FROM statee;";
  auto diags = Analyze(source);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(RenderDiagnostic(diags[0], source),
            "error[MQL0105]: 'statee' names neither a registered molecule "
            "type nor an atom type\n"
            "    --> 1:17\n"
            "     |\n"
            "   1 | SELECT ALL FROM statee;\n"
            "     |                 ^^^^^^\n"
            "    = note: did you mean 'state'?\n");
}

TEST_F(SemaTest, JsonRenderingIsPinned) {
  const std::string source = "SELECT ALL FROM statee;";
  auto diags = Analyze(source);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(
      DiagnosticsToJson(diags, "q.mql"),
      "[\n  {\"file\": \"q.mql\", \"code\": \"MQL0105\", \"severity\": "
      "\"error\", \"line\": 1, \"column\": 17, \"offset\": 16, \"length\": "
      "6, \"message\": \"'statee' names neither a registered molecule type "
      "nor an atom type\", \"notes\": [{\"message\": \"did you mean "
      "'state'?\", \"line\": 0, \"column\": 0}]}\n]");
  EXPECT_EQ(DiagnosticsToJson({}, "q.mql"), "[]");
}

// ---- Session integration: gating, warnings, CHECK ----------------------------

TEST(SemaSessionTest, ErrorsBlockExecutionWithHistoricalStatusCode) {
  Database db("SEMA_SESSION_DB");
  Session session(&db);
  ASSERT_TRUE(
      session.Execute("CREATE ATOM TYPE state (name STRING);").ok());
  auto result = session.Execute("SELECT ALL FROM statee;");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("MQL0105"), std::string::npos)
      << result.status();
  // Blocked statements leave no trace: the session keeps working.
  EXPECT_TRUE(session.Execute("SELECT ALL FROM state;").ok());
}

TEST(SemaSessionTest, WarningsRideAlongOnSuccessfulResults) {
  Database db("SEMA_WARN_DB");
  Session session(&db);
  ASSERT_TRUE(
      session.Execute("CREATE ATOM TYPE state (name STRING);").ok());
  ASSERT_TRUE(session.Execute("CREATE ATOM TYPE area (aname STRING);").ok());
  ASSERT_TRUE(
      session.Execute("CREATE LINK TYPE state_area (state, area);").ok());
  ASSERT_TRUE(session.Execute("SELECT ALL FROM m(state-area);").ok());
  // Redefining the registered molecule type warns (MQL0501) but runs.
  auto result = session.Execute("SELECT ALL FROM m(state-area);");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->diagnostics.size(), 1u);
  EXPECT_EQ(std::string(result->diagnostics[0].code()), "MQL0501");
  EXPECT_EQ(result->diagnostics[0].severity(), Severity::kWarning);
}

TEST(SemaSessionTest, CheckAnalyzesWithoutExecuting) {
  Database db("SEMA_CHECK_DB");
  Session session(&db);
  ASSERT_TRUE(
      session.Execute("CREATE ATOM TYPE state (name STRING);").ok());
  // Clean statement: verdict only, nothing derived, nothing inserted.
  auto clean = session.Execute("CHECK INSERT INTO state VALUES ('x');");
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->message, "CHECK: no issues found");
  EXPECT_TRUE(clean->diagnostics.empty());
  auto count = session.Execute("SELECT ALL FROM state;");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->molecules->size(), 0u);  // CHECK did not insert
  // Broken statement: CHECK itself succeeds and carries the diagnostics.
  auto broken =
      session.Execute("CHECK SELECT ALL FROM statee WHERE nam > 'x';");
  ASSERT_TRUE(broken.ok()) << broken.status();
  EXPECT_EQ(broken->message, "CHECK: 1 error(s), 0 warning(s)");
  ASSERT_EQ(broken->diagnostics.size(), 1u);
  EXPECT_EQ(std::string(broken->diagnostics[0].code()), "MQL0105");
}

TEST(SemaSessionTest, ScriptAnalysisSeesEarlierCatalogEffects) {
  Database db("SEMA_SCRIPT_DB");
  Session session(&db);
  // The SELECT references the type the script itself creates: per-statement
  // analysis must run after the DDL applies, not upfront.
  auto results = session.ExecuteScript(
      "CREATE ATOM TYPE fresh (a STRING);\n"
      "INSERT INTO fresh VALUES ('x');\n"
      "SELECT ALL FROM fresh;");
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 3u);
}

}  // namespace
}  // namespace mql
}  // namespace mad
