#include "molecule/recursive.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/bom.h"

namespace mad {
namespace {

class RecursiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildCarBom(db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  RecursiveDescription Explosion(int max_depth = -1) {
    return RecursiveDescription{"part", "composition",
                                LinkDirection::kForward, max_depth};
  }
  RecursiveDescription Implosion(int max_depth = -1) {
    return RecursiveDescription{"part", "composition",
                                LinkDirection::kBackward, max_depth};
  }

  Database db_{"BOM"};
  std::map<std::string, AtomId> ids_;
};

TEST_F(RecursiveTest, ValidationRejectsNonReflexiveLinkTypes) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(db_.DefineAtomType("supplier", std::move(s)).ok());
  ASSERT_TRUE(db_.DefineLinkType("supplies", "supplier", "part").ok());

  RecursiveDescription bad{"part", "supplies", LinkDirection::kForward, -1};
  EXPECT_EQ(ValidateRecursiveDescription(db_, bad).code(),
            StatusCode::kInvalidArgument);
  RecursiveDescription unknown{"part", "bogus", LinkDirection::kForward, -1};
  EXPECT_EQ(ValidateRecursiveDescription(db_, unknown).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(ValidateRecursiveDescription(db_, Explosion()).ok());
}

TEST_F(RecursiveTest, PartsExplosionOfCar) {
  auto m = DeriveRecursiveMoleculeFor(db_, Explosion(), ids_["car"]);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->root(), ids_["car"]);
  EXPECT_EQ(m->atom_count(), 5u);  // the whole car, bolt counted once
  // bolt is reached at depth 2 via chassis (shortest path wins), so the
  // explosion stratifies into 3 levels even though car->engine->piston->
  // bolt is a length-3 chain.
  EXPECT_EQ(m->depth(), 2u);
  ASSERT_EQ(m->levels().size(), 3u);
  std::set<AtomId> level2(m->levels()[2].begin(), m->levels()[2].end());
  EXPECT_TRUE(level2.count(ids_["bolt"]) > 0);
  // Both composition links into bolt are realised.
  size_t bolt_in = 0;
  for (const Link& link : m->links()) {
    if (link.second == ids_["bolt"]) ++bolt_in;
  }
  EXPECT_EQ(bolt_in, 2u);
}

TEST_F(RecursiveTest, DepthBoundedExplosion) {
  auto m = DeriveRecursiveMoleculeFor(db_, Explosion(1), ids_["car"]);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atom_count(), 3u);  // car, engine, chassis
  EXPECT_EQ(m->depth(), 1u);

  auto m2 = DeriveRecursiveMoleculeFor(db_, Explosion(2), ids_["car"]);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->atom_count(), 5u);  // piston and bolt both arrive at depth 2
}

TEST_F(RecursiveTest, PartsImplosionUsesLinkSymmetry) {
  // Where-used view of bolt: piston, chassis, then engine, car — the
  // super-component view through the same links, traversed backward.
  auto m = DeriveRecursiveMoleculeFor(db_, Implosion(), ids_["bolt"]);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->atom_count(), 5u);
  EXPECT_TRUE(m->Contains(ids_["car"]));
  // bolt <- {piston, chassis} <- {engine, car}: 3 levels.
  ASSERT_EQ(m->levels().size(), 3u);
  std::set<AtomId> level1(m->levels()[1].begin(), m->levels()[1].end());
  EXPECT_EQ(level1, (std::set<AtomId>{ids_["piston"], ids_["chassis"]}));
}

TEST_F(RecursiveTest, LeafPartHasTrivialExplosion) {
  auto m = DeriveRecursiveMoleculeFor(db_, Explosion(), ids_["bolt"]);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atom_count(), 1u);
  EXPECT_EQ(m->depth(), 0u);
  EXPECT_TRUE(m->links().empty());
}

TEST_F(RecursiveTest, DeriveAllRoots) {
  auto all = DeriveRecursiveMolecules(db_, Explosion());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 5u);  // one per part
  size_t total_atoms = 0;
  for (const RecursiveMolecule& m : *all) total_atoms += m.atom_count();
  // car(5) + engine(3) + chassis(2) + piston(2) + bolt(1).
  EXPECT_EQ(total_atoms, 13u);
}

TEST_F(RecursiveTest, CyclicInstanceDataTerminates) {
  // A maintenance kit that contains a bolt which (erroneously or by
  // design) contains the kit again: the traversal must terminate.
  auto kit = db_.InsertAtom("part", {Value("kit"), Value(int64_t{10})});
  ASSERT_TRUE(kit.ok());
  ASSERT_TRUE(db_.InsertLink("composition", *kit, ids_["bolt"]).ok());
  ASSERT_TRUE(db_.InsertLink("composition", ids_["bolt"], *kit).ok());

  auto m = DeriveRecursiveMoleculeFor(db_, Explosion(), *kit);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atom_count(), 2u);  // kit, bolt
  // The back link bolt->kit is realised but does not re-expand kit.
  bool back_link = false;
  for (const Link& link : m->links()) {
    if (link.first == ids_["bolt"] && link.second == *kit) back_link = true;
  }
  EXPECT_TRUE(back_link);
}

TEST_F(RecursiveTest, UnknownRootRejected) {
  EXPECT_EQ(
      DeriveRecursiveMoleculeFor(db_, Explosion(), AtomId{9999}).status().code(),
      StatusCode::kNotFound);
}

TEST_F(RecursiveTest, PropagateClosureLinks) {
  auto inserted = PropagateClosureLinks(db_, Explosion(), "contains_transitively");
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  // car: 4, engine: 2, chassis: 1, piston: 1, bolt: 0.
  EXPECT_EQ(*inserted, 8u);
  auto lt = db_.GetLinkType("contains_transitively");
  ASSERT_TRUE(lt.ok());
  EXPECT_TRUE((*lt)->occurrence().Contains(ids_["car"], ids_["bolt"]));
  EXPECT_FALSE((*lt)->occurrence().Contains(ids_["bolt"], ids_["car"]));
  // The closure link type is itself a schema object: usable in queries.
  EXPECT_TRUE((*lt)->reflexive());
}

class BomGeneratorTest : public ::testing::TestWithParam<int> {};

TEST_P(BomGeneratorTest, GeneratedBomExplodesToExpectedDepth) {
  Database db("BOM");
  workload::BomScale scale;
  scale.depth = GetParam();
  scale.fanout = 2;
  scale.share_fraction = 0.25;
  auto stats = workload::GenerateBom(db, scale);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->roots.size(), 1u);
  EXPECT_GT(stats->parts, static_cast<size_t>(scale.depth));

  RecursiveDescription rd{"part", "composition", LinkDirection::kForward, -1};
  auto m = DeriveRecursiveMoleculeFor(db, rd, stats->roots[0]);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->depth(), static_cast<size_t>(scale.depth));
  EXPECT_EQ(m->atom_count(), stats->parts);  // single root reaches all parts
}

INSTANTIATE_TEST_SUITE_P(Depths, BomGeneratorTest,
                         ::testing::Values(1, 2, 4, 6, 8));

}  // namespace
}  // namespace mad
